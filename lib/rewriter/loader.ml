exception Undefined_symbol of string

type symtab = string -> int option

let empty _ = None

let of_list l =
  let tbl = Hashtbl.create (List.length l) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) l;
  fun name -> Hashtbl.find_opt tbl name

let overlay a b name = match a name with Some v -> Some v | None -> b name

let assemble ~name ~source ~base ~symbols =
  try Td_misa.Program.assemble ~symbols ~base { source with name }
  with Td_misa.Program.Unresolved s -> raise (Undefined_symbol s)

let load ~name ~source ~base ~symbols ~registry =
  let program = assemble ~name ~source ~base ~symbols in
  Td_cpu.Code_registry.register registry program;
  program

let reload ~name ~source ~base ~symbols ~registry =
  let program = assemble ~name ~source ~base ~symbols in
  Td_cpu.Code_registry.replace registry program;
  program

let svm_symbols ~runtime ~natives ~stlb_vaddr ~scratch_vaddr =
  let miss = Td_svm.Runtime.miss_symbol runtime in
  let translate = Td_svm.Runtime.translate_symbol runtime in
  fun name ->
    if name = Symbols.stlb then Some stlb_vaddr
    else if name = Symbols.scratch then Some scratch_vaddr
    else if name = Symbols.svm_miss then Td_cpu.Native.address_of natives miss
    else if name = Symbols.svm_translate then
      Td_cpu.Native.address_of natives translate
    else None

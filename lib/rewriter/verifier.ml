open Td_misa

type severity = Reject | Warn

type finding = { severity : severity; index : int; message : string }

let stack_disp_limit = 8192

let pp_finding fmt f =
  Format.fprintf fmt "%s at instruction %d: %s"
    (match f.severity with Reject -> "reject" | Warn -> "warn")
    f.index f.message

let check_stack_disp idx insn acc =
  let bad m =
    Operand.is_stack_relative m
    && (m.Operand.disp > stack_disp_limit || m.Operand.disp < -stack_disp_limit)
  in
  if List.exists bad (Insn.mem_operands insn) then
    {
      severity = Reject;
      index = idx;
      message =
        Format.asprintf
          "stack-relative access beyond ±%d bytes (overflows the driver \
           stack): %a"
          stack_disp_limit Insn.pp insn;
    }
    :: acc
  else acc

let inspect (src : Program.source) =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let idx = ref 0 in
  List.iter
    (function
      | Program.Label l ->
          if Symbols.is_reserved l then
            add
              {
                severity = Reject;
                index = -1;
                message = "driver defines reserved symbol " ^ l;
              }
      | Program.Ins insn ->
          let i = !idx in
          incr idx;
          findings := check_stack_disp i insn !findings;
          (match insn with
          | Insn.Hlt ->
              add
                {
                  severity = Reject;
                  index = i;
                  message = "hlt is a privileged instruction in driver code";
                }
          | Insn.Jmp (Insn.Ind _) ->
              add
                {
                  severity = Warn;
                  index = i;
                  message =
                    "indirect jump: control-flow integrity depends on the \
                     stlb_call translation";
                }
          | Insn.Jmp (Insn.Abs a)
          | Insn.Call (Insn.Abs a)
          | Insn.Jcc (_, Insn.Abs a) ->
              (* native-range addresses are resolved support-routine
                 bindings (normal in pre-linked binaries); the hypervisor's
                 own region below them is never a legitimate target *)
              if
                Td_mem.Layout.in_hyp_range a && a < Td_mem.Layout.native_base
              then
                add
                  {
                    severity = Reject;
                    index = i;
                    message =
                      Printf.sprintf
                        "direct control transfer into the hypervisor (0x%x)" a;
                  }
          | _ -> ()))
    src.Program.items;
  List.rev !findings

let admissible src =
  not (List.exists (fun f -> f.severity = Reject) (inspect src))

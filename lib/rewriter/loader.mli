(** The modified ELF loader of §5.2.

    Loading resolves, per instance:
    - driver data symbols → their dom0 addresses (the dom0 module loader
      "saves the necessary driver relocation information");
    - driver support routines → hypervisor implementations when present,
      otherwise per-routine upcall stubs;
    - the {!Symbols} names (stlb, scratch, SVM handlers) → the instance's
      runtime.

    Both instances are loaded from the same rewritten source at bases that
    differ by {!Td_mem.Layout.code_offset}. *)

exception Undefined_symbol of string

type symtab = string -> int option

val empty : symtab
val of_list : (string * int) list -> symtab
val overlay : symtab -> symtab -> symtab
(** [overlay a b] consults [a] first, then [b]. *)

val load :
  name:string ->
  source:Td_misa.Program.source ->
  base:int ->
  symbols:symtab ->
  registry:Td_cpu.Code_registry.t ->
  Td_misa.Program.t
(** Assemble at [base] with [symbols] and register the program. Raises
    {!Undefined_symbol} when the source references an unresolved name. *)

val reload :
  name:string ->
  source:Td_misa.Program.source ->
  base:int ->
  symbols:symtab ->
  registry:Td_cpu.Code_registry.t ->
  Td_misa.Program.t
(** Like {!load}, but any program overlapping [base] is unregistered
    first — the driver supervisor reloading a fresh image over a dead
    instance's address range. *)

val svm_symbols :
  runtime:Td_svm.Runtime.t -> natives:Td_cpu.Native.t -> stlb_vaddr:int ->
  scratch_vaddr:int -> symtab
(** Symbol table fragment binding the {!Symbols} names for one instance.
    The [__svm_call] symbol must be added separately (hypervisor instance
    only); the identity instance binds it to a no-op translation. *)

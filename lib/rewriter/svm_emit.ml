open Td_misa

exception Rewrite_error of string

let fast_path_instructions = 10

let pick_scratch ~free ~used =
  let avoid = used in
  let preferred = List.filter (fun r -> not (List.mem r avoid)) free in
  let fallback =
    List.filter
      (fun r -> (not (List.mem r avoid)) && not (List.mem r preferred))
      Reg.general
  in
  match preferred @ fallback with
  | r1 :: r2 :: r3 :: _ ->
      let spilled =
        List.filter (fun r -> not (List.mem r free)) [ r1; r2; r3 ]
      in
      (r1, r2, r3, spilled)
  | _ ->
      raise
        (Rewrite_error
           "fewer than three scratch registers available for SVM fast path")

(* slot index for a spilled scratch register: position among (r1, r2, r3) *)
let slot_of r1 r2 r3 r =
  if Reg.equal r r1 then 0
  else if Reg.equal r r2 then 1
  else if Reg.equal r r3 then 2
  else invalid_arg "Svm_emit.slot_of"

let stlb_entry r1 extra =
  Operand.Mem (Operand.mem ~base:r1 ~sym:Symbols.stlb extra)

let rewrite_heap_access_helper ~free ~flags_live ~insn ~mem ~rebuild =
  let used =
    Reg.EAX :: (Insn.regs_read insn @ Insn.regs_written insn)
  in
  let r2, _, _, spilled = pick_scratch ~free ~used in
  let spill_r2 = List.exists (Reg.equal r2) spilled in
  let eax_slot = Symbols.scratch_slot 3 in
  let r2_slot = Symbols.scratch_slot 0 in
  let items = ref [] in
  let ins i = items := Program.Ins i :: !items in
  if flags_live then ins Insn.Pushf;
  ins (Insn.Mov (Width.W32, Operand.Reg Reg.EAX, eax_slot));
  if spill_r2 then ins (Insn.Mov (Width.W32, Operand.Reg r2, r2_slot));
  ins (Insn.Lea (mem, r2));
  ins (Insn.Push (Operand.Reg r2));
  ins (Insn.Call (Insn.Lbl Symbols.svm_translate));
  ins (Insn.Alu (Insn.Add, Operand.Imm 4, Operand.Reg Reg.ESP));
  ins (Insn.Mov (Width.W32, Operand.Reg Reg.EAX, Operand.Reg r2));
  ins (Insn.Mov (Width.W32, eax_slot, Operand.Reg Reg.EAX));
  if flags_live then ins Insn.Popf;
  ins (rebuild (Operand.Mem (Operand.mem ~base:r2 0)));
  if spill_r2 then ins (Insn.Mov (Width.W32, r2_slot, Operand.Reg r2));
  List.rev !items

let rewrite_heap_access_into ~free ~flags_live ~insn ~mem ~rebuild ~avoid =
  let used = avoid @ Insn.regs_read insn @ Insn.regs_written insn in
  let r1, r2, r3, spilled = pick_scratch ~free ~used in
  let slot r = Symbols.scratch_slot (slot_of r1 r2 r3 r) in
  let l_go = Builder.gensym "go"
  and l_slow = Builder.gensym "slow"
  and l_end = Builder.gensym "end" in
  let items = ref [] in
  let ins i = items := Program.Ins i :: !items in
  let lbl l = items := Program.Label l :: !items in
  (* flags preservation wraps the probe, not the final access: the final
     access must be free to set flags (cmp/test/alu results feed later
     jcc instructions) *)
  if flags_live then ins Insn.Pushf;
  List.iter (fun r -> ins (Insn.Mov (Width.W32, Operand.Reg r, slot r))) spilled;
  (* Figure 4, lines 1-9 *)
  ins (Insn.Lea (mem, r1));
  ins (Insn.Mov (Width.W32, Operand.Reg r1, Operand.Reg r2));
  ins (Insn.Alu (Insn.And, Operand.Imm 0xFFFFF000, Operand.Reg r1));
  ins (Insn.Mov (Width.W32, Operand.Reg r1, Operand.Reg r3));
  ins (Insn.Alu (Insn.And, Operand.Imm 0xFFF000, Operand.Reg r1));
  ins (Insn.Shift (Insn.Shr, Operand.Imm 9, Operand.Reg r1));
  ins (Insn.Cmp (stlb_entry r1 0, Operand.Reg r3));
  ins (Insn.Jcc (Cond.NE, Insn.Lbl l_slow));
  ins (Insn.Alu (Insn.Xor, stlb_entry r1 4, Operand.Reg r2));
  lbl l_go;
  List.iter
    (fun r ->
      if not (Reg.equal r r2) then
        ins (Insn.Mov (Width.W32, slot r, Operand.Reg r)))
    spilled;
  if flags_live then ins Insn.Popf;
  (* line 10: the original access through the translated address *)
  ins (rebuild (Operand.Mem (Operand.mem ~base:r2 0)));
  if List.exists (Reg.equal r2) spilled then
    ins (Insn.Mov (Width.W32, slot r2, Operand.Reg r2));
  ins (Insn.Jmp (Insn.Lbl l_end));
  (* slow path: call the miss handler with the full address *)
  lbl l_slow;
  let eax_outside = not (List.exists (Reg.equal Reg.EAX) [ r1; r2; r3 ]) in
  if eax_outside then ins (Insn.Mov (Width.W32, Operand.Reg Reg.EAX, Operand.Reg r3));
  ins (Insn.Push (Operand.Reg r2));
  ins (Insn.Call (Insn.Lbl Symbols.svm_miss));
  ins (Insn.Mov (Width.W32, Operand.Reg Reg.EAX, Operand.Reg r2));
  ins (Insn.Alu (Insn.Add, Operand.Imm 4, Operand.Reg Reg.ESP));
  if eax_outside then ins (Insn.Mov (Width.W32, Operand.Reg r3, Operand.Reg Reg.EAX));
  ins (Insn.Jmp (Insn.Lbl l_go));
  lbl l_end;
  (* the translation survives in r2 only when r2 was not spill-restored *)
  let holds =
    if List.exists (Reg.equal r2) spilled then None else Some r2
  in
  (List.rev !items, holds)

let rewrite_heap_access ~free ~flags_live ~insn ~mem ~rebuild =
  fst (rewrite_heap_access_into ~free ~flags_live ~insn ~mem ~rebuild ~avoid:[])

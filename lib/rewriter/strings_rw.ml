open Td_misa

(* scratch slot indices (after the three register-spill slots) *)
let slot_eax = 3
let slot_esi = 4
let slot_edi = 5

let width_shift = function Width.W8 -> 0 | Width.W16 -> 1 | Width.W32 -> 2

let uses_esi = function Insn.Movs | Insn.Lods -> true | Insn.Stos -> false
let uses_edi = function Insn.Movs | Insn.Stos -> true | Insn.Lods -> false

let rewrite ~free ~flags_live ~op ~width ~rep =
  let k = width_shift width in
  let insn = Insn.Str (op, width, rep) in
  (* EAX is clobbered by the translate helper, so it can never be scratch *)
  let used = Reg.EAX :: (Insn.regs_read insn @ Insn.regs_written insn) in
  let r1, r2, r3, spilled = Svm_emit.pick_scratch ~free ~used in
  let slot_r r =
    if Reg.equal r r1 then Symbols.scratch_slot 0
    else if Reg.equal r r2 then Symbols.scratch_slot 1
    else Symbols.scratch_slot 2
  in
  let items = ref [] in
  let ins i = items := Program.Ins i :: !items in
  let lbl l = items := Program.Label l :: !items in
  let mov src dst = ins (Insn.Mov (Width.W32, src, dst)) in
  let rg r = Operand.Reg r in
  let translate r =
    (* r <- __svm_translate r ; clobbers EAX *)
    ins (Insn.Push (rg r));
    ins (Insn.Call (Insn.Lbl Symbols.svm_translate));
    ins (Insn.Alu (Insn.Add, Operand.Imm 4, rg Reg.ESP));
    mov (rg Reg.EAX) (rg r)
  in
  let room dst_reg tmp =
    (* tmp <- page_size - (dst_reg land page_mask), i.e. bytes to page end *)
    mov (rg dst_reg) (rg tmp);
    ins (Insn.Alu (Insn.And, Operand.Imm Td_mem.Layout.page_mask, rg tmp));
    ins (Insn.Neg (rg tmp));
    ins (Insn.Alu (Insn.Add, Operand.Imm Td_mem.Layout.page_size, rg tmp))
  in
  if flags_live then ins Insn.Pushf;
  List.iter (fun r -> mov (rg r) (slot_r r)) spilled;
  mov (rg Reg.EAX) (Symbols.scratch_slot slot_eax);
  if not rep then begin
    (* single element: translate the pointer(s), run the op, rebase the
       original pointers past the element *)
    if uses_esi op then begin
      mov (rg Reg.ESI) (Symbols.scratch_slot slot_esi);
      translate Reg.ESI
    end;
    if uses_edi op then begin
      mov (rg Reg.EDI) (Symbols.scratch_slot slot_edi);
      translate Reg.EDI
    end;
    if op = Insn.Stos then mov (Symbols.scratch_slot slot_eax) (rg Reg.EAX);
    ins (Insn.Str (op, width, false));
    if op = Insn.Lods then mov (rg Reg.EAX) (Symbols.scratch_slot slot_eax);
    if uses_esi op then begin
      mov (Symbols.scratch_slot slot_esi) (rg Reg.ESI);
      ins (Insn.Alu (Insn.Add, Operand.Imm (Width.bytes width), rg Reg.ESI))
    end;
    if uses_edi op then begin
      mov (Symbols.scratch_slot slot_edi) (rg Reg.EDI);
      ins (Insn.Alu (Insn.Add, Operand.Imm (Width.bytes width), rg Reg.EDI))
    end;
    mov (Symbols.scratch_slot slot_eax) (rg Reg.EAX)
  end
  else begin
    let l_loop = Builder.gensym "sloop"
    and l_end = Builder.gensym "send"
    and l_min1 = Builder.gensym "smin1"
    and l_nz = Builder.gensym "snz"
    and l_min2 = Builder.gensym "smin2" in
    lbl l_loop;
    ins (Insn.Cmp (Operand.Imm 0, rg Reg.ECX));
    ins (Insn.Jcc (Cond.E, Insn.Lbl l_end));
    (* r1 = min over the pointers of bytes-to-page-end *)
    if uses_esi op then room Reg.ESI r1 else room Reg.EDI r1;
    if uses_esi op && uses_edi op then begin
      room Reg.EDI r2;
      ins (Insn.Cmp (rg r2, rg r1));
      ins (Insn.Jcc (Cond.BE, Insn.Lbl l_min1));
      mov (rg r2) (rg r1);
      lbl l_min1
    end;
    (* r3 = chunk in elements = max(r1 >> k, 1), capped by remaining ECX.
       The forced minimum of one element may straddle the page end; this is
       safe because the miss handler always maps page pairs. *)
    mov (rg r1) (rg r3);
    if k > 0 then begin
      ins (Insn.Shift (Insn.Shr, Operand.Imm k, rg r3));
      ins (Insn.Cmp (Operand.Imm 0, rg r3));
      ins (Insn.Jcc (Cond.NE, Insn.Lbl l_nz));
      mov (Operand.Imm 1) (rg r3);
      lbl l_nz
    end;
    ins (Insn.Cmp (rg Reg.ECX, rg r3));
    ins (Insn.Jcc (Cond.BE, Insn.Lbl l_min2));
    mov (rg Reg.ECX) (rg r3);
    lbl l_min2;
    (* stash original pointers, switch to translated ones *)
    if uses_esi op then begin
      mov (rg Reg.ESI) (Symbols.scratch_slot slot_esi);
      translate Reg.ESI
    end;
    if uses_edi op then begin
      mov (rg Reg.EDI) (Symbols.scratch_slot slot_edi);
      translate Reg.EDI
    end;
    (* r2 = remaining count after this chunk; ECX = chunk *)
    mov (rg Reg.ECX) (rg r2);
    ins (Insn.Alu (Insn.Sub, rg r3, rg r2));
    mov (rg r3) (rg Reg.ECX);
    if op = Insn.Stos then mov (Symbols.scratch_slot slot_eax) (rg Reg.EAX);
    ins (Insn.Str (op, width, true));
    if op = Insn.Lods then mov (rg Reg.EAX) (Symbols.scratch_slot slot_eax);
    (* rebase the original pointers past the chunk *)
    if k > 0 then ins (Insn.Shift (Insn.Shl, Operand.Imm k, rg r3));
    if uses_esi op then begin
      mov (Symbols.scratch_slot slot_esi) (rg Reg.ESI);
      ins (Insn.Alu (Insn.Add, rg r3, rg Reg.ESI))
    end;
    if uses_edi op then begin
      mov (Symbols.scratch_slot slot_edi) (rg Reg.EDI);
      ins (Insn.Alu (Insn.Add, rg r3, rg Reg.EDI))
    end;
    mov (rg r2) (rg Reg.ECX);
    ins (Insn.Jmp (Insn.Lbl l_loop));
    lbl l_end;
    mov (Symbols.scratch_slot slot_eax) (rg Reg.EAX)
  end;
  List.iter (fun r -> mov (slot_r r) (rg r)) spilled;
  if flags_live then ins Insn.Popf;
  List.rev !items

open Td_misa

type t = {
  insns : Insn.t array;
  live_in : int array;  (** register bitsets, bit = {!Reg.index} *)
  flags_in : bool array;
}

let all_regs = 0xFF
let bit r = 1 lsl Reg.index r
let set_of_list = List.fold_left (fun acc r -> acc lor bit r) 0

let list_of_set s =
  List.filter (fun r -> s land bit r <> 0) Reg.all

(* callee-saved registers plus the return value must survive to [ret] *)
let ret_reads =
  set_of_list [ Reg.EAX; Reg.EBX; Reg.ESI; Reg.EDI; Reg.EBP; Reg.ESP ]

let analyse (src : Program.source) =
  let insns =
    Array.of_list
      (List.filter_map
         (function Program.Ins i -> Some i | Program.Label _ -> None)
         src.Program.items)
  in
  let labels = Hashtbl.create 32 in
  let () =
    let idx = ref 0 in
    List.iter
      (function
        | Program.Label l -> Hashtbl.replace labels l !idx
        | Program.Ins _ -> incr idx)
      src.Program.items
  in
  let n = Array.length insns in
  let live_in = Array.make n 0 in
  let live_out = Array.make n 0 in
  let flags_in = Array.make n false in
  let flags_out = Array.make n false in
  (* successors; [None] in the list marks "unknown control flow" *)
  let succs i =
    match insns.(i) with
    | Insn.Jmp (Insn.Lbl l) -> (
        match Hashtbl.find_opt labels l with
        | Some j -> ([ j ], false)
        | None -> ([], true) (* tail call to external symbol *))
    | Insn.Jmp (Insn.Abs _ | Insn.Ind _) -> ([], true)
    | Insn.Jcc (_, Insn.Lbl l) -> (
        match Hashtbl.find_opt labels l with
        | Some j -> ((if i + 1 < n then [ j; i + 1 ] else [ j ]), false)
        | None -> ([], true))
    | Insn.Jcc (_, (Insn.Abs _ | Insn.Ind _)) -> ([], true)
    | Insn.Ret | Insn.Hlt -> ([], false)
    | _ -> if i + 1 < n then ([ i + 1 ], false) else ([], false)
  in
  let reads i =
    match insns.(i) with
    | Insn.Call _ ->
        (* cdecl: arguments are passed on the stack, so the callee reads no
           caller registers; callee-saved registers survive and the
           caller-saved ones are clobbered (handled in [writes]) *)
        bit Reg.ESP
    | Insn.Ret -> ret_reads
    | Insn.Hlt -> bit Reg.EAX lor bit Reg.ESP
    | insn -> set_of_list (Insn.regs_read insn)
  in
  let writes i =
    match insns.(i) with
    | Insn.Call _ ->
        (* caller-saved registers are clobbered by the callee *)
        set_of_list [ Reg.EAX; Reg.ECX; Reg.EDX ]
    | insn -> set_of_list (Insn.regs_written insn)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let ss, unknown = succs i in
      let out = List.fold_left (fun acc j -> acc lor live_in.(j)) 0 ss in
      let out = if unknown then all_regs else out in
      let fout =
        if unknown then true
        else List.exists (fun j -> flags_in.(j)) ss
      in
      let inn = reads i lor (out land lnot (writes i)) in
      let finn =
        if Insn.reads_flags insns.(i) then true
        else if Insn.sets_flags insns.(i) || (match insns.(i) with Insn.Call _ -> true | _ -> false)
        then false
        else fout
      in
      if inn <> live_in.(i) || out <> live_out.(i) || finn <> flags_in.(i)
         || fout <> flags_out.(i)
      then begin
        live_in.(i) <- inn;
        live_out.(i) <- out;
        flags_in.(i) <- finn;
        flags_out.(i) <- fout;
        changed := true
      end
    done
  done;
  { insns; live_in; flags_in }

let live_in t i = list_of_set t.live_in.(i)
let flags_live_in t i = t.flags_in.(i)

let free_regs t i =
  let used =
    t.live_in.(i)
    lor set_of_list (Insn.regs_read t.insns.(i))
    lor set_of_list (Insn.regs_written t.insns.(i))
  in
  List.filter (fun r -> used land bit r = 0) Reg.general

type stats = { mutable invocations : int; mutable switches_incurred : int }

let fresh_stats () = { invocations = 0; switches_incurred = 0 }

exception Upcall_failed of { routine : string }

let () =
  Printexc.register_printer (function
    | Upcall_failed { routine } ->
        Some (Printf.sprintf "Td_xen.Upcall.Upcall_failed(%s)" routine)
    | _ -> None)

let make_stub ~hyp ~dom0 ~name ~impl stats : Td_cpu.Native.fn =
  (* pre-register the counters so snapshots report an explicit zero for
     runs that never leave the fast path (the paper's headline case) *)
  if Td_obs.Control.enabled () then begin
    ignore (Td_obs.Metrics.counter "upcall.invocations");
    ignore (Td_obs.Metrics.counter "upcall.switches")
  end;
  fun st ->
  stats.invocations <- stats.invocations + 1;
  let costs = Hypervisor.costs hyp in
  (* the stub saves parameters and switches off the hypervisor stack
     (whose contents are not preserved across the domain transition);
     the Xen work is attributed to the domain whose driver invoked it *)
  let prev = Hypervisor.current ~op:"upcall" hyp in
  Hypervisor.charge_xen_for hyp ~domain:(Domain.name prev)
    costs.Sys_costs.upcall_stack_switch;
  let needs_switch = Domain.id prev <> Domain.id dom0 in
  if needs_switch then stats.switches_incurred <- stats.switches_incurred + 2;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "upcall.invocations";
    if needs_switch then Td_obs.Metrics.bump_by "upcall.switches" 2;
    Td_obs.Trace.emit (Td_obs.Trace.Upcall_enter { routine = name })
  end;
  (* fault-injection site: dom0 fails or times out the upcall — the
     world switch was paid, but the support routine never ran and the
     hypervisor driver instance cannot make progress *)
  if
    Td_fault.Engine.active () && Td_fault.Engine.fire Td_fault.Upcall_fail
  then raise (Upcall_failed { routine = name });
  (* quota gate: each upcall draws a token from the invoking domain's
     bucket — one tenant hammering support routines cannot monopolise
     dom0 (raises the typed Quota_exceeded when dry) *)
  if Quota.active () then Quota.take ~domain:(Domain.name prev) Quota.Upcalls;
  Hypervisor.run_in hyp dom0 (fun () ->
      (* synchronous virtual interrupt into dom0: the registered handler
         recovers parameters and invokes the support routine *)
      Hypervisor.charge_xen_for hyp ~domain:(Domain.name prev)
        costs.Sys_costs.event_channel;
      Hypervisor.charge_domain hyp dom0 costs.Sys_costs.support_routine;
      impl st;
      (* 'return' to the stub via hypercall *)
      Hypervisor.hypercall hyp ~cost:costs.Sys_costs.upcall_return ());
  if Td_obs.Control.enabled () then
    Td_obs.Trace.emit
      (Td_obs.Trace.Upcall_exit { routine = name; switched = needs_switch })

type grant_ref = int

(* Every active mapping of an entry is recorded as (space, vpage) so that
   revocation can tear each one down and later accessors fault
   deterministically instead of aliasing a page the guest took back. *)
type entry = {
  frame : Td_mem.Phys_mem.frame;
  mutable mappings : (Td_mem.Addr_space.t * int) list;
}

type t = {
  owner : Domain.t;
  entries : (grant_ref, entry) Hashtbl.t;
  revoked : (grant_ref, unit) Hashtbl.t;
      (** tombstones: refs that once existed; using one is a typed fault
          ("revoked grant ref"), distinct from a never-issued ref *)
  mutable next : grant_ref;
  mutable map_count : int;
}

let create ~owner =
  {
    owner;
    entries = Hashtbl.create 64;
    revoked = Hashtbl.create 16;
    next = 1;
    map_count = 0;
  }

let owner_name t = Domain.name t.owner

let grant t ~frame =
  Quota.acquire ~domain:(owner_name t) Quota.Grant_entries 1;
  let r = t.next in
  t.next <- t.next + 1;
  Hashtbl.replace t.entries r { frame; mappings = [] };
  r

(* a bad ref is guest-controlled input, not an invariant violation: the
   hypervisor validates, counts and survives it (typed Guest_fault) *)
let find t ~op r =
  match Hashtbl.find_opt t.entries r with
  | Some e -> e
  | None ->
      if Hashtbl.mem t.revoked r then
        Guest_fault.fail ~domain:(owner_name t) ~op "revoked grant ref %d" r
      else Guest_fault.fail ~domain:(owner_name t) ~op "bad grant ref %d" r

(* Device page installed over a stale mapping when its grant is revoked
   while still mapped: the guest reclaimed the frame, so whoever touches
   the old window address next gets a deterministic typed fault instead of
   silently reading the guest's (possibly reused) page. *)
let revoked_poison t r =
  {
    Td_mem.Addr_space.dev_read =
      (fun _off _w ->
        Guest_fault.fail ~domain:(owner_name t)
          ~op:"Grant_table.access_revoked"
          "access through stale mapping of revoked grant ref %d" r);
    dev_write =
      (fun _off _w _v ->
        Guest_fault.fail ~domain:(owner_name t)
          ~op:"Grant_table.access_revoked"
          "access through stale mapping of revoked grant ref %d" r);
  }

let revoke t r =
  let e = find t ~op:"Grant_table.revoke" r in
  (* Forced revocation: the guest may always take its page back. Any
     mapping still active is torn down and the window vpage poisoned so
     the *later accessor* faults deterministically. *)
  if e.mappings <> [] then begin
    if Td_obs.Control.enabled () then
      Td_obs.Metrics.bump_by "grant.revoke_forced" (List.length e.mappings);
    List.iter
      (fun (space, vpage) ->
        Td_mem.Addr_space.unmap space ~vpage;
        Td_mem.Addr_space.map_device space ~vpage (revoked_poison t r);
        Quota.release ~domain:(owner_name t) Quota.Grant_maps 1)
      e.mappings;
    e.mappings <- []
  end;
  Hashtbl.remove t.entries r;
  Hashtbl.replace t.revoked r ();
  Quota.release ~domain:(owner_name t) Quota.Grant_entries 1

let map t ~hyp ~into ~at_vpage r =
  let e = find t ~op:"Grant_table.map" r in
  let space = Domain.space into in
  (* refuse to clobber: mapping over a live page would let a guest-chosen
     vpage redirect what the driver domain already sees there *)
  if Td_mem.Addr_space.is_mapped space ~vpage:at_vpage then
    Guest_fault.fail ~domain:(owner_name t) ~op:"Grant_table.map"
      "grant ref %d: vpage 0x%x is already mapped" r at_vpage;
  Quota.acquire ~domain:(owner_name t) Quota.Grant_maps 1;
  Hypervisor.charge_xen_for hyp ~domain:(owner_name t)
    (Hypervisor.costs hyp).Sys_costs.grant_map;
  Td_mem.Addr_space.map space ~vpage:at_vpage e.frame;
  e.mappings <- (space, at_vpage) :: e.mappings;
  t.map_count <- t.map_count + 1;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "grant.map";
    Td_obs.Trace.emit (Td_obs.Trace.Grant_map { gref = r })
  end

let unmap t ~hyp ~from ~at_vpage r =
  let e = find t ~op:"Grant_table.unmap" r in
  let space = Domain.space from in
  (* the ref must actually be mapped at this vpage — otherwise an
     attacker-chosen vpage could silently unmap someone else's page *)
  if not (List.exists (fun (s, v) -> s == space && v = at_vpage) e.mappings)
  then
    Guest_fault.fail ~domain:(owner_name t) ~op:"Grant_table.unmap"
      "grant ref %d is not mapped at vpage 0x%x" r at_vpage;
  Hypervisor.charge_xen_for hyp ~domain:(owner_name t)
    (Hypervisor.costs hyp).Sys_costs.grant_unmap;
  Td_mem.Addr_space.unmap space ~vpage:at_vpage;
  let dropped = ref false in
  e.mappings <-
    List.filter
      (fun (s, v) ->
        if (not !dropped) && s == space && v = at_vpage then begin
          dropped := true;
          false
        end
        else true)
      e.mappings;
  Quota.release ~domain:(owner_name t) Quota.Grant_maps 1;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "grant.unmap";
    Td_obs.Trace.emit (Td_obs.Trace.Grant_unmap { gref = r })
  end

let phys t = Td_mem.Addr_space.phys (Domain.space t.owner)

let check_copy_bounds t ~op ~offset ~len r =
  if offset < 0 || len < 0 || offset + len > Td_mem.Layout.page_size then
    Guest_fault.fail ~domain:(owner_name t) ~op
      "grant ref %d: copy of %d bytes at offset %d exceeds the page" r len
      offset

let copy_to t ~hyp r ~offset ~src =
  let e = find t ~op:"Grant_table.copy_to" r in
  check_copy_bounds t ~op:"Grant_table.copy_to" ~offset
    ~len:(Bytes.length src) r;
  (* grant-copy bandwidth is billed to the granting domain (the guest
     whose buffer is being filled/drained), before any cycle is charged:
     a throttled copy costs dom0 nothing *)
  Quota.take_n ~domain:(owner_name t) Quota.Grant_copy_bytes
    (Bytes.length src);
  let cost =
    int_of_float
      (float_of_int (Bytes.length src)
      *. (Hypervisor.costs hyp).Sys_costs.grant_copy_per_byte)
  in
  Hypervisor.charge_xen_for hyp ~domain:(owner_name t) cost;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump_by "grant.copy_bytes" (Bytes.length src);
    Td_obs.Trace.emit
      (Td_obs.Trace.Grant_copy { gref = r; bytes = Bytes.length src })
  end;
  Td_mem.Phys_mem.write_bytes (phys t) e.frame offset src

let copy_from t ~hyp r ~offset ~len =
  let e = find t ~op:"Grant_table.copy_from" r in
  check_copy_bounds t ~op:"Grant_table.copy_from" ~offset ~len r;
  Quota.take_n ~domain:(owner_name t) Quota.Grant_copy_bytes len;
  let cost =
    int_of_float
      (float_of_int len *. (Hypervisor.costs hyp).Sys_costs.grant_copy_per_byte)
  in
  Hypervisor.charge_xen_for hyp ~domain:(owner_name t) cost;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump_by "grant.copy_bytes" len;
    Td_obs.Trace.emit (Td_obs.Trace.Grant_copy { gref = r; bytes = len })
  end;
  Td_mem.Phys_mem.read_bytes (phys t) e.frame offset len

let active t = Hashtbl.length t.entries
let maps t = t.map_count

type grant_ref = int

type entry = { frame : Td_mem.Phys_mem.frame; mutable mapped : int }

type t = {
  owner : Domain.t;
  entries : (grant_ref, entry) Hashtbl.t;
  mutable next : grant_ref;
  mutable map_count : int;
}

let create ~owner =
  { owner; entries = Hashtbl.create 64; next = 1; map_count = 0 }

let grant t ~frame =
  let r = t.next in
  t.next <- t.next + 1;
  Hashtbl.replace t.entries r { frame; mapped = 0 };
  r

(* a bad ref is guest-controlled input, not an invariant violation: the
   hypervisor validates, counts and survives it (typed Guest_fault) *)
let find t ~op r =
  match Hashtbl.find_opt t.entries r with
  | Some e -> e
  | None -> Guest_fault.fail ~op "bad grant ref %d" r

let revoke t r =
  let e = find t ~op:"Grant_table.revoke" r in
  if e.mapped > 0 then
    Guest_fault.fail ~op:"Grant_table.revoke"
      "revoking grant ref %d while mapped %d time(s)" r e.mapped;
  Hashtbl.remove t.entries r

let map t ~hyp ~into ~at_vpage r =
  let e = find t ~op:"Grant_table.map" r in
  Hypervisor.charge_xen hyp (Hypervisor.costs hyp).Sys_costs.grant_map;
  Td_mem.Addr_space.map (Domain.space into) ~vpage:at_vpage e.frame;
  e.mapped <- e.mapped + 1;
  t.map_count <- t.map_count + 1;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "grant.map";
    Td_obs.Trace.emit (Td_obs.Trace.Grant_map { gref = r })
  end

let unmap t ~hyp ~from ~at_vpage r =
  let e = find t ~op:"Grant_table.unmap" r in
  Hypervisor.charge_xen hyp (Hypervisor.costs hyp).Sys_costs.grant_unmap;
  Td_mem.Addr_space.unmap (Domain.space from) ~vpage:at_vpage;
  if e.mapped > 0 then e.mapped <- e.mapped - 1;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "grant.unmap";
    Td_obs.Trace.emit (Td_obs.Trace.Grant_unmap { gref = r })
  end

let phys t = Td_mem.Addr_space.phys (Domain.space t.owner)

let copy_to t ~hyp r ~offset ~src =
  let e = find t ~op:"Grant_table.copy_to" r in
  let cost =
    int_of_float
      (float_of_int (Bytes.length src)
      *. (Hypervisor.costs hyp).Sys_costs.grant_copy_per_byte)
  in
  Hypervisor.charge_xen hyp cost;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump_by "grant.copy_bytes" (Bytes.length src);
    Td_obs.Trace.emit
      (Td_obs.Trace.Grant_copy { gref = r; bytes = Bytes.length src })
  end;
  Td_mem.Phys_mem.write_bytes (phys t) e.frame offset src

let copy_from t ~hyp r ~offset ~len =
  let e = find t ~op:"Grant_table.copy_from" r in
  let cost =
    int_of_float
      (float_of_int len *. (Hypervisor.costs hyp).Sys_costs.grant_copy_per_byte)
  in
  Hypervisor.charge_xen hyp cost;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump_by "grant.copy_bytes" len;
    Td_obs.Trace.emit (Td_obs.Trace.Grant_copy { gref = r; bytes = len })
  end;
  Td_mem.Phys_mem.read_bytes (phys t) e.frame offset len

let active t = Hashtbl.length t.entries
let maps t = t.map_count

(** The hypervisor: domain bookkeeping, world switches, hypercalls and
    virtual interrupt delivery, all with cycle accounting against the
    {!Ledger}. *)

type t

val create :
  ?costs:Sys_costs.t ->
  ledger:Ledger.t ->
  xen_space:Td_mem.Addr_space.t ->
  cpu:Td_cpu.State.t ->
  unit ->
  t

val costs : t -> Sys_costs.t
val ledger : t -> Ledger.t
val xen_space : t -> Td_mem.Addr_space.t
val cpu : t -> Td_cpu.State.t

exception No_domains of { op : string }
(** An operation needed a current domain but the hypervisor has none —
    the registry is empty, or every domain was destroyed. Typed so a
    caller can contain it per-request instead of dying on [Failure]. *)

val add_domain : t -> Domain.t -> unit

val remove_domain : t -> Domain.t -> unit
(** Drop a domain from the registry (matched by id; unknown domains are
    ignored). If it was current, the oldest remaining domain — dom0 in
    practice — becomes current and the CPU switches to its address
    space; no switch cost is charged to the departed domain. *)

(** [current ?op t] is the running domain. Raises {!No_domains} (naming
    [op]) before {!add_domain}; pass [op] so the error names the
    operation that needed a current domain. *)
val current : ?op:string -> t -> Domain.t
val domains : t -> Domain.t list
val switches : t -> int

val category_of : Domain.t -> Ledger.category
(** Dom0 work is charged to [Dom0], guest work to [DomU]. *)

val switch_to : t -> Domain.t -> unit
(** Synchronous world switch: charges {!Sys_costs.domain_switch} to Xen,
    changes the CPU's address space (flushing its TLB), counts. No-op if
    already current. *)

val hypercall : t -> ?cost:int -> unit -> unit
(** Charge a hypercall entry/exit to Xen, attributed to the current
    domain's {!Ledger} row (the issuer pays). *)

val charge_xen : t -> int -> unit

val charge_xen_for : t -> domain:string -> int -> unit
(** Xen-category work performed on behalf of the named domain: charged to
    the [Xen] cell {e and} attributed to that domain's row. *)

val charge_domain : t -> Domain.t -> int -> unit
(** Charges the domain's category cell and attributes the cycles to its
    per-domain row. *)

val send_virq : t -> Domain.t -> (unit -> unit) -> unit
(** Deliver a virtual interrupt to a domain: charges event-channel cost;
    if the domain has interrupts masked the handler is queued and runs on
    unmask (§4.4), otherwise it runs now in that domain's context (with a
    switch if needed, returning to the original domain afterwards). *)

val run_in : t -> Domain.t -> (unit -> 'a) -> 'a
(** Execute [f] with [dom] current (switching there and back if needed). *)

(** The hypervisor: domain bookkeeping, world switches, hypercalls and
    virtual interrupt delivery, all with cycle accounting against the
    {!Ledger}. *)

type t

val create :
  ?costs:Sys_costs.t ->
  ledger:Ledger.t ->
  xen_space:Td_mem.Addr_space.t ->
  cpu:Td_cpu.State.t ->
  unit ->
  t

val costs : t -> Sys_costs.t
val ledger : t -> Ledger.t
val xen_space : t -> Td_mem.Addr_space.t
val cpu : t -> Td_cpu.State.t

val add_domain : t -> Domain.t -> unit

(** [current ?op t] is the running domain. Raises
    [Failure "Hypervisor.<op>: no domains"] before {!add_domain}; pass
    [op] so the error names the operation that needed a current
    domain. *)
val current : ?op:string -> t -> Domain.t
val domains : t -> Domain.t list
val switches : t -> int

val category_of : Domain.t -> Ledger.category
(** Dom0 work is charged to [Dom0], guest work to [DomU]. *)

val switch_to : t -> Domain.t -> unit
(** Synchronous world switch: charges {!Sys_costs.domain_switch} to Xen,
    changes the CPU's address space (flushing its TLB), counts. No-op if
    already current. *)

val hypercall : t -> ?cost:int -> unit -> unit
(** Charge a hypercall entry/exit to Xen, attributed to the current
    domain's {!Ledger} row (the issuer pays). *)

val charge_xen : t -> int -> unit

val charge_xen_for : t -> domain:string -> int -> unit
(** Xen-category work performed on behalf of the named domain: charged to
    the [Xen] cell {e and} attributed to that domain's row. *)

val charge_domain : t -> Domain.t -> int -> unit
(** Charges the domain's category cell and attributes the cycles to its
    per-domain row. *)

val send_virq : t -> Domain.t -> (unit -> unit) -> unit
(** Deliver a virtual interrupt to a domain: charges event-channel cost;
    if the domain has interrupts masked the handler is queued and runs on
    unmask (§4.4), otherwise it runs now in that domain's context (with a
    switch if needed, returning to the original domain afterwards). *)

val run_in : t -> Domain.t -> (unit -> 'a) -> 'a
(** Execute [f] with [dom] current (switching there and back if needed). *)

(* Per-domain resource quotas. Engine state is first-class (make /
   with_state), with a per-OCaml-domain ambient slot like
   Td_fault.Engine: no engine visible means every check is a no-op,
   keeping zero-quota runs bit-identical to the seed. Rate buckets
   refill on the simulated clock supplied at construction time, so
   enforcement is deterministic. *)

type limits = {
  map_window_pages : int;
  grant_entries : int;
  grant_maps : int;
  upcalls_per_s : float;
  notifications_per_s : float;
  doorbells_per_s : float;
  rx_per_s : float;
  grant_copy_bytes_per_s : float;
  burst : float;
  grant_copy_burst_bytes : float;
}

let unlimited =
  {
    map_window_pages = 0;
    grant_entries = 0;
    grant_maps = 0;
    upcalls_per_s = 0.;
    notifications_per_s = 0.;
    doorbells_per_s = 0.;
    rx_per_s = 0.;
    grant_copy_bytes_per_s = 0.;
    burst = 1.;
    grant_copy_burst_bytes = 65536.;
  }

let default_limits =
  {
    map_window_pages = 64;
    grant_entries = 256;
    grant_maps = 64;
    upcalls_per_s = 200_000.;
    notifications_per_s = 500_000.;
    doorbells_per_s = 1_000_000.;
    rx_per_s = 500_000.;
    grant_copy_bytes_per_s = 1e9;
    burst = 8.;
    grant_copy_burst_bytes = 65536.;
  }

type resource =
  | Map_window_pages
  | Grant_entries
  | Grant_maps
  | Upcalls
  | Notifications
  | Doorbells
  | Rx_deliveries
  | Grant_copy_bytes

let all_resources =
  [ Map_window_pages; Grant_entries; Grant_maps; Upcalls; Notifications;
    Doorbells; Rx_deliveries; Grant_copy_bytes ]

let resource_name = function
  | Map_window_pages -> "map_window_pages"
  | Grant_entries -> "grant_entries"
  | Grant_maps -> "grant_maps"
  | Upcalls -> "upcalls"
  | Notifications -> "notifications"
  | Doorbells -> "doorbells"
  | Rx_deliveries -> "rx_deliveries"
  | Grant_copy_bytes -> "grant_copy_bytes"

exception Quota_exceeded of { domain : string; resource : string }

let () =
  Printexc.register_printer (function
    | Quota_exceeded { domain; resource } ->
        Some
          (Printf.sprintf "Td_xen.Quota.Quota_exceeded(%s: %s)" domain resource)
    | _ -> None)

(* Per-(domain, resource) state: a held-units count for concurrency caps,
   a token bucket for rate caps. *)
type bucket = { mutable tokens : float; mutable last : float }

type dom_state = {
  held : int array;  (** indexed like [all_resources]; rate slots unused *)
  buckets : bucket option array;
  throttles : int array;
}

type state = {
  lim : limits;
  now : unit -> float;
  exempt : (string, unit) Hashtbl.t;
  doms : (string, dom_state) Hashtbl.t;
  mutable throttled : int;
}

(* The ambient engine slot is per OCaml domain (DLS): spawned shard
   workers start with no ambient engine, and a World carrying a private
   engine scopes it around its entry points with [with_state]. *)
let slot : state option ref Stdlib.Domain.DLS.key =
  Stdlib.Domain.DLS.new_key (fun () -> ref None)

let current () = !(Stdlib.Domain.DLS.get slot)

let with_state st f =
  let r = Stdlib.Domain.DLS.get slot in
  let saved = !r in
  r := Some st;
  Fun.protect ~finally:(fun () -> r := saved) f

let resource_index = function
  | Map_window_pages -> 0
  | Grant_entries -> 1
  | Grant_maps -> 2
  | Upcalls -> 3
  | Notifications -> 4
  | Doorbells -> 5
  | Rx_deliveries -> 6
  | Grant_copy_bytes -> 7

let n_resources = List.length all_resources

let cap lim = function
  | Map_window_pages -> lim.map_window_pages
  | Grant_entries -> lim.grant_entries
  | Grant_maps -> lim.grant_maps
  | Upcalls | Notifications | Doorbells | Rx_deliveries | Grant_copy_bytes -> 0

let rate lim = function
  | Upcalls -> lim.upcalls_per_s
  | Notifications -> lim.notifications_per_s
  | Doorbells -> lim.doorbells_per_s
  | Rx_deliveries -> lim.rx_per_s
  | Grant_copy_bytes -> lim.grant_copy_bytes_per_s
  | Map_window_pages | Grant_entries | Grant_maps -> 0.

(* byte-denominated buckets need a byte-denominated depth: an 8-token
   burst would deny every >8-byte grant copy outright *)
let burst_of lim = function
  | Grant_copy_bytes -> lim.grant_copy_burst_bytes
  | _ -> lim.burst

let make ?(now = fun () -> 0.) ?(exempt = []) lim =
  let ex = Hashtbl.create 4 in
  List.iter (fun d -> Hashtbl.replace ex d ()) exempt;
  { lim; now; exempt = ex; doms = Hashtbl.create 8; throttled = 0 }

let install ?now ?exempt lim =
  Stdlib.Domain.DLS.get slot := Some (make ?now ?exempt lim)

let clear () = Stdlib.Domain.DLS.get slot := None
let active () = Option.is_some (current ())
let limits () = Option.map (fun e -> e.lim) (current ())

let dom_state e domain =
  match Hashtbl.find_opt e.doms domain with
  | Some d -> d
  | None ->
      let d =
        {
          held = Array.make n_resources 0;
          buckets = Array.make n_resources None;
          throttles = Array.make n_resources 0;
        }
      in
      Hashtbl.replace e.doms domain d;
      d

let inuse_gauge domain res v =
  if Td_obs.Control.enabled () then
    Td_obs.Metrics.set
      (Td_obs.Metrics.gauge
         (Printf.sprintf "xen.quota_inuse.%s.%s" domain (resource_name res)))
      (float_of_int v)

let note_throttle e d domain res =
  e.throttled <- e.throttled + 1;
  d.throttles.(resource_index res) <- d.throttles.(resource_index res) + 1;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "xen.quota_throttled";
    Td_obs.Metrics.bump (Printf.sprintf "xen.quota_throttled.%s" domain);
    Td_obs.Trace.emit
      (Td_obs.Trace.Custom
         {
           name = Printf.sprintf "quota.throttle.%s" (resource_name res);
           value = e.throttled;
         })
  end

let exceeded domain res =
  raise (Quota_exceeded { domain; resource = resource_name res })

let acquire ~domain res n =
  match current () with
  | None -> ()
  | Some e ->
      if not (Hashtbl.mem e.exempt domain) then begin
        let limit = cap e.lim res in
        let d = dom_state e domain in
        let i = resource_index res in
        if limit > 0 && d.held.(i) + n > limit then begin
          note_throttle e d domain res;
          exceeded domain res
        end;
        d.held.(i) <- d.held.(i) + n;
        inuse_gauge domain res d.held.(i)
      end

let release ~domain res n =
  match current () with
  | None -> ()
  | Some e ->
      if not (Hashtbl.mem e.exempt domain) then begin
        let d = dom_state e domain in
        let i = resource_index res in
        d.held.(i) <- max 0 (d.held.(i) - n);
        inuse_gauge domain res d.held.(i)
      end

let try_take_n ~domain res n =
  match current () with
  | None -> true
  | Some e ->
      Hashtbl.mem e.exempt domain
      ||
      let r = rate e.lim res in
      if r <= 0. then true
      else begin
        let burst = burst_of e.lim res in
        let d = dom_state e domain in
        let i = resource_index res in
        let b =
          match d.buckets.(i) with
          | Some b -> b
          | None ->
              let b = { tokens = burst; last = e.now () } in
              d.buckets.(i) <- Some b;
              b
        in
        let t = e.now () in
        if t > b.last then begin
          b.tokens <- Float.min burst (b.tokens +. ((t -. b.last) *. r));
          b.last <- t
        end;
        let want = float_of_int n in
        if b.tokens >= want then begin
          b.tokens <- b.tokens -. want;
          true
        end
        else begin
          note_throttle e d domain res;
          false
        end
      end

let try_take ~domain res = try_take_n ~domain res 1

let take_n ~domain res n =
  if not (try_take_n ~domain res n) then exceeded domain res

let take ~domain res = take_n ~domain res 1

let inuse ~domain res =
  match current () with
  | None -> 0
  | Some e -> (
      match Hashtbl.find_opt e.doms domain with
      | None -> 0
      | Some d -> d.held.(resource_index res))

let throttled () = match current () with None -> 0 | Some e -> e.throttled

let throttled_for ~domain res =
  match current () with
  | None -> 0
  | Some e -> (
      match Hashtbl.find_opt e.doms domain with
      | None -> 0
      | Some d -> d.throttles.(resource_index res))

let domains () =
  match current () with
  | None -> []
  | Some e ->
      Hashtbl.fold (fun k _ acc -> k :: acc) e.doms [] |> List.sort compare

let forget ~domain =
  match current () with
  | None -> ()
  | Some e ->
      (match Hashtbl.find_opt e.doms domain with
      | None -> ()
      | Some d ->
          if Td_obs.Control.enabled () then
            List.iter
              (fun res ->
                if d.held.(resource_index res) <> 0 then inuse_gauge domain res 0)
              all_resources;
          Hashtbl.remove e.doms domain)

let reset_counters () =
  match current () with
  | None -> ()
  | Some e ->
      e.throttled <- 0;
      Hashtbl.iter
        (fun _ d -> Array.fill d.throttles 0 n_resources 0)
        e.doms

(** A small credit scheduler in the style of Xen's: each domain holds
    credits, consuming them as it is picked to run; when every runnable
    domain is out of credits, all credits refill. Used to order guest
    work (e.g. which guest's queued packets are delivered first) —
    "when the guest domain is scheduled next, the hypervisor copies the
    packets into guest domain buffers" (§5.3). *)

type t

val create : ?initial_credit:int -> unit -> t
val add : t -> Domain.t -> unit

val remove : t -> Domain.t -> unit
(** Drop a domain from the run queue (matched by id; unknown domains are
    ignored). Its remaining credit vanishes with it — a destroyed domain
    must not be picked again. *)

val pick : t -> runnable:(Domain.t -> bool) -> Domain.t option
(** The runnable domain with the most credit (ties broken by id);
    charges one credit. [None] when nothing is runnable. *)

val credit : t -> Domain.t -> int
val slices : t -> Domain.t -> int
(** Times the domain has been picked. *)

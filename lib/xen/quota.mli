(** Per-domain resource quotas: the multi-tenant guard rails that stop one
    hostile guest from starving the others.

    Two families of resource are policed, both keyed by domain name:

    - {b Concurrency caps} (map-window page pairs, grant-table entries,
      active grant mappings): a plain high-water limit. {!acquire} admits
      or raises; {!release} returns the units.
    - {b Rate caps} (upcalls, channel notifications, doorbell kicks): a
      token bucket per (domain, resource) refilled on {e simulated} time —
      the clock passed to {!install}, typically ledger cycles divided by
      the simulated CPU frequency — so enforcement is deterministic and
      bit-identical across runs.

    Like {!Td_fault.Engine}, engine state is first-class ({!make}) and
    each OCaml domain carries an ambient slot (domain-local storage)
    that {!install}/{!clear} set directly and {!with_state} scopes
    around a callback — a [World] with a private quota engine wraps its
    entry points in it, so N worlds (and N parallel shards) enforce
    independently. The slot is {e empty} by default: with no engine
    visible every check is a no-op costing nothing, so zero-quota runs
    are bit-identical to the seed. Denials raise the typed
    {!Quota_exceeded} (contained by callers exactly like
    {!Guest_fault.Fault}) and are counted — always in plain counters,
    additionally in the [xen.quota_throttled]/[xen.quota_inuse.*] metrics
    while observability is on. *)

type limits = {
  map_window_pages : int;
      (** concurrent SVM map-window pages per domain; [<= 0] = unlimited *)
  grant_entries : int;
      (** concurrent grant-table entries per domain; [<= 0] = unlimited *)
  grant_maps : int;
      (** concurrent grant mappings per domain; [<= 0] = unlimited *)
  upcalls_per_s : float;  (** upcall rate; [<= 0.] = unlimited *)
  notifications_per_s : float;
      (** I/O-channel notification (staged-frame) rate; [<= 0.] =
          unlimited *)
  doorbells_per_s : float;  (** doorbell kick rate; [<= 0.] = unlimited *)
  rx_per_s : float;
      (** netback→guest rx delivery rate (frames/s); [<= 0.] = unlimited.
          A denied delivery is dropped by netback before the grant copy,
          so a flooded guest costs dom0 almost nothing. *)
  grant_copy_bytes_per_s : float;
      (** grant-copy bandwidth (bytes/s, both directions), charged to the
          granting domain; [<= 0.] = unlimited *)
  burst : float;  (** token-bucket depth (initial and maximum tokens) *)
  grant_copy_burst_bytes : float;
      (** bucket depth for the byte-denominated [Grant_copy_bytes]
          bucket — must cover at least one full frame or every copy is
          denied *)
}

val unlimited : limits
(** Every cap disabled — installing this is equivalent to not installing. *)

val default_limits : limits
(** Finite caps sized for the bench/tdctl demos. *)

type resource =
  | Map_window_pages
  | Grant_entries
  | Grant_maps
  | Upcalls
  | Notifications
  | Doorbells
  | Rx_deliveries  (** rate: netback rx pushes toward a guest *)
  | Grant_copy_bytes  (** rate: grant-copy bandwidth in bytes *)

val all_resources : resource list
val resource_name : resource -> string

exception Quota_exceeded of { domain : string; resource : string }

type state
(** A quota engine: limits, simulated clock, exempt set and the
    per-domain held/bucket/throttle tables. *)

val make : ?now:(unit -> float) -> ?exempt:string list -> limits -> state
(** Build a fresh engine. [now] is the simulated clock in seconds
    (default: a frozen clock, so rate buckets never refill past
    [burst]); [exempt] domains (typically dom0) pass every check. *)

val with_state : state -> (unit -> 'a) -> 'a
(** Run [f] with [state] as the calling OCaml domain's ambient engine,
    restoring whatever was visible before on exit (exception-safe).
    Held units, buckets and throttle counters accumulate in [state]
    across calls. *)

val install : ?now:(unit -> float) -> ?exempt:string list -> limits -> unit
(** Arm the ambient slot with a fresh engine ({!make} + set), so all
    counters start from zero. *)

val clear : unit -> unit
(** Empties the ambient slot; module-level readers return zero/empty
    once no engine is visible. *)

val active : unit -> bool
val limits : unit -> limits option

val acquire : domain:string -> resource -> int -> unit
(** Claim [n] units of a concurrency-capped resource; raises
    {!Quota_exceeded} (and counts the throttle) if the domain would
    exceed its cap. No-op while inactive. *)

val release : domain:string -> resource -> int -> unit

val try_take : domain:string -> resource -> bool
(** Draw one token from a rate bucket. [false] (counted as a throttle)
    when the bucket is dry — for callers that degrade gracefully (skip
    the kick, leave the frame staged). Always [true] while inactive. *)

val take : domain:string -> resource -> unit
(** {!try_take} for callers that cannot proceed: raises
    {!Quota_exceeded} when the bucket is dry. *)

val try_take_n : domain:string -> resource -> int -> bool
(** Draw [n] tokens at once — the whole draw succeeds or none of it
    does. Byte-denominated resources ([Grant_copy_bytes]) refill into a
    [grant_copy_burst_bytes]-deep bucket. *)

val take_n : domain:string -> resource -> int -> unit
(** {!try_take_n} raising {!Quota_exceeded} on a dry bucket. *)

val inuse : domain:string -> resource -> int
(** Current units held (concurrency resources; 0 for rate resources). *)

val throttled : unit -> int
(** Total denials since {!install} (or {!reset_counters}). *)

val throttled_for : domain:string -> resource -> int
val domains : unit -> string list

val forget : domain:string -> unit
(** Drop the visible engine's state for [domain] — held units, buckets
    and per-domain throttle counts (aggregate {!throttled} is kept).
    Called when a domain is destroyed so the registry leaves no
    dangling quota rows. No-op while inactive. *)

val reset_counters : unit -> unit

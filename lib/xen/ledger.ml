type category = Dom0 | DomU | Xen | Driver

let categories = [ Dom0; DomU; Xen; Driver ]

let category_name = function
  | Dom0 -> "dom0"
  | DomU -> "domU"
  | Xen -> "Xen"
  | Driver -> "e1000"

let index = function Dom0 -> 0 | DomU -> 1 | Xen -> 2 | Driver -> 3

(* [domains] is a second, finer-grained axis: cycles attributed to the
   named domain that {e caused} the work, including Xen work done on its
   behalf. Plain ints with no metric mirrors, so runs that never read
   them are bit-identical with or without the rows. *)
type t = { cells : int array; domains : (string, int ref) Hashtbl.t }

(* mirror counter names, indexed like [cells]; the registry copy lets
   Measure cross-check instrumentation against the authoritative ledger *)
let metric_names =
  [| "ledger.cycles.dom0"; "ledger.cycles.domU"; "ledger.cycles.xen";
     "ledger.cycles.driver" |]

let metric_name c = metric_names.(index c)

let create () =
  (* register the mirrors up front so snapshots always carry all four
     categories, even ones a configuration never charges *)
  if Td_obs.Control.enabled () then
    Array.iter
      (fun name -> ignore (Td_obs.Metrics.counter name))
      metric_names;
  { cells = Array.make 4 0; domains = Hashtbl.create 8 }

let charge t c n =
  let i = index c in
  t.cells.(i) <- t.cells.(i) + n;
  if Td_obs.Control.enabled () then
    Td_obs.Metrics.bump_by metric_names.(i) n

let charge_for t c ~domain n =
  charge t c n;
  match Hashtbl.find_opt t.domains domain with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t.domains domain (ref n)

let domain_total t domain =
  match Hashtbl.find_opt t.domains domain with Some r -> !r | None -> 0

let domain_snapshot t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.domains []
  |> List.sort compare

let total t c = t.cells.(index c)
let grand_total t = Array.fold_left ( + ) 0 t.cells

let reset t =
  Array.fill t.cells 0 4 0;
  Hashtbl.reset t.domains;
  if Td_obs.Control.enabled () then
    Array.iter Td_obs.Metrics.reset metric_names
let snapshot t = List.map (fun c -> (c, total t c)) categories

let per_packet t ~packets =
  let p = float_of_int (max 1 packets) in
  List.map (fun c -> (c, float_of_int (total t c) /. p)) categories

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun c -> Format.fprintf fmt "%-6s %d@," (category_name c) (total t c))
    categories;
  Format.fprintf fmt "total  %d@]" (grand_total t)

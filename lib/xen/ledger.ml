type category = Dom0 | DomU | Xen | Driver

let categories = [ Dom0; DomU; Xen; Driver ]

let category_name = function
  | Dom0 -> "dom0"
  | DomU -> "domU"
  | Xen -> "Xen"
  | Driver -> "e1000"

let index = function Dom0 -> 0 | DomU -> 1 | Xen -> 2 | Driver -> 3

(* [domains] is a second, finer-grained axis: cycles attributed to the
   named domain that {e caused} the work, including Xen work done on its
   behalf. Plain ints with no metric mirrors, so runs that never read
   them are bit-identical with or without the rows. *)

(* growable append-only sample log (per-direction I/O latencies, in
   simulated cycles); plain arrays, no metric mirrors, deterministic *)
type samples = { mutable buf : int array; mutable len : int }

let samples_create () = { buf = [||]; len = 0 }

let samples_push s v =
  if s.len = Array.length s.buf then begin
    let cap = max 64 (2 * Array.length s.buf) in
    let nb = Array.make cap 0 in
    Array.blit s.buf 0 nb 0 s.len;
    s.buf <- nb
  end;
  s.buf.(s.len) <- v;
  s.len <- s.len + 1

type t = {
  cells : int array;
  domains : (string, int ref) Hashtbl.t;
  tx_lat : samples;
  rx_lat : samples;
}

(* mirror counter names, indexed like [cells]; the registry copy lets
   Measure cross-check instrumentation against the authoritative ledger *)
let metric_names =
  [| "ledger.cycles.dom0"; "ledger.cycles.domU"; "ledger.cycles.xen";
     "ledger.cycles.driver" |]

let metric_name c = metric_names.(index c)

let create () =
  (* register the mirrors up front so snapshots always carry all four
     categories, even ones a configuration never charges *)
  if Td_obs.Control.enabled () then
    Array.iter
      (fun name -> ignore (Td_obs.Metrics.counter name))
      metric_names;
  {
    cells = Array.make 4 0;
    domains = Hashtbl.create 8;
    tx_lat = samples_create ();
    rx_lat = samples_create ();
  }

let lat t = function `Tx -> t.tx_lat | `Rx -> t.rx_lat
let note_latency t dir v = samples_push (lat t dir) v
let latency_count t dir = (lat t dir).len

(* nearest-rank percentile over a sorted copy; None when no samples *)
let latency_percentile t dir p =
  let s = lat t dir in
  if s.len = 0 then None
  else begin
    let a = Array.sub s.buf 0 s.len in
    Array.sort compare a;
    (* the epsilon keeps an inexact p (99.9 -> 0.99900000000000005) from
       ceiling one rank past the mathematical nearest rank *)
    let rank =
      int_of_float (ceil ((p /. 100. *. float_of_int s.len) -. 1e-9)) - 1
    in
    Some (float_of_int a.(max 0 (min (s.len - 1) rank)))
  end

let charge t c n =
  let i = index c in
  t.cells.(i) <- t.cells.(i) + n;
  if Td_obs.Control.enabled () then
    Td_obs.Metrics.bump_by metric_names.(i) n

let charge_for t c ~domain n =
  charge t c n;
  match Hashtbl.find_opt t.domains domain with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t.domains domain (ref n)

let domain_total t domain =
  match Hashtbl.find_opt t.domains domain with Some r -> !r | None -> 0

(* Destroyed domains keep their cycles on the books: the row is folded
   into a single "<retired>" aggregate so grand totals (and hence shard
   merges and conservation checks) are unchanged by domain churn. *)
let retired_row = "<retired>"

let retire_domain t ~domain =
  match Hashtbl.find_opt t.domains domain with
  | None -> ()
  | Some r ->
      let v = !r in
      Hashtbl.remove t.domains domain;
      if v <> 0 then begin
        match Hashtbl.find_opt t.domains retired_row with
        | Some acc -> acc := !acc + v
        | None -> Hashtbl.replace t.domains retired_row (ref v)
      end

let domain_snapshot t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.domains []
  |> List.sort compare

let total t c = t.cells.(index c)
let grand_total t = Array.fold_left ( + ) 0 t.cells

(* Deterministic shard merge: cell and row sums are order-independent,
   and latency samples are appended in the caller's iteration order —
   callers iterate shards by index, so the merged ledger is identical no
   matter how the host scheduled the shards. Metric mirrors are not
   touched: per-shard charges run with observability disabled, and the
   merge must equal the plain sum of what the shards recorded. *)
let merge_into ~into src =
  Array.iteri (fun i v -> into.cells.(i) <- into.cells.(i) + v) src.cells;
  Hashtbl.iter
    (fun dom r ->
      match Hashtbl.find_opt into.domains dom with
      | Some acc -> acc := !acc + !r
      | None -> Hashtbl.replace into.domains dom (ref !r))
    src.domains;
  List.iter
    (fun dir ->
      let s = lat src dir in
      for i = 0 to s.len - 1 do
        samples_push (lat into dir) s.buf.(i)
      done)
    [ `Tx; `Rx ]

let reset t =
  Array.fill t.cells 0 4 0;
  Hashtbl.reset t.domains;
  t.tx_lat.len <- 0;
  t.rx_lat.len <- 0;
  if Td_obs.Control.enabled () then
    Array.iter Td_obs.Metrics.reset metric_names
let snapshot t = List.map (fun c -> (c, total t c)) categories

let per_packet t ~packets =
  let p = float_of_int (max 1 packets) in
  List.map (fun c -> (c, float_of_int (total t c) /. p)) categories

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun c -> Format.fprintf fmt "%-6s %d@," (category_name c) (total t c))
    categories;
  Format.fprintf fmt "total  %d@]" (grand_total t)

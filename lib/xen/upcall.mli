(** The upcall mechanism (§4.2): a synchronous cross-address-space call
    from the hypervisor driver into a dom0 driver support routine.

    A stub saves the call's parameters (in our model the simulated stack
    already carries them — heap state is shared by construction), switches
    to the upcall stack, switches the world to dom0 if a guest is running,
    delivers a synchronous virtual interrupt whose dom0 handler invokes the
    support routine, and returns to the hypervisor via a hypercall,
    switching back to the original domain. *)

type stats = {
  mutable invocations : int;
  mutable switches_incurred : int;
}

exception Upcall_failed of { routine : string }
(** dom0 failed or timed out the upcall (fault injection,
    {!Td_fault.Upcall_fail}): the support routine never ran, so the
    hypervisor driver instance aborts and the supervisor restarts it. *)

val make_stub :
  hyp:Hypervisor.t ->
  dom0:Domain.t ->
  name:string ->
  impl:Td_cpu.Native.fn ->
  stats ->
  Td_cpu.Native.fn
(** Wrap the dom0 support-routine implementation [impl] into an upcall
    stub suitable for registration under the routine's symbol in the
    hypervisor driver's symbol table. *)

val fresh_stats : unit -> stats

(** Typed, counted faults for guest-reachable validation failures.

    Treating every guest-reachable fault path as an expected event with
    typed handling — not a process-killing [failwith] — is the
    containment posture the SPEC-RG hypercall-vulnerability report
    (PAPERS.md) argues for. Raisers go through {!fail}, which bumps the
    [xen.guest_faults] metric and emits a [Guest_fault] trace event;
    catchers contain the blast radius (drop the request, abort the
    driver) and the hypervisor keeps running. *)

exception Fault of { op : string; reason : string }

val fail : ?domain:string -> op:string -> ('a, unit, string, 'b) format4 -> 'a
(** [fail ~op fmt ...] counts the fault and raises {!Fault} with the
    formatted reason. [op] names the validated operation
    (["Grant_table.map"], ["Skb_pool.release"], ...). [domain], when the
    raiser can attribute the fault to the domain that supplied the bad
    input, additionally accounts it to that domain ({!total_for} and the
    [xen.guest_faults.<domain>] metric). *)

val total : unit -> int
(** Faults counted since start-up (or the last {!reset}) — the plain
    counter behind the [xen.guest_faults] metric, maintained even when
    observability is disabled. *)

val total_for : string -> int
(** Faults attributed to the named domain since start-up (or the last
    {!reset}). *)

val reset : unit -> unit

type t = {
  costs : Sys_costs.t;
  ledger : Ledger.t;
  xen_space : Td_mem.Addr_space.t;
  cpu : Td_cpu.State.t;
  mutable domains : Domain.t list;
  mutable current : Domain.t option;
  mutable switches : int;
}

let create ?(costs = Sys_costs.default) ~ledger ~xen_space ~cpu () =
  { costs; ledger; xen_space; cpu; domains = []; current = None; switches = 0 }

let costs t = t.costs
let ledger t = t.ledger
let xen_space t = t.xen_space
let cpu t = t.cpu

exception No_domains of { op : string }

let () =
  Printexc.register_printer (function
    | No_domains { op } ->
        Some (Printf.sprintf "Td_xen.Hypervisor.No_domains(op %s)" op)
    | _ -> None)

let add_domain t d =
  t.domains <- t.domains @ [ d ];
  if t.current = None then t.current <- Some d

let remove_domain t d =
  let id = Domain.id d in
  t.domains <- List.filter (fun d' -> Domain.id d' <> id) t.domains;
  match t.current with
  | Some c when Domain.id c = id ->
      (* fall back to the oldest remaining domain (dom0 in practice);
         no world switch is charged — the departing domain is gone *)
      t.current <- (match t.domains with d0 :: _ -> Some d0 | [] -> None);
      (match t.current with
      | Some d0 -> Td_cpu.State.switch_space t.cpu (Domain.space d0)
      | None -> ())
  | _ -> ()

let current ?(op = "current") t =
  match t.current with
  | Some d -> d
  | None -> raise (No_domains { op })

let domains t = t.domains
let switches t = t.switches

let category_of d =
  match Domain.kind d with
  | Domain.Driver_domain -> Ledger.Dom0
  | Domain.Guest -> Ledger.DomU

let charge_xen t n = Ledger.charge t.ledger Ledger.Xen n

let charge_xen_for t ~domain n =
  Ledger.charge_for t.ledger Ledger.Xen ~domain n

let charge_domain t d n =
  Ledger.charge_for t.ledger (category_of d) ~domain:(Domain.name d) n

let switch_to t target =
  match t.current with
  | Some d when Domain.id d = Domain.id target -> ()
  | (Some _ | None) as prev ->
      charge_xen t t.costs.Sys_costs.domain_switch;
      t.switches <- t.switches + 1;
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "xen.world_switch";
        Td_obs.Trace.emit
          (Td_obs.Trace.World_switch
             {
               from_dom =
                 (match prev with Some d -> Domain.id d | None -> -1);
               to_dom = Domain.id target;
             })
      end;
      t.current <- Some target;
      Td_cpu.State.switch_space t.cpu (Domain.space target)

let hypercall t ?cost () =
  let cost = Option.value cost ~default:t.costs.Sys_costs.hypercall in
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "xen.hypercall";
    Td_obs.Trace.emit (Td_obs.Trace.Hypercall { cost })
  end;
  (* the hypercall was issued by the current domain: its row pays *)
  match t.current with
  | Some d -> charge_xen_for t ~domain:(Domain.name d) cost
  | None -> charge_xen t cost

let run_in t dom f =
  let prev = current ~op:"run_in" t in
  if Domain.id prev = Domain.id dom then f ()
  else begin
    switch_to t dom;
    let finally () = switch_to t prev in
    match f () with
    | v ->
        finally ();
        v
    | exception e ->
        finally ();
        raise e
  end

let send_virq t dom handler =
  charge_xen t t.costs.Sys_costs.event_channel;
  let deferred = Domain.interrupts_masked dom in
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "xen.virq";
    Td_obs.Trace.emit (Td_obs.Trace.Virq { dom = Domain.id dom; deferred })
  end;
  if deferred then Domain.defer dom handler else run_in t dom handler

(* A guest-reachable validation failure: malformed grant refs, foreign
   sk_buffs, revoke-while-mapped. The SPEC-RG hypercall-vulnerability
   survey's lesson is that these are *expected events* — a malicious or
   buggy guest must be able to trigger them at will without taking the
   hypervisor down. So they raise a typed exception the caller contains
   (dropping the offending request, aborting the offending driver), and
   every occurrence is counted. *)

exception Fault of { op : string; reason : string }

let count = ref 0
let total () = !count
let reset () = count := 0

let fail ~op fmt =
  Printf.ksprintf
    (fun reason ->
      incr count;
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "xen.guest_faults";
        Td_obs.Trace.emit (Td_obs.Trace.Guest_fault { op })
      end;
      raise (Fault { op; reason }))
    fmt

let () =
  Printexc.register_printer (function
    | Fault { op; reason } ->
        Some (Printf.sprintf "Td_xen.Guest_fault.Fault(%s: %s)" op reason)
    | _ -> None)

(* A guest-reachable validation failure: malformed grant refs, foreign
   sk_buffs, revoke-while-mapped, descriptor-ring lengths outside the
   buffer. The SPEC-RG hypercall-vulnerability survey's lesson is that
   these are *expected events* — a malicious or buggy guest must be able
   to trigger them at will without taking the hypervisor down. So they
   raise a typed exception the caller contains (dropping the offending
   request, aborting the offending driver), and every occurrence is
   counted — globally and, when the raiser can attribute it, against the
   offending domain. *)

exception Fault of { op : string; reason : string }

let count = ref 0
let by_domain : (string, int ref) Hashtbl.t = Hashtbl.create 8
let total () = !count

let total_for domain =
  match Hashtbl.find_opt by_domain domain with Some r -> !r | None -> 0

let reset () =
  count := 0;
  Hashtbl.reset by_domain

let fail ?domain ~op fmt =
  Printf.ksprintf
    (fun reason ->
      incr count;
      (match domain with
      | Some d ->
          let cell =
            match Hashtbl.find_opt by_domain d with
            | Some r -> r
            | None ->
                let r = ref 0 in
                Hashtbl.replace by_domain d r;
                r
          in
          incr cell;
          if Td_obs.Control.enabled () then
            Td_obs.Metrics.bump (Printf.sprintf "xen.guest_faults.%s" d)
      | None -> ());
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "xen.guest_faults";
        Td_obs.Trace.emit (Td_obs.Trace.Guest_fault { op })
      end;
      raise (Fault { op; reason }))
    fmt

let () =
  Printexc.register_printer (function
    | Fault { op; reason } ->
        Some (Printf.sprintf "Td_xen.Guest_fault.Fault(%s: %s)" op reason)
    | _ -> None)

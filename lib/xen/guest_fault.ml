(* A guest-reachable validation failure: malformed grant refs, foreign
   sk_buffs, revoke-while-mapped, descriptor-ring lengths outside the
   buffer. The SPEC-RG hypercall-vulnerability survey's lesson is that
   these are *expected events* — a malicious or buggy guest must be able
   to trigger them at will without taking the hypervisor down. So they
   raise a typed exception the caller contains (dropping the offending
   request, aborting the offending driver), and every occurrence is
   counted — globally and, when the raiser can attribute it, against the
   offending domain. *)

exception Fault of { op : string; reason : string }

(* The counters stay process-global (they are diagnostics, not engine
   state), so they must be shard-safe: parallel shard workers fault
   concurrently once fault plans and quotas are legal across shards. *)
let count = Atomic.make 0
let by_domain : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 8
let by_domain_lock = Mutex.create ()
let total () = Atomic.get count

let total_for domain =
  Mutex.protect by_domain_lock (fun () ->
      match Hashtbl.find_opt by_domain domain with
      | Some r -> Atomic.get r
      | None -> 0)

let reset () =
  Atomic.set count 0;
  Mutex.protect by_domain_lock (fun () -> Hashtbl.reset by_domain)

let fail ?domain ~op fmt =
  Printf.ksprintf
    (fun reason ->
      Atomic.incr count;
      (match domain with
      | Some d ->
          let cell =
            Mutex.protect by_domain_lock (fun () ->
                match Hashtbl.find_opt by_domain d with
                | Some r -> r
                | None ->
                    let r = Atomic.make 0 in
                    Hashtbl.replace by_domain d r;
                    r)
          in
          Atomic.incr cell;
          if Td_obs.Control.enabled () then
            Td_obs.Metrics.bump (Printf.sprintf "xen.guest_faults.%s" d)
      | None -> ());
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "xen.guest_faults";
        Td_obs.Trace.emit (Td_obs.Trace.Guest_fault { op })
      end;
      raise (Fault { op; reason }))
    fmt

let () =
  Printexc.register_printer (function
    | Fault { op; reason } ->
        Some (Printf.sprintf "Td_xen.Guest_fault.Fault(%s: %s)" op reason)
    | _ -> None)

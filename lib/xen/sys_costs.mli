(** System-level cycle-cost calibration constants.

    The MISA interpreter measures driver cycles directly; everything the
    simulator does not execute instruction-by-instruction (kernel protocol
    stacks, Xen's context-switch machinery, grant tables, the I/O channel)
    is charged through these constants. They are calibrated so the four
    configurations land near the per-packet profiles of the paper's
    Figures 7 and 8 on a 3.0 GHz machine; see DESIGN.md. What the
    reproduction claims is the *shape* — ratios between configurations —
    not the absolute values. *)

type t = {
  (* kernel protocol stack (TCP/IP + socket + sk_buff management) *)
  kernel_tx_path : int;  (** per packet, transmit side *)
  kernel_rx_path : int;  (** per packet, receive side *)
  (* bare-metal vs paravirtualised kernel *)
  virt_overhead_tx : int;
      (** extra per-packet cost of running the kernel on Xen (dom0 and
          guests): paravirtual MMU ops, interrupt virtualisation *)
  virt_overhead_rx : int;
  (* Xen primitives *)
  hypercall : int;
  domain_switch : int;  (** synchronous world switch incl. TLB fallout *)
  event_channel : int;  (** virtual interrupt delivery *)
  interrupt_dispatch : int;  (** hardware interrupt entering Xen *)
  softirq_schedule : int;
  (* driver-domain I/O path (the unoptimised domU configuration) *)
  grant_map : int;
  grant_unmap : int;
  grant_copy_per_byte : float;
  io_channel : int;  (** ring operation per packet, each direction *)
  bridge : int;  (** dom0 software bridge per packet *)
  netback : int;
  netfront : int;
  dom0_tx_kernel : int;
      (** dom0 kernel work forwarding a guest transmit beyond
          netback/bridge (device layer, queueing) *)
  dom0_rx_kernel : int;  (** dom0-side receive forwarding work *)
  (* TwinDrivers paravirtual path *)
  twin_skb_acquire : int;  (** grab a preallocated dom0 sk_buff *)
  twin_frag_chain : int;  (** chain guest pages into the sk_buff *)
  copy_per_byte : float;  (** hypervisor copy to/from guest buffers *)
  twin_demux : int;  (** MAC demultiplexing on receive *)
  twin_rx_queue : int;
      (** queueing the packet and scheduling the guest for delivery
          (§5.3: packets are queued and copied when the guest runs) *)
  (* upcalls *)
  upcall_stack_switch : int;
  upcall_return : int;
  (* support routines executed natively in a kernel *)
  support_routine : int;  (** average cost of a support routine body *)
  (* mapped-page window lifecycle *)
  window_reclaim : int;
      (** evicting one page-pair from the SVM map window: stlb
          invalidation, two unmaps, hash-chain maintenance and the invlpg
          fallout — the software-shootdown cost the reclaim policy
          amortises over cold pages *)
  (* batched notifications *)
  notify_coalesce : int;
      (** per frame staged without a kick when notifications are batched:
          the producer checks the consumer's pending bit instead of
          trapping. With batch size N the notification cost per frame is
          [notify_coalesce + (hypercall or event_channel) / N] — the
          amortisation the window×batch bench sweep measures *)
  (* shared-memory doorbell data path *)
  doorbell_write : int;
      (** producer-side doorbell ring: a store of the next sequence
          number into the shared doorbell page (plus the memory barrier),
          replacing a [hypercall] / [event_channel] notification while
          the consumer is polling *)
  doorbell_poll : int;
      (** consumer-side doorbell check: read the shared sequence word,
          compare against the last observed value and branch — paid once
          per poll-loop visit, whether or not work was found *)
}

val default : t

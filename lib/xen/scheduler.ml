type entry = { dom : Domain.t; mutable credit : int; mutable slices : int }

type t = { initial : int; mutable entries : entry list }

let create ?(initial_credit = 100) () = { initial = initial_credit; entries = [] }

let add t dom =
  t.entries <- t.entries @ [ { dom; credit = t.initial; slices = 0 } ]

(* an unknown domain is guest-reachable input (a stale or forged domain
   handle in a scheduling hypercall), so it faults typed and attributed,
   not with a process-killing invalid_arg *)
let find t dom =
  match
    List.find_opt (fun e -> Domain.id e.dom = Domain.id dom) t.entries
  with
  | Some e -> e
  | None ->
      Guest_fault.fail ~domain:(Domain.name dom) ~op:"Scheduler.find"
        "unknown domain %d (%s)" (Domain.id dom) (Domain.name dom)

let remove t dom =
  let id = Domain.id dom in
  t.entries <- List.filter (fun e -> Domain.id e.dom <> id) t.entries

let refill t =
  Td_obs.Metrics.bump "sched.refills";
  List.iter (fun e -> e.credit <- t.initial) t.entries

let pick t ~runnable =
  let candidates = List.filter (fun e -> runnable e.dom) t.entries in
  match candidates with
  | [] -> None
  | _ ->
      if List.for_all (fun e -> e.credit <= 0) candidates then refill t;
      let best =
        List.fold_left
          (fun acc e ->
            match acc with
            | None -> Some e
            | Some b ->
                if
                  e.credit > b.credit
                  || (e.credit = b.credit && Domain.id e.dom < Domain.id b.dom)
                then Some e
                else acc)
          None candidates
      in
      Option.map
        (fun e ->
          e.credit <- e.credit - 1;
          e.slices <- e.slices + 1;
          Td_obs.Metrics.bump "sched.slices";
          e.dom)
        best

let credit t dom = (find t dom).credit
let slices t dom = (find t dom).slices

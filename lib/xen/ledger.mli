(** Per-category cycle accounting, matching the categories of the paper's
    Figures 7 and 8: guest-domain kernel, driver-domain kernel, the Xen
    hypervisor, and the e1000 driver itself. *)

type category = Dom0 | DomU | Xen | Driver

val categories : category list
val category_name : category -> string

val metric_name : category -> string
(** Name of the {!Td_obs.Metrics} mirror counter for a category
    ([ledger.cycles.dom0] etc.). While observability is enabled, every
    {!charge} also bumps the mirror and {!reset} zeroes it, so registry
    counters and ledger totals stay equal — the invariant
    {!Twindrivers.Measure} asserts after each run. *)

type t

val create : unit -> t
val charge : t -> category -> int -> unit

val charge_for : t -> category -> domain:string -> int -> unit
(** {!charge}, additionally attributing the cycles to the named domain's
    row — the per-tenant axis the adversarial harness asserts on ("every
    injected op's cost lands in the attacker's row"). Xen work done {e on
    behalf of} a guest is attributed to that guest, not to Xen. *)

val domain_total : t -> string -> int
(** Cycles attributed to the named domain since the last {!reset}. *)

val domain_snapshot : t -> (string * int) list
(** All per-domain rows, sorted by domain name. *)

val retired_row : string
(** Name of the aggregate row ("<retired>") that absorbs the rows of
    destroyed domains. *)

val retire_domain : t -> domain:string -> unit
(** Fold the named domain's row into {!retired_row} and drop it. Category
    cells and the grand total are untouched — destroyed domains keep
    their cycles on the books, so conservation checks and shard merges
    are invariant under domain churn. Unknown domains are ignored. *)

val total : t -> category -> int
val grand_total : t -> int

val note_latency : t -> [ `Tx | `Rx ] -> int -> unit
(** Record one per-direction I/O latency sample (simulated cycles from a
    frame entering the channel to its delivery). Plain arrays with no
    metric mirror — recording is deterministic and invisible to runs
    that never read the samples. *)

val latency_count : t -> [ `Tx | `Rx ] -> int

val latency_percentile : t -> [ `Tx | `Rx ] -> float -> float option
(** Nearest-rank percentile (e.g. [50.], [99.]) over the recorded
    samples; [None] when none were recorded. *)

val merge_into : into:t -> t -> unit
(** Fold [src]'s cells, per-domain rows and latency samples into [into].
    Sums are order-independent and samples append in call order, so
    merging per-shard ledgers by ascending shard index yields a
    bit-identical result regardless of host scheduling. Metric mirrors
    are deliberately untouched (shards charge with observability
    disabled). *)

val reset : t -> unit

val snapshot : t -> (category * int) list

val per_packet : t -> packets:int -> (category * float) list
(** Category totals divided by a packet count — the unit of Figures 7/8. *)

val pp : Format.formatter -> t -> unit

(** Grant tables: the Xen mechanism by which a guest authorises the driver
    domain to map or copy one of its page frames. Used by the baseline
    (unoptimised) netfront/netback path, whose grant operations are a
    documented source of overhead in the paper's §2. *)

type grant_ref = int

type t

val create : owner:Domain.t -> t

val grant : t -> frame:Td_mem.Phys_mem.frame -> grant_ref
(** Guest-side: make a frame available. Subject to the
    {!Quota.Grant_entries} cap when quotas are installed. *)

val revoke : t -> grant_ref -> unit
(** Guest-side: take the page back — always succeeds for a live ref.
    Mappings still active are forcibly torn down and their window vpages
    poisoned, so the {e later accessor} (a stale read/write through the
    old mapping, a stale {!unmap}) gets a deterministic typed
    {!Guest_fault.Fault} instead of silently aliasing the reclaimed page.
    The ref is tombstoned: any subsequent use faults as
    ["revoked grant ref"]. *)

val map : t -> hyp:Hypervisor.t -> into:Domain.t -> at_vpage:int -> grant_ref -> unit
(** dom0-side: map the granted frame; charges {!Sys_costs.grant_map},
    attributed to the owner domain's ledger row. Faults (typed) on a bad
    or revoked ref, or if [at_vpage] is already mapped in [into] — a
    guest-chosen vpage must never clobber an existing mapping. *)

val unmap : t -> hyp:Hypervisor.t -> from:Domain.t -> at_vpage:int -> grant_ref -> unit
(** Faults (typed) unless [r] is currently mapped at exactly
    [at_vpage] in [from] — an arbitrary vpage must never silently unmap
    another grant's (or the kernel's) page. *)

val copy_to :
  t ->
  hyp:Hypervisor.t ->
  grant_ref ->
  offset:int ->
  src:bytes ->
  unit
(** Hypervisor-mediated [gnttab_copy] into the granted frame; charges
    per-byte copy cost to Xen (attributed to the owner). Faults (typed)
    when [offset]/length run past the page — guest-controlled bounds are
    validated, never trusted. *)

val copy_from :
  t -> hyp:Hypervisor.t -> grant_ref -> offset:int -> len:int -> bytes

val active : t -> int
(** Number of outstanding grants. *)

val maps : t -> int
(** Total map operations performed (for overhead accounting tests). *)

let magic = "MISA"

let op_mov = 0x01
let op_movzx = 0x02
let op_lea = 0x03
let op_alu = 0x04
let op_shift = 0x05
let op_cmp = 0x06
let op_test = 0x07
let op_inc = 0x08
let op_dec = 0x09
let op_neg = 0x0A
let op_not = 0x0B
let op_imul = 0x0C
let op_push = 0x0D
let op_pop = 0x0E
let op_jmp_abs = 0x0F
let op_jmp_ind = 0x10
let op_jcc = 0x11
let op_call_abs = 0x12
let op_call_ind = 0x13
let op_ret = 0x14
let op_str = 0x15
let op_pushf = 0x16
let op_popf = 0x17
let op_nop = 0x18
let op_hlt = 0x19
let op_xchg = 0x1A

let width_code = function Width.W8 -> 0 | Width.W16 -> 1 | Width.W32 -> 2
let alu_code = function
  | Insn.Add -> 0
  | Insn.Sub -> 1
  | Insn.And -> 2
  | Insn.Or -> 3
  | Insn.Xor -> 4
  | Insn.Adc -> 5
  | Insn.Sbb -> 6

let shift_code = function Insn.Shl -> 0 | Insn.Shr -> 1 | Insn.Sar -> 2
let str_code = function Insn.Movs -> 0 | Insn.Stos -> 1 | Insn.Lods -> 2

let cond_code c =
  match c with
  | Cond.E -> 0
  | Cond.NE -> 1
  | Cond.L -> 2
  | Cond.LE -> 3
  | Cond.G -> 4
  | Cond.GE -> 5
  | Cond.B -> 6
  | Cond.BE -> 7
  | Cond.A -> 8
  | Cond.AE -> 9
  | Cond.S -> 10
  | Cond.NS -> 11

let scale_code = function
  | Operand.S1 -> 0
  | Operand.S2 -> 1
  | Operand.S4 -> 2
  | Operand.S8 -> 3

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u32 buf v =
  let v = v land 0xFFFFFFFF in
  put_u8 buf v;
  put_u8 buf (v lsr 8);
  put_u8 buf (v lsr 16);
  put_u8 buf (v lsr 24)

let put_mem buf (m : Operand.mem) =
  (match m.Operand.sym with
  | Some s -> invalid_arg ("Encode: unresolved symbol " ^ s)
  | None -> ());
  let flags =
    (match m.Operand.base with Some _ -> 1 | None -> 0)
    lor (match m.Operand.index with Some _ -> 2 | None -> 0)
    lor
    match m.Operand.index with
    | Some (_, s) -> scale_code s lsl 2
    | None -> 0
  in
  put_u8 buf flags;
  (match m.Operand.base with Some r -> put_u8 buf (Reg.index r) | None -> ());
  (match m.Operand.index with
  | Some (r, _) -> put_u8 buf (Reg.index r)
  | None -> ());
  put_u32 buf m.Operand.disp

let put_operand buf = function
  | Operand.Imm n ->
      put_u8 buf 0;
      put_u32 buf n
  | Operand.Reg r ->
      put_u8 buf 1;
      put_u8 buf (Reg.index r)
  | Operand.Mem m ->
      put_u8 buf 2;
      put_mem buf m

let put_insn buf prog insn =
  let op code = put_u8 buf code in
  let target = function
    | Insn.Abs a -> put_u32 buf a
    | Insn.Lbl l -> invalid_arg ("Encode: unresolved label " ^ l)
    | Insn.Ind _ -> assert false
  in
  match insn with
  | Insn.Mov (w, a, b) ->
      op op_mov;
      put_u8 buf (width_code w);
      put_operand buf a;
      put_operand buf b
  | Insn.Movzx (w, a, r) ->
      op op_movzx;
      put_u8 buf (width_code w);
      put_operand buf a;
      put_u8 buf (Reg.index r)
  | Insn.Lea (m, r) ->
      op op_lea;
      put_mem buf m;
      put_u8 buf (Reg.index r)
  | Insn.Alu (o, a, b) ->
      op op_alu;
      put_u8 buf (alu_code o);
      put_operand buf a;
      put_operand buf b
  | Insn.Shift (o, a, b) ->
      op op_shift;
      put_u8 buf (shift_code o);
      put_operand buf a;
      put_operand buf b
  | Insn.Cmp (a, b) ->
      op op_cmp;
      put_operand buf a;
      put_operand buf b
  | Insn.Test (a, b) ->
      op op_test;
      put_operand buf a;
      put_operand buf b
  | Insn.Inc a ->
      op op_inc;
      put_operand buf a
  | Insn.Dec a ->
      op op_dec;
      put_operand buf a
  | Insn.Neg a ->
      op op_neg;
      put_operand buf a
  | Insn.Not a ->
      op op_not;
      put_operand buf a
  | Insn.Imul (a, r) ->
      op op_imul;
      put_operand buf a;
      put_u8 buf (Reg.index r)
  | Insn.Xchg (a, r) ->
      op op_xchg;
      put_operand buf a;
      put_u8 buf (Reg.index r)
  | Insn.Push a ->
      op op_push;
      put_operand buf a
  | Insn.Pop a ->
      op op_pop;
      put_operand buf a
  | Insn.Jmp (Insn.Ind o) ->
      op op_jmp_ind;
      put_operand buf o
  | Insn.Jmp t ->
      op op_jmp_abs;
      target t
  | Insn.Jcc (c, t) ->
      op op_jcc;
      put_u8 buf (cond_code c);
      put_u32 buf
        (match t with
        | Insn.Abs a -> a
        | Insn.Lbl l -> Program.addr_of_label prog l
        | Insn.Ind _ -> invalid_arg "encode: indirect conditional jump")
  | Insn.Call (Insn.Ind o) ->
      op op_call_ind;
      put_operand buf o
  | Insn.Call t ->
      op op_call_abs;
      target t
  | Insn.Ret -> op op_ret
  | Insn.Str (o, w, rep) ->
      op op_str;
      put_u8 buf (str_code o);
      put_u8 buf (width_code w);
      put_u8 buf (if rep then 1 else 0)
  | Insn.Pushf -> op op_pushf
  | Insn.Popf -> op op_popf
  | Insn.Nop -> op op_nop
  | Insn.Hlt -> op op_hlt

let encode (prog : Program.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_u8 buf 1 (* version *);
  put_u8 buf 0;
  put_u8 buf 0;
  put_u8 buf 0;
  put_u32 buf prog.Program.base;
  put_u32 buf (Array.length prog.Program.code);
  Array.iter (put_insn buf prog) prog.Program.code;
  Buffer.to_bytes buf

let encoded_size prog = Bytes.length (encode prog)

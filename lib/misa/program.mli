(** Assembly programs: source form (labels interleaved with instructions)
    and assembled form (instruction array with resolved targets).

    A program occupies a contiguous range of code addresses starting at
    [base]; each instruction occupies four bytes, so the address of
    instruction [i] is [base + 4*i]. Assembling resolves local labels in
    jump/call targets to absolute code addresses and symbolic displacements
    in memory operands to absolute data addresses (the analogue of ELF
    relocation in the paper's loader). *)

type item = Label of string | Ins of Insn.t

type source = { name : string; items : item list }

type t = {
  name : string;
  base : int;
  code : Insn.t array;
  label_index : (string, int) Hashtbl.t;  (** label -> instruction index *)
  block_end : int array;
      (** [block_end.(i)] is the index of the last instruction of the
          straight-line run starting at [i]: the first control transfer
          ([Insn.is_control_transfer]) at or after [i], or the last
          instruction of the program. Precomputed at assembly for the
          interpreter's basic-block execution engine. *)
}

exception Unresolved of string
(** Raised when a symbol or label cannot be resolved at assembly time. *)

val source : string -> item list -> source

val assemble : ?symbols:(string -> int option) -> base:int -> source -> t
(** [assemble ~symbols ~base src] lays out [src] at [base]. [symbols] is
    consulted for call/jump targets that are not local labels and for
    symbolic memory displacements; unresolved names raise {!Unresolved}.
    Conditional jumps must target local labels; their [Lbl] targets are
    lowered to pre-resolved [Abs] addresses in the assembled code. *)

val size_bytes : t -> int
(** Size of the code range: [4 * Array.length code]. *)

val contains : t -> int -> bool
(** [contains p addr] is true when [addr] falls inside [p]'s code range. *)

val index_of_addr : t -> int -> int
(** Instruction index for a code address inside the program. Raises
    [Invalid_argument] for misaligned or out-of-range addresses. *)

val addr_of_index : t -> int -> int

val addr_of_label : t -> string -> int
(** Code address of a label. Raises {!Unresolved} when absent. *)

val entry_points : source -> string list
(** All labels defined in the source, in order of appearance. *)

val instruction_count : source -> int

val heap_reference_count : source -> int
(** Number of instructions containing a non-stack-relative memory operand
    (the paper reports ~25% of driver instructions are such). *)

val pp_source : Format.formatter -> source -> unit
val to_string_source : source -> string

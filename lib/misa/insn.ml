type alu = Add | Sub | Adc | Sbb | And | Or | Xor
type shift = Shl | Shr | Sar
type str_op = Movs | Stos | Lods

type target = Lbl of string | Abs of int | Ind of Operand.t

type t =
  | Mov of Width.t * Operand.t * Operand.t
  | Movzx of Width.t * Operand.t * Reg.t
  | Lea of Operand.mem * Reg.t
  | Alu of alu * Operand.t * Operand.t
  | Shift of shift * Operand.t * Operand.t
  | Cmp of Operand.t * Operand.t
  | Test of Operand.t * Operand.t
  | Inc of Operand.t
  | Dec of Operand.t
  | Neg of Operand.t
  | Not of Operand.t
  | Imul of Operand.t * Reg.t
  | Xchg of Operand.t * Reg.t
  | Push of Operand.t
  | Pop of Operand.t
  | Jmp of target
  | Jcc of Cond.t * target
  | Call of target
  | Ret
  | Str of str_op * Width.t * bool
  | Pushf
  | Popf
  | Nop
  | Hlt

let mem_of_operand = function
  | Operand.Mem m -> [ m ]
  | Operand.Imm _ | Operand.Reg _ -> []

let mem_operands = function
  | Mov (_, a, b) | Alu (_, a, b) | Shift (_, a, b) | Cmp (a, b) | Test (a, b)
    ->
      mem_of_operand a @ mem_of_operand b
  | Movzx (_, a, _) | Imul (a, _) | Xchg (a, _) -> mem_of_operand a
  | Inc a | Dec a | Neg a | Not a | Push a | Pop a -> mem_of_operand a
  | Jmp (Ind a) | Call (Ind a) | Jcc (_, Ind a) -> mem_of_operand a
  | Jmp (Lbl _ | Abs _) | Call (Lbl _ | Abs _) | Jcc (_, (Lbl _ | Abs _)) -> []
  | Lea (_, _) | Ret | Str (_, _, _) | Pushf | Popf | Nop | Hlt -> []

let references_heap i =
  List.exists (fun m -> not (Operand.is_stack_relative m)) (mem_operands i)

let op_reads = Operand.regs_read

let op_writes = function
  | Operand.Reg r -> [ r ]
  | Operand.Imm _ | Operand.Mem _ -> []

(* Registers needed to address a destination operand (read even though the
   operand position is a "write"). *)
let op_addr = function
  | Operand.Mem m -> Operand.regs_addr m
  | Operand.Imm _ | Operand.Reg _ -> []

let target_reads = function
  | Lbl _ | Abs _ -> []
  | Ind o -> op_reads o

let regs_read = function
  | Mov (_, src, dst) -> op_reads src @ op_addr dst
  | Movzx (_, src, _) -> op_reads src
  | Lea (m, _) -> Operand.regs_addr m
  | Alu (_, src, dst) | Shift (_, src, dst) -> op_reads src @ op_reads dst
  | Cmp (a, b) | Test (a, b) -> op_reads a @ op_reads b
  | Inc o | Dec o | Neg o | Not o -> op_reads o
  | Imul (src, dst) -> op_reads src @ [ dst ]
  | Xchg (o, r) -> r :: op_reads o
  | Push o -> Reg.ESP :: op_reads o
  | Pop o -> Reg.ESP :: op_addr o
  | Jmp t | Call t | Jcc (_, t) -> target_reads t
  | Ret -> [ Reg.ESP ]
  | Str (Movs, _, rep) ->
      Reg.ESI :: Reg.EDI :: (if rep then [ Reg.ECX ] else [])
  | Str (Stos, _, rep) ->
      Reg.EAX :: Reg.EDI :: (if rep then [ Reg.ECX ] else [])
  | Str (Lods, _, rep) -> Reg.ESI :: (if rep then [ Reg.ECX ] else [])
  | Pushf | Popf -> [ Reg.ESP ]
  | Nop | Hlt -> []

let regs_written = function
  | Mov (_, _, dst) -> op_writes dst
  | Movzx (_, _, r) | Lea (_, r) -> [ r ]
  | Alu (_, _, dst) | Shift (_, _, dst) -> op_writes dst
  | Cmp (_, _) | Test (_, _) -> []
  | Inc o | Dec o | Neg o | Not o -> op_writes o
  | Imul (_, dst) -> [ dst ]
  | Xchg (o, r) -> r :: op_writes o
  | Push _ -> [ Reg.ESP ]
  | Pop o -> Reg.ESP :: op_writes o
  | Jmp _ | Jcc (_, _) -> []
  | Call _ | Ret -> [ Reg.ESP ]
  | Str (Movs, _, rep) ->
      Reg.ESI :: Reg.EDI :: (if rep then [ Reg.ECX ] else [])
  | Str (Stos, _, rep) -> Reg.EDI :: (if rep then [ Reg.ECX ] else [])
  | Str (Lods, _, rep) ->
      Reg.EAX :: Reg.ESI :: (if rep then [ Reg.ECX ] else [])
  | Pushf | Popf -> [ Reg.ESP ]
  | Nop | Hlt -> []

let sets_flags = function
  | Alu (_, _, _) | Shift (_, _, _) | Cmp (_, _) | Test (_, _) | Inc _ | Dec _
  | Neg _ | Imul (_, _) ->
      true
  | Xchg (_, _) -> false
  | Mov (_, _, _) | Movzx (_, _, _) | Lea (_, _) | Not _ | Push _ | Pop _
  | Jmp _ | Jcc (_, _) | Call _ | Ret | Str (_, _, _) | Pushf | Nop | Hlt ->
      false
  | Popf -> true

let reads_flags = function
  | Jcc (_, _) | Pushf -> true
  | Alu ((Adc | Sbb), _, _) -> true
  | Mov (_, _, _) | Movzx (_, _, _) | Lea (_, _) | Alu (_, _, _)
  | Shift (_, _, _) | Cmp (_, _) | Test (_, _) | Inc _ | Dec _ | Neg _ | Not _
  | Imul (_, _) | Xchg (_, _) | Push _ | Pop _ | Jmp _ | Call _ | Ret
  | Str (_, _, _) | Popf | Nop | Hlt ->
      false

let is_terminator = function
  | Jmp _ | Ret | Hlt -> true
  | Mov (_, _, _) | Movzx (_, _, _) | Lea (_, _) | Alu (_, _, _)
  | Shift (_, _, _) | Cmp (_, _) | Test (_, _) | Inc _ | Dec _ | Neg _ | Not _
  | Imul (_, _) | Xchg (_, _) | Push _ | Pop _ | Jcc (_, _) | Call _
  | Str (_, _, _) | Pushf | Popf | Nop ->
      false

let is_control_transfer = function
  | Jmp _ | Jcc (_, _) | Call _ | Ret | Hlt -> true
  | Mov (_, _, _) | Movzx (_, _, _) | Lea (_, _) | Alu (_, _, _)
  | Shift (_, _, _) | Cmp (_, _) | Test (_, _) | Inc _ | Dec _ | Neg _ | Not _
  | Imul (_, _) | Xchg (_, _) | Push _ | Pop _ | Str (_, _, _) | Pushf | Popf
  | Nop ->
      false

let equal (a : t) (b : t) = a = b

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Adc -> "adc"
  | Sbb -> "sbb"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"

let shift_name = function Shl -> "shl" | Shr -> "shr" | Sar -> "sar"
let str_name = function Movs -> "movs" | Stos -> "stos" | Lods -> "lods"

let pp_target fmt = function
  | Lbl l -> Format.pp_print_string fmt l
  | Abs a -> Format.fprintf fmt "0x%x" a
  | Ind o -> Format.fprintf fmt "*%a" Operand.pp o

let pp fmt insn =
  let two name a b = Format.fprintf fmt "%s %a, %a" name Operand.pp a Operand.pp b in
  let one name a = Format.fprintf fmt "%s %a" name Operand.pp a in
  match insn with
  | Mov (w, src, dst) -> two ("mov" ^ Width.suffix w) src dst
  | Movzx (w, src, r) ->
      Format.fprintf fmt "movzx%s %a, %a" (Width.suffix w) Operand.pp src
        Reg.pp r
  | Lea (m, r) -> Format.fprintf fmt "leal %a, %a" Operand.pp_mem m Reg.pp r
  | Alu (op, src, dst) -> two (alu_name op ^ "l") src dst
  | Shift (op, cnt, dst) -> two (shift_name op ^ "l") cnt dst
  | Cmp (a, b) -> two "cmpl" a b
  | Test (a, b) -> two "testl" a b
  | Inc a -> one "incl" a
  | Dec a -> one "decl" a
  | Neg a -> one "negl" a
  | Not a -> one "notl" a
  | Imul (src, dst) ->
      Format.fprintf fmt "imull %a, %a" Operand.pp src Reg.pp dst
  | Xchg (o, r) -> Format.fprintf fmt "xchgl %a, %a" Operand.pp o Reg.pp r
  | Push a -> one "pushl" a
  | Pop a -> one "popl" a
  | Jmp t -> Format.fprintf fmt "jmp %a" pp_target t
  | Jcc (c, t) -> Format.fprintf fmt "j%s %a" (Cond.to_string c) pp_target t
  | Call t -> Format.fprintf fmt "call %a" pp_target t
  | Ret -> Format.pp_print_string fmt "ret"
  | Str (op, w, rep) ->
      Format.fprintf fmt "%s%s%s"
        (if rep then "rep; " else "")
        (str_name op) (Width.suffix w)
  | Pushf -> Format.pp_print_string fmt "pushf"
  | Popf -> Format.pp_print_string fmt "popf"
  | Nop -> Format.pp_print_string fmt "nop"
  | Hlt -> Format.pp_print_string fmt "hlt"

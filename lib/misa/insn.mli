(** MISA instructions.

    The set is the subset of x86 that network drivers exercise: data moves
    with the three usual widths, ALU operations, shifts, compares, stack
    operations, direct/indirect jumps and calls, and the [rep]-prefixed
    string operations the paper treats specially during rewriting. *)

type alu = Add | Sub | Adc | Sbb | And | Or | Xor
type shift = Shl | Shr | Sar
type str_op = Movs | Stos | Lods

type target =
  | Lbl of string  (** local label or external symbol, resolved at assembly *)
  | Abs of int  (** absolute code address *)
  | Ind of Operand.t  (** indirect through register or memory *)

type t =
  | Mov of Width.t * Operand.t * Operand.t  (** [Mov (w, src, dst)] *)
  | Movzx of Width.t * Operand.t * Reg.t  (** zero-extending narrow load *)
  | Lea of Operand.mem * Reg.t
  | Alu of alu * Operand.t * Operand.t  (** [Alu (op, src, dst)]; sets flags *)
  | Shift of shift * Operand.t * Operand.t  (** count is [Imm] or [Reg ECX] *)
  | Cmp of Operand.t * Operand.t  (** [Cmp (src, dst)] computes dst - src *)
  | Test of Operand.t * Operand.t
  | Inc of Operand.t
  | Dec of Operand.t
  | Neg of Operand.t
  | Not of Operand.t
  | Imul of Operand.t * Reg.t
  | Xchg of Operand.t * Reg.t  (** swap; no flags *)
  | Push of Operand.t
  | Pop of Operand.t
  | Jmp of target
  | Jcc of Cond.t * target
      (** conditional jump; written as a [Lbl] and lowered to a pre-resolved
          [Abs] address by {!Program.assemble} (always a local label — see
          {!Program.assemble}); [Ind] is rejected *)
  | Call of target
  | Ret
  | Str of str_op * Width.t * bool  (** string op; [true] = [rep] prefix *)
  | Pushf  (** push the flags word (used to preserve flags across SVM code) *)
  | Popf
  | Nop
  | Hlt  (** stop execution (end of a top-level routine) *)

val mem_operands : t -> Operand.mem list
(** All memory references made by the instruction, explicit operands only
    (string ops access memory through [ESI]/[EDI] implicitly;
    [Push]/[Pop] access the stack implicitly). *)

val references_heap : t -> bool
(** True when the instruction contains an explicit non-stack-relative memory
    operand, i.e. it must be rewritten to use SVM. [Lea] computes an address
    but performs no access, so it does not count. *)

val regs_read : t -> Reg.t list
(** Registers read by the instruction (including address registers and the
    implicit registers of string ops and shifts). *)

val regs_written : t -> Reg.t list
(** Registers written by the instruction. *)

val sets_flags : t -> bool
val reads_flags : t -> bool

val is_terminator : t -> bool
(** True for instructions that end a basic block: jumps, returns, [Hlt]. *)

val is_control_transfer : t -> bool
(** True for every instruction that can move the pc away from fall-through:
    {!is_terminator} plus [Jcc] and [Call]. The interpreter's block engine
    cuts straight-line runs at these (a [Call] may dispatch to a native or
    re-enter the registry, so it ends a block even though it returns). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

exception Malformed of string

type cursor = { data : bytes; mutable pos : int }

let u8 c =
  if c.pos >= Bytes.length c.data then raise (Malformed "truncated");
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let u32 c =
  let a = u8 c in
  let b = u8 c in
  let d = u8 c in
  let e = u8 c in
  a lor (b lsl 8) lor (d lsl 16) lor (e lsl 24)

let width_of = function
  | 0 -> Width.W8
  | 1 -> Width.W16
  | 2 -> Width.W32
  | n -> raise (Malformed (Printf.sprintf "bad width code %d" n))

let alu_of = function
  | 0 -> Insn.Add
  | 1 -> Insn.Sub
  | 2 -> Insn.And
  | 3 -> Insn.Or
  | 4 -> Insn.Xor
  | 5 -> Insn.Adc
  | 6 -> Insn.Sbb
  | n -> raise (Malformed (Printf.sprintf "bad alu code %d" n))

let shift_of = function
  | 0 -> Insn.Shl
  | 1 -> Insn.Shr
  | 2 -> Insn.Sar
  | n -> raise (Malformed (Printf.sprintf "bad shift code %d" n))

let str_of = function
  | 0 -> Insn.Movs
  | 1 -> Insn.Stos
  | 2 -> Insn.Lods
  | n -> raise (Malformed (Printf.sprintf "bad string code %d" n))

let cond_of = function
  | 0 -> Cond.E
  | 1 -> Cond.NE
  | 2 -> Cond.L
  | 3 -> Cond.LE
  | 4 -> Cond.G
  | 5 -> Cond.GE
  | 6 -> Cond.B
  | 7 -> Cond.BE
  | 8 -> Cond.A
  | 9 -> Cond.AE
  | 10 -> Cond.S
  | 11 -> Cond.NS
  | n -> raise (Malformed (Printf.sprintf "bad condition code %d" n))

let scale_of = function
  | 0 -> Operand.S1
  | 1 -> Operand.S2
  | 2 -> Operand.S4
  | 3 -> Operand.S8
  | _ -> assert false

let reg_of c =
  let i = u8 c in
  if i > 7 then raise (Malformed (Printf.sprintf "bad register %d" i));
  Reg.of_index i

let mem_of c =
  let flags = u8 c in
  let base = if flags land 1 <> 0 then Some (reg_of c) else None in
  let index =
    if flags land 2 <> 0 then
      let r = reg_of c in
      Some (r, scale_of ((flags lsr 2) land 3))
    else None
  in
  let disp = u32 c in
  { Operand.base; index; disp; sym = None }

let operand_of c =
  match u8 c with
  | 0 -> Operand.Imm (u32 c)
  | 1 -> Operand.Reg (reg_of c)
  | 2 -> Operand.Mem (mem_of c)
  | n -> raise (Malformed (Printf.sprintf "bad operand tag %d" n))

(* decoded instruction, with raw target addresses where labels will go *)
type raw =
  | Plain of Insn.t
  | Jmp_to of int
  | Jcc_to of Cond.t * int
  | Call_to of int

let insn_of c =
  let two f =
    let a = operand_of c in
    let b = operand_of c in
    f a b
  in
  match u8 c with
  | 0x01 ->
      let w = width_of (u8 c) in
      Plain (two (fun a b -> Insn.Mov (w, a, b)))
  | 0x02 ->
      let w = width_of (u8 c) in
      let a = operand_of c in
      Plain (Insn.Movzx (w, a, reg_of c))
  | 0x03 ->
      let m = mem_of c in
      Plain (Insn.Lea (m, reg_of c))
  | 0x04 ->
      let o = alu_of (u8 c) in
      Plain (two (fun a b -> Insn.Alu (o, a, b)))
  | 0x05 ->
      let o = shift_of (u8 c) in
      Plain (two (fun a b -> Insn.Shift (o, a, b)))
  | 0x06 -> Plain (two (fun a b -> Insn.Cmp (a, b)))
  | 0x07 -> Plain (two (fun a b -> Insn.Test (a, b)))
  | 0x08 -> Plain (Insn.Inc (operand_of c))
  | 0x09 -> Plain (Insn.Dec (operand_of c))
  | 0x0A -> Plain (Insn.Neg (operand_of c))
  | 0x0B -> Plain (Insn.Not (operand_of c))
  | 0x0C ->
      let a = operand_of c in
      Plain (Insn.Imul (a, reg_of c))
  | 0x0D -> Plain (Insn.Push (operand_of c))
  | 0x0E -> Plain (Insn.Pop (operand_of c))
  | 0x0F -> Jmp_to (u32 c)
  | 0x10 -> Plain (Insn.Jmp (Insn.Ind (operand_of c)))
  | 0x11 ->
      let cond = cond_of (u8 c) in
      Jcc_to (cond, u32 c)
  | 0x12 -> Call_to (u32 c)
  | 0x13 -> Plain (Insn.Call (Insn.Ind (operand_of c)))
  | 0x14 -> Plain Insn.Ret
  | 0x15 ->
      let o = str_of (u8 c) in
      let w = width_of (u8 c) in
      let rep = u8 c <> 0 in
      Plain (Insn.Str (o, w, rep))
  | 0x16 -> Plain Insn.Pushf
  | 0x17 -> Plain Insn.Popf
  | 0x18 -> Plain Insn.Nop
  | 0x19 -> Plain Insn.Hlt
  | 0x1A ->
      let a = operand_of c in
      Plain (Insn.Xchg (a, reg_of c))
  | n -> raise (Malformed (Printf.sprintf "bad opcode 0x%x at %d" n (c.pos - 1)))

let decode ?(name = "disassembled") data =
  let c = { data; pos = 0 } in
  if Bytes.length data < 16 then raise (Malformed "too short");
  let m = Bytes.sub_string data 0 4 in
  if m <> Encode.magic then raise (Malformed "bad magic");
  c.pos <- 4;
  let version = u8 c in
  if version <> 1 then raise (Malformed "unsupported version");
  ignore (u8 c);
  ignore (u8 c);
  ignore (u8 c);
  let base = u32 c in
  let count = u32 c in
  let raws = Array.init count (fun _ -> insn_of c) in
  if c.pos <> Bytes.length data then raise (Malformed "trailing bytes");
  (* rediscover labels: every in-range target becomes a local label *)
  let size = 4 * count in
  let in_range a = a >= base && a < base + size && (a - base) mod 4 = 0 in
  let labelled = Hashtbl.create 32 in
  Array.iter
    (function
      | Jmp_to a | Jcc_to (_, a) | Call_to a when in_range a ->
          Hashtbl.replace labelled ((a - base) / 4) ()
      | Jmp_to _ | Jcc_to _ | Call_to _ | Plain _ -> ())
    raws;
  let label_of idx = Printf.sprintf ".L_%d" idx in
  let resolve a =
    if in_range a then Insn.Lbl (label_of ((a - base) / 4)) else Insn.Abs a
  in
  let items = ref [] in
  Array.iteri
    (fun idx raw ->
      if Hashtbl.mem labelled idx then
        items := Program.Label (label_of idx) :: !items;
      let insn =
        match raw with
        | Plain i -> i
        | Jmp_to a -> Insn.Jmp (resolve a)
        | Call_to a -> Insn.Call (resolve a)
        | Jcc_to (cond, a) ->
            if not (in_range a) then
              raise (Malformed "conditional jump out of program range");
            Insn.Jcc (cond, Insn.Lbl (label_of ((a - base) / 4)))
      in
      items := Program.Ins insn :: !items)
    raws;
  (Program.source name (List.rev !items), base)

let roundtrips prog =
  match decode (Encode.encode prog) with
  | src, base ->
      let prog' = Program.assemble ~base src in
      base = prog.Program.base
      && Array.length prog'.Program.code = Array.length prog.Program.code
  | exception Malformed _ -> false

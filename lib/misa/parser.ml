exception Syntax_error of int * string

let fail line msg = raise (Syntax_error (line, msg))

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$'

let strip s = String.trim s

(* Parse an integer literal, decimal or 0x-hex, with optional sign. *)
let parse_int_opt s =
  let s = strip s in
  if s = "" then None
  else
    let neg, s =
      if s.[0] = '-' then (true, String.sub s 1 (String.length s - 1))
      else (false, s)
    in
    let value =
      if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')
      then int_of_string_opt s
      else if String.for_all (fun c -> c >= '0' && c <= '9') s && s <> "" then
        int_of_string_opt s
      else None
    in
    Option.map (fun v -> if neg then -v else v) value

(* Split a displacement expression "12+sym" / "sym" / "12" into parts. *)
let parse_disp line s =
  let s = strip s in
  if s = "" then (0, None)
  else
    match String.index_opt s '+' with
    | Some i ->
        let l = strip (String.sub s 0 i) in
        let r = strip (String.sub s (i + 1) (String.length s - i - 1)) in
        let number, symbol =
          match (parse_int_opt l, parse_int_opt r) with
          | Some n, None -> (n, r)
          | None, Some n -> (n, l)
          | Some _, Some _ -> fail line ("two numeric displacement parts: " ^ s)
          | None, None -> fail line ("bad displacement: " ^ s)
        in
        (number, Some symbol)
    | None -> (
        match parse_int_opt s with
        | Some n -> (n, None)
        | None ->
            if String.for_all is_ident_char s then (0, Some s)
            else fail line ("bad displacement: " ^ s))

let parse_reg line s =
  let s = strip s in
  if String.length s < 2 || s.[0] <> '%' then fail line ("expected register: " ^ s)
  else
    match Reg.of_string (String.sub s 1 (String.length s - 1)) with
    | Some r -> r
    | None -> fail line ("unknown register: " ^ s)

(* Split a string on commas that are at paren depth 0. *)
let split_commas s =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
          incr depth;
          Buffer.add_char buf c
      | ')' ->
          decr depth;
          Buffer.add_char buf c
      | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map strip !parts

let parse_mem line s =
  match String.index_opt s '(' with
  | None ->
      let disp, sym = parse_disp line s in
      Operand.mem ?sym disp
  | Some i ->
      if s.[String.length s - 1] <> ')' then fail line ("expected ')': " ^ s);
      let disp_str = String.sub s 0 i in
      let inner = String.sub s (i + 1) (String.length s - i - 2) in
      let disp, sym = parse_disp line disp_str in
      let parts = split_commas inner in
      let base, index =
        match parts with
        | [ b ] -> (Some (parse_reg line b), None)
        | [ b; i ] ->
            let base = if strip b = "" then None else Some (parse_reg line b) in
            (base, Some (parse_reg line i, Operand.S1))
        | [ b; i; sc ] ->
            let base = if strip b = "" then None else Some (parse_reg line b) in
            let scale =
              match parse_int_opt sc with
              | Some n -> (
                  match Operand.scale_of_int n with
                  | Some s -> s
                  | None -> fail line ("bad scale: " ^ sc))
              | None -> fail line ("bad scale: " ^ sc)
            in
            (base, Some (parse_reg line i, scale))
        | [] | _ :: _ :: _ :: _ :: _ -> fail line ("bad memory operand: " ^ s)
      in
      { base; index; disp; sym }

let parse_operand_line line s =
  let s = strip s in
  if s = "" then fail line "empty operand"
  else if s.[0] = '$' then
    match parse_int_opt (String.sub s 1 (String.length s - 1)) with
    | Some n -> Operand.Imm n
    | None -> fail line ("bad immediate: " ^ s)
  else if s.[0] = '%' then Operand.Reg (parse_reg line s)
  else Operand.Mem (parse_mem line s)

let parse_operand s = parse_operand_line 0 s

let parse_target line s =
  let s = strip s in
  if s = "" then fail line "empty target"
  else if s.[0] = '*' then
    Insn.Ind (parse_operand_line line (String.sub s 1 (String.length s - 1)))
  else
    match parse_int_opt s with
    | Some a -> Insn.Abs a
    | None -> Insn.Lbl s

let width_of_mnemonic line m =
  let n = String.length m in
  if n = 0 then fail line "empty mnemonic"
  else
    match Width.of_suffix (String.sub m (n - 1) 1) with
    | Some w -> (String.sub m 0 (n - 1), w)
    | None -> (m, Width.W32)

let parse_insn line mnemonic args =
  let ops () = List.map (parse_operand_line line) (split_commas args) in
  let two op =
    match ops () with
    | [ a; b ] -> op a b
    | _ -> fail line (mnemonic ^ ": expected 2 operands")
  in
  let one op =
    match ops () with
    | [ a ] -> op a
    | _ -> fail line (mnemonic ^ ": expected 1 operand")
  in
  let two_reg_dst op =
    match ops () with
    | [ a; Operand.Reg r ] -> op a r
    | _ -> fail line (mnemonic ^ ": expected op, %reg")
  in
  let stem, w = width_of_mnemonic line mnemonic in
  match (stem, mnemonic) with
  | "mov", _ -> two (fun a b -> Insn.Mov (w, a, b))
  | "movzx", _ -> two_reg_dst (fun a r -> Insn.Movzx (w, a, r))
  | "lea", _ ->
      two_reg_dst (fun a r ->
          match a with
          | Operand.Mem m -> Insn.Lea (m, r)
          | Operand.Imm _ | Operand.Reg _ ->
              fail line "lea: expected memory operand")
  | "add", _ -> two (fun a b -> Insn.Alu (Insn.Add, a, b))
  | "sub", _ -> two (fun a b -> Insn.Alu (Insn.Sub, a, b))
  | "adc", _ -> two (fun a b -> Insn.Alu (Insn.Adc, a, b))
  | "sbb", _ -> two (fun a b -> Insn.Alu (Insn.Sbb, a, b))
  | "xchg", _ -> two_reg_dst (fun a r -> Insn.Xchg (a, r))
  | "and", _ -> two (fun a b -> Insn.Alu (Insn.And, a, b))
  | "or", _ -> two (fun a b -> Insn.Alu (Insn.Or, a, b))
  | "xor", _ -> two (fun a b -> Insn.Alu (Insn.Xor, a, b))
  | "shl", _ -> two (fun a b -> Insn.Shift (Insn.Shl, a, b))
  | "shr", _ -> two (fun a b -> Insn.Shift (Insn.Shr, a, b))
  | "sar", _ -> two (fun a b -> Insn.Shift (Insn.Sar, a, b))
  | "cmp", _ -> two (fun a b -> Insn.Cmp (a, b))
  | "test", _ -> two (fun a b -> Insn.Test (a, b))
  | "inc", _ -> one (fun a -> Insn.Inc a)
  | "dec", _ -> one (fun a -> Insn.Dec a)
  | "neg", _ -> one (fun a -> Insn.Neg a)
  | "not", _ -> one (fun a -> Insn.Not a)
  | "imul", _ -> two_reg_dst (fun a r -> Insn.Imul (a, r))
  | "push", _ -> one (fun a -> Insn.Push a)
  | "pop", _ -> one (fun a -> Insn.Pop a)
  | _, "jmp" -> Insn.Jmp (parse_target line args)
  | _, "call" -> Insn.Call (parse_target line args)
  | _, "ret" -> Insn.Ret
  | _, "pushf" -> Insn.Pushf
  | _, "popf" -> Insn.Popf
  | _, "nop" -> Insn.Nop
  | _, "hlt" -> Insn.Hlt
  | "movs", _ -> Insn.Str (Insn.Movs, w, false)
  | "stos", _ -> Insn.Str (Insn.Stos, w, false)
  | "lods", _ -> Insn.Str (Insn.Lods, w, false)
  | _, _ -> (
      (* conditional jumps: j<cc> label *)
      if String.length mnemonic > 1 && mnemonic.[0] = 'j' then
        match Cond.of_string (String.sub mnemonic 1 (String.length mnemonic - 1)) with
        | Some c -> (
            match parse_target line args with
            | Insn.Ind _ -> fail line "indirect conditional jump"
            | t -> Insn.Jcc (c, t))
        | None -> fail line ("unknown mnemonic: " ^ mnemonic)
      else fail line ("unknown mnemonic: " ^ mnemonic))

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

(* "rep; movsb" prefix handling *)
let parse_statement line s =
  let s = strip s in
  match String.index_opt s ';' with
  | Some i when strip (String.sub s 0 i) = "rep" ->
      let rest = strip (String.sub s (i + 1) (String.length s - i - 1)) in
      let mnemonic, args =
        match String.index_opt rest ' ' with
        | Some j ->
            ( String.sub rest 0 j,
              strip (String.sub rest (j + 1) (String.length rest - j - 1)) )
        | None -> (rest, "")
      in
      let insn = parse_insn line mnemonic args in
      (match insn with
      | Insn.Str (op, w, _) -> Insn.Str (op, w, true)
      | _ -> fail line "rep prefix on non-string instruction")
  | _ ->
      let mnemonic, args =
        match String.index_opt s ' ' with
        | Some j ->
            (String.sub s 0 j, strip (String.sub s (j + 1) (String.length s - j - 1)))
        | None -> (s, "")
      in
      parse_insn line mnemonic args

let parse_line n raw =
  let s = strip (strip_comment raw) in
  if s = "" then None
  else if s.[String.length s - 1] = ':' then
    let l = strip (String.sub s 0 (String.length s - 1)) in
    if l = "" || not (String.for_all is_ident_char l) then
      fail n ("bad label: " ^ raw)
    else Some (Program.Label l)
  else Some (Program.Ins (parse_statement n s))

let parse ~name text =
  let lines = String.split_on_char '\n' text in
  let items =
    List.concat
      (List.mapi
         (fun i l ->
           match parse_line (i + 1) l with Some it -> [ it ] | None -> [])
         lines)
  in
  Program.source name items

type t = { name : string; mutable items : Program.item list (* reversed *) }

let create name = { name; items = [] }
let label b l = b.items <- Program.Label l :: b.items
let ins b i = b.items <- Program.Ins i :: b.items
let finish b = Program.source b.name (List.rev b.items)

let gensym_counter = ref 0

let gensym prefix =
  incr gensym_counter;
  Printf.sprintf ".L_%s_%d" prefix !gensym_counter

let reset_gensym () = gensym_counter := 0

let imm n = Operand.Imm n
let reg r = Operand.Reg r
let mem ?base ?index ?sym disp = Operand.Mem (Operand.mem ?base ?index ?sym disp)
let mem_sym s = Operand.Mem (Operand.mem ~sym:s 0)

let movl b src dst = ins b (Insn.Mov (Width.W32, src, dst))
let movw b src dst = ins b (Insn.Mov (Width.W16, src, dst))
let movb b src dst = ins b (Insn.Mov (Width.W8, src, dst))
let movzxb b src dst = ins b (Insn.Movzx (Width.W8, src, dst))
let movzxw b src dst = ins b (Insn.Movzx (Width.W16, src, dst))
let leal b m dst = ins b (Insn.Lea (m, dst))
let addl b src dst = ins b (Insn.Alu (Insn.Add, src, dst))
let subl b src dst = ins b (Insn.Alu (Insn.Sub, src, dst))
let andl b src dst = ins b (Insn.Alu (Insn.And, src, dst))
let orl b src dst = ins b (Insn.Alu (Insn.Or, src, dst))
let xorl b src dst = ins b (Insn.Alu (Insn.Xor, src, dst))
let shll b cnt dst = ins b (Insn.Shift (Insn.Shl, cnt, dst))
let shrl b cnt dst = ins b (Insn.Shift (Insn.Shr, cnt, dst))
let sarl b cnt dst = ins b (Insn.Shift (Insn.Sar, cnt, dst))
let cmpl b a c = ins b (Insn.Cmp (a, c))
let testl b a c = ins b (Insn.Test (a, c))
let incl b o = ins b (Insn.Inc o)
let decl b o = ins b (Insn.Dec o)
let negl b o = ins b (Insn.Neg o)
let notl b o = ins b (Insn.Not o)
let imull b src dst = ins b (Insn.Imul (src, dst))
let pushl b o = ins b (Insn.Push o)
let popl b o = ins b (Insn.Pop o)
let jmp b l = ins b (Insn.Jmp (Insn.Lbl l))
let jmp_ind b o = ins b (Insn.Jmp (Insn.Ind o))
let jcc b c l = ins b (Insn.Jcc (c, Insn.Lbl l))
let je b l = jcc b Cond.E l
let jne b l = jcc b Cond.NE l
let call b l = ins b (Insn.Call (Insn.Lbl l))
let call_ind b o = ins b (Insn.Call (Insn.Ind o))
let ret b = ins b Insn.Ret
let rep_movsb b = ins b (Insn.Str (Insn.Movs, Width.W8, true))
let rep_movsl b = ins b (Insn.Str (Insn.Movs, Width.W32, true))
let rep_stosl b = ins b (Insn.Str (Insn.Stos, Width.W32, true))
let nop b = ins b Insn.Nop
let hlt b = ins b Insn.Hlt

type item = Label of string | Ins of Insn.t

type source = { name : string; items : item list }

type t = {
  name : string;
  base : int;
  code : Insn.t array;
  label_index : (string, int) Hashtbl.t;
  block_end : int array;
}

exception Unresolved of string

let source name items = { name; items }

let collect_labels items =
  let tbl = Hashtbl.create 64 in
  let rec go idx = function
    | [] -> ()
    | Label l :: rest ->
        if Hashtbl.mem tbl l then
          invalid_arg (Printf.sprintf "duplicate label %s" l);
        Hashtbl.add tbl l idx;
        go idx rest
    | Ins _ :: rest -> go (idx + 1) rest
  in
  go 0 items;
  tbl

let resolve_sym symbols name =
  match symbols name with
  | Some a -> a
  | None -> raise (Unresolved name)

let resolve_mem symbols (m : Operand.mem) =
  match m.Operand.sym with
  | None -> m
  | Some s -> { m with Operand.disp = m.Operand.disp + resolve_sym symbols s; sym = None }

let resolve_operand symbols = function
  | Operand.Mem m -> Operand.Mem (resolve_mem symbols m)
  | (Operand.Imm _ | Operand.Reg _) as o -> o

let assemble ?(symbols = fun _ -> None) ~base (src : source) =
  let labels = collect_labels src.items in
  let addr_of_label l =
    match Hashtbl.find_opt labels l with
    | Some idx -> Some (base + (4 * idx))
    | None -> None
  in
  let resolve_target = function
    | Insn.Lbl l -> (
        match addr_of_label l with
        | Some a -> Insn.Abs a
        | None -> Insn.Abs (resolve_sym symbols l))
    | Insn.Abs a -> Insn.Abs a
    | Insn.Ind o -> Insn.Ind (resolve_operand symbols o)
  in
  let r = resolve_operand symbols in
  let resolve_insn = function
    | Insn.Mov (w, a, b) -> Insn.Mov (w, r a, r b)
    | Insn.Movzx (w, a, d) -> Insn.Movzx (w, r a, d)
    | Insn.Lea (m, d) -> Insn.Lea (resolve_mem symbols m, d)
    | Insn.Alu (op, a, b) -> Insn.Alu (op, r a, r b)
    | Insn.Shift (op, a, b) -> Insn.Shift (op, r a, r b)
    | Insn.Cmp (a, b) -> Insn.Cmp (r a, r b)
    | Insn.Test (a, b) -> Insn.Test (r a, r b)
    | Insn.Inc a -> Insn.Inc (r a)
    | Insn.Dec a -> Insn.Dec (r a)
    | Insn.Neg a -> Insn.Neg (r a)
    | Insn.Not a -> Insn.Not (r a)
    | Insn.Imul (a, d) -> Insn.Imul (r a, d)
    | Insn.Xchg (a, d) -> Insn.Xchg (r a, d)
    | Insn.Push a -> Insn.Push (r a)
    | Insn.Pop a -> Insn.Pop (r a)
    | Insn.Jmp t -> Insn.Jmp (resolve_target t)
    | Insn.Call t -> Insn.Call (resolve_target t)
    | Insn.Jcc (c, t) -> (
        (* Conditional jumps must target local labels; they are lowered to
           pre-resolved absolute addresses so execution never re-hashes the
           label string on a taken branch. *)
        match t with
        | Insn.Lbl l -> (
            match addr_of_label l with
            | Some a -> Insn.Jcc (c, Insn.Abs a)
            | None -> raise (Unresolved l))
        | Insn.Abs a -> Insn.Jcc (c, Insn.Abs a)
        | Insn.Ind _ ->
            invalid_arg
              (Printf.sprintf "%s: indirect conditional jump" src.name))
    | (Insn.Ret | Insn.Str (_, _, _) | Insn.Pushf | Insn.Popf | Insn.Nop
      | Insn.Hlt) as i ->
        i
  in
  let code =
    List.filter_map
      (function Label _ -> None | Ins i -> Some (resolve_insn i))
      src.items
    |> Array.of_list
  in
  (* Basic-block map: block_end.(i) is the index of the last instruction of
     the straight-line run starting at i — the first control transfer at or
     after i (or the last instruction when execution would fall off the
     end). Computed once here so the interpreter's block engine can execute
     [i .. block_end.(i)] without per-instruction address decoding. *)
  let n = Array.length code in
  let block_end = Array.make n 0 in
  for i = n - 1 downto 0 do
    block_end.(i) <-
      (if i = n - 1 || Insn.is_control_transfer code.(i) then i
       else block_end.(i + 1))
  done;
  { name = src.name; base; code; label_index = labels; block_end }

let size_bytes p = 4 * Array.length p.code

let contains p addr = addr >= p.base && addr < p.base + size_bytes p

let index_of_addr p addr =
  if not (contains p addr) then
    invalid_arg (Printf.sprintf "%s: address 0x%x out of range" p.name addr);
  let off = addr - p.base in
  if off mod 4 <> 0 then
    invalid_arg (Printf.sprintf "%s: misaligned code address 0x%x" p.name addr);
  off / 4

let addr_of_index p idx = p.base + (4 * idx)

let addr_of_label p l =
  match Hashtbl.find_opt p.label_index l with
  | Some idx -> addr_of_index p idx
  | None -> raise (Unresolved l)

let entry_points (src : source) =
  List.filter_map (function Label l -> Some l | Ins _ -> None) src.items

let instruction_count (src : source) =
  List.length
    (List.filter (function Ins _ -> true | Label _ -> false) src.items)

let heap_reference_count (src : source) =
  List.length
    (List.filter
       (function Ins i -> Insn.references_heap i | Label _ -> false)
       src.items)

let pp_source fmt (src : source) =
  Format.fprintf fmt "# %s@." src.name;
  List.iter
    (function
      | Label l -> Format.fprintf fmt "%s:@." l
      | Ins i -> Format.fprintf fmt "    %a@." Insn.pp i)
    src.items

let to_string_source src = Format.asprintf "%a" pp_source src

let tsd n = 0x10 + (4 * n)
let tsad n = 0x20 + (4 * n)
let rbstart = 0x30
let capr = 0x38
let cbr = 0x3C
let imr = 0x40
let isr = 0x44
let cmd = 0x48

let tsd_own = 0x2000
let tsd_tok = 0x8000
let isr_rok = 0x1
let isr_tok = 0x4

let rx_ring_bytes = 16384
let rx_hdr_bytes = 4

type t = {
  dma : Td_mem.Addr_space.t;
  mac : string;
  tx_frame : string -> unit;
  fault_domain : unit -> string option;
      (** attributes guest-reachable faults (see {!E1000_dev}) *)
  regs : int array;
  mutable irq_handler : (unit -> unit) option;
  mutable tx_count : int;
  mutable rx_count : int;
  mutable dropped : int;
}

(* register offsets and TSAD buffer pointers are guest-reachable input:
   validation failures are typed, attributed faults *)
let guest_err t ~op fmt =
  Td_xen.Guest_fault.fail ?domain:(t.fault_domain ()) ~op fmt

let word t off =
  if off land 3 <> 0 || off < 0 || off >= 4096 then
    guest_err t ~op:"Rtl_dev.mmio" "bad register offset 0x%x" off
  else off / 4

let get t off = t.regs.(word t off)
let set t off v = t.regs.(word t off) <- v land 0xFFFFFFFF

let create ?(fault_domain = fun () -> None) ~dma ~mac ~tx_frame () =
  if String.length mac <> 6 then invalid_arg "Rtl_dev.create: mac";
  let t =
    {
      dma;
      mac;
      tx_frame;
      fault_domain;
      regs = Array.make 1024 0;
      irq_handler = None;
      tx_count = 0;
      rx_count = 0;
      dropped = 0;
    }
  in
  (* all four transmit slots start free *)
  for n = 0 to 3 do
    set t (tsd n) tsd_own
  done;
  t

let set_irq_handler t fn = t.irq_handler <- Some fn
let tx_count t = t.tx_count
let rx_count t = t.rx_count
let dropped t = t.dropped

let raise_cause t cause =
  set t isr (get t isr lor cause);
  if get t isr land get t imr <> 0 then
    match t.irq_handler with Some fn -> fn () | None -> ()

(* writing a size into TSDn (without OWN) starts transmission *)
let start_tx t n size =
  let buf = get t (tsad n) in
  let frame =
    try Td_mem.Addr_space.read_block t.dma buf (size land 0x1FFF)
    with Td_mem.Addr_space.Page_fault { addr; _ } ->
      guest_err t ~op:"Rtl_dev.start_tx"
        "TSAD%d buffer DMA faulted at 0x%x" n addr
  in
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "nic.tx.frames";
    Td_obs.Metrics.bump_by "nic.dma.read_bytes" (Bytes.length frame);
    Td_obs.Metrics.bump_by "nic.tx.bytes" (Bytes.length frame);
    Td_obs.Metrics.observe
      (Td_obs.Metrics.histogram "nic.tx.frame_bytes")
      (Bytes.length frame);
    Td_obs.Trace.emit
      (Td_obs.Trace.Nic_dma { dir = `Read; bytes = Bytes.length frame });
    Td_obs.Trace.emit (Td_obs.Trace.Nic_tx { bytes = Bytes.length frame })
  end;
  t.tx_frame (Bytes.to_string frame);
  t.tx_count <- t.tx_count + 1;
  (* slot becomes free again, transmit-OK *)
  set t (tsd n) (tsd_own lor tsd_tok);
  raise_cause t isr_tok

(* Packets are written contiguously (never split across the ring edge, as
   on the real chip, whose driver over-allocates a spill area). When the
   tail has no room: restart from offset 0 if the driver has consumed
   everything, drop otherwise. *)
let receive_frame t frame =
  let base = get t rbstart in
  let len = String.length frame in
  let need = (rx_hdr_bytes + len + 3) land lnot 3 in
  let drop reason =
    t.dropped <- t.dropped + 1;
    if Td_obs.Control.enabled () then begin
      Td_obs.Metrics.bump "nic.rx.dropped";
      Td_obs.Trace.emit (Td_obs.Trace.Nic_drop { reason })
    end
  in
  if base = 0 then drop "rx ring not programmed"
  else begin
    (if get t cbr + need > rx_ring_bytes then
       if get t capr = get t cbr then begin
         set t cbr 0;
         set t capr 0
       end);
    let w = get t cbr in
    if w + need > rx_ring_bytes then drop "rx ring full"
    else begin
      let put_u8 o v =
        Td_mem.Addr_space.write t.dma (base + w + o) Td_misa.Width.W8
          (v land 0xff)
      in
      (* status16 (bit 0 = ROK), length16, frame bytes, dword padding *)
      match
        put_u8 0 1;
        put_u8 1 0;
        put_u8 2 (len land 0xff);
        put_u8 3 (len lsr 8);
        String.iteri (fun i c -> put_u8 (rx_hdr_bytes + i) (Char.code c)) frame
      with
      | () ->
          set t cbr (w + need);
          t.rx_count <- t.rx_count + 1;
          if Td_obs.Control.enabled () then begin
            Td_obs.Metrics.bump "nic.rx.frames";
            Td_obs.Metrics.bump_by "nic.dma.write_bytes" len;
            Td_obs.Trace.emit
              (Td_obs.Trace.Nic_dma { dir = `Write; bytes = len });
            Td_obs.Trace.emit (Td_obs.Trace.Nic_rx { bytes = len })
          end;
          raise_cause t isr_rok
      | exception Td_mem.Addr_space.Page_fault _ ->
          (* RBSTART pointing outside mapped memory drops the frame like
             a bad packet instead of letting an untyped fault escape *)
          drop "rx ring DMA fault"
    end
  end

let mmio_read t off (w : Td_misa.Width.t) =
  let aligned = off land lnot 3 in
  let v = get t aligned lsr (8 * (off land 3)) in
  v land Td_misa.Width.mask w

let mmio_write t off (w : Td_misa.Width.t) v =
  if w <> Td_misa.Width.W32 || off land 3 <> 0 then
    guest_err t ~op:"Rtl_dev.mmio_write"
      "MMIO write at 0x%x must be 32-bit aligned" off;
  if off = isr then
    (* write-1-to-clear, unlike the e1000 *)
    set t isr (get t isr land lnot v)
  else begin
    set t off v;
    if off = tsd 0 || off = tsd 1 || off = tsd 2 || off = tsd 3 then begin
      if v land tsd_own = 0 then
        start_tx t ((off - tsd 0) / 4) (v land 0x1FFF)
    end
  end

let attach t ~space ~vaddr =
  if Td_mem.Layout.offset_of vaddr <> 0 then invalid_arg "Rtl_dev.attach";
  Td_mem.Addr_space.map_device space
    ~vpage:(Td_mem.Layout.page_of vaddr)
    {
      Td_mem.Addr_space.dev_read = (fun off w -> mmio_read t off w);
      dev_write = (fun off w v -> mmio_write t off w v);
    }

(** Receive-side scaling: deterministic Toeplitz hashing of the
    connection 4-tuple onto rx queues, as MSI-X multi-queue NICs do it.

    Everything here is a pure function of the seed and the packet
    bytes — no global state, no [Random] — so the same (seed, flow)
    pair selects the same queue on every run, every host, and under
    every shard count. The sharded simulation's deterministic merge
    ({!Mq}) relies on exactly this. *)

type tuple = {
  src_ip : int;
  dst_ip : int;
  src_port : int;
  dst_port : int;
}

type t

val key_bytes : int
(** 40, the classic Toeplitz key length. *)

val of_seed : int -> t
(** Expand a small seed into the 40-byte hash key (xorshift stream;
    seed 0 is remapped to a fixed non-zero constant). *)

val key : t -> string
(** The expanded key bytes, for inspection. *)

val hash : t -> tuple -> int
(** 32-bit Toeplitz hash over the big-endian 12-byte
    (src ip, dst ip, src port, dst port) input. *)

val queue_of_hash : int -> queues:int -> int
(** Hardware-style indirection: the low 7 hash bits index a 128-entry
    table holding the identity spread over [queues]. *)

val tuple_of_frame : string -> tuple
(** Parse the 4-tuple out of an Ethernet frame (IPv4 TCP/UDP at offset
    14). Non-IP or truncated frames fall back to a deterministic
    pseudo-tuple over the leading bytes so every frame still demuxes to
    a stable queue. *)

val tuple_of_payload : string -> tuple
(** Same, for a bare IP packet with no Ethernet header — the form
    {!World.transmit} payloads take. *)

val queue_of_frame : t -> queues:int -> string -> int
val queue_of_payload : t -> queues:int -> string -> int

val ipv4_udp_payload : ?len:int -> tuple -> string
(** Build a minimal IPv4/UDP packet carrying the given 4-tuple, padded
    to [len] bytes (default 64, minimum 28). Benches and tests use this
    to make flows whose steering is identical whether the tuple is read
    from the payload ({!queue_of_payload}, the {!Mq} front) or from the
    frame after Ethernet encapsulation would be stripped. *)

type t = {
  dma : Td_mem.Addr_space.t;
  mac : string;
  tx_frame : string -> unit;
  fault_domain : unit -> string option;
      (** attributes guest-reachable faults (ring contents are guest
          memory when the device is driven by a domU) *)
  ring_entries : int;
  queues : int;  (** tx/rx ring pairs; queue 0 is the legacy block *)
  rss : Rss.t option;  (** steers unqueued rx frames when [queues > 1] *)
  regs : int array;  (** 1024 32-bit registers = one 4 KiB page *)
  mutable irq_handler : (unit -> unit) option;
  msix : (unit -> unit) option array;
      (** per-queue MSI-X vectors; vector 0 falls back to [irq_handler] *)
  mutable itr_pending : int;  (** cause events since the last assertion *)
  tx_accs : Buffer.t array;  (** per-queue frame assembled across descriptors *)
  mutable tx_count : int;
  mutable rx_count : int;
  txq_counts : int array;
  rxq_counts : int array;
  mutable dropped : int;
  mutable irq_count : int;
  mutable dma_stuck : bool;  (** injected: TX DMA engine wedged *)
}

let mmio_vaddr i = 0xC0F0_0000 + (i * Td_mem.Layout.page_size)
let link_rate_bps = 1_000_000_000

let effective_rate_bps ~packet_bytes =
  (* 8B preamble + 12B inter-frame gap + 4B CRC per frame *)
  let overhead = 24 in
  float_of_int link_rate_bps
  *. (float_of_int packet_bytes /. float_of_int (packet_bytes + overhead))

(* register offsets and descriptor contents are guest-reachable input
   when a domU drives the model directly: validation failures are typed,
   attributed faults, not process-killing invalid_args *)
let guest_err t ~op fmt =
  Td_xen.Guest_fault.fail ?domain:(t.fault_domain ()) ~op fmt

let word t off =
  if off land 3 = 0 && off >= 0 && off < 4096 then off / 4
  else guest_err t ~op:"E1000_dev.mmio" "bad register offset 0x%x" off

let get t off = t.regs.(word t off)
let set t off v = t.regs.(word t off) <- v land 0xFFFFFFFF

(* descriptor length cap: the register field is 16 bits on the chip; an
   unvalidated 32-bit value from guest memory must not size an allocation *)
let max_desc_len = 16384

let create ?(ring_entries = 256) ?(fault_domain = fun () -> None) ?(queues = 1)
    ?(rss_seed = 0x2A8F) ~dma ~mac ~tx_frame () =
  if String.length mac <> 6 then invalid_arg "E1000_dev.create: mac must be 6 bytes";
  if queues < 1 || queues > Regs.max_queues then
    invalid_arg "E1000_dev.create: queues out of range";
  let t =
    {
      dma;
      mac;
      tx_frame;
      fault_domain;
      ring_entries;
      queues;
      rss = (if queues > 1 then Some (Rss.of_seed rss_seed) else None);
      regs = Array.make 1024 0;
      irq_handler = None;
      msix = Array.make Regs.max_queues None;
      itr_pending = 0;
      tx_accs = Array.init queues (fun _ -> Buffer.create 2048);
      tx_count = 0;
      rx_count = 0;
      txq_counts = Array.make queues 0;
      rxq_counts = Array.make queues 0;
      dropped = 0;
      irq_count = 0;
      dma_stuck = false;
    }
  in
  set t Regs.status 0x3;
  (* link up, full duplex *)
  let b i = Char.code mac.[i] in
  set t Regs.ral (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24));
  set t Regs.rah (b 4 lor (b 5 lsl 8) lor 0x8000_0000 (* address valid *));
  t

let set_irq_handler t fn = t.irq_handler <- Some fn

let set_msix_handler t ~vector fn =
  if vector < 1 || vector >= t.queues then
    invalid_arg "E1000_dev.set_msix_handler: vector out of range";
  t.msix.(vector) <- Some fn

let mac t = t.mac
let queues t = t.queues
let tx_count t = t.tx_count
let rx_count t = t.rx_count
let txq_count t q = t.txq_counts.(q)
let rxq_count t q = t.rxq_counts.(q)

let rx_queue_of t frame =
  match t.rss with
  | Some rss when t.queues > 1 -> Rss.queue_of_frame rss ~queues:t.queues frame
  | _ -> 0

let dropped t = t.dropped
let irq_count t = t.irq_count
let dma_stuck t = t.dma_stuck

let irq_pending t = get t Regs.icr land get t Regs.ims <> 0

let raise_cause ?(vector = 0) t cause =
  set t Regs.icr (get t Regs.icr lor cause);
  match (if vector > 0 then t.msix.(vector) else None) with
  | Some fn ->
      (* MSI-X vector: not subject to the legacy IMS mask or ITR
         throttle (each queue has its own moderation on real silicon —
         unmodelled). The lost-irq injection site stays symmetric with
         the legacy path; the cause is latched in ICR either way. *)
      if
        Td_fault.Engine.active ()
        && Td_fault.Engine.fire Td_fault.Nic_lost_irq
      then ()
      else begin
        t.irq_count <- t.irq_count + 1;
        Td_obs.Metrics.bump "nic.irq";
        fn ()
      end
  | None ->
      if get t Regs.icr land get t Regs.ims <> 0 then begin
        t.itr_pending <- t.itr_pending + 1;
        let throttle = get t Regs.itr in
        if throttle = 0 || t.itr_pending >= throttle then begin
          t.itr_pending <- 0;
          (* fault-injection site: the assertion edge is dropped on the
             floor — the cause stays latched in ICR ([irq_pending]), so a
             poll can still find and service it, as real drivers do *)
          if
            Td_fault.Engine.active ()
            && Td_fault.Engine.fire Td_fault.Nic_lost_irq
          then ()
          else begin
            t.irq_count <- t.irq_count + 1;
            Td_obs.Metrics.bump "nic.irq";
            match t.irq_handler with Some fn -> fn () | None -> ()
          end
        end
      end

(* --- DMA helpers (bus address = dom0 kernel virtual address) --- *)

let dma_read32 t addr = Td_mem.Addr_space.read t.dma addr Td_misa.Width.W32
let dma_write32 t addr v = Td_mem.Addr_space.write t.dma addr Td_misa.Width.W32 v

let desc_addr base i = base + (i * Regs.desc_bytes)

(* --- transmit path --- *)

let process_tx ?(queue = 0) t =
  (* fault-injection site: the DMA engine wedges — doorbells are ignored
     until the supervisor resets the device, and the frames queued in
     the ring never reach the wire *)
  if
    (not t.dma_stuck)
    && Td_fault.Engine.active ()
    && Td_fault.Engine.fire Td_fault.Nic_stuck_dma
  then t.dma_stuck <- true;
  if t.dma_stuck then ()
  else begin
  let r_tdbal = Regs.tdbal_q queue
  and r_tdlen = Regs.tdlen_q queue
  and r_tdh = Regs.tdh_q queue
  and r_tdt = Regs.tdt_q queue in
  let base = get t r_tdbal in
  let tail = get t r_tdt in
  let entries = min t.ring_entries (max 1 (get t r_tdlen / Regs.desc_bytes)) in
  (* head/tail are guest-reachable ring state: an out-of-range cursor
     would index descriptors past the programmed ring *)
  if tail >= entries then
    guest_err t ~op:"E1000_dev.process_tx" "TDT %d outside ring of %d entries"
      tail entries;
  if get t r_tdh >= entries then
    guest_err t ~op:"E1000_dev.process_tx" "TDH %d outside ring of %d entries"
      (get t r_tdh) entries;
  let tx_acc = t.tx_accs.(queue) in
  let head = ref (get t r_tdh) in
  let any = ref false in
  (* a corrupted TDT (e.g. an injected bit-flip upstream of the doorbell
     write) may never equal any in-range head value: bound the walk to
     one full ring so the device cannot spin forever *)
  let budget = ref entries in
  while !head <> tail && !budget > 0 do
    decr budget;
    let d = desc_addr base !head in
    let buf, len, cmd =
      try
        ( dma_read32 t (d + Regs.d_buf),
          dma_read32 t (d + Regs.d_len),
          dma_read32 t (d + Regs.d_cmd) )
      with Td_mem.Addr_space.Page_fault { addr; _ } ->
        guest_err t ~op:"E1000_dev.process_tx"
          "descriptor %d DMA faulted at 0x%x" !head addr
    in
    if len > max_desc_len then
      guest_err t ~op:"E1000_dev.process_tx"
        "descriptor %d length %d exceeds %d" !head len max_desc_len;
    (let payload =
       try Td_mem.Addr_space.read_block t.dma buf len
       with Td_mem.Addr_space.Page_fault { addr; _ } ->
         guest_err t ~op:"E1000_dev.process_tx"
           "descriptor %d buffer DMA faulted at 0x%x" !head addr
     in
     Buffer.add_bytes tx_acc payload);
    if Td_obs.Control.enabled () then begin
      Td_obs.Metrics.bump_by "nic.dma.read_bytes" len;
      Td_obs.Trace.emit (Td_obs.Trace.Nic_dma { dir = `Read; bytes = len })
    end;
    if cmd land Regs.cmd_eop <> 0 then begin
      let frame_bytes = Buffer.length tx_acc in
      t.tx_frame (Buffer.contents tx_acc);
      Buffer.clear tx_acc;
      t.tx_count <- t.tx_count + 1;
      t.txq_counts.(queue) <- t.txq_counts.(queue) + 1;
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "nic.tx.frames";
        Td_obs.Metrics.bump_by "nic.tx.bytes" frame_bytes;
        if t.queues > 1 then
          Td_obs.Metrics.bump (Printf.sprintf "nic.queue%d.tx" queue);
        Td_obs.Metrics.observe
          (Td_obs.Metrics.histogram "nic.tx.frame_bytes")
          frame_bytes;
        Td_obs.Trace.emit (Td_obs.Trace.Nic_tx { bytes = frame_bytes })
      end;
      set t Regs.gptc (get t Regs.gptc + 1)
    end;
    (try
       dma_write32 t (d + Regs.d_sta)
         (dma_read32 t (d + Regs.d_sta) lor Regs.sta_dd)
     with Td_mem.Addr_space.Page_fault { addr; _ } ->
       guest_err t ~op:"E1000_dev.process_tx"
         "descriptor %d status DMA faulted at 0x%x" !head addr);
    head := (!head + 1) mod entries;
    any := true
  done;
  set t r_tdh !head;
  if !any then raise_cause ~vector:queue t (Regs.icr_txq queue)
  end

(* --- receive path --- *)

let receive_frame ?queue t frame =
  (* steering: an explicit queue wins (tests/benches); otherwise the RSS
     demux hashes the frame's 4-tuple, and a single-queue device always
     lands on the legacy ring *)
  let queue = match queue with Some q -> q | None -> rx_queue_of t frame in
  if queue < 0 || queue >= t.queues then
    guest_err t ~op:"E1000_dev.receive_frame" "queue %d out of range" queue;
  let r_rdbal = Regs.rdbal_q queue
  and r_rdlen = Regs.rdlen_q queue
  and r_rdh = Regs.rdh_q queue
  and r_rdt = Regs.rdt_q queue in
  let base = get t r_rdbal in
  let entries = min t.ring_entries (max 1 (get t r_rdlen / Regs.desc_bytes)) in
  let head = get t r_rdh in
  let tail = get t r_rdt in
  if head = tail || base = 0 then begin
    (* no free descriptors: missed packet *)
    t.dropped <- t.dropped + 1;
    if Td_obs.Control.enabled () then begin
      Td_obs.Metrics.bump "nic.rx.dropped";
      Td_obs.Trace.emit
        (Td_obs.Trace.Nic_drop { reason = "no free rx descriptor" })
    end;
    set t Regs.mpc (get t Regs.mpc + 1)
  end
  else if
    Td_fault.Engine.active () && Td_fault.Engine.fire Td_fault.Nic_corrupt_rx
  then begin
    (* fault-injection site: the descriptor is corrupted in flight — the
       device discards the frame as a bad packet and counts it missed *)
    t.dropped <- t.dropped + 1;
    Td_fault.Engine.note_lost 1;
    if Td_obs.Control.enabled () then begin
      Td_obs.Metrics.bump "nic.rx.dropped";
      Td_obs.Trace.emit
        (Td_obs.Trace.Nic_drop { reason = "injected corrupt rx descriptor" })
    end;
    set t Regs.mpc (get t Regs.mpc + 1)
  end
  else
    (* a descriptor pointing outside mapped memory drops the frame like a
       bad packet (the wire has no one to fault to) rather than letting
       an untyped Page_fault escape the device model *)
    match
      let d = desc_addr base head in
      let buf = dma_read32 t (d + Regs.d_buf) in
      Td_mem.Addr_space.write_block t.dma buf (Bytes.of_string frame);
      dma_write32 t (d + Regs.d_len) (String.length frame);
      dma_write32 t (d + Regs.d_sta) (Regs.sta_dd lor Regs.sta_eop)
    with
    | () ->
        set t r_rdh ((head + 1) mod entries);
        t.rx_count <- t.rx_count + 1;
        t.rxq_counts.(queue) <- t.rxq_counts.(queue) + 1;
        if Td_obs.Control.enabled () then begin
          Td_obs.Metrics.bump "nic.rx.frames";
          Td_obs.Metrics.bump_by "nic.dma.write_bytes" (String.length frame);
          if t.queues > 1 then
            Td_obs.Metrics.bump (Printf.sprintf "nic.queue%d.rx" queue);
          Td_obs.Trace.emit
            (Td_obs.Trace.Nic_dma { dir = `Write; bytes = String.length frame });
          Td_obs.Trace.emit (Td_obs.Trace.Nic_rx { bytes = String.length frame })
        end;
        set t Regs.gprc (get t Regs.gprc + 1);
        raise_cause ~vector:queue t (Regs.icr_rxq queue)
    | exception Td_mem.Addr_space.Page_fault _ ->
        t.dropped <- t.dropped + 1;
        if Td_obs.Control.enabled () then begin
          Td_obs.Metrics.bump "nic.rx.dropped";
          Td_obs.Trace.emit
            (Td_obs.Trace.Nic_drop { reason = "rx descriptor DMA fault" })
        end;
        set t Regs.mpc (get t Regs.mpc + 1)

(* --- supervisor reset --- *)

(* Frames still queued between TDH and TDT (wedged DMA, or an abort
   between descriptor writes and doorbell service): these are the
   in-flight frames a device reset discards. *)
let pending_tx_frames t =
  let frames = ref 0 in
  for q = 0 to t.queues - 1 do
    let base = get t (Regs.tdbal_q q) in
    let entries =
      min t.ring_entries (max 1 (get t (Regs.tdlen_q q) / Regs.desc_bytes))
    in
    let tail = get t (Regs.tdt_q q) in
    let head = ref (get t (Regs.tdh_q q)) in
    let budget = ref entries in
    if base <> 0 then
      while !head <> tail && !budget > 0 do
        decr budget;
        (* tolerant of torn ring state: this runs during supervisor reset
           of a possibly-hostile or wedged device — an unreadable
           descriptor counts as no frame rather than aborting recovery *)
        let cmd =
          try dma_read32 t (desc_addr base !head + Regs.d_cmd)
          with Td_mem.Addr_space.Page_fault _ -> 0
        in
        if cmd land Regs.cmd_eop <> 0 then incr frames;
        head := (!head + 1) mod entries
      done
  done;
  !frames

let reset t =
  let lost = pending_tx_frames t in
  Array.fill t.regs 0 (Array.length t.regs) 0;
  set t Regs.status 0x3;
  let b i = Char.code t.mac.[i] in
  set t Regs.ral (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24));
  set t Regs.rah (b 4 lor (b 5 lsl 8) lor 0x8000_0000);
  t.itr_pending <- 0;
  t.dma_stuck <- false;
  Array.iter Buffer.clear t.tx_accs;
  lost

(* --- MMIO dispatch --- *)

let mmio_read t off (w : Td_misa.Width.t) =
  let v =
    let aligned = off land lnot 3 in
    let word_val =
      if aligned = Regs.icr then begin
        let v = get t Regs.icr in
        set t Regs.icr 0;
        v
      end
      else get t aligned
    in
    word_val lsr (8 * (off land 3))
  in
  v land Td_misa.Width.mask w

let mmio_write t off (w : Td_misa.Width.t) v =
  if w <> Td_misa.Width.W32 || off land 3 <> 0 then
    guest_err t ~op:"E1000_dev.mmio_write"
      "MMIO write at 0x%x must be 32-bit aligned" off;
  if off = Regs.ims then set t Regs.ims (get t Regs.ims lor v)
  else if off = Regs.imc then set t Regs.ims (get t Regs.ims land lnot v)
  else if off = Regs.icr then set t Regs.icr (get t Regs.icr land lnot v)
  else begin
    set t off v;
    if off = Regs.tdt then process_tx t
    else if
      t.queues > 1
      && off >= Regs.txq_base
      && off < Regs.txq_base + ((t.queues - 1) * Regs.q_stride)
      && (off - Regs.txq_base) mod Regs.q_stride = 0x18
    then process_tx ~queue:(((off - Regs.txq_base) / Regs.q_stride) + 1) t
  end

let device_page t =
  {
    Td_mem.Addr_space.dev_read = (fun off w -> mmio_read t off w);
    dev_write = (fun off w v -> mmio_write t off w v);
  }

let attach t ~space ~vaddr =
  if Td_mem.Layout.offset_of vaddr <> 0 then
    invalid_arg "E1000_dev.attach: vaddr must be page-aligned";
  Td_mem.Addr_space.map_device space
    ~vpage:(Td_mem.Layout.page_of vaddr)
    (device_page t)

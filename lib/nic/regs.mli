(** Register map of the simulated e1000-style NIC (byte offsets within the
    4 KiB MMIO page), plus interrupt-cause and descriptor bit definitions.

    The register map is compressed into a single 4 KiB page (the real
    PRO/1000 BAR is 128 KiB); otherwise it follows the Intel conventions
    closely enough that
    the driver code reads naturally: transmit/receive descriptor rings with
    base/length/head/tail registers, an interrupt cause register ([icr])
    that clears on read, and a mask set/clear pair ([ims]/[imc]).
    [ral]/[rah] hold the MAC address; [gptc]/[gprc]/[mpc] are the
    transmitted / received / missed packet statistics counters. *)

val ctrl : int
val status : int
val icr : int
val ims : int
val imc : int

(** Interrupt throttle: when non-zero, the device asserts at most one
    interrupt per [itr] cause events (interrupt coalescing — the
    complementary software mitigation of the paper's related work). *)

val itr : int
val tdbal : int
val tdlen : int
val tdh : int
val tdt : int
val rdbal : int
val rdlen : int
val rdh : int
val rdt : int
val ral : int
val rah : int
val gptc : int
val gprc : int
val mpc : int

(** Receive control ([rctl]; bit 3 = promiscuous) and the multicast table
    array ([mta], 32 words) the configuration path programs. *)

val rctl : int
val mta : int
val mta_entries : int

(** Interrupt cause bits: transmit writeback, receive, link change. *)

val icr_txdw : int
val icr_rxt0 : int
val icr_lsc : int

(** MSI-X multi-queue extension. Queue 0 is the legacy block above
    (so single-queue devices are register-for-register unchanged);
    queues [1 .. max_queues - 1] get [q_stride]-byte tx/rx register
    blocks at [txq_base]/[rxq_base] and per-queue interrupt cause bits
    ([icr_txq]/[icr_rxq], bits 9+ / 17+) disjoint from the legacy
    [icr_txdw]/[icr_rxt0]/[icr_lsc] bits. The [*_q] accessors return
    the legacy offsets for [q = 0]. *)

val max_queues : int
val rxq_base : int
val txq_base : int
val q_stride : int
val tdbal_q : int -> int
val tdlen_q : int -> int
val tdh_q : int -> int
val tdt_q : int -> int
val rdbal_q : int -> int
val rdlen_q : int -> int
val rdh_q : int -> int
val rdt_q : int -> int
val icr_txq : int -> int
val icr_rxq : int -> int

(** Descriptor geometry: 16-byte descriptors with buffer address, length,
    command and status words. *)

val desc_bytes : int
val d_buf : int
val d_len : int
val d_cmd : int
val d_sta : int

(** Command bits (end-of-packet, report-status) and the descriptor-done /
    end-of-packet status bits. *)

val cmd_eop : int
val cmd_rs : int
val sta_dd : int
val sta_eop : int

(** Behavioural model of an e1000-style gigabit NIC.

    The device DMAs descriptors and packet data directly through the
    driver domain's address space using the bus addresses the driver
    programmed (bus address = dom0 kernel virtual address in this
    simulation — the identity mapping a real lowmem kernel uses). DMA
    deliberately bypasses SVM: the paper notes that DMA safety is out of
    scope without an IOMMU (§4.5).

    Transmit: writing the tail register (TDT) makes the device walk
    descriptors from its internal head to the new tail, emit each buffer
    as a frame on the wire, set the DD status bit, and raise TXDW.
    Receive: {!receive_frame} consumes the descriptor at RDH (software
    pre-fills free descriptors and advances RDT), writes the frame into
    its buffer, sets DD|EOP and raises RXT0. A full ring drops the frame
    and counts it in MPC. *)

type t

val mmio_vaddr : int -> int
(** Conventional dom0 virtual address of NIC [i]'s register page. *)

val link_rate_bps : int
(** 1 Gb/s. *)

val effective_rate_bps : packet_bytes:int -> float
(** Achievable data rate accounting for Ethernet framing overhead
    (preamble, inter-frame gap, CRC). *)

val create :
  ?ring_entries:int ->
  ?fault_domain:(unit -> string option) ->
  ?queues:int ->
  ?rss_seed:int ->
  dma:Td_mem.Addr_space.t ->
  mac:string ->
  tx_frame:(string -> unit) ->
  unit ->
  t
(** [dma] is the address space the device's bus master sees (dom0);
    [mac] is a 6-byte string; [tx_frame] is the wire on the transmit
    side. [fault_domain] names the domain to which guest-reachable
    validation faults (bad register offsets, out-of-range ring cursors,
    descriptors pointing outside mapped memory) are attributed; they
    raise the typed {!Td_xen.Guest_fault.Fault} instead of
    [Invalid_argument].

    [queues] (default 1, max {!Regs.max_queues}) enables MSI-X-style
    multi-queue: each queue gets its own tx/rx descriptor ring pair
    (queue 0 on the legacy registers, the rest at
    {!Regs.txq_base}/{!Regs.rxq_base}), its own interrupt cause bits
    and, once registered via {!set_msix_handler}, its own vector. With
    [queues > 1] the RSS demux — a Toeplitz hash keyed from [rss_seed]
    (see {!Rss}) — steers arriving frames onto rx queues. A one-queue
    device is bit-identical to the pre-multi-queue model. *)

val device_page : t -> Td_mem.Addr_space.device
(** The MMIO register page, for mapping at {!mmio_vaddr}. *)

val attach : t -> space:Td_mem.Addr_space.t -> vaddr:int -> unit
(** Map the register page into an address space. *)

val set_irq_handler : t -> (unit -> unit) -> unit
(** Called (edge-triggered) whenever an unmasked interrupt cause is
    raised — at most once per ITR-many events when the driver programs
    the {!Regs.itr} throttle. Causes latched in ICR are never lost; a
    throttled handler drains them all on its next run. *)

val set_msix_handler : t -> vector:int -> (unit -> unit) -> unit
(** Register the MSI-X handler for queue [vector] (1 ≤ vector <
    [queues]). MSI-X vectors bypass the legacy IMS mask and ITR
    throttle; their causes still latch in ICR. Queue 0 always signals
    through the legacy {!set_irq_handler} path. *)

val receive_frame : ?queue:int -> t -> string -> unit
(** A frame arrives from the wire. Without [?queue] the RSS demux
    steers it (queue 0 on a single-queue device); an explicit [queue]
    overrides steering — out-of-range values are a guest fault. *)

val mac : t -> string
val queues : t -> int

val rx_queue_of : t -> string -> int
(** The queue RSS would steer this frame to — the pure steering
    decision, no delivery. *)

(* fault handling (driver supervisor interface) *)

val dma_stuck : t -> bool
(** The injected stuck-DMA fault is latched: doorbell writes are ignored
    until {!reset}. The supervisor's watchdog polls this to declare a
    hang. *)

val irq_pending : t -> bool
(** An unmasked cause is latched in ICR but no handler ran — the
    signature of an injected lost interrupt. Pollers (the world's pump)
    use this to re-kick servicing without a fresh edge. *)

val reset : t -> int
(** Power-on reset for recovery: zero every register (keeping link
    status and the programmed MAC), clear the stuck-DMA latch, drop any
    partially assembled TX frame. Returns the number of complete frames
    still queued between TDH and TDT — the in-flight frames the reset
    discarded, which the supervisor must account as replayed or lost. *)

(* observable statistics *)

val tx_count : t -> int
val rx_count : t -> int

val txq_count : t -> int -> int
(** Frames transmitted from / received onto one queue. *)

val rxq_count : t -> int -> int
val dropped : t -> int
val irq_count : t -> int

let ctrl = 0x0000
let status = 0x0008
let icr = 0x00C0
let ims = 0x00D0
let imc = 0x00D8
let itr = 0x00C4
let tdbal = 0x700
let tdlen = 0x708
let tdh = 0x710
let tdt = 0x718
let rdbal = 0x500
let rdlen = 0x508
let rdh = 0x510
let rdt = 0x518
let ral = 0xA00
let rah = 0xA04
let gptc = 0x880
let gprc = 0x874
let mpc = 0x810
let rctl = 0x100
let mta = 0xB00
let mta_entries = 32

let icr_txdw = 0x01
let icr_rxt0 = 0x80
let icr_lsc = 0x04

(* MSI-X multi-queue extension: queue 0 keeps the legacy register block
   and legacy cause bits above; queues 1..max_queues-1 get 0x40-byte
   register blocks in otherwise-unused page regions (0xC00.. for rx,
   0xE00.. for tx) and dedicated cause bits clear of the legacy ones. *)
let max_queues = 8
let rxq_base = 0xC00
let txq_base = 0xE00
let q_stride = 0x40
let tdbal_q q = if q = 0 then tdbal else txq_base + ((q - 1) * q_stride)
let tdlen_q q = if q = 0 then tdlen else txq_base + ((q - 1) * q_stride) + 0x8
let tdh_q q = if q = 0 then tdh else txq_base + ((q - 1) * q_stride) + 0x10
let tdt_q q = if q = 0 then tdt else txq_base + ((q - 1) * q_stride) + 0x18
let rdbal_q q = if q = 0 then rdbal else rxq_base + ((q - 1) * q_stride)
let rdlen_q q = if q = 0 then rdlen else rxq_base + ((q - 1) * q_stride) + 0x8
let rdh_q q = if q = 0 then rdh else rxq_base + ((q - 1) * q_stride) + 0x10
let rdt_q q = if q = 0 then rdt else rxq_base + ((q - 1) * q_stride) + 0x18
let icr_txq q = if q = 0 then icr_txdw else 1 lsl (8 + q)
let icr_rxq q = if q = 0 then icr_rxt0 else 1 lsl (16 + q)

let desc_bytes = 16
let d_buf = 0
let d_len = 4
let d_cmd = 8
let d_sta = 12

let cmd_eop = 0x1
let cmd_rs = 0x8
let sta_dd = 0x1
let sta_eop = 0x2

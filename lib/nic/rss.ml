(* Receive-side scaling: a Toeplitz hash over the connection 4-tuple
   selects the rx queue, exactly as MSI-X multi-queue NICs do it. The
   40-byte key is expanded deterministically from a small seed, so the
   same (seed, 4-tuple) pair maps to the same queue on every run, on
   every host, and for every shard count — the property the sharded
   simulation's deterministic merge rests on. *)

type tuple = {
  src_ip : int;
  dst_ip : int;
  src_port : int;
  dst_port : int;
}

let key_bytes = 40

type t = { key : Bytes.t }

(* xorshift64 expansion (same generator family as Td_fault/Td_adv: no
   Random, replayable from the seed alone) *)
let of_seed seed =
  let state = ref ((if seed = 0 then 0x2545F491 else seed) land max_int) in
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) land max_int in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) land max_int in
    state := x;
    x
  in
  let key = Bytes.create key_bytes in
  for i = 0 to key_bytes - 1 do
    Bytes.set key i (Char.chr (next () land 0xFF))
  done;
  { key }

let key t = Bytes.to_string t.key

(* 32-bit window of the key starting at bit [i]: five bytes assembled
   big-endian, shifted down to drop the leading [i mod 8] bits *)
let key_window t i =
  let byte j = Char.code (Bytes.get t.key ((i / 8) + j)) in
  let v =
    (byte 0 lsl 32) lor (byte 1 lsl 24) lor (byte 2 lsl 16) lor (byte 3 lsl 8)
    lor byte 4
  in
  (v lsr (8 - (i mod 8))) land 0xFFFF_FFFF

(* Toeplitz: for every set bit of the 12-byte input (src ip, dst ip,
   src port, dst port, all big-endian), xor in the 32-bit key window
   aligned with that bit. *)
let hash t { src_ip; dst_ip; src_port; dst_port } =
  let input = Bytes.create 12 in
  let be32 off v =
    for j = 0 to 3 do
      Bytes.set input (off + j) (Char.chr ((v lsr (8 * (3 - j))) land 0xFF))
    done
  in
  let be16 off v =
    Bytes.set input off (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set input (off + 1) (Char.chr (v land 0xFF))
  in
  be32 0 src_ip;
  be32 4 dst_ip;
  be16 8 src_port;
  be16 10 dst_port;
  let result = ref 0 in
  for i = 0 to (8 * 12) - 1 do
    if Char.code (Bytes.get input (i / 8)) land (0x80 lsr (i mod 8)) <> 0 then
      result := !result lxor key_window t i
  done;
  !result

(* hardware indirection table: low 7 hash bits into 128 entries, our
   table being the identity spread over [queues] *)
let queue_of_hash h ~queues =
  if queues <= 1 then 0 else h land 0x7F mod queues

let ethertype_ipv4 = 0x0800
let proto_tcp = 6
let proto_udp = 17

(* Parse an IPv4 header at [off]; non-IP (or truncated) input falls back
   to a deterministic pseudo-tuple over the first bytes, so every frame
   still demuxes to a stable queue. *)
let tuple_at ~off frame =
  let len = String.length frame in
  let b i = Char.code frame.[i] in
  let be16 i = (b i lsl 8) lor b (i + 1) in
  let be32 i = (be16 i lsl 16) lor be16 (i + 2) in
  if len >= off + 20 && b off lsr 4 = 4 then begin
    let ihl = (b off land 0xF) * 4 in
    let proto = b (off + 9) in
    let src_ip = be32 (off + 12) and dst_ip = be32 (off + 16) in
    if (proto = proto_tcp || proto = proto_udp) && len >= off + ihl + 4 then
      {
        src_ip;
        dst_ip;
        src_port = be16 (off + ihl);
        dst_port = be16 (off + ihl + 2);
      }
    else { src_ip; dst_ip; src_port = 0; dst_port = 0 }
  end
  else
    let fold lo hi =
      let acc = ref 0 in
      for i = lo to min hi (len - 1) do
        acc := ((!acc lsl 8) lor b i) land 0xFFFF_FFFF
      done;
      !acc
    in
    { src_ip = fold 0 3; dst_ip = fold 4 7; src_port = 0; dst_port = 0 }

let eth_header_bytes = 14

let tuple_of_frame frame =
  if
    String.length frame >= eth_header_bytes + 20
    && (Char.code frame.[12] lsl 8) lor Char.code frame.[13] = ethertype_ipv4
  then tuple_at ~off:eth_header_bytes frame
  else tuple_at ~off:eth_header_bytes frame (* fallback path inside *)

let tuple_of_payload payload = tuple_at ~off:0 payload

let queue_of_frame t ~queues frame =
  queue_of_hash (hash t (tuple_of_frame frame)) ~queues

let queue_of_payload t ~queues payload =
  queue_of_hash (hash t (tuple_of_payload payload)) ~queues

(* Minimal IPv4/UDP payload carrying the given 4-tuple — what benches
   and tests feed {!World.transmit}/{!World.inject_rx} so the device and
   the {!Mq} front both recover the same tuple. [len] is the total
   payload length (header included), padded with a fixed byte. *)
let ipv4_udp_payload ?(len = 64) tuple =
  let len = max len 28 in
  let buf = Bytes.make len 'p' in
  let b i v = Bytes.set buf i (Char.chr (v land 0xFF)) in
  let be16 i v =
    b i (v lsr 8);
    b (i + 1) v
  in
  let be32 i v =
    be16 i (v lsr 16);
    be16 (i + 2) v
  in
  b 0 0x45 (* version 4, ihl 5 *);
  b 1 0;
  be16 2 len;
  be16 4 0 (* id *);
  be16 6 0 (* flags/frag *);
  b 8 64 (* ttl *);
  b 9 proto_udp;
  be16 10 0 (* checksum: unchecked by the model *);
  be32 12 tuple.src_ip;
  be32 16 tuple.dst_ip;
  be16 20 tuple.src_port;
  be16 22 tuple.dst_port;
  be16 24 (len - 20) (* udp length *);
  be16 26 0;
  Bytes.to_string buf

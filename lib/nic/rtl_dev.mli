(** A second, structurally different NIC model, in the style of the
    Realtek RTL8139 — used to demonstrate that the TwinDrivers derivation
    is not specific to the e1000 driver.

    Differences from {!E1000_dev} that the driver code feels:
    - transmit uses four fixed descriptor slots (TSAD0-3 buffer address
      registers, TSD0-3 command/status registers) and requires the frame
      to be staged in one contiguous buffer — the driver must copy;
    - receive writes packets into a single contiguous ring buffer
      ([status16, length16, frame, dword padding]) that the driver walks
      with its read pointer (CAPR) — the driver must copy packets out;
    - the interrupt status register is write-1-to-clear, not
      read-to-clear. *)

(** Register offsets (32-bit registers within one 4 KiB page):
    [tsd n] is the transmit status of slot [n] (bit 13 = OWN/slot-free,
    bit 15 = transmit-OK), [tsad n] its buffer address; [rbstart] the
    receive-ring base; [capr] the driver's read pointer and [cbr] the
    device's write pointer into the ring; [imr]/[isr] the interrupt mask
    and (write-1-to-clear) status. *)

val tsd : int -> int
val tsad : int -> int
val rbstart : int
val capr : int
val cbr : int
val imr : int
val isr : int
val cmd : int

val tsd_own : int
val tsd_tok : int
val isr_rok : int
val isr_tok : int

val rx_ring_bytes : int
(** Size of the receive ring the driver must allocate (16 KiB). *)

val rx_hdr_bytes : int
(** Per-packet ring header: status16 + length16. *)

type t

val create :
  ?fault_domain:(unit -> string option) ->
  dma:Td_mem.Addr_space.t ->
  mac:string ->
  tx_frame:(string -> unit) ->
  unit ->
  t
(** [fault_domain] as in {!E1000_dev.create}: guest-reachable validation
    failures raise the typed {!Td_xen.Guest_fault.Fault}, attributed to
    the named domain. *)

val attach : t -> space:Td_mem.Addr_space.t -> vaddr:int -> unit
val set_irq_handler : t -> (unit -> unit) -> unit
val receive_frame : t -> string -> unit
val tx_count : t -> int
val rx_count : t -> int
val dropped : t -> int

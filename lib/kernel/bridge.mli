(** The dom0 software bridge of Figure 1: connects the physical NIC's
    driver to backend interfaces (one per guest) and the dom0 local stack,
    forwarding ethernet frames by destination MAC with source-MAC
    learning. *)

type port = { port_name : string; tx : string -> unit }

type t

val create : unit -> t
val add_port : t -> port -> unit

val forward : t -> string -> unit
(** [forward t frame] learns the source MAC and forwards by destination:
    to the learned port, or floods to every port except the learned source
    port when unknown (broadcast behaviour). *)

val learn : t -> mac:string -> port -> unit
(** Static entry (used when guest MACs are known up front). *)

val lookup : t -> mac:string -> port option
(** The fdb entry for [mac], if any — lets a caller route only known
    destinations through {!forward} and keep its own policy (e.g. dom0
    local delivery) for unknown ones, instead of flooding. *)

val forget : t -> mac:string -> unit

val remove_port : t -> string -> unit
(** Remove the named port and every fdb entry pointing at it — backend
    interface teardown when its guest is destroyed. *)

val forwarded : t -> int
val flooded : t -> int

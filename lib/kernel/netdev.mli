(** net_device: the kernel's view of a network interface, materialised in
    dom0 memory (32 bytes):
    {v
      +0  mmio_base   virtual address of the NIC register page
      +4  flags       bit 0: transmit queue stopped
      +8  priv        driver-private (adapter) structure pointer
      +12 mac[6]      station address
      +20 mtu
      +24 watchdog_timeo
      +28 reserved
    v} *)

type t = { space : Td_mem.Addr_space.t; addr : int }

val struct_bytes : int

val alloc : Kmem.t -> Td_mem.Addr_space.t -> mmio_base:int -> mac:string -> t
val of_addr : Td_mem.Addr_space.t -> int -> t

val mmio_base : t -> int
val priv : t -> int
val set_priv : t -> int -> unit
val mac : t -> string
val mtu : t -> int
val set_mtu : t -> int -> unit

val repair : t -> mmio_base:int -> mac:string -> mtu:int -> unit
(** Rewrite every driver-reachable field from known-good (shadow) values
    before re-initialising a restarted driver instance; [priv] is left
    for the driver's own init to replace. *)

val queue_stopped : t -> bool
val stop_queue : t -> unit
val wake_queue : t -> unit

type t = { space : Td_mem.Addr_space.t; addr : int }

let struct_bytes = 32

let rd t off = Td_mem.Addr_space.read t.space (t.addr + off) Td_misa.Width.W32
let wr t off v = Td_mem.Addr_space.write t.space (t.addr + off) Td_misa.Width.W32 v

let of_addr space addr = { space; addr }

let alloc kmem space ~mmio_base ~mac =
  if String.length mac <> 6 then invalid_arg "Netdev.alloc: mac must be 6 bytes";
  let addr = Kmem.alloc kmem struct_bytes in
  let t = { space; addr } in
  wr t 0 mmio_base;
  wr t 4 0;
  wr t 8 0;
  Td_mem.Addr_space.write_block space (addr + 12) (Bytes.of_string mac);
  wr t 20 1500;
  wr t 24 0;
  t

let mmio_base t = rd t 0
let priv t = rd t 8
let set_priv t v = wr t 8 v
let mac t = Bytes.to_string (Td_mem.Addr_space.read_block t.space (t.addr + 12) 6)
let mtu t = rd t 20
let set_mtu t v = wr t 20 v
(* supervisor restart: rewrite every field a corrupted driver instance
   could have scribbled on, except priv — re-running init allocates a
   fresh adapter and overwrites it *)
let repair t ~mmio_base ~mac ~mtu =
  wr t 0 mmio_base;
  wr t 4 0;
  Td_mem.Addr_space.write_block t.space (t.addr + 12) (Bytes.of_string mac);
  wr t 20 mtu;
  wr t 24 0

let queue_stopped t = rd t 4 land 1 <> 0
let stop_queue t = wr t 4 (rd t 4 lor 1)
let wake_queue t = wr t 4 (rd t 4 land lnot 1)

(** The unoptimised Xen network I/O path (Figure 1): paravirtual frontend
    in the guest, I/O channel, backend + bridge in dom0.

    This is the baseline the paper improves on — every packet incurs
    grant-table operations, I/O-channel ring work, event-channel
    notifications and two synchronous domain switches, all charged against
    the ledger, while the real bytes move through the simulated pages so
    delivery can be asserted end-to-end.

    Notifications can be coalesced: with [~batch:n] the frontend stages up
    to [n] transmit requests (and the backend up to [n] receive
    completions) before sending the notifying hypercall / virtual
    interrupt, amortising its cost across the batch. Each deferred frame
    is charged {!Td_xen.Sys_costs.t.notify_coalesce} instead. [batch = 1]
    (the default) kicks on every frame and is cycle- and byte-identical to
    the historical unbatched path. *)

type t

val create :
  ?batch:int ->
  hyp:Td_xen.Hypervisor.t ->
  dom0:Td_xen.Domain.t ->
  guest:Td_xen.Domain.t ->
  kmem:Kmem.t ->
  driver_tx:(Skb.t -> unit) ->
  unit ->
  t
(** [driver_tx] invokes the dom0 NIC driver's transmit routine on a
    dom0-built sk_buff. [batch] (default 1) is the number of frames
    staged per notification; raises [Invalid_argument] if < 1. *)

val set_guest_rx : t -> (string -> unit) -> unit
(** Guest-side consumer of received frames. *)

val guest_transmit : t -> string -> unit
(** Frontend transmit path for one frame: stage in a granted page, push
    on the I/O channel, and — once [batch] requests are pending — kick
    the backend, which maps, forwards and unmaps each staged frame in
    ring order. *)

val post_rx_buffers : t -> int -> unit
(** Guest posts [n] granted receive buffers to the backend. *)

val rx_buffers_posted : t -> int

val deliver_to_guest : t -> Skb.t -> unit
(** Backend receive path: grant-copy the packet into a posted guest
    buffer and stage the completion; once [batch] completions are pending
    a single virtual interrupt delivers them all in order (frees the
    sk_buff). Drops (and counts) when no buffer is posted. *)

val flush : t -> unit
(** Force out any staged transmit requests and receive completions even
    if the batch is not full — the timer/ring-pressure flush. No-op when
    nothing is staged. *)

val staged : t -> int
(** Frames currently staged (both directions) awaiting a notification. *)

val tx_count : t -> int
val rx_count : t -> int
val rx_dropped : t -> int

val flushes : t -> int
(** Notifications actually sent (tx kicks + rx interrupts). *)

(** The unoptimised Xen network I/O path (Figure 1): paravirtual frontend
    in the guest, I/O channel, backend + bridge in dom0.

    This is the baseline the paper improves on — every packet incurs
    grant-table operations, I/O-channel ring work, event-channel
    notifications and two synchronous domain switches, all charged against
    the ledger, while the real bytes move through the simulated pages so
    delivery can be asserted end-to-end.

    Notifications can be coalesced: with [~batch:n] the frontend stages up
    to [n] transmit requests (and the backend up to [n] receive
    completions) before sending the notifying hypercall / virtual
    interrupt, amortising its cost across the batch. Each deferred frame
    is charged {!Td_xen.Sys_costs.t.notify_coalesce} instead. [batch = 1]
    (the default) kicks on every frame and is cycle- and byte-identical to
    the historical unbatched path.

    {2 Doorbell page and adaptive polling}

    With [~doorbell] the channel additionally shares one granted guest
    page between frontend and backend, holding a 32-bit sequence word per
    direction (tx at offset 0, written by the guest; rx at offset 4,
    written by dom0). Each direction then runs a NAPI-style state machine:

    - {b Interrupt} (initial): exactly today's behaviour — stage, kick at
      the batch boundary. When the kick rate over a tick window reaches
      [poll_entry_kicks], the direction switches to polling.
    - {b Polling}: the producer bumps the shared sequence word
      ({!Td_xen.Sys_costs.t.doorbell_write}) instead of hypercalling or
      raising a virq; the consumer's {!service} visits compare the word
      against the last seen value ({!Td_xen.Sys_costs.t.doorbell_poll})
      and drain up to [poll_budget] frames per visit, bounding how long
      one busy channel can hog the pump. After [idle_hysteresis]
      consecutive windows with no traffic the direction falls back to
      Interrupt, so an idle channel pays nothing.

    [poll_entry_kicks <= 0] pins both directions in always-poll (the
    bench's upper bound). Without [~doorbell] every code path, ledger
    charge and page allocation is identical to the seed. *)

type mode = Interrupt | Polling

type doorbell_cfg = {
  poll_entry_kicks : int;
      (** notification boundaries per tick window that trigger the switch
          to polling; [<= 0] pins always-poll *)
  idle_hysteresis : int;
      (** consecutive empty tick windows before falling back to
          interrupts; must be >= 1 *)
  poll_budget : int;
      (** max frames drained per doorbell visit (NAPI weight); must be
          >= 1 *)
}

type t

val create :
  ?batch:int ->
  ?queue:int ->
  ?doorbell:doorbell_cfg ->
  hyp:Td_xen.Hypervisor.t ->
  dom0:Td_xen.Domain.t ->
  guest:Td_xen.Domain.t ->
  kmem:Kmem.t ->
  driver_tx:(Skb.t -> unit) ->
  unit ->
  t
(** [driver_tx] invokes the dom0 NIC driver's transmit routine on a
    dom0-built sk_buff. [batch] (default 1) is the number of frames
    staged per notification; raises [Invalid_argument] if < 1. [doorbell]
    enables the shared doorbell page and adaptive mode switching; omitted,
    the channel is bit-identical to the pre-doorbell implementation.

    [queue] (default 0) is this channel's queue index on a multi-queue
    NIC: it selects which pair of doorbell sequence words the channel
    owns — queue [q] uses bytes [8q]/[8q + 4] — so the per-queue words
    ring independently. Queue 0 keeps the historical 0/4 layout and is
    bit-identical to a pre-multi-queue channel. *)

val set_guest_rx : t -> (string -> unit) -> unit
(** Guest-side consumer of received frames. *)

val guest_transmit : t -> string -> unit
(** Frontend transmit path for one frame: stage in a granted page, push
    on the I/O channel, and — once [batch] requests are pending — kick
    the backend, which maps, forwards and unmaps each staged frame in
    ring order. In polling mode the kick is replaced by a doorbell write;
    a full staging ring stalls the frontend on an inline backend poll. *)

val post_rx_buffers : t -> int -> unit
(** Guest posts [n] granted receive buffers to the backend. *)

val rx_buffers_posted : t -> int

val deliver_to_guest : t -> Skb.t -> unit
(** Backend receive path: grant-copy the packet into a posted guest
    buffer and stage the completion; once [batch] completions are pending
    a single virtual interrupt delivers them all in order (frees the
    sk_buff). Drops (and counts) when no buffer is posted. In polling
    mode the virq is replaced by a doorbell write and the guest drains
    completions from {!service}. *)

val flush : t -> unit
(** Force out any staged transmit requests and receive completions even
    if the batch is not full — the timer/ring-pressure flush. No-op when
    nothing is staged. Always notifies (hypercall/virq) regardless of
    mode; prefer {!service} for the pump. *)

val service : t -> unit
(** Mode-appropriate pump step: {!flush} for interrupt-mode directions,
    a doorbell poll (draining up to [poll_budget]) for polling-mode ones.
    Identical to {!flush} when the doorbell is disabled. *)

val on_tick : t -> unit
(** Timer-tick entry point: runs {!service}, then advances each
    direction's window state machine (poll entry / idle-hysteresis
    fallback). Identical to {!flush} when the doorbell is disabled. *)

val teardown : t -> unit
(** Drain both directions completely — a partial batch staged when the
    guest quiesces must still reach the wire / the guest stack. After
    teardown [staged t = 0] and {!conserved}[ t] holds. Idempotent. *)

val close : t -> unit
(** Destroy the channel: {!teardown}, then unmap the doorbell page from
    dom0 and revoke every grant the channel holds (staging ring, doorbell,
    posted rx buffers). Afterwards {!grants_active}[ t = 0], the doorbell
    window page is free for a future channel, and frontend entry points
    ({!guest_transmit}, {!post_rx_buffers}) raise a typed, attributed
    {!Td_xen.Guest_fault.Fault}; counters remain readable. Idempotent. *)

val closed : t -> bool

val grants_active : t -> int
(** Outstanding grants in the channel's grant table (0 after {!close} —
    the "no dangling grant" invariant the registry property checks). *)

val staged : t -> int
(** Frames currently staged (both directions) awaiting a notification. *)

val tx_count : t -> int
val rx_count : t -> int
val rx_dropped : t -> int

val rx_throttled : t -> int
(** Deliveries denied by the per-domain rx or grant-copy quota and
    dropped at the netback boundary (before the grant copy — a flooded
    guest costs dom0 almost nothing). Not counted in {!rx_dropped}. *)

val queue : t -> int
(** The channel's queue index (0 without multi-queue). *)

val flushes : t -> int
(** Notifications actually sent (tx kicks + rx interrupts). *)

val tx_staged_total : t -> int
(** Frames ever staged on the transmit ring. *)

val rx_staged_total : t -> int
(** Completions ever staged on the receive ring (drops excluded — see
    {!rx_dropped}). *)

val conserved : t -> bool
(** Frame conservation: [tx_staged_total = tx_count + staged_tx] and
    [rx_staged_total = rx_count + staged_rx] — nothing lost between
    frontend and backend. *)

val tx_mode : t -> mode
val rx_mode : t -> mode
(** Current per-direction mode; [Interrupt] when the doorbell is off. *)

val doorbell_window : int * int
(** [(base, limit)] of the dom0 virtual window holding persistent
    doorbell-page mappings, one page per open channel. A registry can
    count mapped pages here to assert no channel leaked its mapping. *)

val doorbell_vaddr : t -> int option
(** Guest virtual address of the shared doorbell page ([None] without a
    doorbell). The page is guest-writable by construction — exposed so
    adversarial harnesses can scribble on the sequence words. *)

val doorbell_polls : t -> int
(** Doorbell visits by the consumers (both directions). *)

val suppressed_hypercalls : t -> int
(** Batch boundaries on tx where polling made the kick unnecessary. *)

val suppressed_virqs : t -> int
(** Batch boundaries on rx where polling made the virq unnecessary. *)

val mode_switches : t -> int
(** Interrupt<->Polling transitions (both directions). *)

type t = { space : Td_mem.Addr_space.t; addr : int }

let struct_bytes = 32
let default_buf_bytes = 2048

let rd t off = Td_mem.Addr_space.read t.space (t.addr + off) Td_misa.Width.W32
let wr t off v = Td_mem.Addr_space.write t.space (t.addr + off) Td_misa.Width.W32 v

let of_addr space addr = { space; addr }

let data t = rd t 0
let set_data t v = wr t 0 v
let len t = rd t 4
let set_len t v = wr t 4 v
let head t = rd t 8
let end_ t = rd t 12
let refcnt t = rd t 16
let set_refcnt t v = wr t 16 v
let get_ref t = set_refcnt t (refcnt t + 1)
let protocol t = rd t 20
let set_protocol t v = wr t 20 v
let frag_page t = rd t 24

let set_frag t ~page ~len =
  wr t 24 page;
  wr t 28 len

let frag_len t = rd t 28
let capacity t = end_ t - head t

let alloc kmem space ~size =
  let addr = Kmem.alloc kmem struct_bytes in
  let buf = Kmem.alloc kmem size in
  let t = { space; addr } in
  set_data t buf;
  set_len t 0;
  wr t 8 buf;
  wr t 12 (buf + size);
  set_refcnt t 1;
  set_protocol t 0;
  set_frag t ~page:0 ~len:0;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "skb.alloc";
    Td_obs.Trace.emit (Td_obs.Trace.Skb_alloc { addr; pooled = false })
  end;
  t

let free kmem t =
  let r = refcnt t in
  if r <= 1 then begin
    if Td_obs.Control.enabled () then begin
      Td_obs.Metrics.bump "skb.free";
      Td_obs.Trace.emit (Td_obs.Trace.Skb_free { addr = t.addr; pooled = false })
    end;
    Kmem.free kmem (head t) (capacity t);
    Kmem.free kmem t.addr struct_bytes
  end
  else set_refcnt t (r - 1)

(* put/pull lengths are routinely derived from guest-writable descriptor
   rings, so an out-of-range value is guest-controlled input, not an
   invariant violation: raise a typed, counted Guest_fault (attributed to
   the address space holding the buffer) that the driver supervisor
   contains, never a bare failwith that would take dom0 down. *)
let put t payload =
  let d = data t and l = len t in
  if d + l + Bytes.length payload > end_ t then
    Td_xen.Guest_fault.fail
      ~domain:(Td_mem.Addr_space.name t.space)
      ~op:"Skb.put" "overflow: %d staged + %d new > %d capacity" l
      (Bytes.length payload) (capacity t);
  Td_mem.Addr_space.write_block t.space (d + l) payload;
  set_len t (l + Bytes.length payload)

let pull t n =
  if n > len t then
    Td_xen.Guest_fault.fail
      ~domain:(Td_mem.Addr_space.name t.space)
      ~op:"Skb.pull" "underflow: pulling %d of %d bytes" n (len t);
  set_data t (data t + n);
  set_len t (len t - n)

let contents t = Td_mem.Addr_space.read_block t.space (data t) (len t)
let total_len t = len t + frag_len t

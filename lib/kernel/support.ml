open Td_cpu

let fast_path_names =
  [
    "netdev_alloc_skb";
    "dev_kfree_skb_any";
    "netif_rx";
    "dma_map_single";
    "dma_map_page";
    "dma_unmap_single";
    "dma_unmap_page";
    "spin_trylock";
    "spin_unlock_irqrestore";
    "eth_type_trans";
  ]

let is_fast_path name = List.mem name fast_path_names

type routine = {
  name : string;
  fast_path : bool;
  dom0_fn : Native.fn;
  hyp_fn : Native.fn option;
  mutable dom0_calls : int;
  mutable hyp_calls : int;
  mutable upcall_calls : int;
}

type hyp_ctx = {
  hyp : Td_xen.Hypervisor.t;
  dom0 : Td_xen.Domain.t;
  svm : Td_svm.Runtime.t;
  pool : Skb_pool.t;
  mutable hyp_netif_rx : Skb.t -> unit;
}

type t = {
  space : Td_mem.Addr_space.t;
  kmem : Kmem.t;
  alloc_sizes : (int, int) Hashtbl.t;  (** kmalloc'd addr -> size, for kfree *)
  routines : (string, routine) Hashtbl.t;
  mutable order : string list;  (** registration order, reversed *)
  mutable netif_rx : Skb.t -> unit;
  mutable hyp_ctx : hyp_ctx option;
  upcall_stats : Td_xen.Upcall.stats;
}

let env_space t = t.space
let kmem t = t.kmem
let set_netif_rx t fn = t.netif_rx <- fn
let routine_names t = List.rev t.order
let routine_count t = Hashtbl.length t.routines
let upcall_stats t = t.upcall_stats

let find t name =
  match Hashtbl.find_opt t.routines name with
  | Some r -> r
  | None -> invalid_arg ("Support: unknown routine " ^ name)

let dom0_calls t name = (find t name).dom0_calls
let hyp_calls t name = (find t name).hyp_calls
let upcalls t name = (find t name).upcall_calls

let total_upcalls t =
  Hashtbl.fold (fun _ r acc -> acc + r.upcall_calls) t.routines 0

let reset_counts t =
  Hashtbl.iter
    (fun _ r ->
      r.dom0_calls <- 0;
      r.hyp_calls <- 0;
      r.upcall_calls <- 0)
    t.routines

let called_routines t =
  List.filter
    (fun n ->
      let r = find t n in
      r.dom0_calls + r.hyp_calls + r.upcall_calls > 0)
    (routine_names t)

(* ---- implementation helpers ---- *)

let arg = State.stack_arg
let ret st v = State.set st Td_misa.Reg.EAX v
let skb_of t st i = Skb.of_addr t.space (arg st i)

(* ---- the ten fast-path routines ---- *)

(* Hypervisor implementations "make use of the stlb translation table
   explicitly while accessing driver data in dom0 address space" (§4.3):
   we exercise the translation (installing persistent mappings) and then
   operate on the shared structures. *)

let touch_via_stlb ctx addr = ignore (Td_svm.Runtime.translate ctx.svm addr)

let impl_netdev_alloc_skb t st =
  (* args: netdev, size *)
  let skb = Skb.alloc t.kmem t.space ~size:(max 64 (arg st 1) + 64) in
  ret st skb.Skb.addr

let hyp_netdev_alloc_skb t ctx st =
  ignore t;
  match Skb_pool.alloc ctx.pool with
  | Some skb ->
      touch_via_stlb ctx skb.Skb.addr;
      ret st skb.Skb.addr
  | None -> ret st 0

let impl_dev_kfree_skb_any t st =
  let skb = skb_of t st 0 in
  Skb.free t.kmem skb;
  ret st 0

let hyp_dev_kfree_skb_any t ctx st =
  let skb = skb_of t st 0 in
  touch_via_stlb ctx skb.Skb.addr;
  if Skb_pool.owns ctx.pool skb then Skb_pool.release ctx.pool skb
  else Skb.free t.kmem skb;
  ret st 0

let impl_netif_rx t st =
  let skb = skb_of t st 0 in
  t.netif_rx skb;
  ret st 0

let hyp_netif_rx_impl t ctx st =
  let skb = skb_of t st 0 in
  touch_via_stlb ctx (Skb.data skb);
  ctx.hyp_netif_rx skb;
  ret st 0

let impl_dma_map_single _t st = ret st (arg st 0)
let impl_dma_map_page _t st = ret st (arg st 0 + arg st 1)
let impl_dma_unmap_single _t st = ret st 0
let impl_dma_unmap_page _t st = ret st 0

let impl_spin_trylock t st =
  ret st (if Spinlock.trylock t.space (arg st 0) then 1 else 0)

let impl_spin_unlock_irqrestore t st =
  Spinlock.unlock t.space (arg st 0);
  ret st 0

let impl_eth_type_trans t st =
  let skb = skb_of t st 0 in
  let hdr = Td_mem.Addr_space.read_block t.space (Skb.data skb) 14 in
  let proto = (Char.code (Bytes.get hdr 12) lsl 8) lor Char.code (Bytes.get hdr 13) in
  Skb.pull skb 14;
  Skb.set_protocol skb proto;
  ret st proto

let hyp_eth_type_trans t ctx st =
  let skb = skb_of t st 0 in
  touch_via_stlb ctx (Skb.data skb);
  impl_eth_type_trans t st

(* ---- the long tail of support routines ---- *)

let impl_kmalloc t st =
  let size = max 1 (arg st 0) in
  let addr = Kmem.alloc t.kmem size in
  Hashtbl.replace t.alloc_sizes addr size;
  ret st addr

let impl_kfree t st =
  let addr = arg st 0 in
  (match Hashtbl.find_opt t.alloc_sizes addr with
  | Some size ->
      Hashtbl.remove t.alloc_sizes addr;
      Kmem.free t.kmem addr size
  | None -> ());
  ret st 0

let impl_memcpy t st =
  let dst = arg st 0 and src = arg st 1 and n = arg st 2 in
  Td_mem.Addr_space.write_block t.space dst
    (Td_mem.Addr_space.read_block t.space src n);
  ret st dst

let impl_memset t st =
  let dst = arg st 0 and c = arg st 1 and n = arg st 2 in
  Td_mem.Addr_space.write_block t.space dst (Bytes.make n (Char.chr (c land 0xff)));
  ret st dst

let impl_readl t st = ret st (Td_mem.Addr_space.read t.space (arg st 0) Td_misa.Width.W32)

let impl_writel t st =
  Td_mem.Addr_space.write t.space (arg st 1) Td_misa.Width.W32 (arg st 0);
  ret st 0

let impl_skb_put t st =
  let skb = skb_of t st 0 and n = arg st 1 in
  let tail = Skb.data skb + Skb.len skb in
  (* the length argument can originate in a guest-writable descriptor
     ring: contain it as a typed, accounted guest fault, not a crash *)
  if n < 0 || tail + n > Skb.end_ skb then
    Td_xen.Guest_fault.fail
      ~domain:(Td_mem.Addr_space.name t.space)
      ~op:"skb_put" "overflow: %d bytes at 0x%x exceeds end 0x%x" n tail
      (Skb.end_ skb);
  Skb.set_len skb (Skb.len skb + n);
  ret st tail

let impl_skb_reserve t st =
  let skb = skb_of t st 0 and n = arg st 1 in
  Skb.set_data skb (Skb.data skb + n);
  ret st 0

let impl_skb_pull t st =
  let skb = skb_of t st 0 and n = arg st 1 in
  Skb.pull skb n;
  ret st (Skb.data skb)

let impl_netif_stop_queue t st =
  Netdev.stop_queue (Netdev.of_addr t.space (arg st 0));
  ret st 0

let impl_netif_wake_queue t st =
  Netdev.wake_queue (Netdev.of_addr t.space (arg st 0));
  ret st 0

let impl_netif_queue_stopped t st =
  ret st (if Netdev.queue_stopped (Netdev.of_addr t.space (arg st 0)) then 1 else 0)

let impl_spin_lock t st =
  ignore (Spinlock.trylock t.space (arg st 0));
  ret st 0

let impl_spin_lock_init t st =
  Spinlock.init t.space (arg st 0);
  ret st 0

let impl_identity0 _t st = ret st (arg st 0)
let impl_zero _t st = ret st 0
let impl_one _t st = ret st 1

let impl_dma_alloc_coherent t st =
  let size = max 1 (arg st 0) in
  let addr = Kmem.alloc t.kmem size in
  Hashtbl.replace t.alloc_sizes addr size;
  ret st addr

(* names of routines that behave as "return 0 and count" — configuration,
   PCI plumbing, timers, logging, scheduling; the things the VM instance
   keeps handling so the hypervisor never needs them (§3.1) *)
let zero_tail =
  [
    "pci_enable_device"; "pci_set_master"; "pci_request_regions";
    "pci_release_regions"; "pci_read_config_dword"; "pci_write_config_dword";
    "pci_set_dma_mask"; "pci_disable_device"; "pci_save_state";
    "pci_restore_state"; "request_irq"; "free_irq"; "register_netdev";
    "unregister_netdev"; "free_netdev"; "mod_timer"; "del_timer";
    "del_timer_sync"; "msleep"; "mdelay"; "udelay"; "schedule_work";
    "cancel_work_sync"; "printk"; "dev_err"; "dev_warn"; "dev_info";
    "local_irq_save"; "local_irq_restore"; "spin_lock_irqsave";
    "netif_carrier_on"; "netif_carrier_off"; "netif_start_queue";
    "mutex_init"; "mutex_lock"; "mutex_unlock"; "init_waitqueue_head";
    "wake_up"; "wait_event_timeout"; "queue_delayed_work";
    "cancel_delayed_work"; "flush_scheduled_work"; "synchronize_irq";
    "free_irq_vector"; "napi_enable"; "napi_disable"; "napi_schedule";
    "dma_free_coherent"; "iounmap"; "vfree"; "put_page"; "get_page";
    "atomic_inc"; "atomic_dec"; "set_bit"; "clear_bit"; "smp_mb";
    "prefetch"; "dump_stack"; "ethtool_op_get_link"; "eth_validate_addr";
    "copy_to_user"; "copy_from_user"; "capable"; "schedule";
    "cond_resched"; "might_sleep"; "rtnl_lock"; "rtnl_unlock";
  ]

let identity_tail =
  [ "cpu_to_le32"; "le32_to_cpu"; "cpu_to_le16"; "le16_to_cpu";
    "virt_to_phys"; "phys_to_virt"; "page_address"; "ioremap" ]

(* ---- registry construction ---- *)

let create ~space ~kmem =
  let t =
    {
      space;
      kmem;
      alloc_sizes = Hashtbl.create 64;
      routines = Hashtbl.create 128;
      order = [];
      netif_rx = (fun _ -> ());
      hyp_ctx = None;
      upcall_stats = Td_xen.Upcall.fresh_stats ();
    }
  in
  let add ?hyp name fn =
    if Hashtbl.mem t.routines name then invalid_arg ("Support: duplicate " ^ name);
    Hashtbl.replace t.routines name
      {
        name;
        fast_path = is_fast_path name;
        dom0_fn = fn t;
        hyp_fn = Option.map (fun f -> f t) hyp;
        dom0_calls = 0;
        hyp_calls = 0;
        upcall_calls = 0;
      };
    t.order <- name :: t.order
  in
  let hyp_wrap f t st =
    match t.hyp_ctx with
    | Some ctx -> f t ctx st
    | None ->
        (* a twin routine ran before attach_hyp_ctx: abort this driver
           instance with a typed fault instead of killing the run *)
        Td_xen.Guest_fault.fail ~op:"support.hyp_ctx"
          "hypervisor context not initialised"
  in
  (* Table 1 *)
  add "netdev_alloc_skb" impl_netdev_alloc_skb
    ~hyp:(hyp_wrap hyp_netdev_alloc_skb);
  add "dev_kfree_skb_any" impl_dev_kfree_skb_any
    ~hyp:(hyp_wrap hyp_dev_kfree_skb_any);
  add "netif_rx" impl_netif_rx ~hyp:(hyp_wrap hyp_netif_rx_impl);
  add "dma_map_single" impl_dma_map_single ~hyp:(fun t -> impl_dma_map_single t);
  add "dma_map_page" impl_dma_map_page ~hyp:(fun t -> impl_dma_map_page t);
  add "dma_unmap_single" impl_dma_unmap_single
    ~hyp:(fun t -> impl_dma_unmap_single t);
  add "dma_unmap_page" impl_dma_unmap_page ~hyp:(fun t -> impl_dma_unmap_page t);
  add "spin_trylock" impl_spin_trylock ~hyp:(fun t -> impl_spin_trylock t);
  add "spin_unlock_irqrestore" impl_spin_unlock_irqrestore
    ~hyp:(fun t -> impl_spin_unlock_irqrestore t);
  add "eth_type_trans" impl_eth_type_trans ~hyp:(hyp_wrap hyp_eth_type_trans);
  (* the long tail *)
  add "kmalloc" impl_kmalloc;
  add "kzalloc" impl_kmalloc;
  add "kfree" impl_kfree;
  add "dma_alloc_coherent" impl_dma_alloc_coherent;
  add "memcpy" impl_memcpy;
  add "memset" impl_memset;
  add "readl" impl_readl;
  add "writel" impl_writel;
  add "skb_put" impl_skb_put;
  add "skb_reserve" impl_skb_reserve;
  add "skb_pull" impl_skb_pull;
  add "netif_stop_queue" impl_netif_stop_queue;
  add "netif_wake_queue" impl_netif_wake_queue;
  add "netif_queue_stopped" impl_netif_queue_stopped;
  add "spin_lock" impl_spin_lock;
  add "spin_unlock" (fun t -> impl_spin_unlock_irqrestore t);
  add "spin_lock_init" impl_spin_lock_init;
  add "test_bit" (fun t -> impl_zero t);
  add "jiffies" (fun t -> impl_one t);
  List.iter (fun n -> add n impl_zero) zero_tail;
  List.iter (fun n -> add n impl_identity0) identity_tail;
  t

(* ---- native registration & symbol tables ---- *)

let register_dom0_natives t natives =
  Hashtbl.iter
    (fun name r ->
      let counted st =
        r.dom0_calls <- r.dom0_calls + 1;
        r.dom0_fn st
      in
      ignore (Native.register natives (name ^ "@dom0") counted))
    t.routines

let dom0_symtab t natives name =
  if Hashtbl.mem t.routines name then
    Native.address_of natives (name ^ "@dom0")
  else None

let register_hyp_natives t natives ~ctx ~native_set =
  t.hyp_ctx <- Some ctx;
  List.iter
    (fun n ->
      if not (is_fast_path n) then
        invalid_arg ("Support: " ^ n ^ " has no hypervisor implementation"))
    native_set;
  Hashtbl.iter
    (fun name r ->
      let fn =
        match r.hyp_fn with
        | Some hyp_fn when List.mem name native_set ->
            fun st ->
              r.hyp_calls <- r.hyp_calls + 1;
              hyp_fn st
        | Some _ | None ->
            let stub =
              Td_xen.Upcall.make_stub ~hyp:ctx.hyp ~dom0:ctx.dom0 ~name
                ~impl:r.dom0_fn t.upcall_stats
            in
            fun st ->
              r.upcall_calls <- r.upcall_calls + 1;
              stub st
      in
      ignore (Native.register natives (name ^ "@hyp") fn))
    t.routines

let set_hyp_netif_rx t fn =
  match t.hyp_ctx with
  | Some ctx -> ctx.hyp_netif_rx <- fn
  | None -> invalid_arg "Support.set_hyp_netif_rx: no hypervisor context"

let hyp_symtab t natives name =
  if Hashtbl.mem t.routines name then Native.address_of natives (name ^ "@hyp")
  else None

type t = {
  space : Td_mem.Addr_space.t;
  all : (int, int) Hashtbl.t;  (** struct addr -> preallocated frag buffer *)
  mutable free : Skb.t list;
  size : int;
  mutable exhaustions : int;
}

let create kmem space ~entries ~buf_size =
  let all = Hashtbl.create entries in
  let free =
    List.init entries (fun _ ->
        let skb = Skb.alloc kmem space ~size:buf_size in
        (* base reference held by the pool: dom0 frees only decrement *)
        Skb.get_ref skb;
        let frag = Kmem.alloc kmem Td_mem.Layout.page_size in
        Hashtbl.replace all skb.Skb.addr frag;
        skb)
  in
  { space; all; free; size = entries; exhaustions = 0 }

let alloc t =
  match t.free with
  | skb :: rest ->
      t.free <- rest;
      Skb.get_ref skb;
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "skb.pool.alloc";
        Td_obs.Trace.emit
          (Td_obs.Trace.Skb_alloc { addr = skb.Skb.addr; pooled = true })
      end;
      Some skb
  | [] ->
      t.exhaustions <- t.exhaustions + 1;
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "skb.pool.exhaustions";
        Td_obs.Trace.emit (Td_obs.Trace.Nic_drop { reason = "skb pool empty" })
      end;
      None

let owns t skb = Hashtbl.mem t.all skb.Skb.addr

(* reset to a pristine buffer holding only the pool's base reference *)
let make_pristine skb =
  Skb.set_refcnt skb 1;
  Skb.set_data skb (Skb.head skb);
  Skb.set_len skb 0;
  Skb.set_frag skb ~page:0 ~len:0;
  Skb.set_protocol skb 0

let release t skb =
  (* a foreign sk_buff here is driver-supplied data, reachable from a
     corrupted or malicious driver instance: typed fault, not a crash *)
  if not (owns t skb) then
    Td_xen.Guest_fault.fail ~op:"Skb_pool.release" "foreign sk_buff 0x%x"
      skb.Skb.addr;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "skb.pool.release";
    Td_obs.Trace.emit
      (Td_obs.Trace.Skb_free { addr = skb.Skb.addr; pooled = true })
  end;
  make_pristine skb;
  t.free <- skb :: t.free

let iter t f = Hashtbl.iter (fun addr _ -> f (Skb.of_addr t.space addr)) t.all

(* Reclaim every slot, in flight or not: when the supervisor tears down
   an aborted driver instance nothing can tell which in-flight buffers
   the dead instance still referenced, so all of them come home and every
   consumer (rx rings and the like) must be re-initialised afterwards. *)
let reset t =
  t.free <- [];
  Hashtbl.iter
    (fun addr _ ->
      let skb = Skb.of_addr t.space addr in
      make_pristine skb;
      t.free <- skb :: t.free)
    t.all

let frag_buffer t skb =
  match Hashtbl.find_opt t.all skb.Skb.addr with
  | Some frag -> frag
  | None ->
      Td_xen.Guest_fault.fail ~op:"Skb_pool.frag_buffer" "foreign sk_buff 0x%x"
        skb.Skb.addr

let available t = List.length t.free
let size t = t.size
let exhaustions t = t.exhaustions

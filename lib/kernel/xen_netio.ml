open Td_xen

type t = {
  hyp : Hypervisor.t;
  dom0 : Domain.t;
  guest : Domain.t;
  kmem : Kmem.t;
  driver_tx : Skb.t -> unit;
  grants : Grant_table.t;
  batch : int;  (** notifications coalesced per kick (1 = every frame) *)
  tx_pages : (int * Grant_table.grant_ref) array;
      (** [batch] granted guest pages used to stage transmitted frames *)
  tx_staged : (int * Grant_table.grant_ref * int) Queue.t;
      (** (guest vaddr, grant, length) pushed on the ring, kick pending *)
  mutable map_cursor : int;  (** dom0 vaddr window for grant maps *)
  rx_posted : (Grant_table.grant_ref * int) Queue.t;
  rx_staged : (Grant_table.grant_ref * int * int) Queue.t;
      (** (grant, guest vaddr, length) copied in, notification pending *)
  mutable guest_rx : string -> unit;
  mutable tx_count : int;
  mutable rx_count : int;
  mutable rx_dropped : int;
  mutable flush_count : int;
}

(* dom0 virtual window where granted guest pages are temporarily mapped *)
let grant_map_base = 0xC7F0_0000

let create ?(batch = 1) ~hyp ~dom0 ~guest ~kmem ~driver_tx () =
  if batch < 1 then invalid_arg "Xen_netio: batch must be >= 1";
  let gspace = Domain.space guest in
  let grants = Grant_table.create ~owner:guest in
  let tx_pages =
    Array.init batch (fun _ ->
        let page =
          Td_mem.Addr_space.heap_alloc gspace Td_mem.Layout.page_size
        in
        let frame =
          match
            Td_mem.Addr_space.frame_of_vpage gspace
              ~vpage:(Td_mem.Layout.page_of page)
          with
          | Some f -> f
          | None -> assert false
        in
        (page, Grant_table.grant grants ~frame))
  in
  {
    hyp;
    dom0;
    guest;
    kmem;
    driver_tx;
    grants;
    batch;
    tx_pages;
    tx_staged = Queue.create ();
    map_cursor = grant_map_base;
    rx_posted = Queue.create ();
    rx_staged = Queue.create ();
    guest_rx = (fun _ -> ());
    tx_count = 0;
    rx_count = 0;
    rx_dropped = 0;
    flush_count = 0;
  }

let set_guest_rx t fn = t.guest_rx <- fn

let charge_dom0 t n = Hypervisor.charge_domain t.hyp t.dom0 n
let charge_guest t n = Hypervisor.charge_domain t.hyp t.guest n

(* One kick drains every staged request: the backend runs once in dom0,
   mapping, forwarding and unmapping each granted frame in ring order. *)
let flush_tx t =
  if not (Queue.is_empty t.tx_staged) then begin
    let costs = Hypervisor.costs t.hyp in
    t.flush_count <- t.flush_count + 1;
    if Td_obs.Control.enabled () then Td_obs.Metrics.bump "netio.flush";
    Hypervisor.hypercall t.hyp ();
    Hypervisor.run_in t.hyp t.dom0 (fun () ->
        while not (Queue.is_empty t.tx_staged) do
          let gvaddr, gref, len = Queue.pop t.tx_staged in
          ignore gvaddr;
          let vaddr = t.map_cursor in
          Grant_table.map t.grants ~hyp:t.hyp ~into:t.dom0
            ~at_vpage:(Td_mem.Layout.page_of vaddr)
            gref;
          charge_dom0 t costs.Sys_costs.netback;
          let skb = Skb.alloc t.kmem (Domain.space t.dom0) ~size:(len + 64) in
          Skb.put skb
            (Td_mem.Addr_space.read_block (Domain.space t.dom0) vaddr len);
          charge_dom0 t costs.Sys_costs.bridge;
          t.driver_tx skb;
          Grant_table.unmap t.grants ~hyp:t.hyp ~from:t.dom0
            ~at_vpage:(Td_mem.Layout.page_of vaddr)
            gref;
          t.tx_count <- t.tx_count + 1;
          if Td_obs.Control.enabled () then begin
            Td_obs.Metrics.bump "netio.tx";
            Td_obs.Trace.emit (Td_obs.Trace.Netio_tx { bytes = len })
          end
        done)
  end

let guest_transmit t frame =
  let costs = Hypervisor.costs t.hyp in
  let len = String.length frame in
  if len > Td_mem.Layout.page_size then invalid_arg "Xen_netio: frame too large";
  (* frontend: stage the frame in a granted guest page and push a request
     on the I/O channel; the notifying hypercall is sent only when the
     ring holds [batch] requests (or at the next explicit flush) *)
  charge_guest t costs.Sys_costs.netfront;
  let page, gref = t.tx_pages.(Queue.length t.tx_staged) in
  Td_mem.Addr_space.write_block (Domain.space t.guest) page
    (Bytes.of_string frame);
  Hypervisor.charge_xen t.hyp costs.Sys_costs.io_channel;
  Queue.push (page, gref, len) t.tx_staged;
  if Queue.length t.tx_staged >= t.batch then flush_tx t
  else Hypervisor.charge_xen t.hyp costs.Sys_costs.notify_coalesce

let post_rx_buffers t n =
  let gspace = Domain.space t.guest in
  for _ = 1 to n do
    let page = Td_mem.Addr_space.heap_alloc gspace Td_mem.Layout.page_size in
    let frame =
      match
        Td_mem.Addr_space.frame_of_vpage gspace
          ~vpage:(Td_mem.Layout.page_of page)
      with
      | Some f -> f
      | None -> assert false
    in
    let r = Grant_table.grant t.grants ~frame in
    Queue.push (r, page) t.rx_posted
  done

let rx_buffers_posted t = Queue.length t.rx_posted

(* One virtual interrupt announces every copied-in frame: the frontend
   handler walks the completions in order, handing each frame to the guest
   stack and re-posting its buffer. *)
let flush_rx t =
  if not (Queue.is_empty t.rx_staged) then begin
    let costs = Hypervisor.costs t.hyp in
    t.flush_count <- t.flush_count + 1;
    if Td_obs.Control.enabled () then Td_obs.Metrics.bump "netio.flush";
    let completions = ref [] in
    while not (Queue.is_empty t.rx_staged) do
      completions := Queue.pop t.rx_staged :: !completions
    done;
    let completions = List.rev !completions in
    Hypervisor.send_virq t.hyp t.guest (fun () ->
        List.iter
          (fun (gref, gvaddr, len) ->
            charge_guest t costs.Sys_costs.netfront;
            let frame =
              Td_mem.Addr_space.read_block (Domain.space t.guest) gvaddr len
            in
            t.rx_count <- t.rx_count + 1;
            if Td_obs.Control.enabled () then begin
              Td_obs.Metrics.bump "netio.rx";
              Td_obs.Trace.emit (Td_obs.Trace.Netio_rx { bytes = len })
            end;
            t.guest_rx (Bytes.to_string frame);
            Queue.push (gref, gvaddr) t.rx_posted)
          completions)
  end

let deliver_to_guest t skb =
  let costs = Hypervisor.costs t.hyp in
  charge_dom0 t (costs.Sys_costs.bridge + costs.Sys_costs.netback);
  if Queue.is_empty t.rx_posted then begin
    t.rx_dropped <- t.rx_dropped + 1;
    if Td_obs.Control.enabled () then begin
      Td_obs.Metrics.bump "netio.rx_dropped";
      Td_obs.Trace.emit
        (Td_obs.Trace.Nic_drop { reason = "no rx buffer posted" })
    end;
    Skb.free t.kmem skb
  end
  else begin
    let gref, gvaddr = Queue.pop t.rx_posted in
    let payload = Skb.contents skb in
    (* hypervisor-mediated copy into the guest's granted frame *)
    Grant_table.copy_to t.grants ~hyp:t.hyp gref ~offset:0 ~src:payload;
    Hypervisor.charge_xen t.hyp costs.Sys_costs.io_channel;
    Skb.free t.kmem skb;
    Queue.push (gref, gvaddr, Bytes.length payload) t.rx_staged;
    if Queue.length t.rx_staged >= t.batch then flush_rx t
    else Hypervisor.charge_xen t.hyp costs.Sys_costs.notify_coalesce
  end

let flush t =
  flush_tx t;
  flush_rx t

let staged t = Queue.length t.tx_staged + Queue.length t.rx_staged
let tx_count t = t.tx_count
let rx_count t = t.rx_count
let rx_dropped t = t.rx_dropped
let flushes t = t.flush_count

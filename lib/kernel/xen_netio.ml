open Td_xen

type t = {
  hyp : Hypervisor.t;
  dom0 : Domain.t;
  guest : Domain.t;
  kmem : Kmem.t;
  driver_tx : Skb.t -> unit;
  grants : Grant_table.t;
  tx_page : int;  (** guest page used to stage transmitted frames *)
  tx_grant : Grant_table.grant_ref;
  mutable map_cursor : int;  (** dom0 vaddr window for grant maps *)
  rx_posted : (Grant_table.grant_ref * int) Queue.t;
  mutable guest_rx : string -> unit;
  mutable tx_count : int;
  mutable rx_count : int;
  mutable rx_dropped : int;
}

(* dom0 virtual window where granted guest pages are temporarily mapped *)
let grant_map_base = 0xC7F0_0000

let create ~hyp ~dom0 ~guest ~kmem ~driver_tx () =
  let gspace = Domain.space guest in
  let tx_page = Td_mem.Addr_space.heap_alloc gspace Td_mem.Layout.page_size in
  let grants = Grant_table.create ~owner:guest in
  let frame =
    match
      Td_mem.Addr_space.frame_of_vpage gspace
        ~vpage:(Td_mem.Layout.page_of tx_page)
    with
    | Some f -> f
    | None -> assert false
  in
  {
    hyp;
    dom0;
    guest;
    kmem;
    driver_tx;
    grants;
    tx_page;
    tx_grant = Grant_table.grant grants ~frame;
    map_cursor = grant_map_base;
    rx_posted = Queue.create ();
    guest_rx = (fun _ -> ());
    tx_count = 0;
    rx_count = 0;
    rx_dropped = 0;
  }

let set_guest_rx t fn = t.guest_rx <- fn

let charge_dom0 t n = Hypervisor.charge_domain t.hyp t.dom0 n
let charge_guest t n = Hypervisor.charge_domain t.hyp t.guest n

let guest_transmit t frame =
  let costs = Hypervisor.costs t.hyp in
  let len = String.length frame in
  if len > Td_mem.Layout.page_size then invalid_arg "Xen_netio: frame too large";
  (* frontend: stage the frame in the granted guest page, push a request
     on the I/O channel, notify dom0 *)
  charge_guest t costs.Sys_costs.netfront;
  Td_mem.Addr_space.write_block (Domain.space t.guest) t.tx_page
    (Bytes.of_string frame);
  Hypervisor.charge_xen t.hyp costs.Sys_costs.io_channel;
  Hypervisor.hypercall t.hyp ();
  (* backend runs in dom0: map the grant, build an sk_buff, bridge it into
     the physical driver *)
  Hypervisor.run_in t.hyp t.dom0 (fun () ->
      let vaddr = t.map_cursor in
      Grant_table.map t.grants ~hyp:t.hyp ~into:t.dom0
        ~at_vpage:(Td_mem.Layout.page_of vaddr)
        t.tx_grant;
      charge_dom0 t costs.Sys_costs.netback;
      let skb = Skb.alloc t.kmem (Domain.space t.dom0) ~size:(len + 64) in
      Skb.put skb (Td_mem.Addr_space.read_block (Domain.space t.dom0) vaddr len);
      charge_dom0 t costs.Sys_costs.bridge;
      t.driver_tx skb;
      Grant_table.unmap t.grants ~hyp:t.hyp ~from:t.dom0
        ~at_vpage:(Td_mem.Layout.page_of vaddr)
        t.tx_grant);
  t.tx_count <- t.tx_count + 1;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "netio.tx";
    Td_obs.Trace.emit (Td_obs.Trace.Netio_tx { bytes = len })
  end

let post_rx_buffers t n =
  let gspace = Domain.space t.guest in
  for _ = 1 to n do
    let page = Td_mem.Addr_space.heap_alloc gspace Td_mem.Layout.page_size in
    let frame =
      match
        Td_mem.Addr_space.frame_of_vpage gspace
          ~vpage:(Td_mem.Layout.page_of page)
      with
      | Some f -> f
      | None -> assert false
    in
    let r = Grant_table.grant t.grants ~frame in
    Queue.push (r, page) t.rx_posted
  done

let rx_buffers_posted t = Queue.length t.rx_posted

let deliver_to_guest t skb =
  let costs = Hypervisor.costs t.hyp in
  charge_dom0 t (costs.Sys_costs.bridge + costs.Sys_costs.netback);
  if Queue.is_empty t.rx_posted then begin
    t.rx_dropped <- t.rx_dropped + 1;
    if Td_obs.Control.enabled () then begin
      Td_obs.Metrics.bump "netio.rx_dropped";
      Td_obs.Trace.emit
        (Td_obs.Trace.Nic_drop { reason = "no rx buffer posted" })
    end;
    Skb.free t.kmem skb
  end
  else begin
    let gref, gvaddr = Queue.pop t.rx_posted in
    let payload = Skb.contents skb in
    (* hypervisor-mediated copy into the guest's granted frame *)
    Grant_table.copy_to t.grants ~hyp:t.hyp gref ~offset:0 ~src:payload;
    Hypervisor.charge_xen t.hyp costs.Sys_costs.io_channel;
    Skb.free t.kmem skb;
    (* notify the guest; frontend hands the frame to the guest stack and
       immediately re-posts the buffer (as real netfront does) *)
    Hypervisor.send_virq t.hyp t.guest (fun () ->
        charge_guest t costs.Sys_costs.netfront;
        let frame =
          Td_mem.Addr_space.read_block (Domain.space t.guest) gvaddr
            (Bytes.length payload)
        in
        t.rx_count <- t.rx_count + 1;
        if Td_obs.Control.enabled () then begin
          Td_obs.Metrics.bump "netio.rx";
          Td_obs.Trace.emit
            (Td_obs.Trace.Netio_rx { bytes = Bytes.length payload })
        end;
        t.guest_rx (Bytes.to_string frame);
        Queue.push (gref, gvaddr) t.rx_posted)
  end

let tx_count t = t.tx_count
let rx_count t = t.rx_count
let rx_dropped t = t.rx_dropped

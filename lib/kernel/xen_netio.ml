open Td_xen

type mode = Interrupt | Polling

type doorbell_cfg = {
  poll_entry_kicks : int;
  idle_hysteresis : int;
  poll_budget : int;
}

(* Per-direction adaptive state. [seq]/[seen] mirror the 32-bit sequence
   word in the shared doorbell page: the producer increments [seq] and
   stores it; the consumer compares the loaded word against [seen]. *)
type dir_state = {
  dir_name : string;
  mutable mode : mode;
  mutable seq : int;
  mutable seen : int;
  mutable window_kicks : int;  (** notification boundaries this tick window *)
  mutable idle_windows : int;  (** consecutive windows with no boundary *)
  mutable since_notify : int;  (** frames staged since the last boundary *)
  mutable polls : int;
  mutable suppressed : int;
  mutable mode_switches : int;
}

type doorbell = {
  cfg : doorbell_cfg;
  page : int;  (** guest vaddr of the shared doorbell page *)
  dom0_vaddr : int;  (** persistent dom0 mapping of the same frame *)
  db_gref : Grant_table.grant_ref;
  tx_off : int;  (** byte offset of this queue's tx sequence word *)
  rx_off : int;  (** byte offset of this queue's rx sequence word *)
  tx : dir_state;
  rx : dir_state;
}

type t = {
  hyp : Hypervisor.t;
  dom0 : Domain.t;
  guest : Domain.t;
  kmem : Kmem.t;
  driver_tx : Skb.t -> unit;
  grants : Grant_table.t;
  batch : int;  (** notifications coalesced per kick (1 = every frame) *)
  tx_pages : (int * Grant_table.grant_ref) array;
      (** granted guest pages used to stage transmitted frames; sized
          [batch] without a doorbell, wider with one so budget-limited
          drains never reuse a still-staged slot *)
  queue : int;  (** queue index: selects this channel's doorbell words *)
  tx_staged : (int * Grant_table.grant_ref * int * int) Queue.t;
      (** (guest vaddr, grant, length, stage stamp) pushed on the ring,
          kick pending; the stamp is the simulated clock at staging, for
          the per-direction latency samples *)
  mutable tx_prod : int;  (** producer cursor into [tx_pages] *)
  mutable map_cursor : int;  (** dom0 vaddr window for grant maps *)
  rx_posted : (Grant_table.grant_ref * int) Queue.t;
  rx_staged : (Grant_table.grant_ref * int * int * int) Queue.t;
      (** (grant, guest vaddr, length, stage stamp) copied in,
          notification pending *)
  mutable guest_rx : string -> unit;
  mutable tx_count : int;
  mutable rx_count : int;
  mutable rx_dropped : int;
  mutable rx_throttled : int;  (** deliveries denied by the rx quota *)
  mutable flush_count : int;
  mutable tx_staged_total : int;
  mutable rx_staged_total : int;
  doorbell : doorbell option;
  mutable closed : bool;
}

(* dom0 virtual window where granted guest pages are temporarily mapped *)
let grant_map_base = 0xC7F0_0000

(* dom0 window for persistent doorbell-page mappings, just below the
   transient grant-map window; one page per channel *)
let doorbell_map_base = 0xC7E0_0000
let doorbell_window = (doorbell_map_base, grant_map_base)

(* doorbell page layout: one pair of little-endian 32-bit sequence words
   per queue — queue [q] owns bytes [8q .. 8q+7]: the tx word (guest
   stores, dom0 loads) at [8q], the rx word (dom0 stores, guest loads)
   at [8q + 4]. Queue 0 therefore keeps the historical 0/4 layout. *)
let tx_word_off ~queue = 8 * queue
let rx_word_off ~queue = (8 * queue) + 4
let max_queue_index = (Td_mem.Layout.page_size / 8) - 1

(* window exhaustion is reachable by a guest opening channels in a loop,
   so it faults typed and attributed instead of invalid_arg *)
let alloc_doorbell_vaddr ~guest dom0_space =
  let rec go vaddr =
    if vaddr >= grant_map_base then
      Guest_fault.fail ~domain:(Domain.name guest)
        ~op:"Xen_netio.alloc_doorbell_vaddr" "doorbell map window exhausted"
    else if
      Td_mem.Addr_space.is_mapped dom0_space
        ~vpage:(Td_mem.Layout.page_of vaddr)
    then go (vaddr + Td_mem.Layout.page_size)
    else vaddr
  in
  go doorbell_map_base

let grant_guest_page gspace grants =
  let page = Td_mem.Addr_space.heap_alloc gspace Td_mem.Layout.page_size in
  let frame =
    match
      Td_mem.Addr_space.frame_of_vpage gspace
        ~vpage:(Td_mem.Layout.page_of page)
    with
    | Some f -> f
    | None ->
        (* heap_alloc maps what it returns, so an unbacked page means the
           guest's page table was tampered with mid-allocation: a typed,
           attributed fault, not a simulation crash *)
        Guest_fault.fail
          ~domain:(Td_mem.Addr_space.name gspace)
          ~op:"netio.grant_guest_page" "heap page 0x%x has no backing frame"
          page
  in
  (page, Grant_table.grant grants ~frame)

let create ?(batch = 1) ?(queue = 0) ?doorbell ~hyp ~dom0 ~guest ~kmem
    ~driver_tx () =
  if batch < 1 then invalid_arg "Xen_netio: batch must be >= 1";
  if queue < 0 || queue > max_queue_index then
    invalid_arg "Xen_netio: queue out of range";
  let gspace = Domain.space guest in
  let grants = Grant_table.create ~owner:guest in
  (* Without a doorbell the staging ring is exactly [batch] pages and the
     producer cursor walks it in lockstep with the (always fully drained)
     staged queue — page-for-page the historical layout. With one, drains
     are budget-limited, so the ring is widened to keep the cursor from
     lapping frames a partial drain left behind. *)
  let ring_slots =
    match doorbell with
    | None -> batch
    | Some cfg -> max batch (2 * max 1 cfg.poll_budget)
  in
  let tx_pages = Array.init ring_slots (fun _ -> grant_guest_page gspace grants) in
  let doorbell =
    match doorbell with
    | None -> None
    | Some cfg ->
        if cfg.poll_budget < 1 then
          invalid_arg "Xen_netio: poll_budget must be >= 1";
        if cfg.idle_hysteresis < 1 then
          invalid_arg "Xen_netio: idle_hysteresis must be >= 1";
        let page, db_gref = grant_guest_page gspace grants in
        let tx_off = tx_word_off ~queue and rx_off = rx_word_off ~queue in
        Td_mem.Addr_space.write gspace (page + tx_off) Td_misa.Width.W32 0;
        Td_mem.Addr_space.write gspace (page + rx_off) Td_misa.Width.W32 0;
        let dom0_vaddr = alloc_doorbell_vaddr ~guest (Domain.space dom0) in
        Grant_table.map grants ~hyp ~into:dom0
          ~at_vpage:(Td_mem.Layout.page_of dom0_vaddr)
          db_gref;
        (* poll_entry_kicks <= 0 selects always-poll: start in Polling and
           never fall back (the bench's upper-bound configuration) *)
        let initial = if cfg.poll_entry_kicks <= 0 then Polling else Interrupt in
        let mk dir_name =
          {
            dir_name;
            mode = initial;
            seq = 0;
            seen = 0;
            window_kicks = 0;
            idle_windows = 0;
            since_notify = 0;
            polls = 0;
            suppressed = 0;
            mode_switches = 0;
          }
        in
        Some
          {
            cfg;
            page;
            dom0_vaddr;
            db_gref;
            tx_off;
            rx_off;
            tx = mk "tx";
            rx = mk "rx";
          }
  in
  {
    hyp;
    dom0;
    guest;
    kmem;
    driver_tx;
    grants;
    batch;
    tx_pages;
    queue;
    tx_staged = Queue.create ();
    tx_prod = 0;
    map_cursor = grant_map_base;
    rx_posted = Queue.create ();
    rx_staged = Queue.create ();
    guest_rx = (fun _ -> ());
    tx_count = 0;
    rx_count = 0;
    rx_dropped = 0;
    rx_throttled = 0;
    flush_count = 0;
    tx_staged_total = 0;
    rx_staged_total = 0;
    doorbell;
    closed = false;
  }

let set_guest_rx t fn = t.guest_rx <- fn

let charge_dom0 t n = Hypervisor.charge_domain t.hyp t.dom0 n
let charge_guest t n = Hypervisor.charge_domain t.hyp t.guest n

(* simulated clock for the latency samples: total cycles charged so far *)
let now t = Ledger.grand_total (Hypervisor.ledger t.hyp)

(* The backend's per-frame work, always run in dom0: map the granted
   frame, rebuild a dom0 sk_buff, hand it to the NIC driver, unmap. *)
let backend_tx_one t costs =
  let gvaddr, gref, len, stamp = Queue.pop t.tx_staged in
  ignore gvaddr;
  let vaddr = t.map_cursor in
  Grant_table.map t.grants ~hyp:t.hyp ~into:t.dom0
    ~at_vpage:(Td_mem.Layout.page_of vaddr)
    gref;
  charge_dom0 t costs.Sys_costs.netback;
  let skb = Skb.alloc t.kmem (Domain.space t.dom0) ~size:(len + 64) in
  Skb.put skb (Td_mem.Addr_space.read_block (Domain.space t.dom0) vaddr len);
  charge_dom0 t costs.Sys_costs.bridge;
  t.driver_tx skb;
  Grant_table.unmap t.grants ~hyp:t.hyp ~from:t.dom0
    ~at_vpage:(Td_mem.Layout.page_of vaddr)
    gref;
  t.tx_count <- t.tx_count + 1;
  Ledger.note_latency (Hypervisor.ledger t.hyp) `Tx (now t - stamp);
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "netio.tx";
    Td_obs.Trace.emit (Td_obs.Trace.Netio_tx { bytes = len })
  end

let backend_drain_tx t ~budget =
  if not (Queue.is_empty t.tx_staged) then
    Hypervisor.run_in t.hyp t.dom0 (fun () ->
        let costs = Hypervisor.costs t.hyp in
        let drained = ref 0 in
        while !drained < budget && not (Queue.is_empty t.tx_staged) do
          backend_tx_one t costs;
          incr drained
        done)

(* One kick drains every staged request: the backend runs once in dom0,
   mapping, forwarding and unmapping each granted frame in ring order. *)
let flush_tx t =
  if not (Queue.is_empty t.tx_staged) then begin
    t.flush_count <- t.flush_count + 1;
    if Td_obs.Control.enabled () then Td_obs.Metrics.bump "netio.flush";
    (match t.doorbell with
    | Some db ->
        db.tx.window_kicks <- db.tx.window_kicks + 1;
        db.tx.since_notify <- 0
    | None -> ());
    Hypervisor.hypercall t.hyp ();
    backend_drain_tx t ~budget:max_int
  end

(* Producer side of a doorbell: bump the sequence number and store it in
   the shared page — a cache-line write in place of a hypercall/virq. *)
let ring_doorbell t d ~space ~vaddr ~charge =
  let costs = Hypervisor.costs t.hyp in
  d.seq <- (d.seq + 1) land 0xFFFF_FFFF;
  Td_mem.Addr_space.write space vaddr Td_misa.Width.W32 d.seq;
  charge t costs.Sys_costs.doorbell_write;
  if Td_obs.Control.enabled () then Td_obs.Metrics.bump "netio.doorbell_writes"

(* Count the notification that coalescing would have sent at each [batch]
   boundary; in polling mode the doorbell makes it unnecessary. *)
let note_suppressed t d ~metric =
  d.since_notify <- d.since_notify + 1;
  if d.since_notify >= t.batch then begin
    d.since_notify <- 0;
    d.suppressed <- d.suppressed + 1;
    d.window_kicks <- d.window_kicks + 1;
    if Td_obs.Control.enabled () then Td_obs.Metrics.bump metric
  end

(* Consumer side: load the shared sequence word; on any advance (or
   leftovers from a budget-limited previous visit) drain up to the poll
   budget. Charged [doorbell_poll] whether or not there is work — the
   price of polling, and why idle channels fall back to interrupts. *)
let poll_tx t db =
  db.tx.polls <- db.tx.polls + 1;
  charge_dom0 t (Hypervisor.costs t.hyp).Sys_costs.doorbell_poll;
  if Td_obs.Control.enabled () then Td_obs.Metrics.bump "netio.doorbell_polls";
  let seq =
    Td_mem.Addr_space.read (Domain.space t.dom0)
      (db.dom0_vaddr + db.tx_off) Td_misa.Width.W32
  in
  if seq <> db.tx.seen || not (Queue.is_empty t.tx_staged) then begin
    db.tx.seen <- seq;
    backend_drain_tx t ~budget:db.cfg.poll_budget
  end

let guest_transmit t frame =
  if t.closed then
    Guest_fault.fail ~domain:(Domain.name t.guest)
      ~op:"Xen_netio.guest_transmit" "channel closed";
  let costs = Hypervisor.costs t.hyp in
  let len = String.length frame in
  if len > Td_mem.Layout.page_size then
    Guest_fault.fail ~domain:(Domain.name t.guest)
      ~op:"Xen_netio.guest_transmit" "frame of %d bytes exceeds the page" len;
  (* frontend: stage the frame in a granted guest page and push a request
     on the I/O channel; the notifying hypercall is sent only when the
     ring holds [batch] requests (or at the next explicit flush) — or, in
     polling mode, never: the stored sequence number is the signal *)
  (* quota gate at the very top of the frontend: a throttled frame costs
     (almost) nothing — the guest's credit check happens before the skb
     is even built, so dom0 and Xen never see it, which is what keeps a
     hostile neighbour from taxing the victim *)
  if Quota.active () then
    Quota.take ~domain:(Domain.name t.guest) Quota.Notifications;
  charge_guest t costs.Sys_costs.netfront;
  let slots = Array.length t.tx_pages in
  (match t.doorbell with
  | Some db when Queue.length t.tx_staged >= slots ->
      (* ring full: the frontend stalls until the backend polls it *)
      if Td_obs.Control.enabled () then Td_obs.Metrics.bump "netio.ring_full";
      poll_tx t db
  | _ -> ());
  let page, gref = t.tx_pages.(t.tx_prod mod slots) in
  t.tx_prod <- t.tx_prod + 1;
  Td_mem.Addr_space.write_block (Domain.space t.guest) page
    (Bytes.of_string frame);
  Hypervisor.charge_xen_for t.hyp ~domain:(Domain.name t.guest)
    costs.Sys_costs.io_channel;
  Queue.push (page, gref, len, now t) t.tx_staged;
  t.tx_staged_total <- t.tx_staged_total + 1;
  match t.doorbell with
  | Some db when db.tx.mode = Polling ->
      (* doorbell kicks are rate-limited gracefully: a dry bucket skips
         the store, and the consumer's leftover check (staged queue
         non-empty) still drains the frame on the next poll *)
      if
        (not (Quota.active ()))
        || Quota.try_take ~domain:(Domain.name t.guest) Quota.Doorbells
      then
        ring_doorbell t db.tx ~space:(Domain.space t.guest)
          ~vaddr:(db.page + db.tx_off) ~charge:charge_guest;
      note_suppressed t db.tx ~metric:"netio.suppressed_hypercalls"
  | _ ->
      if Queue.length t.tx_staged >= t.batch then flush_tx t
      else
        Hypervisor.charge_xen_for t.hyp ~domain:(Domain.name t.guest)
          costs.Sys_costs.notify_coalesce

let post_rx_buffers t n =
  if t.closed then
    Guest_fault.fail ~domain:(Domain.name t.guest)
      ~op:"Xen_netio.post_rx_buffers" "channel closed";
  let gspace = Domain.space t.guest in
  for _ = 1 to n do
    let page, r = grant_guest_page gspace t.grants in
    Queue.push (r, page) t.rx_posted
  done

let rx_buffers_posted t = Queue.length t.rx_posted

(* The frontend's per-completion work, run in the guest: read the frame
   out of the granted buffer, hand it to the stack, re-post the buffer. *)
let frontend_rx_deliver t costs (gref, gvaddr, len, stamp) =
  charge_guest t costs.Sys_costs.netfront;
  let frame = Td_mem.Addr_space.read_block (Domain.space t.guest) gvaddr len in
  t.rx_count <- t.rx_count + 1;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "netio.rx";
    Td_obs.Trace.emit (Td_obs.Trace.Netio_rx { bytes = len })
  end;
  t.guest_rx (Bytes.to_string frame);
  Ledger.note_latency (Hypervisor.ledger t.hyp) `Rx (now t - stamp);
  Queue.push (gref, gvaddr) t.rx_posted

let frontend_drain_rx t ~budget =
  if not (Queue.is_empty t.rx_staged) then
    Hypervisor.run_in t.hyp t.guest (fun () ->
        let costs = Hypervisor.costs t.hyp in
        let drained = ref 0 in
        while !drained < budget && not (Queue.is_empty t.rx_staged) do
          frontend_rx_deliver t costs (Queue.pop t.rx_staged);
          incr drained
        done)

(* One virtual interrupt announces every copied-in frame: the frontend
   handler walks the completions in order, handing each frame to the guest
   stack and re-posting its buffer. *)
let flush_rx t =
  if not (Queue.is_empty t.rx_staged) then begin
    let costs = Hypervisor.costs t.hyp in
    t.flush_count <- t.flush_count + 1;
    if Td_obs.Control.enabled () then Td_obs.Metrics.bump "netio.flush";
    (match t.doorbell with
    | Some db ->
        db.rx.window_kicks <- db.rx.window_kicks + 1;
        db.rx.since_notify <- 0
    | None -> ());
    let completions = ref [] in
    while not (Queue.is_empty t.rx_staged) do
      completions := Queue.pop t.rx_staged :: !completions
    done;
    let completions = List.rev !completions in
    Hypervisor.send_virq t.hyp t.guest (fun () ->
        List.iter (frontend_rx_deliver t costs) completions)
  end

let poll_rx t db =
  db.rx.polls <- db.rx.polls + 1;
  charge_guest t (Hypervisor.costs t.hyp).Sys_costs.doorbell_poll;
  if Td_obs.Control.enabled () then Td_obs.Metrics.bump "netio.doorbell_polls";
  let seq =
    Td_mem.Addr_space.read (Domain.space t.guest)
      (db.page + db.rx_off) Td_misa.Width.W32
  in
  if seq <> db.rx.seen || not (Queue.is_empty t.rx_staged) then begin
    db.rx.seen <- seq;
    frontend_drain_rx t ~budget:db.cfg.poll_budget
  end

(* a delivery denied by the rx or grant-copy quota is dropped here, at
   the netback boundary, before the expensive copy: the wire has no one
   to fault to, so the frame is counted and freed — never an exception
   out of the rx path (which would read as a driver abort upstream) *)
let rx_throttle_drop t skb =
  t.rx_throttled <- t.rx_throttled + 1;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "netio.rx_throttled";
    Td_obs.Trace.emit (Td_obs.Trace.Nic_drop { reason = "rx quota throttled" })
  end;
  Skb.free t.kmem skb

let deliver_to_guest t skb =
  let costs = Hypervisor.costs t.hyp in
  charge_dom0 t (costs.Sys_costs.bridge + costs.Sys_costs.netback);
  if Queue.is_empty t.rx_posted then begin
    t.rx_dropped <- t.rx_dropped + 1;
    if Td_obs.Control.enabled () then begin
      Td_obs.Metrics.bump "netio.rx_dropped";
      Td_obs.Trace.emit
        (Td_obs.Trace.Nic_drop { reason = "no rx buffer posted" })
    end;
    Skb.free t.kmem skb
  end
  else if
    Quota.active ()
    && not (Quota.try_take ~domain:(Domain.name t.guest) Quota.Rx_deliveries)
  then rx_throttle_drop t skb
  else begin
    let gref, gvaddr = Queue.pop t.rx_posted in
    let payload = Skb.contents skb in
    (* hypervisor-mediated copy into the guest's granted frame; a dry
       grant-copy byte bucket re-posts the untouched buffer and drops *)
    match Grant_table.copy_to t.grants ~hyp:t.hyp gref ~offset:0 ~src:payload with
    | exception Quota.Quota_exceeded _ ->
        Queue.push (gref, gvaddr) t.rx_posted;
        rx_throttle_drop t skb
    | () -> (
        Hypervisor.charge_xen_for t.hyp ~domain:(Domain.name t.guest)
          costs.Sys_costs.io_channel;
        Skb.free t.kmem skb;
        Queue.push (gref, gvaddr, Bytes.length payload, now t) t.rx_staged;
        t.rx_staged_total <- t.rx_staged_total + 1;
        match t.doorbell with
        | Some db when db.rx.mode = Polling ->
            (* rx doorbell is dom0-produced service work, never throttled —
               consumer-side paths must always make progress (teardown
               loops) *)
            ring_doorbell t db.rx ~space:(Domain.space t.dom0)
              ~vaddr:(db.dom0_vaddr + db.rx_off) ~charge:charge_dom0;
            note_suppressed t db.rx ~metric:"netio.suppressed_virqs"
        | _ ->
            if Queue.length t.rx_staged >= t.batch then flush_rx t
            else
              Hypervisor.charge_xen_for t.hyp ~domain:(Domain.name t.guest)
                costs.Sys_costs.notify_coalesce)
  end

let flush t =
  flush_tx t;
  flush_rx t

(* Mode-appropriate pump step: in interrupt mode force the pending batch
   out (the historical flush); in polling mode visit the doorbell and
   drain up to the poll budget. *)
let service t =
  match t.doorbell with
  | None -> flush t
  | Some db ->
      (match db.tx.mode with
      | Interrupt -> flush_tx t
      | Polling -> poll_tx t db);
      (match db.rx.mode with
      | Interrupt -> flush_rx t
      | Polling -> poll_rx t db)

let switch_mode d to_mode =
  if d.mode <> to_mode then begin
    d.mode <- to_mode;
    d.mode_switches <- d.mode_switches + 1;
    d.idle_windows <- 0;
    d.since_notify <- 0;
    if Td_obs.Control.enabled () then begin
      Td_obs.Metrics.bump "netio.mode_switches";
      Td_obs.Trace.emit
        (Td_obs.Trace.Custom
           {
             name = Printf.sprintf "netio.%s_mode" d.dir_name;
             value = (match to_mode with Interrupt -> 0 | Polling -> 1);
           })
    end
  end

(* NAPI-style window decision, once per timer tick and per direction:
   enough notification boundaries in the window pushes the direction into
   polling; [idle_hysteresis] consecutive empty windows drops it back.
   With poll_entry_kicks <= 0 (always-poll) the mode is pinned. *)
let step_window db d =
  (match d.mode with
  | Interrupt ->
      if db.cfg.poll_entry_kicks > 0 && d.window_kicks >= db.cfg.poll_entry_kicks
      then switch_mode d Polling
  | Polling ->
      if db.cfg.poll_entry_kicks > 0 then
        if d.window_kicks = 0 then begin
          d.idle_windows <- d.idle_windows + 1;
          if d.idle_windows >= db.cfg.idle_hysteresis then
            switch_mode d Interrupt
        end
        else d.idle_windows <- 0);
  d.window_kicks <- 0

let on_tick t =
  service t;
  match t.doorbell with
  | None -> ()
  | Some db ->
      step_window db db.tx;
      step_window db db.rx

(* Channel teardown: a partial batch staged when the guest quiesces must
   still reach the wire (tx) or the guest stack (rx), whatever mode each
   direction is in. Idempotent; loops because polling drains are
   budget-limited. *)
let teardown t =
  match t.doorbell with
  | None -> flush t
  | Some db ->
      while
        not (Queue.is_empty t.tx_staged && Queue.is_empty t.rx_staged)
      do
        if not (Queue.is_empty t.tx_staged) then
          (match db.tx.mode with
          | Interrupt -> flush_tx t
          | Polling -> poll_tx t db);
        if not (Queue.is_empty t.rx_staged) then
          match db.rx.mode with
          | Interrupt -> flush_rx t
          | Polling -> poll_rx t db
      done

(* Channel destruction: drain, then release every dom0-side mapping and
   guest-side grant the channel ever took — after [close] the grant table
   holds nothing and the doorbell window page is free for reuse. A closed
   channel rejects new frontend work (typed, attributed) and its counters
   stay readable. Idempotent. *)
let close t =
  if not t.closed then begin
    teardown t;
    (match t.doorbell with
    | Some db ->
        Grant_table.unmap t.grants ~hyp:t.hyp ~from:t.dom0
          ~at_vpage:(Td_mem.Layout.page_of db.dom0_vaddr)
          db.db_gref;
        Grant_table.revoke t.grants db.db_gref
    | None -> ());
    Array.iter (fun (_page, gref) -> Grant_table.revoke t.grants gref) t.tx_pages;
    Queue.iter (fun (gref, _gvaddr) -> Grant_table.revoke t.grants gref) t.rx_posted;
    Queue.clear t.rx_posted;
    t.closed <- true
  end

let closed t = t.closed
let grants_active t = Grant_table.active t.grants

let staged t = Queue.length t.tx_staged + Queue.length t.rx_staged
let tx_count t = t.tx_count
let rx_count t = t.rx_count
let rx_dropped t = t.rx_dropped
let rx_throttled t = t.rx_throttled
let queue t = t.queue
let flushes t = t.flush_count
let tx_staged_total t = t.tx_staged_total
let rx_staged_total t = t.rx_staged_total

(* Frame conservation: everything staged was either completed or is still
   queued — nothing silently dropped between frontend and backend. *)
let conserved t =
  t.tx_staged_total = t.tx_count + Queue.length t.tx_staged
  && t.rx_staged_total = t.rx_count + Queue.length t.rx_staged

let doorbell_vaddr t = Option.map (fun db -> db.page) t.doorbell

let mode_of t dir =
  match t.doorbell with
  | None -> Interrupt
  | Some db -> (match dir with `Tx -> db.tx.mode | `Rx -> db.rx.mode)

let tx_mode t = mode_of t `Tx
let rx_mode t = mode_of t `Rx

let dir_stat t f =
  match t.doorbell with None -> 0 | Some db -> f db

let doorbell_polls t = dir_stat t (fun db -> db.tx.polls + db.rx.polls)
let suppressed_hypercalls t = dir_stat t (fun db -> db.tx.suppressed)
let suppressed_virqs t = dir_stat t (fun db -> db.rx.suppressed)

let mode_switches t =
  dir_stat t (fun db -> db.tx.mode_switches + db.rx.mode_switches)

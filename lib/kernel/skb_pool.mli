(** The preallocated sk_buff pool of §4.3: buffers reserved from the dom0
    heap for use by the hypervisor's support-routine implementations
    ([netdev_alloc_skb] / [dev_kfree_skb_any] without upcalls).

    "We use a simple reference counter trick to prevent other routines in
    the dom0 kernel from accessing these buffers": pool-owned sk_buffs
    keep a base reference, so a dom0-side free never releases them back to
    the dom0 allocator — they return here instead. *)

type t

val create : Kmem.t -> Td_mem.Addr_space.t -> entries:int -> buf_size:int -> t
(** Each pool sk_buff also carries a preallocated dom0 fragment buffer
    (§5.3: the hypervisor "chains together the rest of the guest packet
    ... using pre-allocated page frames from dom0"). *)

val frag_buffer : t -> Skb.t -> int
(** The sk_buff's preallocated fragment buffer (page-sized). Raises
    {!Td_xen.Guest_fault.Fault} for a foreign sk_buff. *)

val alloc : t -> Skb.t option
(** [None] when the pool is empty (the driver will drop the packet). *)

val release : t -> Skb.t -> unit
(** Return an sk_buff to the pool; resets data/len. Raises
    {!Td_xen.Guest_fault.Fault} (counted, survivable) for an sk_buff
    the pool does not own — foreign pointers are driver-supplied input,
    not a hypervisor invariant. *)

val reset : t -> unit
(** Reclaim every sk_buff — free or in flight — back to the free list in
    pristine state. The driver supervisor calls this while destroying an
    aborted twin instance; any structure that held pool buffers (NIC rx
    rings especially) must be re-initialised before traffic resumes. *)

val owns : t -> Skb.t -> bool
val iter : t -> (Skb.t -> unit) -> unit
(** Apply to every pool-owned sk_buff (free or in flight). *)

val available : t -> int
val size : t -> int
val exhaustions : t -> int
(** Number of failed allocations. *)

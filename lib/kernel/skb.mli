(** sk_buff: the Linux network packet buffer, materialised in simulated
    dom0 memory so that both driver instances (and the NIC's DMA engine)
    see the single shared copy.

    Struct layout (32 bytes, little-endian words):
    {v
      +0  data      current data pointer (virtual address)
      +4  len       bytes at [data]
      +8  head      buffer start
      +12 end       buffer end (capacity boundary)
      +16 refcnt
      +20 protocol  set by eth_type_trans
      +24 frag_page first chained fragment page (0 = none)
      +28 frag_len  bytes in the fragment chain
    v} *)

type t = { space : Td_mem.Addr_space.t; addr : int }

val struct_bytes : int
val default_buf_bytes : int

val alloc : Kmem.t -> Td_mem.Addr_space.t -> size:int -> t
(** Allocate struct + data buffer; [data = head], [len = 0], [refcnt = 1]. *)

val free : Kmem.t -> t -> unit
(** Drop a reference; releases struct and buffer when it reaches zero. *)

val of_addr : Td_mem.Addr_space.t -> int -> t

(* field accessors *)

val data : t -> int
val set_data : t -> int -> unit
val len : t -> int
val set_len : t -> int -> unit
val head : t -> int
val end_ : t -> int
val refcnt : t -> int
val get_ref : t -> unit
val set_refcnt : t -> int -> unit
val protocol : t -> int
val set_protocol : t -> int -> unit
val frag_page : t -> int
val set_frag : t -> page:int -> len:int -> unit
val frag_len : t -> int

val capacity : t -> int

val put : t -> bytes -> unit
(** Append payload bytes at [data + len]; extends [len]. Overflow —
    lengths routinely come from guest-writable descriptor rings — raises
    a typed, counted {!Td_xen.Guest_fault.Fault} attributed to the
    buffer's address space, which the driver supervisor contains. *)

val pull : t -> int -> unit
(** Advance [data] by [n] (consume a header), shrinking [len]. Underflow
    raises {!Td_xen.Guest_fault.Fault} like {!put}. *)

val contents : t -> bytes
(** The linear data area (not including chained fragments). *)

val total_len : t -> int
(** Linear length plus fragment chain length. *)

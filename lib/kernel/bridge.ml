type port = { port_name : string; tx : string -> unit }

type t = {
  mutable ports : port list;
  fdb : (string, port) Hashtbl.t;  (** mac -> port *)
  mutable forwarded : int;
  mutable flooded : int;
}

let create () =
  { ports = []; fdb = Hashtbl.create 16; forwarded = 0; flooded = 0 }

let add_port t p = t.ports <- t.ports @ [ p ]
let learn t ~mac p = Hashtbl.replace t.fdb mac p
let lookup t ~mac = Hashtbl.find_opt t.fdb mac
let forget t ~mac = Hashtbl.remove t.fdb mac

let remove_port t name =
  t.ports <- List.filter (fun p -> p.port_name <> name) t.ports;
  Hashtbl.iter
    (fun mac p -> if p.port_name = name then Hashtbl.remove t.fdb mac)
    (Hashtbl.copy t.fdb)

let forward t frame =
  if String.length frame < 14 then ()
  else begin
    let dst = String.sub frame 0 6 in
    let src = String.sub frame 6 6 in
    let src_port = Hashtbl.find_opt t.fdb src in
    match Hashtbl.find_opt t.fdb dst with
    | Some p ->
        t.forwarded <- t.forwarded + 1;
        p.tx frame
    | None ->
        t.flooded <- t.flooded + 1;
        List.iter
          (fun p ->
            match src_port with
            | Some sp when sp.port_name = p.port_name -> ()
            | Some _ | None -> p.tx frame)
          t.ports
  end

let forwarded t = t.forwarded
let flooded t = t.flooded

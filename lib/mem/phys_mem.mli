(** Simulated physical memory: a pool of 4 KiB page frames.

    A single [t] models the machine's RAM and is shared by all address
    spaces — exactly what lets the hypervisor driver instance and the dom0
    driver instance see a {e single} copy of the driver data. *)

type frame = int
(** Physical frame number. *)

exception Bad_frame of { frame : int }
(** Access to a frame that is not allocated — a dangling DMA address or
    a forged grant. Typed so the layer that knows the offending domain
    can contain and attribute it instead of crashing the simulation. *)

exception Out_of_frames of { capacity : int }
(** The frame pool is exhausted. *)

type t

val create : ?frames:int -> unit -> t
(** Fresh memory with the given capacity (default 65536 frames = 256 MiB). *)

val alloc_frame : t -> frame
(** Allocate a zeroed frame. Raises {!Out_of_frames} when memory is
    exhausted. *)

val free_frame : t -> frame -> unit
val frames_allocated : t -> int

val page : t -> frame -> bytes
(** The backing buffer of an allocated frame. Exposed for the
    interpreter's compiled superblocks, which cache the buffer of a
    just-translated page so repeated accesses through the same base
    register skip the page-table walk; the buffer stays valid (and
    observes concurrent DMA writes) for as long as the frame is
    allocated. Raises {!Bad_frame} on an unallocated frame. *)

val read : t -> frame -> int -> Td_misa.Width.t -> int
(** [read mem f off w] reads a little-endian value of width [w] at byte
    offset [off] of frame [f]. The access must not cross the frame
    boundary. *)

val write : t -> frame -> int -> Td_misa.Width.t -> int -> unit

val read_bytes : t -> frame -> int -> int -> bytes
val write_bytes : t -> frame -> int -> bytes -> unit

val fill : t -> frame -> char -> unit

type device = {
  dev_read : int -> Td_misa.Width.t -> int;
  dev_write : int -> Td_misa.Width.t -> int -> unit;
}

type mapping = Frame of Phys_mem.frame | Device of device

exception Page_fault of { space : string; addr : int }
exception Heap_exhausted of { space : string; requested : int }

let () =
  Printexc.register_printer (function
    | Heap_exhausted { space; requested } ->
        Some
          (Printf.sprintf "Td_mem.Addr_space.Heap_exhausted(%s: %d bytes)"
             space requested)
    | _ -> None)

type t = {
  name : string;
  phys : Phys_mem.t;
  table : (int, mapping) Hashtbl.t;
  mutable heap_next : int;
  mutable heap_limit : int;
}

let create ~name phys =
  { name; phys; table = Hashtbl.create 256; heap_next = 0; heap_limit = 0 }

let name t = t.name
let phys t = t.phys
let map t ~vpage frame = Hashtbl.replace t.table vpage (Frame frame)
let map_device t ~vpage dev = Hashtbl.replace t.table vpage (Device dev)
let unmap t ~vpage = Hashtbl.remove t.table vpage
let lookup t ~vpage = Hashtbl.find_opt t.table vpage
let is_mapped t ~vpage = Hashtbl.mem t.table vpage

let frame_of_vpage t ~vpage =
  match lookup t ~vpage with
  | Some (Frame f) -> Some f
  | Some (Device _) | None -> None

let mapped_pages t = Hashtbl.length t.table

let alloc_page t ~vpage =
  let f = Phys_mem.alloc_frame t.phys in
  map t ~vpage f;
  f

let alloc_region t ~vaddr ~pages =
  if Layout.offset_of vaddr <> 0 then invalid_arg "alloc_region: unaligned";
  for i = 0 to pages - 1 do
    ignore (alloc_page t ~vpage:(Layout.page_of vaddr + i))
  done

let mapping_of t addr =
  match lookup t ~vpage:(Layout.page_of addr) with
  | Some m -> m
  | None -> raise (Page_fault { space = t.name; addr })

(* Single-page access (never straddles). *)
let read_within t addr w =
  match mapping_of t addr with
  | Frame f -> Phys_mem.read t.phys f (Layout.offset_of addr) w
  | Device d -> d.dev_read (Layout.offset_of addr) w

let write_within t addr w v =
  match mapping_of t addr with
  | Frame f -> Phys_mem.write t.phys f (Layout.offset_of addr) w v
  | Device d -> d.dev_write (Layout.offset_of addr) w v

let straddles addr w =
  Layout.offset_of addr + Td_misa.Width.bytes w > Layout.page_size

let read t addr w =
  if not (straddles addr w) then read_within t addr w
  else begin
    (* Assemble byte by byte across the boundary, little-endian. *)
    let n = Td_misa.Width.bytes w in
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl 8) lor read_within t (addr + i) Td_misa.Width.W8
    done;
    !v
  end

let write t addr w v =
  if not (straddles addr w) then write_within t addr w v
  else
    let n = Td_misa.Width.bytes w in
    for i = 0 to n - 1 do
      write_within t (addr + i) Td_misa.Width.W8 ((v lsr (8 * i)) land 0xff)
    done

let read_block t addr len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let chunk = min (len - !pos) (Layout.page_size - Layout.offset_of a) in
    (match mapping_of t a with
    | Frame f ->
        Bytes.blit
          (Phys_mem.read_bytes t.phys f (Layout.offset_of a) chunk)
          0 out !pos chunk
    | Device d ->
        for i = 0 to chunk - 1 do
          Bytes.set out (!pos + i)
            (Char.chr (d.dev_read (Layout.offset_of a + i) Td_misa.Width.W8))
        done);
    pos := !pos + chunk
  done;
  out

let write_block t addr src =
  let len = Bytes.length src in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let chunk = min (len - !pos) (Layout.page_size - Layout.offset_of a) in
    (match mapping_of t a with
    | Frame f ->
        Phys_mem.write_bytes t.phys f (Layout.offset_of a)
          (Bytes.sub src !pos chunk)
    | Device d ->
        for i = 0 to chunk - 1 do
          d.dev_write
            (Layout.offset_of a + i)
            Td_misa.Width.W8
            (Char.code (Bytes.get src (!pos + i)))
        done);
    pos := !pos + chunk
  done

(* Snapshot-and-sort so traversal (and anything built from it, like the
   free list a bulk release rebuilds) is deterministic regardless of the
   hash table's internal order. *)
let iter_frames t f =
  Hashtbl.fold
    (fun vpage m acc ->
      match m with Frame fr -> (vpage, fr) :: acc | Device _ -> acc)
    t.table []
  |> List.sort compare
  |> List.iter (fun (vpage, fr) -> f ~vpage fr)

let release t =
  iter_frames t (fun ~vpage:_ fr -> Phys_mem.free_frame t.phys fr);
  Hashtbl.reset t.table;
  t.heap_next <- 0;
  t.heap_limit <- 0

let heap_init t ~base ~limit =
  t.heap_next <- base;
  t.heap_limit <- limit

let heap_alloc t bytes =
  if t.heap_limit = 0 then
    invalid_arg "Addr_space.heap_alloc: heap not initialised";
  let pages = max 1 ((bytes + Layout.page_size - 1) / Layout.page_size) in
  let vaddr = t.heap_next in
  if vaddr + (pages * Layout.page_size) > t.heap_limit then
    raise (Heap_exhausted { space = t.name; requested = bytes });
  t.heap_next <- vaddr + (pages * Layout.page_size);
  alloc_region t ~vaddr ~pages;
  vaddr

(** Virtual address spaces: per-domain page tables over shared physical
    memory, plus device (MMIO) pages.

    Accesses may be unaligned and may straddle a page boundary (the Intel
    ISA permits this; the paper maps {e two} consecutive pages per stlb miss
    for exactly this reason) — straddling accesses are split here. *)

type device = {
  dev_read : int -> Td_misa.Width.t -> int;
      (** [dev_read offset width] — offset within the page *)
  dev_write : int -> Td_misa.Width.t -> int -> unit;
}

type mapping = Frame of Phys_mem.frame | Device of device

exception Page_fault of { space : string; addr : int }

exception Heap_exhausted of { space : string; requested : int }
(** The bump allocator's region is spent. Typed (and attributed to the
    owning space's name) so a guest whose driver leaks its way through
    the heap aborts that driver instance instead of the simulation. *)

type t

val create : name:string -> Phys_mem.t -> t
val name : t -> string
val phys : t -> Phys_mem.t

val map : t -> vpage:int -> Phys_mem.frame -> unit
val map_device : t -> vpage:int -> device -> unit
val unmap : t -> vpage:int -> unit
val lookup : t -> vpage:int -> mapping option
val is_mapped : t -> vpage:int -> bool
val frame_of_vpage : t -> vpage:int -> Phys_mem.frame option
(** [None] for unmapped or device pages. *)

val mapped_pages : t -> int

val alloc_page : t -> vpage:int -> Phys_mem.frame
(** Allocate a fresh frame and map it at [vpage]. *)

val alloc_region : t -> vaddr:int -> pages:int -> unit
(** Back [pages] consecutive pages starting at [vaddr] with fresh frames. *)

val read : t -> int -> Td_misa.Width.t -> int
(** Virtual read; splits page-straddling accesses. Raises {!Page_fault} on
    unmapped pages. *)

val write : t -> int -> Td_misa.Width.t -> int -> unit

val read_block : t -> int -> int -> bytes
val write_block : t -> int -> bytes -> unit

val iter_frames : t -> (vpage:int -> Phys_mem.frame -> unit) -> unit
(** Visit every frame-backed mapping in ascending [vpage] order (device
    pages are skipped). The order is deterministic — independent of hash
    internals — so bulk teardown reproduces bit-identically. *)

val release : t -> unit
(** Destroy the space's contents: return every backing frame to the
    physical allocator (in ascending vpage order), drop all mappings
    (device pages included) and forget the heap. The space itself stays
    usable for a fresh {!heap_init}. Frames still mapped elsewhere (e.g.
    a granted page a backend has not unmapped) must be unmapped there
    first — this is the last step of domain destruction. *)

val heap_init : t -> base:int -> limit:int -> unit
(** Initialise the bump allocator for kernel-heap virtual addresses. *)

val heap_alloc : t -> int -> int
(** [heap_alloc t bytes] reserves (and maps) a fresh, page-padded region and
    returns its virtual address. Raises {!Heap_exhausted} when the heap
    region is spent, [Invalid_argument] before {!heap_init}. *)

type frame = int

exception Bad_frame of { frame : int }
exception Out_of_frames of { capacity : int }

let () =
  Printexc.register_printer (function
    | Bad_frame { frame } ->
        Some (Printf.sprintf "Td_mem.Phys_mem.Bad_frame(frame %d)" frame)
    | Out_of_frames { capacity } ->
        Some (Printf.sprintf "Td_mem.Phys_mem.Out_of_frames(%d frames)" capacity)
    | _ -> None)

type t = {
  capacity : int;
  pages : (frame, bytes) Hashtbl.t;
  mutable next : frame;
  mutable free : frame list;
}

let create ?(frames = 65536) () =
  { capacity = frames; pages = Hashtbl.create 1024; next = 1; free = [] }

let alloc_frame t =
  match t.free with
  | f :: rest ->
      t.free <- rest;
      Hashtbl.replace t.pages f (Bytes.make Layout.page_size '\000');
      f
  | [] ->
      if t.next >= t.capacity then raise (Out_of_frames { capacity = t.capacity });
      let f = t.next in
      t.next <- t.next + 1;
      Hashtbl.replace t.pages f (Bytes.make Layout.page_size '\000');
      f

let free_frame t f =
  if Hashtbl.mem t.pages f then begin
    Hashtbl.remove t.pages f;
    t.free <- f :: t.free
  end

let frames_allocated t = Hashtbl.length t.pages

let page t f =
  match Hashtbl.find_opt t.pages f with
  | Some b -> b
  | None -> raise (Bad_frame { frame = f })

let check_bounds off w =
  if off < 0 || off + Td_misa.Width.bytes w > Layout.page_size then
    invalid_arg (Printf.sprintf "Phys_mem: offset %d crosses frame boundary" off)

let read t f off w =
  check_bounds off w;
  let b = page t f in
  match w with
  | Td_misa.Width.W8 -> Char.code (Bytes.get b off)
  | Td_misa.Width.W16 -> Bytes.get_uint16_le b off
  | Td_misa.Width.W32 -> Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

let write t f off w v =
  check_bounds off w;
  let b = page t f in
  match w with
  | Td_misa.Width.W8 -> Bytes.set b off (Char.chr (v land 0xff))
  | Td_misa.Width.W16 -> Bytes.set_uint16_le b off (v land 0xffff)
  | Td_misa.Width.W32 -> Bytes.set_int32_le b off (Int32.of_int v)

let read_bytes t f off len =
  if off < 0 || off + len > Layout.page_size then
    invalid_arg "Phys_mem.read_bytes: crosses frame boundary";
  Bytes.sub (page t f) off len

let write_bytes t f off src =
  if off < 0 || off + Bytes.length src > Layout.page_size then
    invalid_arg "Phys_mem.write_bytes: crosses frame boundary";
  Bytes.blit src 0 (page t f) off (Bytes.length src)

let fill t f c = Bytes.fill (page t f) 0 Layout.page_size c

(** The SVM runtime: slow-path miss handling, permission checks and page
    mapping (§4.1).

    Two modes correspond to the paper's two uses of the rewritten binary:

    - [Translate]: the hypervisor instance. A miss maps {e two} consecutive
      dom0 pages into the hypervisor's mapped-page window (unaligned
      accesses may straddle a page) and installs the translation.
    - [Identity]: the VM instance running in dom0. The stlb is filled with
      identity mappings (xor value 0), so the driver "continues to use its
      original data addresses and functions correctly as before, except
      that it runs a little slower".

    The mapped-page window is finite; when it fills, a clock (second
    chance) policy reclaims a cold page-pair — dropping its hash-chain
    entry, invalidating its stlb entry and unmapping the window pages — so
    an unbounded dom0 working set runs in steady state instead of
    exhausting the window. Pairs installed via {!persistent_map} are
    pinned and never reclaimed.

    Accesses outside the dom0 address space raise {!Fault} — this is the
    memory-safety property of the whole design. *)

exception Fault of { addr : int; reason : string }

type mode = Translate | Identity

type t

val create_hypervisor :
  ?map_pairs:bool ->
  ?window_pages:int ->
  ?stlb_vaddr:int ->
  dom0:Td_mem.Addr_space.t ->
  hyp:Td_mem.Addr_space.t ->
  unit ->
  t
(** Hypervisor instance runtime: stlb at [stlb_vaddr] (default
    {!Td_mem.Layout.stlb_base} — simulation shards pass a disjoint
    partition base each, see {!Twindrivers.Mq}) in the hypervisor space;
    mapped pages drawn from the mapped-page window.
    [map_pairs] (default true) maps two consecutive pages per miss as the
    paper prescribes; disabling it is the ablation that makes
    page-straddling accesses fault. [window_pages] (default
    {!Td_mem.Layout.map_window_pages}, must be even) bounds the window;
    smaller windows reclaim sooner. When the successor page of a mapped
    pair has no dom0 mapping (edge of the dom0 range, or [map_pairs]
    off), its window page is backed by a poison device so a straddling
    access raises {!Fault} instead of reading stale window contents. *)

val create_identity : dom0:Td_mem.Addr_space.t -> stlb_vaddr:int -> t
(** VM instance runtime: stlb at [stlb_vaddr] in dom0 space. *)

val mode : t -> mode
val stlb : t -> Stlb.t

val miss : t -> int -> int
(** [miss t addr] is the slow path: validate [addr], install a translation
    (consulting the hash chain first), and return the translated full
    address. Raises {!Fault} for addresses outside dom0 space. *)

val translate : t -> int -> int
(** Full lookup as the fast path + slow path would perform it. Used by
    hypervisor-implemented support routines, which "make use of the stlb
    translation table explicitly while accessing driver data" (§4.3). *)

val persistent_map : t -> int -> int
(** Pre-install a translation for a dom0 address and return the mapped
    address; used for packet buffers that are "persistently mapped into
    hypervisor address space" (§5.3). The window pair is pinned: the
    reclaim clock skips it. *)

val invalidate_page : t -> int -> unit
(** Drop the translation for the page containing the given dom0 address
    (stlb entry, hash chain, and window pair — the slot is released for
    reuse). *)

val flush : t -> unit
(** Tear down {e every} translation: clear the stlb and hash chain and
    unmap all window pairs, including pinned ones. The driver
    supervisor calls this when it destroys an aborted twin instance;
    persistent mappings must be re-established (and re-pinned) on the
    replacement instance. Counters survive; the window restarts empty. *)

val note_inline_hit : t -> int -> unit
(** An interpreted inline fast-path probe hit for dom0 address [addr]:
    marks the window pair referenced for the clock and credits
    [stlb.hit]. Wired to the interpreter by the world so inline hits are
    counted exactly (see docs/METRICS.md). *)

(* window lifecycle *)

val window_pages : t -> int
val window_reclaims : t -> int
(** Page-pairs evicted by the clock since creation. *)

val window_pages_in_use : t -> int

val set_reclaim_hook : t -> (unit -> unit) -> unit
(** Called once per reclaimed pair — the world charges the shootdown cost
    ({!Td_xen.Sys_costs}.[window_reclaim]) to the cycle ledger here, since
    this library cannot depend on the ledger. *)

type window_guard = {
  acquire : pages:int -> string;
      (** called before a window pair is allocated; returns the owner tag
          stored with the slot. May raise (a typed quota fault) — nothing
          has been evicted or mapped yet at that point. *)
  release : owner:string -> pages:int -> unit;
      (** called when the pair is evicted, invalidated or flushed *)
}

val set_window_guard : t -> window_guard -> unit
(** Install per-domain window accounting. The quota subsystem lives in
    [td_xen] (which depends on this library), so the world wires the guard
    from above rather than this module calling quotas directly. *)

(* statistics *)

val misses : t -> int
val collisions : t -> int
(** Slow-path entries caused by hash collisions (chain hits). *)

val faults : t -> int
val pages_mapped : t -> int

(* native hooks for rewritten code *)

val register_natives : t -> Td_cpu.Native.t -> unit
(** Registers ["__svm_miss"] (stack arg: faulting address; returns the
    translated address in [EAX]) under the instance-specific name
    ["__svm_miss@<mode>"], plus the shared helper ["__svm_translate@<mode>"]
    used by rewritten string operations. *)

val miss_symbol : t -> string
val translate_symbol : t -> string

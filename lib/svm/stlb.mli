(** The software translation table (stlb) of §4.1.

    A direct-mapped hash table of {!Td_mem.Layout.stlb_entries} entries
    living in simulated memory (so that rewritten driver code can probe it
    with ordinary loads). Each 8-byte entry holds:

    - word 0: the tag — the dom0 virtual page base address (0 = invalid);
    - word 1: the xor value — [dom0_page_base lxor mapped_page_base], so
      that xoring the {e full} virtual address with it yields the mapped
      address with the page offset preserved (the paper's line-9 trick).

    The index is taken from address bits 12..23, exactly as in Figure 4:
    [(addr land 0xfff000) lsr 9] is the byte offset of the entry. *)

val index_of : int -> int
(** Entry index for a virtual address, in [0, stlb_entries). *)

val entry_offset : int -> int
(** Byte offset of the entry within the table: [8 * index_of addr]. *)

val tag_of : int -> int
(** The tag stored for an address: its page base. *)

type t

val create : space:Td_mem.Addr_space.t -> vaddr:int -> t
(** A view of the stlb stored at [vaddr] in [space]; allocates and zeroes
    the backing pages if not already mapped. *)

val vaddr : t -> int

val lookup : t -> int -> int option
(** [lookup t addr] probes the table as the fast path does: on a tag match,
    returns the translated full address. *)

val install : t -> dom0_page:int -> mapped_page:int -> unit
(** Fill the entry for [dom0_page] (page base address) with a translation
    to [mapped_page]; overwrites any colliding entry. *)

val invalidate : t -> dom0_page:int -> unit
(** Clear the entry if it currently holds [dom0_page]. Bumps the
    [stlb.invalidate] counter and emits a trace event when the entry was
    live (observability on). *)

val clear : t -> unit
val valid_entries : t -> int

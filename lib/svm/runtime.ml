exception Fault of { addr : int; reason : string }

type mode = Translate | Identity

type t = {
  mode : mode;
  map_pairs : bool;
  dom0 : Td_mem.Addr_space.t;
  target : Td_mem.Addr_space.t;  (** space receiving window mappings *)
  stlb : Stlb.t;
  chain : (int, int) Hashtbl.t;  (** dom0 page base -> mapped page base *)
  mutable window_next : int;  (** next free page index in the window *)
  mutable miss_count : int;
  mutable collision_count : int;
  mutable fault_count : int;
}

let create_hypervisor ?(map_pairs = true) ~dom0 ~hyp () =
  {
    mode = Translate;
    map_pairs;
    dom0;
    target = hyp;
    stlb = Stlb.create ~space:hyp ~vaddr:Td_mem.Layout.stlb_base;
    chain = Hashtbl.create 256;
    window_next = 0;
    miss_count = 0;
    collision_count = 0;
    fault_count = 0;
  }

let create_identity ~dom0 ~stlb_vaddr =
  {
    mode = Identity;
    map_pairs = true;
    dom0;
    target = dom0;
    stlb = Stlb.create ~space:dom0 ~vaddr:stlb_vaddr;
    chain = Hashtbl.create 256;
    window_next = 0;
    miss_count = 0;
    collision_count = 0;
    fault_count = 0;
  }

let mode t = t.mode
let stlb t = t.stlb

let fault t addr reason =
  t.fault_count <- t.fault_count + 1;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "svm.fault";
    Td_obs.Trace.emit (Td_obs.Trace.Svm_fault { addr; reason })
  end;
  raise (Fault { addr; reason })

let dom0_mapping t page_base =
  Td_mem.Addr_space.lookup t.dom0 ~vpage:(Td_mem.Layout.page_of page_base)

let valid_dom0_page t addr =
  Td_mem.Layout.in_dom0_range addr
  && Option.is_some (dom0_mapping t (Td_mem.Layout.page_base addr))

(* Allocate window pages mapping dom0 [page] (and its successor, because
   unaligned accesses may straddle a page boundary). *)
let map_pair t page =
  if t.window_next + 2 > Td_mem.Layout.map_window_pages then
    failwith "Svm.Runtime: mapped-page window exhausted (16 MB)";
  let mapped =
    Td_mem.Layout.map_window_base + (t.window_next * Td_mem.Layout.page_size)
  in
  t.window_next <- t.window_next + 2;
  let install vpage = function
    | Td_mem.Addr_space.Frame f -> Td_mem.Addr_space.map t.target ~vpage f
    | Td_mem.Addr_space.Device d ->
        (* MMIO pages (the NIC register window) are mapped through too *)
        Td_mem.Addr_space.map_device t.target ~vpage d
  in
  (match dom0_mapping t page with
  | Some m -> install (Td_mem.Layout.page_of mapped) m
  | None -> assert false);
  (if t.map_pairs then
     match dom0_mapping t (page + Td_mem.Layout.page_size) with
     | Some m -> install (Td_mem.Layout.page_of mapped + 1) m
     | None -> ());
  mapped

let miss t addr =
  t.miss_count <- t.miss_count + 1;
  let page = Td_mem.Layout.page_base addr in
  match Hashtbl.find_opt t.chain page with
  | Some mapped ->
      (* hash collision: the translation exists but was evicted from the
         direct-mapped stlb; refill from the chain *)
      t.collision_count <- t.collision_count + 1;
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "stlb.miss";
        Td_obs.Metrics.bump "stlb.refill";
        Td_obs.Trace.emit (Td_obs.Trace.Stlb_miss { addr; refill = true })
      end;
      Stlb.install t.stlb ~dom0_page:page ~mapped_page:mapped;
      addr lxor (page lxor mapped)
  | None ->
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "stlb.miss";
        Td_obs.Trace.emit (Td_obs.Trace.Stlb_miss { addr; refill = false })
      end;
      let ok = valid_dom0_page t addr in
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "svm.validate";
        Td_obs.Trace.emit (Td_obs.Trace.Svm_validate { addr; ok })
      end;
      if not ok then fault t addr "access outside dom0 address space";
      let mapped = match t.mode with
        | Identity -> page
        | Translate -> map_pair t page
      in
      Hashtbl.replace t.chain page mapped;
      Stlb.install t.stlb ~dom0_page:page ~mapped_page:mapped;
      if Td_obs.Control.enabled () then
        Td_obs.Metrics.set
          (Td_obs.Metrics.gauge "svm.pages_mapped")
          (float_of_int (Hashtbl.length t.chain));
      addr lxor (page lxor mapped)

let translate t addr =
  match Stlb.lookup t.stlb addr with
  | Some a ->
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "stlb.hit";
        Td_obs.Trace.emit (Td_obs.Trace.Stlb_hit { addr })
      end;
      a
  | None -> miss t addr

let persistent_map = translate

let invalidate_page t addr =
  let page = Td_mem.Layout.page_base addr in
  Hashtbl.remove t.chain page;
  Stlb.invalidate t.stlb ~dom0_page:page

let misses t = t.miss_count
let collisions t = t.collision_count
let faults t = t.fault_count
let pages_mapped t = Hashtbl.length t.chain

let mode_suffix t = match t.mode with Translate -> "hyp" | Identity -> "vm"
let miss_symbol t = "__svm_miss@" ^ mode_suffix t
let translate_symbol t = "__svm_translate@" ^ mode_suffix t

let register_natives t natives =
  let handler f st =
    let addr = Td_cpu.State.stack_arg st 0 in
    Td_cpu.State.set st Td_misa.Reg.EAX (f t addr)
  in
  ignore (Td_cpu.Native.register natives (miss_symbol t) (handler miss));
  ignore
    (Td_cpu.Native.register natives (translate_symbol t) (handler translate))

exception Fault of { addr : int; reason : string }

type mode = Translate | Identity

(* One pair of consecutive window pages (the unit of mapping: every miss
   maps two pages so unaligned accesses may straddle, §4.2). *)
type slot = {
  mutable dom0_page : int;  (** dom0 page base this pair currently maps *)
  mutable referenced : bool;  (** clock second-chance bit *)
  mutable pinned : bool;  (** persistent_map'ed — never reclaimed *)
  mutable owner : string;  (** guard-attributed owner; "" when no guard *)
}

(* Optional per-domain window accounting, installed from above (the quota
   subsystem lives in td_xen, which depends on td_svm): [acquire] is
   called before a pair is allocated and returns the owner tag the
   matching [release] gets when the pair is evicted, invalidated or
   flushed. [acquire] may raise (a typed quota fault) — nothing has been
   evicted or mapped yet at that point. *)
type window_guard = {
  acquire : pages:int -> string;
  release : owner:string -> pages:int -> unit;
}

type t = {
  mode : mode;
  map_pairs : bool;
  dom0 : Td_mem.Addr_space.t;
  target : Td_mem.Addr_space.t;  (** space receiving window mappings *)
  stlb : Stlb.t;
  chain : (int, int) Hashtbl.t;  (** dom0 page base -> mapped page base *)
  window_pages : int;  (** window size in pages (2 per slot) *)
  slots : slot option array;
  slot_of_page : (int, int) Hashtbl.t;  (** dom0 page base -> slot index *)
  mutable window_next : int;  (** next never-used slot index *)
  mutable free_slots : int list;  (** released by invalidate_page *)
  mutable clock_hand : int;
  mutable reclaim_count : int;
  mutable reclaim_hook : (unit -> unit) option;
  mutable window_guard : window_guard option;
  mutable miss_count : int;
  mutable collision_count : int;
  mutable fault_count : int;
}

let create_hypervisor ?(map_pairs = true)
    ?(window_pages = Td_mem.Layout.map_window_pages)
    ?(stlb_vaddr = Td_mem.Layout.stlb_base) ~dom0 ~hyp () =
  if window_pages < 2 || window_pages land 1 <> 0 then
    invalid_arg "Svm.Runtime: window_pages must be even and >= 2";
  {
    mode = Translate;
    map_pairs;
    dom0;
    target = hyp;
    stlb = Stlb.create ~space:hyp ~vaddr:stlb_vaddr;
    chain = Hashtbl.create 256;
    window_pages;
    slots = Array.make (window_pages / 2) None;
    slot_of_page = Hashtbl.create 256;
    window_next = 0;
    free_slots = [];
    clock_hand = 0;
    reclaim_count = 0;
    reclaim_hook = None;
    window_guard = None;
    miss_count = 0;
    collision_count = 0;
    fault_count = 0;
  }

let create_identity ~dom0 ~stlb_vaddr =
  {
    mode = Identity;
    map_pairs = true;
    dom0;
    target = dom0;
    stlb = Stlb.create ~space:dom0 ~vaddr:stlb_vaddr;
    chain = Hashtbl.create 256;
    window_pages = 0;
    slots = [||];
    slot_of_page = Hashtbl.create 1;
    window_next = 0;
    free_slots = [];
    clock_hand = 0;
    reclaim_count = 0;
    reclaim_hook = None;
    window_guard = None;
    miss_count = 0;
    collision_count = 0;
    fault_count = 0;
  }

let mode t = t.mode
let stlb t = t.stlb
let window_pages t = t.window_pages
let window_reclaims t = t.reclaim_count
let window_pages_in_use t = 2 * Hashtbl.length t.slot_of_page
let set_reclaim_hook t f = t.reclaim_hook <- Some f
let set_window_guard t g = t.window_guard <- Some g

let guard_release t s =
  match t.window_guard with
  | Some g when s.owner <> "" -> g.release ~owner:s.owner ~pages:2
  | _ -> ()

let fault t addr reason =
  t.fault_count <- t.fault_count + 1;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "svm.fault";
    Td_obs.Trace.emit (Td_obs.Trace.Svm_fault { addr; reason })
  end;
  raise (Fault { addr; reason })

let dom0_mapping t page_base =
  Td_mem.Addr_space.lookup t.dom0 ~vpage:(Td_mem.Layout.page_of page_base)

let valid_dom0_page t addr =
  Td_mem.Layout.in_dom0_range addr
  && Option.is_some (dom0_mapping t (Td_mem.Layout.page_base addr))

let mapped_base idx =
  Td_mem.Layout.map_window_base + (2 * idx * Td_mem.Layout.page_size)

let mark_referenced t page =
  match Hashtbl.find_opt t.slot_of_page page with
  | Some i -> (
      match t.slots.(i) with Some s -> s.referenced <- true | None -> ())
  | None -> ()

let update_inuse_gauge t =
  if Td_obs.Control.enabled () then
    Td_obs.Metrics.set
      (Td_obs.Metrics.gauge "svm.window_inuse")
      (float_of_int (window_pages_in_use t))

(* Evict the page-pair in [idx]: drop its translation from the hash chain
   and the stlb and unmap both window pages — the software analogue of a
   TLB shootdown, charged through the reclaim hook. *)
let evict_slot t idx =
  let s = match t.slots.(idx) with Some s -> s | None -> assert false in
  guard_release t s;
  let victim = s.dom0_page in
  Hashtbl.remove t.chain victim;
  Hashtbl.remove t.slot_of_page victim;
  Stlb.invalidate t.stlb ~dom0_page:victim;
  let vpage = Td_mem.Layout.page_of (mapped_base idx) in
  Td_mem.Addr_space.unmap t.target ~vpage;
  Td_mem.Addr_space.unmap t.target ~vpage:(vpage + 1);
  t.slots.(idx) <- None;
  t.reclaim_count <- t.reclaim_count + 1;
  (match t.reclaim_hook with Some f -> f () | None -> ());
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "svm.window_reclaim";
    Td_obs.Trace.emit
      (Td_obs.Trace.Window_reclaim
         { victim_page = victim; mapped = mapped_base idx })
  end

(* Pick the slot for a new pair: a never-used one, a released one, or —
   when the window is full — the first cold unpinned pair under the clock
   hand (second chance: a referenced pair gets its bit cleared and is
   skipped once). *)
let take_slot t =
  let nslots = Array.length t.slots in
  if t.window_next < nslots then begin
    let i = t.window_next in
    t.window_next <- i + 1;
    i
  end
  else
    match t.free_slots with
    | i :: rest ->
        t.free_slots <- rest;
        i
    | [] ->
        let rec sweep budget =
          if budget = 0 then
            failwith
              "Svm.Runtime: mapped-page window exhausted (all pages pinned)";
          let i = t.clock_hand in
          t.clock_hand <- (i + 1) mod nslots;
          match t.slots.(i) with
          | None -> sweep (budget - 1)
          | Some s ->
              if s.pinned then sweep (budget - 1)
              else if s.referenced then begin
                s.referenced <- false;
                sweep (budget - 1)
              end
              else begin
                evict_slot t i;
                i
              end
        in
        sweep (2 * nslots)

(* A window page backing a dom0 page with no mapped successor: any access
   reaching it is a straddle past the edge of the dom0 range and must
   fault — never read whatever a previously reclaimed pair left behind. *)
let poison_device t succ_page =
  {
    Td_mem.Addr_space.dev_read =
      (fun offset _w ->
        fault t (succ_page + offset) "straddling access beyond dom0 range");
    dev_write =
      (fun offset _w _v ->
        fault t (succ_page + offset) "straddling access beyond dom0 range");
  }

(* Allocate window pages mapping dom0 [page] (and its successor, because
   unaligned accesses may straddle a page boundary). *)
let map_pair t page =
  (* the guard admits (or typed-faults) before any slot is taken, so a
     denied domain cannot force an eviction of someone else's pair *)
  let owner =
    match t.window_guard with Some g -> g.acquire ~pages:2 | None -> ""
  in
  let idx = take_slot t in
  let mapped = mapped_base idx in
  let vpage = Td_mem.Layout.page_of mapped in
  let install vp = function
    | Td_mem.Addr_space.Frame f -> Td_mem.Addr_space.map t.target ~vpage:vp f
    | Td_mem.Addr_space.Device d ->
        (* MMIO pages (the NIC register window) are mapped through too *)
        Td_mem.Addr_space.map_device t.target ~vpage:vp d
  in
  (match dom0_mapping t page with
  | Some m -> install vpage m
  | None -> assert false);
  let succ_page = page + Td_mem.Layout.page_size in
  (match if t.map_pairs then dom0_mapping t succ_page else None with
  | Some m -> install (vpage + 1) m
  | None ->
      Td_mem.Addr_space.map_device t.target ~vpage:(vpage + 1)
        (poison_device t succ_page));
  t.slots.(idx) <-
    Some { dom0_page = page; referenced = true; pinned = false; owner };
  Hashtbl.replace t.slot_of_page page idx;
  update_inuse_gauge t;
  mapped

let miss t addr =
  t.miss_count <- t.miss_count + 1;
  let page = Td_mem.Layout.page_base addr in
  match Hashtbl.find_opt t.chain page with
  | Some mapped ->
      (* hash collision: the translation exists but was evicted from the
         direct-mapped stlb; refill from the chain *)
      t.collision_count <- t.collision_count + 1;
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "stlb.miss";
        Td_obs.Metrics.bump "stlb.refill";
        Td_obs.Trace.emit (Td_obs.Trace.Stlb_miss { addr; refill = true })
      end;
      mark_referenced t page;
      Stlb.install t.stlb ~dom0_page:page ~mapped_page:mapped;
      addr lxor (page lxor mapped)
  | None ->
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "stlb.miss";
        Td_obs.Trace.emit (Td_obs.Trace.Stlb_miss { addr; refill = false })
      end;
      (* fault-injection site: a planned wild access manifests exactly
         like a driver bug — a first-touch address past the dom0 range
         failing validation on the slow path *)
      if
        Td_fault.Engine.active ()
        && Td_fault.Engine.fire Td_fault.Svm_wild_access
      then fault t addr "injected wild access outside dom0 range";
      let ok = valid_dom0_page t addr in
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "svm.validate";
        Td_obs.Trace.emit (Td_obs.Trace.Svm_validate { addr; ok })
      end;
      if not ok then fault t addr "access outside dom0 address space";
      let mapped = match t.mode with
        | Identity -> page
        | Translate -> map_pair t page
      in
      Hashtbl.replace t.chain page mapped;
      Stlb.install t.stlb ~dom0_page:page ~mapped_page:mapped;
      if Td_obs.Control.enabled () then
        Td_obs.Metrics.set
          (Td_obs.Metrics.gauge "svm.pages_mapped")
          (float_of_int (Hashtbl.length t.chain));
      addr lxor (page lxor mapped)

let translate t addr =
  match Stlb.lookup t.stlb addr with
  | Some a ->
      mark_referenced t (Td_mem.Layout.page_base addr);
      if Td_obs.Control.enabled () then begin
        Td_obs.Metrics.bump "stlb.hit";
        Td_obs.Trace.emit (Td_obs.Trace.Stlb_hit { addr })
      end;
      a
  | None -> miss t addr

let persistent_map t addr =
  let mapped = translate t addr in
  (match Hashtbl.find_opt t.slot_of_page (Td_mem.Layout.page_base addr) with
  | Some i -> (
      match t.slots.(i) with Some s -> s.pinned <- true | None -> ())
  | None -> ());
  mapped

let note_inline_hit t addr =
  (* An interpreted inline probe (the ten-instruction xor-compare of §4.2)
     matched: mark the pair hot for the clock — always, so reclaim
     behaviour is independent of observability — and credit the hit. *)
  mark_referenced t (Td_mem.Layout.page_base addr);
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "stlb.hit";
    Td_obs.Trace.emit (Td_obs.Trace.Stlb_hit { addr })
  end

let invalidate_page t addr =
  let page = Td_mem.Layout.page_base addr in
  Hashtbl.remove t.chain page;
  Stlb.invalidate t.stlb ~dom0_page:page;
  (* release the window pair so the slot can be reused — otherwise a stale
     slot still claiming [page] could later be reclaimed and tear down a
     NEWER translation of the same page *)
  (match Hashtbl.find_opt t.slot_of_page page with
  | Some i ->
      (match t.slots.(i) with Some s -> guard_release t s | None -> ());
      Hashtbl.remove t.slot_of_page page;
      let vpage = Td_mem.Layout.page_of (mapped_base i) in
      Td_mem.Addr_space.unmap t.target ~vpage;
      Td_mem.Addr_space.unmap t.target ~vpage:(vpage + 1);
      t.slots.(i) <- None;
      t.free_slots <- i :: t.free_slots
  | None -> ());
  update_inuse_gauge t

(* Tear down every translation the instance ever established: the
   supervisor's "invalidate stlb, unmap window pairs" step before it
   restarts an aborted driver. Pinned pairs go too — the caller re-pins
   whatever must persist (the sk_buff pool) on the fresh instance. *)
let flush t =
  Hashtbl.reset t.chain;
  Stlb.clear t.stlb;
  Array.iteri
    (fun i slot ->
      match slot with
      | None -> ()
      | Some s ->
          guard_release t s;
          let vpage = Td_mem.Layout.page_of (mapped_base i) in
          Td_mem.Addr_space.unmap t.target ~vpage;
          Td_mem.Addr_space.unmap t.target ~vpage:(vpage + 1);
          t.slots.(i) <- None)
    t.slots;
  Hashtbl.reset t.slot_of_page;
  t.window_next <- 0;
  t.free_slots <- [];
  t.clock_hand <- 0;
  update_inuse_gauge t

let misses t = t.miss_count
let collisions t = t.collision_count
let faults t = t.fault_count
let pages_mapped t = Hashtbl.length t.chain

let mode_suffix t = match t.mode with Translate -> "hyp" | Identity -> "vm"
let miss_symbol t = "__svm_miss@" ^ mode_suffix t
let translate_symbol t = "__svm_translate@" ^ mode_suffix t

let register_natives t natives =
  let handler f st =
    let addr = Td_cpu.State.stack_arg st 0 in
    Td_cpu.State.set st Td_misa.Reg.EAX (f t addr)
  in
  ignore (Td_cpu.Native.register natives (miss_symbol t) (handler miss));
  ignore
    (Td_cpu.Native.register natives (translate_symbol t) (handler translate))

let index_of addr = (addr land 0xFFF000) lsr Td_mem.Layout.page_shift
let entry_offset addr = (addr land 0xFFF000) lsr 9
let tag_of addr = Td_mem.Layout.page_base addr

type t = { space : Td_mem.Addr_space.t; vaddr : int }

let table_bytes = Td_mem.Layout.stlb_entries * Td_mem.Layout.stlb_entry_bytes

let create ~space ~vaddr =
  let pages = table_bytes / Td_mem.Layout.page_size in
  for i = 0 to pages - 1 do
    let vpage = Td_mem.Layout.page_of vaddr + i in
    if not (Td_mem.Addr_space.is_mapped space ~vpage) then
      ignore (Td_mem.Addr_space.alloc_page space ~vpage)
  done;
  { space; vaddr }

let vaddr t = t.vaddr

let entry_addr t addr = t.vaddr + entry_offset addr

let read_words t addr =
  let ea = entry_addr t addr in
  ( Td_mem.Addr_space.read t.space ea Td_misa.Width.W32,
    Td_mem.Addr_space.read t.space (ea + 4) Td_misa.Width.W32 )

let lookup t addr =
  let tag, xor = read_words t addr in
  if tag <> 0 && tag = tag_of addr then Some (addr lxor xor) else None

let install t ~dom0_page ~mapped_page =
  if Td_mem.Layout.offset_of dom0_page <> 0 then
    invalid_arg "Stlb.install: dom0_page not page-aligned";
  let ea = entry_addr t dom0_page in
  if Td_obs.Control.enabled () then begin
    let old = Td_mem.Addr_space.read t.space ea Td_misa.Width.W32 in
    if old <> 0 && old <> dom0_page then begin
      Td_obs.Metrics.bump "stlb.evict";
      Td_obs.Trace.emit
        (Td_obs.Trace.Stlb_evict { victim_page = old; new_page = dom0_page })
    end
  end;
  Td_mem.Addr_space.write t.space ea Td_misa.Width.W32 dom0_page;
  Td_mem.Addr_space.write t.space (ea + 4) Td_misa.Width.W32
    (dom0_page lxor mapped_page)

let invalidate t ~dom0_page =
  let ea = entry_addr t dom0_page in
  let tag = Td_mem.Addr_space.read t.space ea Td_misa.Width.W32 in
  if tag = dom0_page then begin
    Td_mem.Addr_space.write t.space ea Td_misa.Width.W32 0;
    Td_mem.Addr_space.write t.space (ea + 4) Td_misa.Width.W32 0;
    if Td_obs.Control.enabled () then begin
      Td_obs.Metrics.bump "stlb.invalidate";
      Td_obs.Trace.emit (Td_obs.Trace.Stlb_invalidate { dom0_page })
    end
  end

let clear t =
  for i = 0 to Td_mem.Layout.stlb_entries - 1 do
    let ea = t.vaddr + (i * Td_mem.Layout.stlb_entry_bytes) in
    Td_mem.Addr_space.write t.space ea Td_misa.Width.W32 0;
    Td_mem.Addr_space.write t.space (ea + 4) Td_misa.Width.W32 0
  done

let valid_entries t =
  let n = ref 0 in
  for i = 0 to Td_mem.Layout.stlb_entries - 1 do
    let ea = t.vaddr + (i * Td_mem.Layout.stlb_entry_bytes) in
    if Td_mem.Addr_space.read t.space ea Td_misa.Width.W32 <> 0 then incr n
  done;
  !n

(** Adversarial-guest rig: a three-domain machine (dom0, a well-behaved
    victim, an unprivileged attacker) with every guest-facing surface the
    fuzzer drives wired up — hypercall/SVM translation, the attacker's
    grant table, a NIC model whose DMA engine reads attacker memory, and
    two paravirtual I/O channels sharing dom0's backend.

    The rig exists to check three invariants after arbitrary hostile
    input (see [docs/SECURITY.md]):

    + {b containment} — only typed faults ({!Td_xen.Guest_fault.Fault},
      {!Td_svm.Runtime.Fault}, {!Td_xen.Quota.Quota_exceeded}) escape a
      guest-driven operation;
    + {b isolation} — no victim page frame is ever reachable through the
      attacker's address space or the SVM map window;
    + {b attribution} — every injected op's cost lands in the attacker's
      ledger row and never in the victim's. *)

val pool_pages : int
(** Attacker pages pre-allocated for granting, so a bounded pool
    survives an unbounded op count. *)

val fuzz_map_base : int
(** dom0 virtual window grants are fuzz-mapped into — 256 pages ending
    exactly at Xen_netio's doorbell window, colliding with nothing. *)

val fuzz_map_pages : int

val nic_mmio_vaddr : int
(** NIC register page in the attacker's space (outside the guest heap). *)

type env = {
  phys : Td_mem.Phys_mem.t;
  dom0_space : Td_mem.Addr_space.t;
  hyp_space : Td_mem.Addr_space.t;
  att_space : Td_mem.Addr_space.t;
  vic_space : Td_mem.Addr_space.t;
  ledger : Td_xen.Ledger.t;
  hyp : Td_xen.Hypervisor.t;
  dom0 : Td_xen.Domain.t;
  attacker : Td_xen.Domain.t;
  victim : Td_xen.Domain.t;
  att_grants : Td_xen.Grant_table.t;
  svm : Td_svm.Runtime.t;
  calls : Td_svm.Call_table.t;
  kmem : Td_kernel.Kmem.t;
  att_netio : Td_kernel.Xen_netio.t;
  vic_netio : Td_kernel.Xen_netio.t;
  nic : Td_nic.E1000_dev.t;
  nic_mmio : int;
  ring_base : int;  (** attacker-memory TX descriptor ring page *)
  buf_base : int;  (** attacker-memory packet buffer page *)
  dom0_probe : int;  (** mapped dom0 heap region for SVM translate ops *)
  dom0_probe_pages : int;
  pool : (int * Td_mem.Phys_mem.frame) array;
      (** attacker pages the fuzzer grants from: (vaddr, frame) *)
  victim_frames : (Td_mem.Phys_mem.frame, unit) Hashtbl.t;
  att_wire : int ref;  (** attacker frames that reached the wire *)
  vic_wire : int ref;
}

val make : ?quota:Td_xen.Quota.limits -> ?attacker_doorbell:bool -> unit -> env
(** Build the rig. [quota] installs the global {!Td_xen.Quota} engine
    (dom0 exempt, simulated clock from the rig's ledger) before any
    allocation, like a real boot; omitted, the engine is cleared.
    [attacker_doorbell] (default true) gives the attacker's channel a
    doorbell page pinned in always-poll, exposing the guest-writable
    sequence words as a fuzz surface. Installs the SVM window guard
    either way. *)

val isolation_violations : env -> string list
(** Sweep the attacker's address space and the SVM map window for any
    vpage resolving to a victim frame; empty list = isolated. *)

val conservation_violations : env -> string list
(** Frame-conservation check ({!Td_kernel.Xen_netio.conserved}) on both
    channels. *)

type contention = {
  victim_sent : int;  (** frames the victim pushed *)
  victim_wire : int;  (** frames that reached the wire *)
  victim_throttled : int;  (** victim frames denied — 0 if the quota is fair *)
  attacker_attempts : int;
  attacker_throttled : int;  (** attempts denied by quota *)
  attacker_row : int;  (** cycles attributed to the attacker *)
  other_cycles : int;  (** grand total minus the attacker's row *)
  grand_cycles : int;  (** total simulated cycles — the run's wall clock *)
}

val contend :
  ?quota:Td_xen.Quota.limits ->
  ?frames:int ->
  ?attack_per_frame:int ->
  ?idle_cycles:int ->
  unit ->
  contention
(** Hostile-neighbour run on a fresh rig: a paced victim (one frame then
    [idle_cycles] of think time per slot, [frames] slots) shares the
    simulated CPU with an attacker bursting [attack_per_frame] transmits
    per slot. The figure of merit is the victim's throughput —
    [victim_wire] over [grand_cycles]. With rate quotas the attacker's
    frames die at the frontend credit check before creating any skb or
    dom0 backend work, so throughput stays within a few percent of a
    solo run ([attack_per_frame = 0]); without quotas every burst frame
    takes the full path and throughput collapses. *)

open Td_xen
open Td_kernel

(* Attacker-controlled pages granted to the fuzzer, re-granted freely so
   a bounded pool survives an unbounded op count. *)
let pool_pages = 64

(* dom0 virtual window the fuzzer maps attacker grants into: 256 pages
   ending exactly at Xen_netio's doorbell window (0xC7E0_0000). *)
let fuzz_map_base = 0xC7D0_0000
let fuzz_map_pages = 256

type env = {
  phys : Td_mem.Phys_mem.t;
  dom0_space : Td_mem.Addr_space.t;
  hyp_space : Td_mem.Addr_space.t;
  att_space : Td_mem.Addr_space.t;
  vic_space : Td_mem.Addr_space.t;
  ledger : Ledger.t;
  hyp : Hypervisor.t;
  dom0 : Domain.t;
  attacker : Domain.t;
  victim : Domain.t;
  att_grants : Grant_table.t;
  svm : Td_svm.Runtime.t;
  calls : Td_svm.Call_table.t;
  kmem : Kmem.t;
  att_netio : Xen_netio.t;
  vic_netio : Xen_netio.t;
  nic : Td_nic.E1000_dev.t;
  nic_mmio : int;  (** NIC register page vaddr in attacker space *)
  ring_base : int;  (** attacker-memory TX descriptor ring page *)
  buf_base : int;  (** attacker-memory packet buffer page *)
  dom0_probe : int;  (** mapped dom0 heap region for SVM translate ops *)
  dom0_probe_pages : int;
  pool : (int * Td_mem.Phys_mem.frame) array;
      (** attacker pages the fuzzer grants from: (vaddr, frame) *)
  victim_frames : (Td_mem.Phys_mem.frame, unit) Hashtbl.t;
  att_wire : int ref;  (** attacker frames that reached the wire *)
  vic_wire : int ref;
}

(* NIC MMIO page for the attacker-driven device model: outside the guest
   heap so heap_alloc can never collide with it *)
let nic_mmio_vaddr = 0xF900_0000

let record_guest_frames space tbl =
  let p0 = Td_mem.Layout.page_of Td_mem.Layout.guest_heap_base
  and p1 = Td_mem.Layout.page_of (Td_mem.Layout.guest_heap_limit - 1) in
  for vp = p0 to p1 do
    match Td_mem.Addr_space.frame_of_vpage space ~vpage:vp with
    | Some f -> Hashtbl.replace tbl f ()
    | None -> ()
  done

let make ?quota ?(attacker_doorbell = true) () =
  let phys = Td_mem.Phys_mem.create () in
  let dom0_space = Td_mem.Addr_space.create ~name:"dom0" phys in
  let hyp_space = Td_mem.Addr_space.create ~name:"xen" phys in
  let att_space = Td_mem.Addr_space.create ~name:"attacker" phys in
  let vic_space = Td_mem.Addr_space.create ~name:"victim" phys in
  Td_mem.Addr_space.heap_init dom0_space ~base:Td_mem.Layout.dom0_heap_base
    ~limit:Td_mem.Layout.dom0_heap_limit;
  Td_mem.Addr_space.heap_init att_space ~base:Td_mem.Layout.guest_heap_base
    ~limit:Td_mem.Layout.guest_heap_limit;
  Td_mem.Addr_space.heap_init vic_space ~base:Td_mem.Layout.guest_heap_base
    ~limit:Td_mem.Layout.guest_heap_limit;
  let ledger = Ledger.create () in
  let cpu = Td_cpu.State.create ~hyp_space dom0_space in
  let hyp = Hypervisor.create ~ledger ~xen_space:hyp_space ~cpu () in
  let dom0 =
    Domain.create ~id:0 ~name:"dom0" ~kind:Domain.Driver_domain
      ~space:dom0_space
  in
  let victim =
    Domain.create ~id:1 ~name:"victim" ~kind:Domain.Guest ~space:vic_space
  in
  let attacker =
    Domain.create ~id:2 ~name:"attacker" ~kind:Domain.Guest ~space:att_space
  in
  Hypervisor.add_domain hyp dom0;
  Hypervisor.add_domain hyp victim;
  Hypervisor.add_domain hyp attacker;
  (* quotas first, so every allocation below is accounted like a real
     boot would be; dom0 is exempt (see World) *)
  (match quota with
  | Some l ->
      Quota.install
        ~now:(fun () -> float_of_int (Ledger.grand_total ledger) /. 3e9)
        ~exempt:[ "dom0" ] l
  | None -> Quota.clear ());
  let svm =
    Td_svm.Runtime.create_hypervisor ~dom0:dom0_space ~hyp:hyp_space ()
  in
  Td_svm.Runtime.set_window_guard svm
    {
      Td_svm.Runtime.acquire =
        (fun ~pages ->
          let domain = Domain.name (Hypervisor.current hyp) in
          Quota.acquire ~domain Quota.Map_window_pages pages;
          domain);
      release =
        (fun ~owner ~pages ->
          Quota.release ~domain:owner Quota.Map_window_pages pages);
    };
  let calls =
    Td_svm.Call_table.create ~vm_code_base:Td_mem.Layout.vm_driver_code_base
      ~vm_code_size:Td_mem.Layout.page_size
      ~resolver:(fun _ -> None)
  in
  let att_grants = Grant_table.create ~owner:attacker in
  let kmem = Kmem.create dom0_space in
  let att_wire = ref 0 and vic_wire = ref 0 in
  let doorbell =
    if attacker_doorbell then
      Some
        { Xen_netio.poll_entry_kicks = 0; idle_hysteresis = 3; poll_budget = 8 }
    else None
  in
  let att_netio =
    Xen_netio.create ~batch:4 ?doorbell ~hyp ~dom0 ~guest:attacker ~kmem
      ~driver_tx:(fun skb ->
        incr att_wire;
        Skb.free kmem skb)
      ()
  in
  let vic_netio =
    Xen_netio.create ~batch:1 ~hyp ~dom0 ~guest:victim ~kmem
      ~driver_tx:(fun skb ->
        incr vic_wire;
        Skb.free kmem skb)
      ()
  in
  Xen_netio.post_rx_buffers vic_netio 4;
  (* the NIC model DMAs through ATTACKER memory: its descriptor rings and
     buffers are hostile input, and its faults are attributed there *)
  let nic =
    Td_nic.E1000_dev.create
      ~fault_domain:(fun () -> Some (Domain.name attacker))
      ~dma:att_space ~mac:"\x02ADV00"
      ~tx_frame:(fun _ -> incr att_wire)
      ()
  in
  Td_nic.E1000_dev.attach nic ~space:att_space ~vaddr:nic_mmio_vaddr;
  let ring_base = Td_mem.Addr_space.heap_alloc att_space 4096 in
  let buf_base = Td_mem.Addr_space.heap_alloc att_space 4096 in
  let dom0_probe_pages = 16 in
  let dom0_probe =
    Td_mem.Addr_space.heap_alloc dom0_space (dom0_probe_pages * 4096)
  in
  let pool =
    Array.init pool_pages (fun _ ->
        let vaddr = Td_mem.Addr_space.heap_alloc att_space 4096 in
        let frame =
          Option.get
            (Td_mem.Addr_space.frame_of_vpage att_space
               ~vpage:(Td_mem.Layout.page_of vaddr))
        in
        (vaddr, frame))
  in
  let victim_frames = Hashtbl.create 1024 in
  record_guest_frames vic_space victim_frames;
  {
    phys;
    dom0_space;
    hyp_space;
    att_space;
    vic_space;
    ledger;
    hyp;
    dom0;
    attacker;
    victim;
    att_grants;
    svm;
    calls;
    kmem;
    att_netio;
    vic_netio;
    nic;
    nic_mmio = nic_mmio_vaddr;
    ring_base;
    buf_base;
    dom0_probe;
    dom0_probe_pages;
    pool;
    victim_frames;
    att_wire;
    vic_wire;
  }

(* ---- the isolation invariant ---- *)

(* Nothing reachable from the attacker may resolve to a victim page
   frame: neither the attacker's own address space nor the SVM mapped-page
   window (the view hypervisor-driver code gets while running on the
   attacker's behalf). *)
let isolation_violations env =
  let bad = ref [] in
  let sweep space label lo pages =
    let p0 = Td_mem.Layout.page_of lo in
    for vp = p0 to p0 + pages - 1 do
      match Td_mem.Addr_space.frame_of_vpage space ~vpage:vp with
      | Some f when Hashtbl.mem env.victim_frames f ->
          bad :=
            Printf.sprintf "%s: vpage 0x%x resolves to victim frame %d" label
              vp f
            :: !bad
      | _ -> ()
    done
  in
  sweep env.att_space "attacker space" Td_mem.Layout.guest_heap_base
    ((Td_mem.Layout.guest_heap_limit - Td_mem.Layout.guest_heap_base) / 4096);
  sweep env.hyp_space "svm window" Td_mem.Layout.map_window_base
    Td_mem.Layout.map_window_pages;
  List.rev !bad

(* Frame conservation across both I/O channels: nothing the fuzzer did
   may lose a staged frame between frontend and backend. *)
let conservation_violations env =
  let check name io acc =
    if Xen_netio.conserved io then acc
    else Printf.sprintf "%s channel lost staged frames" name :: acc
  in
  check "attacker" env.att_netio (check "victim" env.vic_netio [])

(* ---- hostile-neighbour contention run (the quota payoff) ---- *)

type contention = {
  victim_sent : int;  (** frames the victim pushed *)
  victim_wire : int;  (** frames that reached the wire *)
  victim_throttled : int;  (** victim frames denied — 0 if the quota is fair *)
  attacker_attempts : int;
  attacker_throttled : int;  (** attempts denied by quota *)
  attacker_row : int;  (** cycles attributed to the attacker *)
  other_cycles : int;  (** grand total minus the attacker's row *)
  grand_cycles : int;  (** total simulated cycles — the run's wall clock *)
}

(* One paced victim, one flooding neighbour, one shared CPU. Per slot the
   victim sends one frame and then idles [idle_cycles] (a netperf-paced
   sender, far below its quota); the attacker spends the slot bursting
   [attack_per_frame] transmits back-to-back. The figure of merit is the
   victim's throughput — frames over total simulated cycles. Quotas
   protect it because a denied frame dies at the frontend credit check
   before any skb or dom0 backend work exists: the attacker burns almost
   none of the shared clock. Without quotas every burst frame takes the
   full netfront/channel/netback/bridge path and the victim's throughput
   collapses with it. *)
let contend ?quota ?(frames = 200) ?(attack_per_frame = 20)
    ?(idle_cycles = 150_000) () =
  let env = make ?quota ~attacker_doorbell:false () in
  let payload = String.make 1400 'v' in
  let attack = String.make 1400 'a' in
  let throttled = ref 0 and attempts = ref 0 and vic_throttled = ref 0 in
  for _ = 1 to frames do
    if attack_per_frame > 0 then
      Hypervisor.run_in env.hyp env.attacker (fun () ->
          for _ = 1 to attack_per_frame do
            incr attempts;
            match Xen_netio.guest_transmit env.att_netio attack with
            | () -> ()
            | exception Quota.Quota_exceeded _ -> incr throttled
          done);
    Hypervisor.run_in env.hyp env.victim (fun () ->
        match Xen_netio.guest_transmit env.vic_netio payload with
        | () -> ()
        | exception Quota.Quota_exceeded _ -> incr vic_throttled);
    Hypervisor.charge_xen env.hyp idle_cycles
  done;
  Xen_netio.teardown env.att_netio;
  Xen_netio.teardown env.vic_netio;
  let attacker_row = Ledger.domain_total env.ledger "attacker" in
  let grand_cycles = Ledger.grand_total env.ledger in
  {
    victim_sent = frames;
    victim_throttled = !vic_throttled;
    victim_wire = !(env.vic_wire);
    attacker_attempts = !attempts;
    attacker_throttled = !throttled;
    attacker_row;
    other_cycles = grand_cycles - attacker_row;
    grand_cycles;
  }

open Td_xen
open Td_kernel

type report = {
  ops : int;  (** ops actually executed *)
  ok : int;
  guest_faults : int;  (** contained [Guest_fault.Fault] *)
  svm_faults : int;  (** contained [Td_svm.Runtime.Fault] *)
  quota_denials : int;  (** contained [Quota.Quota_exceeded] *)
  churned : int;  (** ephemeral domains created (and later destroyed) *)
  checksum : int;  (** deterministic fold over (surface, outcome) *)
  violations : string list;  (** empty on a clean run *)
}

(* 63-bit xorshift, one independent stream per fuzz surface plus a master
   selector — the same generator Td_fault uses, so a seed replays
   bit-identically with no dependence on OCaml's Random. *)
module Rng = struct
  let mask = (1 lsl 62) - 1

  let seed_stream seed i =
    let x = ((seed * 0x9E3779B1) + ((i + 1) * 0x85EBCA77)) land mask in
    if x = 0 then 0x2545F491 + i else x

  let next streams i =
    let x = streams.(i) in
    let x = x lxor ((x lsl 13) land mask) in
    let x = x lxor (x lsr 7) in
    let x = x lxor ((x lsl 17) land mask) in
    streams.(i) <- x;
    x

  let below streams i n = next streams i mod n
end

(* stream indices *)
let s_hyp = 0
let s_grant = 1
let s_nic = 2
let s_netio = 3
let s_churn = 4
let s_master = 5
let n_streams = 6

(* Mutable view of the attacker's grant refs so later ops can hit live,
   mapped and revoked refs on purpose. Bounded: revoking trims [live],
   and the tombstone/poison lists keep only the newest few. *)
type gstate = {
  mutable live : (Grant_table.grant_ref * int option) list;
      (** ref, vpage it was last successfully mapped at *)
  mutable revoked : Grant_table.grant_ref list;
  mutable poisoned : int list;  (** dom0 vaddrs torn down by forced revoke *)
}

let keep n l = List.filteri (fun i _ -> i < n) l

let pick streams s l =
  match l with [] -> None | _ -> Some (List.nth l (Rng.below streams s (List.length l)))

(* ---- surface 0: hypercalls and SVM address translation ---- *)

let op_hypercall (env : Harness.env) streams =
  let r = Rng.below streams s_hyp 8 in
  let probe_span = env.dom0_probe_pages * Td_mem.Layout.page_size in
  match r with
  | 0 -> Hypervisor.hypercall env.hyp ~cost:(1 + Rng.below streams s_hyp 500) ()
  | 1 ->
      (* legitimate dom0 address: must translate *)
      ignore
        (Td_svm.Runtime.translate env.svm
           (env.dom0_probe + Rng.below streams s_hyp probe_span))
  | 2 ->
      (* wild addresses: low memory, hypervisor text, the map window
         itself, unmapped dom0 heap — all must fault, not map *)
      let addr =
        match Rng.below streams s_hyp 4 with
        | 0 -> Rng.below streams s_hyp 0x1000
        | 1 -> Td_mem.Layout.hyp_base + Rng.below streams s_hyp 0x10000
        | 2 ->
            Td_mem.Layout.map_window_base
            + Rng.below streams s_hyp
                (Td_mem.Layout.map_window_pages * Td_mem.Layout.page_size)
        | _ ->
            Td_mem.Layout.dom0_heap_limit - 4096
            + Rng.below streams s_hyp 4096
      in
      ignore (Td_svm.Runtime.translate env.svm addr)
  | 3 ->
      ignore
        (Td_svm.Call_table.translate env.calls
           (Td_mem.Layout.vm_driver_code_base
           + Rng.below streams s_hyp Td_mem.Layout.page_size))
  | 4 ->
      (* untranslatable indirect-call target *)
      ignore (Td_svm.Call_table.translate env.calls (Rng.below streams s_hyp 0x0FFF_FFFF))
  | 5 ->
      Td_svm.Runtime.invalidate_page env.svm
        (env.dom0_probe + Rng.below streams s_hyp probe_span)
  | 6 ->
      (* page-straddling translate near the probe's end *)
      ignore
        (Td_svm.Runtime.translate env.svm (env.dom0_probe + probe_span - 2))
  | _ -> Hypervisor.hypercall env.hyp ~cost:(1 + Rng.below streams s_hyp 5000) ()

(* ---- surface 1: grant-table lifecycle ---- *)

let op_grant (env : Harness.env) streams gs =
  let gt = env.att_grants in
  let rand_vpage () =
    Td_mem.Layout.page_of Harness.fuzz_map_base
    + Rng.below streams s_grant Harness.fuzz_map_pages
  in
  (* keep the live set bounded so an unbounded run can't leak refs *)
  let r =
    if List.length gs.live >= 48 then 6 else Rng.below streams s_grant 10
  in
  match r with
  | 0 ->
      let _, frame =
        env.pool.(Rng.below streams s_grant (Array.length env.pool))
      in
      let g = Grant_table.grant gt ~frame in
      gs.live <- (g, None) :: gs.live
  | 1 -> (
      (* map a live ref at a fuzz-window vpage *)
      match pick streams s_grant gs.live with
      | None -> Hypervisor.hypercall env.hyp ()
      | Some (g, _) ->
          let vp = rand_vpage () in
          Grant_table.map gt ~hyp:env.hyp ~into:env.dom0 ~at_vpage:vp g;
          gs.live <-
            List.map (fun (g', m) -> if g' = g then (g', Some vp) else (g', m)) gs.live)
  | 2 ->
      (* garbage ref *)
      Grant_table.map gt ~hyp:env.hyp ~into:env.dom0 ~at_vpage:(rand_vpage ())
        (1000 + Rng.below streams s_grant 100_000)
  | 3 -> (
      (* reuse-after-revoke: must fault as "revoked", deterministically *)
      match pick streams s_grant gs.revoked with
      | None -> Hypervisor.hypercall env.hyp ()
      | Some g ->
          Grant_table.map gt ~hyp:env.hyp ~into:env.dom0
            ~at_vpage:(rand_vpage ()) g)
  | 4 -> (
      (* correct unmap of a mapped ref *)
      match
        pick streams s_grant
          (List.filter (fun (_, m) -> m <> None) gs.live)
      with
      | None -> Hypervisor.hypercall env.hyp ()
      | Some (g, Some vp) ->
          Grant_table.unmap gt ~hyp:env.hyp ~from:env.dom0 ~at_vpage:vp g;
          gs.live <-
            List.map (fun (g', m) -> if g' = g then (g', None) else (g', m)) gs.live
      | Some (_, None) -> ())
  | 5 -> (
      (* unmap at the wrong vpage: must be refused, not silently unmap *)
      match pick streams s_grant gs.live with
      | None -> Hypervisor.hypercall env.hyp ()
      | Some (g, _) ->
          Grant_table.unmap gt ~hyp:env.hyp ~from:env.dom0
            ~at_vpage:(rand_vpage ()) g)
  | 6 -> (
      (* revoke — possibly while mapped (forced teardown + poison) *)
      match pick streams s_grant gs.live with
      | None -> Hypervisor.hypercall env.hyp ()
      | Some (g, m) ->
          Grant_table.revoke gt g;
          gs.live <- List.filter (fun (g', _) -> g' <> g) gs.live;
          gs.revoked <- keep 16 (g :: gs.revoked);
          (match m with
          | Some vp ->
              gs.poisoned <-
                keep 16 ((vp * Td_mem.Layout.page_size) :: gs.poisoned)
          | None -> ()))
  | 7 -> (
      (* stale access through a torn-down mapping: typed fault *)
      match pick streams s_grant gs.poisoned with
      | None -> Hypervisor.hypercall env.hyp ()
      | Some vaddr ->
          ignore (Td_mem.Addr_space.read env.dom0_space vaddr Td_misa.Width.W32))
  | 8 -> (
      (* gnttab_copy in, guest-controlled bounds (often past the page) *)
      match pick streams s_grant gs.live with
      | None -> Hypervisor.hypercall env.hyp ()
      | Some (g, _) ->
          let offset = Rng.below streams s_grant 12288 - 2048 in
          let len = Rng.below streams s_grant 6000 in
          Grant_table.copy_to gt ~hyp:env.hyp g ~offset
            ~src:(Bytes.make len 'F'))
  | _ -> (
      match pick streams s_grant gs.live with
      | None -> Hypervisor.hypercall env.hyp ()
      | Some (g, _) ->
          let offset = Rng.below streams s_grant 12288 - 2048 in
          let len = Rng.below streams s_grant 6000 in
          ignore (Grant_table.copy_from gt ~hyp:env.hyp g ~offset ~len))

(* ---- surface 2: guest-writable NIC descriptor rings + MMIO ---- *)

let op_nic (env : Harness.env) streams =
  let mmio off v =
    Td_mem.Addr_space.write env.att_space (env.nic_mmio + off) Td_misa.Width.W32 v
  in
  match Rng.below streams s_nic 8 with
  | 0 ->
      (* scribble raw words over the descriptor ring page *)
      let off = 4 * Rng.below streams s_nic 1024 in
      let v =
        if Rng.below streams s_nic 2 = 0 then env.buf_base
        else Rng.next streams s_nic land 0xFFFF_FFFF
      in
      Td_mem.Addr_space.write env.att_space (env.ring_base + off)
        Td_misa.Width.W32 v
  | 1 ->
      (* program the TX ring semi-plausibly, then kick it *)
      let base =
        if Rng.below streams s_nic 3 = 0 then
          Rng.next streams s_nic land 0xFFFF_F000
        else env.ring_base
      in
      mmio Td_nic.Regs.tdbal base;
      mmio Td_nic.Regs.tdlen ((1 + Rng.below streams s_nic 32) * 16);
      mmio Td_nic.Regs.tdh (Rng.below streams s_nic 64);
      mmio Td_nic.Regs.tdt (Rng.below streams s_nic 64)
  | 2 -> mmio Td_nic.Regs.tdt (Rng.below streams s_nic 512)
  | 3 ->
      (* misaligned / narrow MMIO: typed fault *)
      Td_mem.Addr_space.write env.att_space
        (env.nic_mmio + Rng.below streams s_nic Td_mem.Layout.page_size)
        Td_misa.Width.W8
        (Rng.below streams s_nic 256)
  | 4 ->
      ignore
        (Td_mem.Addr_space.read env.att_space
           (env.nic_mmio + (4 * Rng.below streams s_nic 1024))
           Td_misa.Width.W32)
  | 5 ->
      Td_nic.E1000_dev.receive_frame env.nic
        (String.make (1 + Rng.below streams s_nic 1600) 'r')
  | 6 ->
      (* garbage packet bytes for descriptors to point at *)
      Td_mem.Addr_space.write env.att_space
        (env.buf_base + (4 * Rng.below streams s_nic 1024))
        Td_misa.Width.W32
        (Rng.next streams s_nic land 0xFFFF_FFFF)
  | _ ->
      if Rng.below streams s_nic 8 = 0 then ignore (Td_nic.E1000_dev.reset env.nic)
      else ignore (Td_mem.Addr_space.read env.att_space env.nic_mmio Td_misa.Width.W32)

(* ---- surface 3: I/O channel + doorbell sequence words ---- *)

let op_netio (env : Harness.env) streams =
  let io = env.att_netio in
  match Rng.below streams s_netio 8 with
  | 0 -> Xen_netio.guest_transmit io (String.make (60 + Rng.below streams s_netio 1440) 'a')
  | 1 ->
      (* oversized frame: typed fault, charged to the attacker *)
      Xen_netio.guest_transmit io
        (String.make (Td_mem.Layout.page_size + 1 + Rng.below streams s_netio 1000) 'a')
  | 2 -> (
      (* scribble the shared doorbell sequence words *)
      match Xen_netio.doorbell_vaddr io with
      | Some page ->
          Td_mem.Addr_space.write env.att_space
            (page + (4 * Rng.below streams s_netio 2))
            Td_misa.Width.W32
            (Rng.next streams s_netio land 0xFFFF_FFFF)
      | None -> Hypervisor.hypercall env.hyp ())
  | 3 -> Xen_netio.service io
  | 4 -> Xen_netio.on_tick io
  | 5 -> Xen_netio.flush io
  | 6 -> Xen_netio.teardown io
  | _ -> (
      match Xen_netio.doorbell_vaddr io with
      | Some page ->
          ignore (Td_mem.Addr_space.read env.att_space page Td_misa.Width.W32)
      | None -> Hypervisor.hypercall env.hyp ())

(* ---- surface 4: domain lifecycle churn ---- *)

(* Ephemeral guests booted and destroyed mid-run, each with its own
   address space and I/O channel — the create/destroy path the N-domain
   registry exposes. Bounded: at most [churn_cap] live at once, and the
   dead list keeps only the newest few closed channels so later ops can
   hit them use-after-close. *)
type cstate = {
  mutable churn_live : (Domain.t * Td_mem.Addr_space.t * Xen_netio.t) list;
  mutable churn_dead : Xen_netio.t list;  (** closed channels, for stale ops *)
  mutable churn_next : int;  (** next ephemeral domain id *)
  mutable churn_count : int;  (** total ephemeral domains booted *)
}

let churn_cap = 6

let churn_destroy (env : Harness.env) cs ((dom, space, io) as entry) violations
    =
  Xen_netio.close io;
  (* the "no dangling grant" registry invariant, checked at every
     destroy, not just at the end *)
  if Xen_netio.grants_active io <> 0 then
    violations :=
      Printf.sprintf "churn %s: %d grants dangling after close"
        (Domain.name dom) (Xen_netio.grants_active io)
      :: !violations;
  Hypervisor.remove_domain env.hyp dom;
  Quota.forget ~domain:(Domain.name dom);
  Td_mem.Addr_space.release space;
  cs.churn_live <- List.filter (fun e -> e != entry) cs.churn_live;
  cs.churn_dead <- keep 8 (io :: cs.churn_dead)

let op_churn (env : Harness.env) streams cs violations =
  match Rng.below streams s_churn 8 with
  | (0 | 1) when List.length cs.churn_live < churn_cap ->
      (* boot an ephemeral guest: own space + heap + I/O channel *)
      let id = cs.churn_next in
      cs.churn_next <- id + 1;
      cs.churn_count <- cs.churn_count + 1;
      let name = Printf.sprintf "churn%d" id in
      let space = Td_mem.Addr_space.create ~name env.phys in
      Td_mem.Addr_space.heap_init space ~base:Td_mem.Layout.guest_heap_base
        ~limit:Td_mem.Layout.guest_heap_limit;
      let dom = Domain.create ~id ~name ~kind:Domain.Guest ~space in
      Hypervisor.add_domain env.hyp dom;
      let io =
        Xen_netio.create ~hyp:env.hyp ~dom0:env.dom0 ~guest:dom ~kmem:env.kmem
          ~driver_tx:(fun skb -> Skb.free env.kmem skb)
          ()
      in
      Xen_netio.post_rx_buffers io 2;
      cs.churn_live <- (dom, space, io) :: cs.churn_live
  | 0 | 1 -> Hypervisor.hypercall env.hyp ()
  | 2 -> (
      (* full destroy: close the channel, drop the domain, free frames *)
      match pick streams s_churn cs.churn_live with
      | None -> Hypervisor.hypercall env.hyp ()
      | Some entry -> churn_destroy env cs entry violations)
  | 3 -> (
      (* frontend entry on a closed channel: typed, attributed fault *)
      match pick streams s_churn cs.churn_dead with
      | None -> Hypervisor.hypercall env.hyp ()
      | Some io ->
          Xen_netio.guest_transmit io
            (String.make (60 + Rng.below streams s_churn 200) 'c'))
  | 4 -> (
      match pick streams s_churn cs.churn_dead with
      | None -> Hypervisor.hypercall env.hyp ()
      | Some io -> Xen_netio.post_rx_buffers io 1)
  | 5 -> (
      (* traffic on a live ephemeral channel *)
      match pick streams s_churn cs.churn_live with
      | None -> Hypervisor.hypercall env.hyp ()
      | Some (_, _, io) ->
          Xen_netio.guest_transmit io
            (String.make (60 + Rng.below streams s_churn 1000) 'c'))
  | 6 -> (
      match pick streams s_churn cs.churn_live with
      | None -> Hypervisor.hypercall env.hyp ()
      | Some (_, _, io) -> Xen_netio.service io)
  | _ -> (
      (* double close must stay an idempotent no-op *)
      match pick streams s_churn cs.churn_dead with
      | None -> Hypervisor.hypercall env.hyp ()
      | Some io -> Xen_netio.close io)

(* ---- the loop ---- *)

let run ?(seed = 1) ?quota ~ops () =
  let env = Harness.make ?quota () in
  let streams = Array.init n_streams (Rng.seed_stream seed) in
  let gs = { live = []; revoked = []; poisoned = [] } in
  let cs =
    { churn_live = []; churn_dead = []; churn_next = 100; churn_count = 0 }
  in
  let ok = ref 0
  and guest_faults = ref 0
  and svm_faults = ref 0
  and quota_denials = ref 0 in
  let violations = ref [] in
  let checksum = ref 0 in
  let att_row () = Ledger.domain_total env.ledger "attacker" in
  let vic_row () = Ledger.domain_total env.ledger "victim" in
  for i = 1 to ops do
    let surface = Rng.below streams s_master 5 in
    let att_before = att_row () and vic_before = vic_row () in
    let outcome =
      (* every op enters through a hypercall in the attacker's context, so
         its cost — including the cost of being rejected — lands in the
         attacker's ledger row *)
      match
        Hypervisor.run_in env.hyp env.attacker (fun () ->
            Hypervisor.hypercall env.hyp ();
            match surface with
            | 0 -> op_hypercall env streams
            | 1 -> op_grant env streams gs
            | 2 -> op_nic env streams
            | 3 -> op_netio env streams
            | _ -> op_churn env streams cs violations)
      with
      | () ->
          incr ok;
          0
      | exception Guest_fault.Fault _ ->
          incr guest_faults;
          1
      | exception Td_svm.Runtime.Fault _ ->
          incr svm_faults;
          2
      | exception Quota.Quota_exceeded _ ->
          incr quota_denials;
          3
      | exception e ->
          (* the containment invariant: anything else escaping is a bug *)
          violations :=
            Printf.sprintf "op %d (surface %d): untyped escape %s" i surface
              (Printexc.to_string e)
            :: !violations;
          4
    in
    checksum := ((!checksum * 31) + (surface * 8) + outcome) land Rng.mask;
    (* attribution: the op cost the attacker something and the victim
       nothing *)
    if att_row () <= att_before then
      violations :=
        Printf.sprintf "op %d (surface %d): no cost in attacker's row" i
          surface
        :: !violations;
    if vic_row () <> vic_before then
      violations :=
        Printf.sprintf "op %d (surface %d): victim's row changed" i surface
        :: !violations;
    if i mod 1024 = 0 then
      violations := Harness.isolation_violations env @ !violations
  done;
  (* quiesce: a teardown here must conserve every staged frame, and the
     surviving ephemeral guests must destroy cleanly (no dangling
     grants) *)
  (match
     Hypervisor.run_in env.hyp env.attacker (fun () ->
         Xen_netio.teardown env.att_netio;
         List.iter
           (fun entry -> churn_destroy env cs entry violations)
           cs.churn_live)
   with
  | () -> ()
  | exception e ->
      violations :=
        Printf.sprintf "final teardown raised %s" (Printexc.to_string e)
        :: !violations);
  violations :=
    Harness.isolation_violations env
    @ Harness.conservation_violations env
    @ !violations;
  let report =
    {
      ops;
      ok = !ok;
      guest_faults = !guest_faults;
      svm_faults = !svm_faults;
      quota_denials = !quota_denials;
      churned = cs.churn_count;
      checksum = !checksum;
      violations = List.rev !violations;
    }
  in
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump_by "adv.ops" report.ops;
    Td_obs.Metrics.bump_by "adv.ok" report.ok;
    Td_obs.Metrics.bump_by "adv.guest_faults" report.guest_faults;
    Td_obs.Metrics.bump_by "adv.svm_faults" report.svm_faults;
    Td_obs.Metrics.bump_by "adv.quota_denials" report.quota_denials;
    Td_obs.Metrics.bump_by "adv.churned" report.churned;
    Td_obs.Metrics.bump_by "adv.violations" (List.length report.violations)
  end;
  report

(** Deterministic adversarial-guest fuzzer. Drives a seeded stream of
    malformed guest operations from the unprivileged attacker domain of a
    {!Harness.env} against five surfaces:

    - {b hypercalls / SVM translation} — wild addresses at
      {!Td_svm.Runtime.translate} and {!Td_svm.Call_table.translate};
    - {b grant refs} — bogus, revoked and cross-lifetime refs,
      wrong-vpage unmaps, revoke-while-mapped, out-of-bounds
      [gnttab_copy];
    - {b NIC descriptor rings} — guest-writable descriptor scribbles,
      hostile ring geometry, misaligned MMIO;
    - {b I/O channel / doorbell} — oversized frames, sequence-word
      scribbles, pump entry points at arbitrary moments;
    - {b domain lifecycle churn} — ephemeral guests booted and destroyed
      mid-run (own address space and I/O channel each), frontend entry
      points poked after {!Td_kernel.Xen_netio.close}, double closes —
      every destroy asserts the channel left zero dangling grants.

    After {e every} op it asserts containment (only the typed
    {!Td_xen.Guest_fault.Fault}, {!Td_svm.Runtime.Fault},
    {!Td_xen.Quota.Quota_exceeded} escape) and attribution (attacker's
    ledger row grew, victim's did not); every 1024 ops and at the end it
    sweeps the isolation and frame-conservation invariants. All
    randomness is a private 63-bit xorshift ({!Td_fault}'s generator):
    same seed, same op stream, same {!report.checksum} — replays are
    bit-identical. *)

type report = {
  ops : int;  (** ops actually executed *)
  ok : int;
  guest_faults : int;  (** contained [Guest_fault.Fault] *)
  svm_faults : int;  (** contained [Td_svm.Runtime.Fault] *)
  quota_denials : int;  (** contained [Quota.Quota_exceeded] *)
  churned : int;  (** ephemeral domains created (and later destroyed) *)
  checksum : int;  (** deterministic fold over (surface, outcome) *)
  violations : string list;  (** empty on a clean run *)
}

val run : ?seed:int -> ?quota:Td_xen.Quota.limits -> ops:int -> unit -> report
(** Build a fresh {!Harness.env} (installing [quota] if given) and run
    [ops] fuzzed operations. [seed] defaults to 1. The [adv.*] metrics
    are bumped when observability is on; with it off the run leaves no
    trace beyond the returned report. *)

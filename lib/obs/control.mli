(** The process-wide observability switch.

    Every instrumentation site in the runtime layers guards both its
    event construction and its registry update with {!enabled}, so a
    disabled run performs exactly one boolean load per site — and, since
    no site ever charges the cycle {!Td_xen.Ledger}, simulated results
    are identical whether observability is on or off.

    The switch starts off; set the environment variable [TD_OBS=1] (or
    [on]/[true]/[yes]) to start enabled, or call {!enable} from code
    (bench/main.exe and [tdctl metrics]/[tdctl trace] do). *)

val enable : unit -> unit
val disable : unit -> unit

val enabled : unit -> bool
(** True when instrumentation sites should record. *)

val with_enabled : (unit -> 'a) -> 'a
(** Run [f] with observability enabled, restoring the previous state
    afterwards (also on exception). *)

(** The process-wide metrics registry.

    Three metric kinds, all registered by name on first use:

    - {b counters} — monotonically increasing integers (events, cycles);
    - {b gauges} — last-written floats (pool occupancy, table fill);
    - {b histograms} — fixed-bucket integer distributions (per-call
      cycle counts, frame sizes), with percentile estimation.

    Names are dot-separated, [layer.object.unit]-style ([stlb.miss],
    [ledger.cycles.dom0], [nic.tx.frames]); docs/METRICS.md catalogues
    every name the runtime layers emit. Re-requesting a registered name
    returns the existing metric; requesting it as a different kind
    raises [Invalid_argument].

    Handles ({!counter}, {!gauge}, {!histogram}) are cheap to hold and
    survive {!reset_all} (which zeroes values but keeps registrations).
    Instrumentation sites that fire rarely use the by-name helpers
    {!bump}/{!bump_by}, which are no-ops while {!Control.enabled} is
    false. *)

type counter
type gauge
type histogram

(* registration *)

val counter : ?help:string -> string -> counter
val gauge : ?help:string -> string -> gauge

val histogram : ?help:string -> ?bounds:int array -> string -> histogram
(** [bounds] are inclusive, strictly increasing upper bucket bounds; an
    implicit overflow bucket catches everything above the last bound.
    The default is powers of two from 16 to 128 Ki — sized for
    per-invocation cycle counts. *)

val default_bounds : int array

(* updates (unconditional — callers guard with {!Control.enabled}) *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> int -> unit

(* guarded by-name updates: no-ops when observability is disabled *)

val bump : string -> unit
val bump_by : string -> int -> unit

(* reads *)

val value : counter -> int
val gauge_value : gauge -> float
val observations : histogram -> int
val sum : histogram -> int
val mean : histogram -> float

val percentile : histogram -> float -> int
(** Bucket-resolution estimate: the upper bound of the bucket containing
    the rank, except in the overflow bucket where the true maximum is
    returned. [p] clamps to [0, 100]; an empty histogram estimates 0. *)

val counter_value : string -> int
(** 0 when the name is unregistered. *)

val exists : string -> bool

(* registry-wide *)

val reset : string -> unit
val reset_all : unit -> unit
(** Zero every metric, keeping registrations and handles valid. *)

val clear : unit -> unit
(** Drop every registration (tests use this for isolation). *)

val names : unit -> string list

val snapshot : unit -> (string * float) list
(** Flat name→value view, sorted by name: counters and gauges directly,
    histograms as [.count]/[.sum]/[.mean]/[.p50]/[.p99] entries. This is
    the [metrics] field of {!Twindrivers.Measure.result}. *)

val to_json : unit -> Json.t
(** The structured export of docs/METRICS.md: an object with
    ["counters"], ["gauges"] and ["histograms"] members. *)

val pp : Format.formatter -> unit -> unit
(** Human-readable table ([tdctl metrics --table]). *)

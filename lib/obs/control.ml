let on =
  ref
    (match Sys.getenv_opt "TD_OBS" with
    | Some ("1" | "on" | "true" | "yes") -> true
    | Some _ | None -> false)

let enable () = on := true
let disable () = on := false
let enabled () = !on

let with_enabled f =
  let saved = !on in
  on := true;
  Fun.protect ~finally:(fun () -> on := saved) f

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_nan f || Float.abs f = infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf v;
  Buffer.contents buf

(* indentation keeps BENCH_*.json diffable; emitted bottom-up *)
let rec write_indent buf ~indent ~level = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List xs ->
      let pad = String.make ((level + 1) * indent) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          write_indent buf ~indent ~level:(level + 1) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * indent) ' ');
      Buffer.add_char buf ']'
  | Obj kvs ->
      let pad = String.make ((level + 1) * indent) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\": ";
          write_indent buf ~indent ~level:(level + 1) v)
        kvs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * indent) ' ');
      Buffer.add_char buf '}'

let to_string_pretty ?(indent = 2) v =
  let buf = Buffer.create 4096 in
  write_indent buf ~indent ~level:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

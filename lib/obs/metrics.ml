type counter = { mutable n : int }
type gauge = { mutable v : float }

type histogram = {
  bounds : int array;  (** inclusive upper bounds, strictly increasing *)
  counts : int array;  (** length = Array.length bounds + 1 (overflow) *)
  mutable sum : int;
  mutable observations : int;
  mutable lo : int;
  mutable hi : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type entry = { name : string; help : string; metric : metric }

let registry : (string, entry) Hashtbl.t = Hashtbl.create 128

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let mismatch name entry wanted =
  invalid_arg
    (Printf.sprintf "Td_obs.Metrics: %s is a %s, not a %s" name
       (kind_name entry.metric) wanted)

let counter ?(help = "") name =
  match Hashtbl.find_opt registry name with
  | Some { metric = Counter c; _ } -> c
  | Some e -> mismatch name e "counter"
  | None ->
      let c = { n = 0 } in
      Hashtbl.replace registry name { name; help; metric = Counter c };
      c

let gauge ?(help = "") name =
  match Hashtbl.find_opt registry name with
  | Some { metric = Gauge g; _ } -> g
  | Some e -> mismatch name e "gauge"
  | None ->
      let g = { v = 0.0 } in
      Hashtbl.replace registry name { name; help; metric = Gauge g };
      g

(* cycle-count buckets: powers of two from 16 to 128 Ki, plus overflow *)
let default_bounds =
  Array.init 14 (fun i -> 16 lsl i)

let histogram ?(help = "") ?bounds name =
  match Hashtbl.find_opt registry name with
  | Some { metric = Histogram h; _ } -> h
  | Some e -> mismatch name e "histogram"
  | None ->
      let bounds =
        match bounds with Some b -> Array.copy b | None -> default_bounds
      in
      Array.iteri
        (fun i b ->
          if i > 0 && b <= bounds.(i - 1) then
            invalid_arg "Td_obs.Metrics.histogram: bounds must be increasing")
        bounds;
      let h =
        {
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          sum = 0;
          observations = 0;
          lo = max_int;
          hi = min_int;
        }
      in
      Hashtbl.replace registry name { name; help; metric = Histogram h };
      h

let incr c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let value c = c.n
let set g v = g.v <- v
let gauge_value g = g.v

let bucket_index h v =
  let n = Array.length h.bounds in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= h.bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h v =
  let i = bucket_index h v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum + v;
  h.observations <- h.observations + 1;
  if v < h.lo then h.lo <- v;
  if v > h.hi then h.hi <- v

let observations h = h.observations
let sum h = h.sum

let mean h =
  if h.observations = 0 then 0.0
  else float_of_int h.sum /. float_of_int h.observations

(* Upper bound of the bucket holding the percentile rank; the exact
   maximum when the rank lands in the overflow bucket. p is clamped to
   [0, 100]; an empty histogram estimates 0. *)
let percentile h p =
  if h.observations = 0 then 0
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank =
      max 1
        (int_of_float (ceil (p /. 100.0 *. float_of_int h.observations)))
    in
    let n = Array.length h.bounds in
    let rec go i acc =
      if i > n then h.hi
      else
        let acc = acc + h.counts.(i) in
        if acc >= rank then (if i = n then h.hi else h.bounds.(i))
        else go (i + 1) acc
    in
    go 0 0
  end

(* ---- registry-wide operations ---- *)

let bump name = if Control.enabled () then incr (counter name)
let bump_by name k = if Control.enabled () then add (counter name) k

let counter_value name =
  match Hashtbl.find_opt registry name with
  | Some { metric = Counter c; _ } -> c.n
  | Some e -> mismatch name e "counter"
  | None -> 0

let exists name = Hashtbl.mem registry name

let reset_metric = function
  | Counter c -> c.n <- 0
  | Gauge g -> g.v <- 0.0
  | Histogram h ->
      Array.fill h.counts 0 (Array.length h.counts) 0;
      h.sum <- 0;
      h.observations <- 0;
      h.lo <- max_int;
      h.hi <- min_int

let reset name =
  match Hashtbl.find_opt registry name with
  | Some e -> reset_metric e.metric
  | None -> ()

let reset_all () = Hashtbl.iter (fun _ e -> reset_metric e.metric) registry
let clear () = Hashtbl.reset registry

let entries () =
  Hashtbl.fold (fun _ e acc -> e :: acc) registry []
  |> List.sort (fun a b -> compare a.name b.name)

let names () = List.map (fun e -> e.name) (entries ())

let snapshot () =
  List.concat_map
    (fun e ->
      match e.metric with
      | Counter c -> [ (e.name, float_of_int c.n) ]
      | Gauge g -> [ (e.name, g.v) ]
      | Histogram h ->
          [
            (e.name ^ ".count", float_of_int h.observations);
            (e.name ^ ".sum", float_of_int h.sum);
            (e.name ^ ".mean", mean h);
            (e.name ^ ".p50", float_of_int (percentile h 50.0));
            (e.name ^ ".p99", float_of_int (percentile h 99.0));
          ])
    (entries ())

let histogram_json h =
  Json.Obj
    [
      ("buckets", Json.List (Array.to_list (Array.map (fun b -> Json.Int b) h.bounds)));
      ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)));
      ("count", Json.Int h.observations);
      ("sum", Json.Int h.sum);
      ("min", Json.Int (if h.observations = 0 then 0 else h.lo));
      ("max", Json.Int (if h.observations = 0 then 0 else h.hi));
      ("p50", Json.Int (percentile h 50.0));
      ("p90", Json.Int (percentile h 90.0));
      ("p99", Json.Int (percentile h 99.0));
    ]

let to_json () =
  let pick f =
    List.filter_map f (entries ())
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (pick (fun e ->
               match e.metric with
               | Counter c -> Some (e.name, Json.Int c.n)
               | _ -> None)) );
      ( "gauges",
        Json.Obj
          (pick (fun e ->
               match e.metric with
               | Gauge g -> Some (e.name, Json.Float g.v)
               | _ -> None)) );
      ( "histograms",
        Json.Obj
          (pick (fun e ->
               match e.metric with
               | Histogram h -> Some (e.name, histogram_json h)
               | _ -> None)) );
    ]

let pp fmt () =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun e ->
      match e.metric with
      | Counter c -> Format.fprintf fmt "%-36s %12d@," e.name c.n
      | Gauge g -> Format.fprintf fmt "%-36s %12.1f@," e.name g.v
      | Histogram h ->
          Format.fprintf fmt
            "%-36s n=%d sum=%d mean=%.1f p50=%d p99=%d@," e.name
            h.observations h.sum (mean h) (percentile h 50.0)
            (percentile h 99.0))
    (entries ());
  Format.fprintf fmt "@]"

(** A minimal JSON document model and serialiser.

    Deliberately dependency-free (the container bakes in no JSON
    library): just enough to render the metrics/trace export whose
    schema docs/METRICS.md documents. Serialisation notes:

    - object keys keep insertion order (snapshots sort by name before
      building, so exports are stable and diffable);
    - floats render as [%.12g], integral floats without a fraction;
      NaN and infinities become [null] (JSON has no spelling for them);
    - strings escape the JSON control set and emit everything else
      verbatim. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering. *)

val to_string_pretty : ?indent:int -> t -> string
(** Indented rendering (default 2 spaces), trailing newline — the format
    of the [BENCH_*.json] snapshots. *)

val member : string -> t -> t option
(** [member key (Obj ...)] looks up a key; [None] on other constructors. *)

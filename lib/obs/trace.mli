(** A bounded ring buffer of typed runtime events — the "more detailed
    profiling" companion to the {!Metrics} registry.

    Each instrumented layer emits the events below on its hot path
    (guarded at the call site by {!Control.enabled}, so a disabled run
    neither allocates the event nor touches the ring). The ring keeps
    the last {!capacity} records; each carries a monotonic sequence
    number, so wraparound is visible as a gap between [emitted ()] and
    the first retained record. *)

type event =
  | Stlb_hit of { addr : int }
      (** software-TLB probe matched ({!Td_svm.Runtime.translate}). *)
  | Stlb_miss of { addr : int; refill : bool }
      (** probe missed; [refill] when the translation was refilled from
          the hash chain (a direct-mapped collision, not a new page). *)
  | Stlb_evict of { victim_page : int; new_page : int }
      (** installing [new_page] overwrote a live colliding entry. *)
  | Stlb_invalidate of { dom0_page : int }
      (** a live entry was dropped ({!Td_svm.Stlb.invalidate}) — page
          reclaim or an explicit {!Td_svm.Runtime.invalidate_page}. *)
  | Window_reclaim of { victim_page : int; mapped : int }
      (** the mapped-page window was full: the clock hand evicted the
          page-pair holding dom0 page [victim_page] from window slot
          [mapped] to make room. *)
  | Svm_validate of { addr : int; ok : bool }
      (** slow-path validation of a first-touch page against the dom0
          address space (§4.2). *)
  | Svm_fault of { addr : int; reason : string }
      (** validation failed: the access is outside dom0 — the driver
          aborts, nothing else does (§4.5). *)
  | Upcall_enter of { routine : string }
  | Upcall_exit of { routine : string; switched : bool }
      (** a support routine forwarded into dom0 (§4.3); [switched] when
          it cost a pair of world switches. *)
  | Hypercall of { cost : int }
  | World_switch of { from_dom : int; to_dom : int }
  | Virq of { dom : int; deferred : bool }
      (** virtual interrupt delivery; [deferred] when the target had
          interrupts masked (§4.4). *)
  | Grant_map of { gref : int }
  | Grant_unmap of { gref : int }
  | Grant_copy of { gref : int; bytes : int }
  | Nic_dma of { dir : [ `Read | `Write ]; bytes : int }
      (** one frame-sized DMA transfer between rings and buffers
          (descriptor-word traffic is counted, not traced). *)
  | Nic_tx of { bytes : int }
  | Nic_rx of { bytes : int }
  | Nic_drop of { reason : string }
  | Skb_alloc of { addr : int; pooled : bool }
  | Skb_free of { addr : int; pooled : bool }
  | Netio_tx of { bytes : int }
  | Netio_rx of { bytes : int }
  | Fault_injected of { site : string }
      (** the fault engine fired at the named injection site
          ({!Td_fault.Engine.fire}). *)
  | Driver_recovery of { nic : int; reason : string }
      (** the supervisor restarted the driver complex after NIC [nic]
          aborted with [reason]. *)
  | Guest_fault of { op : string }
      (** a guest-reachable validation failure was contained as a typed
          fault instead of killing the process ({!Td_xen.Guest_fault}). *)
  | Custom of { name : string; value : int }
      (** escape hatch for experiments and tests. *)

type record = { seq : int; event : event }

val emit : event -> unit
(** Append to the ring — a no-op while {!Control.enabled} is false.
    Call sites on hot paths must also guard event {e construction}. *)

val records : unit -> record list
(** Retained records, oldest first (at most {!capacity}). *)

val emitted : unit -> int
(** Total events emitted since the last {!clear}, including overwritten
    ones. *)

val exists : (event -> bool) -> bool
val count_if : (event -> bool) -> int

val capacity : unit -> int
val set_capacity : int -> unit
(** Resize (clearing) the ring; default 4096 records. *)

val clear : unit -> unit

val event_name : event -> string
(** The dotted name used in exports, e.g. ["stlb.miss"]. *)

val record_json : record -> Json.t
val to_json : unit -> Json.t
(** [{"capacity", "emitted", "records": [{"seq", "event", ...fields}]}] —
    schema in docs/METRICS.md. *)

val pp_record : Format.formatter -> record -> unit

type event =
  | Stlb_hit of { addr : int }
  | Stlb_miss of { addr : int; refill : bool }
  | Stlb_evict of { victim_page : int; new_page : int }
  | Stlb_invalidate of { dom0_page : int }
  | Window_reclaim of { victim_page : int; mapped : int }
  | Svm_validate of { addr : int; ok : bool }
  | Svm_fault of { addr : int; reason : string }
  | Upcall_enter of { routine : string }
  | Upcall_exit of { routine : string; switched : bool }
  | Hypercall of { cost : int }
  | World_switch of { from_dom : int; to_dom : int }
  | Virq of { dom : int; deferred : bool }
  | Grant_map of { gref : int }
  | Grant_unmap of { gref : int }
  | Grant_copy of { gref : int; bytes : int }
  | Nic_dma of { dir : [ `Read | `Write ]; bytes : int }
  | Nic_tx of { bytes : int }
  | Nic_rx of { bytes : int }
  | Nic_drop of { reason : string }
  | Skb_alloc of { addr : int; pooled : bool }
  | Skb_free of { addr : int; pooled : bool }
  | Netio_tx of { bytes : int }
  | Netio_rx of { bytes : int }
  | Fault_injected of { site : string }
  | Driver_recovery of { nic : int; reason : string }
  | Guest_fault of { op : string }
  | Custom of { name : string; value : int }

type record = { seq : int; event : event }

type ring = {
  mutable slots : record option array;
  mutable next_seq : int;  (** total events emitted since the last clear *)
}

let default_capacity = 4096
let ring = { slots = Array.make default_capacity None; next_seq = 0 }

let capacity () = Array.length ring.slots

let set_capacity n =
  if n < 1 then invalid_arg "Td_obs.Trace.set_capacity";
  ring.slots <- Array.make n None;
  ring.next_seq <- 0

let clear () =
  Array.fill ring.slots 0 (Array.length ring.slots) None;
  ring.next_seq <- 0

let emit event =
  if Control.enabled () then begin
    let seq = ring.next_seq in
    ring.next_seq <- seq + 1;
    ring.slots.(seq mod Array.length ring.slots) <- Some { seq; event }
  end

let emitted () = ring.next_seq

let records () =
  let cap = Array.length ring.slots in
  let first = max 0 (ring.next_seq - cap) in
  List.filter_map
    (fun seq -> ring.slots.(seq mod cap))
    (List.init (ring.next_seq - first) (fun i -> first + i))

let exists p = List.exists (fun r -> p r.event) (records ())
let count_if p = List.length (List.filter (fun r -> p r.event) (records ()))

let event_name = function
  | Stlb_hit _ -> "stlb.hit"
  | Stlb_miss _ -> "stlb.miss"
  | Stlb_evict _ -> "stlb.evict"
  | Stlb_invalidate _ -> "stlb.invalidate"
  | Window_reclaim _ -> "svm.window_reclaim"
  | Svm_validate _ -> "svm.validate"
  | Svm_fault _ -> "svm.fault"
  | Upcall_enter _ -> "upcall.enter"
  | Upcall_exit _ -> "upcall.exit"
  | Hypercall _ -> "hypercall"
  | World_switch _ -> "world.switch"
  | Virq _ -> "virq"
  | Grant_map _ -> "grant.map"
  | Grant_unmap _ -> "grant.unmap"
  | Grant_copy _ -> "grant.copy"
  | Nic_dma _ -> "nic.dma"
  | Nic_tx _ -> "nic.tx"
  | Nic_rx _ -> "nic.rx"
  | Nic_drop _ -> "nic.drop"
  | Skb_alloc _ -> "skb.alloc"
  | Skb_free _ -> "skb.free"
  | Netio_tx _ -> "netio.tx"
  | Netio_rx _ -> "netio.rx"
  | Fault_injected _ -> "fault.injected"
  | Driver_recovery _ -> "fault.recovery"
  | Guest_fault _ -> "xen.guest_fault"
  | Custom { name; _ } -> name

let fields = function
  | Stlb_hit { addr } | Stlb_miss { addr; refill = false } ->
      [ ("addr", Json.Int addr) ]
  | Stlb_miss { addr; refill = true } ->
      [ ("addr", Json.Int addr); ("refill", Json.Bool true) ]
  | Stlb_evict { victim_page; new_page } ->
      [ ("victim_page", Json.Int victim_page); ("new_page", Json.Int new_page) ]
  | Stlb_invalidate { dom0_page } -> [ ("dom0_page", Json.Int dom0_page) ]
  | Window_reclaim { victim_page; mapped } ->
      [ ("victim_page", Json.Int victim_page); ("mapped", Json.Int mapped) ]
  | Svm_validate { addr; ok } ->
      [ ("addr", Json.Int addr); ("ok", Json.Bool ok) ]
  | Svm_fault { addr; reason } ->
      [ ("addr", Json.Int addr); ("reason", Json.String reason) ]
  | Upcall_enter { routine } -> [ ("routine", Json.String routine) ]
  | Upcall_exit { routine; switched } ->
      [ ("routine", Json.String routine); ("switched", Json.Bool switched) ]
  | Hypercall { cost } -> [ ("cost", Json.Int cost) ]
  | World_switch { from_dom; to_dom } ->
      [ ("from", Json.Int from_dom); ("to", Json.Int to_dom) ]
  | Virq { dom; deferred } ->
      [ ("dom", Json.Int dom); ("deferred", Json.Bool deferred) ]
  | Grant_map { gref } | Grant_unmap { gref } -> [ ("gref", Json.Int gref) ]
  | Grant_copy { gref; bytes } ->
      [ ("gref", Json.Int gref); ("bytes", Json.Int bytes) ]
  | Nic_dma { dir; bytes } ->
      [
        ("dir", Json.String (match dir with `Read -> "read" | `Write -> "write"));
        ("bytes", Json.Int bytes);
      ]
  | Nic_tx { bytes } | Nic_rx { bytes } | Netio_tx { bytes } | Netio_rx { bytes }
    ->
      [ ("bytes", Json.Int bytes) ]
  | Nic_drop { reason } -> [ ("reason", Json.String reason) ]
  | Fault_injected { site } -> [ ("site", Json.String site) ]
  | Driver_recovery { nic; reason } ->
      [ ("nic", Json.Int nic); ("reason", Json.String reason) ]
  | Guest_fault { op } -> [ ("op", Json.String op) ]
  | Skb_alloc { addr; pooled } | Skb_free { addr; pooled } ->
      [ ("addr", Json.Int addr); ("pooled", Json.Bool pooled) ]
  | Custom { value; _ } -> [ ("value", Json.Int value) ]

let record_json r =
  Json.Obj
    (("seq", Json.Int r.seq)
    :: ("event", Json.String (event_name r.event))
    :: fields r.event)

let to_json () =
  Json.Obj
    [
      ("capacity", Json.Int (capacity ()));
      ("emitted", Json.Int ring.next_seq);
      ("records", Json.List (List.map record_json (records ())));
    ]

let pp_record fmt r =
  Format.fprintf fmt "%8d  %-14s" r.seq (event_name r.event);
  List.iter
    (fun (k, v) ->
      let s =
        match v with
        | Json.Int n ->
            if
              k = "addr" || k = "victim_page" || k = "new_page"
              || k = "dom0_page" || k = "mapped"
            then
              Printf.sprintf "0x%x" n
            else string_of_int n
        | Json.String s -> s
        | Json.Bool b -> string_of_bool b
        | other -> Json.to_string other
      in
      Format.fprintf fmt "  %s=%s" k s)
    (fields r.event)

type result = {
  config : Config.t;
  packets : int;
  frame_bytes : int;
  cycles_per_packet : float;
  breakdown : (Td_xen.Ledger.category * float) list;
  throughput_mbps : float;
  cpu_limited_mbps : float;
  cpu_utilisation : float;
  drops : int;
  metrics : (string * float) list;
}

(* While observability is on, Ledger.charge mirrors every charge into the
   registry and reset_measurement zeroes both — so at the end of a run the
   mirror counters must equal the ledger totals exactly. A mismatch means
   an instrumentation site bypassed the ledger (or vice versa). *)
let cross_check ledger =
  List.iter
    (fun c ->
      let name = Td_xen.Ledger.metric_name c in
      let mirrored = Td_obs.Metrics.counter_value name in
      let authoritative = Td_xen.Ledger.total ledger c in
      if mirrored <> authoritative then
        failwith
          (Printf.sprintf
             "Measure: observability cross-check failed: %s holds %d cycles \
              but the ledger charged %d to %s"
             name mirrored authoritative
             (Td_xen.Ledger.category_name c)))
    Td_xen.Ledger.categories

let mtu_payload = 1500
let eth_header = 14

let payload_pattern n = String.init n (fun i -> Char.chr (i land 0xff))

let finish w ~packets ~payload_bytes ~counted ~drops =
  let ledger = World.ledger w in
  let frame_bytes = payload_bytes + eth_header in
  let total = Td_xen.Ledger.grand_total ledger in
  let counted = max 1 counted in
  let cpp = float_of_int total /. float_of_int counted in
  let freq = float_of_int Td_cpu.Cost_model.frequency_hz in
  let cpu_pps = freq /. cpp in
  let wire_pps =
    Td_nic.E1000_dev.effective_rate_bps ~packet_bytes:frame_bytes
    /. float_of_int (8 * frame_bytes)
    *. float_of_int (World.nic_count w)
  in
  let actual_pps = min cpu_pps wire_pps in
  let mbps pps = pps *. float_of_int (8 * payload_bytes) /. 1e6 in
  let metrics =
    if Td_obs.Control.enabled () then begin
      cross_check ledger;
      Td_obs.Metrics.snapshot ()
    end
    else []
  in
  {
    config = World.config w;
    packets;
    frame_bytes;
    cycles_per_packet = cpp;
    breakdown = Td_xen.Ledger.per_packet ledger ~packets:counted;
    throughput_mbps = mbps actual_pps;
    cpu_limited_mbps = mbps cpu_pps;
    cpu_utilisation = actual_pps /. cpu_pps;
    drops;
    metrics;
  }

let run_transmit ?(packets = 1000) ?(payload_bytes = mtu_payload)
    ?(warmup = 64) w =
  let payload = payload_pattern payload_bytes in
  let nics = World.nic_count w in
  let send i = World.transmit w ~nic:(i mod nics) ~payload in
  for i = 0 to warmup - 1 do
    ignore (send i);
    if i mod 8 = 7 then World.pump w
  done;
  World.pump w;
  World.reset_measurement w;
  let drops = ref 0 in
  for i = 0 to packets - 1 do
    if not (send i) then incr drops;
    (* interrupt mitigation: service transmit-completion interrupts in
       batches of eight packets *)
    if i mod 8 = 7 then World.pump w
  done;
  World.pump w;
  let counted = World.wire_tx_frames w in
  finish w ~packets ~payload_bytes ~counted ~drops:!drops

let run_receive ?(packets = 1000) ?(payload_bytes = mtu_payload)
    ?(warmup = 64) w =
  let payload = payload_pattern payload_bytes in
  let nics = World.nic_count w in
  let recv i =
    World.inject_rx w ~nic:(i mod nics) ~payload;
    (* the NIC raises RXT0 per frame; service in small batches *)
    if i mod 4 = 3 then World.pump w
  in
  for i = 0 to warmup - 1 do
    recv i
  done;
  World.pump w;
  World.reset_measurement w;
  for i = 0 to packets - 1 do
    recv i
  done;
  World.pump w;
  let counted = World.delivered_rx_frames w in
  finish w ~packets ~payload_bytes ~counted ~drops:(packets - counted)

let speedup a b = a.cpu_limited_mbps /. b.cpu_limited_mbps

let pp_result fmt r =
  Format.fprintf fmt
    "%-10s %8.0f Mb/s (cpu-scaled %8.0f Mb/s, util %5.1f%%, %7.0f cycles/pkt%s)"
    (Config.name r.config) r.throughput_mbps r.cpu_limited_mbps
    (100.0 *. r.cpu_utilisation)
    r.cycles_per_packet
    (if r.drops > 0 then Printf.sprintf ", %d drops" r.drops else "")

let pp_breakdown fmt r =
  Format.fprintf fmt "%-10s" (Config.name r.config);
  List.iter
    (fun (c, v) ->
      Format.fprintf fmt "  %s %7.0f" (Td_xen.Ledger.category_name c) v)
    r.breakdown;
  Format.fprintf fmt "  total %7.0f" r.cycles_per_packet

(** A complete simulated machine in one of the four evaluated
    configurations: physical memory, address spaces, the Xen hypervisor
    (where applicable), dom0 with its kernel substrate, an optional guest,
    five (by default) e1000 NICs, and the driver — original or twinned —
    loaded and initialised.

    The packet-level API ([transmit], [inject_rx], [pump]) moves real
    bytes through the simulated system while the cycle ledger accumulates
    per-category costs; benchmarks derive throughput and the Figure 7/8
    breakdowns from it. *)

type t

val create :
  ?nics:int ->
  ?guests:int ->
  ?upcall_set:string list ->
  ?pool_entries:int ->
  ?costs:Td_xen.Sys_costs.t ->
  ?spill_everything:bool ->
  ?rewrite_style:Td_rewriter.Rewrite.style ->
  ?cache_probes:bool ->
  ?map_pairs:bool ->
  ?shard:int ->
  ?tuning:Config.tuning ->
  Config.t ->
  t
(** [guests] (default 1) creates that many guest domains (Xen_twin: the
    hypervisor demultiplexes received packets among them by destination
    MAC, §5.3). [upcall_set] (Xen_twin only) lists fast-path support
    routines that are demoted to upcalls — the Figure 10 experiment.
    [pool_entries] sizes the hypervisor's preallocated sk_buff pool.
    [spill_everything], [rewrite_style] and [map_pairs] select the
    DESIGN.md ablations (Xen_twin only). [tuning] (default
    {!Config.default_tuning}) sets the SVM map-window size and the
    notification batch factor; batching changes only when notifications
    are sent, never the frame payloads or their order.

    [shard] (default 0) marks this world as one (guest, queue) execution
    context of a sharded simulation ({!Mq}): it selects the world's stlb
    partition (32 KiB tables packed between [Layout.stlb_base] and the
    hypervisor scratch page, partition [shard mod 32]) and the per-queue
    doorbell words of its I/O channels. Shard 0 uses the historical
    table base and is bit-identical to an unsharded world. *)

val config : t -> Config.t

(** [shard t] is the shard index this world was created with (0 by
    default). *)

val shard : t -> int
val nic_count : t -> int
val ledger : t -> Td_xen.Ledger.t
val support : t -> Td_kernel.Support.t
val kmem : t -> Td_kernel.Kmem.t
val dom0_space : t -> Td_mem.Addr_space.t
val adapter : t -> nic:int -> Td_driver.Adapter.t
val netdev : t -> nic:int -> Td_kernel.Netdev.t
val nic_mac : t -> nic:int -> string
val guest_mac : t -> nic:int -> string
(** Destination MAC for traffic addressed to the guest behind NIC [i]
    (equal to {!nic_mac} for host-terminated configurations). *)

val svm : t -> Td_svm.Runtime.t option
(** The hypervisor instance's SVM runtime (Xen_twin only). *)

val twin_stats : t -> Td_rewriter.Rewrite.stats option
val pool : t -> Td_kernel.Skb_pool.t option
val hypervisor : t -> Td_xen.Hypervisor.t option
val dom0_domain : t -> Td_xen.Domain.t option

(* traffic *)

val transmit : t -> nic:int -> payload:string -> bool
(** Push one packet down the configuration's full transmit path; [false]
    when the driver dropped it. The frame on the wire carries an ethernet
    header around [payload]. *)

val transmit_from : ?nic:int -> t -> guest:int -> payload:string -> bool
(** Xen_domU only: transmit [payload] from guest slot [guest]'s own
    netfront channel (its first channel, or the one on [nic] when given).
    [false] when the frame was dropped or the guest's quota denied it; a
    dead guest index or a guest with no channel raises a typed, attributed
    {!Td_xen.Guest_fault.Fault}. *)

val inject_rx : ?guest:int -> t -> nic:int -> payload:string -> unit
(** A frame arrives from the wire addressed to this configuration's
    consumer (guest [guest]'s vif MAC for Xen_twin). Processing happens
    at the next {!pump}. *)

val pump : t -> unit
(** Service pending NIC interrupts (and anything they cascade into). *)

(* the domain registry *)

val create_guest : ?nic:int -> t -> int
(** Register a new guest domain at runtime and return its slot index:
    fresh address space and heap, hypervisor entry, credit-scheduler
    entry, ledger row on first charge, vif MACs on every NIC. For
    Xen_domU a netfront channel is attached (striped over the NICs as
    [slot mod nics], or pinned to [nic]) and its backend port enters the
    bridge fdb. Slots are never reused — at most 256 over a world's
    lifetime ({!Config_error} beyond that, or for configurations without
    guests). *)

val destroy_guest : t -> guest:int -> unit
(** Tear the guest down completely: deliver its queued twin-path frames,
    drain and {!Td_kernel.Xen_netio.close} its channels (revoking every
    grant and unmapping its doorbell page from dom0), remove its bridge
    port and fdb/demux entries, drop it from the scheduler and the
    hypervisor, forget its quota buckets, fold its ledger row into the
    [Ledger.retired_row] aggregate, and free its frames. The slot becomes
    a tombstone: a stale index faults typed
    ({!Td_xen.Guest_fault.Fault}), and conservation still holds across
    the destruction. *)

val guest_alive : t -> guest:int -> bool

val guest_slots : t -> int
(** Slots ever allocated (live + tombstones); slot indices are
    [0 .. guest_slots - 1]. *)

(* observation *)

val wire_tx_frames : t -> int
val wire_tx_bytes : t -> int
val delivered_rx_frames : t -> int
val delivered_rx_frames_to : t -> guest:int -> int
(** Frames delivered to the named slot since the last
    {!reset_measurement} (0 for tombstones — the count dies with the
    guest). *)

val guest_count : t -> int
(** Live guest domains (tombstones excluded). *)

val delivered_rx_bytes : t -> int

val rx_last_payload : t -> string option
(** Most recent payload delivered to the consumer. Kept for diagnostics:
    use {!rx_pop} to drain frames without losing any. *)

val rx_pop : t -> string option
(** Pop the oldest undelivered received payload. Every frame handed to
    the consumer is queued here in delivery order; popping is how
    netchannel (and tests) consume traffic without dropping frames that
    arrived in the same pump. *)

val rx_queued : t -> int
(** Payloads currently waiting in the receive queue. *)

val rx_drops : t -> int
(** Frames discarded because the receive queue was full (each also bumps
    the ["world.rx_drops"] counter when observability is on). *)

val reset_measurement : t -> unit
(** Zero the ledger and traffic counters (driver/NIC state persists).
    When observability is enabled this also resets the {!Td_obs.Metrics}
    registry and clears the {!Td_obs.Trace} ring, so metrics snapshotted
    at the end of a run cover exactly the measured window. *)

(* housekeeping paths (run in dom0 by the VM instance) *)

val tick : t -> unit
(** Advance the dom0 kernel's timer wheel one tick; every ten ticks the
    driver watchdog runs for each NIC — in dom0, on the VM instance, as
    §3.1 prescribes. For Xen_domU the tick also services each I/O channel
    and is the adaptive doorbell's window boundary (poll entry /
    idle-hysteresis fallback, see {!Td_kernel.Xen_netio}). *)

val shutdown : t -> unit
(** Guest quiesce: drain every I/O channel completely (both directions,
    whatever mode each is in) so partially staged notification batches
    are delivered, not dropped. After shutdown [staged_frames t = 0].
    Idempotent; the world remains usable. *)

val staged_frames : t -> int
(** Frames staged on all I/O channels awaiting notification or poll. *)

val netio_conserved : t -> bool
(** Frame conservation over all I/O channels
    ({!Td_kernel.Xen_netio.conserved}). *)

val netio_suppressed_hypercalls : t -> int
val netio_suppressed_virqs : t -> int
val netio_mode_switches : t -> int

val netio_tx_mode : t -> nic:int -> Td_kernel.Xen_netio.mode
val netio_rx_mode : t -> nic:int -> Td_kernel.Xen_netio.mode
(** Adaptive state of the boot guest's channel on [nic] (always
    [Interrupt] with the doorbell off or the channel gone). *)

(* per-world engine observability *)

val fault_injected : t -> int
val fault_lost : t -> int
(** This world's injection/lost-frame counters — read under its private
    fault engine when it has one, the ambient engine otherwise. *)

val quota_throttled : t -> int
(** Quota denials under this world's engine (ambient when none). *)

val doorbell_pages_mapped : t -> int
(** Doorbell pages currently mapped in dom0's doorbell window — one per
    open doorbell channel; the "no dangling mapping" invariant is that
    this returns to its prior value after a {!destroy_guest}. *)

val run_watchdog : t -> nic:int -> unit
val read_stats : t -> nic:int -> int array
(** The driver's statistics block (tx_packets, tx_bytes, rx_packets,
    rx_bytes, tx_dropped, rx_alloc_fail, watchdog_runs, stats_mpc),
    copied out by [e1000_get_stats]'s string move. *)

val run_set_mtu : t -> nic:int -> mtu:int -> unit
val run_set_rx_mode : t -> nic:int -> promisc:bool -> unit
val mask_dom0_interrupts : t -> unit
val unmask_dom0_interrupts : t -> unit

val cpu_state : t -> Td_cpu.State.t
(** The simulated CPU (for diagnostics). *)

val interp : t -> Td_cpu.Interp.t
(** The interpreter driving all driver executions in this world — attach
    a {!Td_cpu.Profiler} to it for per-routine cycle profiles. *)

exception Driver_aborted of string
(** Raised when the hypervisor driver instance faults (SVM violation or
    watchdog timeout); the hypervisor survives — only the driver dies.
    Under the {!Config.Fail_stop} recovery policy the abort propagates to
    the caller and the NIC stays quarantined; under [Restart] /
    [Restart_replay] the supervisor restarts the twin and callers see
    [None]-style degradation (a dropped frame, a retried config call)
    instead of the exception. *)

(* driver supervisor (§4.5) *)

exception Nic_quarantined of { nic : int }
(** Raised by the traffic and housekeeping entry points when the named
    NIC's driver instance has been quarantined after an unrecovered
    abort. *)

exception Config_error of { domain : string; reason : string }
(** A structurally impossible configuration (e.g. a domU world with no
    NIC, hence no I/O channel to attach the frontend to), attributed to
    the domain it concerns. Raised from {!create} and from {!transmit} —
    typed, so callers can report it instead of dying on a bare
    [Failure]. *)

val recoveries : t -> int
(** Completed supervisor recoveries since the last
    {!reset_measurement}. *)

val replayed_frames : t -> int
(** TX frames replayed on a fresh instance ([Restart_replay] only). *)

val is_quarantined : t -> nic:int -> bool

val all_serviceable : t -> bool
(** No NIC is quarantined — the 50k-frame soak's exit criterion. *)

val shadow_mtu : t -> nic:int -> int
val shadow_promisc : t -> nic:int -> bool
(** The supervisor's shadow copy of guest-applied configuration, captured
    on the live {!run_set_mtu} / {!run_set_rx_mode} paths and re-applied
    after a restart. *)

open Td_misa
open Td_mem
open Td_cpu
open Td_xen
open Td_kernel

exception Driver_aborted of string
exception Nic_quarantined of { nic : int }

exception Config_error of { domain : string; reason : string }

let () =
  Printexc.register_printer (function
    | Driver_aborted r -> Some (Printf.sprintf "Driver_aborted(%s)" r)
    | Nic_quarantined { nic } -> Some (Printf.sprintf "Nic_quarantined(%d)" nic)
    | Config_error { domain; reason } ->
        Some (Printf.sprintf "Config_error(%s: %s)" domain reason)
    | _ -> None)

type driver_image = {
  prog : Program.t;
  e_init : int;
  e_xmit : int;
  e_intr : int;
  e_watchdog : int;
  e_get_stats : int;
  e_set_mtu : int;
  e_set_rx_mode : int;
}

(* shadow state (§4.5): the little configuration the supervisor needs to
   rebuild a twin instance after an abort. Ring geometry is not stored —
   re-running e1000_init re-derives it; what cannot be re-derived is the
   configuration the guest applied through the driver since boot. *)
type shadow_state = {
  s_mmio_base : int;
  mutable s_mtu : int;
  mutable s_promisc : bool;
}

type nic_port = {
  dev : Td_nic.E1000_dev.t;
  nd : Netdev.t;
  mac : string;
  gmac : string;
  wire : Td_nic.Wire.counters;
  mutable pending_irq : int;
  mutable quarantined : bool;
  shadow : shadow_state;
}

(* One registered domain: its Xen domain, address space, netfront
   channel(s) and receive-side state. Slot [g] always holds domain id
   [g + 1]; slots are never reused, so domain ids are unique for the
   world's lifetime and a destroyed guest leaves a [None] tombstone. *)
type guest_slot = {
  gs_dom : Domain.t;
  gs_space : Addr_space.t;
  mutable gs_netios : (int * Xen_netio.t) array;
      (** (NIC index, channel), in attach order; Xen_domU only *)
  gs_rx_pending : string Queue.t;  (** demuxed, awaiting guest schedule *)
  mutable gs_rx_count : int;
}

type t = {
  cfg : Config.t;
  tuning : Config.tuning;
  shard : int;
      (** this world's shard index: selects its stlb partition and the
          per-queue doorbell words of its I/O channels ({!Mq}) *)
  hyp_stlb_vaddr : int;  (** base of this shard's stlb partition *)
  phys : Phys_mem.t;
  dom0_space : Addr_space.t;
  xen_space : Addr_space.t;
  registry : Code_registry.t;
  natives : Native.t;
  km : Kmem.t;
  sup : Support.t;
  led : Ledger.t;
  cpu : State.t;
  hyp : Hypervisor.t option;
  dom0 : Domain.t option;
  guest : Domain.t option;  (** first guest, when any *)
  mutable slots : guest_slot option array;  (** the domain registry *)
  quota_engine : Quota.state option;
      (** this world's private quota engine ({!Config.tuning.quota});
          scoped ambient around every entry point, so two worlds (e.g.
          {!Mq} contexts, {!Shard} workers) never share token buckets *)
  mutable fault_engine : Td_fault.Engine.state option;
      (** private injection engine ({!Config.tuning.fault_plan}), armed
          after {!init} so boot is never perturbed; [None] leaves any
          ambient (globally installed) engine visible — the historical
          install-after-create pattern *)
  dom0_stack_top : int;
  costs : Sys_costs.t;
  nics : nic_port array;
  mutable dom0_driver : driver_image;
  mutable hyp_driver : driver_image option;
  reload_dom0 : unit -> driver_image;
      (** re-run the MISA loader for the dom0/VM instance (same base,
          fresh image) — the supervisor's restart path *)
  reload_hyp : (unit -> driver_image) option;  (** Xen_twin only *)
  mutable in_recovery : bool;
  mutable recoveries : int;
  mutable replayed : int;
  svm_hyp : Td_svm.Runtime.t option;
  svm_vm : (Td_svm.Runtime.t * int) option;
      (** VM-instance identity runtime and its stlb vaddr, Xen_twin only *)
  twin : Td_rewriter.Twin.t option;
  skb_pool : Skb_pool.t option;
  vswitch : Bridge.t;
      (** dom0 software bridge: fdb maps guest vif MACs to backend ports,
          one port per netfront channel (Xen_domU only) *)
  mutable demux_skb : Skb.t option;
      (** the sk_buff dom0's netif_rx is currently forwarding — handed to
          the bridge port's [tx] closure out of band (ports speak frames,
          the backend needs the skb) *)
  gmac_index : (string, int) Hashtbl.t;  (** guest MAC -> guest slot *)
  interp : Interp.t;
  timers : Timer_wheel.t;  (** dom0 kernel timers (watchdog housekeeping) *)
  sched : Scheduler.t;  (** orders guest work (packet delivery, §5.3) *)
  mutable rx_frames : int;
  mutable rx_bytes : int;
  mutable rx_last : string option;
  rx_queue : string Queue.t;
      (** every delivered payload, in order, until a consumer pops it *)
  mutable rx_drops : int;  (** frames lost because [rx_queue] was full *)
  mutable tx_drops : int;
  mutable twin_tx_pushes : int;
      (** twin TX ring pushes since the last doorbell hypercall *)
}

(* Guest payloads queue here until the consumer (netchannel, tests) pops
   them; beyond this the stack would push back in a real system, so we
   drop — but count the drop instead of losing the frame silently. *)
let rx_queue_capacity = 4096

let config t = t.cfg
let shard t = t.shard
let nic_count t = Array.length t.nics
let ledger t = t.led
let support t = t.sup
let kmem t = t.km
let dom0_space t = t.dom0_space
let netdev t ~nic = t.nics.(nic).nd
let adapter t ~nic = Td_driver.Adapter.of_netdev t.nics.(nic).nd
let nic_mac t ~nic = t.nics.(nic).mac

let guest_mac t ~nic =
  match t.cfg with
  | Config.Native_linux | Config.Xen_dom0 -> t.nics.(nic).mac
  | Config.Xen_domU | Config.Xen_twin -> t.nics.(nic).gmac

let svm t = t.svm_hyp
let twin_stats t = Option.map (fun tw -> tw.Td_rewriter.Twin.stats) t.twin
let pool t = t.skb_pool
let hypervisor t = t.hyp
let dom0_domain t = t.dom0
let cpu_state t = t.cpu

(* ---- domain registry helpers ---- *)

let guest_name g = Printf.sprintf "guest%d" g

let slot_opt w g =
  if g >= 0 && g < Array.length w.slots then w.slots.(g) else None

(* a dead or unknown guest index is guest-reachable input (a stale handle
   in a control-plane call), so it faults typed and attributed *)
let slot_exn w g ~op =
  match slot_opt w g with
  | Some s -> s
  | None -> Guest_fault.fail ~domain:(guest_name g) ~op "guest %d is not live" g

let iter_slots w f =
  Array.iteri (fun g s -> match s with Some s -> f g s | None -> ()) w.slots

(* channels in (slot, attach) order: deterministic, and identical to the
   historical per-NIC array order for a single boot guest *)
let iter_netios w f =
  iter_slots w (fun _ s -> Array.iter (fun (_, io) -> f io) s.gs_netios)

let fold_netios w f acc =
  let r = ref acc in
  iter_netios w (fun io -> r := f !r io);
  !r

(* guest0's channel on [nic] — the historical [netios.(nic)] layout *)
let netio_on w ~nic =
  match slot_opt w 0 with
  | None -> None
  | Some s ->
      Array.fold_left
        (fun acc (n, io) ->
          match acc with Some _ -> acc | None -> if n = nic then Some io else None)
        None s.gs_netios

(* Per-world engine scoping: every public entry point runs with this
   world's private quota/fault engines (when configured) ambient on the
   calling OCaml domain, restoring whatever was ambient before on exit.
   Worlds without a private engine leave the ambient one visible — the
   historical install-after-create composition keeps working. *)
let scoped w f =
  let f =
    match w.fault_engine with
    | Some st -> fun () -> Td_fault.Engine.with_state st f
    | None -> f
  in
  match w.quota_engine with
  | Some st -> Quota.with_state st f
  | None -> f ()

(* ---- construction ---- *)

let host_mac i = Printf.sprintf "\x02\x00\x00\x00\x00%c" (Char.chr i)
let vif_mac g i = Printf.sprintf "\x02\x01%c\x00\x00%c" (Char.chr g) (Char.chr i)
let client_mac i = Printf.sprintf "\x02\x02\x00\x00\x00%c" (Char.chr i)
let ethertype_ip = "\x08\x00"
let eth_header_bytes = 14

let build_frame ~dst ~src ~payload = dst ^ src ^ ethertype_ip ^ payload

let entries_of (prog : Program.t) =
  {
    prog;
    e_init = Program.addr_of_label prog Td_driver.E1000_driver.entry_init;
    e_xmit = Program.addr_of_label prog Td_driver.E1000_driver.entry_xmit;
    e_intr = Program.addr_of_label prog Td_driver.E1000_driver.entry_intr;
    e_watchdog =
      Program.addr_of_label prog Td_driver.E1000_driver.entry_watchdog;
    e_get_stats =
      Program.addr_of_label prog Td_driver.E1000_driver.entry_get_stats;
    e_set_mtu =
      Program.addr_of_label prog Td_driver.E1000_driver.entry_set_mtu;
    e_set_rx_mode =
      Program.addr_of_label prog Td_driver.E1000_driver.entry_set_rx_mode;
  }

let needs_xen = function
  | Config.Native_linux -> false
  | Config.Xen_dom0 | Config.Xen_domU | Config.Xen_twin -> true

let needs_guest = function
  | Config.Native_linux | Config.Xen_dom0 -> false
  | Config.Xen_domU | Config.Xen_twin -> true

(* stlb partitions: the region between [Layout.stlb_base] and
   [Layout.hyp_scratch_base] (1 MiB) holds 32 disjoint 32 KiB stlb
   tables; shard [s] owns partition [s mod 32]. Partition 0 IS the
   historical table, so shard 0 is bit-identical to an unsharded world. *)
let stlb_partitions =
  (Layout.hyp_scratch_base - Layout.stlb_base)
  / (Layout.stlb_entries * Layout.stlb_entry_bytes)

let stlb_partition_base shard =
  Layout.stlb_base
  + (shard mod stlb_partitions) * (Layout.stlb_entries * Layout.stlb_entry_bytes)

let create ?(nics = 5) ?(guests = 1) ?(upcall_set = []) ?(pool_entries = 1024)
    ?(costs = Sys_costs.default) ?spill_everything ?rewrite_style
    ?cache_probes ?(map_pairs = true) ?(shard = 0)
    ?(tuning = Config.default_tuning) cfg =
  if guests < 1 then invalid_arg "World.create: guests must be >= 1";
  if guests > 256 then invalid_arg "World.create: at most 256 guests";
  if shard < 0 then invalid_arg "World.create: shard must be >= 0";
  if tuning.Config.notify_batch < 1 then
    invalid_arg "World.create: notify_batch must be >= 1";
  let hyp_stlb_vaddr = stlb_partition_base shard in
  let phys = Phys_mem.create ~frames:200_000 () in
  let dom0_space = Addr_space.create ~name:"dom0" phys in
  Addr_space.heap_init dom0_space ~base:Layout.dom0_heap_base
    ~limit:Layout.dom0_heap_limit;
  let xen_space = Addr_space.create ~name:"xen" phys in
  Addr_space.alloc_region xen_space
    ~vaddr:(Layout.hyp_stack_top - (Layout.hyp_stack_pages * Layout.page_size))
    ~pages:Layout.hyp_stack_pages;
  Addr_space.alloc_region xen_space ~vaddr:Layout.hyp_scratch_base ~pages:1;
  let guest_spaces =
    if needs_guest cfg then
      Array.init guests (fun i ->
          let g =
            Addr_space.create ~name:(Printf.sprintf "guest%d" i) phys
          in
          Addr_space.heap_init g ~base:Layout.guest_heap_base
            ~limit:Layout.guest_heap_limit;
          g)
    else [||]
  in
  let registry = Code_registry.create () in
  let natives = Native.create () in
  let km = Kmem.create dom0_space in
  let sup = Support.create ~space:dom0_space ~kmem:km in
  let led = Ledger.create () in
  let cpu = State.create ~hyp_space:xen_space dom0_space in
  let dom0_stack_top =
    Addr_space.heap_alloc dom0_space (4 * Layout.page_size)
    + (4 * Layout.page_size)
  in
  (* domains & hypervisor *)
  let hyp, dom0, guest_doms =
    if needs_xen cfg then begin
      let h = Hypervisor.create ~costs ~ledger:led ~xen_space ~cpu () in
      let d0 =
        Domain.create ~id:0 ~name:"dom0" ~kind:Domain.Driver_domain
          ~space:dom0_space
      in
      Domain.init_vif d0 ~vaddr:(Kmem.alloc km 4);
      Hypervisor.add_domain h d0;
      let gs =
        Array.mapi
          (fun i space ->
            let g =
              Domain.create ~id:(i + 1)
                ~name:(Printf.sprintf "guest%d" i)
                ~kind:Domain.Guest ~space
            in
            Hypervisor.add_domain h g;
            g)
          guest_spaces
      in
      (Some h, Some d0, gs)
    end
    else (None, None, [||])
  in
  let guest = if Array.length guest_doms > 0 then Some guest_doms.(0) else None in
  (* NICs + netdevs *)
  let ports =
    Array.init nics (fun i ->
        let wire = Td_nic.Wire.fresh_counters () in
        let mac = host_mac i in
        let dev =
          Td_nic.E1000_dev.create ~dma:dom0_space ~mac
            ~queues:tuning.Config.queues ~rss_seed:tuning.Config.rss_seed
            ~tx_frame:(Td_nic.Wire.sink wire) ()
        in
        let mmio = Td_nic.E1000_dev.mmio_vaddr i in
        Td_nic.E1000_dev.attach dev ~space:dom0_space ~vaddr:mmio;
        let nd = Netdev.alloc km dom0_space ~mmio_base:mmio ~mac in
        {
          dev;
          nd;
          mac;
          gmac = vif_mac 0 i;
          wire;
          pending_irq = 0;
          quarantined = false;
          shadow = { s_mmio_base = mmio; s_mtu = 1500; s_promisc = false };
        })
  in
  Array.iter
    (fun p ->
      Td_nic.E1000_dev.set_irq_handler p.dev (fun () ->
          p.pending_irq <- p.pending_irq + 1);
      (* per-queue MSI-X vectors all funnel into the same pending count:
         the single simulated vCPU services them through one pump, so
         queues>1 changes steering/vectors but not interrupt accounting *)
      for v = 1 to Td_nic.E1000_dev.queues p.dev - 1 do
        Td_nic.E1000_dev.set_msix_handler p.dev ~vector:v (fun () ->
            p.pending_irq <- p.pending_irq + 1)
      done)
    ports;
  (* support natives & driver images *)
  Support.register_dom0_natives sup natives;
  let dom0_support n = Support.dom0_symtab sup natives n in
  let twin, dom0_driver, hyp_driver, svm_hyp, svm_vm, skb_pool, reload_dom0,
      reload_hyp =
    match cfg with
    | Config.Native_linux | Config.Xen_dom0 | Config.Xen_domU ->
        let load f =
          entries_of
            (f ~name:"e1000"
               ~source:(Td_driver.E1000_driver.source ())
               ~base:Layout.vm_driver_code_base ~symbols:dom0_support ~registry)
        in
        ( None,
          load Td_rewriter.Loader.load,
          None,
          None,
          None,
          None,
          (fun () -> load Td_rewriter.Loader.reload),
          None )
    | Config.Xen_twin ->
        let twin =
          Td_rewriter.Twin.derive ?spill_everything ?style:rewrite_style
            ?cache_probes
            (Td_driver.E1000_driver.source ())
        in
        (* VM instance: identity stlb, dom0-resolved symbols *)
        let vm_stlb = Addr_space.heap_alloc dom0_space (4096 * 8) in
        let vm_scratch = Kmem.alloc km 64 in
        let vm_rt = Td_svm.Runtime.create_identity ~dom0:dom0_space ~stlb_vaddr:vm_stlb in
        Td_svm.Runtime.register_natives vm_rt natives;
        ignore
          (Native.register natives "__svm_call@vm" (fun st ->
               State.set st Reg.EAX (State.stack_arg st 0)));
        let vm_syms =
          Td_rewriter.Loader.overlay
            (Td_rewriter.Loader.svm_symbols ~runtime:vm_rt ~natives
               ~stlb_vaddr:vm_stlb ~scratch_vaddr:vm_scratch)
            (Td_rewriter.Loader.overlay
               (fun n ->
                 if n = Td_rewriter.Symbols.svm_call then
                   Native.address_of natives "__svm_call@vm"
                 else None)
               dom0_support)
        in
        let vm_prog =
          Td_rewriter.Loader.load ~name:"e1000.vm"
            ~source:twin.Td_rewriter.Twin.rewritten
            ~base:Layout.vm_driver_code_base ~symbols:vm_syms ~registry
        in
        (* hypervisor instance *)
        let h = Option.get hyp and d0 = Option.get dom0 in
        let hyp_rt =
          Td_svm.Runtime.create_hypervisor ~map_pairs
            ~window_pages:tuning.Config.map_window_pages
            ~stlb_vaddr:hyp_stlb_vaddr ~dom0:dom0_space ~hyp:xen_space ()
        in
        Td_svm.Runtime.register_natives hyp_rt natives;
        let pool =
          Skb_pool.create km dom0_space ~entries:pool_entries
            ~buf_size:Skb.default_buf_bytes
        in
        (* packet buffers (struct, linear area, fragment frame) are
           persistently mapped into the hypervisor *)
        Skb_pool.iter pool (fun skb ->
            ignore (Td_svm.Runtime.persistent_map hyp_rt skb.Skb.addr);
            ignore (Td_svm.Runtime.persistent_map hyp_rt (Skb.head skb));
            ignore
              (Td_svm.Runtime.persistent_map hyp_rt
                 (Skb_pool.frag_buffer pool skb)));
        let ctx =
          {
            Support.hyp = h;
            dom0 = d0;
            svm = hyp_rt;
            pool;
            hyp_netif_rx = (fun _ -> ());
          }
        in
        let native_set =
          List.filter
            (fun n -> not (List.mem n upcall_set))
            Support.fast_path_names
        in
        Support.register_hyp_natives sup natives ~ctx ~native_set;
        let ct =
          Td_svm.Call_table.create ~vm_code_base:Layout.vm_driver_code_base
            ~vm_code_size:(Program.size_bytes vm_prog)
            ~resolver:(fun addr ->
              (* a function pointer to a dom0 kernel routine resolves to
                 its hypervisor-side binding (native or upcall stub) *)
              match Native.name_of natives addr with
              | Some name when Filename.check_suffix name "@dom0" ->
                  Native.address_of natives
                    (Filename.chop_suffix name "@dom0" ^ "@hyp")
              | Some _ | None -> None)
        in
        Td_svm.Call_table.register_native ct natives "__svm_call@hyp";
        let hyp_syms =
          Td_rewriter.Loader.overlay
            (Td_rewriter.Loader.svm_symbols ~runtime:hyp_rt ~natives
               ~stlb_vaddr:hyp_stlb_vaddr
               ~scratch_vaddr:Layout.hyp_scratch_base)
            (Td_rewriter.Loader.overlay
               (fun n ->
                 if n = Td_rewriter.Symbols.svm_call then
                   Native.address_of natives "__svm_call@hyp"
                 else None)
               (fun n -> Support.hyp_symtab sup natives n))
        in
        let load_hyp f =
          entries_of
            (f ~name:"e1000.hyp" ~source:twin.Td_rewriter.Twin.rewritten
               ~base:Layout.hyp_driver_code_base ~symbols:hyp_syms ~registry)
        in
        ( Some twin,
          entries_of vm_prog,
          Some (load_hyp Td_rewriter.Loader.load),
          Some hyp_rt,
          Some (vm_rt, vm_stlb),
          Some pool,
          (fun () ->
            entries_of
              (Td_rewriter.Loader.reload ~name:"e1000.vm"
                 ~source:twin.Td_rewriter.Twin.rewritten
                 ~base:Layout.vm_driver_code_base ~symbols:vm_syms ~registry)),
          Some (fun () -> load_hyp Td_rewriter.Loader.reload) )
  in
  (* per-domain quotas: a private, per-world engine — scoped ambient
     around every entry point rather than installed process-globally, so
     concurrent worlds (Mq contexts, shard workers) cannot share or
     clobber each other's buckets. dom0 is exempt — throttling the driver
     domain's service work would deadlock the paths that drain on behalf
     of throttled guests. Simulated time for the token buckets is ledger
     cycles at the nominal 3 GHz. *)
  let quota_engine =
    match tuning.Config.quota with
    | Some l ->
        let exempt =
          match dom0 with Some d -> [ Domain.name d ] | None -> [ "dom0" ]
        in
        Some
          (Quota.make
             ~now:(fun () -> float_of_int (Ledger.grand_total led) /. 3e9)
             ~exempt l)
    | None -> None
  in
  let w =
    {
      cfg;
      tuning;
      shard;
      hyp_stlb_vaddr;
      phys;
      dom0_space;
      xen_space;
      registry;
      natives;
      km;
      sup;
      led;
      cpu;
      hyp;
      dom0;
      guest;
      slots =
        Array.init (Array.length guest_doms) (fun g ->
            Some
              {
                gs_dom = guest_doms.(g);
                gs_space = guest_spaces.(g);
                gs_netios = [||];
                gs_rx_pending = Queue.create ();
                gs_rx_count = 0;
              });
      quota_engine;
      fault_engine = None;
      dom0_stack_top;
      costs;
      nics = ports;
      dom0_driver;
      hyp_driver;
      reload_dom0;
      reload_hyp;
      in_recovery = false;
      recoveries = 0;
      replayed = 0;
      svm_hyp;
      svm_vm;
      twin;
      skb_pool;
      vswitch = Bridge.create ();
      demux_skb = None;
      gmac_index = Hashtbl.create 8;
      interp =
        (let i = Interp.create cpu registry natives in
         Interp.set_compile_threshold i tuning.Config.compile_threshold;
         Interp.set_superblock_cap i tuning.Config.superblock_cap;
         i);
      timers = Timer_wheel.create ();
      sched =
        (let sc = Scheduler.create () in
         Array.iter (Scheduler.add sc) guest_doms;
         sc);
      rx_frames = 0;
      rx_bytes = 0;
      rx_last = None;
      rx_queue = Queue.create ();
      rx_drops = 0;
      tx_drops = 0;
      twin_tx_pushes = 0;
    }
  in
  (* every (guest, nic) vif MAC demuxes to its guest *)
  Array.iteri
    (fun i _ ->
      for g = 0 to max 0 (Array.length guest_doms - 1) do
        Hashtbl.replace w.gmac_index (vif_mac g i) g
      done;
      ignore i)
    ports;
  w

(* ---- driver invocation ---- *)

let interp w = w.interp

let observe_invocation w before =
  if Td_obs.Control.enabled () then
    Td_obs.Metrics.observe
      (Td_obs.Metrics.histogram "driver.invoke.cycles")
      (w.cpu.State.cycles - before)

let run_driver w ~entry ~args ~stack =
  State.set w.cpu Reg.ESP stack;
  let before = w.cpu.State.cycles in
  let abort reason =
    Ledger.charge w.led Ledger.Driver (w.cpu.State.cycles - before);
    observe_invocation w before;
    raise (Driver_aborted reason)
  in
  let result =
    try Interp.call (interp w) ~entry ~args with
    | Td_svm.Runtime.Fault { addr; reason } ->
        abort (Printf.sprintf "SVM fault at 0x%x: %s" addr reason)
    | Interp.Timeout _ -> abort "watchdog timeout"
    | Addr_space.Page_fault { space; addr } ->
        abort (Printf.sprintf "page fault in %s at 0x%x" space addr)
    | Upcall.Upcall_failed { routine } ->
        abort (Printf.sprintf "upcall %s failed in dom0" routine)
    | Guest_fault.Fault { op; reason } ->
        abort (Printf.sprintf "guest fault in %s: %s" op reason)
    | Quota.Quota_exceeded { domain; resource } ->
        abort (Printf.sprintf "quota exceeded: %s for domain %s" resource domain)
    (* under fault injection a corrupted driver can drive the model into
       states the pristine system never reaches (bogus register numbers,
       unresolved indirect calls); contain them as aborts — but only when
       a plan is installed, so genuine model bugs still crash loudly *)
    | ( Invalid_argument _ | Failure _ | Interp.Fault _
      | Phys_mem.Bad_frame _ | Phys_mem.Out_of_frames _
      | Addr_space.Heap_exhausted _ | Hypervisor.No_domains _ ) as e
      when Option.is_some (Td_fault.Engine.plan ()) ->
        abort (Printf.sprintf "model fault: %s" (Printexc.to_string e))
  in
  Ledger.charge w.led Ledger.Driver (w.cpu.State.cycles - before);
  observe_invocation w before;
  result

let run_dom0_driver w ~entry ~args =
  match w.hyp with
  | None -> run_driver w ~entry ~args ~stack:w.dom0_stack_top
  | Some h ->
      Hypervisor.run_in h (Option.get w.dom0) (fun () ->
          run_driver w ~entry ~args ~stack:w.dom0_stack_top)

let run_hyp_driver w ~entry ~args =
  (* no domain switch: the hypervisor driver runs from any guest context *)
  run_driver w ~entry ~args ~stack:Layout.hyp_stack_top

(* ---- driver supervisor (§4.5) ---- *)

let recovery_enabled w = w.tuning.Config.recovery <> Config.Fail_stop
let is_quarantined w ~nic = w.nics.(nic).quarantined
let all_serviceable w = Array.for_all (fun p -> not p.quarantined) w.nics

(* function pointers in shared data always hold VM-instance code
   addresses; reinstalled after every (re)init of the dom0 instance *)
let install_link_fn w (p : nic_port) =
  let a = Td_driver.Adapter.of_netdev p.nd in
  Td_driver.Adapter.set_field a Td_driver.Adapter.o_link_fn
    (Program.addr_of_label w.dom0_driver.prog
       Td_driver.E1000_driver.entry_check_link)

(* Free the dead instance's kernel memory — adapter, descriptor rings,
   shadow sk_buff arrays and the ring sk_buffs they reference — so
   repeated recoveries cannot exhaust the dom0 heap. Best-effort: the
   walk trusts the adapter only while its ring sizes still hold their
   init-time constants (a corrupted instance may have scribbled
   anywhere); on any doubt it leaks a little instead of poisoning the
   allocator. Pool-owned sk_buffs are skipped — {!Skb_pool.reset}
   reclaims those wholesale. *)
let teardown_driver_memory w (q : nic_port) =
  let pooled addr =
    match w.skb_pool with
    | Some pool -> Skb_pool.owns pool (Skb.of_addr w.dom0_space addr)
    | None -> false
  in
  let free_skb addr =
    if addr <> 0 && not (pooled addr) then
      try
        let skb = Skb.of_addr w.dom0_space addr in
        if Skb.capacity skb > 0 && Skb.capacity skb <= Layout.page_size then begin
          Skb.set_refcnt skb 1;
          Skb.free w.km skb
        end
      with _ -> ()
  in
  try
    let priv = Netdev.priv q.nd in
    if priv <> 0 then begin
      let a = Td_driver.Adapter.of_netdev q.nd in
      let fld = Td_driver.Adapter.field a in
      let tx_size = fld Td_driver.Adapter.o_tx_size
      and rx_size = fld Td_driver.Adapter.o_rx_size in
      if
        tx_size = Td_driver.E1000_driver.tx_ring_entries
        && rx_size = Td_driver.E1000_driver.rx_ring_entries
      then begin
        let rd addr = Addr_space.read w.dom0_space addr Width.W32 in
        let rx_arr = fld Td_driver.Adapter.o_rx_skb
        and tx_arr = fld Td_driver.Adapter.o_tx_skb in
        if rx_arr <> 0 then begin
          for i = 0 to rx_size - 1 do
            free_skb (rd (rx_arr + (4 * i)))
          done;
          Kmem.free w.km rx_arr (4 * rx_size)
        end;
        if tx_arr <> 0 then begin
          for i = 0 to tx_size - 1 do
            (* 0 = empty slot, 1 = fragment marker, else an sk_buff *)
            let v = rd (tx_arr + (4 * i)) in
            if v > 1 then free_skb v
          done;
          Kmem.free w.km tx_arr (4 * tx_size)
        end;
        let tx_ring = fld Td_driver.Adapter.o_tx_ring
        and rx_ring = fld Td_driver.Adapter.o_rx_ring in
        if tx_ring <> 0 then
          Kmem.free w.km tx_ring (tx_size * Td_nic.Regs.desc_bytes);
        if rx_ring <> 0 then
          Kmem.free w.km rx_ring (rx_size * Td_nic.Regs.desc_bytes)
      end;
      Kmem.free w.km priv Td_driver.Adapter.struct_bytes;
      Netdev.set_priv q.nd 0
    end
  with _ -> ()

(* Tear the twin down and rebuild it from shadow state. The blast radius
   of a corrupted instance is the shared driver state (both instances run
   the same data structures, §3.1), so every port is quarantined for the
   duration and re-initialised before service resumes. Injection is
   masked throughout: recovery must make forward progress even under an
   aggressive plan. *)
let recover w ~nic ~reason =
  w.in_recovery <- true;
  Array.iter (fun q -> q.quarantined <- true) w.nics;
  Fun.protect
    ~finally:(fun () -> w.in_recovery <- false)
    (fun () ->
      Td_fault.Engine.suspend (fun () ->
          (* 1. invalidate all translations and unmap the window pairs *)
          Option.iter Td_svm.Runtime.flush w.svm_hyp;
          (match w.svm_vm with
          | Some (rt, _) -> Td_svm.Runtime.flush rt
          | None -> ());
          (* 2. reclaim every sk_buff pool slot, in flight or not *)
          Option.iter Skb_pool.reset w.skb_pool;
          (* 3. re-run the MISA loader over the dead instance(s) *)
          w.dom0_driver <- w.reload_dom0 ();
          (match w.reload_hyp with
          | Some f -> w.hyp_driver <- Some (f ())
          | None -> ());
          (* 4. re-pin the packet-buffer pool into the hypervisor *)
          (match (w.svm_hyp, w.skb_pool) with
          | Some rt, Some pool ->
              Skb_pool.iter pool (fun skb ->
                  ignore (Td_svm.Runtime.persistent_map rt skb.Skb.addr);
                  ignore (Td_svm.Runtime.persistent_map rt (Skb.head skb));
                  ignore
                    (Td_svm.Runtime.persistent_map rt
                       (Skb_pool.frag_buffer pool skb)))
          | _ -> ());
          (* 5. per NIC: device reset, driver re-init, shadow restore *)
          Array.iter
            (fun q ->
              teardown_driver_memory w q;
              Td_fault.Engine.note_lost (Td_nic.E1000_dev.reset q.dev);
              q.pending_irq <- 0;
              Netdev.repair q.nd ~mmio_base:q.shadow.s_mmio_base ~mac:q.mac
                ~mtu:q.shadow.s_mtu;
              ignore
                (run_dom0_driver w ~entry:w.dom0_driver.e_init
                   ~args:[ q.nd.Netdev.addr ]);
              install_link_fn w q;
              (* restore captured configuration through the driver's own
                 entry points, exactly as the guest originally applied it *)
              if q.shadow.s_mtu <> 1500 then
                ignore
                  (run_dom0_driver w ~entry:w.dom0_driver.e_set_mtu
                     ~args:[ q.nd.Netdev.addr; q.shadow.s_mtu ]);
              if q.shadow.s_promisc then
                ignore
                  (run_dom0_driver w ~entry:w.dom0_driver.e_set_rx_mode
                     ~args:[ q.nd.Netdev.addr; 1 ]);
              q.quarantined <- false)
            w.nics));
  w.recoveries <- w.recoveries + 1;
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.bump "fault.recoveries";
    Td_obs.Trace.emit (Td_obs.Trace.Driver_recovery { nic; reason })
  end

(* Wrap one driver invocation on behalf of [nic]. [None] means the
   invocation aborted and the system recovered; under [Fail_stop] the
   abort propagates unchanged (with the port left quarantined). *)
let supervised w ~nic f =
  try Some (f ())
  with Driver_aborted reason when not w.in_recovery ->
    w.nics.(nic).quarantined <- true;
    if recovery_enabled w then begin
      recover w ~nic ~reason;
      None
    end
    else raise (Driver_aborted reason)

(* watchdog hang detection: a latched TX DMA engine never completes a
   send, so the watchdog declares the instance hung and restarts it *)
let check_hang w ~nic =
  if Td_nic.E1000_dev.dma_stuck w.nics.(nic).dev && not w.in_recovery then begin
    let reason = "watchdog declared hang: TX DMA stuck" in
    w.nics.(nic).quarantined <- true;
    if recovery_enabled w then recover w ~nic ~reason
    else raise (Driver_aborted reason)
  end

(* TX abort policy: [Restart] drops the in-flight frame (counted lost);
   [Restart_replay] retries it once on the fresh instance, with injection
   masked so the replay itself cannot be re-aborted by the plan *)
let replay_tx w attempt =
  match w.tuning.Config.recovery with
  | Config.Fail_stop -> false (* unreachable: supervised re-raised *)
  | Config.Restart ->
      Td_fault.Engine.note_lost 1;
      false
  | Config.Restart_replay -> (
      w.replayed <- w.replayed + 1;
      if Td_obs.Control.enabled () then Td_obs.Metrics.bump "fault.replayed";
      match
        Td_fault.Engine.suspend (fun () ->
            try Some (attempt ()) with Driver_aborted _ -> None)
      with
      | Some ok -> ok
      | None ->
          Td_fault.Engine.note_lost 1;
          false)

let run_tx w ~nic attempt =
  match supervised w ~nic attempt with
  | Some ok -> ok
  | None -> replay_tx w attempt

(* ---- late initialisation (driver init + hooks) ---- *)

let charge_dom0_cat w n = Ledger.charge w.led Ledger.Dom0 n
let charge_domU_cat w n = Ledger.charge w.led Ledger.DomU n
let charge_xen_cat w n = Ledger.charge w.led Ledger.Xen n

let count_rx ?(guest = 0) w payload =
  w.rx_frames <- w.rx_frames + 1;
  w.rx_bytes <- w.rx_bytes + String.length payload;
  (match slot_opt w guest with
  | Some s -> s.gs_rx_count <- s.gs_rx_count + 1
  | None -> ());
  w.rx_last <- Some payload;
  if Queue.length w.rx_queue >= rx_queue_capacity then begin
    w.rx_drops <- w.rx_drops + 1;
    if Td_obs.Control.enabled () then Td_obs.Metrics.bump "world.rx_drops"
  end
  else Queue.push payload w.rx_queue

let free_any_skb w skb =
  match w.skb_pool with
  | Some pool when Skb_pool.owns pool skb -> Skb_pool.release pool skb
  | Some _ | None -> Skb.free w.km skb

(* ---- netfront channel attach (Xen_domU) ---- *)

(* Create one netfront/netback channel pair for guest slot [g] on NIC
   [nic] and register its backend port on the bridge — the per-(guest,
   NIC) plumbing [init] runs for the boot guest and [create_guest] for
   runtime ones. Returns the bridge port so the caller can enter the
   guest's vif MACs into the fdb. *)
let attach_channel w ~guest:g ~nic =
  let h = Option.get w.hyp and d0 = Option.get w.dom0 in
  let s = slot_exn w g ~op:"World.attach_channel" in
  let p = w.nics.(nic) in
  let doorbell =
    if w.tuning.Config.doorbell then
      Some
        {
          Xen_netio.poll_entry_kicks = w.tuning.Config.poll_entry_kicks;
          idle_hysteresis = w.tuning.Config.idle_hysteresis;
          poll_budget = w.tuning.Config.poll_budget;
        }
    else None
  in
  let netio =
    Xen_netio.create ~batch:w.tuning.Config.notify_batch ~queue:w.shard
      ?doorbell ~hyp:h ~dom0:d0 ~guest:s.gs_dom ~kmem:w.km
      ~driver_tx:(fun skb ->
        (* netback's call into the driver: the sk_buff is kmem memory
           and survives a restart, so replay can re-run the transmit on
           the fresh instance *)
        let attempt () =
          ignore
            (run_driver w ~entry:w.dom0_driver.e_xmit
               ~args:[ skb.Skb.addr; p.nd.Netdev.addr ]
               ~stack:w.dom0_stack_top);
          true
        in
        ignore (run_tx w ~nic attempt))
      ()
  in
  Xen_netio.set_guest_rx netio (fun frame ->
      charge_domU_cat w w.costs.Sys_costs.kernel_rx_path;
      let payload =
        String.sub frame eth_header_bytes
          (String.length frame - eth_header_bytes)
      in
      count_rx ~guest:g w payload);
  Xen_netio.post_rx_buffers netio 64;
  s.gs_netios <- Array.append s.gs_netios [| (nic, netio) |];
  (* backend port: the bridge speaks frames, but the backend needs the
     sk_buff dom0's netif_rx is holding — handed over via [demux_skb] *)
  let port =
    {
      Bridge.port_name = Printf.sprintf "vif%d.%d" g nic;
      tx =
        (fun _frame ->
          match w.demux_skb with
          | None -> ()
          | Some skb ->
              w.demux_skb <- None;
              (* netback forwards whole frames: push the MAC header back
                 (eth_type_trans pulled it) *)
              Skb.set_data skb (Skb.data skb - eth_header_bytes);
              Skb.set_len skb (Skb.len skb + eth_header_bytes);
              Xen_netio.deliver_to_guest netio skb);
    }
  in
  Bridge.add_port w.vswitch port;
  port

let init (w : t) =
  (* reclaims evict a mapped pair synchronously inside the hypervisor:
     charge the shootdown against Xen's ledger category *)
  Option.iter
    (fun rt ->
      Td_svm.Runtime.set_reclaim_hook rt (fun () ->
          charge_xen_cat w w.costs.Sys_costs.window_reclaim))
    w.svm_hyp;
  (* with quotas installed, mapped-page window pairs are charged to the
     domain on whose behalf the hypervisor driver is running; the guard
     lives here because td_svm cannot depend on td_xen *)
  (match (w.svm_hyp, w.hyp) with
  | Some rt, Some h when w.tuning.Config.quota <> None ->
      Td_svm.Runtime.set_window_guard rt
        {
          Td_svm.Runtime.acquire =
            (fun ~pages ->
              let domain = Domain.name (Hypervisor.current h) in
              Quota.acquire ~domain Quota.Map_window_pages pages;
              domain);
          release =
            (fun ~owner ~pages ->
              Quota.release ~domain:owner Quota.Map_window_pages pages);
        }
  | _ -> ());
  (* exact stlb.hit accounting: the inline probe's hit path is the xor
     against an stlb entry's second word (offset +4) — watch for it in the
     interpreter and credit the runtime that owns that stlb. The watched
     register still holds the pre-xor dom0 address when the hook fires. *)
  (match (w.svm_hyp, w.svm_vm) with
  | Some hyp_rt, Some (vm_rt, vm_stlb) when w.tuning.Config.stlb_exact_hits ->
      let hyp_hit = w.hyp_stlb_vaddr + 4 and vm_hit = vm_stlb + 4 in
      Interp.add_hook w.interp (fun st insn ->
          match insn with
          | Insn.Alu (Insn.Xor, Operand.Mem m, Operand.Reg r)
            when m.Operand.sym = None && m.Operand.base <> None ->
              if m.Operand.disp = hyp_hit then
                Td_svm.Runtime.note_inline_hit hyp_rt (State.get st r)
              else if m.Operand.disp = vm_hit then
                Td_svm.Runtime.note_inline_hit vm_rt (State.get st r)
          | _ -> ())
  | _ -> ());
  (* run e1000_init for every NIC using the dom0-side instance (the VM
     driver "performs the initialization of the NIC and the driver data
     structures", §3.1) *)
  Array.iter
    (fun p ->
      ignore
        (run_dom0_driver w ~entry:w.dom0_driver.e_init ~args:[ p.nd.Netdev.addr ]);
      (* the kernel installs the link-check ops pointer after
         register_netdev *)
      install_link_fn w p)
    w.nics;
  (* the driver's mod_timer keeps the watchdog running in dom0 — always on
     the VM instance, never in the hypervisor (§3.1); the supervisor rides
     the same timer for hang detection *)
  Array.iteri
    (fun i p ->
      Timer_wheel.add w.timers ~period:10
        ~name:(Printf.sprintf "e1000-watchdog-%d" i)
        (fun () ->
          if not p.quarantined then begin
            check_hang w ~nic:i;
            if not p.quarantined then
              ignore
                (supervised w ~nic:i (fun () ->
                     run_dom0_driver w ~entry:w.dom0_driver.e_watchdog
                       ~args:[ p.nd.Netdev.addr ]))
          end))
    w.nics;
  (* configuration-specific receive plumbing *)
  (match w.cfg with
  | Config.Native_linux ->
      Support.set_netif_rx w.sup (fun skb ->
          charge_dom0_cat w w.costs.Sys_costs.kernel_rx_path;
          count_rx w (Bytes.to_string (Skb.contents skb));
          free_any_skb w skb)
  | Config.Xen_dom0 ->
      Support.set_netif_rx w.sup (fun skb ->
          charge_dom0_cat w w.costs.Sys_costs.kernel_rx_path;
          charge_xen_cat w w.costs.Sys_costs.virt_overhead_rx;
          count_rx w (Bytes.to_string (Skb.contents skb));
          free_any_skb w skb)
  | Config.Xen_domU ->
      let h = Option.get w.hyp and g = Option.get w.guest in
      (* a domU world without a NIC has no I/O channel to attach the
         frontend to: a configuration error attributed to the guest, not
         a crash on the first transmit *)
      if Array.length w.nics = 0 then
        raise
          (Config_error
             {
               domain = Domain.name g;
               reason = "domU configuration without netio (world has no NICs)";
             });
      (* boot guest 0 attaches one channel per NIC (the historical
         per-NIC layout); every boot guest's vif MACs enter the fdb
         pointing at guest0's channel of the same index, reproducing the
         historical gmac_index -> netios.(g) demux exactly *)
      let ports0 =
        Array.mapi (fun i _ -> attach_channel w ~guest:0 ~nic:i) w.nics
      in
      let boot_guests = Array.length w.slots in
      Array.iteri
        (fun i _ ->
          for gi = 0 to boot_guests - 1 do
            if gi < Array.length ports0 then
              Bridge.learn w.vswitch ~mac:(vif_mac gi i) ports0.(gi)
          done)
        w.nics;
      (* dom0's netif_rx: forward through the bridge to the backend port
         behind the destination MAC; unknown MACs terminate in dom0's
         local stack (no flooding into guests) *)
      Support.set_netif_rx w.sup (fun skb ->
          charge_dom0_cat w w.costs.Sys_costs.dom0_rx_kernel;
          let hdr =
            Addr_space.read_block w.dom0_space
              (Skb.data skb - eth_header_bytes)
              eth_header_bytes
          in
          let dst = Bytes.sub_string hdr 0 6 in
          match Bridge.lookup w.vswitch ~mac:dst with
          | Some _ ->
              w.demux_skb <- Some skb;
              Bridge.forward w.vswitch (Bytes.to_string hdr)
          | None ->
              charge_dom0_cat w w.costs.Sys_costs.kernel_rx_path;
              free_any_skb w skb);
      (* the workload runs in the guest *)
      Hypervisor.switch_to h g
  | Config.Xen_twin ->
      let h = Option.get w.hyp and g = Option.get w.guest in
      (* hypervisor-side netif_rx: demultiplex on destination MAC and queue
         the packet for its guest; the copy and virtual interrupt happen
         when the guest is next scheduled (§5.3) *)
      (match w.skb_pool with
      | Some _ ->
          let ctx_rx skb =
            charge_xen_cat w
              (w.costs.Sys_costs.twin_demux + w.costs.Sys_costs.twin_rx_queue);
            let hdr =
              Addr_space.read_block w.dom0_space
                (Skb.data skb - eth_header_bytes)
                eth_header_bytes
            in
            let dst = Bytes.sub_string hdr 0 6 in
            (match Hashtbl.find_opt w.gmac_index dst with
            | Some gi -> (
                match slot_opt w gi with
                | Some s ->
                    Queue.push (Bytes.to_string (Skb.contents skb)) s.gs_rx_pending
                | None ->
                    (* destroyed since the MAC was learned: dom0-local *)
                    charge_dom0_cat w w.costs.Sys_costs.kernel_rx_path)
            | None ->
                (* not for a guest: hand to dom0 like a local packet *)
                charge_dom0_cat w w.costs.Sys_costs.kernel_rx_path);
            free_any_skb w skb
          in
          (* reach into the support registry's hypervisor context *)
          Support.set_hyp_netif_rx w.sup ctx_rx
      | None -> ());
      Hypervisor.switch_to h g);
  w

let create ?nics ?guests ?upcall_set ?pool_entries ?costs ?spill_everything
    ?rewrite_style ?cache_probes ?map_pairs ?shard ?tuning cfg =
  let w =
    create ?nics ?guests ?upcall_set ?pool_entries ?costs ?spill_everything
      ?rewrite_style ?cache_probes ?map_pairs ?shard ?tuning cfg
  in
  (* init runs under the world's quota engine (grant-table and map-window
     acquires during channel setup charge the right buckets, as the
     historical install-before-init did) but never under its fault
     engine: boot is deterministic, injection arms only afterwards *)
  let w =
    match w.quota_engine with
    | Some st -> Quota.with_state st (fun () -> init w)
    | None -> init w
  in
  w.fault_engine <-
    Option.map Td_fault.Engine.make w.tuning.Config.fault_plan;
  w

(* ---- traffic ---- *)

let transmit w ~nic ~payload =
  scoped w @@ fun () ->
  let p = w.nics.(nic) in
  if p.quarantined then raise (Nic_quarantined { nic });
  let frame = build_frame ~dst:(client_mac nic) ~src:p.mac ~payload in
  match w.cfg with
  | Config.Native_linux | Config.Xen_dom0 ->
      charge_dom0_cat w w.costs.Sys_costs.kernel_tx_path;
      if w.cfg = Config.Xen_dom0 then
        charge_xen_cat w w.costs.Sys_costs.virt_overhead_tx;
      let attempt () =
        let skb =
          Skb.alloc w.km w.dom0_space ~size:(String.length frame + 64)
        in
        Skb.put skb (Bytes.of_string frame);
        let r =
          run_dom0_driver w ~entry:w.dom0_driver.e_xmit
            ~args:[ skb.Skb.addr; p.nd.Netdev.addr ]
        in
        if r <> 0 then w.tx_drops <- w.tx_drops + 1;
        r = 0
      in
      run_tx w ~nic attempt
  | Config.Xen_domU -> (
      charge_domU_cat w w.costs.Sys_costs.kernel_tx_path;
      charge_dom0_cat w w.costs.Sys_costs.dom0_tx_kernel;
      match netio_on w ~nic with
      | None ->
          let domain =
            match w.guest with
            | Some g -> Domain.name g
            | None -> Config.name w.cfg
          in
          raise
            (Config_error
               {
                 domain;
                 reason =
                   "domU configuration without netio (world not initialised, \
                    created without NICs, or guest 0 destroyed)";
               })
      (* the driver runs from netback's flush, already supervised there *)
      | Some io -> (
          match Xen_netio.guest_transmit io frame with
          | () -> true
          | exception Quota.Quota_exceeded _ ->
              (* throttled tenant: the frame dies at the frontend edge
                 having cost only the guest its own kernel+netfront
                 cycles *)
              w.tx_drops <- w.tx_drops + 1;
              if Td_obs.Control.enabled () then
                Td_obs.Metrics.bump "world.tx_throttled";
              false))
  | Config.Xen_twin ->
      charge_domU_cat w w.costs.Sys_costs.kernel_tx_path;
      let h = Option.get w.hyp in
      (* doorbell suppression: with batching only every [notify_batch]th
         ring push traps into the hypervisor; the others just set the
         producer index (the packet is still handled synchronously, so the
         wire stream is bit-identical to the unbatched system) *)
      w.twin_tx_pushes <- w.twin_tx_pushes + 1;
      if
        w.tuning.Config.notify_batch <= 1
        || (w.twin_tx_pushes - 1) mod w.tuning.Config.notify_batch = 0
      then Hypervisor.hypercall h ()
      else charge_xen_cat w w.costs.Sys_costs.notify_coalesce;
      let attempt () =
        charge_xen_cat w w.costs.Sys_costs.twin_skb_acquire;
        match Skb_pool.alloc (Option.get w.skb_pool) with
        | None ->
            w.tx_drops <- w.tx_drops + 1;
            false
        | Some skb ->
            (* header copy (up to 96 bytes) into the sk_buff's linear area;
               the rest of the guest packet is chained through the page
               fragment pointer using a preallocated dom0 frame (§5.3) *)
            let pool = Option.get w.skb_pool in
            let hdr = min 96 (String.length frame) in
            charge_xen_cat w
              (int_of_float
                 (float_of_int hdr *. w.costs.Sys_costs.copy_per_byte));
            Skb.put skb (Bytes.of_string (String.sub frame 0 hdr));
            if String.length frame > hdr then begin
              charge_xen_cat w w.costs.Sys_costs.twin_frag_chain;
              let rest = String.length frame - hdr in
              let frag = Skb_pool.frag_buffer pool skb in
              (* chaining is a remap in the paper, not a copy: the bytes are
                 placed functionally but only the constant chain cost is
                 charged *)
              Addr_space.write_block w.dom0_space frag
                (Bytes.of_string (String.sub frame hdr rest));
              Skb.set_frag skb ~page:frag ~len:rest
            end;
            (* refetch the image: a recovery may have reloaded it *)
            let img = Option.get w.hyp_driver in
            let r =
              run_hyp_driver w ~entry:img.e_xmit
                ~args:[ skb.Skb.addr; p.nd.Netdev.addr ]
            in
            if r <> 0 then w.tx_drops <- w.tx_drops + 1;
            r = 0
      in
      run_tx w ~nic attempt

let inject_rx ?(guest = 0) w ~nic ~payload =
  scoped w @@ fun () ->
  let p = w.nics.(nic) in
  let dst =
    match w.cfg with
    | Config.Native_linux | Config.Xen_dom0 -> p.mac
    (* guest 0's vif MAC is the historical [p.gmac], so the default is
       bit-identical to the single-guest path *)
    | Config.Xen_domU | Config.Xen_twin -> vif_mac guest nic
  in
  let frame = build_frame ~dst ~src:(client_mac nic) ~payload in
  Td_nic.E1000_dev.receive_frame p.dev frame

let service_interrupt w ~nic =
  let p = w.nics.(nic) in
  if p.quarantined then ()
  else
    match w.cfg with
    | Config.Native_linux ->
        charge_dom0_cat w w.costs.Sys_costs.interrupt_dispatch;
        ignore
          (supervised w ~nic (fun () ->
               run_dom0_driver w ~entry:w.dom0_driver.e_intr
                 ~args:[ p.nd.Netdev.addr ]))
    | Config.Xen_dom0 | Config.Xen_domU ->
        charge_xen_cat w
          (w.costs.Sys_costs.interrupt_dispatch + w.costs.Sys_costs.event_channel);
        ignore
          (supervised w ~nic (fun () ->
               run_dom0_driver w ~entry:w.dom0_driver.e_intr
                 ~args:[ p.nd.Netdev.addr ]))
    | Config.Xen_twin ->
        charge_xen_cat w
          (w.costs.Sys_costs.interrupt_dispatch
          + w.costs.Sys_costs.softirq_schedule);
        let invoke () =
          (* refetch the image: a recovery may have reloaded it *)
          let img = Option.get w.hyp_driver in
          ignore
            (supervised w ~nic (fun () ->
                 run_hyp_driver w ~entry:img.e_intr ~args:[ p.nd.Netdev.addr ]))
        in
        let d0 = Option.get w.dom0 in
        (* §4.4: the hypervisor respects dom0's virtual interrupt flag *)
        if Domain.interrupts_masked d0 then Domain.defer d0 invoke
        else invoke ()

(* slot behind a scheduled domain: slot [g] always holds domain id
   [g + 1], so the lookup is O(1) with an identity cross-check *)
let slot_of_domain w d =
  let gi = Domain.id d - 1 in
  match slot_opt w gi with
  | Some s when Domain.id s.gs_dom = Domain.id d -> Some (gi, s)
  | Some _ | None -> None

(* Drain one guest's pending twin-path queue: one virtual interrupt
   announces up to [batch] queued packets; the copies still happen per
   packet, in queue order. Also the final delivery pass of
   [destroy_guest] — queued frames belong to the guest while it lives. *)
let deliver_guest_queue w h dom gi (q : string Queue.t) =
  let batch = max 1 w.tuning.Config.notify_batch in
  while not (Queue.is_empty q) do
    let n = min batch (Queue.length q) in
    let group = ref [] in
    for _ = 1 to n do
      let payload = Queue.pop q in
      charge_xen_cat w
        (int_of_float
           (float_of_int (String.length payload)
           *. w.costs.Sys_costs.copy_per_byte));
      group := payload :: !group
    done;
    if n > 1 then
      charge_xen_cat w ((n - 1) * w.costs.Sys_costs.notify_coalesce);
    let group = List.rev !group in
    Hypervisor.send_virq h dom (fun () ->
        List.iter
          (fun payload ->
            charge_domU_cat w w.costs.Sys_costs.kernel_rx_path;
            count_rx ~guest:gi w payload)
          group)
  done

(* twin receive completion: each queued packet is copied into its guest's
   buffers and announced with a virtual interrupt once that guest runs *)
let deliver_pending w =
  match w.hyp with
  | None -> ()
  | Some h ->
      let has_work d =
        match slot_of_domain w d with
        | Some (_, s) -> not (Queue.is_empty s.gs_rx_pending)
        | None -> false
      in
      (* the credit scheduler decides which guest runs (and so receives
         its queued packets) next *)
      let continue = ref true in
      while !continue do
        match Scheduler.pick w.sched ~runnable:has_work with
        | None -> continue := false
        | Some dom ->
            let gi, s = Option.get (slot_of_domain w dom) in
            deliver_guest_queue w h dom gi s.gs_rx_pending
      done

let pump w =
  scoped w @@ fun () ->
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iteri
      (fun i p ->
        (* lost-interrupt rescue: an injected lost IRQ leaves its cause
           latched in ICR with no handler call; the pump's poll sweep
           re-kicks it. Gated on an installed plan so unplanned runs keep
           their exact interrupt timing. *)
        if
          Td_fault.Engine.active ()
          && p.pending_irq = 0
          && (not p.quarantined)
          && Td_nic.E1000_dev.irq_pending p.dev
        then p.pending_irq <- 1;
        if p.pending_irq > 0 then begin
          p.pending_irq <- 0;
          progress := true;
          service_interrupt w ~nic:i
        end)
      w.nics;
    (* ring pressure / end-of-poll service: push out partial notification
       batches (or, in polling mode, visit the doorbell and drain up to
       the poll budget) so frames can never sit staged forever *)
    iter_netios w (fun io ->
        if Xen_netio.staged io > 0 then begin
          progress := true;
          Xen_netio.service io
        end);
    deliver_pending w
  done

(* ---- observation ---- *)

let wire_tx_frames w =
  Array.fold_left (fun acc p -> acc + p.wire.Td_nic.Wire.frames) 0 w.nics

let wire_tx_bytes w =
  Array.fold_left (fun acc p -> acc + p.wire.Td_nic.Wire.bytes) 0 w.nics

let delivered_rx_frames w = w.rx_frames

let delivered_rx_frames_to w ~guest =
  match slot_opt w guest with Some s -> s.gs_rx_count | None -> 0

let guest_count w =
  Array.fold_left
    (fun acc s -> match s with Some _ -> acc + 1 | None -> acc)
    0 w.slots

let guest_slots w = Array.length w.slots
let guest_alive w ~guest = Option.is_some (slot_opt w guest)
let delivered_rx_bytes w = w.rx_bytes
let rx_last_payload w = w.rx_last
let rx_pop w = Queue.take_opt w.rx_queue
let rx_queued w = Queue.length w.rx_queue
let rx_drops w = w.rx_drops
let recoveries w = w.recoveries
let replayed_frames w = w.replayed
let shadow_mtu w ~nic = w.nics.(nic).shadow.s_mtu
let shadow_promisc w ~nic = w.nics.(nic).shadow.s_promisc

let reset_measurement w =
  scoped w @@ fun () ->
  (* zero the whole registry and trace first, then the ledger (whose reset
     re-zeroes its registry mirrors — keeping both views aligned so the
     Measure cross-check can compare them at the end of the run) *)
  if Td_obs.Control.enabled () then begin
    Td_obs.Metrics.reset_all ();
    Td_obs.Trace.clear ()
  end;
  Ledger.reset w.led;
  Support.reset_counts w.sup;
  Array.iter
    (fun p ->
      p.wire.Td_nic.Wire.frames <- 0;
      p.wire.Td_nic.Wire.bytes <- 0)
    w.nics;
  w.rx_frames <- 0;
  w.rx_bytes <- 0;
  iter_slots w (fun _ s -> s.gs_rx_count <- 0);
  w.rx_last <- None;
  Queue.clear w.rx_queue;
  w.rx_drops <- 0;
  w.tx_drops <- 0;
  w.twin_tx_pushes <- 0;
  w.recoveries <- 0;
  w.replayed <- 0;
  Td_fault.Engine.reset_counters ()

(* ---- housekeeping ---- *)

(* retry once with injection masked after a recovery: the caller asked
   for a real result (stats, a config change), and the fresh instance
   should provide it; a second abort quarantines for good *)
let supervised_retry w ~nic attempt =
  match supervised w ~nic attempt with
  | Some out -> out
  | None -> (
      match
        Td_fault.Engine.suspend (fun () ->
            try Some (attempt ()) with Driver_aborted _ -> None)
      with
      | Some out -> out
      | None ->
          w.nics.(nic).quarantined <- true;
          raise (Nic_quarantined { nic }))

let run_watchdog w ~nic =
  scoped w @@ fun () ->
  if w.nics.(nic).quarantined then raise (Nic_quarantined { nic });
  check_hang w ~nic;
  if not w.nics.(nic).quarantined then
    ignore
      (supervised w ~nic (fun () ->
           run_dom0_driver w ~entry:w.dom0_driver.e_watchdog
             ~args:[ w.nics.(nic).nd.Netdev.addr ]))

let read_stats w ~nic =
  scoped w @@ fun () ->
  if w.nics.(nic).quarantined then raise (Nic_quarantined { nic });
  supervised_retry w ~nic (fun () ->
      let dest = Kmem.alloc w.km 32 in
      ignore
        (run_dom0_driver w ~entry:w.dom0_driver.e_get_stats
           ~args:[ w.nics.(nic).nd.Netdev.addr; dest ]);
      let out =
        Array.init 8 (fun i ->
            Addr_space.read w.dom0_space (dest + (4 * i)) Width.W32)
      in
      Kmem.free w.km dest 32;
      out)

let run_set_rx_mode w ~nic ~promisc =
  scoped w @@ fun () ->
  let p = w.nics.(nic) in
  if p.quarantined then raise (Nic_quarantined { nic });
  supervised_retry w ~nic (fun () ->
      ignore
        (run_dom0_driver w ~entry:w.dom0_driver.e_set_rx_mode
           ~args:[ p.nd.Netdev.addr; (if promisc then 1 else 0) ]));
  (* shadow capture on the live path: recovery re-applies this *)
  p.shadow.s_promisc <- promisc

let run_set_mtu w ~nic ~mtu =
  scoped w @@ fun () ->
  let p = w.nics.(nic) in
  if p.quarantined then raise (Nic_quarantined { nic });
  supervised_retry w ~nic (fun () ->
      ignore
        (run_dom0_driver w ~entry:w.dom0_driver.e_set_mtu
           ~args:[ p.nd.Netdev.addr; mtu ]));
  p.shadow.s_mtu <- mtu

let tick w =
  scoped w @@ fun () ->
  (* the timer service bounds how long a partial batch can stay staged;
     it is also the adaptive doorbell's window boundary (poll entry /
     idle-hysteresis fallback) *)
  iter_netios w Xen_netio.on_tick;
  Timer_wheel.tick w.timers

let shutdown w =
  scoped w @@ fun () ->
  (* guest quiesce: drain every channel completely — partially staged
     batches must not be dropped on teardown *)
  iter_netios w Xen_netio.teardown;
  deliver_pending w

let staged_frames w =
  fold_netios w (fun acc io -> acc + Xen_netio.staged io) 0

let netio_conserved w =
  fold_netios w (fun acc io -> acc && Xen_netio.conserved io) true

let netio_suppressed_hypercalls w =
  fold_netios w (fun acc io -> acc + Xen_netio.suppressed_hypercalls io) 0

let netio_suppressed_virqs w =
  fold_netios w (fun acc io -> acc + Xen_netio.suppressed_virqs io) 0

let netio_mode_switches w =
  fold_netios w (fun acc io -> acc + Xen_netio.mode_switches io) 0

let netio_tx_mode w ~nic =
  match netio_on w ~nic with
  | Some io -> Xen_netio.tx_mode io
  | None -> Xen_netio.Interrupt

let netio_rx_mode w ~nic =
  match netio_on w ~nic with
  | Some io -> Xen_netio.rx_mode io
  | None -> Xen_netio.Interrupt

let mask_dom0_interrupts w =
  Option.iter Domain.mask_interrupts w.dom0

let unmask_dom0_interrupts w =
  scoped w @@ fun () ->
  Option.iter Domain.unmask_interrupts w.dom0;
  deliver_pending w

(* ---- the domain registry: runtime create / destroy / traffic ---- *)

let create_guest ?nic w =
  scoped w @@ fun () ->
  if not (needs_guest w.cfg) then
    raise
      (Config_error
         {
           domain = Config.name w.cfg;
           reason =
             "create_guest requires a guest-carrying configuration \
              (Xen_domU or Xen_twin)";
         });
  let h = Option.get w.hyp in
  let g = Array.length w.slots in
  if g > 255 then
    raise
      (Config_error
         {
           domain = guest_name g;
           reason = "domain registry full (256 slots, never reused)";
         });
  (match nic with
  | Some n when n < 0 || n >= Array.length w.nics ->
      raise
        (Config_error
           {
             domain = guest_name g;
             reason = Printf.sprintf "create_guest: no such NIC %d" n;
           })
  | Some _ | None -> ());
  let space = Addr_space.create ~name:(guest_name g) w.phys in
  Addr_space.heap_init space ~base:Layout.guest_heap_base
    ~limit:Layout.guest_heap_limit;
  let dom =
    Domain.create ~id:(g + 1) ~name:(guest_name g) ~kind:Domain.Guest ~space
  in
  Hypervisor.add_domain h dom;
  Scheduler.add w.sched dom;
  let s =
    {
      gs_dom = dom;
      gs_space = space;
      gs_netios = [||];
      gs_rx_pending = Queue.create ();
      gs_rx_count = 0;
    }
  in
  w.slots <- Array.append w.slots [| Some s |];
  (* the guest's vif MACs demux to its slot on every NIC (twin path) *)
  Array.iteri (fun i _ -> Hashtbl.replace w.gmac_index (vif_mac g i) g) w.nics;
  (match w.cfg with
  | Config.Xen_domU when Array.length w.nics > 0 ->
      (* one netfront channel, striped over the NICs unless pinned; the
         fdb routes all the guest's vif MACs to its backend port *)
      let nic =
        match nic with Some n -> n | None -> g mod Array.length w.nics
      in
      let port = attach_channel w ~guest:g ~nic in
      Array.iteri
        (fun i _ -> Bridge.learn w.vswitch ~mac:(vif_mac g i) port)
        w.nics
  | _ -> ());
  g

let destroy_guest w ~guest:g =
  scoped w @@ fun () ->
  let s = slot_exn w g ~op:"World.destroy_guest" in
  (* frames queued on the twin path still belong to the guest: deliver
     them while the slot is alive, before the channels come down *)
  (match w.hyp with
  | Some h -> deliver_guest_queue w h s.gs_dom g s.gs_rx_pending
  | None -> ());
  (* close drains staged batches (conservation) then unmaps the doorbell
     and revokes every grant — nothing of the guest's stays in dom0 *)
  Array.iter (fun (_, io) -> Xen_netio.close io) s.gs_netios;
  Array.iter
    (fun (n, _) -> Bridge.remove_port w.vswitch (Printf.sprintf "vif%d.%d" g n))
    s.gs_netios;
  Array.iteri
    (fun i _ ->
      Bridge.forget w.vswitch ~mac:(vif_mac g i);
      Hashtbl.remove w.gmac_index (vif_mac g i))
    w.nics;
  Scheduler.remove w.sched s.gs_dom;
  (match w.hyp with Some h -> Hypervisor.remove_domain h s.gs_dom | None -> ());
  Quota.forget ~domain:(Domain.name s.gs_dom);
  Ledger.retire_domain w.led ~domain:(Domain.name s.gs_dom);
  Addr_space.release s.gs_space;
  w.slots.(g) <- None

let transmit_from ?nic w ~guest:g ~payload =
  scoped w @@ fun () ->
  let s = slot_exn w g ~op:"World.transmit_from" in
  (match w.cfg with
  | Config.Xen_domU -> ()
  | _ ->
      raise
        (Config_error
           {
             domain = Domain.name s.gs_dom;
             reason = "transmit_from requires the Xen_domU configuration";
           }));
  let pick =
    match nic with
    | Some n ->
        Array.fold_left
          (fun acc ((m, _) as e) ->
            match acc with
            | Some _ -> acc
            | None -> if m = n then Some e else None)
          None s.gs_netios
    | None -> if Array.length s.gs_netios > 0 then Some s.gs_netios.(0) else None
  in
  match pick with
  | None ->
      Guest_fault.fail ~domain:(Domain.name s.gs_dom) ~op:"World.transmit_from"
        "guest %d has no netfront channel%s" g
        (match nic with
        | Some n -> Printf.sprintf " on NIC %d" n
        | None -> "")
  | Some (n, io) -> (
      if w.nics.(n).quarantined then raise (Nic_quarantined { nic = n });
      charge_domU_cat w w.costs.Sys_costs.kernel_tx_path;
      charge_dom0_cat w w.costs.Sys_costs.dom0_tx_kernel;
      let frame =
        build_frame ~dst:(client_mac n) ~src:(vif_mac g n) ~payload
      in
      match Xen_netio.guest_transmit io frame with
      | () -> true
      | exception Quota.Quota_exceeded _ ->
          (* throttled tenant: the frame dies at the frontend edge *)
          w.tx_drops <- w.tx_drops + 1;
          if Td_obs.Control.enabled () then
            Td_obs.Metrics.bump "world.tx_throttled";
          false)

(* ---- per-world engine observability ---- *)

let fault_injected w = scoped w Td_fault.Engine.injected
let fault_lost w = scoped w Td_fault.Engine.lost_frames
let quota_throttled w = scoped w Quota.throttled

let doorbell_pages_mapped w =
  let base, limit = Xen_netio.doorbell_window in
  let n = ref 0 in
  for vpage = Layout.page_of base to Layout.page_of limit - 1 do
    if Addr_space.is_mapped w.dom0_space ~vpage then incr n
  done;
  !n

(** The sharded multi-queue simulation.

    An {!Mq.t} is an array of {!World.t} execution contexts — one per
    NIC queue, each a complete single-queue world pinned to its own
    stlb partition and per-queue doorbell words — plus the same RSS
    demux the multi-queue e1000 uses to steer frames onto rings
    ({!Td_nic.Rss}), lifted up to steer whole flows onto contexts.

    {!run} advances the contexts with {!Shard.run}: sequentially when
    [tuning.shards <= 1], else round-robin over that many OCaml 5
    domains. {!merged_ledger} then folds the per-context cycle ledgers
    in queue index order, so simulated time, metric counters and the
    figure numbers are bit-identical for any shard count — sharding
    changes host wall-clock only. *)

type t

val create : ?nics:int -> ?tuning:Config.tuning -> Config.t -> t
(** One single-queue world per [tuning.queues] (validated against
    {!Td_nic.Regs.max_queues}), context [q] created with
    [World.create ~shard:q]. Quota limits and fault plans are per-world
    (each context owns private engines), so [tuning.quota] and
    [tuning.fault_plan] compose with any shard count; an ambient
    (globally installed) engine is lifted into every context's tuning at
    creation, making sequential and sharded runs bit-identical either
    way. *)

val config : t -> Config.t
val queues : t -> int
val shards : t -> int

val world : t -> queue:int -> World.t
(** The execution context for one queue. *)

val queue_of_payload : t -> string -> int
(** Where the RSS demux steers a payload (IPv4 header at offset 0). *)

val transmit : t -> nic:int -> payload:string -> bool
(** {!World.transmit} on the context selected by {!queue_of_payload} —
    XPS-style: a flow transmits on the queue its receive side hashes
    to. *)

val inject_rx : ?guest:int -> t -> nic:int -> payload:string -> unit
(** {!World.inject_rx} on the context selected by {!queue_of_payload}. *)

val pump : t -> unit
val tick : t -> unit
val shutdown : t -> unit
val reset_measurement : t -> unit
(** Each applies the corresponding {!World} operation to every context,
    in queue index order. *)

val run : t -> job:(queue:int -> World.t -> 'a) -> 'a array
(** Advance every context with [job], distributed by {!Shard.run}
    according to [tuning.shards]; results in queue index order.
    Observability is off for the duration (both paths — see
    {!Shard.run}). Jobs must confine themselves to their own context. *)

val merged_ledger : t -> Td_xen.Ledger.t
(** A fresh ledger holding the fold of every context's ledger, merged
    in queue index order ({!Td_xen.Ledger.merge_into}) — deterministic
    regardless of how the shards were scheduled. *)

val total_cycles : t -> int
(** Sum of the per-context ledger grand totals: total simulated work. *)

val elapsed_cycles : t -> int
(** Max of the per-context grand totals: the queues advance in parallel
    in simulated time, so elapsed time is the slowest context. The
    multiqueue bench's throughput denominator. *)

val wire_tx_frames : t -> int
val wire_tx_bytes : t -> int
val delivered_rx_frames : t -> int
(** Sums over all contexts. *)

val publish_metrics : t -> unit
(** Set the [world.shard_*] gauges (shard count, queue count, elapsed
    and total cycles) when observability is enabled. *)

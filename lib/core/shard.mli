(** Deterministic fan-out of independent simulation jobs over OCaml 5
    domains.

    [run ~shards jobs] evaluates every job and returns their results in
    job order. With [shards <= 1] (or a single job) the jobs run
    sequentially on the calling domain; otherwise they are distributed
    round-robin over [min shards (Array.length jobs)] spawned domains.
    Both paths produce identical results for jobs that are deterministic
    and share no mutable state — the contract {!Mq} builds its
    bit-identical ledger merge on.

    Observability ({!Td_obs.Control}) is disabled for the duration of
    the run on both paths (the metric registry is not thread-safe, and
    the sequential engine must match the parallel one), and restored
    afterwards. *)

val run : shards:int -> (unit -> 'a) array -> 'a array

val available_parallelism : unit -> int
(** [Stdlib.Domain.recommended_domain_count ()] — how many shards the
    host can actually run at once. *)

(** The four system configurations evaluated in the paper (§6). *)

type t =
  | Native_linux  (** bare-metal Linux: kernel + original driver *)
  | Xen_dom0  (** the driver domain itself doing the I/O on Xen *)
  | Xen_domU  (** unoptimised guest: netfront / netback / bridge *)
  | Xen_twin  (** guest with the TwinDrivers hypervisor driver *)

val name : t -> string
val all : t list
val of_string : string -> t option

(** What the supervisor does when a driver instance aborts (SVM fault,
    page fault, watchdog timeout, failed upcall). *)
type recovery =
  | Fail_stop
      (** historical behaviour: the abort propagates as
          {!World.Driver_aborted} and the NIC stays quarantined. *)
  | Restart
      (** quarantine, tear down the twin instance, reload + re-init from
          shadow state; in-flight TX frames are dropped and counted in
          [fault.lost_frames]. *)
  | Restart_replay
      (** like [Restart], but the frame whose transmit aborted is
          replayed once on the fresh instance ([fault.replayed]). *)

val recovery_name : recovery -> string
val recovery_of_string : string -> recovery option
val all_recoveries : recovery list

(** Performance knobs orthogonal to the configuration choice. *)
type tuning = {
  map_window_pages : int;
      (** SVM mapped-page window size in pages (two per mapped pair);
          smaller windows reclaim cold pairs sooner. Xen_twin only. *)
  notify_batch : int;
      (** TX/RX event notifications coalesced per hypercall / virtual
          interrupt (1 = kick every frame, the paper's baseline).
          Flushed on ring pressure, {!World.pump} and {!World.tick}. *)
  recovery : recovery;  (** driver supervisor policy on abort. *)
  stlb_exact_hits : bool;
      (** Install the interpreter watcher that counts inline stlb probe
          hits exactly ([stlb.hit]). On by default; switching it off
          removes the only always-installed hook, putting the interpreter
          on its closure-free basic-block fast path (the [interp] bench
          measures the difference). Simulated cycles are identical either
          way — only the [stlb.hit] metric and host wall-clock change. *)
  compile_threshold : int;
      (** Dispatches of a block entry before the interpreter promotes it
          to a compiled superblock (default 8). Only observable with
          [stlb_exact_hits = false] — the watcher forces the
          per-instruction slow path. Simulated cycles are identical
          either way. *)
  superblock_cap : int;
      (** Maximum instructions traced into one compiled superblock,
          including blocks stitched across unconditional jumps and
          fallthrough edges (default 64). *)
  doorbell : bool;
      (** Give each I/O channel a shared doorbell page with NAPI-style
          adaptive mode switching (see {!Xen_netio.doorbell_cfg}). Off by
          default — the channel is then bit-identical to the
          pre-doorbell path. Xen_domU only. *)
  poll_entry_kicks : int;
      (** Notification boundaries per tick window before a direction
          switches from interrupts to polling (default 8); [<= 0] pins
          always-poll. Ignored unless [doorbell]. *)
  idle_hysteresis : int;
      (** Consecutive empty tick windows before a polling direction falls
          back to interrupts (default 3). Ignored unless [doorbell]. *)
  poll_budget : int;
      (** Frames drained per doorbell visit — the NAPI weight bounding
          how long one busy channel holds the pump (default 16). Ignored
          unless [doorbell]. *)
  quota : Td_xen.Quota.limits option;
      (** Per-domain resource quotas (map-window pages, grant entries and
          maps, upcall/notification/doorbell rates, rx deliveries,
          grant-copy bytes), enforced against every domain except dom0.
          [None] (the default) installs nothing: all checks are no-ops
          and runs are bit-identical to the pre-quota system. The
          engine is private to the world (scoped around its entry
          points), so N worlds — and N parallel shards — enforce
          independently. *)
  fault_plan : Td_fault.plan option;
      (** Private fault-injection plan for this world, armed at
          creation and scoped around the world's entry points exactly
          like [quota] — the per-world alternative to the ambient
          {!Td_fault.Engine.install}, and the only shard-safe way to
          inject under {!Mq} with [shards > 1]. [None] (the default)
          arms nothing for the world itself but leaves an ambient
          engine visible, preserving the historical install-after-create
          pattern. *)
  queues : int;
      (** tx/rx ring pairs per NIC (MSI-X style, default 1). Queue 0
          keeps the legacy register block and legacy INTx cause bits, so
          [queues = 1] is bit-identical to the single-queue model. With
          more queues the device steers rx frames with the RSS demux and
          raises one interrupt vector per queue. *)
  shards : int;
      (** OCaml domains used by {!Mq} to advance independent
          (guest, queue) execution contexts in parallel (default 1 =
          sequential). The merged cycle ledger is bit-identical for any
          shard count — sharding changes host wall-clock only. *)
  rss_seed : int;
      (** Seed expanded into the 40-byte Toeplitz key of the RSS demux;
          the same seed and 4-tuple always select the same queue. *)
}

val default_tuning : tuning
(** Full 16 MB window, batch 1, fail-stop, doorbell off, no quotas —
    identical behaviour to the pre-supervisor system. *)

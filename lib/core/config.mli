(** The four system configurations evaluated in the paper (§6). *)

type t =
  | Native_linux  (** bare-metal Linux: kernel + original driver *)
  | Xen_dom0  (** the driver domain itself doing the I/O on Xen *)
  | Xen_domU  (** unoptimised guest: netfront / netback / bridge *)
  | Xen_twin  (** guest with the TwinDrivers hypervisor driver *)

val name : t -> string
val all : t list
val of_string : string -> t option

(** Performance knobs orthogonal to the configuration choice. *)
type tuning = {
  map_window_pages : int;
      (** SVM mapped-page window size in pages (two per mapped pair);
          smaller windows reclaim cold pairs sooner. Xen_twin only. *)
  notify_batch : int;
      (** TX/RX event notifications coalesced per hypercall / virtual
          interrupt (1 = kick every frame, the paper's baseline).
          Flushed on ring pressure, {!World.pump} and {!World.tick}. *)
}

val default_tuning : tuning
(** Full 16 MB window, batch 1 — identical behaviour to the unbatched
    system. *)

type t = {
  world : World.t;
  nic : int;
  server : Td_net.Tcp_lite.t;
  client : Td_net.Tcp_lite.t;
  server_out : Td_net.Tcp_lite.segment Queue.t;
  client_out : Td_net.Tcp_lite.segment Queue.t;
  mutable frames : int;
}

let create ?(nic = 0) world =
  let server_out = Queue.create () and client_out = Queue.create () in
  let server =
    Td_net.Tcp_lite.create ~send:(fun seg -> Queue.push seg server_out) ()
  in
  let client =
    Td_net.Tcp_lite.create ~send:(fun seg -> Queue.push seg client_out) ()
  in
  { world; nic; server; client; server_out; client_out; frames = 0 }

let server t = t.server
let client t = t.client
let frames_carried t = t.frames

let relay_once t =
  let moved = ref false in
  (* server -> transmit path -> wire -> client *)
  while not (Queue.is_empty t.server_out) do
    moved := true;
    let seg = Queue.pop t.server_out in
    ignore
      (World.transmit t.world ~nic:t.nic
         ~payload:(Td_net.Tcp_lite.encode_segment seg));
    t.frames <- t.frames + 1;
    Td_net.Tcp_lite.on_segment t.client seg
  done;
  World.pump t.world;
  (* drain every delivered payload, not just the most recent one — with
     batched notifications a single pump can complete several frames *)
  let drain_rx () =
    let continue = ref true in
    while !continue do
      match World.rx_pop t.world with
      | None -> continue := false
      | Some payload -> (
          moved := true;
          match Td_net.Tcp_lite.decode_segment payload with
          | Some seg -> Td_net.Tcp_lite.on_segment t.server seg
          | None -> ())
    done
  in
  drain_rx ();
  (* client -> wire -> receive path -> guest -> server *)
  while not (Queue.is_empty t.client_out) do
    moved := true;
    World.inject_rx t.world ~nic:t.nic
      ~payload:(Td_net.Tcp_lite.encode_segment (Queue.pop t.client_out));
    t.frames <- t.frames + 1;
    World.pump t.world;
    drain_rx ()
  done;
  !moved

let run ?(max_rounds = 2000) ?(on_round = fun _ -> ()) t ~until =
  let rounds = ref 0 in
  let done_ = ref (until t) in
  while (not !done_) && !rounds < max_rounds do
    incr rounds;
    ignore (relay_once t);
    on_round t;
    Td_net.Tcp_lite.tick t.server;
    Td_net.Tcp_lite.tick t.client;
    done_ := until t
  done;
  !done_

type t = Native_linux | Xen_dom0 | Xen_domU | Xen_twin

let name = function
  | Native_linux -> "Linux"
  | Xen_dom0 -> "dom0"
  | Xen_domU -> "domU"
  | Xen_twin -> "domU-twin"

let all = [ Xen_domU; Xen_twin; Xen_dom0; Native_linux ]

let of_string = function
  | "linux" | "Linux" -> Some Native_linux
  | "dom0" -> Some Xen_dom0
  | "domU" | "domu" -> Some Xen_domU
  | "domU-twin" | "twin" -> Some Xen_twin
  | _ -> None

type tuning = { map_window_pages : int; notify_batch : int }

let default_tuning =
  { map_window_pages = Td_mem.Layout.map_window_pages; notify_batch = 1 }

type t = Native_linux | Xen_dom0 | Xen_domU | Xen_twin

let name = function
  | Native_linux -> "Linux"
  | Xen_dom0 -> "dom0"
  | Xen_domU -> "domU"
  | Xen_twin -> "domU-twin"

let all = [ Xen_domU; Xen_twin; Xen_dom0; Native_linux ]

let of_string = function
  | "linux" | "Linux" -> Some Native_linux
  | "dom0" -> Some Xen_dom0
  | "domU" | "domu" -> Some Xen_domU
  | "domU-twin" | "twin" -> Some Xen_twin
  | _ -> None

type recovery = Fail_stop | Restart | Restart_replay

let recovery_name = function
  | Fail_stop -> "fail-stop"
  | Restart -> "restart"
  | Restart_replay -> "restart-replay"

let recovery_of_string = function
  | "fail-stop" | "fail_stop" | "failstop" -> Some Fail_stop
  | "restart" -> Some Restart
  | "restart-replay" | "restart_replay" | "replay" -> Some Restart_replay
  | _ -> None

let all_recoveries = [ Fail_stop; Restart; Restart_replay ]

type tuning = {
  map_window_pages : int;
  notify_batch : int;
  recovery : recovery;
  stlb_exact_hits : bool;
  compile_threshold : int;
  superblock_cap : int;
  doorbell : bool;
  poll_entry_kicks : int;
  idle_hysteresis : int;
  poll_budget : int;
  quota : Td_xen.Quota.limits option;
  fault_plan : Td_fault.plan option;
  queues : int;
  shards : int;
  rss_seed : int;
}

let default_tuning =
  {
    map_window_pages = Td_mem.Layout.map_window_pages;
    notify_batch = 1;
    recovery = Fail_stop;
    stlb_exact_hits = true;
    compile_threshold = 8;
    superblock_cap = 64;
    doorbell = false;
    poll_entry_kicks = 8;
    idle_hysteresis = 3;
    poll_budget = 16;
    quota = None;
    fault_plan = None;
    queues = 1;
    shards = 1;
    rss_seed = 0x2A8F;
  }

(* Deterministic job runner for the sharded simulation: an array of
   independent jobs either runs in order on the calling domain
   (shards <= 1) or is spread round-robin over [shards] OCaml domains.
   Job i's result lands in slot i and joins happen in index order, so
   the caller sees identical results — and, because the jobs themselves
   are deterministic and share no mutable state, identical side effects —
   whichever path ran.

   Observability is the one process-global the jobs would otherwise
   race on (the metric registry is an unsynchronised Hashtbl): it is
   switched off around the whole run — in BOTH paths, so the sequential
   engine stays bit-identical to the parallel one — and restored after.
   The fault and quota engines are per-OCaml-domain ambient state plus
   per-world private engines scoped around every World entry point, so
   jobs confined to their own world race on neither: a spawned worker
   starts with empty ambient slots and each world brings its own
   engines (Mq lifts an ambient configuration into per-context tuning
   at creation). *)

(* NOTE: Stdlib.Domain (OCaml 5 threading domains), not Td_xen.Domain. *)

let available_parallelism () = Stdlib.Domain.recommended_domain_count ()

let run (type a) ~shards (jobs : (unit -> a) array) : a array =
  let n = Array.length jobs in
  let obs_was = Td_obs.Control.enabled () in
  Td_obs.Control.disable ();
  Fun.protect
    ~finally:(fun () -> if obs_was then Td_obs.Control.enable ())
    (fun () ->
      if shards <= 1 || n <= 1 then Array.map (fun job -> job ()) jobs
      else begin
        let workers = min shards n in
        let results : a option array = Array.make n None in
        let worker w () =
          let i = ref w in
          while !i < n do
            results.(!i) <- Some (jobs.(!i) ());
            i := !i + workers
          done
        in
        let handles =
          Array.init workers (fun w -> Stdlib.Domain.spawn (worker w))
        in
        Array.iter Stdlib.Domain.join handles;
        Array.map Option.get results
      end)

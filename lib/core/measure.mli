(** Packet-level measurement: run a stream of packets through a
    configuration and derive the paper's metrics — cycles/packet by
    category (Figures 7/8), aggregate throughput and CPU-scaled
    throughput (Figures 5/6). *)

type result = {
  config : Config.t;
  packets : int;
  frame_bytes : int;  (** on-wire ethernet frame size *)
  cycles_per_packet : float;
  breakdown : (Td_xen.Ledger.category * float) list;  (** per packet *)
  throughput_mbps : float;
      (** achievable payload throughput, min(wire-limited, CPU-limited) *)
  cpu_limited_mbps : float;  (** the CPU-scaled unit of the paper *)
  cpu_utilisation : float;  (** in [0, 1] *)
  drops : int;
  metrics : (string * float) list;
      (** {!Td_obs.Metrics.snapshot} taken at the end of the run — empty
          unless observability is enabled. Before snapshotting, the
          [ledger.cycles.*] mirror counters are asserted equal to the
          ledger totals of the same run (the instrumentation
          cross-check). *)
}

val mtu_payload : int
(** Ethernet payload at MTU: 1500 bytes. *)

val run_transmit :
  ?packets:int -> ?payload_bytes:int -> ?warmup:int -> World.t -> result

val run_receive :
  ?packets:int -> ?payload_bytes:int -> ?warmup:int -> World.t -> result

val speedup : result -> result -> float
(** [speedup a b] = throughput(a) / throughput(b), in CPU-scaled units. *)

val pp_result : Format.formatter -> result -> unit
val pp_breakdown : Format.formatter -> result -> unit

(** One entry point per table/figure of the paper's evaluation (§6).

    Each function builds fresh worlds, drives the workload, and returns
    structured results; the bench harness prints them next to the paper's
    numbers (EXPERIMENTS.md records both). *)

(** Figures 5/6: netperf-like TCP stream over five NICs. *)

val fig5_transmit : ?packets:int -> unit -> (Config.t * Measure.result) list
val fig6_receive : ?packets:int -> unit -> (Config.t * Measure.result) list

(** Figures 7/8: single-NIC per-packet cycle breakdown. *)

val fig7_tx_breakdown : ?packets:int -> unit -> (Config.t * Measure.result) list
val fig8_rx_breakdown : ?packets:int -> unit -> (Config.t * Measure.result) list

(** Figure 9: web-server workload, open-loop request sweep. *)

type web_point = { rate : float; mbps : float; completed : int; timed_out : int }

val fig9_webserver :
  ?rates:float list ->
  ?requests:int ->
  unit ->
  (Config.t * web_point list) list
(** [requests] defaults to 2.5 seconds' worth at each offered rate. *)

(** Figure 10: transmit throughput as fast-path routines are demoted to
    upcalls. Returns (routines demoted, measured upcalls per driver
    invocation, CPU-scaled Mb/s). *)

type upcall_point = {
  demoted : string list;
  upcalls_per_invocation : float;
  mbps : float;
}

val fig10_upcall_cost : ?packets:int -> unit -> upcall_point list

(** Table 1: trace the support routines invoked on the error-free
    transmit/receive fast path of the hypervisor instance, and the full
    set exercised across all driver operations. *)

type table1 = {
  fast_path_called : string list;  (** called in hypervisor context *)
  all_called : string list;  (** across init/config/housekeeping too *)
  registry_size : int;  (** total support routines (paper: 97) *)
}

val table1_fast_path : unit -> table1

(** §6.5 engineering effort; §4.1/§6.2 static and dynamic rewrite facts. *)

type rewrite_report = {
  stats : Td_rewriter.Rewrite.stats;
  memory_fraction : float;  (** paper: ~25% *)
  native_driver_cpp : float;  (** cycles/packet in the driver, tx path *)
  rewritten_driver_cpp : float;
  slowdown : float;  (** paper: 2-3x *)
}

val rewrite_report : ?packets:int -> unit -> rewrite_report

(** Sensitivity of the headline result to the calibration constants:
    the transmit speedup (twin over unoptimised guest) re-measured while
    scaling the world-switch cost and the kernel-path cost. The paper's
    conclusion should not hinge on any single constant. *)

type sensitivity_point = {
  switch_scale : float;
  kernel_scale : float;
  tx_speedup : float;  (** domU-twin over domU, CPU-scaled *)
}

val sensitivity : ?packets:int -> unit -> sensitivity_point list

(** Map-window × notification-batch sweep: for each (window size, batch
    factor) cell, measure the twin transmit path (hypercall kicks
    amortise with the batch), the receive path (virtual interrupts
    amortise the same way), then soak the SVM map window with a working
    set twice its size to exercise the clock reclaim. Requires
    observability to be enabled for the hypercall/virq rates. *)

type window_batch_point = {
  window_pages : int;  (** SVM map window size, in pages *)
  batch : int;  (** notifications coalesced per kick *)
  tx_cycles_per_packet : float;
  tx_hypercalls_per_packet : float;
  tx_hypercall_cycles_per_packet : float;
      (** hypercall-category cycles per frame — must fall monotonically
          with [batch] *)
  rx_virqs_per_packet : float;
  window_reclaims : int;  (** pairs evicted during the soak *)
  window_pages_in_use : int;  (** mapped pages left after the soak *)
}

val window_batch :
  ?packets:int ->
  ?windows:int list ->
  ?batches:int list ->
  unit ->
  window_batch_point list

(** Doorbell / adaptive-polling sweep (docs/DOORBELL.md): the domU
    transmit path at several offered loads (frames per tick window) under
    three notification disciplines — the interrupt-driven seed channel,
    the adaptive doorbell, and always-poll. Each point asserts the
    teardown invariants (nothing staged after {!World.shutdown}, frame
    conservation). Requires observability for the hypercall/virq rates. *)

type doorbell_point = {
  db_mode : string;  (** "interrupt" | "adaptive" | "always-poll" *)
  offered_per_window : int;  (** frames transmitted per tick window *)
  db_packets : int;  (** frames that reached the wire *)
  db_cycles_total : int;
      (** whole-run ledger total — the idle-cost comparator when
          [offered_per_window = 0] *)
  db_cycles_per_packet : float;  (** 0 at zero load *)
  hypercalls_per_packet : float;
  virqs_per_packet : float;
  db_doorbell_polls : int;
  db_suppressed_hypercalls : int;  (** kicks the doorbell made unnecessary *)
  db_suppressed_virqs : int;
  db_mode_switches : int;
  final_tx_mode : string;  (** tx direction's mode when the run ended *)
  db_tx_lat_samples : int;  (** per-direction latency samples recorded *)
  db_rx_lat_samples : int;
  db_tx_p50 : float;
      (** nearest-rank percentiles over the per-direction channel
          latencies (simulated cycles, staging to delivery); 0 when no
          samples were recorded *)
  db_tx_p99 : float;
  db_rx_p50 : float;
  db_rx_p99 : float;
}

val doorbell :
  ?windows:int ->
  ?warmup_windows:int ->
  ?loads:int list ->
  unit ->
  doorbell_point list

(** Multi-queue / sharded-simulation bench (docs/MULTIQUEUE.md): leg A
    sweeps the queue count with sequential execution and reports
    simulated transmit throughput (near-linear scaling expected — the
    contexts advance concurrently in simulated time, so elapsed cycles
    are the max per-context total); leg B fixes eight queues and sweeps
    the shard count, measuring host wall-clock with [clock] (pass
    [Unix.gettimeofday]; simulated results must digest identically for
    every shard count); leg C checks the feature-off aggregate is
    indistinguishable from a plain unsharded world. *)

type mq_queue_point = {
  mq_queues : int;
  mq_wire_frames : int;
  mq_wire_bytes : int;
  mq_elapsed_cycles : int;  (** max over the per-context ledgers *)
  mq_total_cycles : int;  (** sum over the per-context ledgers *)
  mq_sim_mbps : float;  (** wire bits over elapsed simulated seconds *)
}

type mq_shard_point = {
  mq_shards : int;
  mq_wall_s : float;  (** host wall-clock of the sharded run only *)
  mq_digest : string;  (** canonical merged-ledger digest *)
}

type mq_report = {
  mq_points_queues : mq_queue_point list;
  mq_points_shards : mq_shard_point list;
  mq_speedup_at_4 : float;
      (** wall(1 shard) / wall(4 shards); 0 when either point is
          missing. Only meaningful on a host with >= 4 cores. *)
  mq_ledger_bit_identical : bool;
      (** every shard count produced the same merged-ledger digest *)
  mq_single_queue_identical : bool;  (** leg C *)
}

val multiqueue :
  ?frames:int ->
  ?queue_counts:int list ->
  ?shard_counts:int list ->
  ?clock:(unit -> float) ->
  unit ->
  mq_report

(** Ablations (DESIGN.md §5). *)

type ablation = { label : string; tx_cpu_scaled_mbps : float; note : string }

val ablations : ?packets:int -> unit -> ablation list

(** Fault-injection recovery sweep (docs/FAULTS.md): a transmit soak with
    periodic receive traffic and timer ticks, run for each (recovery
    policy, fault rate) cell. [rate] 0.0 runs with no plan installed at
    all — the bit-identity baseline. Availability is wire-delivered TX
    frames over offered frames; receive-side losses show up in [lost]
    instead. *)

type recovery_point = {
  policy : Config.recovery;
  fault_rate : float;  (** the sweep knob feeding the per-site plan *)
  offered : int;
  delivered : int;  (** frames that reached the wire *)
  availability : float;  (** delivered / offered *)
  injected : int;  (** faults actually fired, all sites *)
  recoveries : int;
  replayed : int;
  lost : int;  (** frames charged to [fault.lost_frames] *)
  guest_faults : int;  (** typed guest faults contained during the soak *)
  frames_to_recover : float;  (** mean undelivered frames per recovery *)
  serviceable : bool;  (** no NIC left quarantined at soak end *)
}

val recovery_soak :
  ?frames:int ->
  ?seed:int ->
  policy:Config.recovery ->
  rate:float ->
  unit ->
  recovery_point

val recovery_sweep :
  ?frames:int ->
  ?rates:float list ->
  ?policies:Config.recovery list ->
  ?seed:int ->
  unit ->
  recovery_point list

(** N-domain fleet scenarios (docs/FLEET.md): an open-loop soak over a
    registry of up to 256 guest domains on one world, mixing three
    heterogeneous traffic shapes — assigned per slot as [slot mod 3] —
    with per-domain quotas, a fault plan with [Restart_replay] recovery,
    and runtime domain churn ({!World.destroy_guest} followed by a
    replacement {!World.create_guest} while traffic flows). *)

type fleet_shape =
  | Bulk_stream  (** steady 1500-byte transmit stream *)
  | Rpc_burst  (** bursts of eight 64-byte transmits, bursty pacing *)
  | Incast  (** receive fan-in: wire arrivals converging on the guest *)

val fleet_shape_name : fleet_shape -> string

type fleet_report = {
  fl_domains : int;  (** fleet size (live domains at any instant) *)
  fl_frames : int;  (** frames moved: TX offered + RX injected *)
  fl_offered_tx : int;
  fl_delivered_tx : int;  (** TX frames that reached the wire *)
  fl_rx_injected : int;
  fl_rx_delivered : int;  (** RX frames delivered into guests *)
  fl_availability : float;  (** delivered TX / offered TX — the CI gate *)
  fl_throttled : int;  (** quota denials (this world's engine) *)
  fl_injected : int;  (** faults fired (this world's engine) *)
  fl_recoveries : int;
  fl_churned : int;  (** destroy+replace cycles completed *)
  fl_live_at_end : int;
  fl_tx_p50 : float;
  fl_tx_p99 : float;
  fl_tx_p999 : float;  (** I/O-channel TX latency percentiles, cycles *)
  fl_rx_p50 : float;
  fl_rx_p99 : float;
  fl_rx_p999 : float;
  fl_conserved : bool;  (** frame conservation over every channel *)
  fl_staged_after_shutdown : int;  (** must be 0 *)
  fl_dangling_doorbells : int;
      (** doorbell pages mapped in dom0 beyond one per open channel —
          non-zero means a destroyed guest leaked its mapping *)
  fl_digest : string;  (** canonical digest of the whole observable run *)
  fl_deterministic : bool;  (** every run produced [fl_digest] *)
}

val fleet :
  ?domains:int ->
  ?frames:int ->
  ?nics:int ->
  ?seed:int ->
  ?churn:int ->
  ?quota:bool ->
  ?fault_rate:float ->
  ?runs:int ->
  unit ->
  fleet_report
(** Defaults: 200 domains, 1M frames, 4 NICs, 32 churn cycles, quotas
    on, fault rate 5e-4, [runs = 2] (the second run re-executes the
    identical soak on a fresh world and must reproduce the digest bit
    for bit). Raises [Invalid_argument] when [domains] exceeds the
    256-slot registry cap. The report is the first run's. *)

let run_configs ~packets ~nics f =
  List.map
    (fun cfg ->
      let w = World.create ~nics cfg in
      (cfg, f w ~packets))
    Config.all

let fig5_transmit ?(packets = 1000) () =
  run_configs ~packets ~nics:5 (fun w ~packets ->
      Measure.run_transmit ~packets w)

let fig6_receive ?(packets = 1000) () =
  run_configs ~packets ~nics:5 (fun w ~packets ->
      Measure.run_receive ~packets w)

let fig7_tx_breakdown ?(packets = 600) () =
  run_configs ~packets ~nics:1 (fun w ~packets ->
      Measure.run_transmit ~packets w)

let fig8_rx_breakdown ?(packets = 600) () =
  run_configs ~packets ~nics:1 (fun w ~packets ->
      Measure.run_receive ~packets w)

(* ---- Figure 9 ---- *)

type web_point = { rate : float; mbps : float; completed : int; timed_out : int }

let default_rates =
  [ 1000.; 2000.; 3000.; 4000.; 5000.; 6000.; 8000.; 10000.; 12000.; 14000.;
    16000.; 18000.; 20000. ]

let fig9_webserver ?(rates = default_rates) ?requests () =
  List.map
    (fun cfg ->
      (* calibrate per-packet costs on this configuration *)
      let wt = World.create ~nics:5 cfg in
      let tx = Measure.run_transmit ~packets:400 wt in
      let wr = World.create ~nics:5 cfg in
      let rx = Measure.run_receive ~packets:400 wr in
      let costs =
        {
          Td_net.Webserver.tx_cycles_per_packet = tx.Measure.cycles_per_packet;
          rx_cycles_per_packet = rx.Measure.cycles_per_packet;
          app_cycles_per_request = Td_net.Webserver.default_app_cycles;
          frequency_hz = float_of_int Td_cpu.Cost_model.frequency_hz;
          mss = 1448;
          wire_limit_mbps =
            Td_nic.Wire.wire_limit_mbps ~packet_bytes:1514 ~nics:1;
        }
      in
      let points =
        List.map
          (fun rate ->
            (* run long enough (several timeouts) for the open-loop queue
               to reach steady state *)
            let n =
              match requests with
              | Some n -> n
              | None -> max 2000 (int_of_float (rate *. 2.5))
            in
            let o =
              Td_net.Webserver.run costs
                {
                  Td_net.Webserver.request_rate = rate;
                  requests = n;
                  timeout_s = 1.0;
                  seed = 7;
                }
            in
            {
              rate;
              mbps = o.Td_net.Webserver.response_mbps;
              completed = o.Td_net.Webserver.completed;
              timed_out = o.Td_net.Webserver.timed_out;
            })
          rates
      in
      (cfg, points))
    Config.all

(* ---- Figure 10 ---- *)

type upcall_point = {
  demoted : string list;
  upcalls_per_invocation : float;
  mbps : float;
}

(* demotion order: routines off the transmit path first, then the
   transmit-path routines in increasing call frequency; netif_rx stays
   native throughout, as in the paper *)
let demotion_order =
  [
    "dma_map_page"; "dma_unmap_page"; "dma_unmap_single"; "eth_type_trans";
    "netdev_alloc_skb"; "dev_kfree_skb_any"; "spin_unlock_irqrestore";
    "spin_trylock"; "dma_map_single";
  ]

let fig10_upcall_cost ?(packets = 400) () =
  List.init (List.length demotion_order + 1) (fun k ->
      let demoted = List.filteri (fun i _ -> i < k) demotion_order in
      let w = World.create ~nics:5 ~upcall_set:demoted Config.Xen_twin in
      let r = Measure.run_transmit ~packets w in
      let invocations = max 1 (World.wire_tx_frames w) in
      let upcalls = Td_kernel.Support.total_upcalls (World.support w) in
      {
        demoted;
        upcalls_per_invocation = float_of_int upcalls /. float_of_int invocations;
        mbps = r.Measure.cpu_limited_mbps;
      })

(* ---- Table 1 ---- *)

type table1 = {
  fast_path_called : string list;
  all_called : string list;
  registry_size : int;
}

let table1_fast_path () =
  let w = World.create ~nics:1 Config.Xen_twin in
  let sup = World.support w in
  (* error-free fast path: transmit + receive only *)
  Td_kernel.Support.reset_counts sup;
  let payload = String.make 1500 'x' in
  for i = 0 to 63 do
    ignore (World.transmit w ~nic:0 ~payload);
    World.inject_rx w ~nic:0 ~payload;
    if i mod 4 = 3 then World.pump w
  done;
  World.pump w;
  let fast_path_called =
    List.filter
      (fun n -> Td_kernel.Support.hyp_calls sup n > 0)
      (Td_kernel.Support.routine_names sup)
  in
  (* all operations: housekeeping and configuration too *)
  World.run_watchdog w ~nic:0;
  World.run_set_mtu w ~nic:0 ~mtu:1400;
  let all_called = Td_kernel.Support.called_routines sup in
  {
    fast_path_called;
    all_called;
    registry_size = Td_kernel.Support.routine_count sup;
  }

(* ---- rewrite facts ---- *)

type rewrite_report = {
  stats : Td_rewriter.Rewrite.stats;
  memory_fraction : float;
  native_driver_cpp : float;
  rewritten_driver_cpp : float;
  slowdown : float;
}

let driver_cpp result =
  List.assoc Td_xen.Ledger.Driver result.Measure.breakdown

let rewrite_report ?(packets = 600) () =
  let source = Td_driver.E1000_driver.source () in
  let twin = Td_rewriter.Twin.derive source in
  let linux = World.create ~nics:1 Config.Native_linux in
  let native = Measure.run_transmit ~packets linux in
  let tw = World.create ~nics:1 Config.Xen_twin in
  let rewritten = Measure.run_transmit ~packets tw in
  let native_cpp = driver_cpp native and rewritten_cpp = driver_cpp rewritten in
  {
    stats = twin.Td_rewriter.Twin.stats;
    memory_fraction = Td_rewriter.Rewrite.memory_reference_fraction source;
    native_driver_cpp = native_cpp;
    rewritten_driver_cpp = rewritten_cpp;
    slowdown = rewritten_cpp /. native_cpp;
  }

(* ---- sensitivity ---- *)

type sensitivity_point = {
  switch_scale : float;
  kernel_scale : float;
  tx_speedup : float;
}

let scale_costs (c : Td_xen.Sys_costs.t) ~switch ~kernel =
  let s v = int_of_float (float_of_int v *. switch) in
  let k v = int_of_float (float_of_int v *. kernel) in
  {
    c with
    Td_xen.Sys_costs.domain_switch = s c.Td_xen.Sys_costs.domain_switch;
    event_channel = s c.Td_xen.Sys_costs.event_channel;
    hypercall = s c.Td_xen.Sys_costs.hypercall;
    kernel_tx_path = k c.Td_xen.Sys_costs.kernel_tx_path;
    kernel_rx_path = k c.Td_xen.Sys_costs.kernel_rx_path;
    dom0_tx_kernel = k c.Td_xen.Sys_costs.dom0_tx_kernel;
  }

let sensitivity ?(packets = 300) () =
  List.concat_map
    (fun switch_scale ->
      List.map
        (fun kernel_scale ->
          let costs =
            scale_costs Td_xen.Sys_costs.default ~switch:switch_scale
              ~kernel:kernel_scale
          in
          let twin =
            Measure.run_transmit ~packets
              (World.create ~nics:5 ~costs Config.Xen_twin)
          in
          let domu =
            Measure.run_transmit ~packets
              (World.create ~nics:5 ~costs Config.Xen_domU)
          in
          { switch_scale; kernel_scale; tx_speedup = Measure.speedup twin domu })
        [ 0.75; 1.0; 1.5 ])
    [ 0.5; 1.0; 2.0; 4.0 ]

(* ---- window x batch sweep ---- *)

type window_batch_point = {
  window_pages : int;
  batch : int;
  tx_cycles_per_packet : float;
  tx_hypercalls_per_packet : float;
  tx_hypercall_cycles_per_packet : float;
  rx_virqs_per_packet : float;
  window_reclaims : int;
  window_pages_in_use : int;
}

let metric r name =
  match List.assoc_opt name r.Measure.metrics with Some v -> v | None -> 0.0

let window_batch ?(packets = 250) ?(windows = [ 512; 1024; 4096 ])
    ?(batches = [ 1; 2; 4; 8; 16 ]) () =
  let costs = Td_xen.Sys_costs.default in
  List.concat_map
    (fun window_pages ->
      List.map
        (fun batch ->
          let tuning =
            {
              Config.default_tuning with
              Config.map_window_pages = window_pages;
              notify_batch = batch;
            }
          in
          (* small pool: its packet buffers are pinned in the window and
             can never be reclaimed, so the sweep's smallest window must
             still hold them all (96 entries pin ~430 pages) while keeping
             unpinned slots free to reclaim; fewer entries starve the
             receive ring *)
          let wt =
            World.create ~nics:1 ~pool_entries:96 ~tuning Config.Xen_twin
          in
          let tx = Measure.run_transmit ~packets wt in
          let hypercalls = metric tx "xen.hypercall" in
          let wr =
            World.create ~nics:1 ~pool_entries:96 ~tuning Config.Xen_twin
          in
          let rx = Measure.run_receive ~packets wr in
          let virqs = metric rx "xen.virq" in
          (* soak the map window: touch [window_pages] distinct dom0 pages
             (each maps a pair, so the working set is twice the window) —
             the reclaim policy must absorb it without failing *)
          let rt = Option.get (World.svm wt) in
          let space = World.dom0_space wt in
          let base =
            Td_mem.Addr_space.heap_alloc space
              (window_pages * Td_mem.Layout.page_size)
          in
          for i = 0 to window_pages - 1 do
            ignore
              (Td_svm.Runtime.translate rt
                 (base + (i * Td_mem.Layout.page_size)))
          done;
          let n = float_of_int packets in
          {
            window_pages;
            batch;
            tx_cycles_per_packet = tx.Measure.cycles_per_packet;
            tx_hypercalls_per_packet = hypercalls /. n;
            tx_hypercall_cycles_per_packet =
              hypercalls
              *. float_of_int costs.Td_xen.Sys_costs.hypercall
              /. n;
            rx_virqs_per_packet = virqs /. n;
            window_reclaims = Td_svm.Runtime.window_reclaims rt;
            window_pages_in_use = Td_svm.Runtime.window_pages_in_use rt;
          })
        batches)
    windows

(* ---- doorbell / adaptive polling sweep ---- *)

type doorbell_point = {
  db_mode : string;
  offered_per_window : int;
  db_packets : int;
  db_cycles_total : int;
  db_cycles_per_packet : float;
  hypercalls_per_packet : float;
  virqs_per_packet : float;
  db_doorbell_polls : int;
  db_suppressed_hypercalls : int;
  db_suppressed_virqs : int;
  db_mode_switches : int;
  final_tx_mode : string;
  db_tx_lat_samples : int;
  db_rx_lat_samples : int;
  db_tx_p50 : float;
  db_tx_p99 : float;
  db_rx_p50 : float;
  db_rx_p99 : float;
}

let mode_name = function
  | Td_kernel.Xen_netio.Interrupt -> "interrupt"
  | Td_kernel.Xen_netio.Polling -> "polling"

let doorbell ?(windows = 60) ?(warmup_windows = 4)
    ?(loads = [ 0; 1; 4; 16; 64 ]) () =
  let payload = String.init 1500 (fun i -> Char.chr (i land 0xff)) in
  (* three notification disciplines over the same domU path: the seed's
     interrupt-driven channel, the adaptive doorbell (NAPI-style), and
     the always-poll upper bound *)
  let modes =
    [
      ("interrupt", Config.default_tuning);
      ("adaptive", { Config.default_tuning with Config.doorbell = true });
      ( "always-poll",
        {
          Config.default_tuning with
          Config.doorbell = true;
          poll_entry_kicks = 0;
        } );
    ]
  in
  List.concat_map
    (fun (db_mode, tuning) ->
      List.map
        (fun load ->
          let w = World.create ~nics:1 ~tuning Config.Xen_domU in
          (* one tick window: [load] frames with interrupt mitigation
             every 8, then the timer tick (which is also the adaptive
             state machine's window boundary) *)
          (* a receive leg at a quarter of the offered load, so the rx
             direction exercises its latency ledger and the adaptive
             machinery sees bidirectional traffic *)
          let rx_per_window = load / 4 in
          let run_window () =
            for i = 0 to load - 1 do
              ignore (World.transmit w ~nic:0 ~payload);
              if i mod 8 = 7 then World.pump w
            done;
            for _ = 1 to rx_per_window do
              World.inject_rx w ~nic:0 ~payload
            done;
            World.pump w;
            World.tick w
          in
          for _ = 1 to warmup_windows do
            run_window ()
          done;
          World.reset_measurement w;
          for _ = 1 to windows do
            run_window ()
          done;
          (* teardown invariant: quiescing the guest may leave a partial
             batch staged — shutdown must deliver it, and nothing may
             have been lost between frontend and backend *)
          World.shutdown w;
          if World.staged_frames w <> 0 then
            failwith "Experiments.doorbell: frames staged after shutdown";
          if not (World.netio_conserved w) then
            failwith "Experiments.doorbell: frame conservation violated";
          let packets = World.wire_tx_frames w in
          let led = World.ledger w in
          let cycles = Td_xen.Ledger.grand_total led in
          let pctl dir p =
            Option.value ~default:0.0 (Td_xen.Ledger.latency_percentile led dir p)
          in
          let hypercalls = Td_obs.Metrics.counter_value "xen.hypercall" in
          let virqs = Td_obs.Metrics.counter_value "xen.virq" in
          let per_pkt v =
            if packets = 0 then 0.0
            else float_of_int v /. float_of_int packets
          in
          {
            db_mode;
            offered_per_window = load;
            db_packets = packets;
            db_cycles_total = cycles;
            db_cycles_per_packet = per_pkt cycles;
            hypercalls_per_packet = per_pkt hypercalls;
            virqs_per_packet = per_pkt virqs;
            db_doorbell_polls =
              Td_obs.Metrics.counter_value "netio.doorbell_polls";
            db_suppressed_hypercalls = World.netio_suppressed_hypercalls w;
            db_suppressed_virqs = World.netio_suppressed_virqs w;
            db_mode_switches = World.netio_mode_switches w;
            final_tx_mode = mode_name (World.netio_tx_mode w ~nic:0);
            db_tx_lat_samples = Td_xen.Ledger.latency_count led `Tx;
            db_rx_lat_samples = Td_xen.Ledger.latency_count led `Rx;
            db_tx_p50 = pctl `Tx 50.;
            db_tx_p99 = pctl `Tx 99.;
            db_rx_p50 = pctl `Rx 50.;
            db_rx_p99 = pctl `Rx 99.;
          })
        loads)
    modes

(* ---- multi-queue NICs / sharded simulation ---- *)

type mq_queue_point = {
  mq_queues : int;
  mq_wire_frames : int;
  mq_wire_bytes : int;
  mq_elapsed_cycles : int;
  mq_total_cycles : int;
  mq_sim_mbps : float;
}

type mq_shard_point = { mq_shards : int; mq_wall_s : float; mq_digest : string }

type mq_report = {
  mq_points_queues : mq_queue_point list;
  mq_points_shards : mq_shard_point list;
  mq_speedup_at_4 : float;
  mq_ledger_bit_identical : bool;
  mq_single_queue_identical : bool;
}

let mq_flows = 1024

let mq_payloads ~frames =
  (* [mq_flows] distinct IPv4/UDP 4-tuples (source ports 1024..2047),
     frames round-robined over them so the RSS buckets come out
     near-equal and the elapsed-cycles max tracks the mean *)
  Array.init frames (fun i ->
      let f = i mod mq_flows in
      Td_nic.Rss.ipv4_udp_payload ~len:1500
        {
          Td_nic.Rss.src_ip = 0x0a000002;
          dst_ip = 0x0a000001;
          src_port = 1024 + f;
          dst_port = 80;
        })

(* Canonical ledger digest: category cells, per-domain rows (already
   name-sorted), latency sample counts and percentiles per direction.
   Two runs whose merged ledgers digest equal agree on every number the
   figures are derived from. *)
let mq_digest led =
  let b = Buffer.create 256 in
  List.iter
    (fun (c, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s=%d;" (Td_xen.Ledger.category_name c) v))
    (Td_xen.Ledger.snapshot led);
  List.iter
    (fun (d, v) -> Buffer.add_string b (Printf.sprintf "%s=%d;" d v))
    (Td_xen.Ledger.domain_snapshot led);
  List.iter
    (fun (tag, dir) ->
      let p x =
        match Td_xen.Ledger.latency_percentile led dir x with
        | None -> "-"
        | Some v -> Printf.sprintf "%.0f" v
      in
      Buffer.add_string b
        (Printf.sprintf "%s:%d/%s/%s/%s;" tag
           (Td_xen.Ledger.latency_count led dir)
           (p 50.) (p 90.) (p 99.)))
    [ ("tx", `Tx); ("rx", `Rx) ];
  Buffer.contents b

(* One context's workload: a short warmup, measurement reset, then the
   doorbell bench's cadence (pump every 8 frames, tick every 64) and a
   full drain. Pure function of the payload array — the determinism the
   sharded digests rely on. *)
let mq_drive w payloads =
  let warm = min 16 (Array.length payloads) in
  for i = 0 to warm - 1 do
    ignore (World.transmit w ~nic:0 ~payload:payloads.(i))
  done;
  World.pump w;
  World.reset_measurement w;
  Array.iteri
    (fun i p ->
      ignore (World.transmit w ~nic:0 ~payload:p);
      if i mod 8 = 7 then World.pump w;
      if i mod 64 = 63 then World.tick w)
    payloads;
  World.pump w;
  World.shutdown w

let mq_leg ?(clock = fun () -> 0.0) ~queues ~shards ~frames () =
  let tuning = { Config.default_tuning with Config.queues; shards } in
  let mq = Mq.create ~nics:1 ~tuning Config.Xen_domU in
  let payloads = mq_payloads ~frames in
  let buckets = Array.make queues [] in
  Array.iter
    (fun p ->
      let q = Mq.queue_of_payload mq p in
      buckets.(q) <- p :: buckets.(q))
    payloads;
  let buckets = Array.map (fun l -> Array.of_list (List.rev l)) buckets in
  let t0 = clock () in
  ignore (Mq.run mq ~job:(fun ~queue w -> mq_drive w buckets.(queue)));
  let wall = clock () -. t0 in
  (mq, wall)

let multiqueue ?(frames = 2048) ?(queue_counts = [ 1; 2; 4; 8 ])
    ?(shard_counts = [ 1; 2; 4 ]) ?(clock = fun () -> 0.0) () =
  (* leg A: simulated-throughput scaling with the queue count, always
     sequential — the simulated numbers may not depend on the host *)
  let mq_points_queues =
    List.map
      (fun queues ->
        let mq, _ = mq_leg ~queues ~shards:1 ~frames () in
        let bytes = Mq.wire_tx_bytes mq in
        let elapsed = Mq.elapsed_cycles mq in
        let sim_s = float_of_int elapsed /. 3e9 in
        {
          mq_queues = queues;
          mq_wire_frames = Mq.wire_tx_frames mq;
          mq_wire_bytes = bytes;
          mq_elapsed_cycles = elapsed;
          mq_total_cycles = Mq.total_cycles mq;
          mq_sim_mbps =
            (if sim_s = 0. then 0.
             else float_of_int (bytes * 8) /. sim_s /. 1e6);
        })
      queue_counts
  in
  (* leg B: host wall-clock and ledger digests across shard counts at
     the full queue fan-out *)
  let mq_points_shards =
    List.map
      (fun shards ->
        let mq, wall = mq_leg ~clock ~queues:8 ~shards ~frames () in
        {
          mq_shards = shards;
          mq_wall_s = wall;
          mq_digest = mq_digest (Mq.merged_ledger mq);
        })
      shard_counts
  in
  let mq_ledger_bit_identical =
    match mq_points_shards with
    | [] -> true
    | p :: rest -> List.for_all (fun q -> String.equal p.mq_digest q.mq_digest) rest
  in
  let wall_of s =
    List.find_opt (fun p -> p.mq_shards = s) mq_points_shards
  in
  let mq_speedup_at_4 =
    match (wall_of 1, wall_of 4) with
    | Some a, Some b when b.mq_wall_s > 0. -> a.mq_wall_s /. b.mq_wall_s
    | _ -> 0.0
  in
  (* leg C: with the feature off (one queue, one shard) the aggregate
     must be indistinguishable from a plain unsharded world driving the
     identical payload sequence *)
  let mq_single_queue_identical =
    let mq, _ = mq_leg ~queues:1 ~shards:1 ~frames () in
    let payloads = mq_payloads ~frames in
    let w = World.create ~nics:1 ~guests:1 Config.Xen_domU in
    (* same Shard.run wrapper, so the observability discipline matches *)
    ignore (Shard.run ~shards:1 [| (fun () -> mq_drive w payloads) |]);
    String.equal (mq_digest (Mq.merged_ledger mq)) (mq_digest (World.ledger w))
    && Mq.wire_tx_frames mq = World.wire_tx_frames w
  in
  {
    mq_points_queues;
    mq_points_shards;
    mq_speedup_at_4;
    mq_ledger_bit_identical;
    mq_single_queue_identical;
  }

(* ---- ablations ---- *)

type ablation = { label : string; tx_cpu_scaled_mbps : float; note : string }

let ablations ?(packets = 400) () =
  let tx ?spill_everything ?rewrite_style ?cache_probes label note =
    let w =
      World.create ~nics:5 ?spill_everything ?rewrite_style ?cache_probes
        Config.Xen_twin
    in
    let r = Measure.run_transmit ~packets w in
    { label; tx_cpu_scaled_mbps = r.Measure.cpu_limited_mbps; note }
  in
  let baseline = tx "inline fast path (paper)" "liveness-allocated scratch" in
  let cached =
    tx ~cache_probes:true "probe caching (extension)"
      "reuses ~10% of probes but pinning the register costs spills: a wash \
       on this call-heavy driver"
  in
  let spill =
    tx ~spill_everything:true "always-spill" "no liveness analysis (fn. 3)"
  in
  let helper =
    tx ~rewrite_style:Td_rewriter.Rewrite.Shared_helper "shared helper"
      "call __svm_translate per access instead of inline probe"
  in
  let single_page =
    (* single-page mapping: survives only if no access straddles *)
    match
      let w = World.create ~nics:5 ~map_pairs:false Config.Xen_twin in
      Measure.run_transmit ~packets w
    with
    | r ->
        {
          label = "single-page mapping";
          tx_cpu_scaled_mbps = r.Measure.cpu_limited_mbps;
          note = "no straddling access hit a page boundary this run";
        }
    | exception World.Driver_aborted reason ->
        {
          label = "single-page mapping";
          tx_cpu_scaled_mbps = 0.0;
          note = "driver aborted: " ^ reason;
        }
    | exception Td_mem.Addr_space.Page_fault _ ->
        {
          label = "single-page mapping";
          tx_cpu_scaled_mbps = 0.0;
          note = "unhandled page fault on straddling access";
        }
  in
  [ baseline; cached; spill; helper; single_page ]

(* ---- fault-injection recovery sweep ---- *)

type recovery_point = {
  policy : Config.recovery;
  fault_rate : float;
  offered : int;
  delivered : int;
  availability : float;
  injected : int;
  recoveries : int;
  replayed : int;
  lost : int;
  guest_faults : int;
  frames_to_recover : float;
  serviceable : bool;
}

(* Per-site rates derived from one knob. The knob is the probability per
   *coarse* opportunity (a frame-ish unit of work); sites whose
   opportunities occur much more often are scaled down so each class
   still fires but no class dominates:
   - interp_bitflip fires per executed instruction (hundreds per frame);
   - svm_wild_access fires per SVM slow-path miss (rare after the stlb
     warms up), so it is scaled *up* to keep the class represented. *)
let soak_plan ~seed rate =
  {
    Td_fault.seed;
    svm_wild_access = min 0.5 (rate *. 50.0);
    interp_bitflip = rate /. 500.0;
    nic_stuck_dma = rate /. 4.0;
    nic_lost_irq = rate;
    nic_corrupt_rx = rate;
    upcall_fail = rate;
  }

let recovery_soak ?(frames = 2_000) ?(seed = 42) ~policy ~rate () =
  let tuning = { Config.default_tuning with Config.recovery = policy } in
  (* a demoted fast-path routine keeps the upcall site hot on every
     transmit; world construction happens before the plan is installed so
     boot is never perturbed *)
  let w =
    World.create ~nics:5 ~upcall_set:[ "spin_trylock" ] ~tuning
      Config.Xen_twin
  in
  let payload = String.init 1500 (fun i -> Char.chr (i land 0xff)) in
  let nics = World.nic_count w in
  if rate > 0.0 then Td_fault.Engine.install (soak_plan ~seed rate)
  else Td_fault.Engine.clear ();
  Td_fault.Engine.reset_counters ();
  let guest_faults_before = Td_xen.Guest_fault.total () in
  Fun.protect
    ~finally:(fun () -> Td_fault.Engine.clear ())
    (fun () ->
      for i = 0 to frames - 1 do
        (match World.transmit w ~nic:(i mod nics) ~payload with
        | (_ : bool) -> ()
        | exception World.Driver_aborted _ -> ()
        | exception World.Nic_quarantined _ -> ());
        (* keep the receive path hot too: its losses are counted in
           fault.lost_frames, not in TX availability *)
        if i mod 16 = 15 then begin
          (try World.inject_rx w ~nic:(i mod nics) ~payload:"rx probe"
           with World.Driver_aborted _ | World.Nic_quarantined _ -> ());
          try World.pump w
          with World.Driver_aborted _ | World.Nic_quarantined _ -> ()
        end;
        (* frequent ticks bound the watchdog's hang-detection latency and
           with it the frames lost to a stuck TX DMA engine *)
        if i mod 2 = 1 then
          try World.tick w
          with World.Driver_aborted _ | World.Nic_quarantined _ -> ()
      done;
      (try World.pump w
       with World.Driver_aborted _ | World.Nic_quarantined _ -> ());
      (* teardown invariant: nothing the soak staged may still be parked
         on an I/O channel, and every staged frame must be accounted for
         (completed or counted as dropped) after a full drain *)
      (try World.shutdown w
       with World.Driver_aborted _ | World.Nic_quarantined _ -> ());
      if World.staged_frames w <> 0 then
        failwith "Experiments.recovery_soak: frames staged after shutdown";
      if not (World.netio_conserved w) then
        failwith "Experiments.recovery_soak: frame conservation violated";
      let delivered = World.wire_tx_frames w in
      let recoveries = World.recoveries w in
      {
        policy;
        fault_rate = rate;
        offered = frames;
        delivered;
        availability = float_of_int delivered /. float_of_int (max 1 frames);
        injected = Td_fault.Engine.injected ();
        recoveries;
        replayed = World.replayed_frames w;
        lost = Td_fault.Engine.lost_frames ();
        guest_faults = Td_xen.Guest_fault.total () - guest_faults_before;
        frames_to_recover =
          float_of_int (frames - delivered) /. float_of_int (max 1 recoveries);
        serviceable = World.all_serviceable w;
      })

let recovery_sweep ?(frames = 2_000) ?(rates = [ 0.0; 0.002; 0.01 ])
    ?(policies = Config.all_recoveries) ?(seed = 42) () =
  List.concat_map
    (fun policy ->
      List.map (fun rate -> recovery_soak ~frames ~seed ~policy ~rate ()) rates)
    policies

(* ---- N-domain fleet scenarios (docs/FLEET.md) ---- *)

type fleet_shape = Bulk_stream | Rpc_burst | Incast

let fleet_shape_name = function
  | Bulk_stream -> "bulk-stream"
  | Rpc_burst -> "rpc-burst"
  | Incast -> "incast"

type fleet_report = {
  fl_domains : int;
  fl_frames : int;
  fl_offered_tx : int;
  fl_delivered_tx : int;
  fl_rx_injected : int;
  fl_rx_delivered : int;
  fl_availability : float;
  fl_throttled : int;
  fl_injected : int;
  fl_recoveries : int;
  fl_churned : int;
  fl_live_at_end : int;
  fl_tx_p50 : float;
  fl_tx_p99 : float;
  fl_tx_p999 : float;
  fl_rx_p50 : float;
  fl_rx_p99 : float;
  fl_rx_p999 : float;
  fl_conserved : bool;
  fl_staged_after_shutdown : int;
  fl_dangling_doorbells : int;
  fl_digest : string;
  fl_deterministic : bool;
}

(* every per-run number a reader could gate on goes into the digest, so
   "bit-identical digests" means the whole observable run matched *)
let fleet_digest w ~offered_tx ~rx_injected =
  let led = World.ledger w in
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter
    (fun (c, v) -> add "%s=%d;" (Td_xen.Ledger.category_name c) v)
    (Td_xen.Ledger.snapshot led);
  List.iter (fun (d, v) -> add "%s=%d;" d v) (Td_xen.Ledger.domain_snapshot led);
  List.iter
    (fun (tag, dir) ->
      add "%s:%d" tag (Td_xen.Ledger.latency_count led dir);
      List.iter
        (fun p ->
          add "/%s"
            (match Td_xen.Ledger.latency_percentile led dir p with
            | None -> "-"
            | Some v -> Printf.sprintf "%.0f" v))
        [ 50.; 99.; 99.9 ];
      add ";")
    [ ("tx", `Tx); ("rx", `Rx) ];
  add "wire=%d/%d;" (World.wire_tx_frames w) (World.wire_tx_bytes w);
  add "rx=%d/%d;" (World.delivered_rx_frames w) (World.delivered_rx_bytes w);
  add "offered=%d;injected_rx=%d;" offered_tx rx_injected;
  add "throttled=%d;faults=%d;recoveries=%d;" (World.quota_throttled w)
    (World.fault_injected w) (World.recoveries w);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* One fleet soak on a fresh world. All pacing comes from a private
   xorshift32 stream seeded by [seed], the quota clock is ledger cycles
   and the fault engine is per-world, so a rerun with the same arguments
   reproduces the run bit for bit. *)
let fleet_run ~domains ~frames ~nics ~seed ~churn ~quota ~fault_rate () =
  let tuning =
    {
      Config.default_tuning with
      Config.recovery = Config.Restart_replay;
      doorbell = true;
      quota =
        (if quota then
           (* the boot guest carries one channel per NIC (~66 grant
              entries each), so the fleet raises the concurrency cap the
              single-channel default assumes; the rate caps that police
              the soak are unchanged *)
           Some { Td_xen.Quota.default_limits with grant_entries = 512 }
         else None);
      fault_plan =
        (if fault_rate > 0.0 then Some (soak_plan ~seed fault_rate) else None);
    }
  in
  let w = World.create ~nics ~guests:1 ~tuning Config.Xen_domU in
  for _ = 2 to domains do
    ignore (World.create_guest w)
  done;
  let rng = ref (seed lor 1) in
  let rand bound =
    let x = !rng in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 17) in
    let x = (x lxor (x lsl 5)) land 0x3FFFFFFF in
    rng := x;
    x mod bound
  in
  let bulk = String.init 1500 (fun i -> Char.chr (i land 0xff)) in
  let rpc = String.make 64 'r' in
  let fanin = String.make 128 'i' in
  let shape_of g = match g mod 3 with
    | 0 -> Bulk_stream
    | 1 -> Rpc_burst
    | _ -> Incast
  in
  let offered_tx = ref 0 and rx_injected = ref 0 and churned = ref 0 in
  let moved () = !offered_tx + !rx_injected in
  let contained f =
    match f () with
    | (_ : bool) -> ()
    | exception World.Driver_aborted _ -> ()
    | exception World.Nic_quarantined _ -> ()
  in
  let contained_unit f =
    try f () with World.Driver_aborted _ | World.Nic_quarantined _ -> ()
  in
  let tx g payload =
    incr offered_tx;
    contained (fun () -> World.transmit_from w ~guest:g ~payload)
  in
  let churn_every =
    if churn > 0 then max 1 (frames / (churn + 1)) else max_int
  in
  let next_churn = ref churn_every in
  let round = ref 0 in
  while moved () < frames do
    incr round;
    for g = 0 to World.guest_slots w - 1 do
      if World.guest_alive w ~guest:g then
        match shape_of g with
        | Bulk_stream -> tx g bulk
        | Rpc_burst ->
            (* bursty RPC: a run of small frames roughly every 4th round *)
            if rand 4 = 0 then
              for _ = 1 to 8 do
                tx g rpc
              done
        | Incast ->
            (* fan-in: two wire arrivals per round converge on this guest *)
            for _ = 1 to 2 do
              incr rx_injected;
              contained_unit (fun () ->
                  World.inject_rx ~guest:g w ~nic:(g mod nics) ~payload:fanin)
            done
    done;
    contained_unit (fun () -> World.pump w);
    (* a tick per round keeps the watchdog's hang-detection latency — and
       with it the frames a wedged TX DMA engine can strand — bounded to
       a few rounds of traffic *)
    contained_unit (fun () -> World.tick w);
    (* domain churn: destroy a random live non-boot guest and (slots
       permitting — they are never reused) start a replacement *)
    if moved () >= !next_churn && churn > 0 then begin
      next_churn := !next_churn + churn_every;
      let live =
        List.filter
          (fun g -> g > 0 && World.guest_alive w ~guest:g)
          (List.init (World.guest_slots w) Fun.id)
      in
      match live with
      | [] -> ()
      | _ ->
          let victim = List.nth live (rand (List.length live)) in
          World.destroy_guest w ~guest:victim;
          if World.guest_slots w < 256 then ignore (World.create_guest w);
          incr churned
    end
  done;
  contained_unit (fun () -> World.pump w);
  contained_unit (fun () -> World.tick w);
  contained_unit (fun () -> World.shutdown w);
  let led = World.ledger w in
  let pct dir p =
    Option.value ~default:0.0 (Td_xen.Ledger.latency_percentile led dir p)
  in
  let live = World.guest_count w in
  let live_doorbells =
    (* one doorbell page per open channel (tuning.doorbell is on) *)
    World.doorbell_pages_mapped w
  in
  let open_channels = ref 0 in
  for g = 0 to World.guest_slots w - 1 do
    if World.guest_alive w ~guest:g then
      open_channels := !open_channels + (if g = 0 then nics else 1)
  done;
  {
    fl_domains = domains;
    fl_frames = moved ();
    fl_offered_tx = !offered_tx;
    fl_delivered_tx = World.wire_tx_frames w;
    fl_rx_injected = !rx_injected;
    fl_rx_delivered = World.delivered_rx_frames w;
    fl_availability =
      float_of_int (World.wire_tx_frames w) /. float_of_int (max 1 !offered_tx);
    fl_throttled = World.quota_throttled w;
    fl_injected = World.fault_injected w;
    fl_recoveries = World.recoveries w;
    fl_churned = !churned;
    fl_live_at_end = live;
    fl_tx_p50 = pct `Tx 50.;
    fl_tx_p99 = pct `Tx 99.;
    fl_tx_p999 = pct `Tx 99.9;
    fl_rx_p50 = pct `Rx 50.;
    fl_rx_p99 = pct `Rx 99.;
    fl_rx_p999 = pct `Rx 99.9;
    fl_conserved = World.netio_conserved w;
    fl_staged_after_shutdown = World.staged_frames w;
    fl_dangling_doorbells = max 0 (live_doorbells - !open_channels);
    fl_digest = fleet_digest w ~offered_tx:!offered_tx ~rx_injected:!rx_injected;
    fl_deterministic = true;
  }

let fleet ?(domains = 200) ?(frames = 1_000_000) ?(nics = 4) ?(seed = 7)
    ?(churn = 32) ?(quota = true) ?(fault_rate = 2e-5) ?(runs = 2) () =
  if domains < 1 || domains > 256 then
    invalid_arg "Experiments.fleet: domains must be 1..256 (slots cap)";
  let first =
    fleet_run ~domains ~frames ~nics ~seed ~churn ~quota ~fault_rate ()
  in
  let deterministic = ref true in
  for _ = 2 to max 1 runs do
    let again =
      fleet_run ~domains ~frames ~nics ~seed ~churn ~quota ~fault_rate ()
    in
    if not (String.equal again.fl_digest first.fl_digest) then
      deterministic := false
  done;
  { first with fl_deterministic = !deterministic }

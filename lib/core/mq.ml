(* The sharded multi-queue simulation: one World per (guest, queue)
   execution context, an RSS demux steering traffic onto contexts the
   same way the multi-queue e1000 steers frames onto rings, and a
   Shard runner advancing the contexts — sequentially or on OCaml
   domains — followed by a deterministic merge of the per-context
   cycle ledgers.

   Each context is a complete single-queue world pinned to its own
   stlb partition (World ~shard) and its own doorbell word-pair
   (Xen_netio ~queue), so contexts share no simulated state at all.
   Quota and fault engines are per-world (each context scopes its own
   private engines around every entry point), so quotas and fault
   plans compose with shards > 1; the one remaining process-global a
   parallel run could race on is the metric registry, which Shard.run
   disables around the whole run (both paths). An ambient (globally
   installed) engine is lifted into each context's tuning at [create]
   so spawned shard workers — whose ambient slots start empty — see
   the same plan/limits the sequential path would. *)

module Rss = Td_nic.Rss

type t = {
  cfg : Config.t;
  tuning : Config.tuning;
  queues : int;
  rss : Rss.t;
  ctxs : World.t array;
}

let create ?(nics = 1) ?(tuning = Config.default_tuning) cfg =
  let queues = tuning.Config.queues in
  if queues < 1 || queues > Td_nic.Regs.max_queues then
    invalid_arg
      (Printf.sprintf "Mq.create: queues must be 1..%d (got %d)"
         Td_nic.Regs.max_queues queues);
  (* Each context is a single-queue world: the multi-queue steering
     happens up here, one context per queue, exactly mirroring what the
     device-level RSS demux does across its rings. Ambient engines are
     lifted into the context tuning so every context gets a private
     engine with the same configuration — a shard worker's empty
     ambient slots then don't matter, and sequential and sharded runs
     stay bit-identical. *)
  let ctx_tuning =
    {
      tuning with
      Config.queues = 1;
      quota =
        (match tuning.Config.quota with
        | Some _ as q -> q
        | None -> Td_xen.Quota.limits ());
      fault_plan =
        (match tuning.Config.fault_plan with
        | Some _ as p -> p
        | None -> Td_fault.Engine.plan ());
    }
  in
  let ctxs =
    Array.init queues (fun q ->
        World.create ~nics ~guests:1 ~shard:q ~tuning:ctx_tuning cfg)
  in
  { cfg; tuning; queues; rss = Rss.of_seed tuning.Config.rss_seed; ctxs }

let config t = t.cfg
let queues t = t.queues
let shards t = t.tuning.Config.shards

let world t ~queue =
  if queue < 0 || queue >= t.queues then
    invalid_arg (Printf.sprintf "Mq.world: queue %d out of range" queue);
  t.ctxs.(queue)

let queue_of_payload t payload =
  Rss.queue_of_payload t.rss ~queues:t.queues payload

let transmit t ~nic ~payload =
  World.transmit t.ctxs.(queue_of_payload t payload) ~nic ~payload

let inject_rx ?guest t ~nic ~payload =
  World.inject_rx ?guest t.ctxs.(queue_of_payload t payload) ~nic ~payload

let iter t f = Array.iteri (fun q w -> f ~queue:q w) t.ctxs
let pump t = iter t (fun ~queue:_ w -> World.pump w)
let tick t = iter t (fun ~queue:_ w -> World.tick w)
let shutdown t = iter t (fun ~queue:_ w -> World.shutdown w)
let reset_measurement t = iter t (fun ~queue:_ w -> World.reset_measurement w)

let run t ~job =
  Shard.run ~shards:t.tuning.Config.shards
    (Array.init t.queues (fun q () -> job ~queue:q t.ctxs.(q)))

(* Deterministic merge: always in queue index order, whatever order the
   shards finished in. The result is bit-identical for any shard
   count. *)
let merged_ledger t =
  let into = Td_xen.Ledger.create () in
  Array.iter
    (fun w -> Td_xen.Ledger.merge_into ~into (World.ledger w))
    t.ctxs;
  into

let total_cycles t =
  Array.fold_left
    (fun acc w -> acc + Td_xen.Ledger.grand_total (World.ledger w))
    0 t.ctxs

(* Contexts advance concurrently in simulated time too — each queue is
   its own (guest, queue) pipeline — so the wall the simulation "took"
   is the slowest context, not the sum. This is the number the
   multiqueue bench divides by to show throughput scaling. *)
let elapsed_cycles t =
  Array.fold_left
    (fun acc w -> max acc (Td_xen.Ledger.grand_total (World.ledger w)))
    0 t.ctxs

let wire_tx_frames t =
  Array.fold_left (fun acc w -> acc + World.wire_tx_frames w) 0 t.ctxs

let wire_tx_bytes t =
  Array.fold_left (fun acc w -> acc + World.wire_tx_bytes w) 0 t.ctxs

let delivered_rx_frames t =
  Array.fold_left (fun acc w -> acc + World.delivered_rx_frames w) 0 t.ctxs

let publish_metrics t =
  if Td_obs.Control.enabled () then begin
    let set name v =
      Td_obs.Metrics.set (Td_obs.Metrics.gauge name) (float_of_int v)
    in
    set "world.shard_count" t.tuning.Config.shards;
    set "world.shard_queues" t.queues;
    set "world.shard_elapsed_cycles" (elapsed_cycles t);
    set "world.shard_total_cycles" (total_cycles t)
  end

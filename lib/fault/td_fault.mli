(** Deterministic, seeded fault injection for the twin-driver runtime.

    Engine state is first-class: {!Engine.make} builds an armed engine
    from a plan, and each OCaml domain carries an *ambient* engine slot
    (domain-local storage) that {!Engine.install}/{!Engine.clear} set
    directly and {!Engine.with_state} scopes around a callback. Runtime
    layers that host an injection site ask {!Engine.fire} on their hot
    path, guarded by {!Engine.active}, so a run without a visible
    engine executes exactly the pre-fault instruction stream —
    bit-identical ledgers, wire traffic and traces. A [World] that
    carries a private engine scopes it around its entry points, so N
    worlds (and N parallel shards — each spawned OCaml domain starts
    with an empty slot) inject independently.

    Each site class draws from its own xorshift stream seeded from
    [plan.seed], so two runs with the same plan and workload inject the
    same faults at the same points, regardless of how often other sites
    poll. Rates are per-opportunity probabilities (per slow-path miss,
    per interpreted instruction, per doorbell, per asserted interrupt,
    per received frame, per upcall). A rate of [0.] never consults the
    stream, so a zero plan is behaviourally identical to no plan. *)

type site =
  | Svm_wild_access  (** SVM slow path: wild access past the dom0 range *)
  | Interp_bitflip  (** interpreter: register/flag bit-flip *)
  | Nic_stuck_dma  (** NIC model: TX DMA engine wedges mid-ring *)
  | Nic_lost_irq  (** NIC model: asserted interrupt is never delivered *)
  | Nic_corrupt_rx  (** NIC model: RX descriptor corrupted, frame lost *)
  | Upcall_fail  (** upcall path: dom0 fails/times out the upcall *)

val all_sites : site list
val site_name : site -> string
(** Dotted metric suffix, e.g. ["svm_wild_access"]. *)

val site_of_name : string -> site option

type plan = {
  seed : int;
  svm_wild_access : float;
  interp_bitflip : float;
  nic_stuck_dma : float;
  nic_lost_irq : float;
  nic_corrupt_rx : float;
  upcall_fail : float;
}

val zero_plan : plan
(** Seed 0, every rate [0.] — installing it changes nothing. *)

val uniform_plan : ?seed:int -> float -> plan
(** Every site class at the same per-opportunity rate. *)

val rate : plan -> site -> float

module Engine : sig
  type state
  (** An armed engine: a plan, its per-site xorshift streams, the
      suspend depth, and the injection/loss counters. *)

  val make : plan -> state
  (** Build a fresh engine: streams seeded from [plan.seed], all
      counters zero, not suspended. *)

  val with_state : state -> (unit -> 'a) -> 'a
  (** Run [f] with [state] as the calling OCaml domain's ambient
      engine, restoring whatever was visible before on exit
      (exception-safe). Counters accumulate in [state] across calls, so
      a [World] can scope its private engine around each entry point
      and read totals afterwards with e.g.
      [with_state st Engine.injected]. *)

  val install : plan -> unit
  (** Arm the ambient slot with a fresh engine (so streams and all
      counters, including {!lost_frames}, start from zero). *)

  val clear : unit -> unit
  (** Empty the ambient slot. The previous engine's counters live on in
      its [state] (if the caller kept it); module-level readers return
      zero once the slot is empty. *)

  val plan : unit -> plan option
  val active : unit -> bool
  (** An engine is visible and injection is not {!suspend}ed. *)

  val fire : site -> bool
  (** One injection opportunity at [site]. [true] means the caller must
      inject its fault now; the engine has already counted it, bumped
      [fault.injected] and emitted a [Fault_injected] trace event. Never
      fires when inactive, suspended, or the site's rate is [0.]. *)

  val pick : site -> int -> int
  (** Deterministic choice in [0, bound) from [site]'s stream — for
      picking which register/bit to flip after {!fire} said yes. *)

  val suspend : (unit -> 'a) -> 'a
  (** Run [f] with injection masked on the visible engine (re-entrant).
      The supervisor wraps recovery and replay in this so restarts
      always make progress. A no-op wrapper when no engine is
      visible. *)

  val injected : unit -> int
  val injected_at : site -> int

  val note_lost : int -> unit
  (** Record frames deliberately dropped (not replayed) by fault
      handling — supervisor drops, stuck-ring discards, corrupt-RX
      losses. Counted (and [fault.lost_frames] bumped) even when no
      engine is visible — orphan losses land in a per-OCaml-domain
      counter — so recovery from organic aborts stays visible. *)

  val lost_frames : unit -> int
  val reset_counters : unit -> unit
end

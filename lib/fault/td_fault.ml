type site =
  | Svm_wild_access
  | Interp_bitflip
  | Nic_stuck_dma
  | Nic_lost_irq
  | Nic_corrupt_rx
  | Upcall_fail

let all_sites =
  [
    Svm_wild_access;
    Interp_bitflip;
    Nic_stuck_dma;
    Nic_lost_irq;
    Nic_corrupt_rx;
    Upcall_fail;
  ]

let site_index = function
  | Svm_wild_access -> 0
  | Interp_bitflip -> 1
  | Nic_stuck_dma -> 2
  | Nic_lost_irq -> 3
  | Nic_corrupt_rx -> 4
  | Upcall_fail -> 5

let n_sites = List.length all_sites

let site_name = function
  | Svm_wild_access -> "svm_wild_access"
  | Interp_bitflip -> "interp_bitflip"
  | Nic_stuck_dma -> "nic_stuck_dma"
  | Nic_lost_irq -> "nic_lost_irq"
  | Nic_corrupt_rx -> "nic_corrupt_rx"
  | Upcall_fail -> "upcall_fail"

let site_of_name name =
  List.find_opt (fun s -> site_name s = name) all_sites

type plan = {
  seed : int;
  svm_wild_access : float;
  interp_bitflip : float;
  nic_stuck_dma : float;
  nic_lost_irq : float;
  nic_corrupt_rx : float;
  upcall_fail : float;
}

let zero_plan =
  {
    seed = 0;
    svm_wild_access = 0.;
    interp_bitflip = 0.;
    nic_stuck_dma = 0.;
    nic_lost_irq = 0.;
    nic_corrupt_rx = 0.;
    upcall_fail = 0.;
  }

let uniform_plan ?(seed = 1) rate =
  {
    seed;
    svm_wild_access = rate;
    interp_bitflip = rate;
    nic_stuck_dma = rate;
    nic_lost_irq = rate;
    nic_corrupt_rx = rate;
    upcall_fail = rate;
  }

let rate plan = function
  | Svm_wild_access -> plan.svm_wild_access
  | Interp_bitflip -> plan.interp_bitflip
  | Nic_stuck_dma -> plan.nic_stuck_dma
  | Nic_lost_irq -> plan.nic_lost_irq
  | Nic_corrupt_rx -> plan.nic_corrupt_rx
  | Upcall_fail -> plan.upcall_fail

module Engine = struct
  type state = {
    plan : plan;
    streams : int array;
    mutable suspend_depth : int;
    mutable injected_total : int;
    injected_per_site : int array;
    mutable lost : int;
  }

  (* 63-bit xorshift; the seed mix keeps distinct sites on distinct,
     non-zero streams even for seed 0 *)
  let mask = (1 lsl 62) - 1

  let seed_stream seed i =
    let x = ((seed * 0x9E3779B1) + ((i + 1) * 0x85EBCA77)) land mask in
    if x = 0 then 0x2545F491 + i else x

  let make plan =
    {
      plan;
      streams = Array.init n_sites (seed_stream plan.seed);
      suspend_depth = 0;
      injected_total = 0;
      injected_per_site = Array.make n_sites 0;
      lost = 0;
    }

  (* The ambient engine slot is per OCaml domain (DLS), so parallel
     shards never observe each other's engines: a spawned shard worker
     starts with no ambient engine, and a World carrying a private
     engine scopes it around its entry points with [with_state]. *)
  let slot : state option ref Stdlib.Domain.DLS.key =
    Stdlib.Domain.DLS.new_key (fun () -> ref None)

  let current () = !(Stdlib.Domain.DLS.get slot)

  let with_state st f =
    let r = Stdlib.Domain.DLS.get slot in
    let saved = !r in
    r := Some st;
    Fun.protect ~finally:(fun () -> r := saved) f

  (* Lost frames are counted even when no engine is armed (organic
     aborts under a Restart policy still drop frames); they land in a
     per-OCaml-domain orphan counter so the accounting stays visible. *)
  let orphan_lost : int ref Stdlib.Domain.DLS.key =
    Stdlib.Domain.DLS.new_key (fun () -> ref 0)

  let next streams i =
    let x = streams.(i) in
    let x = x lxor ((x lsl 13) land mask) in
    let x = x lxor (x lsr 7) in
    let x = x lxor ((x lsl 17) land mask) in
    streams.(i) <- x;
    x

  let uniform streams i = float_of_int (next streams i land 0xFFFFFF) /. 16777216.

  let reset_counters () =
    (match current () with
    | Some e ->
        e.injected_total <- 0;
        Array.fill e.injected_per_site 0 n_sites 0;
        e.lost <- 0
    | None -> ());
    Stdlib.Domain.DLS.get orphan_lost := 0

  let install plan = Stdlib.Domain.DLS.get slot := Some (make plan)
  let clear () = Stdlib.Domain.DLS.get slot := None
  let plan () = Option.map (fun e -> e.plan) (current ())

  let active () =
    match current () with Some e -> e.suspend_depth = 0 | None -> false

  let fire site =
    match current () with
    | None -> false
    | Some e ->
        e.suspend_depth = 0
        && rate e.plan site > 0.
        &&
        let i = site_index site in
        uniform e.streams i < rate e.plan site
        &&
        (e.injected_total <- e.injected_total + 1;
         e.injected_per_site.(i) <- e.injected_per_site.(i) + 1;
         if Td_obs.Control.enabled () then begin
           Td_obs.Metrics.bump "fault.injected";
           Td_obs.Metrics.bump ("fault.injected." ^ site_name site);
           Td_obs.Trace.emit
             (Td_obs.Trace.Fault_injected { site = site_name site })
         end;
         true)

  let pick site bound =
    if bound <= 0 then invalid_arg "Td_fault.Engine.pick";
    match current () with
    | None -> 0
    | Some e -> next e.streams (site_index site) mod bound

  let suspend f =
    match current () with
    | None -> f ()
    | Some e ->
        e.suspend_depth <- e.suspend_depth + 1;
        Fun.protect ~finally:(fun () -> e.suspend_depth <- e.suspend_depth - 1) f

  let injected () = match current () with Some e -> e.injected_total | None -> 0

  let injected_at site =
    match current () with
    | Some e -> e.injected_per_site.(site_index site)
    | None -> 0

  let note_lost n =
    if n > 0 then begin
      (match current () with
      | Some e -> e.lost <- e.lost + n
      | None ->
          let r = Stdlib.Domain.DLS.get orphan_lost in
          r := !r + n);
      if Td_obs.Control.enabled () then
        Td_obs.Metrics.bump_by "fault.lost_frames" n
    end

  let lost_frames () =
    match current () with
    | Some e -> e.lost
    | None -> !(Stdlib.Domain.DLS.get orphan_lost)
end

(** Registry mapping code-address ranges to assembled programs.

    Programs do not live in simulated RAM; a code address identifies
    [(program, instruction index)] through this registry, which plays the
    role of the instruction fetch path. *)

type t

val create : unit -> t
val register : t -> Td_misa.Program.t -> unit
(** Raises [Invalid_argument] when the program's range overlaps an already
    registered program. *)

val replace : t -> Td_misa.Program.t -> unit
(** Like {!register}, but any overlapping programs are unregistered
    first — the supervisor reloading a fresh driver image over an
    aborted instance's address range. *)

val find : t -> int -> Td_misa.Program.t option
(** Program containing the given code address. *)

val resolve : t -> int -> Td_misa.Program.t * int
(** [(program, index)] for a code address. Raises [Not_found]. *)

(** Registry mapping code-address ranges to assembled programs.

    Programs do not live in simulated RAM; a code address identifies
    [(program, instruction index)] through this registry, which plays the
    role of the instruction fetch path. Programs are kept sorted by base
    so lookup is a binary search, and every mutation bumps a generation
    stamp that the interpreter's block cache checks before trusting a
    cached resolution. *)

type t

val create : unit -> t
val register : t -> Td_misa.Program.t -> unit
(** Raises [Invalid_argument] when the program's range overlaps an already
    registered program. *)

val replace : t -> Td_misa.Program.t -> unit
(** Like {!register}, but any overlapping programs are unregistered
    first — the supervisor reloading a fresh driver image over an
    aborted instance's address range. Bumps the {!generation}, so blocks
    the interpreter cached from the dead image can never execute. *)

val generation : t -> int
(** Monotonic stamp, bumped by {!register} and {!replace}. Consumers
    holding resolutions across calls (the interpreter's block cache)
    compare stamps and re-resolve on mismatch. Stamps are drawn from a
    process-global atomic counter, so they are unique across registry
    instances: distinct registries (one per simulation shard) never
    alias, and an interpreter can never mistake another registry's
    cached blocks for its own. Never 0 (the block cache's unfilled
    sentinel). *)

val find : t -> int -> Td_misa.Program.t option
(** Program containing the given code address (binary search). *)

val resolve : t -> int -> Td_misa.Program.t * int
(** [(program, index)] for a code address. Raises [Not_found]. *)

val resolve_linear : t -> int -> Td_misa.Program.t * int
(** Like {!resolve} but via a linear scan of the registered programs —
    the pre-block-engine fetch path, kept as the measured baseline for
    the [interp] benchmark. Raises [Not_found]. *)

(** Single-instruction execution semantics for MISA.

    The primitives shared by the two execution engines: {!Interp}'s
    per-step / basic-block dispatch and {!Superblock}'s compiled
    closures. Everything operates directly on the architectural
    {!State.t}; cycle costs (TLB, cache, MMIO models included) are
    charged as a side effect of execution, so both engines produce
    bit-identical simulated (cycles, steps) by construction wherever
    they share these helpers. *)

exception Fault of string
(** Execution fault: unresolved target, call into unmapped code, etc. *)

exception Timeout of int
(** Raised when the fuel budget of the innermost {!Interp.call} is
    exhausted — the resource-hoarding guard the paper delegates to
    VINO-style timeouts (§4.5.2). *)

val ret_sentinel : int
(** Pseudo return address marking the bottom of a simulated call. *)

val mask32 : int -> int
val sign_bit : int

val charge_access : State.t -> int -> Td_misa.Width.t -> unit
(** Charge the cycle cost of one memory access at the given address:
    base cost, TLB model, physical cache model, MMIO surcharge for
    device or unmapped pages. Mutates the TLB and cache. *)

val load : State.t -> int -> Td_misa.Width.t -> int
(** {!charge_access} + {!State.read_mem}. *)

val store : State.t -> int -> Td_misa.Width.t -> int -> unit

val addr_of_mem : State.t -> Td_misa.Operand.mem -> int
val eval : State.t -> Td_misa.Width.t -> Td_misa.Operand.t -> int
val assign : State.t -> Td_misa.Width.t -> Td_misa.Operand.t -> int -> unit
val eval32 : State.t -> Td_misa.Operand.t -> int
val assign32 : State.t -> Td_misa.Operand.t -> int -> unit

val set_zs : State.t -> int -> unit
val flags_logic : State.t -> int -> unit
val flags_add : State.t -> int -> int -> int -> unit
val flags_sub : State.t -> int -> int -> int -> unit
val cond_true : State.t -> Td_misa.Cond.t -> bool

val target_addr : State.t -> Td_misa.Insn.target -> int
val do_call : natives:Native.t -> State.t -> int -> unit
val do_jump : State.t -> int -> unit

val exec_str : State.t -> Td_misa.Insn.str_op -> Td_misa.Width.t -> bool -> unit
(** String op, optionally [rep]-prefixed; each element charges one unit
    of [State.fuel] so a corrupted huge ECX trips the watchdog. *)

val is_simple : Td_misa.Insn.t -> bool
(** Dual-issue model: register-only move/ALU instructions pair with an
    immediately preceding simple instruction and issue for free. *)

val advance : State.t -> unit
(** [pc <- pc + 4]. *)

val issue : State.t -> Td_misa.Insn.t -> unit
(** The issue/pairing preamble: charge the instruction's issue cost
    (or pair it into the previous empty slot) and update
    [State.pair_slot]. Separated from {!exec_body} so superblock
    compilation can aggregate issue cycles statically — the pair-slot
    evolution depends only on the instruction sequence and the entry
    slot state, never on data. *)

val exec_body : natives:Native.t -> State.t -> Td_misa.Insn.t -> unit
(** Execute one instruction's effects (operand evaluation, memory
    traffic, flags, control transfer, [pc] update) {e without} the
    issue preamble. *)

val exec_insn : natives:Native.t -> State.t -> Td_misa.Insn.t -> unit
(** {!issue} followed by {!exec_body}. *)

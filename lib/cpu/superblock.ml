(* Superblock compiler: lowers a hot straight-line region of MISA code
   into a single fused OCaml closure.

   A superblock starts at a basic-block head and extends through
   unconditional [Jmp]/fallthrough edges (stitching) up to a size cap;
   conditional branches become side exits, and anything the closure
   cannot fuse (calls, returns, indirect jumps, [Hlt]) ends the trace
   just before itself so the interpreter's per-block engine executes it.

   Three optimisations over per-instruction dispatch, all invisible in
   the simulated (cycles, steps):

   - issue cycles and step counts are aggregated statically per trace
     (the dual-issue pairing evolution is data-independent given the
     instruction sequence and the entry pair-slot state, which [run]
     demands to be clear);

   - flag computation is lazy: a flag-setting instruction whose flags
     are provably dead (overwritten before any read, side exit or
     possible fault) skips materialising them;

   - redundant stlb translations are eliminated: two accesses through
     the same base register to the same page reuse the translated
     frame, skipping the page-table walks while still driving the TLB
     and cache models with the exact per-access arguments.

   Abort accounting: a fault inside the closure charges the cycles,
   steps and fuel of the prefix up to and including the faulting
   instruction and restores its pc, exactly as per-step execution
   would, then re-raises. *)

open Td_misa

let mask32 = Semantics.mask32
let pshift = Td_mem.Layout.page_shift
let pmask = Td_mem.Layout.page_size - 1
let pmax32 = Td_mem.Layout.page_size - 4

let rd st i = Array.unsafe_get st.State.regs i
let wr st i v = Array.unsafe_set st.State.regs i v

(* --- trace construction --- *)

type ekind =
  | K_straight
  | K_stitch  (* in-program [Jmp Abs]: one issued step, zero runtime work *)
  | K_cond of Cond.t * int  (* [Jcc]: taken -> side exit to the address *)

type entry = { e_insn : Insn.t; e_pc : int; e_kind : ekind }

(* Walk forward from [idx], stitching through unconditional jumps that
   stay inside the program (a backward jump re-enters the trace, so a
   small loop unrolls until the cap). Returns the executed entries and
   the code address control reaches when the trace runs off its end. *)
let build_trace ~cap (prog : Program.t) idx =
  let code = prog.Program.code in
  let n = Array.length code in
  let base = prog.Program.base in
  let pc_of i = base + (4 * i) in
  let rec go acc count i =
    if i >= n || count >= cap then (List.rev acc, pc_of i)
    else
      let insn = code.(i) in
      let pc = pc_of i in
      match insn with
      | Insn.Jmp (Insn.Abs a)
        when a >= base && a < base + (4 * n) && (a - base) land 3 = 0 ->
          go
            ({ e_insn = insn; e_pc = pc; e_kind = K_stitch } :: acc)
            (count + 1)
            ((a - base) lsr 2)
      | Insn.Jcc (c, Insn.Abs a) ->
          go
            ({ e_insn = insn; e_pc = pc; e_kind = K_cond (c, a) } :: acc)
            (count + 1) (i + 1)
      | Insn.Jmp _ | Insn.Jcc (_, _) | Insn.Call _ | Insn.Ret | Insn.Hlt ->
          (* terminators run on the interpreter's block engine: the
             trace ends just before them *)
          (List.rev acc, pc)
      | _ ->
          go
            ({ e_insn = insn; e_pc = pc; e_kind = K_straight } :: acc)
            (count + 1) (i + 1)
  in
  go [] 0 idx

(* --- flag liveness --- *)

(* Flag bitmask: Z=1, S=2, C=4, O=8. *)
let fl_all = 0b1111

let fl_writes = function
  | Insn.Alu (_, _, _) | Insn.Cmp (_, _) | Insn.Test (_, _) | Insn.Imul (_, _)
    ->
      fl_all
  | Insn.Inc _ | Insn.Dec _ -> 0b0011
  | Insn.Neg _ -> 0b0111
  | Insn.Shift (_, _, _) -> 0b0111 (* only when the count is non-zero *)
  | Insn.Popf -> fl_all
  | _ -> 0

(* Flags an instruction overwrites unconditionally and before any point
   where it could fault — only these may kill a pending dead store. *)
let fl_kills = function
  | Insn.Shift (_, _, _) -> 0 (* writes nothing when the count is zero *)
  | Insn.Popf -> 0 (* the pop may fault first *)
  | i -> fl_writes i

let fl_reads = function
  | Insn.Jcc (_, _) | Insn.Pushf -> fl_all
  | Insn.Alu ((Insn.Adc | Insn.Sbb), _, _) -> 0b0100
  | _ -> 0

let imm_dst = function
  | Insn.Mov (_, _, Operand.Imm _)
  | Insn.Alu (_, _, Operand.Imm _)
  | Insn.Shift (_, _, Operand.Imm _)
  | Insn.Inc (Operand.Imm _)
  | Insn.Dec (Operand.Imm _)
  | Insn.Neg (Operand.Imm _)
  | Insn.Not (Operand.Imm _)
  | Insn.Xchg (Operand.Imm _, _)
  | Insn.Pop (Operand.Imm _) ->
      true
  | _ -> false

(* Conservative: can executing this instruction raise (Fault, Page_fault,
   Timeout)? Stitched jumps and in-trace [Jcc] are pre-resolved [Abs]
   and never raise. *)
let may_raise insn =
  match insn with
  | Insn.Nop -> false
  | Insn.Lea (m, _) -> m.Operand.sym <> None
  | Insn.Push _ | Insn.Pop _ | Insn.Pushf | Insn.Popf | Insn.Str (_, _, _)
  | Insn.Call _ | Insn.Ret ->
      true
  | Insn.Jmp (Insn.Abs _) | Insn.Jcc (_, Insn.Abs _) -> false
  | Insn.Jmp _ | Insn.Jcc (_, _) -> true
  | _ -> imm_dst insn || Insn.mem_operands insn <> []

(* An instruction's flag write may be skipped only if nothing inside the
   instruction itself can fault after the flags move — a memory (or
   immediate) destination is stored after the flags are set, so a store
   fault would leave per-step flags written but compiled flags not. *)
let flag_write_final = function
  | Insn.Alu (_, _, (Operand.Mem _ | Operand.Imm _))
  | Insn.Shift (_, _, (Operand.Mem _ | Operand.Imm _))
  | Insn.Inc (Operand.Mem _ | Operand.Imm _)
  | Insn.Dec (Operand.Mem _ | Operand.Imm _)
  | Insn.Neg (Operand.Mem _ | Operand.Imm _)
  | Insn.Popf ->
      false
  | _ -> true

(* May step [s] skip materialising its flags? True iff every flag it
   writes is overwritten before any read — where side exits, faults and
   the end of the trace all count as reads, since the next consumer is
   outside the block. *)
let elide_flags ents s =
  let e = ents.(s) in
  let w = fl_writes e.e_insn in
  let rec scan live t =
    if live = 0 then true
    else if t >= Array.length ents then false (* escapes the trace *)
    else
      let it = ents.(t).e_insn in
      if live land fl_reads it <> 0 then false
      else if may_raise it then false
      else scan (live land lnot (fl_kills it)) (t + 1)
  in
  w <> 0 && flag_write_final e.e_insn && scan w (s + 1)

(* --- stlb-redundancy elimination --- *)

(* One memo per base register: the last page translated through it and
   the frame/buffer it resolved to. Valid only while [c_stamp] matches —
   the stamp is bumped at every block entry and after any device access
   (a device hook may remap pages, e.g. the SVM window reclaim). *)
type slot = {
  mutable s_stamp : int;
  mutable s_page : int;
  mutable s_frame : int;
  mutable s_bytes : Bytes.t;
}

type ctx = {
  c_costs : Cost_model.t;
  c_stamp : int ref;
  c_elided : int ref;
  c_slots : (int, slot) Hashtbl.t; (* base-register index -> memo *)
}

let slot_for ctx ri =
  match Hashtbl.find_opt ctx.c_slots ri with
  | Some s -> s
  | None ->
      let s = { s_stamp = -1; s_page = -1; s_frame = 0; s_bytes = Bytes.empty } in
      Hashtbl.add ctx.c_slots ri s;
      s

(* Memoisable access: one base register, no index, resolved symbol, full
   width. Everything else takes the ordinary [Semantics] path. *)
let memo_mem (m : Operand.mem) =
  match (m.Operand.base, m.Operand.index, m.Operand.sym) with
  | Some r, None, None -> Some (Reg.index r, m.Operand.disp)
  | _ -> None

(* Replicates [Semantics.charge_access] + [Addr_space.read_within] with a
   single page-table lookup, filling the memo on frame-backed pages. *)
let load32_miss ctx slot st addr page off =
  let costs = ctx.c_costs in
  let cost = ref costs.Cost_model.mem_access in
  if not (Tlb.access st.State.tlb page) then
    cost := !cost + costs.Cost_model.tlb_miss;
  let space = State.space_for st addr in
  match Td_mem.Addr_space.lookup space ~vpage:page with
  | Some (Td_mem.Addr_space.Frame f) ->
      if not (Cache.access st.State.cache ((f lsl pshift) lor off)) then
        cost := !cost + costs.Cost_model.cache_miss;
      State.add_cycles st !cost;
      let b = Td_mem.Phys_mem.page (Td_mem.Addr_space.phys space) f in
      slot.s_stamp <- !(ctx.c_stamp);
      slot.s_page <- page;
      slot.s_frame <- f;
      slot.s_bytes <- b;
      Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
  | Some (Td_mem.Addr_space.Device d) ->
      cost := !cost + costs.Cost_model.mmio;
      State.add_cycles st !cost;
      incr ctx.c_stamp;
      d.Td_mem.Addr_space.dev_read off Width.W32
  | None ->
      cost := !cost + costs.Cost_model.mmio;
      State.add_cycles st !cost;
      raise
        (Td_mem.Addr_space.Page_fault
           { space = Td_mem.Addr_space.name space; addr })

let store32_miss ctx slot st addr page off v =
  let costs = ctx.c_costs in
  let cost = ref costs.Cost_model.mem_access in
  if not (Tlb.access st.State.tlb page) then
    cost := !cost + costs.Cost_model.tlb_miss;
  let space = State.space_for st addr in
  match Td_mem.Addr_space.lookup space ~vpage:page with
  | Some (Td_mem.Addr_space.Frame f) ->
      if not (Cache.access st.State.cache ((f lsl pshift) lor off)) then
        cost := !cost + costs.Cost_model.cache_miss;
      State.add_cycles st !cost;
      let b = Td_mem.Phys_mem.page (Td_mem.Addr_space.phys space) f in
      slot.s_stamp <- !(ctx.c_stamp);
      slot.s_page <- page;
      slot.s_frame <- f;
      slot.s_bytes <- b;
      Bytes.set_int32_le b off (Int32.of_int v)
  | Some (Td_mem.Addr_space.Device d) ->
      cost := !cost + costs.Cost_model.mmio;
      State.add_cycles st !cost;
      incr ctx.c_stamp;
      d.Td_mem.Addr_space.dev_write off Width.W32 v
  | None ->
      cost := !cost + costs.Cost_model.mmio;
      State.add_cycles st !cost;
      raise
        (Td_mem.Addr_space.Page_fault
           { space = Td_mem.Addr_space.name space; addr })

let gen_load32 ctx (m : Operand.mem) : State.t -> int =
  match memo_mem m with
  | None -> fun st -> Semantics.load st (Semantics.addr_of_mem st m) Width.W32
  | Some (ri, disp) ->
      let slot = slot_for ctx ri in
      let costs = ctx.c_costs in
      let stamp = ctx.c_stamp in
      let elided = ctx.c_elided in
      fun st ->
        let addr = (rd st ri + disp) land 0xFFFFFFFF in
        let off = addr land pmask in
        if off <= pmax32 then begin
          let page = addr lsr pshift in
          if slot.s_stamp = !stamp && slot.s_page = page then begin
            (* translation reused: the TLB and cache models still see
               the access (simulated cycles are bit-identical), only the
               two page-table hashtable walks are skipped *)
            let cost = ref costs.Cost_model.mem_access in
            if not (Tlb.access st.State.tlb page) then
              cost := !cost + costs.Cost_model.tlb_miss;
            if
              not (Cache.access st.State.cache ((slot.s_frame lsl pshift) lor off))
            then cost := !cost + costs.Cost_model.cache_miss;
            State.add_cycles st !cost;
            incr elided;
            Int32.to_int (Bytes.get_int32_le slot.s_bytes off) land 0xFFFFFFFF
          end
          else load32_miss ctx slot st addr page off
        end
        else Semantics.load st addr Width.W32 (* page straddle: slow path *)

let gen_store32 ctx (m : Operand.mem) : State.t -> int -> unit =
  match memo_mem m with
  | None ->
      fun st v -> Semantics.store st (Semantics.addr_of_mem st m) Width.W32 v
  | Some (ri, disp) ->
      let slot = slot_for ctx ri in
      let costs = ctx.c_costs in
      let stamp = ctx.c_stamp in
      let elided = ctx.c_elided in
      fun st v ->
        let addr = (rd st ri + disp) land 0xFFFFFFFF in
        let off = addr land pmask in
        if off <= pmax32 then begin
          let page = addr lsr pshift in
          if slot.s_stamp = !stamp && slot.s_page = page then begin
            let cost = ref costs.Cost_model.mem_access in
            if not (Tlb.access st.State.tlb page) then
              cost := !cost + costs.Cost_model.tlb_miss;
            if
              not (Cache.access st.State.cache ((slot.s_frame lsl pshift) lor off))
            then cost := !cost + costs.Cost_model.cache_miss;
            State.add_cycles st !cost;
            incr elided;
            Bytes.set_int32_le slot.s_bytes off (Int32.of_int v)
          end
          else store32_miss ctx slot st addr page off v
        end
        else Semantics.store st addr Width.W32 v

let gen_eval32 ctx : Operand.t -> State.t -> int = function
  | Operand.Imm n ->
      let n = n land 0xFFFFFFFF in
      fun _ -> n
  | Operand.Reg r ->
      let i = Reg.index r in
      fun st -> rd st i
  | Operand.Mem m -> gen_load32 ctx m

(* --- per-instruction code generation --- *)

(* Lower one straight-line instruction into a closure continuing with
   [k]. [flags] = materialise the flag writes (false only when liveness
   proved them dead). Anything without a specialised template falls back
   to [Semantics.exec_body], which is exactly the per-step semantics
   minus the (statically accounted) issue preamble; its [pc] advance is
   harmless — nothing inside a trace reads [pc], and every exit
   overwrites it. *)
let gen_straight ctx ~natives ~flags insn (k : State.t -> unit) : State.t -> unit
    =
  let generic () st =
    Semantics.exec_body ~natives st insn;
    k st
  in
  match insn with
  | Insn.Nop -> k
  | Insn.Mov (Width.W32, src, Operand.Reg d) -> (
      let di = Reg.index d in
      match src with
      | Operand.Imm n ->
          let n = n land 0xFFFFFFFF in
          fun st ->
            wr st di n;
            k st
      | Operand.Reg s ->
          let si = Reg.index s in
          fun st ->
            wr st di (rd st si);
            k st
      | Operand.Mem m ->
          let ld = gen_load32 ctx m in
          fun st ->
            wr st di (ld st);
            k st)
  | Insn.Mov (Width.W32, ((Operand.Imm _ | Operand.Reg _) as src), Operand.Mem m)
    ->
      let v = gen_eval32 ctx src in
      let stw = gen_store32 ctx m in
      fun st ->
        let x = v st in
        stw st x;
        k st
  | Insn.Lea (m, d) when m.Operand.sym = None -> (
      let di = Reg.index d in
      match (m.Operand.base, m.Operand.index) with
      | Some b, None ->
          let bi = Reg.index b and disp = m.Operand.disp in
          fun st ->
            wr st di ((rd st bi + disp) land 0xFFFFFFFF);
            k st
      | _ ->
          fun st ->
            wr st di (Semantics.addr_of_mem st m);
            k st)
  | Insn.Alu (((Insn.Add | Insn.Sub | Insn.And | Insn.Or | Insn.Xor) as op),
              src, Operand.Reg d) -> (
      let di = Reg.index d in
      let a = gen_eval32 ctx src in
      match (op, flags) with
      | Insn.Add, false ->
          fun st ->
            let av = a st in
            wr st di ((rd st di + av) land 0xFFFFFFFF);
            k st
      | Insn.Add, true ->
          fun st ->
            let av = a st in
            let bv = rd st di in
            let r = (bv + av) land 0xFFFFFFFF in
            Semantics.flags_add st av bv r;
            wr st di r;
            k st
      | Insn.Sub, false ->
          fun st ->
            let av = a st in
            wr st di ((rd st di - av) land 0xFFFFFFFF);
            k st
      | Insn.Sub, true ->
          fun st ->
            let av = a st in
            let bv = rd st di in
            let r = (bv - av) land 0xFFFFFFFF in
            Semantics.flags_sub st bv av r;
            wr st di r;
            k st
      | Insn.And, false ->
          fun st ->
            let av = a st in
            wr st di (rd st di land av);
            k st
      | Insn.And, true ->
          fun st ->
            let av = a st in
            let r = rd st di land av in
            Semantics.flags_logic st r;
            wr st di r;
            k st
      | Insn.Or, false ->
          fun st ->
            let av = a st in
            wr st di (rd st di lor av);
            k st
      | Insn.Or, true ->
          fun st ->
            let av = a st in
            let r = rd st di lor av in
            Semantics.flags_logic st r;
            wr st di r;
            k st
      | Insn.Xor, false ->
          fun st ->
            let av = a st in
            wr st di (rd st di lxor av);
            k st
      | Insn.Xor, true ->
          fun st ->
            let av = a st in
            let r = rd st di lxor av in
            Semantics.flags_logic st r;
            wr st di r;
            k st
      | (Insn.Adc | Insn.Sbb), _ -> generic ())
  | Insn.Cmp ((Operand.Mem _ as src), (Operand.Mem _ as dst))
  | Insn.Test ((Operand.Mem _ as src), (Operand.Mem _ as dst)) ->
      (* two memory operands: the model-mutation order of the two loads
         must match [exec_body] exactly — don't re-derive it here *)
      ignore src;
      ignore dst;
      generic ()
  | Insn.Cmp (src, dst) ->
      if not flags then
        match (src, dst) with
        | (Operand.Imm _ | Operand.Reg _), (Operand.Imm _ | Operand.Reg _) -> k
        | _ ->
            let a = gen_eval32 ctx src and b = gen_eval32 ctx dst in
            fun st ->
              ignore (a st : int);
              ignore (b st : int);
              k st
      else
        let a = gen_eval32 ctx src and b = gen_eval32 ctx dst in
        fun st ->
          let av = a st in
          let bv = b st in
          Semantics.flags_sub st bv av ((bv - av) land 0xFFFFFFFF);
          k st
  | Insn.Test (src, dst) ->
      if not flags then
        match (src, dst) with
        | (Operand.Imm _ | Operand.Reg _), (Operand.Imm _ | Operand.Reg _) -> k
        | _ ->
            let a = gen_eval32 ctx src and b = gen_eval32 ctx dst in
            fun st ->
              ignore (a st : int);
              ignore (b st : int);
              k st
      else
        let a = gen_eval32 ctx src and b = gen_eval32 ctx dst in
        fun st ->
          let av = a st in
          let bv = b st in
          Semantics.flags_logic st (av land bv);
          k st
  | Insn.Inc (Operand.Reg d) ->
      let di = Reg.index d in
      if flags then fun st ->
        let v = (rd st di + 1) land 0xFFFFFFFF in
        Semantics.set_zs st v;
        wr st di v;
        k st
      else fun st ->
        wr st di ((rd st di + 1) land 0xFFFFFFFF);
        k st
  | Insn.Dec (Operand.Reg d) ->
      let di = Reg.index d in
      if flags then fun st ->
        let v = (rd st di - 1) land 0xFFFFFFFF in
        Semantics.set_zs st v;
        wr st di v;
        k st
      else fun st ->
        wr st di ((rd st di - 1) land 0xFFFFFFFF);
        k st
  | Insn.Neg (Operand.Reg d) ->
      let di = Reg.index d in
      if flags then fun st ->
        let v = rd st di in
        let r = mask32 (-v) in
        Semantics.set_zs st r;
        st.State.cf <- v <> 0;
        wr st di r;
        k st
      else fun st ->
        wr st di (mask32 (-rd st di));
        k st
  | Insn.Not (Operand.Reg d) ->
      let di = Reg.index d in
      fun st ->
        wr st di (mask32 (lnot (rd st di)));
        k st
  | Insn.Shift (op, Operand.Imm n, Operand.Reg d) -> (
      let di = Reg.index d in
      let c = n land 0xFFFFFFFF land 31 in
      if c = 0 then k (* neither flags nor value change *)
      else
        match (op, flags) with
        | Insn.Shl, false ->
            fun st ->
              wr st di ((rd st di lsl c) land 0xFFFFFFFF);
              k st
        | Insn.Shl, true ->
            fun st ->
              let v = rd st di in
              st.State.cf <- (v lsr (32 - c)) land 1 = 1;
              let r = (v lsl c) land 0xFFFFFFFF in
              Semantics.set_zs st r;
              wr st di r;
              k st
        | Insn.Shr, false ->
            fun st ->
              wr st di (rd st di lsr c);
              k st
        | Insn.Shr, true ->
            fun st ->
              let v = rd st di in
              st.State.cf <- (v lsr (c - 1)) land 1 = 1;
              let r = v lsr c in
              Semantics.set_zs st r;
              wr st di r;
              k st
        | Insn.Sar, false ->
            fun st ->
              let v = rd st di in
              let sv = if v land Semantics.sign_bit <> 0 then v - 0x1_0000_0000 else v in
              wr st di (mask32 (sv asr c));
              k st
        | Insn.Sar, true ->
            fun st ->
              let v = rd st di in
              let sv = if v land Semantics.sign_bit <> 0 then v - 0x1_0000_0000 else v in
              st.State.cf <- (sv asr (c - 1)) land 1 = 1;
              let r = mask32 (sv asr c) in
              Semantics.set_zs st r;
              wr st di r;
              k st)
  | _ -> generic ()

(* --- the compiled block --- *)

type t = {
  entry_pc : int;
  max_steps : int;  (* fuel needed for a worst-case (full) pass *)
  fused : State.t -> unit;
  stamp : int ref;
  cur : int ref;  (* step index currently executing, for abort accounting *)
  exc_cycles : int array;  (* issue-cycle prefix through step s *)
  exc_slot : bool array;  (* pair_slot after step s *)
  exc_pc : int array;  (* pc of step s *)
}

let entry_pc blk = blk.entry_pc
let max_steps blk = blk.max_steps

let compile ~natives ~costs ~elided ~cap (prog : Program.t) idx =
  let trace, exit_pc = build_trace ~cap prog idx in
  match trace with
  | [] -> None
  | _ ->
      let ents = Array.of_list trace in
      let s_count = Array.length ents in
      (* static issue/pairing tables, assuming entry pair_slot = false
         ([run] is only entered with the slot clear) *)
      let exc_cycles = Array.make s_count 0 in
      let exc_slot = Array.make s_count false in
      let exc_pc = Array.make s_count 0 in
      let cyc = ref 0 and slot_state = ref false in
      Array.iteri
        (fun s e ->
          let simple = Semantics.is_simple e.e_insn in
          if simple && !slot_state then slot_state := false
          else begin
            cyc := !cyc + costs.Cost_model.insn;
            slot_state := simple
          end;
          exc_cycles.(s) <- !cyc;
          exc_slot.(s) <- !slot_state;
          exc_pc.(s) <- e.e_pc)
        ents;
      let stamp = ref 0 and cur = ref 0 in
      let ctx =
        { c_costs = costs; c_stamp = stamp; c_elided = elided;
          c_slots = Hashtbl.create 4 }
      in
      let mk_exit ~steps ~cycles ~pslot ~pc st =
        st.State.cycles <- st.State.cycles + cycles;
        st.State.steps <- st.State.steps + steps;
        st.State.fuel <- st.State.fuel - steps;
        st.State.pair_slot <- pslot;
        st.State.pc <- pc
      in
      let fused =
        ref
          (mk_exit ~steps:s_count ~cycles:exc_cycles.(s_count - 1)
             ~pslot:exc_slot.(s_count - 1) ~pc:exit_pc)
      in
      for s = s_count - 1 downto 0 do
        let e = ents.(s) in
        let k = !fused in
        let op =
          match e.e_kind with
          | K_stitch -> k
          | K_cond (c, target) ->
              let taken =
                mk_exit ~steps:(s + 1) ~cycles:exc_cycles.(s)
                  ~pslot:exc_slot.(s) ~pc:target
              in
              fun st -> if Semantics.cond_true st c then taken st else k st
          | K_straight ->
              gen_straight ctx ~natives ~flags:(not (elide_flags ents s))
                e.e_insn k
        in
        (* only faulting-capable steps pay for position tracking *)
        let op =
          if may_raise e.e_insn then fun st ->
            cur := s;
            op st
          else op
        in
        fused := op
      done;
      Some
        {
          entry_pc = prog.Program.base + (4 * idx);
          max_steps = s_count;
          fused = !fused;
          stamp;
          cur;
          exc_cycles;
          exc_slot;
          exc_pc;
        }

let run blk st =
  incr blk.stamp; (* memoised translations never survive between runs *)
  blk.cur := 0;
  try blk.fused st
  with e ->
    (* abort: charge the prefix through the faulting step and restore its
       pc, matching per-step execution exactly *)
    let s = !(blk.cur) in
    st.State.cycles <- st.State.cycles + Array.unsafe_get blk.exc_cycles s;
    st.State.steps <- st.State.steps + s + 1;
    st.State.fuel <- st.State.fuel - (s + 1);
    st.State.pair_slot <- Array.unsafe_get blk.exc_slot s;
    st.State.pc <- Array.unsafe_get blk.exc_pc s;
    raise e

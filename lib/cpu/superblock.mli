(** Superblock compilation: hot straight-line regions of MISA code
    lowered to a single fused OCaml closure.

    A superblock starts at a basic-block head and is stitched through
    unconditional [Jmp]/fallthrough edges up to a size cap; conditional
    branches become side exits, and calls, returns, indirect jumps and
    [Hlt] end the trace just before themselves. The closure aggregates
    issue-cycle/step accounting statically, skips provably-dead flag
    computation, and memoises stlb translations within a run (same base
    register, same page → reuse the translated frame) — all without
    changing the simulated (cycles, steps), which stay bit-identical
    with per-step execution. See docs/INTERPRETER.md. *)

type t

val entry_pc : t -> int
(** Code address of the first instruction of the trace. *)

val max_steps : t -> int
(** Instructions executed by a worst-case (full straight-through) pass;
    the caller must hold at least this much fuel before {!run}. *)

val compile :
  natives:Native.t ->
  costs:Cost_model.t ->
  elided:int ref ->
  cap:int ->
  Td_misa.Program.t ->
  int ->
  t option
(** [compile ~natives ~costs ~elided ~cap prog idx] lowers the trace
    starting at instruction [idx] of [prog], following at most [cap]
    instructions. [elided] is bumped once per stlb translation skipped
    at run time (the [interp.stlb_elided] gauge). Returns [None] when
    the first instruction is itself a terminator the closure cannot
    fuse — the caller should never retry that address. *)

val run : t -> State.t -> unit
(** Execute the block. Preconditions (the interpreter bails out to the
    per-block engine otherwise): [State.pc] is the block's entry,
    [pair_slot] is clear, and [fuel >= max_steps]. On a fault the
    cycles/steps/fuel of the prefix through the faulting instruction are
    charged and [pc] is restored to it, exactly as per-step execution
    would, before the exception is re-raised. *)

(** Per-routine cycle attribution — the "more detailed profiling" the
    paper uses to locate overheads inside the twin configurations (§6.2).

    Attach a profiler to an interpreter and every simulated cycle is
    charged to the label region enclosing the instruction that spent it
    (labels are routine entry points in driver code, so this yields
    per-routine profiles, including the rewriter-emitted slow paths). *)

type t

val attach : Interp.t -> t
(** Installs the interpreter hook (replacing any existing one). *)

val cycles_by_label : t -> (string * int) list
(** Sorted by descending cycles. Label names are qualified as
    ["program:label"]. *)

val total_cycles : t -> int
val reset : t -> unit

val publish : t -> unit
(** Fold the current per-label cycle totals into the {!Td_obs.Metrics}
    registry as [profile.cycles.<program:label>] gauges, so profiles
    travel in the same JSON export as every other metric. *)

val pp : Format.formatter -> t -> unit
(** Top entries with percentages. *)

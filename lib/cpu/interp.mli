(** The MISA instruction interpreter with cycle accounting.

    Executes assembled programs registered in a {!Code_registry.t} against
    the architectural {!State.t}. Costs are charged per instruction and per
    memory access (TLB and cache models included), so the measured
    native-vs-rewritten driver slowdown is an output of execution, not an
    assumption. *)

exception Fault of string
(** Execution fault: unresolved target, call into unmapped code, etc. *)

exception Timeout of int
(** Raised when [max_steps] is exceeded — the resource-hoarding guard the
    paper delegates to VINO-style timeouts (§4.5.2). *)

type t = {
  state : State.t;
  registry : Code_registry.t;
  natives : Native.t;
  mutable hook : (State.t -> Td_misa.Insn.t -> unit) option;
}

val create :
  ?hook:(State.t -> Td_misa.Insn.t -> unit) ->
  State.t -> Code_registry.t -> Native.t -> t

val add_hook : t -> (State.t -> Td_misa.Insn.t -> unit) -> unit
(** Compose a per-instruction hook with any already installed (existing
    hooks run first). Hooks fire before the instruction executes, so
    register reads observe pre-execution state. Use this instead of
    assigning [hook] directly — a profiler and an instrumentation watcher
    must not clobber each other. *)

val ret_sentinel : int
(** Pseudo return address marking the bottom of a simulated call; popping
    it ends {!call}. *)

val call : ?max_steps:int -> t -> entry:int -> args:int list -> int
(** [call t ~entry ~args] pushes [args] (cdecl, right-to-left), invokes the
    routine at code address [entry] and runs to completion; returns [EAX].
    [ESP] must already point to a valid stack. Default [max_steps] is
    1_000_000. *)

val exec_insn : t -> Td_misa.Program.t -> Td_misa.Insn.t -> unit
(** Execute one instruction (for tests); [state.pc] must identify it. *)

(** The MISA instruction interpreter with cycle accounting.

    Executes assembled programs registered in a {!Code_registry.t} against
    the architectural {!State.t}. Costs are charged per instruction and per
    memory access (TLB and cache models included), so the measured
    native-vs-rewritten driver slowdown is an output of execution, not an
    assumption. Three dispatch engines share one instruction semantics
    ({!Semantics}) and produce bit-identical simulated (cycles, steps);
    the full pipeline is documented in docs/INTERPRETER.md. *)

exception Fault of string
(** Execution fault: unresolved target, call into unmapped code, etc.
    (The same exception as {!Semantics.Fault}.) *)

exception Timeout of int
(** Raised when [max_steps] is exceeded — the resource-hoarding guard the
    paper delegates to VINO-style timeouts (§4.5.2). (The same exception
    as {!Semantics.Timeout}.) *)

type dispatch =
  | Block
      (** resolve the program once per control transfer through a
          generation-stamped block cache, then execute straight-line by
          array index *)
  | Per_step
      (** resolve every instruction through a linear registry scan — the
          pre-block-engine fetch path, kept as the measured baseline for
          the [interp] benchmark *)
  | Compiled
      (** the default: like [Block], but a hotness counter per block
          entry promotes hot blocks to compiled {!Superblock}s — fused
          closures with static cycle accounting, lazy flags and in-block
          stlb-redundancy elimination. Falls back to the block engine
          for cold, uncompilable or bailed-out entries. *)

type t = {
  state : State.t;
  registry : Code_registry.t;
  natives : Native.t;
  mutable hook : (State.t -> Td_misa.Insn.t -> unit) option;
  mutable dispatch : dispatch;
  mutable bc_gen : int;
  bc_addr : int array;
  bc_prog : Td_misa.Program.t option array;
  bc_idx : int array;
  mutable block_hits : int;
  mutable block_misses : int;
  mutable invalidations : int;
  cc_addr : int array;
  cc_hot : int array;
  cc_blk : Superblock.t option array;
  mutable compile_threshold : int;
  mutable superblock_cap : int;
  mutable compiled_blocks : int;
  mutable compiled_hits : int;
  mutable compiled_bailouts : int;
  stlb_elided : int ref;
}
(** Construct only through {!create}; the cache fields are exposed for
    the record type's sake and are not part of the stable API. *)

val create :
  ?hook:(State.t -> Td_misa.Insn.t -> unit) ->
  State.t -> Code_registry.t -> Native.t -> t

val set_dispatch : t -> dispatch -> unit

val set_compile_threshold : t -> int -> unit
(** Dispatches of a block entry before it is promoted to compiled form
    (default 8; clamped to at least 1). Only meaningful in [Compiled]
    dispatch. *)

val set_superblock_cap : t -> int -> unit
(** Maximum instructions traced into one superblock, including stitched
    continuation blocks (default 64; clamped to at least 1). *)

val add_hook : t -> (State.t -> Td_misa.Insn.t -> unit) -> unit
(** Compose a per-instruction hook with any already installed (existing
    hooks run first). Hooks fire before the instruction executes, so
    register reads observe pre-execution state. Use this instead of
    assigning [hook] directly — a profiler and an instrumentation watcher
    must not clobber each other. Installing any hook forces the
    per-instruction slow path (see {!call}). *)

val ret_sentinel : int
(** Pseudo return address marking the bottom of a simulated call; popping
    it ends {!call}. *)

val call : ?max_steps:int -> t -> entry:int -> args:int list -> int
(** [call t ~entry ~args] pushes [args] (cdecl, right-to-left), invokes the
    routine at code address [entry] and runs to completion; returns [EAX].
    [ESP] must already point to a valid stack. Default [max_steps] is
    1_000_000. The budget is charged per executed instruction and per
    [rep] string element, so a corrupted huge ECX times out rather than
    spinning forever. With a hook installed or a fault plan active,
    execution takes the per-instruction slow path regardless of the
    dispatch mode; otherwise it proceeds a basic block — or a compiled
    superblock — at a time. Simulated cycles, steps and metrics are
    identical on every path, only host wall-clock differs. *)

val exec_insn : t -> Td_misa.Insn.t -> unit
(** Execute one instruction (for tests); [state.pc] must identify it. *)

(* engine introspection (the [interp] bench) *)

val block_hits : t -> int
val block_misses : t -> int

val invalidations : t -> int
(** Whole-cache flushes (block cache and compiled cache together)
    triggered by a registry generation change
    ({!Code_registry.register} / {!Code_registry.replace}). *)

val compiled_blocks : t -> int
(** Superblocks compiled (promotions). *)

val compiled_hits : t -> int
(** Dispatches served by running a compiled superblock. *)

val compiled_bailouts : t -> int
(** Dispatches that found a compiled superblock but fell back to the
    block engine (pair slot set on entry, or not enough fuel left for a
    worst-case pass). *)

val stlb_elided : t -> int
(** stlb translations skipped inside compiled superblocks (same base
    register, same page: the translated frame is reused while the TLB
    and cache models still observe the access). *)

val publish_metrics : t -> unit
(** Export the engine counters as [interp.block_hits] /
    [interp.block_misses] / [interp.invalidations] /
    [interp.compiled_blocks] / [interp.compiled_hits] /
    [interp.compiled_bailouts] / [interp.stlb_elided] gauges. Called
    explicitly by the interp benchmark — never during normal runs, so
    the registry snapshot embedded in every Measure result stays
    bit-identical with pre-engine exports. *)

(** The MISA instruction interpreter with cycle accounting.

    Executes assembled programs registered in a {!Code_registry.t} against
    the architectural {!State.t}. Costs are charged per instruction and per
    memory access (TLB and cache models included), so the measured
    native-vs-rewritten driver slowdown is an output of execution, not an
    assumption. *)

exception Fault of string
(** Execution fault: unresolved target, call into unmapped code, etc. *)

exception Timeout of int
(** Raised when [max_steps] is exceeded — the resource-hoarding guard the
    paper delegates to VINO-style timeouts (§4.5.2). *)

type dispatch =
  | Block
      (** resolve the program once per control transfer through a
          generation-stamped block cache, then execute straight-line by
          array index (the default) *)
  | Per_step
      (** resolve every instruction through a linear registry scan — the
          pre-block-engine fetch path, kept as the measured baseline for
          the [interp] benchmark *)

type t = {
  state : State.t;
  registry : Code_registry.t;
  natives : Native.t;
  mutable hook : (State.t -> Td_misa.Insn.t -> unit) option;
  mutable dispatch : dispatch;
  mutable fuel : int;
  mutable fuel_cap : int;
  mutable bc_gen : int;
  bc_addr : int array;
  bc_prog : Td_misa.Program.t option array;
  bc_idx : int array;
  mutable block_hits : int;
  mutable block_misses : int;
  mutable invalidations : int;
}
(** Construct only through {!create}; the cache fields are exposed for
    the record type's sake and are not part of the stable API. *)

val create :
  ?hook:(State.t -> Td_misa.Insn.t -> unit) ->
  State.t -> Code_registry.t -> Native.t -> t

val set_dispatch : t -> dispatch -> unit

val add_hook : t -> (State.t -> Td_misa.Insn.t -> unit) -> unit
(** Compose a per-instruction hook with any already installed (existing
    hooks run first). Hooks fire before the instruction executes, so
    register reads observe pre-execution state. Use this instead of
    assigning [hook] directly — a profiler and an instrumentation watcher
    must not clobber each other. *)

val ret_sentinel : int
(** Pseudo return address marking the bottom of a simulated call; popping
    it ends {!call}. *)

val call : ?max_steps:int -> t -> entry:int -> args:int list -> int
(** [call t ~entry ~args] pushes [args] (cdecl, right-to-left), invokes the
    routine at code address [entry] and runs to completion; returns [EAX].
    [ESP] must already point to a valid stack. Default [max_steps] is
    1_000_000. The budget is charged per executed instruction and per
    [rep] string element, so a corrupted huge ECX times out rather than
    spinning forever. Without a hook or an active fault plan, execution
    proceeds a basic block at a time (see {!dispatch}); simulated cycles,
    steps and metrics are identical on both paths, only host wall-clock
    differs. *)

val exec_insn : t -> Td_misa.Insn.t -> unit
(** Execute one instruction (for tests); [state.pc] must identify it. *)

(* engine introspection (the [interp] bench) *)

val block_hits : t -> int
val block_misses : t -> int

val invalidations : t -> int
(** Whole-cache flushes triggered by a registry generation change
    ({!Code_registry.register} / {!Code_registry.replace}). *)

val publish_metrics : t -> unit
(** Export the three counters above as [interp.block_hits] /
    [interp.block_misses] / [interp.invalidations] gauges. Called
    explicitly by the interp benchmark — never during normal runs, so
    the registry snapshot embedded in every Measure result stays
    bit-identical with pre-engine exports. *)

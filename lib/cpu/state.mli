(** Architectural state of a simulated CPU.

    The CPU executes within a current address space (the running domain's),
    with the hypervisor region optionally overlaid — Xen maps itself into
    the top of every guest address space, which is what lets the hypervisor
    driver run "in any guest context" without switching page tables. *)

type t = {
  regs : int array;  (** eight GPRs, indexed by {!Td_misa.Reg.index} *)
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable ovf : bool;
  mutable pc : int;
  mutable space : Td_mem.Addr_space.t;  (** current domain's space *)
  mutable hyp_space : Td_mem.Addr_space.t option;
      (** hypervisor overlay for addresses at/above {!Td_mem.Layout.hyp_base} *)
  tlb : Tlb.t;
  cache : Cache.t;
  costs : Cost_model.t;
  mutable cycles : int;
  mutable steps : int;
  mutable pair_slot : bool;
      (** dual-issue model: set when the previous instruction was a simple
          ALU/move that left an empty pairing slot *)
  mutable fuel : int;
      (** instruction budget of the innermost {!Interp.call}; charged per
          executed instruction and per [rep] element so a corrupted huge
          ECX cannot defeat the watchdog. Lives on the state (not the
          interpreter) so compiled superblocks can charge it directly. *)
  mutable fuel_cap : int;  (** the budget [fuel] started from *)
}

val create :
  ?costs:Cost_model.t -> ?hyp_space:Td_mem.Addr_space.t ->
  Td_mem.Addr_space.t -> t

val get : t -> Td_misa.Reg.t -> int
val set : t -> Td_misa.Reg.t -> int -> unit
(** Values are masked to 32 bits. *)

val set_narrow : t -> Td_misa.Width.t -> Td_misa.Reg.t -> int -> unit
(** Write only the low [w] bits, preserving the upper bits (x86 partial
    register semantics). *)

val space_for : t -> int -> Td_mem.Addr_space.t
(** Address space used to translate the given virtual address: the
    hypervisor overlay for hypervisor-range addresses, else the current
    space. *)

val read_mem : t -> int -> Td_misa.Width.t -> int
(** Cost-free memory read (used by native routines; simulated instructions
    go through {!Interp} which adds cycle accounting). *)

val write_mem : t -> int -> Td_misa.Width.t -> int -> unit

val push : t -> int -> unit
val pop : t -> int

val stack_arg : t -> int -> int
(** [stack_arg t i] reads the [i]-th 32-bit argument above the return
    address, following the cdecl convention used by driver code. *)

val add_cycles : t -> int -> unit
val switch_space : t -> Td_mem.Addr_space.t -> unit
(** Change the current address space and flush the TLB. *)

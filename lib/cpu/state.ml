type t = {
  regs : int array;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable ovf : bool;
  mutable pc : int;
  mutable space : Td_mem.Addr_space.t;
  mutable hyp_space : Td_mem.Addr_space.t option;
  tlb : Tlb.t;
  cache : Cache.t;
  costs : Cost_model.t;
  mutable cycles : int;
  mutable steps : int;
  mutable pair_slot : bool;
  mutable fuel : int;
  mutable fuel_cap : int;
}

let create ?(costs = Cost_model.default) ?hyp_space space =
  {
    regs = Array.make 8 0;
    zf = false;
    sf = false;
    cf = false;
    ovf = false;
    pc = 0;
    space;
    hyp_space;
    tlb = Tlb.create ();
    cache = Cache.create ();
    costs;
    cycles = 0;
    steps = 0;
    pair_slot = false;
    fuel = max_int;
    fuel_cap = max_int;
  }

let mask32 v = v land 0xFFFFFFFF

(* [Reg.index] is total over the 8-register file and [regs] always has
   length 8, so the bounds check is provably dead on the hot path *)
let get t r = Array.unsafe_get t.regs (Td_misa.Reg.index r)
let set t r v = Array.unsafe_set t.regs (Td_misa.Reg.index r) (mask32 v)

let set_narrow t w r v =
  match w with
  | Td_misa.Width.W32 -> set t r v
  | _ ->
      let m = Td_misa.Width.mask w in
      let old = get t r in
      set t r ((old land lnot m) lor (v land m))

let space_for t addr =
  match t.hyp_space with
  | Some hs when Td_mem.Layout.in_hyp_range addr -> hs
  | Some _ | None -> t.space

let read_mem t addr w = Td_mem.Addr_space.read (space_for t addr) addr w
let write_mem t addr w v = Td_mem.Addr_space.write (space_for t addr) addr w v

let push t v =
  let sp = get t Td_misa.Reg.ESP - 4 in
  set t Td_misa.Reg.ESP sp;
  write_mem t sp Td_misa.Width.W32 v

let pop t =
  let sp = get t Td_misa.Reg.ESP in
  let v = read_mem t sp Td_misa.Width.W32 in
  set t Td_misa.Reg.ESP (sp + 4);
  v

let stack_arg t i =
  let sp = get t Td_misa.Reg.ESP in
  read_mem t (sp + 4 + (4 * i)) Td_misa.Width.W32

let add_cycles t n = t.cycles <- t.cycles + n

let switch_space t space =
  t.space <- space;
  Tlb.flush t.tlb

exception Fault of string
exception Timeout of int

type dispatch = Block | Per_step

(* Direct-mapped block cache: pc -> (program, index), valid only while
   [bc_gen] matches the registry generation. 512 slots keyed on the
   instruction index bits of the pc; collisions just re-resolve. *)
let bc_size = 512

type t = {
  state : State.t;
  registry : Code_registry.t;
  natives : Native.t;
  mutable hook : (State.t -> Td_misa.Insn.t -> unit) option;
  mutable dispatch : dispatch;
  mutable fuel : int;
      (* instruction budget of the innermost [call]; charged per executed
         instruction and per [rep] element so a corrupted huge ECX cannot
         defeat the watchdog *)
  mutable fuel_cap : int;
  mutable bc_gen : int;
  bc_addr : int array; (* -1 = empty slot *)
  bc_prog : Td_misa.Program.t option array;
  bc_idx : int array;
  mutable block_hits : int;
  mutable block_misses : int;
  mutable invalidations : int;
}

let create ?hook state registry natives =
  {
    state;
    registry;
    natives;
    hook;
    dispatch = Block;
    fuel = max_int;
    fuel_cap = max_int;
    bc_gen = 0;
    bc_addr = Array.make bc_size (-1);
    bc_prog = Array.make bc_size None;
    bc_idx = Array.make bc_size 0;
    block_hits = 0;
    block_misses = 0;
    invalidations = 0;
  }

let set_dispatch t d = t.dispatch <- d

let add_hook t h =
  match t.hook with
  | None -> t.hook <- Some h
  | Some g -> t.hook <- Some (fun st insn -> g st insn; h st insn)

let ret_sentinel = 0xFFFF_FFF0
let mask32 v = v land 0xFFFFFFFF
let sign_bit = 0x80000000

open Td_misa

(* --- memory access with cost accounting --- *)

let charge_access t addr w =
  let st = t.state in
  let cost = ref st.State.costs.Cost_model.mem_access in
  if not (Tlb.access st.State.tlb (Td_mem.Layout.page_of addr)) then
    cost := !cost + st.State.costs.Cost_model.tlb_miss;
  (let space = State.space_for st addr in
   match
     Td_mem.Addr_space.frame_of_vpage space ~vpage:(Td_mem.Layout.page_of addr)
   with
   | Some frame ->
       let paddr = (frame * Td_mem.Layout.page_size) + Td_mem.Layout.offset_of addr in
       if not (Cache.access st.State.cache paddr) then
         cost := !cost + st.State.costs.Cost_model.cache_miss
   | None ->
       (* device page or unmapped (the access itself will fault if
          unmapped); MMIO is an uncached PCI transaction *)
       cost := !cost + st.State.costs.Cost_model.mmio);
  ignore w;
  State.add_cycles st !cost

let load t addr w =
  charge_access t addr w;
  State.read_mem t.state addr w

let store t addr w v =
  charge_access t addr w;
  State.write_mem t.state addr w v

(* --- operand evaluation --- *)

let addr_of_mem st (m : Operand.mem) =
  let base = match m.Operand.base with Some r -> State.get st r | None -> 0 in
  let index =
    match m.Operand.index with
    | Some (r, s) -> State.get st r * Operand.scale_factor s
    | None -> 0
  in
  (match m.Operand.sym with
  | Some s -> raise (Fault ("unresolved symbol in operand: " ^ s))
  | None -> ());
  mask32 (m.Operand.disp + base + index)

let eval t w = function
  | Operand.Imm n -> n land Width.mask w
  | Operand.Reg r -> State.get t.state r land Width.mask w
  | Operand.Mem m -> load t (addr_of_mem t.state m) w

let assign t w dst v =
  match dst with
  | Operand.Imm _ -> raise (Fault "store to immediate")
  | Operand.Reg r -> State.set_narrow t.state w r v
  | Operand.Mem m -> store t (addr_of_mem t.state m) w v

(* 32-bit specialisations of [eval]/[assign] for the dominant case:
   registers are kept 32-bit by [State.set], so the width mask is
   redundant, and W32 [set_narrow] is just [set] *)
let eval32 t = function
  | Operand.Imm n -> n land 0xFFFFFFFF
  | Operand.Reg r -> State.get t.state r
  | Operand.Mem m -> load t (addr_of_mem t.state m) Width.W32

let assign32 t dst v =
  match dst with
  | Operand.Imm _ -> raise (Fault "store to immediate")
  | Operand.Reg r -> State.set t.state r v
  | Operand.Mem m -> store t (addr_of_mem t.state m) Width.W32 v

(* --- flags --- *)

let set_zs st v =
  st.State.zf <- mask32 v = 0;
  st.State.sf <- v land sign_bit <> 0

let flags_logic st v =
  set_zs st v;
  st.State.cf <- false;
  st.State.ovf <- false

let flags_add st a b r =
  set_zs st r;
  st.State.cf <- a + b > 0xFFFFFFFF;
  st.State.ovf <- (a lxor r) land (b lxor r) land sign_bit <> 0

let flags_sub st dst src r =
  set_zs st r;
  st.State.cf <- dst < src;
  st.State.ovf <- (dst lxor src) land (dst lxor r) land sign_bit <> 0

let cond_true st = function
  | Cond.E -> st.State.zf
  | Cond.NE -> not st.State.zf
  | Cond.L -> st.State.sf <> st.State.ovf
  | Cond.LE -> st.State.zf || st.State.sf <> st.State.ovf
  | Cond.G -> (not st.State.zf) && st.State.sf = st.State.ovf
  | Cond.GE -> st.State.sf = st.State.ovf
  | Cond.B -> st.State.cf
  | Cond.BE -> st.State.cf || st.State.zf
  | Cond.A -> (not st.State.cf) && not st.State.zf
  | Cond.AE -> not st.State.cf
  | Cond.S -> st.State.sf
  | Cond.NS -> not st.State.sf

(* --- control transfer --- *)

let target_addr t = function
  | Insn.Lbl l -> raise (Fault ("unresolved label: " ^ l))
  | Insn.Abs a -> a
  | Insn.Ind o -> eval32 t o

let do_call t dest =
  let st = t.state in
  State.add_cycles st st.State.costs.Cost_model.call;
  if Native.is_native_addr dest then begin
    match Native.lookup t.natives dest with
    | Some fn ->
        State.add_cycles st st.State.costs.Cost_model.native_call;
        (* Native routines may re-enter the interpreter (upcalls), which
           clobbers [pc]; resume at the instruction after the call. The
           return address is pushed so that [State.stack_arg] sees the
           same frame layout as in a simulated call, and popped here in
           lieu of the callee's [ret]. *)
        let resume = st.State.pc + 4 in
        State.push st resume;
        fn st;
        ignore (State.pop st);
        st.State.pc <- resume
    | None -> raise (Fault (Printf.sprintf "call to unregistered native 0x%x" dest))
  end
  else begin
    State.push st (st.State.pc + 4);
    st.State.pc <- dest
  end

let do_jump t dest =
  if Native.is_native_addr dest then
    raise (Fault (Printf.sprintf "jump to native address 0x%x" dest));
  t.state.State.pc <- dest

(* --- string operations --- *)

let str_step t op w =
  let st = t.state in
  let n = Width.bytes w in
  State.add_cycles st st.State.costs.Cost_model.str_unit;
  (match op with
  | Insn.Movs ->
      let src = State.get st Reg.ESI and dst = State.get st Reg.EDI in
      let v = load t src w in
      store t dst w v;
      State.set st Reg.ESI (src + n);
      State.set st Reg.EDI (dst + n)
  | Insn.Stos ->
      let dst = State.get st Reg.EDI in
      store t dst w (State.get st Reg.EAX land Width.mask w);
      State.set st Reg.EDI (dst + n)
  | Insn.Lods ->
      let src = State.get st Reg.ESI in
      let v = load t src w in
      State.set_narrow st w Reg.EAX v;
      State.set st Reg.ESI (src + n))

let exec_str t op w rep =
  let st = t.state in
  if not rep then str_step t op w
  else
    while State.get st Reg.ECX <> 0 do
      (* each element consumes call budget: a corrupted (or hostile) huge
         ECX must trip the timeout guard, not spin the watchdog forever *)
      if t.fuel <= 0 then raise (Timeout t.fuel_cap);
      t.fuel <- t.fuel - 1;
      str_step t op w;
      State.set st Reg.ECX (State.get st Reg.ECX - 1)
    done

(* --- main dispatch --- *)

(* Dual-issue model: a register-only move/ALU instruction pairs with an
   immediately preceding simple instruction and issues for free. This is
   the superscalar effect that keeps the SVM fast path (mostly simple ALU
   work) cheaper than ten sequential cycles. *)
let is_simple = function
  | Insn.Mov (_, (Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Lea (_, _)
  | Insn.Alu (_, (Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Shift (_, (Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Cmp ((Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Test ((Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Inc (Operand.Reg _)
  | Insn.Dec (Operand.Reg _)
  | Insn.Nop ->
      true
  | _ -> false

(* top-level so the hot loop does not allocate a closure per instruction *)
let advance st = st.State.pc <- st.State.pc + 4

let exec_insn t insn =
  let st = t.state in
  let simple = is_simple insn in
  (if simple && st.State.pair_slot then
     (* issues in the previous instruction's empty slot *)
     st.State.pair_slot <- false
   else begin
     State.add_cycles st st.State.costs.Cost_model.insn;
     st.State.pair_slot <- simple
   end);
  match insn with
  | Insn.Mov (w, src, dst) ->
      let v = eval t w src in
      assign t w dst v;
      advance st
  | Insn.Movzx (w, src, r) ->
      let v = eval t w src in
      State.set st r (v land Width.mask w);
      advance st
  | Insn.Lea (m, r) ->
      State.set st r (addr_of_mem st m);
      advance st
  | Insn.Alu (op, src, dst) ->
      let a = eval32 t src and b = eval32 t dst in
      let r =
        match op with
        | Insn.Add ->
            let r = mask32 (b + a) in
            flags_add st a b r;
            r
        | Insn.Sub ->
            let r = mask32 (b - a) in
            flags_sub st b a r;
            r
        | Insn.Adc ->
            let carry = if st.State.cf then 1 else 0 in
            let r = mask32 (b + a + carry) in
            set_zs st r;
            st.State.cf <- b + a + carry > 0xFFFFFFFF;
            st.State.ovf <- (a lxor r) land (b lxor r) land sign_bit <> 0;
            r
        | Insn.Sbb ->
            let borrow = if st.State.cf then 1 else 0 in
            let r = mask32 (b - a - borrow) in
            set_zs st r;
            st.State.cf <- b < a + borrow;
            st.State.ovf <- (b lxor a) land (b lxor r) land sign_bit <> 0;
            r
        | Insn.And ->
            let r = b land a in
            flags_logic st r;
            r
        | Insn.Or ->
            let r = b lor a in
            flags_logic st r;
            r
        | Insn.Xor ->
            let r = b lxor a in
            flags_logic st r;
            r
      in
      assign32 t dst r;
      advance st
  | Insn.Shift (op, cnt, dst) ->
      let c = eval32 t cnt land 31 in
      let v = eval32 t dst in
      let r =
        if c = 0 then v
        else
          match op with
          | Insn.Shl ->
              st.State.cf <- (v lsr (32 - c)) land 1 = 1;
              mask32 (v lsl c)
          | Insn.Shr ->
              st.State.cf <- (v lsr (c - 1)) land 1 = 1;
              v lsr c
          | Insn.Sar ->
              let signed = if v land sign_bit <> 0 then v - 0x1_0000_0000 else v in
              st.State.cf <- (signed asr (c - 1)) land 1 = 1;
              mask32 (signed asr c)
      in
      if c <> 0 then set_zs st r;
      assign32 t dst r;
      advance st
  | Insn.Cmp (src, dst) ->
      let a = eval32 t src and b = eval32 t dst in
      flags_sub st b a (mask32 (b - a));
      advance st
  | Insn.Test (src, dst) ->
      let a = eval32 t src and b = eval32 t dst in
      flags_logic st (a land b);
      advance st
  | Insn.Inc o ->
      let v = mask32 (eval32 t o + 1) in
      set_zs st v;
      assign32 t o v;
      advance st
  | Insn.Dec o ->
      let v = mask32 (eval32 t o - 1) in
      set_zs st v;
      assign32 t o v;
      advance st
  | Insn.Neg o ->
      let v = eval32 t o in
      let r = mask32 (-v) in
      set_zs st r;
      st.State.cf <- v <> 0;
      assign32 t o r;
      advance st
  | Insn.Not o ->
      assign32 t o (mask32 (lnot (eval32 t o)));
      advance st
  | Insn.Imul (src, r) ->
      let signed v = if v land sign_bit <> 0 then v - 0x1_0000_0000 else v in
      let full = signed (eval32 t src) * signed (State.get st r) in
      let v = mask32 full in
      set_zs st v;
      (* x86: CF = OF = 1 when the signed product does not fit in 32 bits *)
      let overflow = full < -0x8000_0000 || full > 0x7FFF_FFFF in
      st.State.cf <- overflow;
      st.State.ovf <- overflow;
      State.set st r v;
      advance st
  | Insn.Xchg (o, r) ->
      let ov = eval32 t o in
      let rv = State.get st r in
      assign32 t o rv;
      State.set st r ov;
      advance st
  | Insn.Push o ->
      let v = eval32 t o in
      charge_access t (State.get st Reg.ESP - 4) Width.W32;
      State.push st v;
      advance st
  | Insn.Pop o ->
      charge_access t (State.get st Reg.ESP) Width.W32;
      let v = State.pop st in
      assign32 t o v;
      advance st
  | Insn.Jmp tgt -> do_jump t (target_addr t tgt)
  | Insn.Jcc (c, tgt) ->
      (* [tgt] is a pre-resolved [Abs] after assembly, so a taken branch
         costs an assignment, not a label-string hash *)
      if cond_true st c then st.State.pc <- target_addr t tgt else advance st
  | Insn.Call tgt -> do_call t (target_addr t tgt)
  | Insn.Ret ->
      charge_access t (State.get st Reg.ESP) Width.W32;
      State.add_cycles st st.State.costs.Cost_model.call;
      st.State.pc <- State.pop st
  | Insn.Str (op, w, rep) ->
      exec_str t op w rep;
      advance st
  | Insn.Pushf ->
      let v =
        (if st.State.zf then 1 else 0)
        lor (if st.State.sf then 2 else 0)
        lor (if st.State.cf then 4 else 0)
        lor if st.State.ovf then 8 else 0
      in
      charge_access t (State.get st Reg.ESP - 4) Width.W32;
      State.push st v;
      advance st
  | Insn.Popf ->
      charge_access t (State.get st Reg.ESP) Width.W32;
      let v = State.pop st in
      st.State.zf <- v land 1 <> 0;
      st.State.sf <- v land 2 <> 0;
      st.State.cf <- v land 4 <> 0;
      st.State.ovf <- v land 8 <> 0;
      advance st
  | Insn.Nop -> advance st
  | Insn.Hlt -> st.State.pc <- ret_sentinel

(* fault-injection site: flip one bit of architectural state before the
   next instruction executes — a soft error in the register file or the
   flags, the kind of corruption the SVM containment story must absorb *)
let flip_regs = Reg.[| EAX; EBX; ECX; EDX; ESI; EDI |]

let inject_bitflip st =
  match Td_fault.Engine.pick Td_fault.Interp_bitflip 8 with
  | 6 -> st.State.zf <- not st.State.zf
  | 7 -> st.State.cf <- not st.State.cf
  | r ->
      let reg = flip_regs.(r) in
      let bit = Td_fault.Engine.pick Td_fault.Interp_bitflip 32 in
      State.set st reg (State.get st reg lxor (1 lsl bit))

(* --- instruction fetch --- *)

(* A jump into unmapped, misaligned or out-of-range code is a driver
   fault, not a simulator crash: everything surfaces as [Fault] so the
   supervisor's recovery policies apply. *)
let unmapped pc =
  raise (Fault (Printf.sprintf "execution at unmapped address 0x%x" pc))

let resolve_uncached t pc =
  match Code_registry.find t.registry pc with
  | None -> unmapped pc
  | Some p ->
      let off = pc - p.Program.base in
      if off land 3 <> 0 then
        raise
          (Fault
             (Printf.sprintf "execution at misaligned code address 0x%x" pc));
      (p, off lsr 2)

(* the pre-block-engine fetch path, selectable as the [Per_step]
   dispatch mode so the interp benchmark can measure the old cost with
   the same harness *)
let resolve_legacy t pc =
  match Code_registry.resolve_linear t.registry pc with
  | res -> res
  | exception Not_found -> unmapped pc
  | exception Invalid_argument msg -> raise (Fault msg)

let resolve_cached t pc =
  let gen = Code_registry.generation t.registry in
  if t.bc_gen <> gen then begin
    (* a program was registered or replaced: drop every cached block so a
       dead twin's image can never execute after a supervised reload *)
    Array.fill t.bc_addr 0 bc_size (-1);
    Array.fill t.bc_prog 0 bc_size None;
    t.bc_gen <- gen;
    t.invalidations <- t.invalidations + 1
  end;
  let slot = (pc lsr 2) land (bc_size - 1) in
  if Array.unsafe_get t.bc_addr slot = pc then begin
    t.block_hits <- t.block_hits + 1;
    match Array.unsafe_get t.bc_prog slot with
    | Some p -> (p, Array.unsafe_get t.bc_idx slot)
    | None -> assert false
  end
  else begin
    t.block_misses <- t.block_misses + 1;
    let ((p, i) as res) = resolve_uncached t pc in
    t.bc_addr.(slot) <- pc;
    t.bc_prog.(slot) <- Some p;
    t.bc_idx.(slot) <- i;
    res
  end

let step t =
  let st = t.state in
  let prog, idx =
    match t.dispatch with
    | Block -> resolve_cached t st.State.pc
    | Per_step -> resolve_legacy t st.State.pc
  in
  let insn = prog.Program.code.(idx) in
  (match t.hook with Some h -> h st insn | None -> ());
  if
    Td_fault.Engine.active ()
    && Td_fault.Engine.fire Td_fault.Interp_bitflip
  then inject_bitflip st;
  st.State.steps <- st.State.steps + 1;
  exec_insn t insn

(* Watchers (profiler, stlb-hit counter, fault injection) need to observe
   every instruction; without them dispatch is closure-free. Hooks are
   installed and fault plans change only outside driver execution, and a
   [Call] ends a block, so checking once per control transfer is exactly
   equivalent to the old per-instruction checks. *)
let needs_slow_path t =
  (match t.hook with Some _ -> true | None -> false)
  || (match t.dispatch with Per_step -> true | Block -> false)
  || Td_fault.Engine.active ()

let call ?(max_steps = 1_000_000) t ~entry ~args =
  let st = t.state in
  List.iter (State.push st) (List.rev args);
  State.push st ret_sentinel;
  st.State.pc <- entry;
  (* natives re-enter the interpreter (upcalls), so each nested call gets
     its own budget and the outer one is restored on the way out *)
  let saved_fuel = t.fuel and saved_cap = t.fuel_cap in
  t.fuel <- max_steps;
  t.fuel_cap <- max_steps;
  Fun.protect
    ~finally:(fun () ->
      t.fuel <- saved_fuel;
      t.fuel_cap <- saved_cap)
    (fun () ->
      while st.State.pc <> ret_sentinel do
        if t.fuel <= 0 then raise (Timeout t.fuel_cap);
        if needs_slow_path t then begin
          t.fuel <- t.fuel - 1;
          step t
        end
        else begin
          (* straight-line fast path: resolve once, execute to the end of
             the basic block by array index. In-block instructions only
             fall through (control transfers end blocks), so the pc needs
             no sentinel or bounds re-check until the block is done. *)
          let prog, idx = resolve_cached t st.State.pc in
          let stop = Array.unsafe_get prog.Program.block_end idx in
          let avail = stop - idx + 1 in
          let n = if avail > t.fuel then t.fuel else avail in
          t.fuel <- t.fuel - n;
          let code = prog.Program.code in
          let last = idx + n - 1 in
          (* steps are bulk-charged, with the uncommon abort path giving
             back the instructions after the faulting one so the count
             matches per-step execution exactly *)
          st.State.steps <- st.State.steps + n;
          let i = ref idx in
          (try
             while !i <= last do
               exec_insn t (Array.unsafe_get code !i);
               incr i
             done
           with e ->
             st.State.steps <- st.State.steps - (last - !i);
             raise e)
        end
      done);
  (* pop the arguments (caller cleans up, cdecl) *)
  State.set st Reg.ESP (State.get st Reg.ESP + (4 * List.length args));
  State.get st Reg.EAX

(* --- engine introspection (interp bench) --- *)

let block_hits t = t.block_hits
let block_misses t = t.block_misses
let invalidations t = t.invalidations

(* Gauges are published on demand only: the global metrics registry is
   snapshotted wholesale into every Measure result, so registering these
   during normal runs would perturb the bit-identical bench exports. *)
let publish_metrics t =
  let set name v =
    Td_obs.Metrics.set (Td_obs.Metrics.gauge name) (float_of_int v)
  in
  set "interp.block_hits" t.block_hits;
  set "interp.block_misses" t.block_misses;
  set "interp.invalidations" t.invalidations

(* The interpreter proper: dispatch policy, instruction-fetch caches and
   engine counters layered over the shared per-instruction semantics
   ([Semantics]) and the compiled tier ([Superblock]). The execution
   pipeline is documented in docs/INTERPRETER.md. *)

exception Fault = Semantics.Fault
exception Timeout = Semantics.Timeout

type dispatch = Block | Per_step | Compiled

(* Direct-mapped block cache: pc -> (program, index), valid only while
   [bc_gen] matches the registry generation. 512 slots keyed on the
   instruction index bits of the pc; collisions just re-resolve. The
   compiled-code cache below uses the same geometry, keyed on superblock
   entry addresses. *)
let bc_size = 512

let default_compile_threshold = 8
let default_superblock_cap = 64

type t = {
  state : State.t;
  registry : Code_registry.t;
  natives : Native.t;
  mutable hook : (State.t -> Td_misa.Insn.t -> unit) option;
  mutable dispatch : dispatch;
  mutable bc_gen : int;
  bc_addr : int array; (* -1 = empty slot *)
  bc_prog : Td_misa.Program.t option array;
  bc_idx : int array;
  mutable block_hits : int;
  mutable block_misses : int;
  mutable invalidations : int;
  (* compiled tier: entry hotness and compiled superblocks, flushed on
     the same generation bumps as the block cache *)
  cc_addr : int array; (* -1 = empty slot *)
  cc_hot : int array; (* min_int = known uncompilable *)
  cc_blk : Superblock.t option array;
  mutable compile_threshold : int;
  mutable superblock_cap : int;
  mutable compiled_blocks : int;
  mutable compiled_hits : int;
  mutable compiled_bailouts : int;
  stlb_elided : int ref;
}

let create ?hook state registry natives =
  {
    state;
    registry;
    natives;
    hook;
    dispatch = Compiled;
    bc_gen = 0;
    bc_addr = Array.make bc_size (-1);
    bc_prog = Array.make bc_size None;
    bc_idx = Array.make bc_size 0;
    block_hits = 0;
    block_misses = 0;
    invalidations = 0;
    cc_addr = Array.make bc_size (-1);
    cc_hot = Array.make bc_size 0;
    cc_blk = Array.make bc_size None;
    compile_threshold = default_compile_threshold;
    superblock_cap = default_superblock_cap;
    compiled_blocks = 0;
    compiled_hits = 0;
    compiled_bailouts = 0;
    stlb_elided = ref 0;
  }

let set_dispatch t d = t.dispatch <- d
let set_compile_threshold t n = t.compile_threshold <- max 1 n
let set_superblock_cap t n = t.superblock_cap <- max 1 n

let add_hook t h =
  match t.hook with
  | None -> t.hook <- Some h
  | Some g -> t.hook <- Some (fun st insn -> g st insn; h st insn)

let ret_sentinel = Semantics.ret_sentinel

let exec_insn t insn = Semantics.exec_insn ~natives:t.natives t.state insn

(* fault-injection site: flip one bit of architectural state before the
   next instruction executes — a soft error in the register file or the
   flags, the kind of corruption the SVM containment story must absorb *)
let flip_regs = Td_misa.Reg.[| EAX; EBX; ECX; EDX; ESI; EDI |]

let inject_bitflip st =
  match Td_fault.Engine.pick Td_fault.Interp_bitflip 8 with
  | 6 -> st.State.zf <- not st.State.zf
  | 7 -> st.State.cf <- not st.State.cf
  | r ->
      let reg = flip_regs.(r) in
      let bit = Td_fault.Engine.pick Td_fault.Interp_bitflip 32 in
      State.set st reg (State.get st reg lxor (1 lsl bit))

(* --- instruction fetch --- *)

open Td_misa

(* A jump into unmapped, misaligned or out-of-range code is a driver
   fault, not a simulator crash: everything surfaces as [Fault] so the
   supervisor's recovery policies apply. *)
let unmapped pc =
  raise (Fault (Printf.sprintf "execution at unmapped address 0x%x" pc))

let resolve_uncached t pc =
  match Code_registry.find t.registry pc with
  | None -> unmapped pc
  | Some p ->
      let off = pc - p.Program.base in
      if off land 3 <> 0 then
        raise
          (Fault
             (Printf.sprintf "execution at misaligned code address 0x%x" pc));
      (p, off lsr 2)

(* the pre-block-engine fetch path, selectable as the [Per_step]
   dispatch mode so the interp benchmark can measure the old cost with
   the same harness *)
let resolve_legacy t pc =
  match Code_registry.resolve_linear t.registry pc with
  | res -> res
  | exception Not_found -> unmapped pc
  | exception Invalid_argument msg -> raise (Fault msg)

(* A program was registered or replaced: drop every cached block AND
   every compiled superblock, so a dead twin's image can never execute
   after a supervised reload — not even a closure compiled in the same
   pump as the reload. *)
let check_generation t =
  let gen = Code_registry.generation t.registry in
  if t.bc_gen <> gen then begin
    Array.fill t.bc_addr 0 bc_size (-1);
    Array.fill t.bc_prog 0 bc_size None;
    Array.fill t.cc_addr 0 bc_size (-1);
    Array.fill t.cc_hot 0 bc_size 0;
    Array.fill t.cc_blk 0 bc_size None;
    t.bc_gen <- gen;
    t.invalidations <- t.invalidations + 1
  end

let resolve_cached t pc =
  check_generation t;
  let slot = (pc lsr 2) land (bc_size - 1) in
  if Array.unsafe_get t.bc_addr slot = pc then begin
    t.block_hits <- t.block_hits + 1;
    match Array.unsafe_get t.bc_prog slot with
    | Some p -> (p, Array.unsafe_get t.bc_idx slot)
    | None -> assert false
  end
  else begin
    t.block_misses <- t.block_misses + 1;
    let ((p, i) as res) = resolve_uncached t pc in
    t.bc_addr.(slot) <- pc;
    t.bc_prog.(slot) <- Some p;
    t.bc_idx.(slot) <- i;
    res
  end

let step t =
  let st = t.state in
  let prog, idx =
    match t.dispatch with
    | Block | Compiled -> resolve_cached t st.State.pc
    | Per_step -> resolve_legacy t st.State.pc
  in
  let insn = prog.Program.code.(idx) in
  (match t.hook with Some h -> h st insn | None -> ());
  if
    Td_fault.Engine.active ()
    && Td_fault.Engine.fire Td_fault.Interp_bitflip
  then inject_bitflip st;
  st.State.steps <- st.State.steps + 1;
  exec_insn t insn

(* Watchers (profiler, stlb-hit counter, fault injection) need to observe
   every instruction; without them dispatch is closure-free. Hooks are
   installed and fault plans change only outside driver execution, and a
   [Call] ends a block, so checking once per control transfer is exactly
   equivalent to the old per-instruction checks. *)
let needs_slow_path t =
  (match t.hook with Some _ -> true | None -> false)
  || (match t.dispatch with Per_step -> true | Block | Compiled -> false)
  || Td_fault.Engine.active ()

(* straight-line fast path: resolve once, execute to the end of the
   basic block by array index. In-block instructions only fall through
   (control transfers end blocks), so the pc needs no sentinel or bounds
   re-check until the block is done. *)
let exec_block t =
  let st = t.state in
  let prog, idx = resolve_cached t st.State.pc in
  let stop = Array.unsafe_get prog.Program.block_end idx in
  let avail = stop - idx + 1 in
  let n = if avail > st.State.fuel then st.State.fuel else avail in
  st.State.fuel <- st.State.fuel - n;
  let code = prog.Program.code in
  let last = idx + n - 1 in
  (* steps are bulk-charged, with the uncommon abort path giving back
     the instructions after the faulting one so the count matches
     per-step execution exactly *)
  st.State.steps <- st.State.steps + n;
  let natives = t.natives in
  let i = ref idx in
  try
    while !i <= last do
      Semantics.exec_insn ~natives st (Array.unsafe_get code !i);
      incr i
    done
  with e ->
    st.State.steps <- st.State.steps - (last - !i);
    raise e

let compile_at t pc =
  match resolve_uncached t pc with
  | prog, idx ->
      Superblock.compile ~natives:t.natives ~costs:t.state.State.costs
        ~elided:t.stlb_elided ~cap:t.superblock_cap prog idx
  | exception Fault _ -> None

(* Compiled dispatch: count the entry hot, promote it to a superblock at
   the threshold, and from then on run the fused closure whenever its
   entry conditions hold (pair slot clear, enough fuel for a worst-case
   pass); otherwise bail out to the identical-semantics block engine.
   [check_generation] runs before every lookup, which is what makes a
   promote-then-reload in the same pump safe: the stale closure is
   flushed before it could ever be dispatched again. *)
let exec_compiled t =
  check_generation t;
  let st = t.state in
  let pc = st.State.pc in
  let slot = (pc lsr 2) land (bc_size - 1) in
  if Array.unsafe_get t.cc_addr slot = pc then begin
    match Array.unsafe_get t.cc_blk slot with
    | Some blk ->
        if (not st.State.pair_slot) && st.State.fuel >= Superblock.max_steps blk
        then begin
          t.compiled_hits <- t.compiled_hits + 1;
          Superblock.run blk st
        end
        else begin
          t.compiled_bailouts <- t.compiled_bailouts + 1;
          exec_block t
        end
    | None ->
        let h = t.cc_hot.(slot) in
        if h >= 0 then
          if h + 1 >= t.compile_threshold then begin
            match compile_at t pc with
            | Some blk ->
                t.cc_blk.(slot) <- Some blk;
                t.compiled_blocks <- t.compiled_blocks + 1
            | None -> t.cc_hot.(slot) <- min_int (* never compilable *)
          end
          else t.cc_hot.(slot) <- h + 1;
        exec_block t
  end
  else begin
    (* take over the slot (cold entry or direct-mapped eviction) *)
    t.cc_addr.(slot) <- pc;
    t.cc_hot.(slot) <- 1;
    t.cc_blk.(slot) <- None;
    exec_block t
  end

let call ?(max_steps = 1_000_000) t ~entry ~args =
  let st = t.state in
  List.iter (State.push st) (List.rev args);
  State.push st ret_sentinel;
  st.State.pc <- entry;
  (* natives re-enter the interpreter (upcalls), so each nested call gets
     its own budget and the outer one is restored on the way out *)
  let saved_fuel = st.State.fuel and saved_cap = st.State.fuel_cap in
  st.State.fuel <- max_steps;
  st.State.fuel_cap <- max_steps;
  Fun.protect
    ~finally:(fun () ->
      st.State.fuel <- saved_fuel;
      st.State.fuel_cap <- saved_cap)
    (fun () ->
      while st.State.pc <> ret_sentinel do
        if st.State.fuel <= 0 then raise (Timeout st.State.fuel_cap);
        if needs_slow_path t then begin
          st.State.fuel <- st.State.fuel - 1;
          step t
        end
        else
          match t.dispatch with
          | Compiled -> exec_compiled t
          | Block | Per_step -> exec_block t
      done);
  (* pop the arguments (caller cleans up, cdecl) *)
  State.set st Reg.ESP (State.get st Reg.ESP + (4 * List.length args));
  State.get st Reg.EAX

(* --- engine introspection (interp bench) --- *)

let block_hits t = t.block_hits
let block_misses t = t.block_misses
let invalidations t = t.invalidations
let compiled_blocks t = t.compiled_blocks
let compiled_hits t = t.compiled_hits
let compiled_bailouts t = t.compiled_bailouts
let stlb_elided t = !(t.stlb_elided)

(* Gauges are published on demand only: the global metrics registry is
   snapshotted wholesale into every Measure result, so registering these
   during normal runs would perturb the bit-identical bench exports. *)
let publish_metrics t =
  let set name v =
    Td_obs.Metrics.set (Td_obs.Metrics.gauge name) (float_of_int v)
  in
  set "interp.block_hits" t.block_hits;
  set "interp.block_misses" t.block_misses;
  set "interp.invalidations" t.invalidations;
  set "interp.compiled_blocks" t.compiled_blocks;
  set "interp.compiled_hits" t.compiled_hits;
  set "interp.compiled_bailouts" t.compiled_bailouts;
  set "interp.stlb_elided" !(t.stlb_elided)

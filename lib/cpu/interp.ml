exception Fault of string
exception Timeout of int

type t = {
  state : State.t;
  registry : Code_registry.t;
  natives : Native.t;
  mutable hook : (State.t -> Td_misa.Insn.t -> unit) option;
}

let create ?hook state registry natives = { state; registry; natives; hook }

let add_hook t h =
  match t.hook with
  | None -> t.hook <- Some h
  | Some g -> t.hook <- Some (fun st insn -> g st insn; h st insn)

let ret_sentinel = 0xFFFF_FFF0
let mask32 v = v land 0xFFFFFFFF
let sign_bit = 0x80000000

open Td_misa

(* --- memory access with cost accounting --- *)

let charge_access t addr w =
  let st = t.state in
  let cost = ref st.State.costs.Cost_model.mem_access in
  if not (Tlb.access st.State.tlb (Td_mem.Layout.page_of addr)) then
    cost := !cost + st.State.costs.Cost_model.tlb_miss;
  (let space = State.space_for st addr in
   match
     Td_mem.Addr_space.frame_of_vpage space ~vpage:(Td_mem.Layout.page_of addr)
   with
   | Some frame ->
       let paddr = (frame * Td_mem.Layout.page_size) + Td_mem.Layout.offset_of addr in
       if not (Cache.access st.State.cache paddr) then
         cost := !cost + st.State.costs.Cost_model.cache_miss
   | None ->
       (* device page or unmapped (the access itself will fault if
          unmapped); MMIO is an uncached PCI transaction *)
       cost := !cost + st.State.costs.Cost_model.mmio);
  ignore w;
  State.add_cycles st !cost

let load t addr w =
  charge_access t addr w;
  State.read_mem t.state addr w

let store t addr w v =
  charge_access t addr w;
  State.write_mem t.state addr w v

(* --- operand evaluation --- *)

let addr_of_mem st (m : Operand.mem) =
  let base = match m.Operand.base with Some r -> State.get st r | None -> 0 in
  let index =
    match m.Operand.index with
    | Some (r, s) -> State.get st r * Operand.scale_factor s
    | None -> 0
  in
  (match m.Operand.sym with
  | Some s -> raise (Fault ("unresolved symbol in operand: " ^ s))
  | None -> ());
  mask32 (m.Operand.disp + base + index)

let eval t w = function
  | Operand.Imm n -> n land Width.mask w
  | Operand.Reg r -> State.get t.state r land Width.mask w
  | Operand.Mem m -> load t (addr_of_mem t.state m) w

let assign t w dst v =
  match dst with
  | Operand.Imm _ -> raise (Fault "store to immediate")
  | Operand.Reg r -> State.set_narrow t.state w r v
  | Operand.Mem m -> store t (addr_of_mem t.state m) w v

(* --- flags --- *)

let set_zs st v =
  st.State.zf <- mask32 v = 0;
  st.State.sf <- v land sign_bit <> 0

let flags_logic st v =
  set_zs st v;
  st.State.cf <- false;
  st.State.ovf <- false

let flags_add st a b r =
  set_zs st r;
  st.State.cf <- a + b > 0xFFFFFFFF;
  st.State.ovf <- (a lxor r) land (b lxor r) land sign_bit <> 0

let flags_sub st dst src r =
  set_zs st r;
  st.State.cf <- dst < src;
  st.State.ovf <- (dst lxor src) land (dst lxor r) land sign_bit <> 0

let cond_true st = function
  | Cond.E -> st.State.zf
  | Cond.NE -> not st.State.zf
  | Cond.L -> st.State.sf <> st.State.ovf
  | Cond.LE -> st.State.zf || st.State.sf <> st.State.ovf
  | Cond.G -> (not st.State.zf) && st.State.sf = st.State.ovf
  | Cond.GE -> st.State.sf = st.State.ovf
  | Cond.B -> st.State.cf
  | Cond.BE -> st.State.cf || st.State.zf
  | Cond.A -> (not st.State.cf) && not st.State.zf
  | Cond.AE -> not st.State.cf
  | Cond.S -> st.State.sf
  | Cond.NS -> not st.State.sf

(* --- control transfer --- *)

let target_addr t = function
  | Insn.Lbl l -> raise (Fault ("unresolved label: " ^ l))
  | Insn.Abs a -> a
  | Insn.Ind o -> eval t Width.W32 o

let do_call t dest =
  let st = t.state in
  State.add_cycles st st.State.costs.Cost_model.call;
  if Native.is_native_addr dest then begin
    match Native.lookup t.natives dest with
    | Some fn ->
        State.add_cycles st st.State.costs.Cost_model.native_call;
        (* Native routines may re-enter the interpreter (upcalls), which
           clobbers [pc]; resume at the instruction after the call. The
           return address is pushed so that [State.stack_arg] sees the
           same frame layout as in a simulated call, and popped here in
           lieu of the callee's [ret]. *)
        let resume = st.State.pc + 4 in
        State.push st resume;
        fn st;
        ignore (State.pop st);
        st.State.pc <- resume
    | None -> raise (Fault (Printf.sprintf "call to unregistered native 0x%x" dest))
  end
  else begin
    State.push st (st.State.pc + 4);
    st.State.pc <- dest
  end

let do_jump t dest =
  if Native.is_native_addr dest then
    raise (Fault (Printf.sprintf "jump to native address 0x%x" dest));
  t.state.State.pc <- dest

(* --- string operations --- *)

let str_step t op w =
  let st = t.state in
  let n = Width.bytes w in
  State.add_cycles st st.State.costs.Cost_model.str_unit;
  (match op with
  | Insn.Movs ->
      let src = State.get st Reg.ESI and dst = State.get st Reg.EDI in
      let v = load t src w in
      store t dst w v;
      State.set st Reg.ESI (src + n);
      State.set st Reg.EDI (dst + n)
  | Insn.Stos ->
      let dst = State.get st Reg.EDI in
      store t dst w (State.get st Reg.EAX land Width.mask w);
      State.set st Reg.EDI (dst + n)
  | Insn.Lods ->
      let src = State.get st Reg.ESI in
      let v = load t src w in
      State.set_narrow st w Reg.EAX v;
      State.set st Reg.ESI (src + n))

let exec_str t op w rep =
  let st = t.state in
  if not rep then str_step t op w
  else
    while State.get st Reg.ECX <> 0 do
      str_step t op w;
      State.set st Reg.ECX (State.get st Reg.ECX - 1)
    done

(* --- main dispatch --- *)

(* Dual-issue model: a register-only move/ALU instruction pairs with an
   immediately preceding simple instruction and issues for free. This is
   the superscalar effect that keeps the SVM fast path (mostly simple ALU
   work) cheaper than ten sequential cycles. *)
let is_simple = function
  | Insn.Mov (_, (Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Lea (_, _)
  | Insn.Alu (_, (Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Shift (_, (Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Cmp ((Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Test ((Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Inc (Operand.Reg _)
  | Insn.Dec (Operand.Reg _)
  | Insn.Nop ->
      true
  | _ -> false

let exec_insn t (prog : Program.t) insn =
  let st = t.state in
  (if is_simple insn && st.State.pair_slot then
     (* issues in the previous instruction's empty slot *)
     st.State.pair_slot <- false
   else begin
     State.add_cycles st st.State.costs.Cost_model.insn;
     st.State.pair_slot <- is_simple insn
   end);
  let next () = st.State.pc <- st.State.pc + 4 in
  match insn with
  | Insn.Mov (w, src, dst) ->
      let v = eval t w src in
      assign t w dst v;
      next ()
  | Insn.Movzx (w, src, r) ->
      let v = eval t w src in
      State.set st r (v land Width.mask w);
      next ()
  | Insn.Lea (m, r) ->
      State.set st r (addr_of_mem st m);
      next ()
  | Insn.Alu (op, src, dst) ->
      let a = eval t Width.W32 src and b = eval t Width.W32 dst in
      let r =
        match op with
        | Insn.Add ->
            let r = mask32 (b + a) in
            flags_add st a b r;
            r
        | Insn.Sub ->
            let r = mask32 (b - a) in
            flags_sub st b a r;
            r
        | Insn.Adc ->
            let carry = if st.State.cf then 1 else 0 in
            let r = mask32 (b + a + carry) in
            set_zs st r;
            st.State.cf <- b + a + carry > 0xFFFFFFFF;
            st.State.ovf <- (a lxor r) land (b lxor r) land sign_bit <> 0;
            r
        | Insn.Sbb ->
            let borrow = if st.State.cf then 1 else 0 in
            let r = mask32 (b - a - borrow) in
            set_zs st r;
            st.State.cf <- b < a + borrow;
            st.State.ovf <- (b lxor a) land (b lxor r) land sign_bit <> 0;
            r
        | Insn.And ->
            let r = b land a in
            flags_logic st r;
            r
        | Insn.Or ->
            let r = b lor a in
            flags_logic st r;
            r
        | Insn.Xor ->
            let r = b lxor a in
            flags_logic st r;
            r
      in
      assign t Width.W32 dst r;
      next ()
  | Insn.Shift (op, cnt, dst) ->
      let c = eval t Width.W32 cnt land 31 in
      let v = eval t Width.W32 dst in
      let r =
        if c = 0 then v
        else
          match op with
          | Insn.Shl ->
              st.State.cf <- (v lsr (32 - c)) land 1 = 1;
              mask32 (v lsl c)
          | Insn.Shr ->
              st.State.cf <- (v lsr (c - 1)) land 1 = 1;
              v lsr c
          | Insn.Sar ->
              let signed = if v land sign_bit <> 0 then v - 0x1_0000_0000 else v in
              st.State.cf <- (signed asr (c - 1)) land 1 = 1;
              mask32 (signed asr c)
      in
      if c <> 0 then set_zs st r;
      assign t Width.W32 dst r;
      next ()
  | Insn.Cmp (src, dst) ->
      let a = eval t Width.W32 src and b = eval t Width.W32 dst in
      flags_sub st b a (mask32 (b - a));
      next ()
  | Insn.Test (src, dst) ->
      let a = eval t Width.W32 src and b = eval t Width.W32 dst in
      flags_logic st (a land b);
      next ()
  | Insn.Inc o ->
      let v = mask32 (eval t Width.W32 o + 1) in
      set_zs st v;
      assign t Width.W32 o v;
      next ()
  | Insn.Dec o ->
      let v = mask32 (eval t Width.W32 o - 1) in
      set_zs st v;
      assign t Width.W32 o v;
      next ()
  | Insn.Neg o ->
      let v = eval t Width.W32 o in
      let r = mask32 (-v) in
      set_zs st r;
      st.State.cf <- v <> 0;
      assign t Width.W32 o r;
      next ()
  | Insn.Not o ->
      assign t Width.W32 o (mask32 (lnot (eval t Width.W32 o)));
      next ()
  | Insn.Imul (src, r) ->
      let v = mask32 (eval t Width.W32 src * State.get st r) in
      set_zs st v;
      State.set st r v;
      next ()
  | Insn.Xchg (o, r) ->
      let ov = eval t Width.W32 o in
      let rv = State.get st r in
      assign t Width.W32 o rv;
      State.set st r ov;
      next ()
  | Insn.Push o ->
      let v = eval t Width.W32 o in
      charge_access t (State.get st Reg.ESP - 4) Width.W32;
      State.push st v;
      next ()
  | Insn.Pop o ->
      charge_access t (State.get st Reg.ESP) Width.W32;
      let v = State.pop st in
      assign t Width.W32 o v;
      next ()
  | Insn.Jmp tgt -> do_jump t (target_addr t tgt)
  | Insn.Jcc (c, lbl) ->
      if cond_true st c then
        st.State.pc <- Program.addr_of_label prog lbl
      else next ()
  | Insn.Call tgt -> do_call t (target_addr t tgt)
  | Insn.Ret ->
      charge_access t (State.get st Reg.ESP) Width.W32;
      State.add_cycles st st.State.costs.Cost_model.call;
      st.State.pc <- State.pop st
  | Insn.Str (op, w, rep) ->
      exec_str t op w rep;
      next ()
  | Insn.Pushf ->
      let v =
        (if st.State.zf then 1 else 0)
        lor (if st.State.sf then 2 else 0)
        lor (if st.State.cf then 4 else 0)
        lor if st.State.ovf then 8 else 0
      in
      charge_access t (State.get st Reg.ESP - 4) Width.W32;
      State.push st v;
      next ()
  | Insn.Popf ->
      charge_access t (State.get st Reg.ESP) Width.W32;
      let v = State.pop st in
      st.State.zf <- v land 1 <> 0;
      st.State.sf <- v land 2 <> 0;
      st.State.cf <- v land 4 <> 0;
      st.State.ovf <- v land 8 <> 0;
      next ()
  | Insn.Nop -> next ()
  | Insn.Hlt -> st.State.pc <- ret_sentinel

(* fault-injection site: flip one bit of architectural state before the
   next instruction executes — a soft error in the register file or the
   flags, the kind of corruption the SVM containment story must absorb *)
let flip_regs = Reg.[| EAX; EBX; ECX; EDX; ESI; EDI |]

let inject_bitflip st =
  match Td_fault.Engine.pick Td_fault.Interp_bitflip 8 with
  | 6 -> st.State.zf <- not st.State.zf
  | 7 -> st.State.cf <- not st.State.cf
  | r ->
      let reg = flip_regs.(r) in
      let bit = Td_fault.Engine.pick Td_fault.Interp_bitflip 32 in
      State.set st reg (State.get st reg lxor (1 lsl bit))

let step t =
  let st = t.state in
  let prog, idx =
    try Code_registry.resolve t.registry st.State.pc
    with Not_found ->
      raise (Fault (Printf.sprintf "execution at unmapped address 0x%x" st.State.pc))
  in
  let insn = prog.Program.code.(idx) in
  (match t.hook with Some h -> h st insn | None -> ());
  if
    Td_fault.Engine.active ()
    && Td_fault.Engine.fire Td_fault.Interp_bitflip
  then inject_bitflip st;
  st.State.steps <- st.State.steps + 1;
  exec_insn t prog insn

let call ?(max_steps = 1_000_000) t ~entry ~args =
  let st = t.state in
  List.iter (State.push st) (List.rev args);
  State.push st ret_sentinel;
  st.State.pc <- entry;
  let budget = ref max_steps in
  while st.State.pc <> ret_sentinel do
    if !budget <= 0 then raise (Timeout max_steps);
    decr budget;
    step t
  done;
  (* pop the arguments (caller cleans up, cdecl) *)
  State.set st Reg.ESP (State.get st Reg.ESP + (4 * List.length args));
  State.get st Reg.EAX

type region = { name : string; mutable cycles : int }

type t = {
  interp : Interp.t;
  regions : (string, region) Hashtbl.t;
  (* per program: label starts sorted by instruction index *)
  label_maps : (string, (int * string) array) Hashtbl.t;
  mutable last_cycles : int;
  mutable current : region option;
}

let label_map (prog : Td_misa.Program.t) =
  Hashtbl.fold (fun l idx acc -> (idx, l) :: acc) prog.Td_misa.Program.label_index []
  |> List.sort compare |> Array.of_list

(* innermost label at or before [idx] *)
let enclosing map idx =
  let n = Array.length map in
  let rec go lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      let start, name = map.(mid) in
      if start <= idx then go (mid + 1) hi (Some name) else go lo (mid - 1) best
  in
  go 0 (n - 1) None

let attach interp =
  let t =
    {
      interp;
      regions = Hashtbl.create 64;
      label_maps = Hashtbl.create 8;
      last_cycles = interp.Interp.state.State.cycles;
      current = None;
    }
  in
  let hook (st : State.t) _insn =
    (* charge the cycles spent since the previous step to the region that
       was executing *)
    (match t.current with
    | Some r -> r.cycles <- r.cycles + (st.State.cycles - t.last_cycles)
    | None -> ());
    t.last_cycles <- st.State.cycles;
    match Code_registry.find t.interp.Interp.registry st.State.pc with
    | None -> t.current <- None
    | Some prog ->
        let pname = prog.Td_misa.Program.name in
        let map =
          match Hashtbl.find_opt t.label_maps pname with
          | Some m -> m
          | None ->
              let m = label_map prog in
              Hashtbl.replace t.label_maps pname m;
              m
        in
        let idx = Td_misa.Program.index_of_addr prog st.State.pc in
        let label =
          match enclosing map idx with Some l -> l | None -> "<prologue>"
        in
        let qualified = pname ^ ":" ^ label in
        let region =
          match Hashtbl.find_opt t.regions qualified with
          | Some r -> r
          | None ->
              let r = { name = qualified; cycles = 0 } in
              Hashtbl.replace t.regions qualified r;
              r
        in
        t.current <- Some region
  in
  Interp.add_hook interp hook;
  t

let cycles_by_label t =
  Hashtbl.fold (fun _ r acc -> (r.name, r.cycles) :: acc) t.regions []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let total_cycles t =
  Hashtbl.fold (fun _ r acc -> acc + r.cycles) t.regions 0

let reset t =
  Hashtbl.reset t.regions;
  t.current <- None;
  t.last_cycles <- t.interp.Interp.state.State.cycles

let publish t =
  List.iter
    (fun (name, cycles) ->
      Td_obs.Metrics.set
        (Td_obs.Metrics.gauge ("profile.cycles." ^ name))
        (float_of_int cycles))
    (cycles_by_label t)

let pp fmt t =
  let total = max 1 (total_cycles t) in
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i (name, cycles) ->
      if i < 12 && cycles > 0 then
        Format.fprintf fmt "%-44s %10d  %5.1f%%@," name cycles
          (100.0 *. float_of_int cycles /. float_of_int total))
    (cycles_by_label t);
  Format.fprintf fmt "@]"

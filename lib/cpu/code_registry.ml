(* Programs are kept sorted by base address so instruction fetch is a
   binary search, and every mutation bumps [generation] so the
   interpreter's block cache can tell when a cached (program, index)
   pair may refer to an unregistered image (the supervisor reloading a
   fresh driver over a dead twin's range). *)
type t = {
  mutable programs : Td_misa.Program.t array; (* sorted by base, ascending *)
  mutable linear : Td_misa.Program.t list;
      (* registration-ordered mirror (newest first), kept so
         [find_linear] reproduces the pre-block-engine lookup — same data
         structure, same traversal — as the measured baseline *)
  mutable generation : int;
}

(* Generation stamps are drawn from one process-global atomic counter,
   not a per-registry counter: two registries that happen to perform the
   same number of mutations must never present the same stamp, or an
   interpreter instance migrated between shards (each shard owns its own
   registry) could accept another shard's cached blocks as fresh. The
   interpreter's unfilled-cache sentinel is 0; stamps start at 1. *)
let stamp = Atomic.make 1
let next_stamp () = Atomic.fetch_and_add stamp 1
let create () = { programs = [||]; linear = []; generation = next_stamp () }
let generation t = t.generation

let overlaps (a : Td_misa.Program.t) (b : Td_misa.Program.t) =
  let a_end = a.Td_misa.Program.base + Td_misa.Program.size_bytes a in
  let b_end = b.Td_misa.Program.base + Td_misa.Program.size_bytes b in
  a.Td_misa.Program.base < b_end && b.Td_misa.Program.base < a_end

let find_overlap t p =
  let found = ref None in
  Array.iter
    (fun q -> if !found = None && overlaps p q then found := Some q)
    t.programs;
  !found

let insert_sorted t p =
  let old = t.programs in
  let n = Array.length old in
  let arr = Array.make (n + 1) p in
  let i = ref 0 in
  while !i < n && old.(!i).Td_misa.Program.base < p.Td_misa.Program.base do
    arr.(!i) <- old.(!i);
    incr i
  done;
  for j = !i to n - 1 do
    arr.(j + 1) <- old.(j)
  done;
  t.programs <- arr;
  t.generation <- next_stamp ()

let register t p =
  (match find_overlap t p with
  | Some q ->
      invalid_arg
        (Printf.sprintf "Code_registry: %s overlaps %s" p.Td_misa.Program.name
           q.Td_misa.Program.name)
  | None -> ());
  t.linear <- p :: t.linear;
  insert_sorted t p

(* Reload semantics: the driver supervisor re-runs the MISA loader at the
   same base after an abort, so any program the newcomer overlaps is the
   dead instance's image and gets unregistered first. *)
let replace t p =
  t.programs <-
    Array.of_list
      (List.filter
         (fun q -> not (overlaps p q))
         (Array.to_list t.programs));
  t.linear <- p :: List.filter (fun q -> not (overlaps p q)) t.linear;
  insert_sorted t p

(* rightmost program whose base is <= addr; containment decides the rest
   (programs never overlap, so at most one candidate exists) *)
let find t addr =
  let arr = t.programs in
  let lo = ref 0 and hi = ref (Array.length arr - 1) and best = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid).Td_misa.Program.base <= addr then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  if !best >= 0 && Td_misa.Program.contains arr.(!best) addr then
    Some arr.(!best)
  else None

let resolve t addr =
  match find t addr with
  | Some p -> (p, Td_misa.Program.index_of_addr p addr)
  | None -> raise Not_found

(* the verbatim pre-engine implementation: a closure-allocating scan of a
   registration-ordered linked list *)
let find_linear t addr =
  List.find_opt (fun p -> Td_misa.Program.contains p addr) t.linear

let resolve_linear t addr =
  match find_linear t addr with
  | Some p -> (p, Td_misa.Program.index_of_addr p addr)
  | None -> raise Not_found

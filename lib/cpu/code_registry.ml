type t = { mutable programs : Td_misa.Program.t list }

let create () = { programs = [] }

let overlaps (a : Td_misa.Program.t) (b : Td_misa.Program.t) =
  let a_end = a.Td_misa.Program.base + Td_misa.Program.size_bytes a in
  let b_end = b.Td_misa.Program.base + Td_misa.Program.size_bytes b in
  a.Td_misa.Program.base < b_end && b.Td_misa.Program.base < a_end

let register t p =
  (match List.find_opt (overlaps p) t.programs with
  | Some q ->
      invalid_arg
        (Printf.sprintf "Code_registry: %s overlaps %s" p.Td_misa.Program.name
           q.Td_misa.Program.name)
  | None -> ());
  t.programs <- p :: t.programs

(* Reload semantics: the driver supervisor re-runs the MISA loader at the
   same base after an abort, so any program the newcomer overlaps is the
   dead instance's image and gets unregistered first. *)
let replace t p =
  t.programs <- List.filter (fun q -> not (overlaps p q)) t.programs;
  t.programs <- p :: t.programs

let find t addr =
  List.find_opt (fun p -> Td_misa.Program.contains p addr) t.programs

let resolve t addr =
  match find t addr with
  | Some p -> (p, Td_misa.Program.index_of_addr p addr)
  | None -> raise Not_found

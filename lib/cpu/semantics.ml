(* Single-instruction execution semantics for MISA, shared between the
   per-step interpreter ([Interp]) and compiled superblocks
   ([Superblock]). Everything here operates on the architectural
   [State.t] directly; the interpreter record only adds dispatch policy,
   caches and counters on top. *)

exception Fault of string
exception Timeout of int

let ret_sentinel = 0xFFFF_FFF0
let mask32 v = v land 0xFFFFFFFF
let sign_bit = 0x80000000

open Td_misa

(* --- memory access with cost accounting --- *)

let charge_access st addr w =
  let cost = ref st.State.costs.Cost_model.mem_access in
  if not (Tlb.access st.State.tlb (Td_mem.Layout.page_of addr)) then
    cost := !cost + st.State.costs.Cost_model.tlb_miss;
  (let space = State.space_for st addr in
   match
     Td_mem.Addr_space.frame_of_vpage space ~vpage:(Td_mem.Layout.page_of addr)
   with
   | Some frame ->
       let paddr = (frame * Td_mem.Layout.page_size) + Td_mem.Layout.offset_of addr in
       if not (Cache.access st.State.cache paddr) then
         cost := !cost + st.State.costs.Cost_model.cache_miss
   | None ->
       (* device page or unmapped (the access itself will fault if
          unmapped); MMIO is an uncached PCI transaction *)
       cost := !cost + st.State.costs.Cost_model.mmio);
  ignore w;
  State.add_cycles st !cost

let load st addr w =
  charge_access st addr w;
  State.read_mem st addr w

let store st addr w v =
  charge_access st addr w;
  State.write_mem st addr w v

(* --- operand evaluation --- *)

let addr_of_mem st (m : Operand.mem) =
  let base = match m.Operand.base with Some r -> State.get st r | None -> 0 in
  let index =
    match m.Operand.index with
    | Some (r, s) -> State.get st r * Operand.scale_factor s
    | None -> 0
  in
  (match m.Operand.sym with
  | Some s -> raise (Fault ("unresolved symbol in operand: " ^ s))
  | None -> ());
  mask32 (m.Operand.disp + base + index)

let eval st w = function
  | Operand.Imm n -> n land Width.mask w
  | Operand.Reg r -> State.get st r land Width.mask w
  | Operand.Mem m -> load st (addr_of_mem st m) w

let assign st w dst v =
  match dst with
  | Operand.Imm _ -> raise (Fault "store to immediate")
  | Operand.Reg r -> State.set_narrow st w r v
  | Operand.Mem m -> store st (addr_of_mem st m) w v

(* 32-bit specialisations of [eval]/[assign] for the dominant case:
   registers are kept 32-bit by [State.set], so the width mask is
   redundant, and W32 [set_narrow] is just [set] *)
let eval32 st = function
  | Operand.Imm n -> n land 0xFFFFFFFF
  | Operand.Reg r -> State.get st r
  | Operand.Mem m -> load st (addr_of_mem st m) Width.W32

let assign32 st dst v =
  match dst with
  | Operand.Imm _ -> raise (Fault "store to immediate")
  | Operand.Reg r -> State.set st r v
  | Operand.Mem m -> store st (addr_of_mem st m) Width.W32 v

(* --- flags --- *)

let set_zs st v =
  st.State.zf <- mask32 v = 0;
  st.State.sf <- v land sign_bit <> 0

let flags_logic st v =
  set_zs st v;
  st.State.cf <- false;
  st.State.ovf <- false

let flags_add st a b r =
  set_zs st r;
  st.State.cf <- a + b > 0xFFFFFFFF;
  st.State.ovf <- (a lxor r) land (b lxor r) land sign_bit <> 0

let flags_sub st dst src r =
  set_zs st r;
  st.State.cf <- dst < src;
  st.State.ovf <- (dst lxor src) land (dst lxor r) land sign_bit <> 0

let cond_true st = function
  | Cond.E -> st.State.zf
  | Cond.NE -> not st.State.zf
  | Cond.L -> st.State.sf <> st.State.ovf
  | Cond.LE -> st.State.zf || st.State.sf <> st.State.ovf
  | Cond.G -> (not st.State.zf) && st.State.sf = st.State.ovf
  | Cond.GE -> st.State.sf = st.State.ovf
  | Cond.B -> st.State.cf
  | Cond.BE -> st.State.cf || st.State.zf
  | Cond.A -> (not st.State.cf) && not st.State.zf
  | Cond.AE -> not st.State.cf
  | Cond.S -> st.State.sf
  | Cond.NS -> not st.State.sf

(* --- control transfer --- *)

let target_addr st = function
  | Insn.Lbl l -> raise (Fault ("unresolved label: " ^ l))
  | Insn.Abs a -> a
  | Insn.Ind o -> eval32 st o

let do_call ~natives st dest =
  State.add_cycles st st.State.costs.Cost_model.call;
  if Native.is_native_addr dest then begin
    match Native.lookup natives dest with
    | Some fn ->
        State.add_cycles st st.State.costs.Cost_model.native_call;
        (* Native routines may re-enter the interpreter (upcalls), which
           clobbers [pc]; resume at the instruction after the call. The
           return address is pushed so that [State.stack_arg] sees the
           same frame layout as in a simulated call, and popped here in
           lieu of the callee's [ret]. *)
        let resume = st.State.pc + 4 in
        State.push st resume;
        fn st;
        ignore (State.pop st);
        st.State.pc <- resume
    | None -> raise (Fault (Printf.sprintf "call to unregistered native 0x%x" dest))
  end
  else begin
    State.push st (st.State.pc + 4);
    st.State.pc <- dest
  end

let do_jump st dest =
  if Native.is_native_addr dest then
    raise (Fault (Printf.sprintf "jump to native address 0x%x" dest));
  st.State.pc <- dest

(* --- string operations --- *)

let str_step st op w =
  let n = Width.bytes w in
  State.add_cycles st st.State.costs.Cost_model.str_unit;
  (match op with
  | Insn.Movs ->
      let src = State.get st Reg.ESI and dst = State.get st Reg.EDI in
      let v = load st src w in
      store st dst w v;
      State.set st Reg.ESI (src + n);
      State.set st Reg.EDI (dst + n)
  | Insn.Stos ->
      let dst = State.get st Reg.EDI in
      store st dst w (State.get st Reg.EAX land Width.mask w);
      State.set st Reg.EDI (dst + n)
  | Insn.Lods ->
      let src = State.get st Reg.ESI in
      let v = load st src w in
      State.set_narrow st w Reg.EAX v;
      State.set st Reg.ESI (src + n))

let exec_str st op w rep =
  if not rep then str_step st op w
  else
    while State.get st Reg.ECX <> 0 do
      (* each element consumes call budget: a corrupted (or hostile) huge
         ECX must trip the timeout guard, not spin the watchdog forever *)
      if st.State.fuel <= 0 then raise (Timeout st.State.fuel_cap);
      st.State.fuel <- st.State.fuel - 1;
      str_step st op w;
      State.set st Reg.ECX (State.get st Reg.ECX - 1)
    done

(* --- main dispatch --- *)

(* Dual-issue model: a register-only move/ALU instruction pairs with an
   immediately preceding simple instruction and issues for free. This is
   the superscalar effect that keeps the SVM fast path (mostly simple ALU
   work) cheaper than ten sequential cycles. *)
let is_simple = function
  | Insn.Mov (_, (Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Lea (_, _)
  | Insn.Alu (_, (Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Shift (_, (Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Cmp ((Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Test ((Operand.Imm _ | Operand.Reg _), Operand.Reg _)
  | Insn.Inc (Operand.Reg _)
  | Insn.Dec (Operand.Reg _)
  | Insn.Nop ->
      true
  | _ -> false

(* top-level so the hot loop does not allocate a closure per instruction *)
let advance st = st.State.pc <- st.State.pc + 4

(* The issue/pairing preamble of [exec_insn], separated so superblock
   compilation can account for issue cycles statically (the pair-slot
   evolution is data-independent given the instruction sequence and the
   entry slot state) while still executing [exec_body] for the effects. *)
let issue st insn =
  let simple = is_simple insn in
  if simple && st.State.pair_slot then
    (* issues in the previous instruction's empty slot *)
    st.State.pair_slot <- false
  else begin
    State.add_cycles st st.State.costs.Cost_model.insn;
    st.State.pair_slot <- simple
  end

let exec_body ~natives st insn =
  match insn with
  | Insn.Mov (w, src, dst) ->
      let v = eval st w src in
      assign st w dst v;
      advance st
  | Insn.Movzx (w, src, r) ->
      let v = eval st w src in
      State.set st r (v land Width.mask w);
      advance st
  | Insn.Lea (m, r) ->
      State.set st r (addr_of_mem st m);
      advance st
  | Insn.Alu (op, src, dst) ->
      let a = eval32 st src and b = eval32 st dst in
      let r =
        match op with
        | Insn.Add ->
            let r = mask32 (b + a) in
            flags_add st a b r;
            r
        | Insn.Sub ->
            let r = mask32 (b - a) in
            flags_sub st b a r;
            r
        | Insn.Adc ->
            let carry = if st.State.cf then 1 else 0 in
            let r = mask32 (b + a + carry) in
            set_zs st r;
            st.State.cf <- b + a + carry > 0xFFFFFFFF;
            st.State.ovf <- (a lxor r) land (b lxor r) land sign_bit <> 0;
            r
        | Insn.Sbb ->
            let borrow = if st.State.cf then 1 else 0 in
            let r = mask32 (b - a - borrow) in
            set_zs st r;
            st.State.cf <- b < a + borrow;
            st.State.ovf <- (b lxor a) land (b lxor r) land sign_bit <> 0;
            r
        | Insn.And ->
            let r = b land a in
            flags_logic st r;
            r
        | Insn.Or ->
            let r = b lor a in
            flags_logic st r;
            r
        | Insn.Xor ->
            let r = b lxor a in
            flags_logic st r;
            r
      in
      assign32 st dst r;
      advance st
  | Insn.Shift (op, cnt, dst) ->
      let c = eval32 st cnt land 31 in
      let v = eval32 st dst in
      let r =
        if c = 0 then v
        else
          match op with
          | Insn.Shl ->
              st.State.cf <- (v lsr (32 - c)) land 1 = 1;
              mask32 (v lsl c)
          | Insn.Shr ->
              st.State.cf <- (v lsr (c - 1)) land 1 = 1;
              v lsr c
          | Insn.Sar ->
              let signed = if v land sign_bit <> 0 then v - 0x1_0000_0000 else v in
              st.State.cf <- (signed asr (c - 1)) land 1 = 1;
              mask32 (signed asr c)
      in
      if c <> 0 then set_zs st r;
      assign32 st dst r;
      advance st
  | Insn.Cmp (src, dst) ->
      let a = eval32 st src and b = eval32 st dst in
      flags_sub st b a (mask32 (b - a));
      advance st
  | Insn.Test (src, dst) ->
      let a = eval32 st src and b = eval32 st dst in
      flags_logic st (a land b);
      advance st
  | Insn.Inc o ->
      let v = mask32 (eval32 st o + 1) in
      set_zs st v;
      assign32 st o v;
      advance st
  | Insn.Dec o ->
      let v = mask32 (eval32 st o - 1) in
      set_zs st v;
      assign32 st o v;
      advance st
  | Insn.Neg o ->
      let v = eval32 st o in
      let r = mask32 (-v) in
      set_zs st r;
      st.State.cf <- v <> 0;
      assign32 st o r;
      advance st
  | Insn.Not o ->
      assign32 st o (mask32 (lnot (eval32 st o)));
      advance st
  | Insn.Imul (src, r) ->
      let signed v = if v land sign_bit <> 0 then v - 0x1_0000_0000 else v in
      let full = signed (eval32 st src) * signed (State.get st r) in
      let v = mask32 full in
      set_zs st v;
      (* x86: CF = OF = 1 when the signed product does not fit in 32 bits *)
      let overflow = full < -0x8000_0000 || full > 0x7FFF_FFFF in
      st.State.cf <- overflow;
      st.State.ovf <- overflow;
      State.set st r v;
      advance st
  | Insn.Xchg (o, r) ->
      let ov = eval32 st o in
      let rv = State.get st r in
      assign32 st o rv;
      State.set st r ov;
      advance st
  | Insn.Push o ->
      let v = eval32 st o in
      charge_access st (State.get st Reg.ESP - 4) Width.W32;
      State.push st v;
      advance st
  | Insn.Pop o ->
      charge_access st (State.get st Reg.ESP) Width.W32;
      let v = State.pop st in
      assign32 st o v;
      advance st
  | Insn.Jmp tgt -> do_jump st (target_addr st tgt)
  | Insn.Jcc (c, tgt) ->
      (* [tgt] is a pre-resolved [Abs] after assembly, so a taken branch
         costs an assignment, not a label-string hash *)
      if cond_true st c then st.State.pc <- target_addr st tgt else advance st
  | Insn.Call tgt -> do_call ~natives st (target_addr st tgt)
  | Insn.Ret ->
      charge_access st (State.get st Reg.ESP) Width.W32;
      State.add_cycles st st.State.costs.Cost_model.call;
      st.State.pc <- State.pop st
  | Insn.Str (op, w, rep) ->
      exec_str st op w rep;
      advance st
  | Insn.Pushf ->
      let v =
        (if st.State.zf then 1 else 0)
        lor (if st.State.sf then 2 else 0)
        lor (if st.State.cf then 4 else 0)
        lor if st.State.ovf then 8 else 0
      in
      charge_access st (State.get st Reg.ESP - 4) Width.W32;
      State.push st v;
      advance st
  | Insn.Popf ->
      charge_access st (State.get st Reg.ESP) Width.W32;
      let v = State.pop st in
      st.State.zf <- v land 1 <> 0;
      st.State.sf <- v land 2 <> 0;
      st.State.cf <- v land 4 <> 0;
      st.State.ovf <- v land 8 <> 0;
      advance st
  | Insn.Nop -> advance st
  | Insn.Hlt -> st.State.pc <- ret_sentinel

let exec_insn ~natives st insn =
  issue st insn;
  exec_body ~natives st insn

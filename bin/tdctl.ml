(* tdctl — command-line front end to the TwinDrivers framework.

   Subcommands:
     rewrite   derive a hypervisor driver from an assembly file (the
               semi-automatic step of the paper, §5.1)
     bench     run one netperf-like measurement
     metrics   run one measurement and dump the td_obs metric registry
     trace     run one measurement and dump the td_obs trace ring
     inspect   static facts about the bundled e1000 driver
     table1    trace the fast-path support routines *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- rewrite --- *)

let rewrite_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DRIVER.s" ~doc:"Assembly source of the guest OS driver.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT.s"
          ~doc:"Write the hypervisor driver here (default: stdout).")
  in
  let spill =
    Arg.(
      value & flag
      & info [ "spill-everything" ]
          ~doc:"Disable register liveness analysis (always spill).")
  in
  let helper =
    Arg.(
      value & flag
      & info [ "shared-helper" ]
          ~doc:
            "Use the shared __svm_translate helper instead of the inline \
             ten-instruction fast path.")
  in
  let stats_only =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print statistics only.")
  in
  let run input output spill helper stats_only =
    let text = read_file input in
    let style =
      if helper then Some Td_rewriter.Rewrite.Shared_helper else None
    in
    match
      Td_rewriter.Twin.derive ~spill_everything:spill ?style
        (Td_misa.Parser.parse ~name:(Filename.basename input) text)
    with
    | twin ->
        if stats_only then
          Format.printf "%a@." Td_rewriter.Rewrite.pp_stats
            twin.Td_rewriter.Twin.stats
        else begin
          let out = Td_rewriter.Twin.rewritten_text twin in
          (match output with
          | Some path ->
              let oc = open_out path in
              output_string oc out;
              close_out oc;
              Format.eprintf "%a@." Td_rewriter.Rewrite.pp_stats
                twin.Td_rewriter.Twin.stats
          | None -> print_string out)
        end;
        0
    | exception Td_misa.Parser.Syntax_error (line, msg) ->
        Format.eprintf "%s:%d: syntax error: %s@." input line msg;
        1
    | exception Td_rewriter.Rewrite.Rewrite_error msg ->
        Format.eprintf "rewrite error: %s@." msg;
        1
  in
  let doc = "derive a hypervisor driver from guest-OS driver assembly" in
  Cmd.v
    (Cmd.info "rewrite" ~doc)
    Term.(const run $ input $ output $ spill $ helper $ stats_only)

(* --- bench --- *)

let config_conv =
  let parse s =
    match Twindrivers.Config.of_string s with
    | Some c -> Ok c
    | None -> Error (`Msg ("unknown configuration " ^ s))
  in
  Arg.conv (parse, fun fmt c -> Format.pp_print_string fmt (Twindrivers.Config.name c))

let bench_cmd =
  let config =
    Arg.(
      value
      & opt config_conv Twindrivers.Config.Xen_twin
      & info [ "c"; "config" ] ~docv:"CONFIG"
          ~doc:"One of linux, dom0, domU, twin.")
  in
  let direction =
    Arg.(
      value & opt string "tx"
      & info [ "d"; "direction" ] ~docv:"DIR" ~doc:"tx or rx.")
  in
  let packets =
    Arg.(value & opt int 800 & info [ "n"; "packets" ] ~docv:"N" ~doc:"Packets.")
  in
  let nics =
    Arg.(value & opt int 5 & info [ "nics" ] ~docv:"N" ~doc:"NIC count.")
  in
  let run config direction packets nics =
    let w = Twindrivers.World.create ~nics config in
    let r =
      match direction with
      | "rx" -> Twindrivers.Measure.run_receive ~packets w
      | _ -> Twindrivers.Measure.run_transmit ~packets w
    in
    Format.printf "%a@.%a@." Twindrivers.Measure.pp_result r
      Twindrivers.Measure.pp_breakdown r;
    0
  in
  let doc = "run a netperf-like measurement on one configuration" in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(const run $ config $ direction $ packets $ nics)

(* --- metrics / trace: run a measurement with observability enabled --- *)

let direction_arg =
  Arg.(
    value & opt string "tx"
    & info [ "d"; "direction" ] ~docv:"DIR" ~doc:"tx or rx.")

let packets_arg =
  Arg.(value & opt int 800 & info [ "n"; "packets" ] ~docv:"N" ~doc:"Packets.")

let nics_arg =
  Arg.(value & opt int 5 & info [ "nics" ] ~docv:"N" ~doc:"NIC count.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of a table.")

let observed_run config direction packets nics =
  Td_obs.Control.enable ();
  let w = Twindrivers.World.create ~nics config in
  match direction with
  | "rx" -> Twindrivers.Measure.run_receive ~packets w
  | _ -> Twindrivers.Measure.run_transmit ~packets w

let metrics_cmd =
  let config =
    Arg.(
      value
      & opt config_conv Twindrivers.Config.Xen_twin
      & info [ "c"; "config" ] ~docv:"CONFIG"
          ~doc:"One of linux, dom0, domU, twin.")
  in
  let run config direction packets nics json =
    let r = observed_run config direction packets nics in
    if json then
      print_string
        (Td_obs.Json.to_string_pretty
           (Td_obs.Json.Obj
              [
                ("config", Td_obs.Json.String (Twindrivers.Config.name config));
                ("direction", Td_obs.Json.String direction);
                ("packets", Td_obs.Json.Int packets);
                ("metrics", Td_obs.Metrics.to_json ());
              ]))
    else begin
      Format.printf "%a@." Twindrivers.Measure.pp_result r;
      Format.printf "%a@." Td_obs.Metrics.pp ()
    end;
    0
  in
  let doc =
    "run one measurement with observability on and dump the metric registry"
  in
  Cmd.v
    (Cmd.info "metrics" ~doc)
    Term.(
      const run $ config $ direction_arg $ packets_arg $ nics_arg $ json_arg)

let trace_cmd =
  let config =
    Arg.(
      value
      & opt config_conv Twindrivers.Config.Xen_twin
      & info [ "c"; "config" ] ~docv:"CONFIG"
          ~doc:"One of linux, dom0, domU, twin.")
  in
  let limit =
    Arg.(
      value & opt int 64
      & info [ "limit" ] ~docv:"K"
          ~doc:"Print only the last K retained records (0 = all).")
  in
  let capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "capacity" ] ~docv:"N" ~doc:"Resize the trace ring first.")
  in
  let run config direction packets nics json limit capacity =
    match capacity with
    | Some n when n <= 0 ->
        Format.eprintf "tdctl: --capacity must be positive (got %d)@." n;
        1
    | _ ->
    Option.iter Td_obs.Trace.set_capacity capacity;
    ignore (observed_run config direction packets nics);
    if json then print_string (Td_obs.Json.to_string_pretty (Td_obs.Trace.to_json ()))
    else begin
      let records = Td_obs.Trace.records () in
      let retained = List.length records in
      let shown =
        if limit <= 0 || retained <= limit then records
        else
          (* drop the oldest, keep the last [limit] *)
          List.filteri (fun i _ -> i >= retained - limit) records
      in
      List.iter (fun r -> Format.printf "%a@." Td_obs.Trace.pp_record r) shown;
      Format.printf "-- %d of %d retained records shown (%d emitted, ring %d)@."
        (List.length shown) retained (Td_obs.Trace.emitted ())
        (Td_obs.Trace.capacity ())
    end;
    0
  in
  let doc =
    "run one measurement with observability on and dump the trace ring"
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      const run $ config $ direction_arg $ packets_arg $ nics_arg $ json_arg
      $ limit $ capacity)

(* --- inspect --- *)

let inspect_cmd =
  let run () =
    let source = Td_driver.E1000_driver.source () in
    let twin = Td_rewriter.Twin.derive source in
    Format.printf "bundled driver: %d instructions, %d entry points@."
      (Td_misa.Program.instruction_count source)
      (List.length (Td_misa.Program.entry_points source));
    Format.printf "memory-referencing instructions: %.1f%% (paper: ~25%%)@."
      (100. *. Td_rewriter.Rewrite.memory_reference_fraction source);
    Format.printf "%a@." Td_rewriter.Rewrite.pp_stats twin.Td_rewriter.Twin.stats;
    0
  in
  let doc = "static facts about the bundled e1000-style driver" in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const run $ const ())

(* --- verify --- *)

let verify_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DRIVER.s" ~doc:"Assembly source to inspect.")
  in
  let run input =
    match Td_misa.Parser.parse ~name:input (read_file input) with
    | exception Td_misa.Parser.Syntax_error (line, msg) ->
        Format.eprintf "%s:%d: syntax error: %s@." input line msg;
        1
    | src -> (
        match Td_rewriter.Verifier.inspect src with
        | [] ->
            print_endline "clean: no findings";
            0
        | findings ->
            List.iter
              (fun f ->
                Format.printf "%a@." Td_rewriter.Verifier.pp_finding f)
              findings;
            if Td_rewriter.Verifier.admissible src then 0 else 1)
  in
  let doc = "static inspection of driver code (S4.5 checks)" in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ input)

(* --- disasm --- *)

let disasm_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DRIVER.bin"
          ~doc:"Driver binary (the MISA encoding; see tdctl assemble).")
  in
  let run input =
    match Td_misa.Decode.decode (Bytes.of_string (read_file input)) with
    | src, base ->
        Format.printf "# load address: 0x%x@.%s" base
          (Td_misa.Program.to_string_source src);
        0
    | exception Td_misa.Decode.Malformed msg ->
        Format.eprintf "malformed binary: %s@." msg;
        1
  in
  let doc = "disassemble a driver binary back to rewritable assembly" in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const run $ input)

(* --- assemble --- *)

let assemble_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DRIVER.s" ~doc:"Assembly source.")
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT.bin" ~doc:"Output binary.")
  in
  let base =
    Arg.(
      value
      & opt int Td_mem.Layout.vm_driver_code_base
      & info [ "base" ] ~docv:"ADDR" ~doc:"Load address.")
  in
  let run input output base =
    match Td_misa.Parser.parse ~name:input (read_file input) with
    | exception Td_misa.Parser.Syntax_error (line, msg) ->
        Format.eprintf "%s:%d: syntax error: %s@." input line msg;
        1
    | src -> (
        match Td_misa.Program.assemble ~base src with
        | exception Td_misa.Program.Unresolved sym ->
            Format.eprintf "unresolved symbol: %s@." sym;
            1
        | prog ->
            let oc = open_out_bin output in
            output_bytes oc (Td_misa.Encode.encode prog);
            close_out oc;
            Format.eprintf "wrote %d bytes@." (Td_misa.Encode.encoded_size prog);
            0)
  in
  let doc = "assemble driver source into the MISA binary encoding" in
  Cmd.v (Cmd.info "assemble" ~doc) Term.(const run $ input $ output $ base)

(* --- profile --- *)

let profile_cmd =
  let packets =
    Arg.(value & opt int 300 & info [ "n"; "packets" ] ~docv:"N" ~doc:"Packets.")
  in
  let run packets =
    let w = Twindrivers.World.create ~nics:1 Twindrivers.Config.Xen_twin in
    let prof = Td_cpu.Profiler.attach (Twindrivers.World.interp w) in
    let payload = String.make 1500 'x' in
    for i = 0 to packets - 1 do
      ignore (Twindrivers.World.transmit w ~nic:0 ~payload);
      if i mod 8 = 7 then Twindrivers.World.pump w
    done;
    Twindrivers.World.pump w;
    Format.printf "%a@." Td_cpu.Profiler.pp prof;
    0
  in
  let doc = "per-routine cycle profile of the twin transmit path" in
  Cmd.v (Cmd.info "profile" ~doc) Term.(const run $ packets)

(* --- run: derive a driver and execute an entry point under SVM --- *)

let run_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DRIVER.s" ~doc:"Assembly source of the driver.")
  in
  let entry =
    Arg.(
      required
      & opt (some string) None
      & info [ "e"; "entry" ] ~docv:"LABEL" ~doc:"Entry point to call.")
  in
  let args =
    Arg.(
      value & opt_all int []
      & info [ "a"; "arg" ] ~docv:"N"
          ~doc:
            "Integer argument (repeatable; pushed cdecl). Use --data-arg              for a pointer to fresh dom0 memory.")
  in
  let data_args =
    Arg.(
      value & opt_all int []
      & info [ "d"; "data-arg" ] ~docv:"BYTES"
          ~doc:
            "Allocate BYTES of zeroed dom0 memory and pass its address              (repeatable; data arguments precede integer arguments).")
  in
  let run input entry args data_args =
    let text = read_file input in
    match Td_rewriter.Twin.derive_text ~name:(Filename.basename input) text with
    | exception Td_misa.Parser.Syntax_error (line, msg) ->
        Format.eprintf "%s:%d: syntax error: %s@." input line msg;
        1
    | exception Td_rewriter.Rewrite.Rewrite_error msg ->
        Format.eprintf "rewrite error: %s@." msg;
        1
    | twin -> (
        (* a minimal machine: dom0 + hypervisor + SVM runtime *)
        let phys = Td_mem.Phys_mem.create () in
        let dom0 = Td_mem.Addr_space.create ~name:"dom0" phys in
        Td_mem.Addr_space.heap_init dom0 ~base:Td_mem.Layout.dom0_heap_base
          ~limit:Td_mem.Layout.dom0_heap_limit;
        let xen = Td_mem.Addr_space.create ~name:"xen" phys in
        Td_mem.Addr_space.alloc_region xen
          ~vaddr:
            (Td_mem.Layout.hyp_stack_top
            - (Td_mem.Layout.hyp_stack_pages * Td_mem.Layout.page_size))
          ~pages:Td_mem.Layout.hyp_stack_pages;
        Td_mem.Addr_space.alloc_region xen
          ~vaddr:Td_mem.Layout.hyp_scratch_base ~pages:1;
        let natives = Td_cpu.Native.create () in
        let registry = Td_cpu.Code_registry.create () in
        let svm = Td_svm.Runtime.create_hypervisor ~dom0 ~hyp:xen () in
        Td_svm.Runtime.register_natives svm natives;
        let symbols =
          Td_rewriter.Loader.svm_symbols ~runtime:svm ~natives
            ~stlb_vaddr:Td_mem.Layout.stlb_base
            ~scratch_vaddr:Td_mem.Layout.hyp_scratch_base
        in
        let prog =
          Td_rewriter.Loader.load ~name:"driver.hyp"
            ~source:twin.Td_rewriter.Twin.rewritten
            ~base:Td_mem.Layout.hyp_driver_code_base ~symbols ~registry
        in
        let data_ptrs =
          List.map (fun bytes -> Td_mem.Addr_space.heap_alloc dom0 bytes) data_args
        in
        let guest = Td_mem.Addr_space.create ~name:"guest" phys in
        let st = Td_cpu.State.create ~hyp_space:xen guest in
        Td_cpu.State.set st Td_misa.Reg.ESP Td_mem.Layout.hyp_stack_top;
        let interp = Td_cpu.Interp.create st registry natives in
        match
          Td_cpu.Interp.call ~max_steps:5_000_000 interp
            ~entry:(Td_misa.Program.addr_of_label prog entry)
            ~args:(data_ptrs @ args)
        with
        | result ->
            Format.printf "returned %d (0x%x)@." result result;
            Format.printf
              "cycles: %d; stlb slow paths: %d; dom0 pages mapped: %d@."
              st.Td_cpu.State.cycles
              (Td_svm.Runtime.misses svm)
              (Td_svm.Runtime.pages_mapped svm);
            List.iteri
              (fun i ptr ->
                Format.printf "data-arg %d at 0x%x, first words: %x %x %x %x@."
                  i ptr
                  (Td_mem.Addr_space.read dom0 ptr Td_misa.Width.W32)
                  (Td_mem.Addr_space.read dom0 (ptr + 4) Td_misa.Width.W32)
                  (Td_mem.Addr_space.read dom0 (ptr + 8) Td_misa.Width.W32)
                  (Td_mem.Addr_space.read dom0 (ptr + 12) Td_misa.Width.W32))
              data_ptrs;
            0
        | exception Td_svm.Runtime.Fault { addr; reason } ->
            Format.printf "driver aborted: SVM fault at 0x%x (%s)@." addr reason;
            2
        | exception Td_cpu.Interp.Timeout _ ->
            Format.printf "driver aborted: watchdog timeout@.";
            2
        | exception Td_misa.Program.Unresolved l ->
            Format.eprintf "no such entry point: %s@." l;
            1)
  in
  let doc = "derive a driver and run an entry point in the hypervisor" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(const run $ input $ entry $ args $ data_args)

(* --- table1 --- *)

let table1_cmd =
  let run () =
    let t = Twindrivers.Experiments.table1_fast_path () in
    Format.printf "fast-path support routines (Table 1):@.";
    List.iter (Format.printf "  %s@.") t.Twindrivers.Experiments.fast_path_called;
    Format.printf "registry: %d routines; %d exercised across all operations@."
      t.Twindrivers.Experiments.registry_size
      (List.length t.Twindrivers.Experiments.all_called);
    0
  in
  let doc = "trace the support routines used on the error-free fast path" in
  Cmd.v (Cmd.info "table1" ~doc) Term.(const run $ const ())

(* --- faults --- *)

let faults_cmd =
  let policy_conv =
    let parse s =
      match Twindrivers.Config.recovery_of_string s with
      | Some p -> Ok p
      | None -> Error (`Msg ("unknown recovery policy " ^ s))
    in
    Arg.conv
      ( parse,
        fun fmt p ->
          Format.pp_print_string fmt (Twindrivers.Config.recovery_name p) )
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Twindrivers.Config.Restart_replay
      & info [ "p"; "policy" ] ~docv:"POLICY"
          ~doc:"Recovery policy: fail-stop, restart or restart-replay.")
  in
  let rate =
    Arg.(
      value & opt float 0.004
      & info [ "r"; "rate" ] ~docv:"RATE"
          ~doc:
            "Fault-rate knob feeding the per-site plan (0 disables \
             injection entirely).")
  in
  let frames =
    Arg.(
      value & opt int 10_000
      & info [ "n"; "frames" ] ~docv:"N" ~doc:"Frames to offer in the soak.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:"Deterministic seed: same seed + same workload, same faults.")
  in
  let run policy rate frames seed =
    Td_obs.Control.enable ();
    let p =
      Twindrivers.Experiments.recovery_soak ~frames ~seed ~policy ~rate ()
    in
    let e = p.Twindrivers.Experiments.availability in
    Format.printf "policy            %s@."
      (Twindrivers.Config.recovery_name p.Twindrivers.Experiments.policy);
    Format.printf "fault rate        %g (seed %d)@."
      p.Twindrivers.Experiments.fault_rate seed;
    Format.printf "offered           %d frames@."
      p.Twindrivers.Experiments.offered;
    Format.printf "delivered         %d frames (availability %.4f%%)@."
      p.Twindrivers.Experiments.delivered (100. *. e);
    Format.printf "faults injected   %d@." p.Twindrivers.Experiments.injected;
    Format.printf "recoveries        %d (mean %.1f frames to recover)@."
      p.Twindrivers.Experiments.recoveries
      p.Twindrivers.Experiments.frames_to_recover;
    Format.printf "frames replayed   %d@." p.Twindrivers.Experiments.replayed;
    Format.printf "frames lost       %d@." p.Twindrivers.Experiments.lost;
    Format.printf "guest faults      %d@."
      p.Twindrivers.Experiments.guest_faults;
    Format.printf "end state         %s@."
      (if p.Twindrivers.Experiments.serviceable then
         "all NICs serviceable"
       else "NIC(s) quarantined");
    if p.Twindrivers.Experiments.serviceable then 0 else 1
  in
  let doc = "run a fault-injection soak and report the recovery ledger" in
  Cmd.v (Cmd.info "faults" ~doc) Term.(const run $ policy $ rate $ frames $ seed)

let quotas_cmd =
  let ops =
    Arg.(
      value & opt int 20_000
      & info [ "n"; "ops" ] ~docv:"N"
          ~doc:"Adversarial ops to drive before reporting.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:"Deterministic seed: same seed, same op stream, same report.")
  in
  let rate =
    Arg.(
      value & opt float 5_000.
      & info [ "r"; "rate" ] ~docv:"PER_S"
          ~doc:
            "Notification-rate cap per domain per simulated second (the \
             other caps come from the defaults).")
  in
  let run ops seed rate =
    let quota =
      { Td_xen.Quota.default_limits with Td_xen.Quota.notifications_per_s = rate }
    in
    let r = Td_adv.Fuzz.run ~seed ~quota ~ops () in
    Format.printf "adversarial ops   %d (seed %d)@." r.Td_adv.Fuzz.ops seed;
    Format.printf "  ok              %d@." r.Td_adv.Fuzz.ok;
    Format.printf "  guest faults    %d@." r.Td_adv.Fuzz.guest_faults;
    Format.printf "  svm faults      %d@." r.Td_adv.Fuzz.svm_faults;
    Format.printf "  quota denials   %d@." r.Td_adv.Fuzz.quota_denials;
    Format.printf "  checksum        0x%x@." r.Td_adv.Fuzz.checksum;
    List.iter
      (fun v -> Format.printf "  VIOLATION       %s@." v)
      r.Td_adv.Fuzz.violations;
    Format.printf "@.%-10s %-18s %8s %10s@." "domain" "resource" "inuse"
      "throttled";
    List.iter
      (fun domain ->
        List.iter
          (fun res ->
            let inuse = Td_xen.Quota.inuse ~domain res in
            let thr = Td_xen.Quota.throttled_for ~domain res in
            if inuse > 0 || thr > 0 then
              Format.printf "%-10s %-18s %8d %10d@." domain
                (Td_xen.Quota.resource_name res)
                inuse thr)
          Td_xen.Quota.all_resources)
      (Td_xen.Quota.domains ());
    Format.printf "@.total throttled   %d@." (Td_xen.Quota.throttled ());
    Td_xen.Quota.clear ();
    if r.Td_adv.Fuzz.violations = [] then 0 else 1
  in
  let doc =
    "drive the adversarial fuzzer against per-domain quotas and report \
     in-use/throttled counters"
  in
  Cmd.v (Cmd.info "quotas" ~doc) Term.(const run $ ops $ seed $ rate)

let () =
  let doc = "TwinDrivers: derive fast and safe hypervisor drivers" in
  let info = Cmd.info "tdctl" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            rewrite_cmd; bench_cmd; inspect_cmd; table1_cmd; verify_cmd;
            assemble_cmd; disasm_cmd; profile_cmd; run_cmd; metrics_cmd;
            trace_cmd; faults_cmd; quotas_cmd;
          ]))

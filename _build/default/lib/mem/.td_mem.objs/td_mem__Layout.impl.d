lib/mem/layout.ml:

lib/mem/phys_mem.mli: Td_misa

lib/mem/phys_mem.ml: Bytes Char Hashtbl Int32 Layout Printf Td_misa

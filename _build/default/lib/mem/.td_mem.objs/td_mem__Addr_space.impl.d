lib/mem/addr_space.ml: Bytes Char Hashtbl Layout Phys_mem Printf Td_misa

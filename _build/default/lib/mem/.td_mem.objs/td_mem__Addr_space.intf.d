lib/mem/addr_space.mli: Phys_mem Td_misa

lib/mem/layout.mli:

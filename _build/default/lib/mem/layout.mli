(** Fixed virtual-memory layout of the simulated machine (32-bit).

    Mirrors the Xen/Linux split the paper relies on: dom0's kernel occupies
    the high quarter of the address space, the hypervisor owns the top
    region, and the TwinDrivers artefacts (stlb, mapped-page window,
    hypervisor driver code and stack) live at fixed hypervisor addresses. *)

val page_size : int
val page_shift : int
val page_mask : int
(** [page_mask = page_size - 1]. *)

val page_of : int -> int
(** Virtual or physical page number of an address. *)

val page_base : int -> int
(** Address with the offset bits cleared. *)

val offset_of : int -> int

val addr_limit : int
(** One past the highest representable address (2^32). *)

(* dom0 (driver domain) *)

val dom0_kernel_base : int
val dom0_heap_base : int
val dom0_heap_limit : int
val vm_driver_code_base : int

(* guest domains *)

val guest_kernel_base : int
val guest_heap_base : int
val guest_heap_limit : int

(* hypervisor *)

val hyp_base : int
(** Start of the hypervisor-reserved region; everything at or above this
    address must be unreachable from the derived driver. *)

val stlb_base : int
(** Virtual address of the software translation table. *)

val stlb_entries : int
(** Number of stlb hash buckets (4096 in the paper). *)

val stlb_entry_bytes : int
(** Bytes per entry: tag word + xor word. *)

val map_window_base : int
val map_window_pages : int
(** Window of hypervisor virtual pages used to map dom0 pages (16 MB in the
    paper: "mapping up to 16MB of dom0 virtual memory"). *)

val hyp_driver_code_base : int
val hyp_stack_top : int
val hyp_stack_pages : int
val hyp_scratch_base : int
(** Per-CPU scratch slots used when the rewriter must spill registers. *)

val native_base : int
(** Code addresses at or above this are native (OCaml-implemented) routines
    registered with the CPU; calls to them leave the simulated ISA. *)

val code_offset : int
(** Constant displacement between VM-driver and hypervisor-driver code
    addresses ([hyp_driver_code_base - vm_driver_code_base]); the paper uses
    the same rewritten binary for both instances precisely so that this is a
    constant. *)

val in_dom0_range : int -> bool
(** True when the address lies in dom0 kernel virtual space — the only
    region the SVM slow path may map for the hypervisor driver. *)

val in_hyp_range : int -> bool

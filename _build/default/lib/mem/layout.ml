let page_size = 4096
let page_shift = 12
let page_mask = page_size - 1
let page_of addr = addr lsr page_shift
let page_base addr = addr land lnot page_mask
let offset_of addr = addr land page_mask
let addr_limit = 0x1_0000_0000

let dom0_kernel_base = 0xC000_0000
let dom0_heap_base = 0xC100_0000
let dom0_heap_limit = 0xC800_0000
let vm_driver_code_base = 0xC800_0000

let guest_kernel_base = 0xF000_0000
let guest_heap_base = 0xF010_0000
let guest_heap_limit = 0xF800_0000

let hyp_base = 0xFC00_0000
let stlb_base = 0xFC10_0000
let stlb_entries = 4096
let stlb_entry_bytes = 8
let map_window_base = 0xFD00_0000
let map_window_pages = 4096
let hyp_driver_code_base = 0xFC80_0000
let hyp_stack_top = 0xFCF1_0000
let hyp_stack_pages = 4
let hyp_scratch_base = 0xFC20_0000
let native_base = 0xFE00_0000
let code_offset = hyp_driver_code_base - vm_driver_code_base

let in_dom0_range addr = addr >= dom0_kernel_base && addr < vm_driver_code_base
let in_hyp_range addr = addr >= hyp_base && addr < addr_limit

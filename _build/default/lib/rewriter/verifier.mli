(** Static inspection of driver code at rewriting time (§4.5.2: bugs like
    "the use of privileged instructions ... can be detected and prevented
    by static inspection of the driver code during binary translation").

    The verifier flags constructs that the SVM rewriting alone does not
    police: halting instructions, suspiciously large stack-frame
    displacements (§4.5.1's statically-checkable class), indirect jumps
    (a control-flow-integrity hazard), direct absolute control transfers,
    and attempts to define the rewriter's reserved symbols. *)

type severity = Reject | Warn

type finding = {
  severity : severity;
  index : int;  (** instruction index; -1 for program-level findings *)
  message : string;
}

val stack_disp_limit : int
(** Largest stack-relative displacement accepted as statically safe
    (8 KiB, the simulated driver-stack size minus slack). *)

val inspect : Td_misa.Program.source -> finding list

val admissible : Td_misa.Program.source -> bool
(** No [Reject]-severity findings. *)

val pp_finding : Format.formatter -> finding -> unit

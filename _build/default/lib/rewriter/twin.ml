type t = {
  original : Td_misa.Program.source;
  rewritten : Td_misa.Program.source;
  stats : Rewrite.stats;
}

let derive ?spill_everything ?style ?cfi ?cache_probes ?(verify = true)
    original =
  if verify then begin
    let rejects =
      List.filter
        (fun f -> f.Verifier.severity = Verifier.Reject)
        (Verifier.inspect original)
    in
    match rejects with
    | [] -> ()
    | f :: _ ->
        raise
          (Rewrite.Rewrite_error (Format.asprintf "%a" Verifier.pp_finding f))
  end;
  let rewritten, stats =
    Rewrite.rewrite_source ?spill_everything ?style ?cfi ?cache_probes
      original
  in
  { original; rewritten; stats }

let derive_text ~name text = derive (Td_misa.Parser.parse ~name text)

let derive_binary ?name data =
  let source, base = Td_misa.Decode.decode ?name data in
  (derive source, base)

let rewritten_text t = Td_misa.Program.to_string_source t.rewritten

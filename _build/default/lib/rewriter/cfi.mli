(** Runtime side of the control-flow-integrity extension (§4.5.1):
    the native routine that CFI-instrumented returns call to validate the
    pending return address. Valid targets are the driver's own code range
    and the host's call sentinel; anything else (a smashed stack) raises
    {!Violation} before control can escape. *)

exception Violation of { target : int }

val register :
  Td_cpu.Native.t -> code_base:int -> code_size:int -> unit -> unit
(** Registers {!Rewrite.cfi_symbol}. *)

val symtab : Td_cpu.Native.t -> string -> int option
(** Resolves {!Rewrite.cfi_symbol} for the loader. *)

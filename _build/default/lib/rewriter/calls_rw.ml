open Td_misa

let rewrite ~free ~is_call ~target ~heap_load =
  let items = ref [] in
  let ins i = items := Program.Ins i :: !items in
  let emit l = items := List.rev_append l !items in
  (* Bring the target value into EAX. *)
  (match target with
  | Operand.Reg r ->
      if not (Reg.equal r Reg.EAX) then
        ins (Insn.Mov (Width.W32, Operand.Reg r, Operand.Reg Reg.EAX))
  | Operand.Mem m when Operand.is_stack_relative m ->
      ins (Insn.Mov (Width.W32, Operand.Mem m, Operand.Reg Reg.EAX))
  | Operand.Mem m ->
      let load = Insn.Mov (Width.W32, Operand.Mem m, Operand.Reg Reg.EAX) in
      emit (heap_load ~free ~insn:load ~mem:m)
  | Operand.Imm _ -> invalid_arg "Calls_rw.rewrite: immediate target");
  (* Translate and transfer. *)
  ins (Insn.Push (Operand.Reg Reg.EAX));
  ins (Insn.Call (Insn.Lbl Symbols.svm_call));
  ins (Insn.Alu (Insn.Add, Operand.Imm 4, Operand.Reg Reg.ESP));
  if is_call then ins (Insn.Call (Insn.Ind (Operand.Reg Reg.EAX)))
  else ins (Insn.Jmp (Insn.Ind (Operand.Reg Reg.EAX)));
  List.rev !items

(** Emission of the SVM fast path (Figure 4 of the paper).

    A heap memory reference is replaced by a ten-instruction sequence that
    probes the stlb hash table inline and falls back to the
    [__svm_miss] slow path on a tag mismatch. Scratch registers come from
    liveness analysis; when fewer than three are free, registers are
    spilled to the [__svm_scratch] slots (the paper's footnote 3). Flags
    are preserved with [pushf]/[popf] when live across the rewritten
    instruction. *)

exception Rewrite_error of string

val fast_path_instructions : int
(** Length of the hit path including the final access: 10, as the paper
    states ("replaces one memory instruction ... with ten instructions"). *)

val pick_scratch :
  free:Td_misa.Reg.t list ->
  used:Td_misa.Reg.t list ->
  Td_misa.Reg.t * Td_misa.Reg.t * Td_misa.Reg.t * Td_misa.Reg.t list
(** [(r1, r2, r3, spilled)]: three distinct scratch registers avoiding
    [used], preferring [free]. *)

val rewrite_heap_access_into :
  free:Td_misa.Reg.t list ->
  flags_live:bool ->
  insn:Td_misa.Insn.t ->
  mem:Td_misa.Operand.mem ->
  rebuild:(Td_misa.Operand.t -> Td_misa.Insn.t) ->
  avoid:Td_misa.Reg.t list ->
  Td_misa.Program.item list * Td_misa.Reg.t option
(** Like {!rewrite_heap_access} but additionally avoids [avoid] when
    picking scratch registers and returns the register still holding the
    translated address after the access (if any survives — a spilled
    scratch register is restored and holds nothing) — the hook used by
    the probe-caching optimisation, which is sound for forward offsets
    within a page because the slow path maps page pairs. *)

val rewrite_heap_access_helper :
  free:Td_misa.Reg.t list ->
  flags_live:bool ->
  insn:Td_misa.Insn.t ->
  mem:Td_misa.Operand.mem ->
  rebuild:(Td_misa.Operand.t -> Td_misa.Insn.t) ->
  Td_misa.Program.item list
(** Ablation variant: instead of the inline ten-instruction probe, call
    the shared [__svm_translate] helper for every access (smaller code,
    extra call overhead per access). *)

val rewrite_heap_access :
  free:Td_misa.Reg.t list ->
  flags_live:bool ->
  insn:Td_misa.Insn.t ->
  mem:Td_misa.Operand.mem ->
  rebuild:(Td_misa.Operand.t -> Td_misa.Insn.t) ->
  Td_misa.Program.item list
(** Emit the full replacement for an instruction whose (single) heap
    operand is [mem]; [rebuild] reconstructs the instruction with the
    translated operand. *)

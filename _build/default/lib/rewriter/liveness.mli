(** Backward register- and flags-liveness analysis over a program source.

    The paper: "we avoid the cost of spilling registers most of the time by
    doing a register liveness analysis to determine the set of free
    registers available at each instruction" (§4.1, footnote 3).

    Calls follow the cdecl convention the driver is compiled with:
    arguments are on the stack, so a [call] reads no caller registers,
    clobbers the caller-saved EAX/ECX/EDX and preserves the rest; [ret]
    keeps the callee-saved registers and [EAX] live; unresolved control
    flow (indirect jumps) conservatively keeps everything live. *)

type t

val analyse : Td_misa.Program.source -> t

val live_in : t -> int -> Td_misa.Reg.t list
(** Registers live immediately before instruction [i] (by instruction
    index, labels not counted). *)

val flags_live_in : t -> int -> bool
(** Whether the flags are live immediately before instruction [i] —
    i.e. whether inserted code must preserve them. *)

val free_regs : t -> int -> Td_misa.Reg.t list
(** Registers that inserted code may clobber at instruction [i]: general
    registers neither live-in nor read/written by the instruction
    itself. *)

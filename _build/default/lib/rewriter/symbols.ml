let stlb = "__stlb"
let scratch = "__svm_scratch"
let svm_miss = "__svm_miss"
let svm_translate = "__svm_translate"
let svm_call = "__svm_call"
let scratch_slots = 8

let scratch_slot n =
  if n < 0 || n >= scratch_slots then invalid_arg "Symbols.scratch_slot";
  Td_misa.Operand.Mem (Td_misa.Operand.mem ~sym:scratch (4 * n))

let is_reserved name =
  List.mem name [ stlb; scratch; svm_miss; svm_translate; svm_call ]

(** Top-level driver derivation: the "semi-automatic" step.

    [derive] takes the VM driver source (obtained by compiling the driver
    to assembly, §5.1) and produces the rewritten source that both
    instances run — the VM instance with an identity stlb in dom0, the
    hypervisor instance with the translating stlb in Xen. *)

type t = {
  original : Td_misa.Program.source;
  rewritten : Td_misa.Program.source;
  stats : Rewrite.stats;
}

val derive :
  ?spill_everything:bool ->
  ?style:Rewrite.style ->
  ?cfi:bool ->
  ?cache_probes:bool ->
  ?verify:bool ->
  Td_misa.Program.source ->
  t
(** [verify] (default true) runs {!Verifier.inspect} first and raises
    {!Rewrite.Rewrite_error} on reject-severity findings — the paper's
    static inspection during binary translation. *)

val derive_text : name:string -> string -> t
(** Convenience: parse textual assembly first (the paper's compiler
    path). *)

val derive_binary : ?name:string -> bytes -> t * int
(** The paper's other path: disassemble a driver binary
    ({!Td_misa.Encode} format) and rewrite it; also returns the binary's
    original load address. *)

val rewritten_text : t -> string
(** Hypervisor assembler file, as §5.1 describes the tool emitting. *)

exception Violation of { target : int }

let register natives ~code_base ~code_size () =
  let fn st =
    let target = Td_cpu.State.stack_arg st 0 in
    let ok =
      (target >= code_base && target < code_base + code_size)
      || target = Td_cpu.Interp.ret_sentinel
    in
    (* deliberately register-transparent: the guard runs between the
       callee's computation of EAX and the return *)
    if not ok then raise (Violation { target })
  in
  ignore (Td_cpu.Native.register natives Rewrite.cfi_symbol fn)

let symtab natives name =
  if name = Rewrite.cfi_symbol then Td_cpu.Native.address_of natives name
  else None

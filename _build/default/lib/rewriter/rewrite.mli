(** The assembler-level rewriting pass (§5.1): transforms a VM driver
    source into a hypervisor driver source by replacing every non-stack
    memory reference with the SVM fast path, expanding string operations
    into page-chunked loops, and inserting target translation before
    indirect calls and jumps. *)

exception Rewrite_error of string

type stats = {
  input_instructions : int;
  output_instructions : int;
  heap_sites : int;  (** memory references rewritten to the SVM fast path *)
  string_sites : int;
  indirect_sites : int;
  spill_sites : int;  (** sites where register spilling was required *)
  flag_save_sites : int;  (** sites where flags had to be preserved *)
  cfi_sites : int;  (** returns instrumented with the CFI check *)
  cached_sites : int;
      (** accesses that reused a previous probe's translation instead of
          probing again (the probe-caching extension) *)
}

val pp_stats : Format.formatter -> stats -> unit

val memory_reference_fraction : Td_misa.Program.source -> float
(** Fraction of instructions that reference heap memory (the paper reports
    roughly 25% for network drivers). *)

type style = Inline_fast_path | Shared_helper

val cfi_symbol : string
(** Native symbol the CFI-instrumented returns call: takes the pending
    return address and faults unless it lies in the driver's own code or
    is the host's call sentinel (§4.5.1 / XFI). *)

val rewrite_source :
  ?spill_everything:bool ->
  ?style:style ->
  ?cfi:bool ->
  ?cache_probes:bool ->
  Td_misa.Program.source ->
  Td_misa.Program.source * stats
(** Rewrite a driver. [spill_everything] disables the liveness-driven
    scratch selection and always spills (the ablation of footnote 3);
    [style] selects the inline ten-instruction fast path (default, the
    paper's design) or the shared-helper ablation; [cfi] (default false)
    additionally instruments every return with a control-flow-integrity
    check — the §4.5.1 extension; [cache_probes] (default false) enables
    redundant-probe elimination: within a basic block, a second access
    through the same unmodified base/index registers at a larger
    displacement (less than a page away) reuses the register holding the
    previous translation — sound precisely because the SVM slow path maps
    page {e pairs}. The output program references the {!Symbols} names,
    which the loader must resolve per instance. *)

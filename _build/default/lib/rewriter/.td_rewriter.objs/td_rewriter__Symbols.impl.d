lib/rewriter/symbols.ml: List Td_misa

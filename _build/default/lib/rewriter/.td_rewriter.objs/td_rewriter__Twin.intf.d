lib/rewriter/twin.mli: Rewrite Td_misa

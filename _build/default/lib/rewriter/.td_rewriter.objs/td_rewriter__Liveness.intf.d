lib/rewriter/liveness.mli: Td_misa

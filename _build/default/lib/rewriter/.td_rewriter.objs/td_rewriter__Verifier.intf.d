lib/rewriter/verifier.mli: Format Td_misa

lib/rewriter/rewrite.ml: Builder Calls_rw Format Insn List Liveness Operand Option Program Reg Strings_rw Svm_emit Symbols Td_mem Td_misa Width

lib/rewriter/cfi.mli: Td_cpu

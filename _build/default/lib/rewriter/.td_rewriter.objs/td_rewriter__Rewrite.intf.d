lib/rewriter/rewrite.mli: Format Td_misa

lib/rewriter/calls_rw.ml: Insn List Operand Program Reg Symbols Td_misa Width

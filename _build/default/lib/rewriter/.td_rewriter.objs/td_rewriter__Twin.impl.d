lib/rewriter/twin.ml: Format List Rewrite Td_misa Verifier

lib/rewriter/cfi.ml: Rewrite Td_cpu

lib/rewriter/svm_emit.mli: Td_misa

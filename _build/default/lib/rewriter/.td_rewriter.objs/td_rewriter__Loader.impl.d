lib/rewriter/loader.ml: Hashtbl List Symbols Td_cpu Td_misa Td_svm

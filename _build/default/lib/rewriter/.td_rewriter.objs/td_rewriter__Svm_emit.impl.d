lib/rewriter/svm_emit.ml: Builder Cond Insn List Operand Program Reg Symbols Td_misa Width

lib/rewriter/calls_rw.mli: Td_misa

lib/rewriter/loader.mli: Td_cpu Td_misa Td_svm

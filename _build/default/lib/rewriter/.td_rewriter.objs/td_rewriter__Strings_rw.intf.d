lib/rewriter/strings_rw.mli: Td_misa

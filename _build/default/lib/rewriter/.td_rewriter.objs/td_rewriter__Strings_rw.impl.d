lib/rewriter/strings_rw.ml: Builder Cond Insn List Operand Program Reg Svm_emit Symbols Td_mem Td_misa Width

lib/rewriter/liveness.ml: Array Hashtbl Insn List Program Reg Td_misa

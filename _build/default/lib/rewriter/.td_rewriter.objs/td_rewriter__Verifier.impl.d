lib/rewriter/verifier.ml: Format Insn List Operand Printf Program Symbols Td_mem Td_misa

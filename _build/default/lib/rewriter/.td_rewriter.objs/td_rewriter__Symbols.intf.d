lib/rewriter/symbols.mli: Td_misa

(** Well-known symbols referenced by rewritten code.

    These are resolved at load time, per instance — the same rewritten
    binary runs as the VM instance (symbols resolved into dom0) and as the
    hypervisor instance (resolved into the hypervisor), which is the
    paper's trick for keeping code addresses at a constant offset. *)

val stlb : string
(** Base address of the instance's stlb table. *)

val scratch : string
(** Base of the spill/scratch slots used by emitted code. *)

val svm_miss : string
(** The SVM slow-path handler (arg: faulting address; returns translated
    address). *)

val svm_translate : string
(** Shared translation helper used by rewritten string operations. *)

val svm_call : string
(** Indirect-call target translation helper (the [stlb_call] front end). *)

val scratch_slots : int
(** Number of 4-byte scratch slots the loader must provision. *)

val scratch_slot : int -> Td_misa.Operand.t
(** Memory operand addressing slot [n]. *)

val is_reserved : string -> bool
(** True for names the rewriter owns; driver code must not define them. *)

open Td_misa

exception Rewrite_error of string

type stats = {
  input_instructions : int;
  output_instructions : int;
  heap_sites : int;
  string_sites : int;
  indirect_sites : int;
  spill_sites : int;
  flag_save_sites : int;
  cfi_sites : int;
  cached_sites : int;
}

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>input instructions:  %d@,output instructions: %d (x%.2f)@,\
     heap sites rewritten: %d@,string sites:         %d@,\
     indirect sites:       %d@,spill sites:          %d@,\
     flag-save sites:      %d@,cfi-guarded returns:  %d@,\
     probe reuses:         %d@]"
    s.input_instructions s.output_instructions
    (float_of_int s.output_instructions /. float_of_int (max 1 s.input_instructions))
    s.heap_sites s.string_sites s.indirect_sites s.spill_sites
    s.flag_save_sites s.cfi_sites s.cached_sites

let memory_reference_fraction src =
  let total = Program.instruction_count src in
  if total = 0 then 0.0
  else float_of_int (Program.heap_reference_count src) /. float_of_int total

(* Replace the (single) heap memory operand of an instruction. *)
let replace_heap_operand insn replacement =
  let sub o =
    match o with
    | Operand.Mem m when not (Operand.is_stack_relative m) -> replacement
    | Operand.Mem _ | Operand.Imm _ | Operand.Reg _ -> o
  in
  match insn with
  | Insn.Mov (w, a, b) -> Insn.Mov (w, sub a, sub b)
  | Insn.Movzx (w, a, r) -> Insn.Movzx (w, sub a, r)
  | Insn.Alu (op, a, b) -> Insn.Alu (op, sub a, sub b)
  | Insn.Shift (op, a, b) -> Insn.Shift (op, sub a, sub b)
  | Insn.Cmp (a, b) -> Insn.Cmp (sub a, sub b)
  | Insn.Test (a, b) -> Insn.Test (sub a, sub b)
  | Insn.Inc a -> Insn.Inc (sub a)
  | Insn.Dec a -> Insn.Dec (sub a)
  | Insn.Neg a -> Insn.Neg (sub a)
  | Insn.Not a -> Insn.Not (sub a)
  | Insn.Imul (a, r) -> Insn.Imul (sub a, r)
  | Insn.Xchg (a, r) -> Insn.Xchg (sub a, r)
  | Insn.Push a -> Insn.Push (sub a)
  | Insn.Pop a -> Insn.Pop (sub a)
  | Insn.Lea (_, _) | Insn.Jmp _ | Insn.Jcc (_, _) | Insn.Call _ | Insn.Ret
  | Insn.Str (_, _, _) | Insn.Pushf | Insn.Popf | Insn.Nop | Insn.Hlt ->
      raise (Rewrite_error "replace_heap_operand: instruction has no operand")

let heap_operands insn =
  List.filter
    (fun m -> not (Operand.is_stack_relative m))
    (Insn.mem_operands insn)

type style = Inline_fast_path | Shared_helper

let cfi_symbol = "__cfi_check"

let rewrite_source ?(spill_everything = false) ?(style = Inline_fast_path)
    ?(cfi = false) ?(cache_probes = false) src =
  let live = Liveness.analyse src in
  let heap_sites = ref 0
  and string_sites = ref 0
  and indirect_sites = ref 0
  and spill_sites = ref 0
  and flag_save_sites = ref 0
  and cfi_sites = ref 0
  and cached_sites = ref 0 in
  let out = ref [] in
  let emit items = out := List.rev_append items !out in
  let free_at i = if spill_everything then [] else Liveness.free_regs live i in
  let note_spills ~free ~used =
    let _, _, _, spilled = Svm_emit.pick_scratch ~free ~used in
    if spilled <> [] then incr spill_sites
  in
  let emit_heap_access =
    match style with
    | Inline_fast_path -> Svm_emit.rewrite_heap_access
    | Shared_helper -> Svm_emit.rewrite_heap_access_helper
  in
  (* probe cache: the most recent translation still valid in a register.
     [key] is the (base, index, disp) it translated; validity ends at
     block boundaries, calls, or writes to any involved register. *)
  let cache : (Operand.mem * Reg.t) option ref = ref None in
  let invalidate () = cache := None in
  let invalidate_on_write insn =
    match !cache with
    | None -> ()
    | Some (key, r2) ->
        let written = Insn.regs_written insn in
        let involved = r2 :: Operand.regs_addr key in
        if List.exists (fun w -> List.exists (Reg.equal w) involved) written
        then invalidate ()
  in
  let cache_avoid () = match !cache with Some (_, r) -> [ r ] | None -> [] in
  let try_reuse insn (m : Operand.mem) =
    if not cache_probes then None
    else
      match !cache with
      | Some (key, r2)
        when Option.equal Reg.equal m.Operand.base key.Operand.base
             && m.Operand.index = key.Operand.index
             && m.Operand.sym = None && key.Operand.sym = None
             && m.Operand.disp >= key.Operand.disp
             && m.Operand.disp - key.Operand.disp < Td_mem.Layout.page_size - 8
             && not (List.exists (Reg.equal r2) (Insn.regs_written insn)) ->
          Some (r2, m.Operand.disp - key.Operand.disp)
      | _ -> None
  in
  let heap_load ~free ~insn ~mem =
    emit_heap_access ~free
      ~flags_live:false (* flags are dead at call sites *)
      ~insn ~mem
      ~rebuild:(replace_heap_operand insn)
  in
  let rewrite_insn i insn =
    (match insn with
    | Insn.Call _ | Insn.Jmp _ | Insn.Jcc (_, _) | Insn.Ret
    | Insn.Str (_, _, _) | Insn.Hlt ->
        invalidate ()
    | _ -> invalidate_on_write insn);
    match insn with
    | Insn.Ret when cfi ->
        (* §4.5.1: validate the pending return address before transferring
           control. ECX is dead at a cdecl return. *)
        incr cfi_sites;
        emit
          [
            Program.Ins
              (Insn.Mov (Width.W32, Builder.mem ~base:Reg.ESP 0, Builder.reg Reg.ECX));
            Program.Ins (Insn.Push (Builder.reg Reg.ECX));
            Program.Ins (Insn.Call (Insn.Lbl cfi_symbol));
            Program.Ins (Insn.Alu (Insn.Add, Operand.Imm 4, Builder.reg Reg.ESP));
            Program.Ins Insn.Ret;
          ]
    | Insn.Str (op, width, rep) ->
        incr string_sites;
        let free = free_at i in
        let flags_live = Liveness.flags_live_in live i in
        if flags_live then incr flag_save_sites;
        note_spills ~free
          ~used:(Reg.EAX :: (Insn.regs_read insn @ Insn.regs_written insn));
        emit (Strings_rw.rewrite ~free ~flags_live ~op ~width ~rep)
    | Insn.Call (Insn.Ind target) | Insn.Jmp (Insn.Ind target) ->
        incr indirect_sites;
        let is_call = match insn with Insn.Call _ -> true | _ -> false in
        emit (Calls_rw.rewrite ~free:(free_at i) ~is_call ~target ~heap_load)
    | _ -> (
        match heap_operands insn with
        | [] -> emit [ Program.Ins insn ]
        | [ mem ] -> (
            incr heap_sites;
            match try_reuse insn mem with
            | Some (r2, delta) ->
                (* the translated base is still live in r2: the access is
                   just the original instruction through r2+delta (no
                   probe, no flags impact) *)
                incr cached_sites;
                emit
                  [
                    Program.Ins
                      (replace_heap_operand insn
                         (Operand.Mem (Operand.mem ~base:r2 delta)));
                  ];
                invalidate_on_write insn
            | None ->
                let free = free_at i in
                let free =
                  List.filter
                    (fun r ->
                      not (List.exists (Reg.equal r) (cache_avoid ())))
                    free
                in
                let flags_live =
                  Liveness.flags_live_in live i && not (Insn.sets_flags insn)
                in
                if flags_live then incr flag_save_sites;
                note_spills ~free
                  ~used:
                    (cache_avoid ()
                    @ Insn.regs_read insn @ Insn.regs_written insn);
                (match style with
                | Inline_fast_path ->
                    let items, holds =
                      Svm_emit.rewrite_heap_access_into ~free ~flags_live
                        ~insn ~mem
                        ~rebuild:(replace_heap_operand insn)
                        ~avoid:(cache_avoid ())
                    in
                    emit items;
                    (match (cache_probes, holds) with
                    | true, Some r2 ->
                        (* r2 holds the translation for [mem]; it stays
                           valid until something clobbers it *)
                        cache := Some (mem, r2);
                        invalidate_on_write insn
                    | _, _ -> invalidate ())
                | Shared_helper ->
                    emit
                      (Svm_emit.rewrite_heap_access_helper ~free ~flags_live
                         ~insn ~mem
                         ~rebuild:(replace_heap_operand insn))))
        | _ :: _ :: _ ->
            raise
              (Rewrite_error
                 (Format.asprintf "two memory operands in: %a" Insn.pp insn)))
  in
  let idx = ref 0 in
  List.iter
    (function
      | Program.Label l ->
          if Symbols.is_reserved l then
            raise (Rewrite_error ("driver defines reserved symbol " ^ l));
          invalidate ();
          emit [ Program.Label l ]
      | Program.Ins insn ->
          (try rewrite_insn !idx insn
           with Svm_emit.Rewrite_error m -> raise (Rewrite_error m));
          incr idx)
    src.Program.items;
  let rewritten =
    Program.source (src.Program.name ^ ".twin") (List.rev !out)
  in
  let stats =
    {
      input_instructions = Program.instruction_count src;
      output_instructions = Program.instruction_count rewritten;
      heap_sites = !heap_sites;
      string_sites = !string_sites;
      indirect_sites = !indirect_sites;
      spill_sites = !spill_sites;
      flag_save_sites = !flag_save_sites;
      cfi_sites = !cfi_sites;
      cached_sites = !cached_sites;
    }
  in
  (rewritten, stats)

(** Rewriting of indirect calls and jumps (§5.1.2).

    Function-pointer values loaded from shared driver data are VM-driver
    code addresses; before an indirect transfer the target is translated to
    the hypervisor-driver address through the [__svm_call] helper (backed
    by the cached {!Td_svm.Call_table}). [EAX] is clobbered, which is safe
    at call sites under the cdecl convention the driver uses. *)

val rewrite :
  free:Td_misa.Reg.t list ->
  is_call:bool ->
  target:Td_misa.Operand.t ->
  heap_load:
    (free:Td_misa.Reg.t list ->
    insn:Td_misa.Insn.t ->
    mem:Td_misa.Operand.mem ->
    Td_misa.Program.item list) ->
  Td_misa.Program.item list
(** [heap_load] is used to rewrite a memory-operand target ([call *8(%eax)])
    into an SVM-translated load of the pointer into [EAX] first. *)

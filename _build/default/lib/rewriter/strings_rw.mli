(** Rewriting of x86 string operations (§5.1.1).

    A [rep movs/stos/lods] may span many pages, and the stlb does not map
    consecutive dom0 pages to consecutive hypervisor pages; the rewriter
    therefore emits a loop that walks the string "in chunks of page
    length", translating the source/destination pointer once per chunk via
    the shared [__svm_translate] helper and running the original string
    instruction on the in-page chunk. *)

val rewrite :
  free:Td_misa.Reg.t list ->
  flags_live:bool ->
  op:Td_misa.Insn.str_op ->
  width:Td_misa.Width.t ->
  rep:bool ->
  Td_misa.Program.item list

let sum = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let percentile p xs =
  match List.sort Float.compare xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | sorted ->
      let n = List.length sorted in
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1
      in
      List.nth sorted (max 0 (min (n - 1) rank))

type counter = { mutable n : int }

let counter () = { n = 0 }
let incr c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let count c = c.n
let reset c = c.n <- 0

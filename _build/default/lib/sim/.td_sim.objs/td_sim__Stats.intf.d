lib/sim/stats.mli:

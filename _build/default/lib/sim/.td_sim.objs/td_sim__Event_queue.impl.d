lib/sim/event_queue.ml: Float Int Map

(** A discrete-event simulation queue ordered by simulated time.

    Used by the open-loop web-server experiment (Figure 9), where request
    arrivals, service completions and client timeouts interleave in
    simulated time. Time is in abstract units (we use cycles). *)

type t

val create : unit -> t
val now : t -> float
val schedule : t -> at:float -> (unit -> unit) -> unit
(** Schedule an event at absolute time [at] (clamped to [now] if in the
    past). Events at equal times fire in insertion order. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> unit
val run_until : t -> float -> unit
(** Execute events in time order until the queue is empty or the next
    event is later than the horizon. *)

val run : t -> unit
(** Drain the queue completely. *)

val pending : t -> int

(** Small statistics helpers for benchmark reporting. *)

val mean : float list -> float
val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100]; nearest-rank on the sorted
    list. Raises [Invalid_argument] on an empty list. *)

val sum : float list -> float

type counter

val counter : unit -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int
val reset : counter -> unit

module Key = struct
  type t = { time : float; seq : int }

  let compare a b =
    match Float.compare a.time b.time with
    | 0 -> Int.compare a.seq b.seq
    | c -> c
end

module M = Map.Make (Key)

type t = {
  mutable events : (unit -> unit) M.t;
  mutable clock : float;
  mutable seq : int;
}

let create () = { events = M.empty; clock = 0.0; seq = 0 }
let now t = t.clock

let schedule t ~at fn =
  let at = if at < t.clock then t.clock else at in
  t.seq <- t.seq + 1;
  t.events <- M.add { Key.time = at; seq = t.seq } fn t.events

let schedule_after t ~delay fn = schedule t ~at:(t.clock +. delay) fn

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match M.min_binding_opt t.events with
    | Some (key, fn) when key.Key.time <= horizon ->
        t.events <- M.remove key t.events;
        t.clock <- key.Key.time;
        fn ()
    | Some _ | None -> continue := false
  done

let run t = run_until t infinity
let pending t = M.cardinal t.events

lib/net/httperf.ml: Buffer Hashtbl Http Knot Option Queue Rng String Tcp_lite

lib/net/knot.ml: Array Char Http List Printf Specweb String Tcp_lite

lib/net/http.ml: List Option Printf String

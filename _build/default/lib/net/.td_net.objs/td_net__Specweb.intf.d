lib/net/specweb.mli:

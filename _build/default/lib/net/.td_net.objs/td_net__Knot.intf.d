lib/net/knot.mli: Tcp_lite

lib/net/webserver.ml: Float List Specweb Td_sim

lib/net/httperf.mli:

lib/net/webserver.mli:

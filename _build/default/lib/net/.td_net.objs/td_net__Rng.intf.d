lib/net/rng.mli:

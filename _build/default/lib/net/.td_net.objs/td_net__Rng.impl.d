lib/net/rng.ml: Array

lib/net/tcp_lite.ml: Buffer Char Hashtbl List String

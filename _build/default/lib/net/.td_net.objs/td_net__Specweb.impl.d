lib/net/specweb.ml: Array List Rng

lib/net/http.mli:

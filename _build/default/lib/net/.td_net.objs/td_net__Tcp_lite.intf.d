lib/net/tcp_lite.mli:

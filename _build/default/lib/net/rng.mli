(** Deterministic pseudo-random numbers (xorshift) so that every
    experiment is reproducible run-to-run. *)

type t

val create : seed:int -> t
val int : t -> int -> int
(** [int t bound] in [0, bound). *)

val float : t -> float -> float
(** [float t bound] in [0, bound). *)

val pick : t -> float array -> int
(** Sample an index from a discrete distribution given by weights that
    sum to 1. *)

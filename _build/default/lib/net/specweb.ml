let class_weights = [| 0.35; 0.50; 0.14; 0.01 |]
let class_base = [| 102; 1024; 10240; 102400 |]

let file_set =
  List.init 4 (fun c ->
      (c, Array.init 9 (fun i -> class_base.(c) * (i + 1))))

let mean_bytes =
  let class_mean c =
    let _, sizes = List.nth file_set c in
    Array.fold_left ( + ) 0 sizes |> float_of_int |> fun s -> s /. 9.0
  in
  class_weights
  |> Array.mapi (fun c w -> w *. class_mean c)
  |> Array.fold_left ( +. ) 0.0

type t = { rng : Rng.t }

let create ?(seed = 42) () = { rng = Rng.create ~seed }

let sample_bytes t =
  let c = Rng.pick t.rng class_weights in
  let m = Rng.int t.rng 9 + 1 in
  class_base.(c) * m

let class_of_bytes b =
  if b < 1024 then 0
  else if b < 10240 then 1
  else if b < 102400 then 2
  else 3

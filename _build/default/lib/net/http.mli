(** Minimal HTTP/1.0, enough for the paper's web workload: GET requests,
    status lines, Content-Length framing. Parsers are incremental — they
    return [None] until the full message has arrived on the stream. *)

type request = {
  meth : string;
  path : string;
  version : string;
  headers : (string * string) list;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  body : string;
}

val format_request : ?headers:(string * string) list -> string -> string
(** [format_request path] renders a GET. *)

val parse_request : string -> (request * int) option
(** [Some (req, consumed_bytes)] once the header block is complete. *)

val format_response : status:int -> body:string -> string

val parse_response : string -> (response * int) option
(** Complete only when the Content-Length worth of body has arrived. *)

val header : string -> (string * string) list -> string option
(** Case-insensitive lookup. *)

val reason_of_status : int -> string

(** A knot-like static web server (the paper's §6.3 workload application):
    serves the SPECweb99 static file set over a {!Tcp_lite} connection.

    The URL space is [/class<c>/file<m>] for class 0-3 and file 1-9; each
    file's content is deterministic and its size matches the SPECweb99
    ladder, so a client can validate transfers byte-for-byte. One request
    per connection, as httperf drives it. *)

val file_path : cls:int -> file:int -> string
val file_body : cls:int -> file:int -> string
(** Raises [Invalid_argument] outside class 0-3 / file 1-9. *)

type t

val create : unit -> t
val requests_served : t -> int
val not_found : t -> int

val serve : t -> Tcp_lite.t -> unit
(** Pump the server side of a connection: parse any complete request from
    the receive buffer, write the response, close. Call repeatedly as
    segments arrive (idempotent between requests). *)

(** The static-content file-set of SPECweb99 (§6.3): four file classes
    (0.1–0.9 KB, 1–9 KB, 10–90 KB, 100–900 KB) with access weights 35%,
    50%, 14%, 1%, nine files per class uniformly accessed. The paper
    serves this set from a single directory that fits in memory. *)

type t

val create : ?seed:int -> unit -> t

val sample_bytes : t -> int
(** File size of the next request. *)

val mean_bytes : float
(** Expected response size (≈ 14.7 KB). *)

val class_of_bytes : int -> int
(** Which class (0..3) a size belongs to. *)

val file_set : (int * int array) list
(** [(class, sizes)] — the full static file set. *)

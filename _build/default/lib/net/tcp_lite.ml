type segment = {
  seq : int;
  ack : int;
  flags : int;
  window : int;
  payload : string;
}

let syn = 1
let fin = 2
let ack_flag = 4
let mss = 1448
let retransmit_timeout = 4

(* --- wire format --- *)

let encode_segment s =
  let b = Buffer.create (20 + String.length s.payload) in
  let u32 v =
    let v = v land 0xFFFFFFFF in
    Buffer.add_char b (Char.chr (v land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))
  in
  u32 s.seq;
  u32 s.ack;
  u32 s.flags;
  u32 s.window;
  u32 (String.length s.payload);
  Buffer.add_string b s.payload;
  Buffer.contents b

let decode_segment data =
  if String.length data < 20 then None
  else
    let u32 off =
      Char.code data.[off]
      lor (Char.code data.[off + 1] lsl 8)
      lor (Char.code data.[off + 2] lsl 16)
      lor (Char.code data.[off + 3] lsl 24)
    in
    let len = u32 16 in
    if String.length data <> 20 + len then None
    else
      Some
        {
          seq = u32 0;
          ack = u32 4;
          flags = u32 8;
          window = u32 12;
          payload = String.sub data 20 len;
        }

(* --- endpoint --- *)

type state =
  | Closed
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait
  | Time_wait

type t = {
  send : segment -> unit;
  window : int;
  mutable st : state;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable peer_window : int;
  mutable rcv_nxt : int;
  sendq : Buffer.t;  (** application bytes not yet segmented *)
  mutable sendq_off : int;
  mutable in_flight : (int * string) list;  (** (seq, payload), oldest first *)
  inbox : Buffer.t;
  ooo : (int, string) Hashtbl.t;  (** out-of-order segments awaiting a gap *)
  mutable timer : int;
  mutable fin_pending : bool;
  mutable fin_sent : bool;
  mutable peer_closed : bool;
  mutable retx : int;
  mutable sent : int;
  mutable delivered : int;
}

let create ?(window = 65536) ~send () =
  {
    send;
    window;
    st = Closed;
    snd_una = 0;
    snd_nxt = 0;
    peer_window = mss;
    rcv_nxt = 0;
    sendq = Buffer.create 4096;
    sendq_off = 0;
    in_flight = [];
    inbox = Buffer.create 4096;
    ooo = Hashtbl.create 32;
    timer = 0;
    fin_pending = false;
    fin_sent = false;
    peer_closed = false;
    retx = 0;
    sent = 0;
    delivered = 0;
  }

let state t = t.st
let bytes_in_flight t = List.fold_left (fun a (_, p) -> a + String.length p) 0 t.in_flight
let unacked t = bytes_in_flight t
let retransmissions t = t.retx
let segments_sent t = t.sent
let delivered_bytes t = t.delivered

let emit t seg =
  t.sent <- t.sent + 1;
  t.send seg

let plain_ack t =
  emit t { seq = t.snd_nxt; ack = t.rcv_nxt; flags = ack_flag; window = t.window; payload = "" }

let queued_bytes t = Buffer.length t.sendq - t.sendq_off

let maybe_finish t =
  if
    t.fin_pending && (not t.fin_sent) && queued_bytes t = 0
    && t.in_flight = []
    && t.st = Established
  then begin
    t.fin_sent <- true;
    t.st <- Fin_wait;
    emit t
      { seq = t.snd_nxt; ack = t.rcv_nxt; flags = fin lor ack_flag; window = t.window; payload = "" };
    t.snd_nxt <- t.snd_nxt + 1
  end

let pump t =
  if t.st = Established then begin
    let progress = ref true in
    while
      !progress && queued_bytes t > 0
      && bytes_in_flight t < t.peer_window
    do
      let room = t.peer_window - bytes_in_flight t in
      let n = min (min mss room) (queued_bytes t) in
      if n <= 0 then progress := false
      else begin
        let payload = Buffer.sub t.sendq t.sendq_off n in
        t.sendq_off <- t.sendq_off + n;
        t.in_flight <- t.in_flight @ [ (t.snd_nxt, payload) ];
        emit t
          { seq = t.snd_nxt; ack = t.rcv_nxt; flags = ack_flag; window = t.window; payload };
        t.snd_nxt <- t.snd_nxt + n
      end
    done
  end;
  maybe_finish t

let connect t =
  t.st <- Syn_sent;
  emit t { seq = 0; ack = 0; flags = syn; window = t.window; payload = "" };
  t.snd_nxt <- 1;
  t.snd_una <- 0

let listen t = t.st <- Closed

let handle_ack t seg =
  if seg.flags land ack_flag <> 0 && seg.ack > t.snd_una then begin
    t.snd_una <- seg.ack;
    t.in_flight <-
      List.filter
        (fun (s, p) -> s + String.length p > t.snd_una)
        t.in_flight;
    t.timer <- 0
  end;
  if seg.flags land ack_flag <> 0 then t.peer_window <- max mss seg.window

let on_segment t seg =
  if seg.flags land syn <> 0 && seg.flags land ack_flag = 0 then begin
    (* passive open *)
    t.rcv_nxt <- seg.seq + 1;
    t.st <- Syn_received;
    t.peer_window <- max mss seg.window;
    emit t { seq = 0; ack = t.rcv_nxt; flags = syn lor ack_flag; window = t.window; payload = "" };
    t.snd_nxt <- 1
  end
  else if seg.flags land syn <> 0 then begin
    (* SYN-ACK for our active open *)
    t.rcv_nxt <- seg.seq + 1;
    handle_ack t seg;
    t.st <- Established;
    plain_ack t;
    pump t
  end
  else begin
    handle_ack t seg;
    if t.st = Syn_received && t.snd_una >= 1 then t.st <- Established;
    (* data: deliver in order, buffering out-of-order segments so that one
       retransmission of the missing head recovers the whole window *)
    if String.length seg.payload > 0 then begin
      if seg.seq > t.rcv_nxt && seg.seq - t.rcv_nxt < t.window then
        Hashtbl.replace t.ooo seg.seq seg.payload;
      if seg.seq = t.rcv_nxt then begin
        Buffer.add_string t.inbox seg.payload;
        t.rcv_nxt <- t.rcv_nxt + String.length seg.payload;
        t.delivered <- t.delivered + String.length seg.payload;
        (* drain any buffered continuation *)
        let continue = ref true in
        while !continue do
          match Hashtbl.find_opt t.ooo t.rcv_nxt with
          | Some payload ->
              Hashtbl.remove t.ooo t.rcv_nxt;
              Buffer.add_string t.inbox payload;
              t.rcv_nxt <- t.rcv_nxt + String.length payload;
              t.delivered <- t.delivered + String.length payload
          | None -> continue := false
        done
      end;
      plain_ack t
    end;
    if seg.flags land fin <> 0 then
      if seg.seq = t.rcv_nxt then begin
        t.rcv_nxt <- t.rcv_nxt + 1;
        t.peer_closed <- true;
        plain_ack t
      end
      else if seg.seq < t.rcv_nxt then
        (* duplicate FIN: our earlier acknowledgement was lost *)
        plain_ack t;
    (* our FIN fully acknowledged: the connection is done on our side
       (a simplified FIN_WAIT_2 / TIME_WAIT collapse) *)
    if t.fin_sent && t.snd_una >= t.snd_nxt then t.st <- Time_wait;
    pump t
  end

let write t data =
  Buffer.add_string t.sendq data;
  pump t

let close t =
  t.fin_pending <- true;
  maybe_finish t

let read t =
  let s = Buffer.contents t.inbox in
  Buffer.clear t.inbox;
  s

let tick t =
  (match t.in_flight with
  | [] -> ()
  | (seq, payload) :: _ ->
      t.timer <- t.timer + 1;
      if t.timer >= retransmit_timeout then begin
        (* TCP-style: retransmit the head-of-line segment only *)
        t.timer <- 0;
        t.retx <- t.retx + 1;
        emit t
          { seq; ack = t.rcv_nxt; flags = ack_flag; window = t.window; payload }
      end);
  (* a lost SYN/SYN-ACK/FIN also needs retry *)
  (match t.st with
  | Syn_sent ->
      t.timer <- t.timer + 1;
      if t.timer >= retransmit_timeout then begin
        t.timer <- 0;
        t.retx <- t.retx + 1;
        emit t { seq = 0; ack = 0; flags = syn; window = t.window; payload = "" }
      end
  | Fin_wait when t.snd_una < t.snd_nxt ->
      t.timer <- t.timer + 1;
      if t.timer >= retransmit_timeout then begin
        t.timer <- 0;
        t.retx <- t.retx + 1;
        emit t
          {
            seq = t.snd_nxt - 1;
            ack = t.rcv_nxt;
            flags = fin lor ack_flag;
            window = t.window;
            payload = "";
          }
      end
  | _ -> ());
  pump t

type server_costs = {
  tx_cycles_per_packet : float;
  rx_cycles_per_packet : float;
  app_cycles_per_request : float;
  frequency_hz : float;
  mss : int;
  wire_limit_mbps : float;
}

(* knot's own per-request work: accept/parse/respond through the socket
   layer — calibrated so the native-Linux peak lands near the paper's *)
let default_app_cycles = 120_000.0

type params = {
  request_rate : float;
  requests : int;
  timeout_s : float;
  seed : int;
}

type outcome = {
  offered_rate : float;
  completed : int;
  timed_out : int;
  response_mbps : float;
  mean_latency_s : float;
}

let service_seconds c size =
  let data_packets = (size + c.mss - 1) / c.mss in
  (* httperf opens a connection per request: SYN / request / ACKs (one per
     response segment) / FIN inbound; SYN-ACK / data / FIN-ACK outbound *)
  let rx_packets = 3 + data_packets in
  let tx_packets = 4 + data_packets in
  (c.app_cycles_per_request
  +. (float_of_int rx_packets *. c.rx_cycles_per_packet)
  +. (float_of_int tx_packets *. c.tx_cycles_per_packet))
  /. c.frequency_hz

let run c p =
  if p.request_rate <= 0.0 then invalid_arg "Webserver.run: rate";
  let files = Specweb.create ~seed:p.seed () in
  let q = Td_sim.Event_queue.create () in
  let server_free = ref 0.0 in
  let completed = ref 0 and timed_out = ref 0 in
  let bytes = ref 0 and latency = ref 0.0 in
  let interarrival = 1.0 /. p.request_rate in
  (* measurement starts after a warm-up of one client timeout so the
     open-loop backlog has reached steady state *)
  let warmup = p.timeout_s in
  let measured = ref 0 in
  for i = 0 to p.requests - 1 do
    let arrival = float_of_int i *. interarrival in
    Td_sim.Event_queue.schedule q ~at:arrival (fun () ->
        if !server_free -. arrival > 0.5 *. p.timeout_s then begin
          (* the backlog leaves no room to finish within the client
             timeout: the connection is effectively refused (listen queue
             overflow) — the server only pays for the SYN *)
          server_free :=
            !server_free +. (c.rx_cycles_per_packet /. c.frequency_hz);
          if arrival >= warmup then begin
            incr measured;
            incr timed_out
          end
        end
        else begin
          let size = Specweb.sample_bytes files in
          (* FIFO single-CPU server: starts when free, runs to completion *)
          let start = Float.max arrival !server_free in
          let finish = start +. service_seconds c size in
          server_free := finish;
          if arrival >= warmup then begin
            incr measured;
            if finish -. arrival <= p.timeout_s then begin
              incr completed;
              bytes := !bytes + size;
              latency := !latency +. (finish -. arrival)
            end
            else incr timed_out
          end
        end)
  done;
  Td_sim.Event_queue.run q;
  let duration =
    Float.max interarrival
      ((float_of_int p.requests *. interarrival) -. warmup)
  in
  let goodput = float_of_int !bytes *. 8.0 /. duration /. 1e6 in
  {
    offered_rate = p.request_rate;
    completed = !completed;
    timed_out = !timed_out;
    response_mbps = Float.min goodput c.wire_limit_mbps;
    mean_latency_s =
      (if !completed = 0 then 0.0 else !latency /. float_of_int !completed);
  }

let sweep c ~rates ~requests =
  List.map
    (fun rate -> run c { request_rate = rate; requests; timeout_s = 1.0; seed = 7 })
    rates

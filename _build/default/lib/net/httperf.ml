type outcome = {
  completed : int;
  failed : int;
  bytes : int;
  by_status : (int * int) list;
}

let class_weights = [| 0.35; 0.50; 0.14; 0.01 |]

let run ?(seed = 42) ?(drop = fun _ -> false) ?(max_rounds = 3000) ~requests
    () =
  let rng = Rng.create ~seed in
  let completed = ref 0 and failed = ref 0 and bytes = ref 0 in
  let statuses = Hashtbl.create 8 in
  let segment_counter = ref 0 in
  for _ = 1 to requests do
    (* fresh connection per request, as httperf's default mode *)
    let qc = Queue.create () and qs = Queue.create () in
    let channel q seg =
      incr segment_counter;
      if not (drop !segment_counter) then Queue.push seg q
    in
    let client = Tcp_lite.create ~send:(channel qs) () in
    let server = Tcp_lite.create ~send:(channel qc) () in
    let knot = Knot.create () in
    Tcp_lite.listen server;
    Tcp_lite.connect client;
    let cls = Rng.pick rng class_weights in
    let file = 1 + Rng.int rng 9 in
    Tcp_lite.write client (Http.format_request (Knot.file_path ~cls ~file));
    let inbox = Buffer.create 1024 in
    let result = ref None in
    let rounds = ref 0 in
    while !result = None && !rounds < max_rounds do
      incr rounds;
      while not (Queue.is_empty qs) do
        Tcp_lite.on_segment server (Queue.pop qs)
      done;
      Knot.serve knot server;
      while not (Queue.is_empty qc) do
        Tcp_lite.on_segment client (Queue.pop qc)
      done;
      Buffer.add_string inbox (Tcp_lite.read client);
      (match Http.parse_response (Buffer.contents inbox) with
      | Some (r, _) -> result := Some r
      | None -> ());
      Tcp_lite.tick client;
      Tcp_lite.tick server
    done;
    match !result with
    | Some r ->
        incr completed;
        bytes := !bytes + String.length r.Http.body;
        Hashtbl.replace statuses r.Http.status
          (1
          + Option.value ~default:0 (Hashtbl.find_opt statuses r.Http.status))
    | None -> incr failed
  done;
  {
    completed = !completed;
    failed = !failed;
    bytes = !bytes;
    by_status = Hashtbl.fold (fun k v acc -> (k, v) :: acc) statuses [];
  }

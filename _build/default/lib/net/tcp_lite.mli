(** A small TCP-like transport: enough protocol machinery to carry the
    paper's workloads (netperf streams, HTTP request/response) over the
    simulated network with real segmentation, cumulative acknowledgement,
    flow control and timeout retransmission.

    Endpoints exchange {!segment}s through any transport the caller
    provides (typically the simulated NICs; the tests also use lossy
    in-memory channels). The receiver accepts in-order data only and
    re-acknowledges anything else; the sender retransmits the oldest
    unacknowledged segment on timeout. Time is driven explicitly with
    {!tick} — there are no real clocks anywhere. *)

type segment = {
  seq : int;  (** sequence number of the first payload byte *)
  ack : int;  (** cumulative acknowledgement *)
  flags : int;  (** {!syn} / {!fin} / {!ack_flag} bits *)
  window : int;  (** receive window, bytes *)
  payload : string;
}

val syn : int
val fin : int
val ack_flag : int

val mss : int
(** Maximum segment payload (1448 bytes, as on an MTU-1500 ethernet). *)

val encode_segment : segment -> string
val decode_segment : string -> segment option
(** Wire format (20-byte header + payload), for carrying segments in
    ethernet frames. *)

type state =
  | Closed
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait
  | Time_wait

type t

val create : ?window:int -> send:(segment -> unit) -> unit -> t
(** [send] transmits a segment towards the peer (may drop it — that is
    the point of retransmission). Default window: 64 KiB. *)

val state : t -> state
val connect : t -> unit
(** Actively open (send SYN). *)

val listen : t -> unit
(** Passively open. *)

val on_segment : t -> segment -> unit
(** A segment arrived from the peer. *)

val write : t -> string -> unit
(** Queue application data for transmission (segmented by {!mss},
    subject to the peer's window). *)

val close : t -> unit
(** Send FIN once all queued data is acknowledged. *)

val read : t -> string
(** Drain data delivered in order so far. *)

val tick : t -> unit
(** Advance time one unit: retransmit the head-of-line segment on timeout
    (4 ticks), push out queued segments. *)

val bytes_in_flight : t -> int
val unacked : t -> int
(** Bytes written but not yet acknowledged. *)

val retransmissions : t -> int
val segments_sent : t -> int
val delivered_bytes : t -> int

type t = { mutable state : int }

let create ~seed = { state = (if seed = 0 then 0x9E3779B9 else seed) }

let next t =
  let x = t.state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  t.state <- (if x = 0 then 0x9E3779B9 else x);
  t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  next t mod bound

let float t bound = float_of_int (next t land 0xFFFFFF) /. 16777216.0 *. bound

let pick t weights =
  let u = float t 1.0 in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.0

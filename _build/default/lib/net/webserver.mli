(** The web-server experiment (Figure 9): a knot-like single-CPU server
    serving the SPECweb99 static set, driven by an httperf-like open-loop
    client.

    Requests arrive at a fixed rate regardless of server progress ("open"
    loop); responses that complete later than the client timeout are
    discarded by the client but still consumed server CPU — which is why
    throughput degrades (rather than merely saturating) past the knee.

    Per-request server cost is derived from the per-packet costs measured
    on the same configuration: one request packet in, [ceil(size/mss)]
    response packets out, one delayed TCP ACK in per two response
    segments, plus the server application's own work — so the figure
    inherits each configuration's network efficiency on both paths. *)

type server_costs = {
  tx_cycles_per_packet : float;  (** measured on this configuration *)
  rx_cycles_per_packet : float;
  app_cycles_per_request : float;  (** knot's own work: parse + file *)
  frequency_hz : float;
  mss : int;  (** response segmentation unit *)
  wire_limit_mbps : float;  (** aggregate NIC capacity *)
}

val default_app_cycles : float

type params = {
  request_rate : float;  (** requests/second, open loop *)
  requests : int;  (** total requests to issue *)
  timeout_s : float;  (** client discard threshold *)
  seed : int;
}

type outcome = {
  offered_rate : float;
  completed : int;
  timed_out : int;
  response_mbps : float;  (** goodput of in-time responses, wire-capped *)
  mean_latency_s : float;  (** of completed responses *)
}

val run : server_costs -> params -> outcome

val sweep : server_costs -> rates:float list -> requests:int -> outcome list
(** One [run] per offered rate (fresh file-set sampler each time). *)

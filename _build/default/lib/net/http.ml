type request = {
  meth : string;
  path : string;
  version : string;
  headers : (string * string) list;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  body : string;
}

let reason_of_status = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let crlfcrlf = "\r\n\r\n"

let find_header_end s =
  let n = String.length s in
  let rec go i =
    if i + 4 > n then None
    else if String.sub s i 4 = crlfcrlf then Some i
    else go (i + 1)
  in
  go 0

let lower = String.lowercase_ascii

let header name headers =
  List.assoc_opt (lower name)
    (List.map (fun (k, v) -> (lower k, v)) headers)

let split_lines block = String.split_on_char '\n' block
  |> List.map (fun l -> if String.length l > 0 && l.[String.length l - 1] = '\r'
                        then String.sub l 0 (String.length l - 1) else l)

let parse_headers lines =
  List.filter_map
    (fun line ->
      match String.index_opt line ':' with
      | Some i ->
          Some
            ( String.trim (String.sub line 0 i),
              String.trim (String.sub line (i + 1) (String.length line - i - 1))
            )
      | None -> None)
    lines

let format_request ?(headers = []) path =
  let hs =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  Printf.sprintf "GET %s HTTP/1.0\r\n%s\r\n" path hs

let parse_request s =
  match find_header_end s with
  | None -> None
  | Some hdr_end -> (
      let block = String.sub s 0 hdr_end in
      match split_lines block with
      | request_line :: rest -> (
          match String.split_on_char ' ' request_line with
          | [ meth; path; version ] ->
              Some
                ( { meth; path; version; headers = parse_headers rest },
                  hdr_end + 4 )
          | _ -> None)
      | [] -> None)

let format_response ~status ~body =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Length: %d\r\nServer: knot-sim\r\n\r\n%s"
    status (reason_of_status status) (String.length body) body

let parse_response s =
  match find_header_end s with
  | None -> None
  | Some hdr_end -> (
      let block = String.sub s 0 hdr_end in
      match split_lines block with
      | status_line :: rest -> (
          match String.split_on_char ' ' status_line with
          | _http :: code :: reason_words -> (
              match int_of_string_opt code with
              | None -> None
              | Some status -> (
                  let headers = parse_headers rest in
                  let body_start = hdr_end + 4 in
                  match Option.bind (header "content-length" headers) int_of_string_opt with
                  | None -> None
                  | Some len ->
                      if String.length s >= body_start + len then
                        Some
                          ( {
                              status;
                              reason = String.concat " " reason_words;
                              resp_headers = headers;
                              body = String.sub s body_start len;
                            },
                            body_start + len )
                      else None))
          | _ -> None)
      | [] -> None)

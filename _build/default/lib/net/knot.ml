let file_path ~cls ~file = Printf.sprintf "/class%d/file%d" cls file

let file_body ~cls ~file =
  if cls < 0 || cls > 3 || file < 1 || file > 9 then
    invalid_arg "Knot.file_body";
  let _, sizes = List.nth Specweb.file_set cls in
  let size = sizes.(file - 1) in
  String.init size (fun i -> Char.chr (((cls * 31) + (file * 7) + i) land 0xff))

let parse_path path =
  match String.split_on_char '/' path with
  | [ ""; c; f ]
    when String.length c > 5
         && String.sub c 0 5 = "class"
         && String.length f > 4
         && String.sub f 0 4 = "file" -> (
      match
        ( int_of_string_opt (String.sub c 5 (String.length c - 5)),
          int_of_string_opt (String.sub f 4 (String.length f - 4)) )
      with
      | Some cls, Some file when cls >= 0 && cls <= 3 && file >= 1 && file <= 9
        ->
          Some (cls, file)
      | _ -> None)
  | _ -> None

type t = {
  mutable buffer : string;  (** bytes received so far on the connection *)
  mutable served : int;
  mutable missing : int;
}

let create () = { buffer = ""; served = 0; missing = 0 }
let requests_served t = t.served
let not_found t = t.missing

let serve t conn =
  t.buffer <- t.buffer ^ Tcp_lite.read conn;
  match Http.parse_request t.buffer with
  | None -> ()
  | Some (req, consumed) ->
      t.buffer <-
        String.sub t.buffer consumed (String.length t.buffer - consumed);
      let response =
        if req.Http.meth <> "GET" then Http.format_response ~status:400 ~body:""
        else
          match parse_path req.Http.path with
          | Some (cls, file) ->
              t.served <- t.served + 1;
              Http.format_response ~status:200 ~body:(file_body ~cls ~file)
          | None ->
              t.missing <- t.missing + 1;
              Http.format_response ~status:404 ~body:"not found"
      in
      Tcp_lite.write conn response;
      Tcp_lite.close conn

(** A functional httperf: drives complete HTTP transactions against a
    {!Knot} server over {!Tcp_lite} connections — one connection per
    request, SPECweb99 path sampling, optional segment loss. This is the
    workload generator of §6.3 as working code; its queueing-theoretic
    counterpart for Figure 9 lives in {!Webserver}. *)

type outcome = {
  completed : int;
  failed : int;  (** transactions that never finished (give-up) *)
  bytes : int;  (** response body bytes received *)
  by_status : (int * int) list;  (** status code -> count *)
}

val run :
  ?seed:int ->
  ?drop:(int -> bool) ->
  ?max_rounds:int ->
  requests:int ->
  unit ->
  outcome
(** [drop] is consulted with a running segment counter (loss injection);
    [max_rounds] bounds each transaction (default 3000). *)

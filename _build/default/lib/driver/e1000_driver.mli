(** The e1000-style network driver, written in MISA assembly.

    This is the "guest OS driver" of the paper: it runs unmodified in dom0
    (the VM instance) and, after rewriting by {!Td_rewriter.Twin.derive},
    in the hypervisor. Entry points (cdecl, args pushed right-to-left):

    - [e1000_init (netdev)] — allocate the adapter, rings and receive
      buffers, program the NIC; returns the adapter address.
    - [e1000_xmit_frame (skb, netdev)] — the transmit fast path: reclaim
      completed descriptors, map the buffer for DMA, fill a descriptor,
      ring the doorbell. Returns 0 on success, 1 on drop.
    - [e1000_intr (netdev)] — the interrupt handler / receive fast path:
      read ICR, process ready receive descriptors (allocate-replace-pass
      up), refill the ring. Returns the number of packets received.
    - [e1000_clean_tx (netdev)] — reclaim transmit descriptors.
    - [e1000_watchdog (netdev)] — housekeeping: harvest NIC statistics,
      check the link (run by the VM instance on a dom0 timer).
    - [e1000_get_stats (netdev, dest)] — copy the statistics block to
      [dest] with a string move; returns its address.
    - [e1000_set_mtu (netdev, mtu)] — configuration path (ethtool-like),
      exercising many non-fast-path support routines.

    Ring sizes and the receive buffer size are compile-time constants. *)

val tx_ring_entries : int
val rx_ring_entries : int
val rx_buf_bytes : int

val source : unit -> Td_misa.Program.source
(** A fresh copy of the driver source (label names are stable). *)

val entry_init : string
val entry_xmit : string
val entry_intr : string
val entry_clean_tx : string
val entry_check_link : string
(** Called through a function pointer stored in shared driver data (the
    kernel installs it after [register_netdev]); exercises the
    indirect-call translation. *)

val entry_watchdog : string
val entry_get_stats : string
val entry_set_mtu : string

val entry_set_rx_mode : string
(** [(netdev, promisc)] — clears and refills the multicast table array
    with a string store and flips RCTL's promiscuous bit; configuration
    work that always runs on the VM instance. *)

let struct_bytes = 96

let o_mmio = 0
let o_tx_ring = 4
let o_tx_size = 8
let o_tx_tail = 12
let o_tx_clean = 16
let o_rx_ring = 20
let o_rx_size = 24
let o_rx_next = 28
let o_lock = 32
let o_netdev = 36
let o_tx_packets = 40
let o_tx_bytes = 44
let o_rx_packets = 48
let o_rx_bytes = 52
let o_tx_dropped = 56
let o_rx_alloc_fail = 60
let o_watchdog_runs = 64
let o_stats_mpc = 68
let o_irq_seen = 72
let o_tx_skb = 76
let o_rx_skb = 80
let o_rx_buf_size = 84
let o_link_up = 88
let o_link_fn = 92

type t = { space : Td_mem.Addr_space.t; addr : int }

let of_netdev nd =
  { space = nd.Td_kernel.Netdev.space; addr = Td_kernel.Netdev.priv nd }

let field t off = Td_mem.Addr_space.read t.space (t.addr + off) Td_misa.Width.W32

let set_field t off v =
  Td_mem.Addr_space.write t.space (t.addr + off) Td_misa.Width.W32 v

let tx_packets t = field t o_tx_packets
let tx_bytes t = field t o_tx_bytes
let rx_packets t = field t o_rx_packets
let rx_bytes t = field t o_rx_bytes
let tx_dropped t = field t o_tx_dropped
let rx_alloc_fail t = field t o_rx_alloc_fail
let watchdog_runs t = field t o_watchdog_runs
let irq_seen t = field t o_irq_seen
let lock_held t = Td_kernel.Spinlock.held t.space (t.addr + o_lock)

open Td_misa
open Builder

let tx_ring_entries = 64
let rx_ring_entries = 64
let rx_buf_bytes = 2048

let entry_init = "e1000_init"
let entry_xmit = "e1000_xmit_frame"
let entry_intr = "e1000_intr"
let entry_clean_tx = "e1000_clean_tx"
let entry_watchdog = "e1000_watchdog"
let entry_get_stats = "e1000_get_stats"
let entry_set_mtu = "e1000_set_mtu"
let entry_set_rx_mode = "e1000_set_rx_mode"

(* register conventions inside routines:
     EBP  frame pointer (args at 8(%ebp), 12(%ebp), ...)
     EBX  adapter pointer
   callee-saved registers are preserved by prologue/epilogue *)

let prologue b =
  pushl b (reg EBP);
  movl b (reg ESP) (reg EBP);
  pushl b (reg EBX);
  pushl b (reg ESI);
  pushl b (reg EDI)

let epilogue b =
  popl b (reg EDI);
  popl b (reg ESI);
  popl b (reg EBX);
  popl b (reg EBP);
  ret b

let arg0 = mem ~base:EBP 8
let arg1 = mem ~base:EBP 12

(* adapter field operand (EBX = adapter) *)
let adp off = mem ~base:EBX off

(* call a support routine with arguments (pushed right to left) *)
let call_support b name args =
  List.iter (pushl b) (List.rev args);
  call b name;
  if args <> [] then addl b (imm (4 * List.length args)) (reg ESP)

(* r <- (r + 1) mod adapter.size_off *)
let wrap_inc b r size_off =
  let l = gensym "wrap" in
  incl b (reg r);
  cmpl b (adp size_off) (reg r);
  jne b l;
  movl b (imm 0) (reg r);
  label b l

(* ---- e1000_init(netdev) ---- *)

let emit_init b =
  label b entry_init;
  prologue b;
  (* PCI bring-up: the configuration path leans on many support routines *)
  call_support b "pci_enable_device" [ arg0 ];
  call_support b "pci_set_master" [ arg0 ];
  call_support b "pci_request_regions" [ arg0 ];
  call_support b "pci_set_dma_mask" [ arg0; imm 0xFFFFFFFF ];
  (* adapter = kzalloc(96) *)
  call_support b "kzalloc" [ imm Adapter.struct_bytes; imm 0 ];
  movl b (reg EAX) (reg EBX);
  (* netdev->priv = adapter; adapter->netdev = netdev *)
  movl b arg0 (reg ESI);
  movl b (reg EBX) (mem ~base:ESI 8);
  movl b (reg ESI) (adp Adapter.o_netdev);
  (* adapter->mmio = netdev->mmio_base *)
  movl b (mem ~base:ESI 0) (reg EAX);
  movl b (reg EAX) (adp Adapter.o_mmio);
  (* sizes *)
  movl b (imm tx_ring_entries) (adp Adapter.o_tx_size);
  movl b (imm rx_ring_entries) (adp Adapter.o_rx_size);
  movl b (imm rx_buf_bytes) (adp Adapter.o_rx_buf_size);
  movl b (imm 0) (adp Adapter.o_tx_tail);
  movl b (imm 0) (adp Adapter.o_tx_clean);
  movl b (imm 0) (adp Adapter.o_rx_next);
  (* rings *)
  call_support b "dma_alloc_coherent"
    [ imm (tx_ring_entries * Td_nic.Regs.desc_bytes) ];
  movl b (reg EAX) (adp Adapter.o_tx_ring);
  call_support b "dma_alloc_coherent"
    [ imm (rx_ring_entries * Td_nic.Regs.desc_bytes) ];
  movl b (reg EAX) (adp Adapter.o_rx_ring);
  (* shadow sk_buff arrays, defensively cleared with a string store *)
  call_support b "kzalloc" [ imm (4 * tx_ring_entries); imm 0 ];
  movl b (reg EAX) (adp Adapter.o_tx_skb);
  movl b (reg EAX) (reg EDI);
  xorl b (reg EAX) (reg EAX);
  movl b (imm tx_ring_entries) (reg ECX);
  rep_stosl b;
  call_support b "kzalloc" [ imm (4 * rx_ring_entries); imm 0 ];
  movl b (reg EAX) (adp Adapter.o_rx_skb);
  movl b (reg EAX) (reg EDI);
  xorl b (reg EAX) (reg EAX);
  movl b (imm rx_ring_entries) (reg ECX);
  rep_stosl b;
  (* spin_lock_init(&adapter->lock) *)
  leal b (Operand.mem ~base:EBX Adapter.o_lock) EAX;
  call_support b "spin_lock_init" [ reg EAX ];
  (* program the NIC: ring bases/lengths, zero head/tail *)
  movl b (adp Adapter.o_mmio) (reg EDI);
  movl b (adp Adapter.o_tx_ring) (reg EAX);
  movl b (reg EAX) (mem ~base:EDI Td_nic.Regs.tdbal);
  movl b (imm (tx_ring_entries * Td_nic.Regs.desc_bytes))
    (mem ~base:EDI Td_nic.Regs.tdlen);
  movl b (imm 0) (mem ~base:EDI Td_nic.Regs.tdh);
  movl b (imm 0) (mem ~base:EDI Td_nic.Regs.tdt);
  movl b (adp Adapter.o_rx_ring) (reg EAX);
  movl b (reg EAX) (mem ~base:EDI Td_nic.Regs.rdbal);
  movl b (imm (rx_ring_entries * Td_nic.Regs.desc_bytes))
    (mem ~base:EDI Td_nic.Regs.rdlen);
  movl b (imm 0) (mem ~base:EDI Td_nic.Regs.rdh);
  movl b (imm 0) (mem ~base:EDI Td_nic.Regs.rdt);
  (* fill the receive ring: ESI = index *)
  xorl b (reg ESI) (reg ESI);
  let fill = gensym "rx_fill" and fill_done = gensym "rx_fill_done" in
  label b fill;
  cmpl b (adp Adapter.o_rx_size) (reg ESI);
  je b fill_done;
  call_support b "netdev_alloc_skb" [ adp Adapter.o_netdev; adp Adapter.o_rx_buf_size ];
  (* rx_skb[i] = skb *)
  movl b (adp Adapter.o_rx_skb) (reg ECX);
  movl b (reg EAX) (mem ~base:ECX ~index:(ESI, Operand.S4) 0);
  (* bus = dma_map_single(skb->data, rx_buf_bytes, FROM_DEVICE) *)
  movl b (reg EAX) (reg EDI);
  call_support b "dma_map_single"
    [ mem ~base:EDI 0; adp Adapter.o_rx_buf_size; imm 2 ];
  (* desc = rx_ring + 16*i; desc.buf = bus; desc.status = 0 *)
  movl b (reg ESI) (reg ECX);
  shll b (imm 4) (reg ECX);
  addl b (adp Adapter.o_rx_ring) (reg ECX);
  movl b (reg EAX) (mem ~base:ECX Td_nic.Regs.d_buf);
  movl b (imm 0) (mem ~base:ECX Td_nic.Regs.d_sta);
  incl b (reg ESI);
  jmp b fill;
  label b fill_done;
  (* hand all but one descriptor to the device: RDT = rx_size - 1 *)
  movl b (adp Adapter.o_rx_size) (reg EAX);
  decl b (reg EAX);
  movl b (adp Adapter.o_mmio) (reg EDI);
  movl b (reg EAX) (mem ~base:EDI Td_nic.Regs.rdt);
  (* enable interrupts: TXDW | RXT0 *)
  movl b (imm (Td_nic.Regs.icr_txdw lor Td_nic.Regs.icr_rxt0))
    (mem ~base:EDI Td_nic.Regs.ims);
  (* kernel plumbing *)
  call_support b "request_irq" [ arg0; imm 0 ];
  call_support b "register_netdev" [ arg0 ];
  call_support b "netif_start_queue" [ arg0 ];
  call_support b "netif_carrier_on" [ arg0 ];
  movl b (imm 1) (adp Adapter.o_link_up);
  movl b (imm 0) (adp Adapter.o_link_fn);
  movl b (reg EBX) (reg EAX);
  epilogue b

(* ---- e1000_clean_tx(netdev): reclaim completed descriptors ----

   shadow values: the transmitted sk_buff for a linear descriptor, the
   marker 1 for a page-fragment descriptor, 0 for an empty slot *)

let emit_clean_tx b =
  label b entry_clean_tx;
  prologue b;
  movl b arg0 (reg ESI);
  movl b (mem ~base:ESI 8) (reg EBX);
  let loop = gensym "clean" and done_ = gensym "clean_done" in
  let unmap_frag = gensym "clean_frag" in
  let clear = gensym "clean_clear" and advance = gensym "clean_adv" in
  label b loop;
  movl b (adp Adapter.o_tx_clean) (reg ECX);
  cmpl b (adp Adapter.o_tx_tail) (reg ECX);
  je b done_;
  (* EDI = &tx_ring[clean] *)
  movl b (reg ECX) (reg EDI);
  shll b (imm 4) (reg EDI);
  addl b (adp Adapter.o_tx_ring) (reg EDI);
  testl b (imm Td_nic.Regs.sta_dd) (mem ~base:EDI Td_nic.Regs.d_sta);
  je b done_;
  (* dispatch on the shadow value *)
  movl b (adp Adapter.o_tx_skb) (reg EDX);
  movl b (mem ~base:EDX ~index:(ECX, Operand.S4) 0) (reg ESI);
  cmpl b (imm 1) (reg ESI);
  je b unmap_frag;
  testl b (reg ESI) (reg ESI);
  je b advance;
  (* linear descriptor: unmap the DMA buffer, free the sk_buff *)
  call_support b "dma_unmap_single"
    [ mem ~base:EDI Td_nic.Regs.d_buf; mem ~base:EDI Td_nic.Regs.d_len; imm 1 ];
  call_support b "dev_kfree_skb_any" [ reg ESI ];
  jmp b clear;
  label b unmap_frag;
  call_support b "dma_unmap_page"
    [ mem ~base:EDI Td_nic.Regs.d_buf; mem ~base:EDI Td_nic.Regs.d_len; imm 1 ];
  label b clear;
  movl b (adp Adapter.o_tx_skb) (reg EDX);
  movl b (adp Adapter.o_tx_clean) (reg ECX);
  movl b (imm 0) (mem ~base:EDX ~index:(ECX, Operand.S4) 0);
  label b advance;
  movl b (adp Adapter.o_tx_clean) (reg ECX);
  wrap_inc b ECX Adapter.o_tx_size;
  movl b (reg ECX) (adp Adapter.o_tx_clean);
  jmp b loop;
  label b done_;
  xorl b (reg EAX) (reg EAX);
  epilogue b

(* ---- e1000_xmit_frame(skb, netdev) ---- *)

let emit_xmit b =
  label b entry_xmit;
  prologue b;
  movl b arg1 (reg EDI);
  movl b (mem ~base:EDI 8) (reg EBX);
  (* checksum-offload context: fold the first eight words of the packet
     into a ones-complement style accumulator (register-heavy work, as the
     real driver's context-descriptor setup is) *)
  movl b arg0 (reg ESI);
  movl b (mem ~base:ESI 0) (reg EDX);
  xorl b (reg EAX) (reg EAX);
  movl b (imm 8) (reg ECX);
  let csum = gensym "csum" in
  label b csum;
  (* internet-checksum style fold: add with end-around carry *)
  addl b (mem ~base:EDX 0) (reg EAX);
  ins b (Insn.Alu (Insn.Adc, imm 0, reg EAX));
  addl b (imm 4) (reg EDX);
  decl b (reg ECX);
  jne b csum;
  movl b (reg EAX) (reg EDI);
  shrl b (imm 16) (reg EDI);
  andl b (imm 0xFFFF) (reg EAX);
  addl b (reg EDI) (reg EAX);
  movl b arg1 (reg EDI);
  (* acquire the transmit lock *)
  leal b (Operand.mem ~base:EBX Adapter.o_lock) EAX;
  call_support b "spin_trylock" [ reg EAX ];
  testl b (reg EAX) (reg EAX);
  let busy = gensym "tx_busy" and full = gensym "tx_full" in
  let out = gensym "tx_out" and ok = gensym "tx_ok" in
  je b busy;
  (* reclaim whatever the NIC has finished *)
  call_support b entry_clean_tx [ arg1 ];
  (* ring full? a fragmented packet needs two descriptors, so require two
     free slots: full when tail+1 == clean or tail+2 == clean *)
  movl b (adp Adapter.o_tx_tail) (reg ECX);
  movl b (reg ECX) (reg EDX);
  wrap_inc b EDX Adapter.o_tx_size;
  cmpl b (adp Adapter.o_tx_clean) (reg EDX);
  je b full;
  wrap_inc b EDX Adapter.o_tx_size;
  cmpl b (adp Adapter.o_tx_clean) (reg EDX);
  je b full;
  (* ESI = skb; bus = dma_map_single(skb->data, skb->len, TO_DEVICE) *)
  movl b arg0 (reg ESI);
  call_support b "dma_map_single"
    [ mem ~base:ESI 0; mem ~base:ESI 4; imm 1 ];
  (* EDI = &tx_ring[tail]; fill the linear descriptor *)
  movl b (adp Adapter.o_tx_tail) (reg ECX);
  movl b (reg ECX) (reg EDI);
  shll b (imm 4) (reg EDI);
  addl b (adp Adapter.o_tx_ring) (reg EDI);
  movl b (reg EAX) (mem ~base:EDI Td_nic.Regs.d_buf);
  movl b (mem ~base:ESI 4) (reg EAX);
  movl b (reg EAX) (mem ~base:EDI Td_nic.Regs.d_len);
  movl b (imm 0) (mem ~base:EDI Td_nic.Regs.d_sta);
  (* shadow the sk_buff for reclaim *)
  movl b (adp Adapter.o_tx_skb) (reg EDX);
  movl b (reg ESI) (mem ~base:EDX ~index:(ECX, Operand.S4) 0);
  (* statistics *)
  incl b (adp Adapter.o_tx_packets);
  movl b (mem ~base:ESI 4) (reg EAX);
  addl b (reg EAX) (adp Adapter.o_tx_bytes);
  (* chained page fragment? (§5.3: guest packets beyond the copied header
     are chained through the sk_buff's fragment pointer) *)
  let has_frag = gensym "tx_frag" and doorbell = gensym "tx_bell" in
  movl b (mem ~base:ESI 24) (reg EDX);
  testl b (reg EDX) (reg EDX);
  jne b has_frag;
  movl b (imm (Td_nic.Regs.cmd_eop lor Td_nic.Regs.cmd_rs))
    (mem ~base:EDI Td_nic.Regs.d_cmd);
  wrap_inc b ECX Adapter.o_tx_size;
  jmp b doorbell;
  label b has_frag;
  (* first descriptor carries the header only (no EOP) *)
  movl b (imm Td_nic.Regs.cmd_rs) (mem ~base:EDI Td_nic.Regs.d_cmd);
  (* second descriptor: the fragment, mapped with dma_map_page; the call
     clobbers caller-saved registers, so compute the slot afterwards *)
  call_support b "dma_map_page"
    [ mem ~base:ESI 24; imm 0; mem ~base:ESI 28; imm 1 ];
  movl b (adp Adapter.o_tx_tail) (reg ECX);
  wrap_inc b ECX Adapter.o_tx_size;
  movl b (reg ECX) (reg EDI);
  shll b (imm 4) (reg EDI);
  addl b (adp Adapter.o_tx_ring) (reg EDI);
  movl b (reg EAX) (mem ~base:EDI Td_nic.Regs.d_buf);
  movl b (mem ~base:ESI 28) (reg EAX);
  movl b (reg EAX) (mem ~base:EDI Td_nic.Regs.d_len);
  movl b (imm (Td_nic.Regs.cmd_eop lor Td_nic.Regs.cmd_rs))
    (mem ~base:EDI Td_nic.Regs.d_cmd);
  movl b (imm 0) (mem ~base:EDI Td_nic.Regs.d_sta);
  (* fragment marker in the shadow ring; frag bytes into the statistics *)
  movl b (adp Adapter.o_tx_skb) (reg EDX);
  movl b (imm 1) (mem ~base:EDX ~index:(ECX, Operand.S4) 0);
  movl b (mem ~base:ESI 28) (reg EAX);
  addl b (reg EAX) (adp Adapter.o_tx_bytes);
  wrap_inc b ECX Adapter.o_tx_size;
  label b doorbell;
  (* advance the tail and ring the doorbell *)
  movl b (reg ECX) (adp Adapter.o_tx_tail);
  movl b (adp Adapter.o_mmio) (reg EDX);
  movl b (reg ECX) (mem ~base:EDX Td_nic.Regs.tdt);
  (* release the lock, return 0 *)
  leal b (Operand.mem ~base:EBX Adapter.o_lock) EAX;
  call_support b "spin_unlock_irqrestore" [ reg EAX; imm 0 ];
  jmp b ok;
  label b full;
  (* no descriptors: drop the frame *)
  incl b (adp Adapter.o_tx_dropped);
  call_support b "netif_stop_queue" [ arg1 ];
  leal b (Operand.mem ~base:EBX Adapter.o_lock) EAX;
  call_support b "spin_unlock_irqrestore" [ reg EAX; imm 0 ];
  call_support b "dev_kfree_skb_any" [ arg0 ];
  movl b (imm 1) (reg EAX);
  jmp b out;
  label b busy;
  incl b (adp Adapter.o_tx_dropped);
  call_support b "dev_kfree_skb_any" [ arg0 ];
  movl b (imm 1) (reg EAX);
  jmp b out;
  label b ok;
  xorl b (reg EAX) (reg EAX);
  label b out;
  epilogue b

(* ---- e1000_intr(netdev): receive processing ---- *)

let emit_intr b =
  label b entry_intr;
  prologue b;
  (* one stack slot for the received-packet count *)
  pushl b (imm 0);
  movl b arg0 (reg ESI);
  movl b (mem ~base:ESI 8) (reg EBX);
  (* read (and thereby clear) the interrupt cause *)
  movl b (adp Adapter.o_mmio) (reg EDX);
  movl b (mem ~base:EDX Td_nic.Regs.icr) (reg EAX);
  testl b (reg EAX) (reg EAX);
  let out = gensym "intr_out" in
  je b out;
  incl b (adp Adapter.o_irq_seen);
  (* receive loop *)
  let loop = gensym "rx" and done_ = gensym "rx_done" in
  let drop = gensym "rx_drop" and advance = gensym "rx_adv" in
  label b loop;
  (* EDI = &rx_ring[rx_next] *)
  movl b (adp Adapter.o_rx_next) (reg ECX);
  movl b (reg ECX) (reg EDI);
  shll b (imm 4) (reg EDI);
  addl b (adp Adapter.o_rx_ring) (reg EDI);
  testl b (imm Td_nic.Regs.sta_dd) (mem ~base:EDI Td_nic.Regs.d_sta);
  je b done_;
  (* allocate the replacement buffer first; drop if the allocator fails *)
  call_support b "netdev_alloc_skb"
    [ adp Adapter.o_netdev; adp Adapter.o_rx_buf_size ];
  testl b (reg EAX) (reg EAX);
  je b drop;
  (* swap shadow: ESI = old skb, shadow[rx_next] = new skb *)
  movl b (adp Adapter.o_rx_skb) (reg EDX);
  movl b (adp Adapter.o_rx_next) (reg ECX);
  movl b (mem ~base:EDX ~index:(ECX, Operand.S4) 0) (reg ESI);
  movl b (reg EAX) (mem ~base:EDX ~index:(ECX, Operand.S4) 0);
  (* old buffer: unmap while the descriptor still holds its address *)
  call_support b "dma_unmap_single"
    [ mem ~base:EDI Td_nic.Regs.d_buf; adp Adapter.o_rx_buf_size; imm 2 ];
  (* map the new buffer; caller-saved registers don't survive the call, so
     the new sk_buff is re-read from the shadow ring *)
  movl b (adp Adapter.o_rx_skb) (reg EDX);
  movl b (adp Adapter.o_rx_next) (reg ECX);
  movl b (mem ~base:EDX ~index:(ECX, Operand.S4) 0) (reg EDX);
  call_support b "dma_map_single"
    [ mem ~base:EDX 0; adp Adapter.o_rx_buf_size; imm 2 ];
  movl b (reg EAX) (mem ~base:EDI Td_nic.Regs.d_buf);
  movl b (mem ~base:EDI Td_nic.Regs.d_len) (reg EAX);
  movl b (reg EAX) (mem ~base:ESI 4);
  (* old skb: classify and hand to the stack *)
  call_support b "eth_type_trans" [ reg ESI; adp Adapter.o_netdev ];
  incl b (adp Adapter.o_rx_packets);
  movl b (mem ~base:ESI 4) (reg EAX);
  addl b (reg EAX) (adp Adapter.o_rx_bytes);
  call_support b "netif_rx" [ reg ESI ];
  incl b (mem ~base:ESP 0);
  movl b (imm 0) (mem ~base:EDI Td_nic.Regs.d_sta);
  jmp b advance;
  label b drop;
  (* allocator failed: reuse the old buffer in place, count the drop *)
  incl b (adp Adapter.o_rx_alloc_fail);
  movl b (imm 0) (mem ~base:EDI Td_nic.Regs.d_sta);
  label b advance;
  (* rx_next = (rx_next+1) mod size; give the slot back via RDT *)
  movl b (adp Adapter.o_rx_next) (reg ECX);
  wrap_inc b ECX Adapter.o_rx_size;
  movl b (reg ECX) (adp Adapter.o_rx_next);
  movl b (adp Adapter.o_mmio) (reg EDX);
  movl b (mem ~base:EDX Td_nic.Regs.rdt) (reg ECX);
  wrap_inc b ECX Adapter.o_rx_size;
  movl b (reg ECX) (mem ~base:EDX Td_nic.Regs.rdt);
  jmp b loop;
  label b done_;
  (* transmit completions are reclaimed from the interrupt too *)
  call_support b entry_clean_tx [ arg0 ];
  label b out;
  popl b (reg EAX);
  epilogue b

(* ---- e1000_check_link(netdev): called through a function pointer held
   in shared driver data (exercises the stlb_call translation, §5.1.2) ---- *)

let entry_check_link = "e1000_check_link"

let emit_check_link b =
  label b entry_check_link;
  prologue b;
  movl b arg0 (reg ESI);
  movl b (mem ~base:ESI 8) (reg EBX);
  movl b (adp Adapter.o_mmio) (reg EDX);
  movl b (mem ~base:EDX Td_nic.Regs.status) (reg EAX);
  andl b (imm 2) (reg EAX);
  let down = gensym "lnk_down" and out = gensym "lnk_out" in
  je b down;
  movl b (imm 1) (adp Adapter.o_link_up);
  call_support b "netif_carrier_on" [ arg0 ];
  movl b (imm 1) (reg EAX);
  jmp b out;
  label b down;
  movl b (imm 0) (adp Adapter.o_link_up);
  call_support b "netif_carrier_off" [ arg0 ];
  call_support b "printk" [ imm 0 ];
  xorl b (reg EAX) (reg EAX);
  label b out;
  epilogue b

(* ---- e1000_watchdog(netdev): housekeeping on a dom0 timer ---- *)

let emit_watchdog b =
  label b entry_watchdog;
  prologue b;
  movl b arg0 (reg ESI);
  movl b (mem ~base:ESI 8) (reg EBX);
  incl b (adp Adapter.o_watchdog_runs);
  (* harvest the missed-packet counter from the NIC *)
  movl b (adp Adapter.o_mmio) (reg EDX);
  movl b (mem ~base:EDX Td_nic.Regs.mpc) (reg EAX);
  movl b (reg EAX) (adp Adapter.o_stats_mpc);
  (* link check through the ops function pointer, when installed *)
  movl b (adp Adapter.o_link_fn) (reg EDX);
  testl b (reg EDX) (reg EDX);
  let skip = gensym "wd_nofn" in
  je b skip;
  pushl b arg0;
  call_ind b (reg EDX);
  addl b (imm 4) (reg ESP);
  label b skip;
  call_support b "mod_timer" [ arg0; imm 100 ];
  xorl b (reg EAX) (reg EAX);
  epilogue b

(* ---- e1000_get_stats(netdev, dest): copy the statistics block ---- *)

let emit_get_stats b =
  label b entry_get_stats;
  prologue b;
  movl b arg0 (reg ESI);
  movl b (mem ~base:ESI 8) (reg EBX);
  leal b (Operand.mem ~base:EBX Adapter.o_tx_packets) EAX;
  movl b (reg EAX) (reg ESI);
  movl b arg1 (reg EDI);
  movl b (imm 8) (reg ECX);
  rep_movsl b;
  leal b (Operand.mem ~base:EBX Adapter.o_tx_packets) EAX;
  epilogue b

(* ---- e1000_set_rx_mode(netdev, promisc): clear/refill the multicast
   table and flip promiscuous mode — pure configuration-path work that
   stays on the VM instance (§3.1) ---- *)

let emit_set_rx_mode b =
  label b entry_set_rx_mode;
  prologue b;
  movl b arg0 (reg ESI);
  movl b (mem ~base:ESI 8) (reg EBX);
  call_support b "rtnl_lock" [];
  (* clear the 32-entry multicast table with a string store *)
  movl b (adp Adapter.o_mmio) (reg EDI);
  addl b (imm Td_nic.Regs.mta) (reg EDI);
  xorl b (reg EAX) (reg EAX);
  movl b (imm Td_nic.Regs.mta_entries) (reg ECX);
  rep_stosl b;
  (* hash a couple of multicast addresses into it (toy hash: low bits) *)
  movl b (adp Adapter.o_mmio) (reg EDX);
  movl b (imm 1) (mem ~base:EDX (Td_nic.Regs.mta + 4));
  movl b (imm 0x80) (mem ~base:EDX (Td_nic.Regs.mta + 96));
  (* promiscuous bit in RCTL per the argument *)
  movl b (mem ~base:EDX Td_nic.Regs.rctl) (reg EAX);
  andl b (imm (lnot 8 land 0xFFFFFFFF)) (reg EAX);
  movl b arg1 (reg ECX);
  testl b (reg ECX) (reg ECX);
  let skip = gensym "rxm" in
  je b skip;
  orl b (imm 8) (reg EAX);
  label b skip;
  movl b (reg EAX) (mem ~base:EDX Td_nic.Regs.rctl);
  call_support b "printk" [ imm 0 ];
  call_support b "rtnl_unlock" [];
  xorl b (reg EAX) (reg EAX);
  epilogue b

(* ---- e1000_set_mtu(netdev, mtu): the ethtool-like config path ---- *)

let emit_set_mtu b =
  label b entry_set_mtu;
  prologue b;
  movl b arg0 (reg ESI);
  movl b (mem ~base:ESI 8) (reg EBX);
  call_support b "rtnl_lock" [];
  call_support b "netif_stop_queue" [ arg0 ];
  call_support b "msleep" [ imm 10 ];
  (* netdev->mtu = arg1 *)
  movl b arg1 (reg EAX);
  movl b (reg EAX) (mem ~base:ESI 20);
  call_support b "printk" [ imm 0 ];
  call_support b "netif_wake_queue" [ arg0 ];
  call_support b "rtnl_unlock" [];
  xorl b (reg EAX) (reg EAX);
  epilogue b

let source () =
  let b = create "e1000" in
  emit_init b;
  emit_clean_tx b;
  emit_xmit b;
  emit_intr b;
  emit_check_link b;
  emit_watchdog b;
  emit_get_stats b;
  emit_set_mtu b;
  emit_set_rx_mode b;
  finish b

lib/driver/adapter.ml: Td_kernel Td_mem Td_misa

lib/driver/rtl_driver.ml: Builder List Operand Td_misa Td_nic

lib/driver/rtl_driver.mli: Td_misa

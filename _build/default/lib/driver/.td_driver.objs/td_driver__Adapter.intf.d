lib/driver/adapter.mli: Td_kernel Td_mem

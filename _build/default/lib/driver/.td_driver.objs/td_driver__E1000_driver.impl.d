lib/driver/e1000_driver.ml: Adapter Builder Insn List Operand Td_misa Td_nic

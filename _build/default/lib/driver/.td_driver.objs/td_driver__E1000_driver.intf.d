lib/driver/e1000_driver.mli: Td_misa

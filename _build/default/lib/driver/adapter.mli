(** The driver's private state (struct e1000_adapter), living in dom0
    memory. Field offsets are shared between the MISA driver code and the
    OCaml harness (which reads statistics and asserts invariants).

    {v
      +0  mmio        NIC register page base
      +4  tx_ring     descriptor ring base
      +8  tx_size     entries
      +12 tx_tail     next descriptor to fill
      +16 tx_clean    next descriptor to reclaim
      +20 rx_ring
      +24 rx_size
      +28 rx_next     next receive descriptor to process
      +32 lock        transmit spinlock word
      +36 netdev      back pointer
      +40 tx_packets  +44 tx_bytes  +48 rx_packets  +52 rx_bytes
      +56 tx_dropped  +60 rx_alloc_fail
      +64 watchdog_runs  +68 stats_mpc  +72 irq_seen
      +76 tx_skb      shadow array base (tx_size words)
      +80 rx_skb      shadow array base (rx_size words)
      +84 rx_buf_size
      +88 link_up
      +92 link_fn      function pointer: link-check routine (VM address)
    v} *)

val struct_bytes : int

(* field offsets *)

val o_mmio : int
val o_tx_ring : int
val o_tx_size : int
val o_tx_tail : int
val o_tx_clean : int
val o_rx_ring : int
val o_rx_size : int
val o_rx_next : int
val o_lock : int
val o_netdev : int
val o_tx_packets : int
val o_tx_bytes : int
val o_rx_packets : int
val o_rx_bytes : int
val o_tx_dropped : int
val o_rx_alloc_fail : int
val o_watchdog_runs : int
val o_stats_mpc : int
val o_irq_seen : int
val o_tx_skb : int
val o_rx_skb : int
val o_rx_buf_size : int
val o_link_up : int
val o_link_fn : int

type t = { space : Td_mem.Addr_space.t; addr : int }

val of_netdev : Td_kernel.Netdev.t -> t
val field : t -> int -> int
val set_field : t -> int -> int -> unit

val tx_packets : t -> int
val tx_bytes : t -> int
val rx_packets : t -> int
val rx_bytes : t -> int
val tx_dropped : t -> int
val rx_alloc_fail : t -> int
val watchdog_runs : t -> int
val irq_seen : t -> int
val lock_held : t -> bool

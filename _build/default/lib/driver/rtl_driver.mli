(** A second guest-OS driver, for the RTL8139-style NIC ({!Td_nic.Rtl_dev})
    — written independently of the e1000 driver to demonstrate that the
    TwinDrivers derivation is driver-agnostic: same rewriter, same loader,
    same SVM runtime, no driver-specific knowledge.

    Structurally different hot path: transmit *copies* each frame into one
    of four fixed staging buffers with [rep movsb] (the 8139 needs
    contiguous frames); receive *copies* packets out of a contiguous ring
    buffer, again with [rep movsb] — so the rewriter's string-operation
    chunking runs on this driver's fast path.

    Adapter layout (64 bytes at [netdev->priv]):
    {v
      +0  mmio   +4 rx_ring  +8 tx_cur  +12 netdev
      +16 tx_packets  +20 rx_packets  +24 tx_dropped  +28 rx_alloc_fail
      +32..+44 tx staging buffers (4 slots)
    v} *)

val o_tx_packets : int
val o_rx_packets : int
val o_tx_dropped : int
val o_rx_alloc_fail : int

val entry_init : string
val entry_xmit : string
val entry_intr : string

val source : unit -> Td_misa.Program.source

open Td_misa
open Builder

let o_mmio = 0
let o_rx_ring = 4
let o_tx_cur = 8
let o_netdev = 12
let o_tx_packets = 16
let o_rx_packets = 20
let o_tx_dropped = 24
let o_rx_alloc_fail = 28
let o_tx_buf = 32 (* 4 slots *)
let struct_bytes = 64

let entry_init = "rtl_init"
let entry_xmit = "rtl_xmit"
let entry_intr = "rtl_intr"

let prologue b =
  pushl b (reg EBP);
  movl b (reg ESP) (reg EBP);
  pushl b (reg EBX);
  pushl b (reg ESI);
  pushl b (reg EDI)

let epilogue b =
  popl b (reg EDI);
  popl b (reg ESI);
  popl b (reg EBX);
  popl b (reg EBP);
  ret b

let arg0 = mem ~base:EBP 8
let arg1 = mem ~base:EBP 12
let adp off = mem ~base:EBX off

let call_support b name args =
  List.iter (pushl b) (List.rev args);
  call b name;
  if args <> [] then addl b (imm (4 * List.length args)) (reg ESP)

(* ---- rtl_init(netdev) ---- *)

let emit_init b =
  label b entry_init;
  prologue b;
  call_support b "pci_enable_device" [ arg0 ];
  call_support b "pci_set_master" [ arg0 ];
  call_support b "kzalloc" [ imm struct_bytes; imm 0 ];
  movl b (reg EAX) (reg EBX);
  movl b arg0 (reg ESI);
  movl b (reg EBX) (mem ~base:ESI 8);
  movl b (reg ESI) (adp o_netdev);
  movl b (mem ~base:ESI 0) (reg EAX);
  movl b (reg EAX) (adp o_mmio);
  (* the contiguous receive ring *)
  call_support b "dma_alloc_coherent" [ imm Td_nic.Rtl_dev.rx_ring_bytes ];
  movl b (reg EAX) (adp o_rx_ring);
  movl b (adp o_mmio) (reg EDI);
  movl b (reg EAX) (mem ~base:EDI Td_nic.Rtl_dev.rbstart);
  (* four contiguous transmit staging buffers, addresses programmed into
     the TSAD registers once *)
  let fill = gensym "rtl_txb" and fill_done = gensym "rtl_txb_done" in
  xorl b (reg ESI) (reg ESI);
  label b fill;
  cmpl b (imm 4) (reg ESI);
  je b fill_done;
  call_support b "kmalloc" [ imm 2048; imm 0 ];
  movl b (reg EAX) (mem ~base:EBX ~index:(ESI, Operand.S4) o_tx_buf);
  movl b (adp o_mmio) (reg EDI);
  movl b (reg EAX)
    (mem ~base:EDI ~index:(ESI, Operand.S4) (Td_nic.Rtl_dev.tsad 0));
  incl b (reg ESI);
  jmp b fill;
  label b fill_done;
  movl b (imm 0) (adp o_tx_cur);
  (* unmask receive and transmit interrupts *)
  movl b (adp o_mmio) (reg EDI);
  movl b (imm (Td_nic.Rtl_dev.isr_rok lor Td_nic.Rtl_dev.isr_tok))
    (mem ~base:EDI Td_nic.Rtl_dev.imr);
  call_support b "request_irq" [ arg0; imm 0 ];
  call_support b "register_netdev" [ arg0 ];
  call_support b "netif_start_queue" [ arg0 ];
  movl b (reg EBX) (reg EAX);
  epilogue b

(* ---- rtl_xmit(skb, netdev) ---- *)

let emit_xmit b =
  label b entry_xmit;
  prologue b;
  movl b arg1 (reg EDI);
  movl b (mem ~base:EDI 8) (reg EBX);
  let busy = gensym "rtl_busy" and out = gensym "rtl_out" in
  (* is the current slot free? TSD[n] has the OWN bit when idle *)
  movl b (adp o_tx_cur) (reg ESI);
  movl b (adp o_mmio) (reg EDX);
  movl b (mem ~base:EDX ~index:(ESI, Operand.S4) (Td_nic.Rtl_dev.tsd 0)) (reg EAX);
  testl b (imm Td_nic.Rtl_dev.tsd_own) (reg EAX);
  je b busy;
  (* the 8139 wants the whole frame contiguous: copy the sk_buff's data
     into the slot's staging buffer *)
  movl b (mem ~base:EBX ~index:(ESI, Operand.S4) o_tx_buf) (reg EDI);
  movl b arg0 (reg EDX);
  movl b (mem ~base:EDX 4) (reg ECX);
  movl b (mem ~base:EDX 0) (reg ESI);
  rep_movsb b;
  (* fire the slot: write the size without the OWN bit *)
  movl b (adp o_tx_cur) (reg ESI);
  movl b (adp o_mmio) (reg EDX);
  movl b arg0 (reg EAX);
  movl b (mem ~base:EAX 4) (reg EAX);
  movl b (reg EAX)
    (mem ~base:EDX ~index:(ESI, Operand.S4) (Td_nic.Rtl_dev.tsd 0));
  (* stats, slot advance *)
  incl b (adp o_tx_packets);
  incl b (reg ESI);
  andl b (imm 3) (reg ESI);
  movl b (reg ESI) (adp o_tx_cur);
  call_support b "dev_kfree_skb_any" [ arg0 ];
  xorl b (reg EAX) (reg EAX);
  jmp b out;
  label b busy;
  incl b (adp o_tx_dropped);
  call_support b "dev_kfree_skb_any" [ arg0 ];
  movl b (imm 1) (reg EAX);
  label b out;
  epilogue b

(* ---- rtl_intr(netdev) ---- *)

let emit_intr b =
  label b entry_intr;
  prologue b;
  pushl b (imm 0);
  (* received-packet count *)
  movl b arg0 (reg ESI);
  movl b (mem ~base:ESI 8) (reg EBX);
  (* read ISR, then clear what we saw (write-1-to-clear) *)
  movl b (adp o_mmio) (reg EDX);
  movl b (mem ~base:EDX Td_nic.Rtl_dev.isr) (reg EAX);
  movl b (reg EAX) (mem ~base:EDX Td_nic.Rtl_dev.isr);
  let loop = gensym "rtl_rx" and done_ = gensym "rtl_rx_done" in
  let drop = gensym "rtl_drop" and advance = gensym "rtl_adv" in
  label b loop;
  (* anything between our pointer (CAPR) and the device's (CBR)? *)
  movl b (adp o_mmio) (reg EDX);
  movl b (mem ~base:EDX Td_nic.Rtl_dev.capr) (reg ECX);
  cmpl b (mem ~base:EDX Td_nic.Rtl_dev.cbr) (reg ECX);
  je b done_;
  (* length lives at ring+capr+2; keep it in a stack slot across calls *)
  movl b (adp o_rx_ring) (reg EDI);
  addl b (reg ECX) (reg EDI);
  movzxw b (mem ~base:EDI 2) EDX;
  pushl b (reg EDX);
  call_support b "netdev_alloc_skb" [ adp o_netdev; imm 2048 ];
  testl b (reg EAX) (reg EAX);
  je b drop;
  (* second stack slot: the sk_buff (count is now at 8(%esp)) *)
  pushl b (reg EAX);
  (* skb->len = frame length *)
  movl b (mem ~base:ESP 4) (reg ECX);
  movl b (reg EAX) (reg EDX);
  movl b (reg ECX) (mem ~base:EDX 4);
  (* rep movsb: ring payload -> skb->data (ECX already holds the length) *)
  movl b (mem ~base:EDX 0) (reg EDI);
  movl b (adp o_mmio) (reg EDX);
  movl b (mem ~base:EDX Td_nic.Rtl_dev.capr) (reg ESI);
  addl b (adp o_rx_ring) (reg ESI);
  addl b (imm Td_nic.Rtl_dev.rx_hdr_bytes) (reg ESI);
  rep_movsb b;
  (* classify and hand the packet up *)
  movl b (mem ~base:ESP 0) (reg EAX);
  call_support b "eth_type_trans" [ reg EAX; adp o_netdev ];
  movl b (mem ~base:ESP 0) (reg EAX);
  call_support b "netif_rx" [ reg EAX ];
  incl b (adp o_rx_packets);
  incl b (mem ~base:ESP 8);
  addl b (imm 4) (reg ESP);
  (* pop the sk_buff slot *)
  jmp b advance;
  label b drop;
  incl b (adp o_rx_alloc_fail);
  label b advance;
  (* capr += align4(hdr + len); the length slot is on top of the stack *)
  movl b (mem ~base:ESP 0) (reg EAX);
  addl b (imm (Td_nic.Rtl_dev.rx_hdr_bytes + 3)) (reg EAX);
  andl b (imm (lnot 3 land 0xFFFFFFFF)) (reg EAX);
  movl b (adp o_mmio) (reg EDX);
  movl b (mem ~base:EDX Td_nic.Rtl_dev.capr) (reg ECX);
  addl b (reg EAX) (reg ECX);
  movl b (reg ECX) (mem ~base:EDX Td_nic.Rtl_dev.capr);
  addl b (imm 4) (reg ESP);
  jmp b loop;
  label b done_;
  popl b (reg EAX);
  epilogue b

let source () =
  let b = create "rtl8139" in
  emit_init b;
  emit_xmit b;
  emit_intr b;
  finish b

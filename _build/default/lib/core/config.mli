(** The four system configurations evaluated in the paper (§6). *)

type t =
  | Native_linux  (** bare-metal Linux: kernel + original driver *)
  | Xen_dom0  (** the driver domain itself doing the I/O on Xen *)
  | Xen_domU  (** unoptimised guest: netfront / netback / bridge *)
  | Xen_twin  (** guest with the TwinDrivers hypervisor driver *)

val name : t -> string
val all : t list
val of_string : string -> t option

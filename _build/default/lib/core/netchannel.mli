(** A bidirectional byte channel between a guest endpoint and a client
    machine, carried through the simulated system: every server segment
    rides a real frame down the configuration's transmit path and every
    client segment comes back up the receive path (NIC, hypervisor driver,
    demultiplexer, guest).

    This is the glue that lets {!Td_net.Tcp_lite} endpoints — and anything
    built on them, like the {!Td_net.Knot} web server — run over the full
    TwinDrivers data path rather than an abstract queue. *)

type t

val create : ?nic:int -> World.t -> t
(** The server endpoint lives in the world's guest; the client endpoint
    models the machine at the far end of [nic]'s wire. *)

val server : t -> Td_net.Tcp_lite.t
val client : t -> Td_net.Tcp_lite.t

val run :
  ?max_rounds:int -> ?on_round:(t -> unit) -> t -> until:(t -> bool) -> bool
(** Relay segments in both directions (through the simulated machine) and
    tick both endpoints until [until] holds or [max_rounds] (default
    2000) elapse; returns whether [until] was reached. [on_round] runs
    once per round (e.g. to poll a server). *)

val frames_carried : t -> int
(** Frames that crossed the simulated NIC for this channel. *)

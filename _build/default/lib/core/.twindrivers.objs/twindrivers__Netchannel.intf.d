lib/core/netchannel.mli: Td_net World

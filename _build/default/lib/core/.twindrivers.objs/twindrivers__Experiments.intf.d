lib/core/experiments.mli: Config Measure Td_rewriter

lib/core/measure.ml: Char Config Format List Printf String Td_cpu Td_nic Td_xen World

lib/core/experiments.ml: Config List Measure String Td_cpu Td_driver Td_kernel Td_mem Td_net Td_nic Td_rewriter Td_xen World

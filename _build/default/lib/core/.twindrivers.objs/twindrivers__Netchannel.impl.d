lib/core/netchannel.ml: Option Queue Td_net World

lib/core/measure.mli: Config Format Td_xen World

lib/core/config.mli:

lib/core/world.mli: Config Td_cpu Td_driver Td_kernel Td_mem Td_rewriter Td_svm Td_xen

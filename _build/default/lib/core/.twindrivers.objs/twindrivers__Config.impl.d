lib/core/config.ml:

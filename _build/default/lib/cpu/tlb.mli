(** Data-TLB model: a fixed-capacity set of recently used virtual pages.

    Flushed on address-space (domain) switches — the dominant cost the
    paper attributes to Xen's driver-domain architecture. *)

type t

val create : ?entries:int -> unit -> t
(** Default capacity: 256 entries, 4-way set-associative (dTLB + L2 TLB). *)

val access : t -> int -> bool
(** [access tlb vpage] records an access and returns [true] on a hit. *)

val flush : t -> unit
val hits : t -> int
val misses : t -> int

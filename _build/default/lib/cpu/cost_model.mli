(** Cycle-cost parameters of the simulated CPU.

    These model the micro-architectural costs the paper measures (3.0 GHz
    Xeon): instruction issue, memory access, TLB misses, cache misses.
    Absolute values are calibration constants documented in DESIGN.md;
    *ratios* between configurations are what the reproduction relies on. *)

type t = {
  insn : int;  (** base cost of any instruction *)
  mem_access : int;  (** extra cost of each memory operand access *)
  tlb_miss : int;  (** page-walk penalty *)
  cache_miss : int;  (** memory-hierarchy penalty *)
  mmio : int;  (** uncached device-register access (PCI transaction) *)
  call : int;  (** extra cost of call/ret control transfer *)
  native_call : int;  (** cost of entering a native (C-level) routine *)
  str_unit : int;  (** per-element cost of string operations *)
}

val default : t

val frequency_hz : int
(** Simulated CPU frequency (3.0 GHz, as in the paper's testbed). *)

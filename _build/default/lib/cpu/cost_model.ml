type t = {
  insn : int;
  mem_access : int;
  tlb_miss : int;
  cache_miss : int;
  mmio : int;
  call : int;
  native_call : int;
  str_unit : int;
}

let default =
  {
    insn = 1;
    mem_access = 2;
    tlb_miss = 20;
    cache_miss = 40;
    mmio = 250;
    call = 2;
    native_call = 5;
    str_unit = 1;
  }

let frequency_hz = 3_000_000_000

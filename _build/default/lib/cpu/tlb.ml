(* 4-way set-associative, round-robin eviction within a set. *)

type t = {
  sets : int;
  ways : int;
  slots : int array;  (** sets * ways entries; -1 = empty *)
  rr : int array;  (** next way to evict, per set *)
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ?(entries = 256) () =
  let ways = 4 in
  let sets = max 1 (entries / ways) in
  {
    sets;
    ways;
    slots = Array.make (sets * ways) (-1);
    rr = Array.make sets 0;
    hit_count = 0;
    miss_count = 0;
  }

let access t vpage =
  let set = vpage land (t.sets - 1) in
  let base = set * t.ways in
  let rec probe w =
    if w >= t.ways then None
    else if t.slots.(base + w) = vpage then Some w
    else probe (w + 1)
  in
  match probe 0 with
  | Some _ ->
      t.hit_count <- t.hit_count + 1;
      true
  | None ->
      t.slots.(base + t.rr.(set)) <- vpage;
      t.rr.(set) <- (t.rr.(set) + 1) mod t.ways;
      t.miss_count <- t.miss_count + 1;
      false

let flush t =
  Array.fill t.slots 0 (Array.length t.slots) (-1);
  Array.fill t.rr 0 t.sets 0

let hits t = t.hit_count
let misses t = t.miss_count

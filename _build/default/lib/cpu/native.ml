type fn = State.t -> unit

type t = {
  by_addr : (int, string * fn) Hashtbl.t;
  by_name : (string, int) Hashtbl.t;
  mutable next : int;
}

let create () =
  {
    by_addr = Hashtbl.create 64;
    by_name = Hashtbl.create 64;
    next = Td_mem.Layout.native_base;
  }

let register t name fn =
  match Hashtbl.find_opt t.by_name name with
  | Some addr ->
      Hashtbl.replace t.by_addr addr (name, fn);
      addr
  | None ->
      let addr = t.next in
      t.next <- t.next + 16;
      Hashtbl.replace t.by_addr addr (name, fn);
      Hashtbl.replace t.by_name name addr;
      addr

let address_of t name = Hashtbl.find_opt t.by_name name
let name_of t addr = Option.map fst (Hashtbl.find_opt t.by_addr addr)
let lookup t addr = Option.map snd (Hashtbl.find_opt t.by_addr addr)
let is_native_addr addr = addr >= Td_mem.Layout.native_base
let count t = Hashtbl.length t.by_name

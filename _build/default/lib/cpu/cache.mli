(** Data-cache model: direct-mapped, 64-byte lines, physically indexed.

    Physically indexed so that the dom0 data accessed by the hypervisor
    driver through its SVM mapping hits the same lines as when dom0
    accesses it — a property the TwinDrivers design depends on (one data
    instance, shared cache footprint). *)

type t

val create : ?size_bytes:int -> ?line_bytes:int -> unit -> t
(** Default: 512 KiB (last-level), 64-byte lines. *)

val access : t -> int -> bool
(** [access cache paddr] returns [true] on a hit. *)

val flush : t -> unit
val hits : t -> int
val misses : t -> int

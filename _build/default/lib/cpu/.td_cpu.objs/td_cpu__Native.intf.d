lib/cpu/native.mli: State

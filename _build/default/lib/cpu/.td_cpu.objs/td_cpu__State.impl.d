lib/cpu/state.ml: Array Cache Cost_model Td_mem Td_misa Tlb

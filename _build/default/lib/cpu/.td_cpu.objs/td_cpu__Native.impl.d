lib/cpu/native.ml: Hashtbl Option State Td_mem

lib/cpu/interp.ml: Array Cache Code_registry Cond Cost_model Insn List Native Operand Printf Program Reg State Td_mem Td_misa Tlb Width

lib/cpu/interp.mli: Code_registry Native State Td_misa

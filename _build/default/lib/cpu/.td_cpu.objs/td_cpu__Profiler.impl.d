lib/cpu/profiler.ml: Array Code_registry Format Hashtbl Interp List State Td_misa

lib/cpu/state.mli: Cache Cost_model Td_mem Td_misa Tlb

lib/cpu/code_registry.mli: Td_misa

lib/cpu/code_registry.ml: List Printf Td_misa

lib/cpu/cache.ml: Array

lib/cpu/cache.mli:

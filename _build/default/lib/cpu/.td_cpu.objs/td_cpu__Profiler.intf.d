lib/cpu/profiler.mli: Format Interp

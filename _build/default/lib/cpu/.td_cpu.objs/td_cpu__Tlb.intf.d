lib/cpu/tlb.mli:

lib/cpu/tlb.ml: Array

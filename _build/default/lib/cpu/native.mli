(** Registry of native routines — OCaml closures standing in for C code
    (hypervisor-implemented support routines, the SVM slow path, kernel
    helpers).

    Each routine is assigned a code address at or above
    {!Td_mem.Layout.native_base}; a [call] that targets such an address
    leaves the simulated ISA and runs the closure. Arguments follow cdecl:
    the closure reads them with {!State.stack_arg} and leaves its result in
    [EAX]. *)

type fn = State.t -> unit

type t

val create : unit -> t

val register : t -> string -> fn -> int
(** Register a routine and return its code address. Re-registering a name
    replaces the implementation but keeps the address stable (used when
    demoting a hypervisor support routine to an upcall stub). *)

val address_of : t -> string -> int option
val name_of : t -> int -> string option
val lookup : t -> int -> fn option
val is_native_addr : int -> bool
val count : t -> int

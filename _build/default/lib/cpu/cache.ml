type t = {
  lines : int;
  line_shift : int;
  tags : int array;  (** -1 = empty *)
  mutable hit_count : int;
  mutable miss_count : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(size_bytes = 524288) ?(line_bytes = 64) () =
  let lines = size_bytes / line_bytes in
  {
    lines;
    line_shift = log2 line_bytes;
    tags = Array.make lines (-1);
    hit_count = 0;
    miss_count = 0;
  }

let access t paddr =
  let line = paddr lsr t.line_shift in
  let idx = line land (t.lines - 1) in
  if t.tags.(idx) = line then begin
    t.hit_count <- t.hit_count + 1;
    true
  end
  else begin
    t.tags.(idx) <- line;
    t.miss_count <- t.miss_count + 1;
    false
  end

let flush t = Array.fill t.tags 0 t.lines (-1)
let hits t = t.hit_count
let misses t = t.miss_count

type counters = { mutable frames : int; mutable bytes : int }

let fresh_counters () = { frames = 0; bytes = 0 }

let sink c frame =
  c.frames <- c.frames + 1;
  c.bytes <- c.bytes + String.length frame

let null _ = ()

let wire_limit_mbps ~packet_bytes ~nics =
  E1000_dev.effective_rate_bps ~packet_bytes *. float_of_int nics /. 1e6

let mbps_of_bytes ~bytes ~seconds =
  if seconds <= 0.0 then 0.0
  else float_of_int bytes *. 8.0 /. seconds /. 1e6

(** Wire endpoints: what sits on the other side of each NIC.

    The paper's testbed connects each server NIC to a dedicated client
    machine over a gigabit link. For throughput experiments the client is
    an abstract traffic sink/source with byte and frame counters. *)

type counters = { mutable frames : int; mutable bytes : int }

val fresh_counters : unit -> counters

val sink : counters -> string -> unit
(** A counting sink suitable as a NIC's [tx_frame]. *)

val null : string -> unit

val wire_limit_mbps : packet_bytes:int -> nics:int -> float
(** Aggregate wire-limited throughput in Mb/s of payload. *)

val mbps_of_bytes : bytes:int -> seconds:float -> float

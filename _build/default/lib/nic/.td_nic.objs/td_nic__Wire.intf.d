lib/nic/wire.mli:

lib/nic/rtl_dev.ml: Array Bytes Char Printf String Td_mem Td_misa

lib/nic/e1000_dev.mli: Td_mem

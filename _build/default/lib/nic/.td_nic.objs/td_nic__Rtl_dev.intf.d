lib/nic/rtl_dev.mli: Td_mem

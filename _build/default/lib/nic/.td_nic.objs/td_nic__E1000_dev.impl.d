lib/nic/e1000_dev.ml: Array Buffer Bytes Char Printf Regs String Td_mem Td_misa

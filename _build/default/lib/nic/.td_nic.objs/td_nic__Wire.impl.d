lib/nic/wire.ml: E1000_dev String

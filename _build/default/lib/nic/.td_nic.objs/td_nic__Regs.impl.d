lib/nic/regs.ml:

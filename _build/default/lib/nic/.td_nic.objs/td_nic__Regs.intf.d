lib/nic/regs.mli:

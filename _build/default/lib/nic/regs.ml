let ctrl = 0x0000
let status = 0x0008
let icr = 0x00C0
let ims = 0x00D0
let imc = 0x00D8
let itr = 0x00C4
let tdbal = 0x700
let tdlen = 0x708
let tdh = 0x710
let tdt = 0x718
let rdbal = 0x500
let rdlen = 0x508
let rdh = 0x510
let rdt = 0x518
let ral = 0xA00
let rah = 0xA04
let gptc = 0x880
let gprc = 0x874
let mpc = 0x810
let rctl = 0x100
let mta = 0xB00
let mta_entries = 32

let icr_txdw = 0x01
let icr_rxt0 = 0x80
let icr_lsc = 0x04

let desc_bytes = 16
let d_buf = 0
let d_len = 4
let d_cmd = 8
let d_sta = 12

let cmd_eop = 0x1
let cmd_rs = 0x8
let sta_dd = 0x1
let sta_eop = 0x2

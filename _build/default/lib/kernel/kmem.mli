(** A small kernel memory allocator (kmalloc/kfree) over a simulated
    address space: power-of-two size classes carved out of heap pages,
    with per-class free lists. Driver data structures, rings and sk_buff
    buffers all live here — in dom0's address space, which is what the
    hypervisor driver instance reaches through SVM. *)

type t

val create : Td_mem.Addr_space.t -> t

val alloc : t -> int -> int
(** [alloc t bytes] returns the virtual address of a zeroed region of at
    least [bytes] bytes (rounded to a power-of-two class, max 4096).
    Larger requests are served as contiguous whole pages. *)

val free : t -> int -> int -> unit
(** [free t addr bytes] returns a region to its class's free list. *)

val allocated_bytes : t -> int
(** Live allocation total (for leak tests). *)

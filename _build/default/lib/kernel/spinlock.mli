(** Spinlocks as words in shared dom0 memory.

    §4.4: "these synchronization operations continue to work correctly for
    the hypervisor driver instance since they operate on atomic
    synchronization variables which are also shared between the hypervisor
    and VM driver" — both instances manipulate the same word. *)

val init : Td_mem.Addr_space.t -> int -> unit
val trylock : Td_mem.Addr_space.t -> int -> bool
val unlock : Td_mem.Addr_space.t -> int -> unit
val held : Td_mem.Addr_space.t -> int -> bool

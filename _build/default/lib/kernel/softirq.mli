(** Deferred-work context. §4.4: the hypervisor invokes the driver's
    interrupt handler "in a schedulable 'softirq' context, instead of
    directly in the interrupt context", so that dom0's virtual interrupt
    flag is respected. *)

type t

val create : unit -> t
val raise_softirq : t -> (unit -> unit) -> unit
val pending : t -> int

val run : t -> ?guard:(unit -> bool) -> unit -> int
(** Drain the queue; [guard] is checked before each item (dom0's virtual
    interrupt flag) — when false, draining stops and work stays queued.
    Returns the number of items executed. *)

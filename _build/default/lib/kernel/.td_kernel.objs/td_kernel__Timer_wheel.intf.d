lib/kernel/timer_wheel.mli:

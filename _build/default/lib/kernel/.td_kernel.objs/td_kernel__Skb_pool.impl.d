lib/kernel/skb_pool.ml: Hashtbl Kmem List Skb Td_mem

lib/kernel/bridge.ml: Hashtbl List String

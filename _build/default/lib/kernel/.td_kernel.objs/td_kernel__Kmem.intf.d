lib/kernel/kmem.mli: Td_mem

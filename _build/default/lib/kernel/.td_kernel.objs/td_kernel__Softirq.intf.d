lib/kernel/softirq.mli:

lib/kernel/kmem.ml: Bytes Hashtbl Td_mem

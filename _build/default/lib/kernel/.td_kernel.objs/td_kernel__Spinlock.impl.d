lib/kernel/spinlock.ml: Td_mem Td_misa

lib/kernel/softirq.ml: Queue

lib/kernel/bridge.mli:

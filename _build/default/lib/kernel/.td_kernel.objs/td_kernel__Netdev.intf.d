lib/kernel/netdev.mli: Kmem Td_mem

lib/kernel/netdev.ml: Bytes Kmem String Td_mem Td_misa

lib/kernel/skb.mli: Kmem Td_mem

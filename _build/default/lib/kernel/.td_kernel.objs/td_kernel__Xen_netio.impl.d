lib/kernel/xen_netio.ml: Bytes Domain Grant_table Hypervisor Kmem Queue Skb String Sys_costs Td_mem Td_xen

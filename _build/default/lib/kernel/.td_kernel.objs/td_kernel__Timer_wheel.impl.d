lib/kernel/timer_wheel.ml: Hashtbl

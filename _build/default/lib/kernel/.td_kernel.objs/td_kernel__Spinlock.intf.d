lib/kernel/spinlock.mli: Td_mem

lib/kernel/skb_pool.mli: Kmem Skb Td_mem

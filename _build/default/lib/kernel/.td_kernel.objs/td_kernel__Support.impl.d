lib/kernel/support.ml: Bytes Char Hashtbl Kmem List Native Netdev Option Skb Skb_pool Spinlock State Td_cpu Td_mem Td_misa Td_svm Td_xen

lib/kernel/xen_netio.mli: Kmem Skb Td_xen

lib/kernel/support.mli: Kmem Skb Skb_pool Td_cpu Td_mem Td_svm Td_xen

lib/kernel/skb.ml: Bytes Kmem Td_mem Td_misa

(** Kernel timers: the VM driver instance keeps running housekeeping
    functions (watchdog, statistics collection) on timers in dom0 —
    exactly the work TwinDrivers leaves out of the hypervisor (§3.1). *)

type t

val create : unit -> t

val add : t -> period:int -> name:string -> (unit -> unit) -> unit
(** Register a periodic timer with a period in ticks. *)

val cancel : t -> name:string -> unit

val tick : t -> unit
(** Advance time by one tick, firing due timers. *)

val ticks : t -> int
val fired : t -> name:string -> int

type t = { queue : (unit -> unit) Queue.t }

let create () = { queue = Queue.create () }
let raise_softirq t fn = Queue.push fn t.queue
let pending t = Queue.length t.queue

let run t ?(guard = fun () -> true) () =
  let ran = ref 0 in
  let continue = ref true in
  while !continue && not (Queue.is_empty t.queue) do
    if guard () then begin
      (Queue.pop t.queue) ();
      incr ran
    end
    else continue := false
  done;
  !ran

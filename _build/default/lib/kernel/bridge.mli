(** The dom0 software bridge of Figure 1: connects the physical NIC's
    driver to backend interfaces (one per guest) and the dom0 local stack,
    forwarding ethernet frames by destination MAC with source-MAC
    learning. *)

type port = { port_name : string; tx : string -> unit }

type t

val create : unit -> t
val add_port : t -> port -> unit

val forward : t -> string -> unit
(** [forward t frame] learns the source MAC and forwards by destination:
    to the learned port, or floods to every port except the learned source
    port when unknown (broadcast behaviour). *)

val learn : t -> mac:string -> port -> unit
(** Static entry (used when guest MACs are known up front). *)

val forwarded : t -> int
val flooded : t -> int

let init space addr = Td_mem.Addr_space.write space addr Td_misa.Width.W32 0

let trylock space addr =
  if Td_mem.Addr_space.read space addr Td_misa.Width.W32 = 0 then begin
    Td_mem.Addr_space.write space addr Td_misa.Width.W32 1;
    true
  end
  else false

let unlock space addr = Td_mem.Addr_space.write space addr Td_misa.Width.W32 0
let held space addr = Td_mem.Addr_space.read space addr Td_misa.Width.W32 <> 0

(** The unoptimised Xen network I/O path (Figure 1): paravirtual frontend
    in the guest, I/O channel, backend + bridge in dom0.

    This is the baseline the paper improves on — every packet incurs
    grant-table operations, I/O-channel ring work, event-channel
    notifications and two synchronous domain switches, all charged against
    the ledger, while the real bytes move through the simulated pages so
    delivery can be asserted end-to-end. *)

type t

val create :
  hyp:Td_xen.Hypervisor.t ->
  dom0:Td_xen.Domain.t ->
  guest:Td_xen.Domain.t ->
  kmem:Kmem.t ->
  driver_tx:(Skb.t -> unit) ->
  unit ->
  t
(** [driver_tx] invokes the dom0 NIC driver's transmit routine on a
    dom0-built sk_buff. *)

val set_guest_rx : t -> (string -> unit) -> unit
(** Guest-side consumer of received frames. *)

val guest_transmit : t -> string -> unit
(** Full frontend→backend→bridge→driver transmit path for one frame. *)

val post_rx_buffers : t -> int -> unit
(** Guest posts [n] granted receive buffers to the backend. *)

val rx_buffers_posted : t -> int

val deliver_to_guest : t -> Skb.t -> unit
(** Backend receive path: grant-copy the packet into a posted guest
    buffer, notify the guest (frees the sk_buff). Drops (and counts) when
    no buffer is posted. *)

val tx_count : t -> int
val rx_count : t -> int
val rx_dropped : t -> int

type timer = {
  period : int;
  fn : unit -> unit;
  mutable next_due : int;
  mutable fire_count : int;
}

type t = { timers : (string, timer) Hashtbl.t; mutable now : int }

let create () = { timers = Hashtbl.create 8; now = 0 }

let add t ~period ~name fn =
  if period <= 0 then invalid_arg "Timer_wheel.add: period must be positive";
  Hashtbl.replace t.timers name
    { period; fn; next_due = t.now + period; fire_count = 0 }

let cancel t ~name = Hashtbl.remove t.timers name

let tick t =
  t.now <- t.now + 1;
  Hashtbl.iter
    (fun _ timer ->
      if t.now >= timer.next_due then begin
        timer.next_due <- t.now + timer.period;
        timer.fire_count <- timer.fire_count + 1;
        timer.fn ()
      end)
    t.timers

let ticks t = t.now

let fired t ~name =
  match Hashtbl.find_opt t.timers name with
  | Some timer -> timer.fire_count
  | None -> 0

type t = {
  space : Td_mem.Addr_space.t;
  free_lists : (int, int list ref) Hashtbl.t;  (** class size -> addrs *)
  mutable live : int;
}

let create space = { space; free_lists = Hashtbl.create 8; live = 0 }

let class_of bytes =
  let rec go c = if c >= bytes then c else go (c * 2) in
  go 32

let free_list t cls =
  match Hashtbl.find_opt t.free_lists cls with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.free_lists cls l;
      l

let zero t addr bytes =
  Td_mem.Addr_space.write_block t.space addr (Bytes.make bytes '\000')

let alloc t bytes =
  if bytes <= 0 then invalid_arg "Kmem.alloc: non-positive size";
  if bytes > Td_mem.Layout.page_size then begin
    let addr = Td_mem.Addr_space.heap_alloc t.space bytes in
    t.live <- t.live + bytes;
    addr
  end
  else begin
    let cls = class_of bytes in
    let fl = free_list t cls in
    let addr =
      match !fl with
      | a :: rest ->
          fl := rest;
          a
      | [] ->
          (* carve a fresh page into objects of this class *)
          let page = Td_mem.Addr_space.heap_alloc t.space Td_mem.Layout.page_size in
          let per_page = Td_mem.Layout.page_size / cls in
          for i = 1 to per_page - 1 do
            fl := (page + (i * cls)) :: !fl
          done;
          page
    in
    zero t addr cls;
    t.live <- t.live + cls;
    addr
  end

let free t addr bytes =
  if bytes > Td_mem.Layout.page_size then t.live <- t.live - bytes
  else begin
    let cls = class_of bytes in
    let fl = free_list t cls in
    fl := addr :: !fl;
    t.live <- t.live - cls
  end

let allocated_bytes t = t.live

(** The driver support-routine registry.

    The paper counts 97 kernel routines called by the e1000 driver across
    all its operations, of which only the ten in Table 1 are needed on the
    error-free transmit/receive fast path. Here every routine has a dom0
    (kernel) implementation; the hypervisor provides native
    implementations only for the fast-path set, and every other routine is
    linked to an upcall stub (§4.3, §5.2).

    Implementations are OCaml closures standing in for kernel C code; they
    read their arguments from the simulated stack and operate on the
    shared dom0 data structures, exactly like both driver instances. *)

type t

val fast_path_names : string list
(** The ten routines of Table 1, in the paper's order. *)

val create : space:Td_mem.Addr_space.t -> kmem:Kmem.t -> t

val env_space : t -> Td_mem.Addr_space.t
val kmem : t -> Kmem.t

val set_netif_rx : t -> (Skb.t -> unit) -> unit
(** What [netif_rx] does with a received packet in the current system
    configuration (deliver to the local stack, bridge it, ...). *)

val routine_names : t -> string list
val routine_count : t -> int
val is_fast_path : string -> bool

(* call statistics *)

val dom0_calls : t -> string -> int
val hyp_calls : t -> string -> int
val upcalls : t -> string -> int
val total_upcalls : t -> int
val reset_counts : t -> unit

val called_routines : t -> string list
(** Routines invoked (in any context) since the last reset — used to
    regenerate Table 1 by tracing the error-free fast path. *)

(* wiring *)

val register_dom0_natives : t -> Td_cpu.Native.t -> unit
(** Register every routine as ["<name>@dom0"]. *)

val dom0_symtab : t -> Td_cpu.Native.t -> string -> int option
(** Symbol table mapping plain routine names to the dom0 natives (used
    when loading the VM instance and the native-Linux driver). *)

type hyp_ctx = {
  hyp : Td_xen.Hypervisor.t;
  dom0 : Td_xen.Domain.t;
  svm : Td_svm.Runtime.t;
  pool : Skb_pool.t;
  mutable hyp_netif_rx : Skb.t -> unit;
}

val register_hyp_natives :
  t -> Td_cpu.Native.t -> ctx:hyp_ctx -> native_set:string list -> unit
(** Register the hypervisor-side resolution of every routine: a native
    hypervisor implementation for routines in [native_set] (must be
    fast-path routines), an upcall stub into dom0 for the rest. Symbols
    are ["<name>@hyp"]. Varying [native_set] reproduces Figure 10. *)

val hyp_symtab : t -> Td_cpu.Native.t -> string -> int option

val set_hyp_netif_rx : t -> (Skb.t -> unit) -> unit
(** Hypervisor-side [netif_rx] behaviour (demux + guest delivery); only
    valid after {!register_hyp_natives}. *)

val upcall_stats : t -> Td_xen.Upcall.stats

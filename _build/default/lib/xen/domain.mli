(** Xen domains: the driver domain (dom0) and guest domains.

    Each domain has its own address space. The virtual interrupt flag
    (§4.4) lives both as a word in the domain's kernel memory — so that
    driver code and kernel code can test it — and is interpreted by the
    hypervisor before delivering virtual interrupts. *)

type kind = Driver_domain | Guest

type t

val create :
  id:int -> name:string -> kind:kind -> space:Td_mem.Addr_space.t -> t

val id : t -> int
val name : t -> string
val kind : t -> kind
val space : t -> Td_mem.Addr_space.t

val init_vif : t -> vaddr:int -> unit
(** Place the virtual interrupt flag word at [vaddr] (must be mapped);
    0 = enabled, 1 = masked. *)

val vif_addr : t -> int
val interrupts_masked : t -> bool
val mask_interrupts : t -> unit
val unmask_interrupts : t -> unit

val defer : t -> (unit -> unit) -> unit
(** Queue a virtual interrupt for delivery once interrupts are unmasked. *)

val pending : t -> int
val deliver_pending : t -> unit
(** Run queued virtual interrupts (called on unmask). *)

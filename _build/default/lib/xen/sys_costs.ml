type t = {
  kernel_tx_path : int;
  kernel_rx_path : int;
  virt_overhead_tx : int;
  virt_overhead_rx : int;
  hypercall : int;
  domain_switch : int;
  event_channel : int;
  interrupt_dispatch : int;
  softirq_schedule : int;
  grant_map : int;
  grant_unmap : int;
  grant_copy_per_byte : float;
  io_channel : int;
  bridge : int;
  netback : int;
  netfront : int;
  dom0_tx_kernel : int;
  dom0_rx_kernel : int;
  twin_skb_acquire : int;
  twin_frag_chain : int;
  copy_per_byte : float;
  twin_demux : int;
  twin_rx_queue : int;
  upcall_stack_switch : int;
  upcall_return : int;
  support_routine : int;
}

let default =
  {
    kernel_tx_path = 6150;
    kernel_rx_path = 10200;
    virt_overhead_tx = 1184;
    virt_overhead_rx = 2100;
    hypercall = 400;
    domain_switch = 1800;
    event_channel = 600;
    interrupt_dispatch = 500;
    softirq_schedule = 300;
    grant_map = 450;
    grant_unmap = 350;
    grant_copy_per_byte = 2.35;
    io_channel = 800;
    bridge = 1100;
    netback = 900;
    netfront = 700;
    dom0_tx_kernel = 5000;
    dom0_rx_kernel = 11000;
    twin_skb_acquire = 400;
    twin_frag_chain = 330;
    copy_per_byte = 2.35;
    twin_demux = 1000;
    twin_rx_queue = 1300;
    upcall_stack_switch = 4000;
    upcall_return = 3000;
    support_routine = 150;
  }

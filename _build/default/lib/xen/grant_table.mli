(** Grant tables: the Xen mechanism by which a guest authorises the driver
    domain to map or copy one of its page frames. Used by the baseline
    (unoptimised) netfront/netback path, whose grant operations are a
    documented source of overhead in the paper's §2. *)

type grant_ref = int

type t

val create : owner:Domain.t -> t

val grant : t -> frame:Td_mem.Phys_mem.frame -> grant_ref
(** Guest-side: make a frame available. *)

val revoke : t -> grant_ref -> unit
(** Raises [Failure] if the grant is still mapped. *)

val map : t -> hyp:Hypervisor.t -> into:Domain.t -> at_vpage:int -> grant_ref -> unit
(** dom0-side: map the granted frame; charges {!Sys_costs.grant_map}. *)

val unmap : t -> hyp:Hypervisor.t -> from:Domain.t -> at_vpage:int -> grant_ref -> unit

val copy_to :
  t ->
  hyp:Hypervisor.t ->
  grant_ref ->
  offset:int ->
  src:bytes ->
  unit
(** Hypervisor-mediated [gnttab_copy] into the granted frame; charges
    per-byte copy cost to Xen. *)

val copy_from :
  t -> hyp:Hypervisor.t -> grant_ref -> offset:int -> len:int -> bytes

val active : t -> int
(** Number of outstanding grants. *)

val maps : t -> int
(** Total map operations performed (for overhead accounting tests). *)

type stats = { mutable invocations : int; mutable switches_incurred : int }

let fresh_stats () = { invocations = 0; switches_incurred = 0 }

let make_stub ~hyp ~dom0 ~name ~impl stats : Td_cpu.Native.fn =
 fun st ->
  ignore name;
  stats.invocations <- stats.invocations + 1;
  let costs = Hypervisor.costs hyp in
  (* the stub saves parameters and switches off the hypervisor stack
     (whose contents are not preserved across the domain transition) *)
  Hypervisor.charge_xen hyp costs.Sys_costs.upcall_stack_switch;
  let prev = Hypervisor.current hyp in
  let needs_switch = Domain.id prev <> Domain.id dom0 in
  if needs_switch then stats.switches_incurred <- stats.switches_incurred + 2;
  Hypervisor.run_in hyp dom0 (fun () ->
      (* synchronous virtual interrupt into dom0: the registered handler
         recovers parameters and invokes the support routine *)
      Hypervisor.charge_xen hyp costs.Sys_costs.event_channel;
      Hypervisor.charge_domain hyp dom0 costs.Sys_costs.support_routine;
      impl st;
      (* 'return' to the stub via hypercall *)
      Hypervisor.hypercall hyp ~cost:costs.Sys_costs.upcall_return ())

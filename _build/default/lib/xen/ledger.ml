type category = Dom0 | DomU | Xen | Driver

let categories = [ Dom0; DomU; Xen; Driver ]

let category_name = function
  | Dom0 -> "dom0"
  | DomU -> "domU"
  | Xen -> "Xen"
  | Driver -> "e1000"

let index = function Dom0 -> 0 | DomU -> 1 | Xen -> 2 | Driver -> 3

type t = { cells : int array }

let create () = { cells = Array.make 4 0 }
let charge t c n = t.cells.(index c) <- t.cells.(index c) + n
let total t c = t.cells.(index c)
let grand_total t = Array.fold_left ( + ) 0 t.cells
let reset t = Array.fill t.cells 0 4 0
let snapshot t = List.map (fun c -> (c, total t c)) categories

let per_packet t ~packets =
  let p = float_of_int (max 1 packets) in
  List.map (fun c -> (c, float_of_int (total t c) /. p)) categories

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun c -> Format.fprintf fmt "%-6s %d@," (category_name c) (total t c))
    categories;
  Format.fprintf fmt "total  %d@]" (grand_total t)

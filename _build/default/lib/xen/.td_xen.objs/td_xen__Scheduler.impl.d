lib/xen/scheduler.ml: Domain List Option

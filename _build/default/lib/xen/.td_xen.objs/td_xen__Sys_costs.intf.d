lib/xen/sys_costs.mli:

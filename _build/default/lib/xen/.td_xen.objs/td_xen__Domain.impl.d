lib/xen/domain.ml: Queue Td_mem Td_misa

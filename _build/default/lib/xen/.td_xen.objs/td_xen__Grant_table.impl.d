lib/xen/grant_table.ml: Bytes Domain Hashtbl Hypervisor Printf Sys_costs Td_mem

lib/xen/hypervisor.mli: Domain Ledger Sys_costs Td_cpu Td_mem

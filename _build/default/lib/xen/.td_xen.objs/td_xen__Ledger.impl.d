lib/xen/ledger.ml: Array Format List

lib/xen/sys_costs.ml:

lib/xen/upcall.mli: Domain Hypervisor Td_cpu

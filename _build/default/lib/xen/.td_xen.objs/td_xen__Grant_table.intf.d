lib/xen/grant_table.mli: Domain Hypervisor Td_mem

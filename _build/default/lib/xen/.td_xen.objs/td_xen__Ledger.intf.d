lib/xen/ledger.mli: Format

lib/xen/hypervisor.ml: Domain Ledger Option Sys_costs Td_cpu Td_mem

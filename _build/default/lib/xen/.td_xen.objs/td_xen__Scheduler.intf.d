lib/xen/scheduler.mli: Domain

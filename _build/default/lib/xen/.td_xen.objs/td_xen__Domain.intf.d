lib/xen/domain.mli: Td_mem

lib/xen/upcall.ml: Domain Hypervisor Sys_costs Td_cpu

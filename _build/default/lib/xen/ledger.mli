(** Per-category cycle accounting, matching the categories of the paper's
    Figures 7 and 8: guest-domain kernel, driver-domain kernel, the Xen
    hypervisor, and the e1000 driver itself. *)

type category = Dom0 | DomU | Xen | Driver

val categories : category list
val category_name : category -> string

type t

val create : unit -> t
val charge : t -> category -> int -> unit
val total : t -> category -> int
val grand_total : t -> int
val reset : t -> unit

val snapshot : t -> (category * int) list

val per_packet : t -> packets:int -> (category * float) list
(** Category totals divided by a packet count — the unit of Figures 7/8. *)

val pp : Format.formatter -> t -> unit

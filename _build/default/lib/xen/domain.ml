type kind = Driver_domain | Guest

type t = {
  id : int;
  name : string;
  kind : kind;
  space : Td_mem.Addr_space.t;
  mutable vif : int;  (** vaddr of the virtual interrupt flag word; 0 = none *)
  queued : (unit -> unit) Queue.t;
}

let create ~id ~name ~kind ~space =
  { id; name; kind; space; vif = 0; queued = Queue.create () }

let id t = t.id
let name t = t.name
let kind t = t.kind
let space t = t.space

let init_vif t ~vaddr =
  t.vif <- vaddr;
  Td_mem.Addr_space.write t.space vaddr Td_misa.Width.W32 0

let vif_addr t = t.vif

let interrupts_masked t =
  t.vif <> 0 && Td_mem.Addr_space.read t.space t.vif Td_misa.Width.W32 <> 0

let set_vif t v =
  if t.vif <> 0 then Td_mem.Addr_space.write t.space t.vif Td_misa.Width.W32 v

let mask_interrupts t = set_vif t 1

let deliver_pending t =
  while not (Queue.is_empty t.queued) do
    (Queue.pop t.queued) ()
  done

let unmask_interrupts t =
  set_vif t 0;
  deliver_pending t

let defer t fn = Queue.push fn t.queued
let pending t = Queue.length t.queued

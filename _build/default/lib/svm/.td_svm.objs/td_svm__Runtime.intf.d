lib/svm/runtime.mli: Stlb Td_cpu Td_mem

lib/svm/call_table.mli: Td_cpu

lib/svm/stlb.mli: Td_mem

lib/svm/runtime.ml: Hashtbl Option Stlb Td_cpu Td_mem Td_misa

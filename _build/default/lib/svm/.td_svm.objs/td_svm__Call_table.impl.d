lib/svm/call_table.ml: Hashtbl Runtime Td_cpu Td_mem Td_misa

lib/svm/stlb.ml: Td_mem Td_misa

(** The SVM runtime: slow-path miss handling, permission checks and page
    mapping (§4.1).

    Two modes correspond to the paper's two uses of the rewritten binary:

    - [Translate]: the hypervisor instance. A miss maps {e two} consecutive
      dom0 pages into the hypervisor's mapped-page window (unaligned
      accesses may straddle a page) and installs the translation.
    - [Identity]: the VM instance running in dom0. The stlb is filled with
      identity mappings (xor value 0), so the driver "continues to use its
      original data addresses and functions correctly as before, except
      that it runs a little slower".

    Accesses outside the dom0 address space raise {!Fault} — this is the
    memory-safety property of the whole design. *)

exception Fault of { addr : int; reason : string }

type mode = Translate | Identity

type t

val create_hypervisor :
  ?map_pairs:bool ->
  dom0:Td_mem.Addr_space.t ->
  hyp:Td_mem.Addr_space.t ->
  unit ->
  t
(** Hypervisor instance runtime: stlb at {!Td_mem.Layout.stlb_base} in the
    hypervisor space; mapped pages drawn from the mapped-page window.
    [map_pairs] (default true) maps two consecutive pages per miss as the
    paper prescribes; disabling it is the ablation that makes
    page-straddling accesses fault. *)

val create_identity : dom0:Td_mem.Addr_space.t -> stlb_vaddr:int -> t
(** VM instance runtime: stlb at [stlb_vaddr] in dom0 space. *)

val mode : t -> mode
val stlb : t -> Stlb.t

val miss : t -> int -> int
(** [miss t addr] is the slow path: validate [addr], install a translation
    (consulting the hash chain first), and return the translated full
    address. Raises {!Fault} for addresses outside dom0 space. *)

val translate : t -> int -> int
(** Full lookup as the fast path + slow path would perform it. Used by
    hypervisor-implemented support routines, which "make use of the stlb
    translation table explicitly while accessing driver data" (§4.3). *)

val persistent_map : t -> int -> int
(** Pre-install a translation for a dom0 address and return the mapped
    address; used for packet buffers that are "persistently mapped into
    hypervisor address space" (§5.3). *)

val invalidate_page : t -> int -> unit
(** Drop the translation for the page containing the given dom0 address
    (stlb entry and hash chain). The window pages remain allocated. *)

(* statistics *)

val misses : t -> int
val collisions : t -> int
(** Slow-path entries caused by hash collisions (chain hits). *)

val faults : t -> int
val pages_mapped : t -> int

(* native hooks for rewritten code *)

val register_natives : t -> Td_cpu.Native.t -> unit
(** Registers ["__svm_miss"] (stack arg: faulting address; returns the
    translated address in [EAX]) under the instance-specific name
    ["__svm_miss@<mode>"], plus the shared helper ["__svm_translate@<mode>"]
    used by rewritten string operations. *)

val miss_symbol : t -> string
val translate_symbol : t -> string

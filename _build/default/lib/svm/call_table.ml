type t = {
  vm_code_base : int;
  vm_code_size : int;
  resolver : int -> int option;
  cache : (int, int) Hashtbl.t;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ~vm_code_base ~vm_code_size ~resolver =
  {
    vm_code_base;
    vm_code_size;
    resolver;
    cache = Hashtbl.create 64;
    hit_count = 0;
    miss_count = 0;
  }

let translate t addr =
  match Hashtbl.find_opt t.cache addr with
  | Some a ->
      t.hit_count <- t.hit_count + 1;
      a
  | None ->
      t.miss_count <- t.miss_count + 1;
      let resolved =
        if addr >= t.vm_code_base && addr < t.vm_code_base + t.vm_code_size
        then Some (addr + Td_mem.Layout.code_offset)
        else t.resolver addr
      in
      let a =
        match resolved with
        | Some a -> a
        | None ->
            raise
              (Runtime.Fault
                 { addr; reason = "indirect call to untranslatable address" })
      in
      Hashtbl.replace t.cache addr a;
      a

let hits t = t.hit_count
let misses t = t.miss_count

let register_native t natives name =
  let fn st =
    let addr = Td_cpu.State.stack_arg st 0 in
    Td_cpu.State.set st Td_misa.Reg.EAX (translate t addr)
  in
  ignore (Td_cpu.Native.register natives name fn)

(** The [stlb_call] table of §5.1.2: translation of indirect-call targets
    from VM-driver code addresses to hypervisor-driver code addresses.

    Because the same rewritten binary is used for both instances, driver-
    internal targets differ by the constant {!Td_mem.Layout.code_offset};
    targets outside the driver (function pointers to kernel routines) are
    resolved through the loader-provided resolver, exactly like direct
    calls to support routines. Successful translations are cached. *)

type t

val create :
  vm_code_base:int -> vm_code_size:int -> resolver:(int -> int option) -> t
(** [resolver] maps a non-driver VM code address (e.g. a dom0 kernel
    routine address taken as a function pointer) to its hypervisor-side
    address (native implementation or upcall stub). *)

val translate : t -> int -> int
(** Raises {!Runtime.Fault} for targets that resolve nowhere (a wild
    function pointer — a control-flow safety violation). *)

val hits : t -> int
val misses : t -> int

val register_native : t -> Td_cpu.Native.t -> string -> unit
(** Register the translation helper under the given symbol name: takes the
    VM target address as stack argument, returns the hypervisor target in
    [EAX]. *)

(** Binary encoding of MISA programs.

    The paper derives the hypervisor driver "either by disassembling the
    VM driver binary, or ... by directly compiling the driver into
    assembly" (§5.1). This module provides the binary side: a compact,
    self-contained encoding of an assembled program that {!Decode} can
    disassemble back into rewritable source.

    Layout: a 16-byte header (magic, base address, instruction count),
    then variable-length instructions — one opcode byte followed by
    encoded operands (a tag byte plus payload each). Code addresses in
    jump/call targets are stored absolutely; the disassembler rediscovers
    labels from them. *)

val magic : string

val encode : Program.t -> bytes
(** Raises [Invalid_argument] on instructions that still contain
    unresolved symbolic operands or label targets (assemble first). *)

val encoded_size : Program.t -> int

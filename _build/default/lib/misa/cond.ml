type t = E | NE | L | LE | G | GE | B | BE | A | AE | S | NS

let negate = function
  | E -> NE
  | NE -> E
  | L -> GE
  | LE -> G
  | G -> LE
  | GE -> L
  | B -> AE
  | BE -> A
  | A -> BE
  | AE -> B
  | S -> NS
  | NS -> S

let to_string = function
  | E -> "e"
  | NE -> "ne"
  | L -> "l"
  | LE -> "le"
  | G -> "g"
  | GE -> "ge"
  | B -> "b"
  | BE -> "be"
  | A -> "a"
  | AE -> "ae"
  | S -> "s"
  | NS -> "ns"

let of_string = function
  | "e" | "z" -> Some E
  | "ne" | "nz" -> Some NE
  | "l" -> Some L
  | "le" -> Some LE
  | "g" -> Some G
  | "ge" -> Some GE
  | "b" | "c" -> Some B
  | "be" -> Some BE
  | "a" -> Some A
  | "ae" | "nc" -> Some AE
  | "s" -> Some S
  | "ns" -> Some NS
  | _ -> None

let equal a b = to_string a = to_string b
let pp fmt c = Format.pp_print_string fmt (to_string c)

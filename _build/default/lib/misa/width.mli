(** Operand widths supported by MISA memory and move operations. *)

type t = W8 | W16 | W32

val bytes : t -> int
(** Size in bytes: 1, 2 or 4. *)

val mask : t -> int
(** All-ones value of the width: [0xff], [0xffff] or [0xffffffff]. *)

val sign_bit : t -> int
(** Most significant bit of the width, e.g. [0x80] for [W8]. *)

val suffix : t -> string
(** AT&T-style mnemonic suffix: ["b"], ["w"] or ["l"]. *)

val of_suffix : string -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

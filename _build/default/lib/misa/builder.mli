(** Ergonomic construction of MISA programs.

    A builder accumulates labels and instructions; [finish] produces a
    {!Program.source}. Operand helpers keep driver code readable:

    {[
      let b = Builder.create "demo" in
      Builder.label b "entry";
      Builder.movl b (imm 1) (reg EAX);
      Builder.addl b (reg EAX) (mem ~base:EBX 8);
      Builder.ret b;
      Builder.finish b
    ]} *)

type t

val create : string -> t
val label : t -> string -> unit
val ins : t -> Insn.t -> unit
val finish : t -> Program.source

val gensym : string -> string
(** Fresh label name with the given prefix; unique within the process. *)

val reset_gensym : unit -> unit
(** Restart the fresh-label counter. Only for tools that need
    reproducible output (snapshot tests, diffable rewrites); never call
    while previously generated sources are still in use, or labels may
    collide. *)

(* Operand constructors *)

val imm : int -> Operand.t
val reg : Reg.t -> Operand.t

val mem : ?base:Reg.t -> ?index:Reg.t * Operand.scale -> ?sym:string -> int -> Operand.t
val mem_sym : string -> Operand.t
(** Absolute reference to a data symbol. *)

(* Instruction helpers; names follow AT&T mnemonics (src before dst). *)

val movl : t -> Operand.t -> Operand.t -> unit
val movw : t -> Operand.t -> Operand.t -> unit
val movb : t -> Operand.t -> Operand.t -> unit
val movzxb : t -> Operand.t -> Reg.t -> unit
val movzxw : t -> Operand.t -> Reg.t -> unit
val leal : t -> Operand.mem -> Reg.t -> unit
val addl : t -> Operand.t -> Operand.t -> unit
val subl : t -> Operand.t -> Operand.t -> unit
val andl : t -> Operand.t -> Operand.t -> unit
val orl : t -> Operand.t -> Operand.t -> unit
val xorl : t -> Operand.t -> Operand.t -> unit
val shll : t -> Operand.t -> Operand.t -> unit
val shrl : t -> Operand.t -> Operand.t -> unit
val sarl : t -> Operand.t -> Operand.t -> unit
val cmpl : t -> Operand.t -> Operand.t -> unit
val testl : t -> Operand.t -> Operand.t -> unit
val incl : t -> Operand.t -> unit
val decl : t -> Operand.t -> unit
val negl : t -> Operand.t -> unit
val notl : t -> Operand.t -> unit
val imull : t -> Operand.t -> Reg.t -> unit
val pushl : t -> Operand.t -> unit
val popl : t -> Operand.t -> unit
val jmp : t -> string -> unit
val jmp_ind : t -> Operand.t -> unit
val jcc : t -> Cond.t -> string -> unit
val je : t -> string -> unit
val jne : t -> string -> unit
val call : t -> string -> unit
val call_ind : t -> Operand.t -> unit
val ret : t -> unit
val rep_movsb : t -> unit
val rep_movsl : t -> unit
val rep_stosl : t -> unit
val nop : t -> unit
val hlt : t -> unit

(** General-purpose registers of the MISA instruction set.

    MISA is a small x86-flavoured 32-bit instruction set used to represent
    device-driver code so that the TwinDrivers rewriter can transform it.
    The register file mirrors the eight x86 general-purpose registers. *)

type t = EAX | EBX | ECX | EDX | ESI | EDI | EBP | ESP

val all : t list
(** All eight registers, in encoding order. *)

val general : t list
(** Registers usable as scratch by the rewriter: everything except [ESP]
    (the stack pointer is never reallocated; stack-relative accesses are not
    rewritten, as in the paper). *)

val index : t -> int
(** Stable encoding index in [0, 7]. *)

val of_index : int -> t
(** Inverse of [index]. Raises [Invalid_argument] outside [0, 7]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

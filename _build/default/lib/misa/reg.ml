type t = EAX | EBX | ECX | EDX | ESI | EDI | EBP | ESP

let all = [ EAX; EBX; ECX; EDX; ESI; EDI; EBP; ESP ]
let general = [ EAX; EBX; ECX; EDX; ESI; EDI; EBP ]

let index = function
  | EAX -> 0
  | ECX -> 1
  | EDX -> 2
  | EBX -> 3
  | ESP -> 4
  | EBP -> 5
  | ESI -> 6
  | EDI -> 7

let of_index = function
  | 0 -> EAX
  | 1 -> ECX
  | 2 -> EDX
  | 3 -> EBX
  | 4 -> ESP
  | 5 -> EBP
  | 6 -> ESI
  | 7 -> EDI
  | n -> invalid_arg (Printf.sprintf "Reg.of_index: %d" n)

let equal a b = index a = index b
let compare a b = Int.compare (index a) (index b)

let to_string = function
  | EAX -> "eax"
  | EBX -> "ebx"
  | ECX -> "ecx"
  | EDX -> "edx"
  | ESI -> "esi"
  | EDI -> "edi"
  | EBP -> "ebp"
  | ESP -> "esp"

let of_string = function
  | "eax" -> Some EAX
  | "ebx" -> Some EBX
  | "ecx" -> Some ECX
  | "edx" -> Some EDX
  | "esi" -> Some ESI
  | "edi" -> Some EDI
  | "ebp" -> Some EBP
  | "esp" -> Some ESP
  | _ -> None

let pp fmt r = Format.fprintf fmt "%%%s" (to_string r)

(** Parser for the textual (AT&T-flavoured) form of MISA assembly.

    The accepted grammar is the one produced by {!Insn.pp} /
    {!Program.pp_source}, so printing and re-parsing a program round-trips.
    This models the paper's flow of compiling a driver to an assembly file
    that the rewriting tool consumes. *)

exception Syntax_error of int * string
(** [(line_number, message)] *)

val parse_operand : string -> Operand.t
(** Parse a single operand. Raises {!Syntax_error} with line 0. *)

val parse_line : int -> string -> Program.item option
(** Parse one line; [None] for blank/comment lines. *)

val parse : name:string -> string -> Program.source
(** Parse a whole program from text. *)

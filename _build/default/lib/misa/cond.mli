(** Condition codes for conditional jumps, in x86 nomenclature. *)

type t =
  | E   (** equal / zero *)
  | NE  (** not equal / not zero *)
  | L   (** signed less *)
  | LE  (** signed less-or-equal *)
  | G   (** signed greater *)
  | GE  (** signed greater-or-equal *)
  | B   (** unsigned below *)
  | BE  (** unsigned below-or-equal *)
  | A   (** unsigned above *)
  | AE  (** unsigned above-or-equal *)
  | S   (** sign (negative) *)
  | NS  (** not sign *)

val negate : t -> t
(** Logical negation, e.g. [negate E = NE]. *)

val to_string : t -> string
val of_string : string -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

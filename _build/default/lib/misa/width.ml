type t = W8 | W16 | W32

let bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4
let mask = function W8 -> 0xff | W16 -> 0xffff | W32 -> 0xffffffff
let sign_bit = function W8 -> 0x80 | W16 -> 0x8000 | W32 -> 0x80000000
let suffix = function W8 -> "b" | W16 -> "w" | W32 -> "l"

let of_suffix = function
  | "b" -> Some W8
  | "w" -> Some W16
  | "l" -> Some W32
  | _ -> None

let equal a b = bytes a = bytes b
let pp fmt w = Format.pp_print_string fmt (suffix w)

(** Disassembler: the inverse of {!Encode}.

    Reconstructs rewritable {!Program.source} from a driver binary. Code
    addresses inside the program's own range become fresh local labels
    ([.L_<index>]); addresses outside the range (support-routine
    bindings, other blobs) stay absolute. The result feeds
    {!Td_rewriter} exactly like compiler-produced assembly does — the
    paper's "disassemble the VM driver binary" path. *)

exception Malformed of string

val decode : ?name:string -> bytes -> Program.source * int
(** [(source, base)] — the original load address is returned so the twin
    can be placed at the paper's constant code offset from it. *)

val roundtrips : Program.t -> bool
(** Debug helper: encode then decode and compare instruction-for-
    instruction (modulo label naming and immediate sign width). *)

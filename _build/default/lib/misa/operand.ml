type scale = S1 | S2 | S4 | S8

let scale_factor = function S1 -> 1 | S2 -> 2 | S4 -> 4 | S8 -> 8

let scale_of_int = function
  | 1 -> Some S1
  | 2 -> Some S2
  | 4 -> Some S4
  | 8 -> Some S8
  | _ -> None

type mem = {
  base : Reg.t option;
  index : (Reg.t * scale) option;
  disp : int;
  sym : string option;
}

type t = Imm of int | Reg of Reg.t | Mem of mem

let mem ?base ?index ?sym disp = { base; index; disp; sym }
let mem_abs disp = { base = None; index = None; disp; sym = None }
let is_mem = function Mem _ -> true | Imm _ | Reg _ -> false

let is_stack_relative m =
  match (m.base, m.index) with
  | Some (Reg.ESP | Reg.EBP), None -> true
  | _, _ -> false

let regs_addr m =
  let base = match m.base with Some r -> [ r ] | None -> [] in
  let index = match m.index with Some (r, _) -> [ r ] | None -> [] in
  base @ index

let regs_read = function
  | Imm _ -> []
  | Reg r -> [ r ]
  | Mem m -> regs_addr m

let equal_mem a b =
  a.disp = b.disp && a.sym = b.sym
  && Option.equal Reg.equal a.base b.base
  && Option.equal
       (fun (r1, s1) (r2, s2) -> Reg.equal r1 r2 && s1 = s2)
       a.index b.index

let equal a b =
  match (a, b) with
  | Imm x, Imm y -> x = y
  | Reg x, Reg y -> Reg.equal x y
  | Mem x, Mem y -> equal_mem x y
  | (Imm _ | Reg _ | Mem _), _ -> false

let pp_mem fmt m =
  let pp_disp fmt =
    match (m.sym, m.disp) with
    | None, d -> Format.fprintf fmt "%d" d
    | Some s, 0 -> Format.fprintf fmt "%s" s
    | Some s, d -> Format.fprintf fmt "%d+%s" d s
  in
  match (m.base, m.index) with
  | None, None -> pp_disp fmt
  | Some b, None -> Format.fprintf fmt "%t(%a)" pp_disp Reg.pp b
  | None, Some (i, s) ->
      Format.fprintf fmt "%t(,%a,%d)" pp_disp Reg.pp i (scale_factor s)
  | Some b, Some (i, s) ->
      Format.fprintf fmt "%t(%a,%a,%d)" pp_disp Reg.pp b Reg.pp i
        (scale_factor s)

let pp fmt = function
  | Imm i -> Format.fprintf fmt "$%d" i
  | Reg r -> Reg.pp fmt r
  | Mem m -> pp_mem fmt m

(** Instruction operands: immediates, registers and memory references.

    Memory references use the x86 addressing form
    [disp(base, index, scale)], i.e. address = [disp + base + index*scale].
    The displacement may additionally name a symbol; symbols are resolved to
    absolute addresses when a program is assembled (this models the ELF
    relocation step of the paper's loader). *)

type scale = S1 | S2 | S4 | S8

val scale_factor : scale -> int
val scale_of_int : int -> scale option

type mem = {
  base : Reg.t option;
  index : (Reg.t * scale) option;
  disp : int;
  sym : string option;  (** symbolic part of the displacement, if any *)
}

type t = Imm of int | Reg of Reg.t | Mem of mem

val mem : ?base:Reg.t -> ?index:Reg.t * scale -> ?sym:string -> int -> mem
(** [mem ?base ?index ?sym disp] builds a memory reference. *)

val mem_abs : int -> mem
(** Absolute address with no registers. *)

val is_mem : t -> bool
val is_stack_relative : mem -> bool
(** True when the reference is based on [ESP] or [EBP] with no index
    register — such references address the private stack and are exempt
    from SVM rewriting, exactly as in the paper. *)

val regs_read : t -> Reg.t list
(** Registers whose value is consumed when the operand is evaluated as a
    source ([Mem] address registers, or the register itself). *)

val regs_addr : mem -> Reg.t list
(** Registers used to form a memory address. *)

val equal : t -> t -> bool
val pp_mem : Format.formatter -> mem -> unit
val pp : Format.formatter -> t -> unit

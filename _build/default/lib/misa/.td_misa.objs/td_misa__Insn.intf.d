lib/misa/insn.mli: Cond Format Operand Reg Width

lib/misa/builder.ml: Cond Insn List Operand Printf Program Width

lib/misa/program.ml: Array Format Hashtbl Insn List Operand Printf

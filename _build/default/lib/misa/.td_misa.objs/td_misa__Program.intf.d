lib/misa/program.mli: Format Hashtbl Insn

lib/misa/encode.mli: Program

lib/misa/parser.ml: Buffer Cond Insn List Operand Option Program Reg String Width

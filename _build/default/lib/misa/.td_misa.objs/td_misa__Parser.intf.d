lib/misa/parser.mli: Operand Program

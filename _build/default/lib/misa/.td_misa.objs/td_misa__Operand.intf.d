lib/misa/operand.mli: Format Reg

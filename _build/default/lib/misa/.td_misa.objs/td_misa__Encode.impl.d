lib/misa/encode.ml: Array Buffer Bytes Char Cond Insn Operand Program Reg Width

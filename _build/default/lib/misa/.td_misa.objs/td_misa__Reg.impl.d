lib/misa/reg.ml: Format Int Printf

lib/misa/decode.ml: Array Bytes Char Cond Encode Hashtbl Insn List Operand Printf Program Reg Width

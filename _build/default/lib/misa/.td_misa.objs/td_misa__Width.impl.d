lib/misa/width.ml: Format

lib/misa/cond.ml: Format

lib/misa/builder.mli: Cond Insn Operand Program Reg

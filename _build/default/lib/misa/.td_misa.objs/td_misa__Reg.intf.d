lib/misa/reg.mli: Format

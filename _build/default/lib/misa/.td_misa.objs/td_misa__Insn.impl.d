lib/misa/insn.ml: Cond Format List Operand Reg Width

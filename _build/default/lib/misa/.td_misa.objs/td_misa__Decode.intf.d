lib/misa/decode.mli: Program

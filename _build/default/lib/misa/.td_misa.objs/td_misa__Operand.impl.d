lib/misa/operand.ml: Format Option Reg

lib/misa/cond.mli: Format

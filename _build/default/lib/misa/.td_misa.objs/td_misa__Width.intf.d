lib/misa/width.mli: Format

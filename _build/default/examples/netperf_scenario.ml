(* The paper's netperf-like microbenchmark (§6.2): maximum TCP streaming
   throughput over five gigabit NICs, in any of the four configurations.

   Run with:
     dune exec examples/netperf_scenario.exe            # all configurations
     dune exec examples/netperf_scenario.exe -- twin    # just one
     dune exec examples/netperf_scenario.exe -- twin rx # receive side *)

open Twindrivers

let run direction cfg =
  let w = World.create ~nics:5 cfg in
  let result =
    match direction with
    | `Tx -> Measure.run_transmit ~packets:800 w
    | `Rx -> Measure.run_receive ~packets:800 w
  in
  Format.printf "%s %a@."
    (match direction with `Tx -> "TX" | `Rx -> "RX")
    Measure.pp_result result;
  Format.printf "   %a@." Measure.pp_breakdown result;
  result

let () =
  let args = Array.to_list Sys.argv in
  let configs =
    match List.filter_map Config.of_string args with
    | [] -> Config.all
    | picked -> picked
  in
  let directions =
    if List.mem "rx" args then [ `Rx ]
    else if List.mem "tx" args then [ `Tx ]
    else [ `Tx; `Rx ]
  in
  let results =
    List.concat_map
      (fun d -> List.map (fun c -> (d, c, run d c)) configs)
      directions
  in
  (* headline comparison when we have both ends *)
  let find d c =
    List.find_opt (fun (d', c', _) -> d = d' && c = c') results
    |> Option.map (fun (_, _, r) -> r)
  in
  match (find `Tx Config.Xen_twin, find `Tx Config.Xen_domU) with
  | Some twin, Some domu ->
      Format.printf
        "@.TwinDrivers transmit speedup over the unoptimised guest: %.2fx \
         (the paper reports 2.4x)@."
        (Measure.speedup twin domu)
  | _ -> ()

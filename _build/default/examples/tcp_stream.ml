(* A TCP stream carried end-to-end through the simulated machine: the
   server endpoint's segments ride real frames down the full TwinDrivers
   transmit path (paravirtual driver -> hypervisor driver -> NIC -> wire)
   and the client's ACKs come back up the receive path (NIC -> hypervisor
   driver -> MAC demux -> guest) — the netperf workload made literal.

   Run with: dune exec examples/tcp_stream.exe *)

open Twindrivers

let () =
  let w = World.create ~nics:1 Config.Xen_twin in
  (* endpoints hand their segments to relay queues; the main loop moves
     each segment through the simulated machine *)
  let server_out = Queue.create () and client_out = Queue.create () in
  let server =
    Td_net.Tcp_lite.create ~send:(fun seg -> Queue.push seg server_out) ()
  in
  let client =
    Td_net.Tcp_lite.create ~send:(fun seg -> Queue.push seg client_out) ()
  in
  Td_net.Tcp_lite.listen client;
  Td_net.Tcp_lite.connect server;
  let payload = String.init 200_000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  Td_net.Tcp_lite.write server payload;
  Td_net.Tcp_lite.close server;

  let rounds = ref 0 and continue = ref true in
  while !continue && !rounds < 2_000 do
    incr rounds;
    let moved = ref false in
    (* server -> NIC -> wire -> client *)
    while not (Queue.is_empty server_out) do
      moved := true;
      let seg = Queue.pop server_out in
      ignore
        (World.transmit w ~nic:0
           ~payload:(Td_net.Tcp_lite.encode_segment seg));
      Td_net.Tcp_lite.on_segment client seg
    done;
    World.pump w;
    (* client -> wire -> NIC -> hypervisor driver -> guest -> server *)
    while not (Queue.is_empty client_out) do
      moved := true;
      World.inject_rx w ~nic:0
        ~payload:(Td_net.Tcp_lite.encode_segment (Queue.pop client_out));
      World.pump w;
      match Option.bind (World.rx_last_payload w) Td_net.Tcp_lite.decode_segment with
      | Some seg -> Td_net.Tcp_lite.on_segment server seg
      | None -> ()
    done;
    Td_net.Tcp_lite.tick server;
    Td_net.Tcp_lite.tick client;
    if
      (not !moved)
      && Td_net.Tcp_lite.bytes_in_flight server = 0
      && Td_net.Tcp_lite.state server = Td_net.Tcp_lite.Time_wait
    then continue := false
  done;

  let received = Td_net.Tcp_lite.read client in
  Format.printf
    "streamed %d bytes over TCP through the TwinDrivers data path@."
    (String.length received);
  Format.printf "  payload intact: %b@." (received = payload);
  Format.printf "  segments sent: %d (%d retransmits); frames on the wire: %d@."
    (Td_net.Tcp_lite.segments_sent server)
    (Td_net.Tcp_lite.retransmissions server)
    (World.wire_tx_frames w);
  let l = World.ledger w in
  Format.printf "  cycles burned: %d (driver: %d)@."
    (Td_xen.Ledger.grand_total l)
    (Td_xen.Ledger.total l Td_xen.Ledger.Driver)

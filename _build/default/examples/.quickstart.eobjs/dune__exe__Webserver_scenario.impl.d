examples/webserver_scenario.ml: Array Config Format List Measure Sys Td_cpu Td_net Td_nic Twindrivers World

examples/housekeeping.mli:

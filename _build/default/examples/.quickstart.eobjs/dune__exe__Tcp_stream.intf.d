examples/tcp_stream.mli:

examples/netperf_scenario.ml: Array Config Format List Measure Option Sys Twindrivers World

examples/fault_injection.ml: Addr_space Code_registry Format Interp Layout Native Phys_mem Program Reg State Td_cpu Td_mem Td_misa Td_rewriter Td_svm Width

examples/tcp_stream.ml: Char Config Format Option Queue String Td_net Td_xen Twindrivers World

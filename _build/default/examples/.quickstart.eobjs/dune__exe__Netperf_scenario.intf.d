examples/netperf_scenario.mli:

examples/quickstart.ml: Addr_space Code_registry Format Interp Layout List Native Phys_mem Program Reg State String Td_cpu Td_mem Td_misa Td_rewriter Td_svm Width

examples/webserver_scenario.mli:

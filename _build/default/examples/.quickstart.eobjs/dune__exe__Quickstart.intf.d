examples/quickstart.mli:

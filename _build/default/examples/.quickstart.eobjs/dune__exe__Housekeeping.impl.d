examples/housekeeping.ml: Array Config List Printf String Td_driver Td_kernel Twindrivers World

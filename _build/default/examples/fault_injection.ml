(* Fault injection: the safety story of §4.5 made concrete.

   Three buggy "drivers" are derived and loaded into the hypervisor; SVM
   and the watchdog contain each fault while the hypervisor — and the
   healthy production driver next to them — keep running.

   Run with: dune exec examples/fault_injection.exe *)

open Td_misa
open Td_mem
open Td_cpu

let wild_write_driver =
  {|
evil_entry:
    movl 4(%esp), %ecx        # attacker-controlled pointer
    movl $0xdeadbeef, 0(%ecx) # scribble through it
    xorl %eax, %eax
    ret
|}

let hyp_reader_driver =
  {|
snoop_entry:
    movl 4(%esp), %ecx
    movl 0(%ecx), %eax        # try to *read* hypervisor memory
    ret
|}

let runaway_driver =
  {|
spin_entry:
spin_forever:
    jmp spin_forever
|}

type rig = {
  dom0 : Addr_space.t;
  registry : Code_registry.t;
  natives : Native.t;
  svm : Td_svm.Runtime.t;
  symbols : Td_rewriter.Loader.symtab;
  cpu : State.t;
  mutable next_base : int;
}

let make_rig () =
  let phys = Phys_mem.create () in
  let dom0 = Addr_space.create ~name:"dom0" phys in
  Addr_space.heap_init dom0 ~base:Layout.dom0_heap_base
    ~limit:Layout.dom0_heap_limit;
  let xen = Addr_space.create ~name:"xen" phys in
  Addr_space.alloc_region xen
    ~vaddr:(Layout.hyp_stack_top - (Layout.hyp_stack_pages * Layout.page_size))
    ~pages:Layout.hyp_stack_pages;
  Addr_space.alloc_region xen ~vaddr:Layout.hyp_scratch_base ~pages:1;
  let natives = Native.create () in
  let svm = Td_svm.Runtime.create_hypervisor ~dom0 ~hyp:xen () in
  Td_svm.Runtime.register_natives svm natives;
  let symbols =
    Td_rewriter.Loader.svm_symbols ~runtime:svm ~natives
      ~stlb_vaddr:Layout.stlb_base ~scratch_vaddr:Layout.hyp_scratch_base
  in
  let cpu = State.create ~hyp_space:xen dom0 in
  State.set cpu Reg.ESP Layout.hyp_stack_top;
  {
    dom0;
    registry = Code_registry.create ();
    natives;
    svm;
    symbols;
    cpu;
    next_base = Layout.hyp_driver_code_base;
  }

let load rig ~name text =
  let twin = Td_rewriter.Twin.derive_text ~name text in
  let prog =
    Td_rewriter.Loader.load ~name
      ~source:twin.Td_rewriter.Twin.rewritten ~base:rig.next_base
      ~symbols:rig.symbols ~registry:rig.registry
  in
  rig.next_base <- rig.next_base + Program.size_bytes prog + 256;
  prog

let call rig prog label args =
  State.set rig.cpu Reg.ESP Layout.hyp_stack_top;
  let interp = Interp.create rig.cpu rig.registry rig.natives in
  Interp.call ~max_steps:50_000 interp
    ~entry:(Program.addr_of_label prog label)
    ~args

let () =
  let rig = make_rig () in
  let evil = load rig ~name:"evil" wild_write_driver in
  let snoop = load rig ~name:"snoop" hyp_reader_driver in
  let spin = load rig ~name:"spin" runaway_driver in

  (* a healthy data structure the faults must not reach *)
  let secret = Layout.stlb_base + 0x100 in
  let canary = Addr_space.heap_alloc rig.dom0 16 in
  Addr_space.write rig.dom0 canary Width.W32 0x600DCAFE;

  print_endline "== fault 1: wild WRITE into hypervisor memory (stlb) ==";
  (match call rig evil "evil_entry" [ secret ] with
  | exception Td_svm.Runtime.Fault { addr; reason } ->
      Format.printf "contained: fault at 0x%x (%s)@." addr reason
  | _ -> print_endline "NOT CONTAINED!");

  print_endline "\n== fault 2: wild READ of hypervisor memory ==";
  (match call rig snoop "snoop_entry" [ Layout.hyp_stack_top - 64 ] with
  | exception Td_svm.Runtime.Fault { addr; _ } ->
      Format.printf "contained: driver cannot even read 0x%x@." addr
  | v -> Format.printf "NOT CONTAINED: leaked %d@." v);

  print_endline "\n== fault 3: runaway driver (infinite loop) ==";
  (match call rig spin "spin_entry" [] with
  | exception Interp.Timeout steps ->
      Format.printf "contained: watchdog killed it after %d steps (§4.5.2)@."
        steps
  | _ -> print_endline "NOT CONTAINED!");

  print_endline "\n== fault 4: guest memory is protected too ==";
  (match call rig evil "evil_entry" [ Layout.guest_heap_base ] with
  | exception Td_svm.Runtime.Fault { addr; _ } ->
      Format.printf "contained: other domains unreachable (0x%x)@." addr
  | _ -> print_endline "NOT CONTAINED!");

  (* the same buggy driver with a VALID dom0 pointer just works: the
     protection is precise, not a blanket ban *)
  print_endline "\n== and with a valid dom0 pointer, the write goes through ==";
  ignore (call rig evil "evil_entry" [ canary + 4 ]);
  Format.printf "dom0 word written: 0x%x; canary untouched: 0x%x@."
    (Addr_space.read rig.dom0 (canary + 4) Width.W32)
    (Addr_space.read rig.dom0 canary Width.W32);
  Format.printf "SVM statistics: %d faults contained, %d pages mapped@."
    (Td_svm.Runtime.faults rig.svm)
    (Td_svm.Runtime.pages_mapped rig.svm)

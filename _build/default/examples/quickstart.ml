(* Quickstart: the TwinDrivers pipeline on a toy driver, end to end.

   1. Write a small "driver" in (textual) assembly.
   2. Derive the hypervisor twin with the binary rewriter.
   3. Load the twin into the simulated hypervisor and run it from a guest
      context — its data stays in dom0, reached through SVM.
   4. Watch the safety net catch a wild pointer.

   Run with: dune exec examples/quickstart.exe *)

open Td_misa
open Td_mem
open Td_cpu

let driver_text =
  {|
# a toy 'driver': counts invocations and sums a buffer in its device state
driver_poll:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %ebx        # ebx = device state (in dom0 memory)
    incl 0(%ebx)              # state->invocations++
    xorl %eax, %eax
    xorl %ecx, %ecx
poll_loop:
    addl 8(%ebx,%ecx,4), %eax # sum state->samples[i]
    incl %ecx
    cmpl $8, %ecx
    jne poll_loop
    movl %eax, 4(%ebx)        # state->last_sum
    popl %ebp
    ret
|}

let () =
  print_endline "== 1. the guest OS driver (as the rewriting tool sees it) ==";
  print_string driver_text;

  (* -- derive the twin -- *)
  let twin = Td_rewriter.Twin.derive_text ~name:"toy" driver_text in
  let stats = twin.Td_rewriter.Twin.stats in
  Format.printf "\n== 2. derived hypervisor driver ==@.%a@.@."
    Td_rewriter.Rewrite.pp_stats stats;
  print_endline "first lines of the rewritten assembly (note the stlb probe):";
  Td_rewriter.Twin.rewritten_text twin
  |> String.split_on_char '\n'
  |> List.filteri (fun i _ -> i < 18)
  |> List.iter print_endline;

  (* -- build a machine: dom0 + hypervisor + a guest -- *)
  let phys = Phys_mem.create () in
  let dom0 = Addr_space.create ~name:"dom0" phys in
  Addr_space.heap_init dom0 ~base:Layout.dom0_heap_base
    ~limit:Layout.dom0_heap_limit;
  let xen = Addr_space.create ~name:"xen" phys in
  Addr_space.alloc_region xen
    ~vaddr:(Layout.hyp_stack_top - (Layout.hyp_stack_pages * Layout.page_size))
    ~pages:Layout.hyp_stack_pages;
  Addr_space.alloc_region xen ~vaddr:Layout.hyp_scratch_base ~pages:1;
  let guest = Addr_space.create ~name:"guest" phys in
  let natives = Native.create () in
  let registry = Code_registry.create () in

  (* driver state lives in dom0, like all TwinDrivers data *)
  let state_addr = Addr_space.heap_alloc dom0 64 in
  for i = 0 to 7 do
    Addr_space.write dom0 (state_addr + 8 + (4 * i)) Width.W32 (10 * (i + 1))
  done;

  (* SVM runtime + loader, hypervisor instance *)
  let svm = Td_svm.Runtime.create_hypervisor ~dom0 ~hyp:xen () in
  Td_svm.Runtime.register_natives svm natives;
  let symbols =
    Td_rewriter.Loader.svm_symbols ~runtime:svm ~natives
      ~stlb_vaddr:Layout.stlb_base ~scratch_vaddr:Layout.hyp_scratch_base
  in
  let prog =
    Td_rewriter.Loader.load ~name:"toy.hyp"
      ~source:twin.Td_rewriter.Twin.rewritten
      ~base:Layout.hyp_driver_code_base ~symbols ~registry
  in

  (* -- run from the guest's context: no domain switch, data via SVM -- *)
  let cpu = State.create ~hyp_space:xen guest in
  State.set cpu Reg.ESP Layout.hyp_stack_top;
  let interp = Interp.create cpu registry natives in
  let entry = Program.addr_of_label prog "driver_poll" in
  let sum = Interp.call interp ~entry ~args:[ state_addr ] in
  Format.printf
    "\n== 3. ran in the hypervisor from a guest context ==@.\
     sum of samples: %d (expected %d)@.\
     invocations recorded in dom0 memory: %d@.\
     stlb slow-path entries: %d; dom0 pages mapped: %d@.@."
    sum
    (10 * 8 * 9 / 2)
    (Addr_space.read dom0 state_addr Width.W32)
    (Td_svm.Runtime.misses svm)
    (Td_svm.Runtime.pages_mapped svm);

  (* -- safety: a wild pointer is caught, the hypervisor survives -- *)
  print_endline "== 4. safety: calling the driver with a hypervisor address ==";
  (match Interp.call interp ~entry ~args:[ Layout.stlb_base ] with
  | exception Td_svm.Runtime.Fault { addr; reason } ->
      Format.printf
        "driver aborted: SVM fault at 0x%x (%s) — the hypervisor is intact@."
        addr reason
  | _ -> print_endline "UNEXPECTED: the wild access went through!");
  let sum2 = Interp.call interp ~entry ~args:[ state_addr ] in
  Format.printf "the (re)loaded driver still works after the abort: sum=%d@."
    sum2

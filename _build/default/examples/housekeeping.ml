(* The central design split of §3.1, live: while the HYPERVISOR instance
   moves packets on the fast path, the VM instance keeps running in dom0
   for everything else — watchdog timers, statistics collection,
   ethtool-like reconfiguration — so the hypervisor interface stays just
   transmit/receive and no user-space tool needs porting.

   Run with: dune exec examples/housekeeping.exe *)

open Twindrivers

let () =
  let w = World.create ~nics:1 Config.Xen_twin in
  let sup = World.support w in
  let payload = String.make 1500 'd' in

  print_endline "== interleaving data path (hypervisor) and housekeeping (dom0) ==";
  for second = 1 to 3 do
    (* a burst of traffic through the hypervisor instance *)
    for i = 1 to 100 do
      ignore (World.transmit w ~nic:0 ~payload);
      World.inject_rx w ~nic:0 ~payload;
      if i mod 8 = 0 then World.pump w
    done;
    World.pump w;
    (* the dom0 kernel's timers fire; the watchdog runs on the VM instance *)
    for _ = 1 to 10 do
      World.tick w
    done;
    Printf.printf "t=%ds: %d frames out, %d in; watchdog ran %d times\n"
      second (World.wire_tx_frames w)
      (World.delivered_rx_frames w)
      (Td_driver.Adapter.watchdog_runs (World.adapter w ~nic:0))
  done;

  print_endline "\n== an ethtool-like reconfiguration, mid-traffic ==";
  World.run_set_mtu w ~nic:0 ~mtu:1200;
  Printf.printf "MTU now %d (changed by the VM instance in dom0)\n"
    (Td_kernel.Netdev.mtu (World.netdev w ~nic:0));
  ignore (World.transmit w ~nic:0 ~payload:(String.make 900 'x'));
  World.pump w;
  print_endline "traffic continues through the hypervisor instance";

  print_endline "\n== who called what, where ==";
  let show name =
    Printf.printf "  %-24s hypervisor:%6d   dom0:%6d   upcalls:%d\n" name
      (Td_kernel.Support.hyp_calls sup name)
      (Td_kernel.Support.dom0_calls sup name)
      (Td_kernel.Support.upcalls sup name)
  in
  List.iter show
    [ "dma_map_single"; "netif_rx"; "spin_trylock";    (* fast path *)
      "mod_timer"; "netif_stop_queue"; "msleep" ]      (* housekeeping *)
  ;
  Printf.printf
    "\nfast-path work runs natively in the hypervisor; configuration and \
     timer work never leaves dom0 — and with all ten Table-1 routines \
     native, the upcall column stays zero (%d total upcalls).\n"
    (Td_kernel.Support.total_upcalls sup);

  (* read the statistics the way ethtool would: through the driver *)
  let stats = World.read_stats w ~nic:0 in
  Printf.printf
    "\ndriver statistics (via e1000_get_stats, a rep-movs string copy):\n\
    \  tx %d packets / %d bytes; rx %d packets / %d bytes\n"
    stats.(0) stats.(1) stats.(2) stats.(3)

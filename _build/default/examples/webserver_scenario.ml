(* The paper's web-server workload (§6.3): a knot-like server serving the
   SPECweb99 static file set, loaded by an httperf-like open-loop client.

   Run with:
     dune exec examples/webserver_scenario.exe
     dune exec examples/webserver_scenario.exe -- twin 9000   # one config/rate *)

open Twindrivers

let () =
  let args = Array.to_list Sys.argv in
  let configs =
    match List.filter_map Config.of_string args with
    | [] -> Config.all
    | picked -> picked
  in
  let rates =
    match List.filter_map int_of_string_opt args with
    | [] -> [ 2000.; 4000.; 6000.; 8000.; 12000.; 16000. ]
    | picked -> List.map float_of_int picked
  in
  Format.printf
    "file set: SPECweb99 static classes, mean response %.1f KB@.@."
    (Td_net.Specweb.mean_bytes /. 1024.);
  List.iter
    (fun cfg ->
      (* per-packet costs measured on this configuration feed the server
         model, so the web results inherit its network efficiency *)
      let tx = Measure.run_transmit ~packets:300 (World.create ~nics:5 cfg) in
      let rx = Measure.run_receive ~packets:300 (World.create ~nics:5 cfg) in
      let costs =
        {
          Td_net.Webserver.tx_cycles_per_packet = tx.Measure.cycles_per_packet;
          rx_cycles_per_packet = rx.Measure.cycles_per_packet;
          app_cycles_per_request = Td_net.Webserver.default_app_cycles;
          frequency_hz = float_of_int Td_cpu.Cost_model.frequency_hz;
          mss = 1448;
          wire_limit_mbps = Td_nic.Wire.wire_limit_mbps ~packet_bytes:1514 ~nics:1;
        }
      in
      Format.printf "%-10s" (Config.name cfg);
      List.iter
        (fun rate ->
          let o =
            Td_net.Webserver.run costs
              {
                Td_net.Webserver.request_rate = rate;
                requests = max 2000 (int_of_float (rate *. 2.5));
                timeout_s = 1.0;
                seed = 7;
              }
          in
          Format.printf " %6.0f req/s -> %4.0f Mb/s (%d late)" rate
            o.Td_net.Webserver.response_mbps o.Td_net.Webserver.timed_out)
        rates;
      Format.printf "@.")
    configs

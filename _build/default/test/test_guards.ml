(* Tests for the §4.5 extensions: static verification at rewriting time
   and control-flow integrity on returns. *)

open Td_misa
open Td_rewriter

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

let src_of f =
  let b = Builder.create "t" in
  f b;
  Builder.finish b

(* --- verifier --- *)

let test_verifier_clean_driver () =
  check bool_c "the bundled e1000 driver is admissible" true
    (Verifier.admissible (Td_driver.E1000_driver.source ()))

let test_verifier_rejects_hlt () =
  let src =
    src_of (fun b ->
        Builder.nop b;
        Builder.hlt b)
  in
  let rejects =
    List.filter (fun f -> f.Verifier.severity = Verifier.Reject)
      (Verifier.inspect src)
  in
  check int_c "hlt rejected" 1 (List.length rejects);
  check bool_c "not admissible" false (Verifier.admissible src)

let test_verifier_rejects_wild_stack_frame () =
  let src =
    src_of (fun b ->
        Builder.movl b (Builder.imm 0) (Builder.mem ~base:Reg.ESP 100000);
        Builder.ret b)
  in
  check bool_c "oversized stack displacement rejected" false
    (Verifier.admissible src);
  (* a small frame is fine *)
  let ok =
    src_of (fun b ->
        Builder.movl b (Builder.imm 0) (Builder.mem ~base:Reg.EBP (-64));
        Builder.ret b)
  in
  check bool_c "normal frame fine" true (Verifier.admissible ok)

let test_verifier_warns_indirect_jump () =
  let src =
    src_of (fun b ->
        Builder.jmp_ind b (Builder.reg Reg.EAX))
  in
  let warns =
    List.filter (fun f -> f.Verifier.severity = Verifier.Warn)
      (Verifier.inspect src)
  in
  check bool_c "indirect jump warned" true (warns <> []);
  check bool_c "warning does not reject" true (Verifier.admissible src)

let test_verifier_rejects_hypervisor_transfer () =
  let src =
    Program.source "t"
      [ Program.Ins (Insn.Call (Insn.Abs Td_mem.Layout.stlb_base)) ]
  in
  check bool_c "direct call into hypervisor rejected" false
    (Verifier.admissible src)

let test_derive_enforces_verification () =
  let bad =
    src_of (fun b ->
        Builder.hlt b)
  in
  check bool_c "derive rejects" true
    (match Twin.derive bad with
    | exception Rewrite.Rewrite_error _ -> true
    | _ -> false);
  check bool_c "derive ~verify:false allows" true
    (match Twin.derive ~verify:false bad with _ -> true)

(* --- CFI --- *)

(* build a CFI-instrumented hypervisor incarnation by hand *)
let cfi_world source =
  let m = Harness.make_machine () in
  let twin = Twin.derive ~cfi:true ~verify:false source in
  let rt = Harness.hyp_runtime m in
  let syms =
    Loader.overlay (Harness.hyp_symbols m rt) (fun n ->
        Cfi.symtab m.Harness.natives n)
  in
  let prog =
    (* register CFI for the driver's own range before loading *)
    let count = Program.instruction_count twin.Twin.rewritten in
    Cfi.register m.Harness.natives
      ~code_base:Td_mem.Layout.hyp_driver_code_base ~code_size:(4 * count) ();
    Loader.load ~name:"cfi" ~source:twin.Twin.rewritten
      ~base:Td_mem.Layout.hyp_driver_code_base ~symbols:syms
      ~registry:m.Harness.registry
  in
  let guest = Td_mem.Addr_space.create ~name:"guest" m.Harness.phys in
  let st = Harness.hyp_cpu m ~guest in
  (m, twin, prog, st)

let test_cfi_stats_counted () =
  let source =
    src_of (fun b ->
        Builder.label b "f";
        Builder.ret b;
        Builder.label b "g";
        Builder.ret b)
  in
  let twin = Twin.derive ~cfi:true source in
  check int_c "both returns guarded" 2
    twin.Twin.stats.Rewrite.cfi_sites;
  let plain = Twin.derive source in
  check int_c "no guards by default" 0 plain.Twin.stats.Rewrite.cfi_sites

let test_cfi_benign_calls_pass () =
  (* internal call + return, and return to the host sentinel, both pass *)
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.call b "callee";
        Builder.addl b (Builder.imm 1) (Builder.reg Reg.EAX);
        Builder.ret b;
        Builder.label b "callee";
        Builder.movl b (Builder.imm 41) (Builder.reg Reg.EAX);
        Builder.ret b)
  in
  let m, _, prog, st = cfi_world source in
  let interp = Harness.interp_of m st in
  let r =
    Td_cpu.Interp.call interp ~entry:(Program.addr_of_label prog "entry")
      ~args:[]
  in
  check int_c "computed through guarded returns" 42 r

let test_cfi_catches_smashed_return () =
  (* the classic §4.5.1 bug: a stack write lands on the return address.
     Stack accesses are NOT SVM-translated, so only CFI can catch it. *)
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.movl b (Builder.imm 0x13370000) (Builder.mem ~base:Reg.ESP 0);
        Builder.ret b)
  in
  let m, _, prog, st = cfi_world source in
  let interp = Harness.interp_of m st in
  check bool_c "violation raised before control escapes" true
    (match
       Td_cpu.Interp.call interp
         ~entry:(Program.addr_of_label prog "entry")
         ~args:[]
     with
    | exception Cfi.Violation { target = 0x13370000 } -> true
    | exception Cfi.Violation _ -> true
    | _ -> false)

let test_without_cfi_smash_escapes_differently () =
  (* without CFI the same program rets into the void — contained only by
     the unmapped-code fault, after control has already left the driver *)
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.movl b (Builder.imm 0x13370000) (Builder.mem ~base:Reg.ESP 0);
        Builder.ret b)
  in
  let m = Harness.make_machine () in
  let twin = Twin.derive source in
  let rt = Harness.hyp_runtime m in
  let prog =
    Loader.load ~name:"nocfi" ~source:twin.Twin.rewritten
      ~base:Td_mem.Layout.hyp_driver_code_base
      ~symbols:(Harness.hyp_symbols m rt) ~registry:m.Harness.registry
  in
  let guest = Td_mem.Addr_space.create ~name:"guest" m.Harness.phys in
  let st = Harness.hyp_cpu m ~guest in
  let interp = Harness.interp_of m st in
  check bool_c "escapes to unmapped code" true
    (match
       Td_cpu.Interp.call interp
         ~entry:(Program.addr_of_label prog "entry")
         ~args:[]
     with
    | exception Td_cpu.Interp.Fault _ -> true
    | _ -> false)

let test_cfi_equivalence_preserved () =
  (* guarded programs compute the same results *)
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.movl b (Builder.imm 10) (Builder.mem ~base:Reg.EBX 0);
        Builder.movl b (Builder.mem ~base:Reg.EBX 0) (Builder.reg Reg.EAX);
        Builder.imull b (Builder.reg Reg.EAX) Reg.EAX;
        Builder.ret b)
  in
  let m, _, prog, st = cfi_world source in
  let buf = Td_mem.Addr_space.heap_alloc m.Harness.dom0 64 in
  Td_cpu.State.set st Reg.EBX buf;
  let interp = Harness.interp_of m st in
  let r =
    Td_cpu.Interp.call interp ~entry:(Program.addr_of_label prog "entry")
      ~args:[]
  in
  check int_c "result through SVM + CFI" 100 r

let suite =
  [
    Alcotest.test_case "verifier: clean driver" `Quick test_verifier_clean_driver;
    Alcotest.test_case "verifier: hlt rejected" `Quick test_verifier_rejects_hlt;
    Alcotest.test_case "verifier: wild stack frame" `Quick
      test_verifier_rejects_wild_stack_frame;
    Alcotest.test_case "verifier: indirect jump warns" `Quick
      test_verifier_warns_indirect_jump;
    Alcotest.test_case "verifier: hypervisor transfer" `Quick
      test_verifier_rejects_hypervisor_transfer;
    Alcotest.test_case "derive enforces verification" `Quick
      test_derive_enforces_verification;
    Alcotest.test_case "cfi: stats" `Quick test_cfi_stats_counted;
    Alcotest.test_case "cfi: benign calls pass" `Quick test_cfi_benign_calls_pass;
    Alcotest.test_case "cfi: smashed return caught" `Quick
      test_cfi_catches_smashed_return;
    Alcotest.test_case "no cfi: smash escapes" `Quick
      test_without_cfi_smash_escapes_differently;
    Alcotest.test_case "cfi: equivalence" `Quick test_cfi_equivalence_preserved;
  ]

(* HTTP + knot server tests: parsing, full GET transactions over the
   TCP-lite transport (with loss), SPECweb file validation. *)

open Td_net

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

let test_request_roundtrip () =
  let raw = Http.format_request ~headers:[ ("Host", "server") ] "/class1/file3" in
  match Http.parse_request raw with
  | Some (req, consumed) ->
      check bool_c "method" true (req.Http.meth = "GET");
      check bool_c "path" true (req.Http.path = "/class1/file3");
      check bool_c "version" true (req.Http.version = "HTTP/1.0");
      check bool_c "header (case-insensitive)" true
        (Http.header "host" req.Http.headers = Some "server");
      check int_c "consumed everything" (String.length raw) consumed
  | None -> Alcotest.fail "expected a parse"

let test_request_incremental () =
  let raw = Http.format_request "/x" in
  for i = 0 to String.length raw - 1 do
    check bool_c "incomplete prefix does not parse" true
      (Http.parse_request (String.sub raw 0 i) = None)
  done;
  check bool_c "complete parses" true (Http.parse_request raw <> None)

let test_response_roundtrip () =
  let body = String.init 5000 (fun i -> Char.chr (i land 0xff)) in
  let raw = Http.format_response ~status:200 ~body in
  (match Http.parse_response raw with
  | Some (r, consumed) ->
      check int_c "status" 200 r.Http.status;
      check bool_c "body intact" true (r.Http.body = body);
      check int_c "consumed" (String.length raw) consumed
  | None -> Alcotest.fail "expected a parse");
  (* body split across arrivals: incomplete until the last byte *)
  check bool_c "partial body does not parse" true
    (Http.parse_response (String.sub raw 0 (String.length raw - 1)) = None)

let test_knot_files () =
  (* file sizes follow the SPECweb ladder *)
  List.iter
    (fun (cls, sizes) ->
      Array.iteri
        (fun i expected ->
          check int_c "size" expected
            (String.length (Knot.file_body ~cls ~file:(i + 1))))
        sizes)
    Specweb.file_set;
  check bool_c "deterministic" true
    (Knot.file_body ~cls:2 ~file:4 = Knot.file_body ~cls:2 ~file:4);
  check bool_c "distinct files differ" true
    (Knot.file_body ~cls:2 ~file:4 <> Knot.file_body ~cls:2 ~file:5)

(* one HTTP transaction over a (possibly lossy) TCP pair *)
let fetch ?drop path =
  let qa = Queue.create () and qb = Queue.create () in
  let n = ref 0 in
  let channel q seg =
    incr n;
    match drop with
    | Some f when f !n -> ()
    | _ -> Queue.push seg q
  in
  let client = Tcp_lite.create ~send:(channel qb) () in
  let server_conn = Tcp_lite.create ~send:(channel qa) () in
  let server = Knot.create () in
  Tcp_lite.listen server_conn;
  Tcp_lite.connect client;
  Tcp_lite.write client (Http.format_request path);
  let inbox = Buffer.create 256 in
  let result = ref None in
  let rounds = ref 0 in
  while !result = None && !rounds < 3000 do
    incr rounds;
    while not (Queue.is_empty qb) do
      Tcp_lite.on_segment server_conn (Queue.pop qb)
    done;
    Knot.serve server server_conn;
    while not (Queue.is_empty qa) do
      Tcp_lite.on_segment client (Queue.pop qa)
    done;
    Buffer.add_string inbox (Tcp_lite.read client);
    (match Http.parse_response (Buffer.contents inbox) with
    | Some (r, _) -> result := Some r
    | None -> ());
    Tcp_lite.tick client;
    Tcp_lite.tick server_conn
  done;
  (!result, server)

let test_get_over_tcp () =
  let r, server = fetch "/class1/file5" in
  match r with
  | Some r ->
      check int_c "200" 200 r.Http.status;
      check bool_c "exact file" true (r.Http.body = Knot.file_body ~cls:1 ~file:5);
      check int_c "served" 1 (Knot.requests_served server)
  | None -> Alcotest.fail "no response"

let test_get_large_file_lossy () =
  (* class 3 file 9 = 900 KB-ish over a link dropping every 9th segment *)
  let r, _ = fetch ~drop:(fun n -> n mod 9 = 0) "/class3/file9" in
  match r with
  | Some r ->
      check int_c "200" 200 r.Http.status;
      check bool_c "900KB intact over lossy link" true
        (r.Http.body = Knot.file_body ~cls:3 ~file:9)
  | None -> Alcotest.fail "no response"

let test_404 () =
  let r, server = fetch "/no/such" in
  match r with
  | Some r ->
      check int_c "404" 404 r.Http.status;
      check int_c "missing counted" 1 (Knot.not_found server)
  | None -> Alcotest.fail "no response"

let test_bad_method () =
  let qa = Queue.create () and qb = Queue.create () in
  let client = Tcp_lite.create ~send:(fun s -> Queue.push s qb) () in
  let server_conn = Tcp_lite.create ~send:(fun s -> Queue.push s qa) () in
  let server = Knot.create () in
  Tcp_lite.listen server_conn;
  Tcp_lite.connect client;
  Tcp_lite.write client "DELETE /class0/file1 HTTP/1.0\r\n\r\n";
  let inbox = Buffer.create 64 in
  for _ = 1 to 40 do
    while not (Queue.is_empty qb) do
      Tcp_lite.on_segment server_conn (Queue.pop qb)
    done;
    Knot.serve server server_conn;
    while not (Queue.is_empty qa) do
      Tcp_lite.on_segment client (Queue.pop qa)
    done;
    Buffer.add_string inbox (Tcp_lite.read client);
    Tcp_lite.tick client;
    Tcp_lite.tick server_conn
  done;
  match Http.parse_response (Buffer.contents inbox) with
  | Some (r, _) -> check int_c "400" 400 r.Http.status
  | None -> Alcotest.fail "no response"

let fetch_prop =
  QCheck.Test.make ~name:"every specweb file fetches intact over loss"
    ~count:12
    QCheck.(
      make
        Gen.(triple (int_range 0 3) (int_range 1 9) (int_range 5 40))
        ~print:(fun (c, f, d) -> Printf.sprintf "class%d/file%d drop=1/%d" c f d))
    (fun (cls, file, drop_mod) ->
      let rng = Rng.create ~seed:(cls + (file * 17) + drop_mod) in
      let r, _ =
        fetch
          ~drop:(fun _ -> Rng.int rng drop_mod = 0)
          (Knot.file_path ~cls ~file)
      in
      match r with
      | Some r -> r.Http.status = 200 && r.Http.body = Knot.file_body ~cls ~file
      | None -> false)

let test_httperf_batch () =
  let o = Httperf.run ~seed:5 ~requests:40 () in
  check int_c "all completed" 40 o.Httperf.completed;
  check int_c "none failed" 0 o.Httperf.failed;
  check bool_c "all 200s" true (o.Httperf.by_status = [ (200, 40) ]);
  check bool_c "bytes plausible for specweb sampling" true
    (o.Httperf.bytes > 40 * 100)

let test_httperf_with_loss () =
  let rng = Rng.create ~seed:99 in
  let o =
    Httperf.run ~seed:6 ~drop:(fun _ -> Rng.int rng 12 = 0) ~requests:25 ()
  in
  check int_c "loss does not lose transactions" 25 o.Httperf.completed

let suite =
  [
    Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
    Alcotest.test_case "request incremental" `Quick test_request_incremental;
    Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
    Alcotest.test_case "knot files" `Quick test_knot_files;
    Alcotest.test_case "GET over tcp" `Quick test_get_over_tcp;
    Alcotest.test_case "large file over lossy link" `Quick
      test_get_large_file_lossy;
    Alcotest.test_case "404" `Quick test_404;
    Alcotest.test_case "bad method" `Quick test_bad_method;
    QCheck_alcotest.to_alcotest fetch_prop;
    Alcotest.test_case "httperf batch" `Quick test_httperf_batch;
    Alcotest.test_case "httperf with loss" `Quick test_httperf_with_loss;
  ]

(* Tests for the binary encode/disassemble path (§5.1's alternative to
   compiling the driver to assembly). *)

open Td_misa

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

let assemble_driver () =
  Program.assemble
    ~symbols:(fun _ -> Some Td_mem.Layout.native_base)
    ~base:Td_mem.Layout.vm_driver_code_base
    (Td_driver.E1000_driver.source ())

let test_header () =
  let prog = assemble_driver () in
  let b = Encode.encode prog in
  check bool_c "magic" true (Bytes.sub_string b 0 4 = Encode.magic);
  let src, base = Decode.decode b in
  check int_c "base preserved" Td_mem.Layout.vm_driver_code_base base;
  check int_c "instruction count preserved"
    (Array.length prog.Program.code)
    (Program.instruction_count src)

let test_malformed_rejected () =
  let reject b =
    match Decode.decode b with
    | exception Decode.Malformed _ -> true
    | _ -> false
  in
  check bool_c "short" true (reject (Bytes.create 3));
  check bool_c "bad magic" true (reject (Bytes.make 20 'x'));
  let prog = assemble_driver () in
  let good = Encode.encode prog in
  let truncated = Bytes.sub good 0 (Bytes.length good - 5) in
  check bool_c "truncated" true (reject truncated);
  let trailing = Bytes.cat good (Bytes.of_string "junk") in
  check bool_c "trailing bytes" true (reject trailing)

let test_driver_roundtrip_structure () =
  let prog = assemble_driver () in
  check bool_c "roundtrips" true (Decode.roundtrips prog);
  (* labels rediscovered at exactly the jump targets *)
  let src, base = Decode.decode (Encode.encode prog) in
  let prog' = Program.assemble ~base src in
  Array.iteri
    (fun i insn ->
      let insn' = prog'.Program.code.(i) in
      match (insn, insn') with
      | Insn.Jcc (c, _), Insn.Jcc (c', _) ->
          check bool_c "condition preserved" true (Cond.equal c c')
      | _ -> check bool_c "instruction preserved" true (Insn.equal insn insn'))
    prog.Program.code

let test_disassembled_driver_runs () =
  (* full circle: assemble the e1000 driver, encode it, disassemble it,
     REWRITE the disassembly, and run the result as the hypervisor
     instance — the paper's binary-input path, end to end.

     We reuse the Twin_harness by treating the disassembly as source. *)
  let prog = assemble_driver () in
  let binary = Encode.encode prog in
  let twin, base = Td_rewriter.Twin.derive_binary ~name:"e1000.bin" binary in
  check int_c "original base recovered" Td_mem.Layout.vm_driver_code_base base;
  check bool_c "rewriting the disassembly finds the same heap sites" true
    (twin.Td_rewriter.Twin.stats.Td_rewriter.Rewrite.heap_sites > 100)

let binary_equivalence_prop =
  (* random straight-line programs: assembling, encoding, disassembling
     and re-assembling yields the same executable behaviour *)
  QCheck.Test.make ~name:"binary roundtrip preserves execution" ~count:40
    (QCheck.make Test_rewriter.gen_straightline
       ~print:Program.to_string_source)
    (fun source ->
      let init =
        Bytes.init Twin_harness.buf_bytes (fun i -> Char.chr ((i * 7) land 0xff))
      in
      let regs st buf = Td_cpu.State.set st Reg.EBX buf in
      let direct =
        Twin_harness.run_incarnation ~source ~init ~regs ~entry:"entry"
          Twin_harness.Original
      in
      (* encode/decode through the binary form *)
      let prog =
        Program.assemble ~base:Td_mem.Layout.vm_driver_code_base source
      in
      let src', _ = Decode.decode (Encode.encode prog) in
      (* [entry] label is lost in the binary (it is just address base);
         reattach it *)
      let src' =
        Program.source "rt" (Program.Label "entry" :: src'.Program.items)
      in
      let redecoded =
        Twin_harness.run_incarnation ~source:src' ~init ~regs ~entry:"entry"
          Twin_harness.Original
      in
      Twin_harness.equivalent direct redecoded)

let suite =
  [
    Alcotest.test_case "header" `Quick test_header;
    Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
    Alcotest.test_case "driver roundtrip" `Quick test_driver_roundtrip_structure;
    Alcotest.test_case "disassembled driver rewrites" `Quick
      test_disassembled_driver_runs;
    QCheck_alcotest.to_alcotest binary_equivalence_prop;
  ]

(* Tests for the e1000-style device model: MMIO semantics, descriptor
   rings, DMA, interrupts, drops. *)

open Td_nic
open Td_mem

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

type rig = {
  space : Addr_space.t;
  dev : E1000_dev.t;
  mmio : int;
  tx_ring : int;
  rx_ring : int;
  sent : string list ref;
  irqs : int ref;
}

let entries = 8

let make_rig () =
  let phys = Phys_mem.create () in
  let space = Addr_space.create ~name:"dom0" phys in
  Addr_space.heap_init space ~base:Layout.dom0_heap_base
    ~limit:Layout.dom0_heap_limit;
  let sent = ref [] and irqs = ref 0 in
  let dev =
    E1000_dev.create ~ring_entries:entries ~dma:space
      ~mac:"\x02\x00\x00\x00\x00\x07"
      ~tx_frame:(fun f -> sent := f :: !sent)
      ()
  in
  let mmio = E1000_dev.mmio_vaddr 0 in
  E1000_dev.attach dev ~space ~vaddr:mmio;
  E1000_dev.set_irq_handler dev (fun () -> incr irqs);
  let tx_ring = Addr_space.heap_alloc space (entries * Regs.desc_bytes) in
  let rx_ring = Addr_space.heap_alloc space (entries * Regs.desc_bytes) in
  let w32 off v = Addr_space.write space (mmio + off) Td_misa.Width.W32 v in
  w32 Regs.tdbal tx_ring;
  w32 Regs.tdlen (entries * Regs.desc_bytes);
  w32 Regs.rdbal rx_ring;
  w32 Regs.rdlen (entries * Regs.desc_bytes);
  w32 Regs.ims (Regs.icr_txdw lor Regs.icr_rxt0);
  { space; dev; mmio; tx_ring; rx_ring; sent; irqs }

let reg rig off = Addr_space.read rig.space (rig.mmio + off) Td_misa.Width.W32
let set_reg rig off v = Addr_space.write rig.space (rig.mmio + off) Td_misa.Width.W32 v

let desc rig ring i field =
  Addr_space.read rig.space (ring + (i * Regs.desc_bytes) + field) Td_misa.Width.W32

let set_desc rig ring i field v =
  Addr_space.write rig.space (ring + (i * Regs.desc_bytes) + field) Td_misa.Width.W32 v

let test_mac_registers () =
  let rig = make_rig () in
  check int_c "ral" 0x00000002 (reg rig Regs.ral);
  check bool_c "rah has valid bit" true (reg rig Regs.rah land 0x80000000 <> 0);
  check bool_c "status link up" true (reg rig Regs.status land 1 <> 0)

let test_tx_single_descriptor () =
  let rig = make_rig () in
  let buf = Addr_space.heap_alloc rig.space 2048 in
  Addr_space.write_block rig.space buf (Bytes.of_string "frame-one");
  set_desc rig rig.tx_ring 0 Regs.d_buf buf;
  set_desc rig rig.tx_ring 0 Regs.d_len 9;
  set_desc rig rig.tx_ring 0 Regs.d_cmd (Regs.cmd_eop lor Regs.cmd_rs);
  set_reg rig Regs.tdt 1;
  check bool_c "frame emitted" true (!(rig.sent) = [ "frame-one" ]);
  check bool_c "DD set" true (desc rig rig.tx_ring 0 Regs.d_sta land Regs.sta_dd <> 0);
  check int_c "head advanced" 1 (reg rig Regs.tdh);
  check int_c "tx counted" 1 (E1000_dev.tx_count rig.dev);
  check int_c "gptc stat" 1 (reg rig Regs.gptc);
  check int_c "irq raised" 1 !(rig.irqs)

let test_tx_multi_descriptor_frame () =
  let rig = make_rig () in
  let b1 = Addr_space.heap_alloc rig.space 2048 in
  let b2 = Addr_space.heap_alloc rig.space 2048 in
  Addr_space.write_block rig.space b1 (Bytes.of_string "head|");
  Addr_space.write_block rig.space b2 (Bytes.of_string "fragment");
  set_desc rig rig.tx_ring 0 Regs.d_buf b1;
  set_desc rig rig.tx_ring 0 Regs.d_len 5;
  set_desc rig rig.tx_ring 0 Regs.d_cmd Regs.cmd_rs;
  set_desc rig rig.tx_ring 1 Regs.d_buf b2;
  set_desc rig rig.tx_ring 1 Regs.d_len 8;
  set_desc rig rig.tx_ring 1 Regs.d_cmd (Regs.cmd_eop lor Regs.cmd_rs);
  set_reg rig Regs.tdt 2;
  check bool_c "descriptors concatenated" true (!(rig.sent) = [ "head|fragment" ]);
  check int_c "one frame only" 1 (E1000_dev.tx_count rig.dev)

let test_tx_ring_wrap () =
  let rig = make_rig () in
  let buf = Addr_space.heap_alloc rig.space 2048 in
  Addr_space.write_block rig.space buf (Bytes.of_string "x");
  for i = 0 to entries - 1 do
    set_desc rig rig.tx_ring i Regs.d_buf buf;
    set_desc rig rig.tx_ring i Regs.d_len 1;
    set_desc rig rig.tx_ring i Regs.d_cmd (Regs.cmd_eop lor Regs.cmd_rs)
  done;
  (* send 7, then wrap and send 3 more (tail chases around) *)
  set_reg rig Regs.tdt 7;
  check int_c "seven frames" 7 (E1000_dev.tx_count rig.dev);
  set_reg rig Regs.tdt 2;
  check int_c "wrapped to ten" 10 (E1000_dev.tx_count rig.dev);
  check int_c "head wrapped" 2 (reg rig Regs.tdh)

let prime_rx rig n =
  let bufs =
    List.init n (fun i ->
        let b = Addr_space.heap_alloc rig.space 2048 in
        set_desc rig rig.rx_ring i Regs.d_buf b;
        set_desc rig rig.rx_ring i Regs.d_sta 0;
        b)
  in
  set_reg rig Regs.rdt n;
  bufs

let test_rx_delivery () =
  let rig = make_rig () in
  let bufs = prime_rx rig 4 in
  E1000_dev.receive_frame rig.dev "incoming-packet";
  let b0 = List.nth bufs 0 in
  check bool_c "payload written via DMA" true
    (Bytes.to_string (Addr_space.read_block rig.space b0 15) = "incoming-packet");
  check int_c "length written" 15 (desc rig rig.rx_ring 0 Regs.d_len);
  check bool_c "DD|EOP" true
    (desc rig rig.rx_ring 0 Regs.d_sta = (Regs.sta_dd lor Regs.sta_eop));
  check int_c "rdh advanced" 1 (reg rig Regs.rdh);
  check int_c "irq" 1 !(rig.irqs);
  check int_c "gprc" 1 (reg rig Regs.gprc)

let test_rx_overflow_drops () =
  let rig = make_rig () in
  ignore (prime_rx rig 2);
  E1000_dev.receive_frame rig.dev "a";
  E1000_dev.receive_frame rig.dev "b";
  E1000_dev.receive_frame rig.dev "c";
  check int_c "two delivered" 2 (E1000_dev.rx_count rig.dev);
  check int_c "one dropped" 1 (E1000_dev.dropped rig.dev);
  check int_c "mpc stat" 1 (reg rig Regs.mpc)

let test_icr_read_clears () =
  let rig = make_rig () in
  ignore (prime_rx rig 2);
  E1000_dev.receive_frame rig.dev "x";
  check bool_c "cause latched" true (reg rig Regs.icr land Regs.icr_rxt0 <> 0);
  check int_c "read cleared it" 0 (reg rig Regs.icr)

let test_interrupt_masking () =
  let rig = make_rig () in
  ignore (prime_rx rig 4);
  set_reg rig Regs.imc (Regs.icr_txdw lor Regs.icr_rxt0);
  E1000_dev.receive_frame rig.dev "quiet";
  check int_c "no irq while masked" 0 !(rig.irqs);
  check bool_c "cause still latched" true (reg rig Regs.icr <> 0);
  (* unmask: next frame interrupts *)
  set_reg rig Regs.ims Regs.icr_rxt0;
  E1000_dev.receive_frame rig.dev "loud";
  check int_c "irq after unmask" 1 !(rig.irqs)

let test_interrupt_throttling () =
  let rig = make_rig () in
  ignore (prime_rx rig 7);
  set_reg rig Regs.itr 3;
  for i = 1 to 6 do
    E1000_dev.receive_frame rig.dev (Printf.sprintf "frame%d" i)
  done;
  check int_c "one irq per three events" 2 !(rig.irqs);
  check int_c "no frame lost to throttling" 6 (E1000_dev.rx_count rig.dev);
  (* every received frame is still latched/visible via the ring *)
  check bool_c "causes latched" true (reg rig Regs.icr land Regs.icr_rxt0 <> 0);
  set_reg rig Regs.itr 0;
  E1000_dev.receive_frame rig.dev "x";
  check int_c "unthrottled again" 3 !(rig.irqs)

let test_effective_rate () =
  (* framing overhead makes the effective rate less than line rate *)
  let r = E1000_dev.effective_rate_bps ~packet_bytes:1514 in
  check bool_c "below line rate" true (r < 1e9);
  check bool_c "above 90%" true (r > 0.9e9);
  let small = E1000_dev.effective_rate_bps ~packet_bytes:64 in
  check bool_c "small packets waste more" true (small < r)

let suite =
  [
    Alcotest.test_case "mac registers" `Quick test_mac_registers;
    Alcotest.test_case "tx single descriptor" `Quick test_tx_single_descriptor;
    Alcotest.test_case "tx multi-descriptor frame" `Quick
      test_tx_multi_descriptor_frame;
    Alcotest.test_case "tx ring wrap" `Quick test_tx_ring_wrap;
    Alcotest.test_case "rx delivery" `Quick test_rx_delivery;
    Alcotest.test_case "rx overflow drops" `Quick test_rx_overflow_drops;
    Alcotest.test_case "icr read clears" `Quick test_icr_read_clears;
    Alcotest.test_case "interrupt masking" `Quick test_interrupt_masking;
    Alcotest.test_case "interrupt throttling" `Quick test_interrupt_throttling;
    Alcotest.test_case "effective rate" `Quick test_effective_rate;
  ]

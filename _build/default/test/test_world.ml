(* End-to-end tests over the four full system configurations: packet
   delivery fidelity, driver statistics, safety containment, upcalls,
   virtual-interrupt deferral, housekeeping paths. *)

open Twindrivers

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

let payload = "GET /index.html HTTP/1.0\r\n" ^ String.make 800 'q'

(* --- transmit fidelity: the exact bytes appear on the wire --- *)

let test_tx_fidelity cfg () =
  let w = World.create ~nics:2 cfg in
  check bool_c "transmit accepted" true (World.transmit w ~nic:1 ~payload);
  World.pump w;
  check int_c "one frame on the wire" 1 (World.wire_tx_frames w);
  check int_c "frame bytes = eth header + payload"
    (14 + String.length payload)
    (World.wire_tx_bytes w);
  let a = World.adapter w ~nic:1 in
  check int_c "driver counted it" 1 (Td_driver.Adapter.tx_packets a);
  check bool_c "lock released" false (Td_driver.Adapter.lock_held a)

(* --- receive fidelity: payload delivered byte-exact to the consumer --- *)

let test_rx_fidelity cfg () =
  let w = World.create ~nics:2 cfg in
  World.inject_rx w ~nic:0 ~payload;
  World.pump w;
  check int_c "delivered" 1 (World.delivered_rx_frames w);
  check bool_c "payload intact" true (World.rx_last_payload w = Some payload);
  let a = World.adapter w ~nic:0 in
  check int_c "driver rx count" 1 (Td_driver.Adapter.rx_packets a)

(* --- sustained bidirectional traffic, multiple NICs --- *)

let test_sustained cfg () =
  let w = World.create ~nics:3 cfg in
  let n = 150 in
  for i = 0 to n - 1 do
    ignore (World.transmit w ~nic:(i mod 3) ~payload);
    World.inject_rx w ~nic:(i mod 3) ~payload;
    if i mod 4 = 3 then World.pump w
  done;
  World.pump w;
  check int_c "all transmitted" n (World.wire_tx_frames w);
  check int_c "all received" n (World.delivered_rx_frames w)

(* --- twin specifics --- *)

let test_twin_no_switch_on_data_path () =
  let w = World.create ~nics:1 Config.Xen_twin in
  let h = Option.get (World.hypervisor w) in
  World.reset_measurement w;
  let sw = Td_xen.Hypervisor.switches h in
  for _ = 1 to 20 do
    ignore (World.transmit w ~nic:0 ~payload)
  done;
  World.pump w;
  (* the whole point of TwinDrivers: no domain switch per packet *)
  check int_c "no world switches on tx fast path" sw
    (Td_xen.Hypervisor.switches h)

let test_twin_upcalls_when_demoted () =
  let w =
    World.create ~nics:1 ~upcall_set:[ "spin_trylock"; "spin_unlock_irqrestore" ]
      Config.Xen_twin
  in
  let h = Option.get (World.hypervisor w) in
  World.reset_measurement w;
  let sw = Td_xen.Hypervisor.switches h in
  ignore (World.transmit w ~nic:0 ~payload);
  let sup = World.support w in
  check bool_c "spin_trylock upcalled" true
    (Td_kernel.Support.upcalls sup "spin_trylock" >= 1);
  check bool_c "dma stays native" true
    (Td_kernel.Support.upcalls sup "dma_map_single" = 0);
  check bool_c "upcalls forced world switches" true
    (Td_xen.Hypervisor.switches h > sw);
  (* functionality is preserved *)
  World.pump w;
  check int_c "frame still sent" 1 (World.wire_tx_frames w)

let test_twin_vif_defers_interrupt () =
  let w = World.create ~nics:1 Config.Xen_twin in
  World.mask_dom0_interrupts w;
  World.inject_rx w ~nic:0 ~payload;
  World.pump w;
  check int_c "delivery deferred while dom0 masks interrupts" 0
    (World.delivered_rx_frames w);
  World.unmask_dom0_interrupts w;
  check int_c "delivered after unmask" 1 (World.delivered_rx_frames w)

let test_twin_pool_exhaustion_drops () =
  (* a pool too small to keep refilling the receive ring: the hypervisor's
     netdev_alloc_skb returns NULL and the driver must drop gracefully
     (reusing the in-place buffer), not crash *)
  let w = World.create ~nics:1 ~pool_entries:4 Config.Xen_twin in
  for _ = 1 to 20 do
    World.inject_rx w ~nic:0 ~payload
  done;
  World.pump w;
  let a = World.adapter w ~nic:0 in
  check bool_c "some packets dropped for want of buffers" true
    (Td_driver.Adapter.rx_alloc_fail a > 0);
  check bool_c "others delivered" true (World.delivered_rx_frames w > 0);
  check bool_c "pool exhaustion recorded" true
    (Td_kernel.Skb_pool.exhaustions (Option.get (World.pool w)) > 0);
  (* the machine survives: further traffic (the transmit may be refused —
     the remaining pool buffers are parked in the receive ring — but
     nothing crashes) *)
  ignore (World.transmit w ~nic:0 ~payload);
  World.inject_rx w ~nic:0 ~payload;
  World.pump w;
  check bool_c "machine still alive" true true

let test_twin_stats_and_svm_activity () =
  let w = World.create ~nics:1 Config.Xen_twin in
  World.reset_measurement w;
  for i = 0 to 19 do
    ignore (World.transmit w ~nic:0 ~payload);
    World.inject_rx w ~nic:0 ~payload;
    if i mod 4 = 3 then World.pump w
  done;
  World.pump w;
  let rt = Option.get (World.svm w) in
  check bool_c "no SVM faults in error-free operation" true
    (Td_svm.Runtime.faults rt = 0);
  check bool_c "translations installed" true (Td_svm.Runtime.pages_mapped rt > 0);
  let stats = Option.get (World.twin_stats w) in
  check bool_c "rewrite touched many sites" true
    (stats.Td_rewriter.Rewrite.heap_sites > 50)

let test_twin_fast_path_support_calls_in_hyp () =
  let w = World.create ~nics:1 Config.Xen_twin in
  let sup = World.support w in
  Td_kernel.Support.reset_counts sup;
  for i = 0 to 7 do
    ignore (World.transmit w ~nic:0 ~payload);
    World.inject_rx w ~nic:0 ~payload;
    if i mod 4 = 3 then World.pump w
  done;
  World.pump w;
  (* data-path support work happened in the hypervisor, with no upcalls *)
  check bool_c "hyp netif_rx" true (Td_kernel.Support.hyp_calls sup "netif_rx" > 0);
  check bool_c "hyp dma_map_single" true
    (Td_kernel.Support.hyp_calls sup "dma_map_single" > 0);
  check bool_c "hyp eth_type_trans" true
    (Td_kernel.Support.hyp_calls sup "eth_type_trans" > 0);
  check int_c "zero upcalls" 0 (Td_kernel.Support.total_upcalls sup)

(* --- housekeeping runs in dom0 (the VM instance, for twin) --- *)

let test_watchdog_and_config cfg () =
  let w = World.create ~nics:1 cfg in
  World.run_watchdog w ~nic:0;
  World.run_watchdog w ~nic:0;
  let a = World.adapter w ~nic:0 in
  check int_c "watchdog ran twice" 2 (Td_driver.Adapter.watchdog_runs a);
  World.run_set_mtu w ~nic:0 ~mtu:1200;
  check int_c "mtu reconfigured" 1200
    (Td_kernel.Netdev.mtu (World.netdev w ~nic:0));
  (* config path exercised tail support routines (in dom0, never hyp) *)
  let sup = World.support w in
  check bool_c "netif_stop_queue used by config path" true
    (Td_kernel.Support.dom0_calls sup "netif_stop_queue" > 0);
  check int_c "no hyp call for config routines" 0
    (Td_kernel.Support.hyp_calls sup "netif_stop_queue")

(* --- domU baseline specifics --- *)

let test_rx_mode_config cfg () =
  (* the multicast/promiscuous configuration path: MTA cleared by a
     rewritten rep stosl (on the twin's VM instance), RCTL bit flipped *)
  let w = World.create ~nics:1 cfg in
  let mmio = Td_kernel.Netdev.mmio_base (World.netdev w ~nic:0) in
  let reg off =
    Td_mem.Addr_space.read (World.dom0_space w) (mmio + off) Td_misa.Width.W32
  in
  World.run_set_rx_mode w ~nic:0 ~promisc:true;
  check bool_c "promiscuous set" true (reg Td_nic.Regs.rctl land 8 <> 0);
  check int_c "mta entry hashed in" 1 (reg (Td_nic.Regs.mta + 4));
  World.run_set_rx_mode w ~nic:0 ~promisc:false;
  check bool_c "promiscuous cleared" true (reg Td_nic.Regs.rctl land 8 = 0);
  (* config work never entered the hypervisor *)
  check int_c "rtnl_lock stayed in dom0" 0
    (Td_kernel.Support.hyp_calls (World.support w) "rtnl_lock")

let test_stats_string_copy cfg () =
  (* e1000_get_stats copies the statistics block with rep movsl — a
     rewritten string operation on the twin's VM instance *)
  let w = World.create ~nics:1 cfg in
  for i = 0 to 4 do
    ignore (World.transmit w ~nic:0 ~payload);
    World.inject_rx w ~nic:0 ~payload;
    if i mod 2 = 1 then World.pump w
  done;
  World.pump w;
  let stats = World.read_stats w ~nic:0 in
  check int_c "tx_packets via string copy" 5 stats.(0);
  check int_c "rx_packets via string copy" 5 stats.(2);
  check bool_c "tx_bytes plausible" true (stats.(1) >= 5 * String.length payload)

let test_timer_driven_watchdog cfg () =
  (* the dom0 timer wheel drives the watchdog; 35 ticks = 3 firings *)
  let w = World.create ~nics:2 cfg in
  for _ = 1 to 35 do
    World.tick w
  done;
  let a = World.adapter w ~nic:0 in
  check int_c "watchdog fired on schedule" 3 (Td_driver.Adapter.watchdog_runs a);
  let b = World.adapter w ~nic:1 in
  check int_c "per-NIC timers" 3 (Td_driver.Adapter.watchdog_runs b)

let test_watchdog_indirect_call cfg () =
  (* the watchdog reaches the link-check routine through a function
     pointer in shared driver data *)
  let w = World.create ~nics:1 cfg in
  World.run_watchdog w ~nic:0;
  let a = World.adapter w ~nic:0 in
  check int_c "link seen up via indirect call" 1
    (Td_driver.Adapter.field a Td_driver.Adapter.o_link_up)

let test_twin_multi_guest_demux () =
  (* §5.3: the hypervisor demultiplexes received packets by destination
     MAC and queues each to the appropriate guest *)
  let w = World.create ~nics:1 ~guests:3 Config.Xen_twin in
  check int_c "three guests" 3 (World.guest_count w);
  for g = 0 to 2 do
    for _ = 1 to g + 1 do
      World.inject_rx ~guest:g w ~nic:0 ~payload
    done
  done;
  World.pump w;
  check int_c "guest0 got 1" 1 (World.delivered_rx_frames_to w ~guest:0);
  check int_c "guest1 got 2" 2 (World.delivered_rx_frames_to w ~guest:1);
  check int_c "guest2 got 3" 3 (World.delivered_rx_frames_to w ~guest:2);
  check int_c "total" 6 (World.delivered_rx_frames w);
  (* delivery to a non-running guest required world switches; guest0 is
     current so at least the others forced switches *)
  let h = Option.get (World.hypervisor w) in
  check bool_c "switched to deliver" true (Td_xen.Hypervisor.switches h > 0)

let test_domu_grant_machinery () =
  let w = World.create ~nics:1 Config.Xen_domU in
  World.reset_measurement w;
  for _ = 1 to 5 do
    ignore (World.transmit w ~nic:0 ~payload)
  done;
  World.pump w;
  check int_c "five frames" 5 (World.wire_tx_frames w);
  let h = Option.get (World.hypervisor w) in
  (* each packet needs at least two world switches (guest->dom0->guest) *)
  check bool_c "switches per packet" true (Td_xen.Hypervisor.switches h >= 10)

(* --- ledger sanity across configurations --- *)

let test_ledger_categories cfg () =
  let w = World.create ~nics:1 cfg in
  World.reset_measurement w;
  for i = 0 to 9 do
    ignore (World.transmit w ~nic:0 ~payload);
    World.inject_rx w ~nic:0 ~payload;
    if i mod 4 = 3 then World.pump w
  done;
  World.pump w;
  let l = World.ledger w in
  let get c = Td_xen.Ledger.total l c in
  check bool_c "driver cycles measured" true (get Td_xen.Ledger.Driver > 0);
  (match cfg with
  | Config.Native_linux ->
      check int_c "no Xen work on bare metal" 0 (get Td_xen.Ledger.Xen);
      check int_c "no guest" 0 (get Td_xen.Ledger.DomU)
  | Config.Xen_dom0 ->
      check bool_c "virtualisation overhead" true (get Td_xen.Ledger.Xen > 0);
      check int_c "no guest" 0 (get Td_xen.Ledger.DomU)
  | Config.Xen_domU ->
      check bool_c "guest work" true (get Td_xen.Ledger.DomU > 0);
      check bool_c "dom0 work" true (get Td_xen.Ledger.Dom0 > 0);
      check bool_c "xen work" true (get Td_xen.Ledger.Xen > 0)
  | Config.Xen_twin ->
      check bool_c "guest work" true (get Td_xen.Ledger.DomU > 0);
      check int_c "dom0 idle on data path" 0 (get Td_xen.Ledger.Dom0);
      check bool_c "xen work" true (get Td_xen.Ledger.Xen > 0))

(* --- measurement layer --- *)

let test_profiler_attribution () =
  let w = World.create ~nics:1 Config.Xen_twin in
  let prof = Td_cpu.Profiler.attach (World.interp w) in
  for i = 0 to 19 do
    ignore (World.transmit w ~nic:0 ~payload);
    if i mod 8 = 7 then World.pump w
  done;
  World.pump w;
  let by_label = Td_cpu.Profiler.cycles_by_label prof in
  check bool_c "profiled something" true (Td_cpu.Profiler.total_cycles prof > 0);
  check bool_c "hypervisor instance hot" true
    (List.exists
       (fun (n, c) ->
         c > 0 && String.length n > 9 && String.sub n 0 9 = "e1000.hyp")
       by_label);
  (* entry points appear as regions *)
  check bool_c "xmit region present" true
    (List.mem_assoc "e1000.hyp:e1000_xmit_frame" by_label);
  Td_cpu.Profiler.reset prof;
  check int_c "reset" 0 (Td_cpu.Profiler.total_cycles prof)

let test_measure_consistency () =
  let w = World.create ~nics:5 Config.Xen_twin in
  let r = Measure.run_transmit ~packets:120 w in
  check bool_c "throughput positive" true (r.Measure.throughput_mbps > 0.);
  check bool_c "cpu-scaled >= measured" true
    (r.Measure.cpu_limited_mbps >= r.Measure.throughput_mbps -. 1e-6);
  check bool_c "utilisation sane" true
    (r.Measure.cpu_utilisation > 0. && r.Measure.cpu_utilisation <= 1.0);
  check int_c "no drops" 0 r.Measure.drops;
  let total =
    List.fold_left (fun acc (_, v) -> acc +. v) 0. r.Measure.breakdown
  in
  check bool_c "breakdown sums to total" true
    (abs_float (total -. r.Measure.cycles_per_packet) < 1.0)

let for_all_configs name f =
  List.map
    (fun cfg ->
      Alcotest.test_case
        (Printf.sprintf "%s (%s)" name (Config.name cfg))
        `Quick (f cfg))
    Config.all

let suite =
  for_all_configs "tx fidelity" test_tx_fidelity
  @ for_all_configs "rx fidelity" test_rx_fidelity
  @ for_all_configs "sustained traffic" test_sustained
  @ for_all_configs "ledger categories" test_ledger_categories
  @ for_all_configs "watchdog/config" test_watchdog_and_config
  @ for_all_configs "rx mode config" test_rx_mode_config
  @ for_all_configs "stats string copy" test_stats_string_copy
  @ for_all_configs "watchdog indirect call" test_watchdog_indirect_call
  @ for_all_configs "timer-driven watchdog" test_timer_driven_watchdog
  @ [
      Alcotest.test_case "twin: no switch on data path" `Quick
        test_twin_no_switch_on_data_path;
      Alcotest.test_case "twin: demoted routines upcall" `Quick
        test_twin_upcalls_when_demoted;
      Alcotest.test_case "twin: vif defers interrupt" `Quick
        test_twin_vif_defers_interrupt;
      Alcotest.test_case "twin: pool exhaustion drops" `Quick
        test_twin_pool_exhaustion_drops;
      Alcotest.test_case "twin: stats and svm activity" `Quick
        test_twin_stats_and_svm_activity;
      Alcotest.test_case "twin: fast path in hyp, no upcalls" `Quick
        test_twin_fast_path_support_calls_in_hyp;
      Alcotest.test_case "twin: multi-guest demux" `Quick
        test_twin_multi_guest_demux;
      Alcotest.test_case "domU: grant machinery" `Quick
        test_domu_grant_machinery;
      Alcotest.test_case "profiler attribution" `Quick
        test_profiler_attribution;
      Alcotest.test_case "measure consistency" `Quick test_measure_consistency;
    ]

test/test_netio.ml: Alcotest Bytes Domain Harness Hypervisor Kmem Ledger List Printf Skb String Sys_costs Td_kernel Td_mem Td_xen Xen_netio

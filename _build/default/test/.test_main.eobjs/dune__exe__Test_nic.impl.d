test/test_nic.ml: Addr_space Alcotest Bytes E1000_dev Layout List Phys_mem Printf Regs Td_mem Td_misa Td_nic

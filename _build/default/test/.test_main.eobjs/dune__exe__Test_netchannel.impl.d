test/test_netchannel.ml: Alcotest Buffer Char Config List Netchannel Printf String Td_driver Td_net Twindrivers World

test/test_guards.ml: Alcotest Builder Cfi Harness Insn List Loader Program Reg Rewrite Td_cpu Td_driver Td_mem Td_misa Td_rewriter Twin Verifier

test/test_world.ml: Alcotest Array Config List Measure Option Printf String Td_cpu Td_driver Td_kernel Td_mem Td_misa Td_nic Td_rewriter Td_svm Td_xen Twindrivers World

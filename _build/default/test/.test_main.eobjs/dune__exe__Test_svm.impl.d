test/test_svm.ml: Addr_space Alcotest Call_table Harness Layout List Runtime Stlb Td_mem Td_misa Td_svm Width

test/test_binary.ml: Alcotest Array Bytes Char Cond Decode Encode Insn Program QCheck QCheck_alcotest Reg Td_cpu Td_driver Td_mem Td_misa Td_rewriter Test_rewriter Twin_harness

test/test_net.ml: Alcotest Array List QCheck QCheck_alcotest Rng Specweb Td_net Td_sim Webserver

test/test_props.ml: Alcotest Bytes Char Decode Encode Harness Hashtbl List Printf Program QCheck QCheck_alcotest String Td_driver Td_kernel Td_mem Td_misa Td_sim Td_svm Td_xen

test/harness.ml: Addr_space Code_registry Interp Layout Native Phys_mem Reg State Td_cpu Td_mem Td_misa Td_rewriter Td_svm

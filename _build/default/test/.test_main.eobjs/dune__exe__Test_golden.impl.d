test/test_golden.ml: Alcotest Builder Td_misa Td_rewriter

test/test_kernel.ml: Alcotest Bridge Bytes Harness Kmem List Netdev Option Skb Skb_pool Softirq Spinlock Support Td_cpu Td_kernel Td_mem Td_misa Timer_wheel

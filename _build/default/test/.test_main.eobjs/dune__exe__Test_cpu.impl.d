test/test_cpu.ml: Alcotest Builder Bytes Code_registry Cond Harness Insn Interp Native Program Reg State Td_cpu Td_mem Td_misa Tlb Width

test/test_tcp.ml: Alcotest Char Gen Printf QCheck QCheck_alcotest Queue Rng String Tcp_lite Td_net

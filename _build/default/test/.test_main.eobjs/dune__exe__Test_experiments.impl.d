test/test_experiments.ml: Alcotest Config Experiments List Measure Printf Td_kernel Td_xen Twindrivers World

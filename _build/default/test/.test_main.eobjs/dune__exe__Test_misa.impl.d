test/test_misa.ml: Alcotest Array Builder Cond Format Insn List Operand Parser Program QCheck QCheck_alcotest Reg String Td_misa Width

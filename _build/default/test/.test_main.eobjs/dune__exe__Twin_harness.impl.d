test/twin_harness.ml: Addr_space Bytes Harness Interp Layout Native Program Reg State Td_cpu Td_mem Td_misa Td_rewriter Td_svm

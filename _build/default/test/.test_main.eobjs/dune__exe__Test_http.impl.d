test/test_http.ml: Alcotest Array Buffer Char Gen Http Httperf Knot List Printf QCheck QCheck_alcotest Queue Rng Specweb String Tcp_lite Td_net

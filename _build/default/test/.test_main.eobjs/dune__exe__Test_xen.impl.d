test/test_xen.ml: Alcotest Bytes Domain Grant_table Harness Hypervisor Ledger List Option Printf Scheduler Td_mem Td_misa Td_sim Td_xen Upcall

test/test_mem.ml: Addr_space Alcotest Bytes Char Layout Phys_mem Td_mem Td_misa Width

(* End-to-end harness: derive a twin driver and run all three incarnations
   (original in dom0, rewritten VM instance in dom0, rewritten hypervisor
   instance from an arbitrary guest context) on identical initial state. *)

open Td_misa
open Td_mem
open Td_cpu

type incarnation = Original | Vm_identity | Hypervisor

type run_result = {
  eax : int;
  cycles : int;
  steps : int;
  buf : bytes;
  machine : Harness.machine;
  svm : Td_svm.Runtime.t option;
}

let buf_bytes = 2 * Layout.page_size

(* Build one machine, load the requested incarnation of [source], initialise
   the buffer with [init], set registers with [regs buf_addr], execute
   [entry] and return observable state. *)
let run_incarnation ?(max_steps = 2_000_000) ?cache_probes
    ?(post_load = fun _ _ ~buf:_ -> ()) ~source ~init ~regs ~entry which =
  let m = Harness.make_machine () in
  let buf = Addr_space.heap_alloc m.Harness.dom0 buf_bytes in
  Addr_space.write_block m.Harness.dom0 buf init;
  let data_syms name = if name = "buf" then Some buf else None in
  let st, prog, svm =
    match which with
    | Original ->
        let prog =
          Td_rewriter.Loader.load ~name:"drv" ~source
            ~base:Layout.vm_driver_code_base
            ~symbols:
              (Td_rewriter.Loader.overlay data_syms (fun n ->
                   Native.address_of m.Harness.natives n))
            ~registry:m.Harness.registry
        in
        (Harness.dom0_cpu m, prog, None)
    | Vm_identity ->
        let twin = Td_rewriter.Twin.derive ?cache_probes source in
        let rt, stlb_vaddr = Harness.vm_runtime m in
        let scratch = Addr_space.heap_alloc m.Harness.dom0 64 in
        ignore
          (Native.register m.Harness.natives "__svm_call@vm" (fun st ->
               State.set st Reg.EAX (State.stack_arg st 0)));
        let syms =
          Td_rewriter.Loader.overlay data_syms
            (Td_rewriter.Loader.overlay
               (Harness.vm_symbols m rt stlb_vaddr scratch)
               (fun n ->
                 if n = Td_rewriter.Symbols.svm_call then
                   Native.address_of m.Harness.natives "__svm_call@vm"
                 else Native.address_of m.Harness.natives n))
        in
        let prog =
          Td_rewriter.Loader.load ~name:"drv.vm"
            ~source:twin.Td_rewriter.Twin.rewritten
            ~base:Layout.vm_driver_code_base ~symbols:syms
            ~registry:m.Harness.registry
        in
        (Harness.dom0_cpu m, prog, Some rt)
    | Hypervisor ->
        let twin = Td_rewriter.Twin.derive ?cache_probes source in
        let rt = Harness.hyp_runtime m in
        let ct =
          Td_svm.Call_table.create ~vm_code_base:Layout.vm_driver_code_base
            ~vm_code_size:(4 * Program.instruction_count twin.Td_rewriter.Twin.rewritten)
            ~resolver:(fun _ -> None)
        in
        Td_svm.Call_table.register_native ct m.Harness.natives "__svm_call@hyp";
        let syms =
          Td_rewriter.Loader.overlay data_syms
            (Td_rewriter.Loader.overlay
               (Harness.hyp_symbols m rt)
               (fun n ->
                 if n = Td_rewriter.Symbols.svm_call then
                   Native.address_of m.Harness.natives "__svm_call@hyp"
                 else Native.address_of m.Harness.natives n))
        in
        let prog =
          Td_rewriter.Loader.load ~name:"drv.hyp"
            ~source:twin.Td_rewriter.Twin.rewritten
            ~base:Layout.hyp_driver_code_base ~symbols:syms
            ~registry:m.Harness.registry
        in
        (* run from a guest context: an address space with nothing of dom0
           mapped — every data access must go through SVM *)
        let guest = Addr_space.create ~name:"guest" m.Harness.phys in
        (Harness.hyp_cpu m ~guest, prog, Some rt)
  in
  post_load m prog ~buf;
  regs st buf;
  let interp = Harness.interp_of m st in
  let eax =
    Interp.call ~max_steps interp ~entry:(Program.addr_of_label prog entry)
      ~args:[]
  in
  {
    eax;
    cycles = st.State.cycles;
    steps = st.State.steps;
    buf = Addr_space.read_block m.Harness.dom0 buf buf_bytes;
    machine = m;
    svm;
  }

let run_all ?max_steps ?cache_probes ?post_load ~source ~init ~regs ~entry ()
    =
  ( run_incarnation ?max_steps ?cache_probes ?post_load ~source ~init ~regs
      ~entry Original,
    run_incarnation ?max_steps ?cache_probes ?post_load ~source ~init ~regs
      ~entry Vm_identity,
    run_incarnation ?max_steps ?cache_probes ?post_load ~source ~init ~regs
      ~entry Hypervisor )

(* VM-instance code address of a label, regardless of where the program was
   loaded: stored function pointers always hold VM addresses (shared data,
   single instance). *)
let vm_address_of_label prog label =
  Program.addr_of_label prog label - prog.Program.base
  + Layout.vm_driver_code_base

let equivalent (a : run_result) (b : run_result) =
  a.eax = b.eax && Bytes.equal a.buf b.buf

(* Model-checking style property tests for the core data structures:
   the stlb against a reference map, the kernel allocator against an
   overlap checker, and decode against byte-level fuzzing. *)

open Td_misa

let check = Alcotest.check
let bool_c = Alcotest.bool

(* --- stlb vs a reference model --- *)

let stlb_model_prop =
  QCheck.Test.make ~name:"stlb behaves like a direct-mapped map" ~count:50
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 120) (int_range 0 2000))
       ~print:(fun l -> String.concat "," (List.map string_of_int l)))
    (fun page_numbers ->
      let m = Harness.make_machine () in
      let stlb =
        Td_svm.Stlb.create ~space:m.Harness.hyp ~vaddr:Td_mem.Layout.stlb_base
      in
      (* reference: index -> installed page *)
      let model = Hashtbl.create 64 in
      List.iter
        (fun n ->
          let dom0_page = Td_mem.Layout.dom0_heap_base + (n * 4096) in
          let mapped = Td_mem.Layout.map_window_base + (n * 4096) in
          Td_svm.Stlb.install stlb ~dom0_page ~mapped_page:mapped;
          Hashtbl.replace model (Td_svm.Stlb.index_of dom0_page) dom0_page)
        page_numbers;
      (* every probe must agree with the model: hit iff the bucket holds
         that page, and then with offset preserved *)
      List.for_all
        (fun n ->
          let dom0_page = Td_mem.Layout.dom0_heap_base + (n * 4096) in
          let addr = dom0_page + (n * 7 mod 4096) in
          let expect_hit =
            Hashtbl.find_opt model (Td_svm.Stlb.index_of dom0_page)
            = Some dom0_page
          in
          match Td_svm.Stlb.lookup stlb addr with
          | Some translated ->
              expect_hit
              && translated
                 = Td_mem.Layout.map_window_base + (n * 4096)
                   + (addr - dom0_page)
          | None -> not expect_hit)
        page_numbers)

(* --- kmem: allocations never overlap, frees recycle --- *)

let kmem_no_overlap_prop =
  QCheck.Test.make ~name:"kmem allocations never overlap" ~count:30
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 60) (int_range 1 6000))
       ~print:(fun l -> String.concat "," (List.map string_of_int l)))
    (fun sizes ->
      let m = Harness.make_machine () in
      let km = Td_kernel.Kmem.create m.Harness.dom0 in
      let live = ref [] in
      List.for_all
        (fun size ->
          let addr = Td_kernel.Kmem.alloc km size in
          let disjoint =
            List.for_all
              (fun (a, s) -> addr + size <= a || a + s <= addr)
              !live
          in
          live := (addr, size) :: !live;
          (* occasionally free the oldest to exercise recycling *)
          (if List.length !live > 20 then
             match List.rev !live with
             | (a, s) :: _ ->
                 Td_kernel.Kmem.free km a s;
                 live := List.filter (fun (x, _) -> x <> a) !live
             | [] -> ());
          disjoint)
        sizes)

(* --- decode: random bytes never crash, only Malformed --- *)

let decode_fuzz_prop =
  QCheck.Test.make ~name:"decode rejects noise gracefully" ~count:200
    (QCheck.make
       QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 200))
       ~print:String.escaped)
    (fun noise ->
      match Decode.decode (Bytes.of_string noise) with
      | _ -> true (* a parse of noise is fine as long as it is well-typed *)
      | exception Decode.Malformed _ -> true)

let decode_valid_prefix_prop =
  (* a real binary with flipped trailing bytes must never crash *)
  QCheck.Test.make ~name:"decode survives corrupted driver binaries" ~count:60
    (QCheck.make
       QCheck.Gen.(pair (int_range 0 5000) (int_range 0 255))
       ~print:(fun (i, b) -> Printf.sprintf "flip[%d]=%d" i b))
    (fun (pos, value) ->
      let prog =
        Program.assemble
          ~symbols:(fun _ -> Some Td_mem.Layout.native_base)
          ~base:Td_mem.Layout.vm_driver_code_base
          (Td_driver.E1000_driver.source ())
      in
      let b = Encode.encode prog in
      if pos >= Bytes.length b then true
      else begin
        Bytes.set b pos (Char.chr value);
        match Decode.decode b with
        | _ -> true
        | exception Decode.Malformed _ -> true
        | exception Invalid_argument _ -> false (* must not leak *)
      end)

(* --- ledger arithmetic --- *)

let ledger_prop =
  QCheck.Test.make ~name:"ledger totals equal the sum of charges" ~count:50
    (QCheck.make
       QCheck.Gen.(list_size (int_range 0 80) (pair (int_range 0 3) (int_range 0 10000)))
       ~print:(fun l -> string_of_int (List.length l)))
    (fun charges ->
      let led = Td_xen.Ledger.create () in
      let cat = function
        | 0 -> Td_xen.Ledger.Dom0
        | 1 -> Td_xen.Ledger.DomU
        | 2 -> Td_xen.Ledger.Xen
        | _ -> Td_xen.Ledger.Driver
      in
      List.iter (fun (c, n) -> Td_xen.Ledger.charge led (cat c) n) charges;
      Td_xen.Ledger.grand_total led
      = List.fold_left (fun acc (_, n) -> acc + n) 0 charges)

let test_stats_percentile_edge () =
  check bool_c "single element" true (Td_sim.Stats.percentile 99. [ 5. ] = 5.);
  check bool_c "p0 -> min" true
    (Td_sim.Stats.percentile 0. [ 3.; 1.; 2. ] = 1.);
  check bool_c "p100 -> max" true
    (Td_sim.Stats.percentile 100. [ 3.; 1.; 2. ] = 3.);
  check bool_c "empty raises" true
    (match Td_sim.Stats.percentile 50. [] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest stlb_model_prop;
    QCheck_alcotest.to_alcotest kmem_no_overlap_prop;
    QCheck_alcotest.to_alcotest decode_fuzz_prop;
    QCheck_alcotest.to_alcotest decode_valid_prefix_prop;
    QCheck_alcotest.to_alcotest ledger_prop;
    Alcotest.test_case "stats percentile edges" `Quick
      test_stats_percentile_edge;
  ]

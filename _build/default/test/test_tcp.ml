(* Tests for the TCP-like transport: handshake, segmentation, windowing,
   loss recovery, teardown — including a property test over random data
   and random (deterministic) loss patterns. *)

open Td_net

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

(* two endpoints joined by queues with an optional drop predicate *)
type pair = {
  a : Tcp_lite.t;
  b : Tcp_lite.t;
  qa : Tcp_lite.segment Queue.t;  (** towards a *)
  qb : Tcp_lite.segment Queue.t;  (** towards b *)
}

let make_pair ?(drop = fun _ -> false) ?window () =
  let qa = Queue.create () and qb = Queue.create () in
  let n = ref 0 in
  let channel q seg =
    incr n;
    if not (drop !n) then Queue.push seg q
  in
  let a = Tcp_lite.create ?window ~send:(channel qb) () in
  let b = Tcp_lite.create ?window ~send:(channel qa) () in
  { a; b; qa; qb }

(* run the world until quiescent (or [limit] rounds); a round is one tick
   on each side plus full queue draining. Quiescent means: nothing queued,
   nothing in flight, and several quiet rounds in a row (retransmission
   bursts can be wholly lost, so in-flight data always keeps us going) *)
let settle ?(limit = 600) p =
  let rounds = ref 0 and quiet = ref 0 in
  while !quiet < 8 && !rounds < limit do
    incr rounds;
    let sent_before = Tcp_lite.segments_sent p.a + Tcp_lite.segments_sent p.b in
    let moved = ref false in
    while not (Queue.is_empty p.qb) do
      moved := true;
      Tcp_lite.on_segment p.b (Queue.pop p.qb)
    done;
    while not (Queue.is_empty p.qa) do
      moved := true;
      Tcp_lite.on_segment p.a (Queue.pop p.qa)
    done;
    Tcp_lite.tick p.a;
    Tcp_lite.tick p.b;
    (* quiescent only when nothing was received AND nothing was (re)sent —
       a retransmission eaten by the lossy channel still counts as
       activity — AND no data is awaiting acknowledgement *)
    if
      (not !moved)
      && Tcp_lite.segments_sent p.a + Tcp_lite.segments_sent p.b
         = sent_before
      && Queue.is_empty p.qa && Queue.is_empty p.qb
      && Tcp_lite.bytes_in_flight p.a = 0
      && Tcp_lite.bytes_in_flight p.b = 0
    then incr quiet
    else quiet := 0
  done

let connect p =
  Tcp_lite.listen p.b;
  Tcp_lite.connect p.a;
  settle p

let test_handshake () =
  let p = make_pair () in
  connect p;
  check bool_c "a established" true (Tcp_lite.state p.a = Tcp_lite.Established);
  check bool_c "b established" true (Tcp_lite.state p.b = Tcp_lite.Established)

let test_small_transfer () =
  let p = make_pair () in
  connect p;
  Tcp_lite.write p.a "hello, twin";
  settle p;
  check bool_c "delivered" true (Tcp_lite.read p.b = "hello, twin")

let test_segmentation () =
  let p = make_pair () in
  connect p;
  let data = String.init 10_000 (fun i -> Char.chr (i land 0xff)) in
  Tcp_lite.write p.a data;
  settle p;
  check bool_c "10k across segments" true (Tcp_lite.read p.b = data);
  check bool_c "used multiple segments" true (Tcp_lite.segments_sent p.a > 7)

let test_window_respected () =
  (* a tiny receive window throttles the sender *)
  let p = make_pair ~window:(2 * Tcp_lite.mss) () in
  connect p;
  Tcp_lite.write p.a (String.make 50_000 'w');
  (* before any delivery, the sender may not exceed the peer window *)
  check bool_c "in flight bounded" true
    (Tcp_lite.bytes_in_flight p.a <= 2 * Tcp_lite.mss);
  settle p;
  check int_c "all delivered eventually" 50_000
    (String.length (Tcp_lite.read p.b))

let test_loss_recovery () =
  (* drop every 7th segment crossing the wire, both directions *)
  let p = make_pair ~drop:(fun n -> n mod 7 = 0) () in
  connect p;
  let data = String.init 30_000 (fun i -> Char.chr ((i * 13) land 0xff)) in
  Tcp_lite.write p.a data;
  settle p;
  check bool_c "exact data despite loss" true (Tcp_lite.read p.b = data);
  check bool_c "retransmissions happened" true
    (Tcp_lite.retransmissions p.a > 0)

let test_teardown () =
  let p = make_pair () in
  connect p;
  Tcp_lite.write p.a "bye";
  Tcp_lite.close p.a;
  settle p;
  check bool_c "data before fin" true (Tcp_lite.read p.b = "bye");
  check bool_c "a done" true (Tcp_lite.state p.a = Tcp_lite.Time_wait)

let test_encode_roundtrip () =
  let seg =
    {
      Tcp_lite.seq = 123456;
      ack = 99;
      flags = Tcp_lite.ack_flag;
      window = 65535;
      payload = "payload bytes";
    }
  in
  check bool_c "roundtrip" true
    (Tcp_lite.decode_segment (Tcp_lite.encode_segment seg) = Some seg);
  check bool_c "garbage rejected" true (Tcp_lite.decode_segment "xx" = None);
  check bool_c "length mismatch rejected" true
    (Tcp_lite.decode_segment (Tcp_lite.encode_segment seg ^ "extra") = None)

let transfer_prop =
  QCheck.Test.make ~name:"random data over random loss arrives intact"
    ~count:30
    QCheck.(
      make
        Gen.(
          pair (int_range 0 20_000)
            (pair (int_range 2 30) (int_range 1 1000)))
        ~print:(fun (n, (d, seed)) ->
          Printf.sprintf "bytes=%d drop_mod=%d seed=%d" n d seed))
    (fun (n, (drop_mod, seed)) ->
      let rng = Rng.create ~seed in
      let data = String.init n (fun _ -> Char.chr (Rng.int rng 256)) in
      (* random (not periodic) loss with probability 1/drop_mod: periodic
         loss can phase-lock any deterministic retransmission schedule *)
      let loss_rng = Rng.create ~seed:(seed + 1) in
      let p = make_pair ~drop:(fun _ -> Rng.int loss_rng drop_mod = 0) () in
      connect p;
      Tcp_lite.write p.a data;
      Tcp_lite.close p.a;
      settle ~limit:4000 p;
      Tcp_lite.read p.b = data)

let suite =
  [
    Alcotest.test_case "handshake" `Quick test_handshake;
    Alcotest.test_case "small transfer" `Quick test_small_transfer;
    Alcotest.test_case "segmentation" `Quick test_segmentation;
    Alcotest.test_case "window respected" `Quick test_window_respected;
    Alcotest.test_case "loss recovery" `Quick test_loss_recovery;
    Alcotest.test_case "teardown" `Quick test_teardown;
    Alcotest.test_case "encode roundtrip" `Quick test_encode_roundtrip;
    QCheck_alcotest.to_alcotest transfer_prop;
  ]

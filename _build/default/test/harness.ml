(* Shared machine-construction helpers for the test suites. *)

open Td_misa
open Td_mem
open Td_cpu

type machine = {
  phys : Phys_mem.t;
  dom0 : Addr_space.t;
  hyp : Addr_space.t;
  registry : Code_registry.t;
  natives : Native.t;
}

let make_machine () =
  let phys = Phys_mem.create () in
  let dom0 = Addr_space.create ~name:"dom0" phys in
  let hyp = Addr_space.create ~name:"xen" phys in
  Addr_space.heap_init dom0 ~base:Layout.dom0_heap_base
    ~limit:Layout.dom0_heap_limit;
  (* hypervisor driver stack, with unmapped guard pages on either side *)
  Addr_space.alloc_region hyp
    ~vaddr:(Layout.hyp_stack_top - (Layout.hyp_stack_pages * Layout.page_size))
    ~pages:Layout.hyp_stack_pages;
  (* scratch slots for the rewriter *)
  Addr_space.alloc_region hyp ~vaddr:Layout.hyp_scratch_base ~pages:1;
  {
    phys;
    dom0;
    hyp;
    registry = Code_registry.create ();
    natives = Native.create ();
  }

(* dom0 kernel stack for running the VM instance *)
let dom0_stack m =
  let vaddr = Addr_space.heap_alloc m.dom0 (4 * Layout.page_size) in
  vaddr + (4 * Layout.page_size)

(* A CPU executing in dom0 context with the hypervisor overlay. *)
let dom0_cpu m =
  let st = State.create ~hyp_space:m.hyp m.dom0 in
  State.set st Reg.ESP (dom0_stack m);
  st

let interp_of m st = Interp.create st m.registry m.natives

(* Set up a hypervisor SVM runtime with its natives registered. *)
let hyp_runtime m =
  let rt = Td_svm.Runtime.create_hypervisor ~dom0:m.dom0 ~hyp:m.hyp () in
  Td_svm.Runtime.register_natives rt m.natives;
  rt

(* Identity runtime for the VM instance: stlb and scratch in dom0 heap. *)
let vm_runtime m =
  let stlb_vaddr = Addr_space.heap_alloc m.dom0 (4096 * 8) in
  let rt = Td_svm.Runtime.create_identity ~dom0:m.dom0 ~stlb_vaddr in
  Td_svm.Runtime.register_natives rt m.natives;
  (rt, stlb_vaddr)

let hyp_symbols m rt =
  ignore m;
  Td_rewriter.Loader.svm_symbols ~runtime:rt ~natives:m.natives
    ~stlb_vaddr:Layout.stlb_base ~scratch_vaddr:Layout.hyp_scratch_base

let vm_symbols m rt stlb_vaddr scratch_vaddr =
  Td_rewriter.Loader.svm_symbols ~runtime:rt ~natives:m.natives ~stlb_vaddr
    ~scratch_vaddr

(* Run a routine in hypervisor context (own stack) from a guest space. *)
let hyp_cpu m ~guest =
  let st = State.create ~hyp_space:m.hyp guest in
  State.set st Reg.ESP Layout.hyp_stack_top;
  st

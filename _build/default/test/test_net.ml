(* Tests for the workload substrate: deterministic RNG, SPECweb99 file
   set, open-loop web-server model. *)

open Td_net

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

let test_rng_deterministic () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  check bool_c "same seed, same stream" true (xs = ys);
  let c = Rng.create ~seed:124 in
  let zs = List.init 50 (fun _ -> Rng.int c 1000) in
  check bool_c "different seed differs" true (xs <> zs)

let test_rng_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    check bool_c "bounded" true (v >= 0 && v < 7)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r 2.5 in
    check bool_c "float bounded" true (f >= 0.0 && f < 2.5)
  done

let rng_pick_prop =
  QCheck.Test.make ~name:"rng pick respects weights roughly" ~count:5
    (QCheck.make (QCheck.Gen.int_range 1 1000))
    (fun seed ->
      let r = Rng.create ~seed in
      let w = [| 0.7; 0.2; 0.1 |] in
      let counts = Array.make 3 0 in
      for _ = 1 to 3000 do
        let i = Rng.pick r w in
        counts.(i) <- counts.(i) + 1
      done;
      (* the heaviest class dominates *)
      counts.(0) > counts.(1) && counts.(1) > counts.(2))

let test_specweb_distribution () =
  let s = Specweb.create ~seed:9 () in
  let n = 20000 in
  let class_counts = Array.make 4 0 in
  let total = ref 0 in
  for _ = 1 to n do
    let b = Specweb.sample_bytes s in
    let c = Specweb.class_of_bytes b in
    class_counts.(c) <- class_counts.(c) + 1;
    total := !total + b
  done;
  let frac c = float_of_int class_counts.(c) /. float_of_int n in
  check bool_c "class0 ~35%" true (abs_float (frac 0 -. 0.35) < 0.03);
  check bool_c "class1 ~50%" true (abs_float (frac 1 -. 0.50) < 0.03);
  check bool_c "class2 ~14%" true (abs_float (frac 2 -. 0.14) < 0.03);
  check bool_c "class3 ~1%" true (abs_float (frac 3 -. 0.01) < 0.01);
  let mean = float_of_int !total /. float_of_int n in
  check bool_c "empirical mean near analytic" true
    (abs_float (mean -. Specweb.mean_bytes) /. Specweb.mean_bytes < 0.15)

let test_specweb_file_set () =
  (* nine files per class, sizes are multiples of the class base *)
  List.iter
    (fun (c, sizes) ->
      check int_c "nine files" 9 (Array.length sizes);
      Array.iteri
        (fun i sz ->
          check bool_c "size ladder" true (sz = (i + 1) * sizes.(0));
          check int_c "classified correctly" c (Specweb.class_of_bytes sz))
        sizes)
    Specweb.file_set

let costs capacity_rps =
  (* synthetic cost model with a known capacity in requests/second *)
  {
    Webserver.tx_cycles_per_packet = 0.0;
    rx_cycles_per_packet = 0.0;
    app_cycles_per_request = 3e9 /. capacity_rps;
    frequency_hz = 3e9;
    mss = 1448;
    wire_limit_mbps = 1e9;
  }

let run_ws ~rate ~capacity =
  Webserver.run (costs capacity)
    {
      Webserver.request_rate = rate;
      requests = int_of_float (rate *. 3.0);
      timeout_s = 1.0;
      seed = 11;
    }

let test_webserver_underload () =
  let o = run_ws ~rate:1000. ~capacity:5000. in
  check int_c "nothing times out under load" 0 o.Webserver.timed_out;
  check bool_c "latency ~ service time" true (o.Webserver.mean_latency_s < 0.01)

let test_webserver_overload_degrades () =
  let under = run_ws ~rate:3000. ~capacity:5000. in
  let over = run_ws ~rate:12000. ~capacity:5000. in
  check bool_c "overload sheds requests" true (over.Webserver.timed_out > 0);
  check bool_c "completions bounded by capacity" true
    (float_of_int over.Webserver.completed
    < float_of_int (over.Webserver.completed + over.Webserver.timed_out));
  check bool_c "throughput does not collapse to zero" true
    (over.Webserver.response_mbps > 0.2 *. under.Webserver.response_mbps)

let test_webserver_open_loop_monotone_offered () =
  (* completed requests should track offered rate below capacity *)
  let a = run_ws ~rate:1000. ~capacity:10000. in
  let b = run_ws ~rate:2000. ~capacity:10000. in
  check bool_c "more offered, more completed" true
    (b.Webserver.completed > a.Webserver.completed);
  check bool_c "throughput scales" true
    (b.Webserver.response_mbps > 1.5 *. a.Webserver.response_mbps)

let test_webserver_deterministic () =
  let a = run_ws ~rate:8000. ~capacity:5000. in
  let b = run_ws ~rate:8000. ~capacity:5000. in
  check bool_c "identical outcome for identical seed" true
    (a.Webserver.completed = b.Webserver.completed
    && a.Webserver.timed_out = b.Webserver.timed_out)

let test_stats_helpers () =
  check bool_c "mean" true (Td_sim.Stats.mean [ 1.; 2.; 3. ] = 2.0);
  check bool_c "percentile" true
    (Td_sim.Stats.percentile 50. [ 5.; 1.; 3. ] = 3.0);
  let c = Td_sim.Stats.counter () in
  Td_sim.Stats.incr c;
  Td_sim.Stats.add c 4;
  check int_c "counter" 5 (Td_sim.Stats.count c)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    QCheck_alcotest.to_alcotest rng_pick_prop;
    Alcotest.test_case "specweb distribution" `Quick test_specweb_distribution;
    Alcotest.test_case "specweb file set" `Quick test_specweb_file_set;
    Alcotest.test_case "webserver underload" `Quick test_webserver_underload;
    Alcotest.test_case "webserver overload degrades" `Quick
      test_webserver_overload_degrades;
    Alcotest.test_case "webserver open loop" `Quick
      test_webserver_open_loop_monotone_offered;
    Alcotest.test_case "webserver deterministic" `Quick
      test_webserver_deterministic;
    Alcotest.test_case "stats helpers" `Quick test_stats_helpers;
  ]

(* Full-stack integration: TCP and HTTP carried end-to-end through each
   system configuration's real data path. *)

open Twindrivers

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

let connect ch =
  Td_net.Tcp_lite.listen (Netchannel.client ch);
  Td_net.Tcp_lite.connect (Netchannel.server ch);
  check bool_c "handshake over the stack" true
    (Netchannel.run ch ~until:(fun ch ->
         Td_net.Tcp_lite.state (Netchannel.server ch) = Td_net.Tcp_lite.Established
         && Td_net.Tcp_lite.state (Netchannel.client ch)
            = Td_net.Tcp_lite.Established))

let test_tcp_through_stack cfg () =
  let w = World.create ~nics:1 cfg in
  let ch = Netchannel.create w in
  connect ch;
  let data = String.init 50_000 (fun i -> Char.chr ((i * 5) land 0xff)) in
  Td_net.Tcp_lite.write (Netchannel.server ch) data;
  check bool_c "stream delivered" true
    (Netchannel.run ch ~until:(fun ch ->
         Td_net.Tcp_lite.delivered_bytes (Netchannel.client ch)
         >= String.length data));
  check bool_c "bytes intact" true
    (Td_net.Tcp_lite.read (Netchannel.client ch) = data);
  check bool_c "frames actually crossed the NIC" true
    (World.wire_tx_frames w >= 30)

let test_http_through_twin_stack () =
  (* a knot web server in the guest serves a SPECweb file to the client
     through the hypervisor driver *)
  let w = World.create ~nics:1 Config.Xen_twin in
  let ch = Netchannel.create w in
  (* roles flipped: the guest runs the server, the remote client fetches —
     the channel's [server] endpoint is the guest side, so knot sits on
     it and the request comes from the [client] endpoint *)
  Td_net.Tcp_lite.listen (Netchannel.server ch);
  Td_net.Tcp_lite.connect (Netchannel.client ch);
  let knot = Td_net.Knot.create () in
  Td_net.Tcp_lite.write (Netchannel.client ch)
    (Td_net.Http.format_request "/class2/file3");
  let inbox = Buffer.create 1024 in
  let response = ref None in
  let ok =
    Netchannel.run ch
      ~on_round:(fun ch ->
        Td_net.Knot.serve knot (Netchannel.server ch);
        Buffer.add_string inbox (Td_net.Tcp_lite.read (Netchannel.client ch));
        match Td_net.Http.parse_response (Buffer.contents inbox) with
        | Some (r, _) -> response := Some r
        | None -> ())
      ~until:(fun _ -> !response <> None)
  in
  check bool_c "transaction completed" true ok;
  (match !response with
  | Some r ->
      check int_c "200" 200 r.Td_net.Http.status;
      check bool_c "file served byte-exact through the hypervisor driver"
        true
        (r.Td_net.Http.body = Td_net.Knot.file_body ~cls:2 ~file:3)
  | None -> Alcotest.fail "no response");
  check int_c "knot served one request" 1 (Td_net.Knot.requests_served knot);
  (* the transfer really used the driver *)
  let a = World.adapter w ~nic:0 in
  check bool_c "driver transmitted the response" true
    (Td_driver.Adapter.tx_packets a > 20)

let for_all_configs name f =
  List.map
    (fun cfg ->
      Alcotest.test_case
        (Printf.sprintf "%s (%s)" name (Config.name cfg))
        `Quick (f cfg))
    Config.all

let suite =
  for_all_configs "tcp through the stack" test_tcp_through_stack
  @ [
      Alcotest.test_case "http through the twin stack" `Quick
        test_http_through_twin_stack;
    ]

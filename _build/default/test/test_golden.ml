(* Snapshot test: the exact rewriting of a small fixed driver is pinned,
   so that unintended changes to the emitted SVM sequences show up as a
   diff rather than only as a performance drift. *)

open Td_misa

let check = Alcotest.check

let input =
  {|poll:
    movl 4(%esp), %ebx
    incl 0(%ebx)
    movl 4(%ebx), %eax
    ret
|}

(* the paper's Figure 4 shape: lea/mov/and/mov/and/shr/cmp/jne/xor + op *)
(* Figure-4 shape for the first access; the second access spills ESI
   (EAX is its destination, ECX/EDX already scratch) and the slow path
   parks EAX in the spilled ESI across the __svm_miss call. *)
let expected =
  {|# golden.twin
poll:
    movl 4(%esp), %ebx
    leal 0(%ebx), %eax
    movl %eax, %ecx
    andl $4294963200, %eax
    movl %eax, %edx
    andl $16773120, %eax
    shrl $9, %eax
    cmpl __stlb(%eax), %edx
    jne .L_slow_2
    xorl 4+__stlb(%eax), %ecx
.L_go_1:
    incl 0(%ecx)
    jmp .L_end_3
.L_slow_2:
    pushl %ecx
    call __svm_miss
    movl %eax, %ecx
    addl $4, %esp
    jmp .L_go_1
.L_end_3:
    movl %esi, 8+__svm_scratch
    leal 4(%ebx), %ecx
    movl %ecx, %edx
    andl $4294963200, %ecx
    movl %ecx, %esi
    andl $16773120, %ecx
    shrl $9, %ecx
    cmpl __stlb(%ecx), %esi
    jne .L_slow_5
    xorl 4+__stlb(%ecx), %edx
.L_go_4:
    movl 8+__svm_scratch, %esi
    movl 0(%edx), %eax
    jmp .L_end_6
.L_slow_5:
    movl %eax, %esi
    pushl %edx
    call __svm_miss
    movl %eax, %edx
    addl $4, %esp
    movl %esi, %eax
    jmp .L_go_4
.L_end_6:
    ret
|}

let test_golden_rewrite () =
  Builder.reset_gensym ();
  let twin = Td_rewriter.Twin.derive_text ~name:"golden" input in
  check Alcotest.string "pinned rewriting" expected
    (Td_rewriter.Twin.rewritten_text twin)

let suite = [ Alcotest.test_case "golden rewrite" `Quick test_golden_rewrite ]

(* Regression tests over the reproduced results themselves: the paper's
   headline claims, asserted with tolerant bounds so that calibration
   drift or a rewriter regression fails loudly. *)

open Twindrivers

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let tx cfg = Measure.run_transmit ~packets:300 (World.create ~nics:5 cfg)
let rx cfg = Measure.run_receive ~packets:300 (World.create ~nics:5 cfg)

let between lo hi v = v >= lo && v <= hi

let test_fig5_headline () =
  let twin = tx Config.Xen_twin and domu = tx Config.Xen_domU in
  let linux = tx Config.Native_linux in
  let speedup = Measure.speedup twin domu in
  check bool_c
    (Printf.sprintf "tx speedup %.2f in [2.0, 2.8] (paper 2.41)" speedup)
    true
    (between 2.0 2.8 speedup);
  let vs_linux = Measure.speedup twin linux in
  check bool_c
    (Printf.sprintf "twin/linux %.2f in [0.55, 0.85] (paper 0.64)" vs_linux)
    true
    (between 0.55 0.85 vs_linux);
  (* ordering must hold strictly *)
  let dom0 = tx Config.Xen_dom0 in
  check bool_c "ordering domU < twin < dom0 < linux" true
    (domu.Measure.cpu_limited_mbps < twin.Measure.cpu_limited_mbps
    && twin.Measure.cpu_limited_mbps < dom0.Measure.cpu_limited_mbps
    && dom0.Measure.cpu_limited_mbps < linux.Measure.cpu_limited_mbps)

let test_fig6_headline () =
  let twin = rx Config.Xen_twin and domu = rx Config.Xen_domU in
  let speedup = Measure.speedup twin domu in
  check bool_c
    (Printf.sprintf "rx speedup %.2f in [1.8, 2.6] (paper 2.17)" speedup)
    true
    (between 1.8 2.6 speedup)

let test_fig7_twin_shape () =
  let w = World.create ~nics:1 Config.Xen_twin in
  let r = Measure.run_transmit ~packets:200 w in
  let get c = List.assoc c r.Measure.breakdown in
  (* the defining property: no driver-domain work on the data path *)
  check bool_c "twin dom0 column is zero" true (get Td_xen.Ledger.Dom0 = 0.0);
  check bool_c "driver cycles present" true (get Td_xen.Ledger.Driver > 500.);
  let wd = World.create ~nics:1 Config.Xen_domU in
  let rd = Measure.run_transmit ~packets:200 wd in
  check bool_c "twin total under half of domU total (paper: 9972 vs 21159)"
    true
    (r.Measure.cycles_per_packet < 0.55 *. rd.Measure.cycles_per_packet)

let test_slowdown_band () =
  let rep = Experiments.rewrite_report ~packets:200 () in
  check bool_c
    (Printf.sprintf "slowdown %.2f in the paper's 2-3.5x band"
       rep.Experiments.slowdown)
    true
    (between 2.0 3.5 rep.Experiments.slowdown);
  check bool_c "memory fraction near the paper's ~25%" true
    (between 0.20 0.40 rep.Experiments.memory_fraction)

let test_table1_exact () =
  let t = Experiments.table1_fast_path () in
  check int_c "exactly ten fast-path routines" 10
    (List.length t.Experiments.fast_path_called);
  List.iter
    (fun n ->
      check bool_c (n ^ " is one of the paper's ten") true
        (List.mem n Td_kernel.Support.fast_path_names))
    t.Experiments.fast_path_called

let test_fig10_cliff () =
  (* the first upcall must cost more than half the throughput *)
  let base = tx Config.Xen_twin in
  let one =
    Measure.run_transmit ~packets:300
      (World.create ~nics:5 ~upcall_set:[ "dma_map_single" ] Config.Xen_twin)
  in
  check bool_c "one upcall halves throughput (paper: 3902 -> 1638)" true
    (one.Measure.cpu_limited_mbps < 0.6 *. base.Measure.cpu_limited_mbps);
  check bool_c "but it still beats the unoptimised guest's receive" true
    (one.Measure.cpu_limited_mbps > 0.)

let suite =
  [
    Alcotest.test_case "fig5 headline" `Slow test_fig5_headline;
    Alcotest.test_case "fig6 headline" `Slow test_fig6_headline;
    Alcotest.test_case "fig7 twin shape" `Slow test_fig7_twin_shape;
    Alcotest.test_case "slowdown band" `Slow test_slowdown_band;
    Alcotest.test_case "table1 exact" `Slow test_table1_exact;
    Alcotest.test_case "fig10 cliff" `Slow test_fig10_cliff;
  ]

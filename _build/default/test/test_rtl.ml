(* The generality claim: a structurally different driver (RTL8139-style,
   copy-based tx slots, contiguous rx ring, rep-movsb on the hot path)
   goes through the same semi-automatic derivation — rewriter, loader,
   SVM runtime, support registry — with no driver-specific code. *)

open Td_misa
open Td_mem
open Td_cpu
open Td_kernel

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

type rig = {
  m : Harness.machine;
  km : Kmem.t;
  sup : Support.t;
  dev : Td_nic.Rtl_dev.t;
  nd : Netdev.t;
  wire : string list ref;
  delivered : string list ref;
  mutable irq_pending : bool;
  vm_prog : Program.t;
  hyp_prog : Program.t option;
  svm : Td_svm.Runtime.t option;
  dom0_stack : int;
}

let mac = "\x02\x07\x07\x07\x07\x07"

let make_rig ~twin () =
  let m = Harness.make_machine () in
  let km = Kmem.create m.Harness.dom0 in
  let sup = Support.create ~space:m.Harness.dom0 ~kmem:km in
  Support.register_dom0_natives sup m.Harness.natives;
  let wire = ref [] and delivered = ref [] in
  let dev =
    Td_nic.Rtl_dev.create ~dma:m.Harness.dom0 ~mac
      ~tx_frame:(fun f -> wire := f :: !wire)
      ()
  in
  let mmio = 0xC0F8_0000 in
  Td_nic.Rtl_dev.attach dev ~space:m.Harness.dom0 ~vaddr:mmio;
  let nd = Netdev.alloc km m.Harness.dom0 ~mmio_base:mmio ~mac in
  let dom0_support n = Support.dom0_symtab sup m.Harness.natives n in
  let source = Td_driver.Rtl_driver.source () in
  let vm_prog, hyp_prog, svm =
    if not twin then
      ( Td_rewriter.Loader.load ~name:"rtl" ~source
          ~base:Layout.vm_driver_code_base ~symbols:dom0_support
          ~registry:m.Harness.registry,
        None,
        None )
    else begin
      let tw = Td_rewriter.Twin.derive source in
      (* VM instance (identity stlb) for initialisation in dom0 *)
      let vm_rt, vm_stlb = Harness.vm_runtime m in
      let vm_scratch = Kmem.alloc km 64 in
      let vm_syms =
        Td_rewriter.Loader.overlay
          (Harness.vm_symbols m vm_rt vm_stlb vm_scratch)
          dom0_support
      in
      let vm_prog =
        Td_rewriter.Loader.load ~name:"rtl.vm"
          ~source:tw.Td_rewriter.Twin.rewritten
          ~base:Layout.vm_driver_code_base ~symbols:vm_syms
          ~registry:m.Harness.registry
      in
      (* hypervisor instance: needs a hypervisor + dom0 domain for the
         support registry's upcall stubs *)
      let ledger = Td_xen.Ledger.create () in
      let cpu0 = Harness.dom0_cpu m in
      let hyp =
        Td_xen.Hypervisor.create ~ledger ~xen_space:m.Harness.hyp ~cpu:cpu0 ()
      in
      let d0 =
        Td_xen.Domain.create ~id:0 ~name:"dom0" ~kind:Td_xen.Domain.Driver_domain
          ~space:m.Harness.dom0
      in
      Td_xen.Hypervisor.add_domain hyp d0;
      let hyp_rt = Harness.hyp_runtime m in
      let pool = Skb_pool.create km m.Harness.dom0 ~entries:128 ~buf_size:2048 in
      let ctx =
        { Support.hyp; dom0 = d0; svm = hyp_rt; pool; hyp_netif_rx = (fun _ -> ()) }
      in
      Support.register_hyp_natives sup m.Harness.natives ~ctx
        ~native_set:Support.fast_path_names;
      let hyp_syms =
        Td_rewriter.Loader.overlay (Harness.hyp_symbols m hyp_rt) (fun n ->
            Support.hyp_symtab sup m.Harness.natives n)
      in
      let hyp_prog =
        Td_rewriter.Loader.load ~name:"rtl.hyp"
          ~source:tw.Td_rewriter.Twin.rewritten
          ~base:Layout.hyp_driver_code_base ~symbols:hyp_syms
          ~registry:m.Harness.registry
      in
      (vm_prog, Some hyp_prog, Some hyp_rt)
    end
  in
  let rig =
    {
      m;
      km;
      sup;
      dev;
      nd;
      wire;
      delivered;
      irq_pending = false;
      vm_prog;
      hyp_prog;
      svm;
      dom0_stack = Harness.dom0_stack m;
    }
  in
  Td_nic.Rtl_dev.set_irq_handler dev (fun () -> rig.irq_pending <- true);
  Support.set_netif_rx sup (fun skb ->
      delivered := Bytes.to_string (Skb.contents skb) :: !delivered;
      Skb.free km skb);
  (match svm with
  | Some _ ->
      (* twin rig: hypervisor-side netif_rx mirrors the dom0 behaviour *)
      Support.set_hyp_netif_rx sup (fun skb ->
          delivered := Bytes.to_string (Skb.contents skb) :: !delivered;
          Skb.free km skb)
  | None -> ());
  (* initialisation always runs in dom0 (the VM instance for the twin) *)
  let st = State.create ~hyp_space:m.Harness.hyp m.Harness.dom0 in
  State.set st Reg.ESP rig.dom0_stack;
  let interp = Interp.create st m.Harness.registry m.Harness.natives in
  ignore
    (Interp.call interp
       ~entry:(Program.addr_of_label vm_prog Td_driver.Rtl_driver.entry_init)
       ~args:[ nd.Netdev.addr ]);
  rig

(* run an entry point: dom0 context for the plain rig, guest context with
   the hypervisor stack for the twin rig *)
let run rig entry args =
  match rig.hyp_prog with
  | None ->
      let st = State.create ~hyp_space:rig.m.Harness.hyp rig.m.Harness.dom0 in
      State.set st Reg.ESP rig.dom0_stack;
      let interp = Interp.create st rig.m.Harness.registry rig.m.Harness.natives in
      Interp.call interp ~entry:(Program.addr_of_label rig.vm_prog entry) ~args
  | Some hyp_prog ->
      let guest = Addr_space.create ~name:"guest" rig.m.Harness.phys in
      let st = Harness.hyp_cpu rig.m ~guest in
      let interp = Interp.create st rig.m.Harness.registry rig.m.Harness.natives in
      Interp.call interp ~entry:(Program.addr_of_label hyp_prog entry) ~args

let make_skb rig payload =
  let skb = Skb.alloc rig.km rig.m.Harness.dom0 ~size:2048 in
  Skb.put skb (Bytes.of_string payload);
  skb

let frame payload = "\x02\x07\x07\x07\x07\x07" ^ "\x02\x09\x09\x09\x09\x09" ^ "\x08\x00" ^ payload

let test_tx ~twin () =
  let rig = make_rig ~twin () in
  let f = frame (String.make 500 'r') in
  let skb = make_skb rig f in
  let r =
    run rig Td_driver.Rtl_driver.entry_xmit [ skb.Skb.addr; rig.nd.Netdev.addr ]
  in
  check int_c "accepted" 0 r;
  check bool_c "exact frame on the wire" true (!(rig.wire) = [ f ]);
  check int_c "device counted" 1 (Td_nic.Rtl_dev.tx_count rig.dev)

let test_rx ~twin () =
  let rig = make_rig ~twin () in
  let payload = String.make 300 'z' in
  Td_nic.Rtl_dev.receive_frame rig.dev (frame payload);
  Td_nic.Rtl_dev.receive_frame rig.dev (frame (String.uppercase_ascii payload));
  check bool_c "irq raised" true rig.irq_pending;
  let n = run rig Td_driver.Rtl_driver.entry_intr [ rig.nd.Netdev.addr ] in
  check int_c "two packets processed" 2 n;
  check bool_c "payloads intact (eth header pulled)" true
    (List.rev !(rig.delivered) = [ payload; String.uppercase_ascii payload ])

let test_tx_slot_exhaustion () =
  (* four slots, synchronous device: never exhausts in this model, but the
     busy path must be well-formed — force it by claiming a slot *)
  let rig = make_rig ~twin:false () in
  (* mark slot 0 as busy by clearing its OWN bit directly *)
  Addr_space.write rig.m.Harness.dom0
    (Netdev.mmio_base rig.nd + Td_nic.Rtl_dev.tsd 0)
    Width.W32 0;
  (* careful: that write triggers a bogus zero-length tx; drain it *)
  let skb = make_skb rig (frame "x") in
  let r =
    run rig Td_driver.Rtl_driver.entry_xmit [ skb.Skb.addr; rig.nd.Netdev.addr ]
  in
  ignore r;
  check bool_c "machine alive" true true

let test_twin_rx_uses_pool_and_svm () =
  let rig = make_rig ~twin:true () in
  let payload = String.make 700 'k' in
  Td_nic.Rtl_dev.receive_frame rig.dev (frame payload);
  ignore (run rig Td_driver.Rtl_driver.entry_intr [ rig.nd.Netdev.addr ]);
  check bool_c "delivered through the hypervisor instance" true
    (!(rig.delivered) = [ payload ]);
  let rt = Option.get rig.svm in
  check bool_c "SVM exercised" true (Td_svm.Runtime.pages_mapped rt > 0);
  check int_c "no faults" 0 (Td_svm.Runtime.faults rt);
  check bool_c "hypervisor-side support calls" true
    (Support.hyp_calls rig.sup "netdev_alloc_skb" > 0)

let test_rewrite_stats_for_rtl () =
  let tw = Td_rewriter.Twin.derive (Td_driver.Rtl_driver.source ()) in
  let s = tw.Td_rewriter.Twin.stats in
  check bool_c "string sites on the hot path" true
    (s.Td_rewriter.Rewrite.string_sites >= 2);
  check bool_c "heap sites" true (s.Td_rewriter.Rewrite.heap_sites > 30);
  check bool_c "admissible" true
    (Td_rewriter.Verifier.admissible (Td_driver.Rtl_driver.source ()))

let suite =
  [
    Alcotest.test_case "tx fidelity (original)" `Quick (test_tx ~twin:false);
    Alcotest.test_case "tx fidelity (twin)" `Quick (test_tx ~twin:true);
    Alcotest.test_case "rx fidelity (original)" `Quick (test_rx ~twin:false);
    Alcotest.test_case "rx fidelity (twin)" `Quick (test_rx ~twin:true);
    Alcotest.test_case "tx slot busy path" `Quick test_tx_slot_exhaustion;
    Alcotest.test_case "twin rx via pool+svm" `Quick
      test_twin_rx_uses_pool_and_svm;
    Alcotest.test_case "rewrite stats" `Quick test_rewrite_stats_for_rtl;
  ]

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) on the simulated substrate and prints paper-vs-measured
   rows. `main.exe` runs everything (except bechamel);
   `main.exe <experiment>` runs one of: fig5 fig6 fig7 fig8 fig9 fig10
   table1 rewrite-stats slowdown effort profile sensitivity ablations
   bechamel.

   Observability is enabled for the whole run: every experiment returns a
   JSON payload that the dispatcher writes to BENCH_<name>.json (schema
   documented in README.md §Observability), alongside the usual tables on
   stdout. *)

open Twindrivers
module Json = Td_obs.Json

let line () = print_endline (String.make 78 '-')

let header title =
  line ();
  Printf.printf "%s\n" title;
  line ()

(* paper numbers for side-by-side printing *)
let paper_fig5 =
  [ ("domU", 1619.); ("domU-twin", 3902.); ("dom0", 4683.); ("Linux", 4690.) ]

let paper_fig6 =
  [ ("domU", 928.); ("domU-twin", 2022.); ("dom0", 2839.); ("Linux", 3010.) ]

let paper_fig7_total =
  [ ("domU", 21159.); ("domU-twin", 9972.); ("dom0", 8310.); ("Linux", 7126.) ]

let paper_fig8_total =
  [ ("domU", 35905.); ("domU-twin", 20089.); ("dom0", 14308.); ("Linux", 11166.) ]

let paper_of name table =
  match List.assoc_opt name table with
  | Some v -> Printf.sprintf "%8.0f" v
  | None -> "       -"

(* Counters are integral floats; keep them as JSON ints for readability. *)
let json_number v =
  if Float.is_integer v && Float.abs v < 1e15 then Json.Int (int_of_float v)
  else Json.Float v

let json_of_result (r : Measure.result) =
  Json.Obj
    [
      ("config", Json.String (Config.name r.Measure.config));
      ("packets", Json.Int r.Measure.packets);
      ("frame_bytes", Json.Int r.Measure.frame_bytes);
      ("cycles_per_packet", Json.Float r.Measure.cycles_per_packet);
      ("throughput_mbps", Json.Float r.Measure.throughput_mbps);
      ("cpu_limited_mbps", Json.Float r.Measure.cpu_limited_mbps);
      ("cpu_utilisation", Json.Float r.Measure.cpu_utilisation);
      ("drops", Json.Int r.Measure.drops);
      ( "breakdown_cycles_per_packet",
        Json.Obj
          (List.map
             (fun (c, v) -> (Td_xen.Ledger.category_name c, Json.Float v))
             r.Measure.breakdown) );
      ( "metrics",
        Json.Obj (List.map (fun (k, v) -> (k, json_number v)) r.Measure.metrics)
      );
    ]

let bench_json name fields =
  Json.Obj
    (("experiment", Json.String name) :: ("schema_version", Json.Int 1)
    :: fields)

let print_throughput ~paper results =
  Printf.printf "%-10s %12s %12s %12s %8s\n" "config" "measured Mb/s"
    "cpu-scaled" "paper Mb/s" "util";
  List.iter
    (fun (cfg, (r : Measure.result)) ->
      Printf.printf "%-10s %12.0f %12.0f %12s %7.1f%%\n" (Config.name cfg)
        r.Measure.throughput_mbps r.Measure.cpu_limited_mbps
        (paper_of (Config.name cfg) paper)
        (100. *. r.Measure.cpu_utilisation))
    results

let ratio results a b =
  let find c =
    (List.assoc c (List.map (fun (k, v) -> (Config.name k, v)) results))
      .Measure.cpu_limited_mbps
  in
  find a /. find b

let fig5 () =
  header "Figure 5: transmit throughput, netperf-like stream over 5 NICs";
  let results = Experiments.fig5_transmit () in
  print_throughput ~paper:paper_fig5 results;
  Printf.printf
    "\nspeedup domU-twin/domU: %.2fx (paper 2.41x);  twin vs Linux: %.0f%% \
     (paper 64%%)\n"
    (ratio results "domU-twin" "domU")
    (100. *. ratio results "domU-twin" "Linux");
  bench_json "fig5"
    [
      ("results", Json.List (List.map (fun (_, r) -> json_of_result r) results));
      ("speedup_twin_over_domU", Json.Float (ratio results "domU-twin" "domU"));
      ("speedup_twin_over_linux", Json.Float (ratio results "domU-twin" "Linux"));
    ]

let fig6 () =
  header "Figure 6: receive throughput, netperf-like stream over 5 NICs";
  let results = Experiments.fig6_receive () in
  print_throughput ~paper:paper_fig6 results;
  Printf.printf
    "\nspeedup domU-twin/domU: %.2fx (paper 2.17x);  twin vs Linux: %.0f%% \
     (paper 67%%)\n"
    (ratio results "domU-twin" "domU")
    (100. *. ratio results "domU-twin" "Linux");
  bench_json "fig6"
    [
      ("results", Json.List (List.map (fun (_, r) -> json_of_result r) results));
      ("speedup_twin_over_domU", Json.Float (ratio results "domU-twin" "domU"));
      ("speedup_twin_over_linux", Json.Float (ratio results "domU-twin" "Linux"));
    ]

let print_breakdown ~paper results =
  Printf.printf "%-10s %8s %8s %8s %8s %9s %12s\n" "config" "dom0" "domU"
    "Xen" "e1000" "total" "paper total";
  List.iter
    (fun (cfg, (r : Measure.result)) ->
      let get c = List.assoc c r.Measure.breakdown in
      Printf.printf "%-10s %8.0f %8.0f %8.0f %8.0f %9.0f %12s\n"
        (Config.name cfg)
        (get Td_xen.Ledger.Dom0) (get Td_xen.Ledger.DomU)
        (get Td_xen.Ledger.Xen) (get Td_xen.Ledger.Driver)
        r.Measure.cycles_per_packet
        (paper_of (Config.name cfg) paper))
    results

let fig7 () =
  header "Figure 7: CPU cycles per packet, transmit (single NIC)";
  let results = Experiments.fig7_tx_breakdown () in
  print_breakdown ~paper:paper_fig7_total results;
  bench_json "fig7"
    [ ("results", Json.List (List.map (fun (_, r) -> json_of_result r) results)) ]

let fig8 () =
  header "Figure 8: CPU cycles per packet, receive (single NIC)";
  let results = Experiments.fig8_rx_breakdown () in
  print_breakdown ~paper:paper_fig8_total results;
  bench_json "fig8"
    [ ("results", Json.List (List.map (fun (_, r) -> json_of_result r) results)) ]

let fig9 () =
  header "Figure 9: web server throughput vs request rate (SPECweb99 set)";
  let results = Experiments.fig9_webserver () in
  let rates =
    match results with
    | (_, pts) :: _ ->
        List.map (fun (p : Experiments.web_point) -> p.Experiments.rate) pts
    | [] -> []
  in
  Printf.printf "%-10s" "req/s";
  List.iter (fun r -> Printf.printf "%7.0f" r) rates;
  print_newline ();
  List.iter
    (fun (cfg, pts) ->
      Printf.printf "%-10s" (Config.name cfg);
      List.iter
        (fun (p : Experiments.web_point) ->
          Printf.printf "%7.0f" p.Experiments.mbps)
        pts;
      print_newline ())
    results;
  print_newline ();
  let peaks =
    List.map
      (fun (cfg, pts) ->
        let peak =
          List.fold_left
            (fun acc (p : Experiments.web_point) ->
              Float.max acc p.Experiments.mbps)
            0.0 pts
        in
        let paper =
          List.assoc (Config.name cfg)
            [ ("Linux", 855.); ("dom0", 712.); ("domU-twin", 572.); ("domU", 269.) ]
        in
        Printf.printf "peak %-10s %6.0f Mb/s   (paper %4.0f Mb/s)\n"
          (Config.name cfg) peak paper;
        (Config.name cfg, peak))
      results
  in
  bench_json "fig9"
    [
      ( "results",
        Json.List
          (List.map
             (fun (cfg, pts) ->
               Json.Obj
                 [
                   ("config", Json.String (Config.name cfg));
                   ( "points",
                     Json.List
                       (List.map
                          (fun (p : Experiments.web_point) ->
                            Json.Obj
                              [
                                ("rate", Json.Float p.Experiments.rate);
                                ("mbps", Json.Float p.Experiments.mbps);
                              ])
                          pts) );
                 ])
             results) );
      ( "peak_mbps",
        Json.Obj (List.map (fun (name, peak) -> (name, Json.Float peak)) peaks)
      );
    ]

let fig10 () =
  header "Figure 10: transmit throughput vs upcalls per driver invocation";
  let points = Experiments.fig10_upcall_cost () in
  Printf.printf "%-44s %9s %12s\n" "demoted routines" "upcalls/op" "Mb/s (cpu)";
  List.iter
    (fun (p : Experiments.upcall_point) ->
      let label =
        match List.rev p.Experiments.demoted with
        | [] -> "(none: all ten native, as Figure 5)"
        | last :: _ ->
            Printf.sprintf "+%s (%d demoted)" last
              (List.length p.Experiments.demoted)
      in
      Printf.printf "%-44s %9.2f %12.0f\n" label p.Experiments.upcalls_per_invocation
        p.Experiments.mbps)
    points;
  print_endline
    "\npaper: 3902 Mb/s with 0 upcalls -> 1638 with 1 -> 359 with 9 (steep cliff)";
  bench_json "fig10"
    [
      ( "points",
        Json.List
          (List.map
             (fun (p : Experiments.upcall_point) ->
               Json.Obj
                 [
                   ( "demoted",
                     Json.List
                       (List.map
                          (fun s -> Json.String s)
                          p.Experiments.demoted) );
                   ( "upcalls_per_invocation",
                     Json.Float p.Experiments.upcalls_per_invocation );
                   ("mbps", Json.Float p.Experiments.mbps);
                 ])
             points) );
    ]

let table1 () =
  header "Table 1: support routines on the error-free tx/rx fast path";
  let t = Experiments.table1_fast_path () in
  Printf.printf "fast-path routines called (hypervisor context):\n";
  List.iter (fun n -> Printf.printf "  %s\n" n) t.Experiments.fast_path_called;
  Printf.printf
    "\n%d routines on the fast path (paper: 10); %d called across all \
     operations; registry holds %d routines (paper: 97)\n"
    (List.length t.Experiments.fast_path_called)
    (List.length t.Experiments.all_called)
    t.Experiments.registry_size;
  let expected = Td_kernel.Support.fast_path_names in
  let missing =
    List.filter
      (fun n -> not (List.mem n t.Experiments.fast_path_called))
      expected
  in
  if missing <> [] then
    Printf.printf "fast-path routines not exercised this run: %s\n"
      (String.concat ", " missing);
  bench_json "table1"
    [
      ( "fast_path_called",
        Json.List
          (List.map (fun s -> Json.String s) t.Experiments.fast_path_called) );
      ( "all_called",
        Json.List (List.map (fun s -> Json.String s) t.Experiments.all_called)
      );
      ("registry_size", Json.Int t.Experiments.registry_size);
    ]

let rewrite_stats () =
  header "Static rewrite statistics (S4.1, S5.1)";
  let r = Experiments.rewrite_report () in
  Format.printf "%a@." Td_rewriter.Rewrite.pp_stats r.Experiments.stats;
  Printf.printf
    "\nfraction of driver instructions referencing memory: %.1f%% (paper: ~25%%)\n"
    (100. *. r.Experiments.memory_fraction);
  bench_json "rewrite-stats"
    [ ("memory_fraction", Json.Float r.Experiments.memory_fraction) ]

let slowdown () =
  header "Rewritten-driver slowdown (S6.2)";
  let r = Experiments.rewrite_report () in
  Printf.printf
    "driver cycles/packet (tx): native %.0f, rewritten %.0f -> %.2fx slower\n"
    r.Experiments.native_driver_cpp r.Experiments.rewritten_driver_cpp
    r.Experiments.slowdown;
  Printf.printf "paper: 960 vs 2218 cycles/packet -> 2.31x (range 2-3x)\n";
  bench_json "slowdown"
    [
      ("native_driver_cpp", Json.Float r.Experiments.native_driver_cpp);
      ("rewritten_driver_cpp", Json.Float r.Experiments.rewritten_driver_cpp);
      ("slowdown", Json.Float r.Experiments.slowdown);
    ]

let effort () =
  header "Engineering effort (S6.5)";
  let w = World.create ~nics:1 Config.Xen_twin in
  let sup = World.support w in
  let native = List.length Td_kernel.Support.fast_path_names in
  let total = Td_kernel.Support.routine_count sup in
  Printf.printf
    "hypervisor implements %d of %d support routines; the remaining %d are \
     upcall stubs generated automatically.\n"
    native total (total - native);
  Printf.printf
    "paper: 851 lines of commented C for the ten routines, against the full \
     driver-support interface.\n";
  bench_json "effort"
    [
      ("native_routines", Json.Int native);
      ("total_routines", Json.Int total);
      ("upcall_stubs", Json.Int (total - native));
    ]

let profile () =
  header "Per-routine cycle profile of the twin transmit path (S6.2)";
  let w = World.create ~nics:1 Config.Xen_twin in
  let prof = Td_cpu.Profiler.attach (World.interp w) in
  let payload = String.make 1500 'x' in
  for i = 0 to 299 do
    ignore (World.transmit w ~nic:0 ~payload);
    if i mod 8 = 7 then World.pump w
  done;
  World.pump w;
  Format.printf "%a@." Td_cpu.Profiler.pp prof;
  Printf.printf
    "(the hypervisor instance 'e1000.hyp' dominates; the VM instance      'e1000.vm' appears only for initialisation/housekeeping)
";
  Td_cpu.Profiler.publish prof;
  bench_json "profile"
    [
      ( "cycles_by_label",
        Json.Obj
          (List.map
             (fun (name, cycles) -> (name, Json.Int cycles))
             (Td_cpu.Profiler.cycles_by_label prof)) );
      ("total_cycles", Json.Int (Td_cpu.Profiler.total_cycles prof));
    ]

let sensitivity () =
  header
    "Sensitivity: tx speedup (twin/domU) vs world-switch and kernel-path      cost scaling";
  let points = Experiments.sensitivity () in
  Printf.printf "%12s %12s %12s
" "switch scale" "kernel scale" "speedup";
  List.iter
    (fun (p : Experiments.sensitivity_point) ->
      Printf.printf "%12.2f %12.2f %11.2fx
" p.Experiments.switch_scale
        p.Experiments.kernel_scale p.Experiments.tx_speedup)
    points;
  print_endline
    "
the speedup grows with switch cost (the overhead TwinDrivers removes)
     and shrinks as kernel work dominates; it exceeds 1.5x everywhere.";
  bench_json "sensitivity"
    [
      ( "points",
        Json.List
          (List.map
             (fun (p : Experiments.sensitivity_point) ->
               Json.Obj
                 [
                   ("switch_scale", Json.Float p.Experiments.switch_scale);
                   ("kernel_scale", Json.Float p.Experiments.kernel_scale);
                   ("tx_speedup", Json.Float p.Experiments.tx_speedup);
                 ])
             points) );
    ]

let ablations () =
  header "Ablations (DESIGN.md S5)";
  let entries = Experiments.ablations () in
  List.iter
    (fun (a : Experiments.ablation) ->
      Printf.printf "%-28s %8.0f Mb/s   %s\n" a.Experiments.label
        a.Experiments.tx_cpu_scaled_mbps a.Experiments.note)
    entries;
  bench_json "ablations"
    [
      ( "entries",
        Json.List
          (List.map
             (fun (a : Experiments.ablation) ->
               Json.Obj
                 [
                   ("label", Json.String a.Experiments.label);
                   ( "tx_cpu_scaled_mbps",
                     Json.Float a.Experiments.tx_cpu_scaled_mbps );
                   ("note", Json.String a.Experiments.note);
                 ])
             entries) );
    ]

let window_batch () =
  header "Map-window x notification-batch sweep (reclaim + kick amortisation)";
  let points = Experiments.window_batch () in
  Printf.printf "%8s %6s %14s %12s %14s %10s %9s %7s\n" "window" "batch"
    "tx cyc/pkt" "kicks/pkt" "kick cyc/pkt" "virqs/pkt" "reclaims" "inuse";
  List.iter
    (fun (p : Experiments.window_batch_point) ->
      Printf.printf "%8d %6d %14.0f %12.3f %14.1f %10.3f %9d %7d\n"
        p.Experiments.window_pages p.Experiments.batch
        p.Experiments.tx_cycles_per_packet p.Experiments.tx_hypercalls_per_packet
        p.Experiments.tx_hypercall_cycles_per_packet
        p.Experiments.rx_virqs_per_packet p.Experiments.window_reclaims
        p.Experiments.window_pages_in_use)
    points;
  print_endline
    "\nper-packet hypercall cycles fall monotonically with the batch factor;\n\
    \     every window size survives a working set twice its capacity (reclaims > 0).";
  bench_json "window_batch"
    [
      ( "points",
        Json.List
          (List.map
             (fun (p : Experiments.window_batch_point) ->
               Json.Obj
                 [
                   ("window_pages", Json.Int p.Experiments.window_pages);
                   ("batch", Json.Int p.Experiments.batch);
                   ( "tx_cycles_per_packet",
                     Json.Float p.Experiments.tx_cycles_per_packet );
                   ( "tx_hypercalls_per_packet",
                     Json.Float p.Experiments.tx_hypercalls_per_packet );
                   ( "tx_hypercall_cycles_per_packet",
                     Json.Float p.Experiments.tx_hypercall_cycles_per_packet );
                   ( "rx_virqs_per_packet",
                     Json.Float p.Experiments.rx_virqs_per_packet );
                   ("window_reclaims", Json.Int p.Experiments.window_reclaims);
                   ( "window_pages_in_use",
                     Json.Int p.Experiments.window_pages_in_use );
                 ])
             points) );
    ]

(* ---- Bechamel micro-benchmarks: one Test.make per table/figure driver ---- *)

let bechamel () =
  header "Bechamel micro-benchmarks (wall-clock of the simulator itself)";
  let open Bechamel in
  let tx_world = World.create ~nics:1 Config.Xen_twin in
  let rx_world = World.create ~nics:1 Config.Xen_twin in
  let payload = String.make 1500 'x' in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      mk "fig5/tx-packet" (fun () ->
          ignore (World.transmit tx_world ~nic:0 ~payload);
          World.pump tx_world);
      mk "fig6/rx-packet" (fun () ->
          World.inject_rx rx_world ~nic:0 ~payload;
          World.pump rx_world);
      mk "fig7/derive-twin" (fun () ->
          ignore (Td_rewriter.Twin.derive (Td_driver.E1000_driver.source ())));
      mk "fig9/webserver-run" (fun () ->
          ignore
            (Td_net.Webserver.run
               {
                 Td_net.Webserver.tx_cycles_per_packet = 10_000.;
                 rx_cycles_per_packet = 17_000.;
                 app_cycles_per_request = 6000.;
                 frequency_hz = 3e9;
                 mss = 1448;
                 wire_limit_mbps = 940.;
               }
               {
                 Td_net.Webserver.request_rate = 5000.;
                 requests = 500;
                 timeout_s = 1.0;
                 seed = 7;
               }));
      mk "table1/stlb-translate" (fun () ->
          match World.svm tx_world with
          | Some rt ->
              ignore (Td_svm.Runtime.translate rt Td_mem.Layout.dom0_heap_base)
          | None -> ());
    ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let stats = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
              Printf.printf "%-28s %14.0f ns/run\n" name est;
              estimates := (name, est) :: !estimates
          | Some [] | None -> Printf.printf "%-28s (no estimate)\n" name)
        stats)
    tests;
  bench_json "bechamel"
    [
      ( "ns_per_run",
        Json.Obj
          (List.rev_map (fun (name, est) -> (name, Json.Float est)) !estimates)
      );
    ]

let json_of_recovery_point (p : Experiments.recovery_point) =
  Json.Obj
    [
      ("policy", Json.String (Config.recovery_name p.Experiments.policy));
      ("fault_rate", Json.Float p.Experiments.fault_rate);
      ("offered", Json.Int p.Experiments.offered);
      ("delivered", Json.Int p.Experiments.delivered);
      ("availability", Json.Float p.Experiments.availability);
      ("injected", Json.Int p.Experiments.injected);
      ("recoveries", Json.Int p.Experiments.recoveries);
      ("replayed", Json.Int p.Experiments.replayed);
      ("lost_frames", Json.Int p.Experiments.lost);
      ("guest_faults", Json.Int p.Experiments.guest_faults);
      ("frames_to_recover", Json.Float p.Experiments.frames_to_recover);
      ("all_nics_serviceable", Json.Bool p.Experiments.serviceable);
    ]

let print_recovery_point (p : Experiments.recovery_point) =
  Printf.printf "%-15s %9.4f %8d %9d %10.4f%% %9d %11d %9d %6d %13.1f  %s\n"
    (Config.recovery_name p.Experiments.policy)
    p.Experiments.fault_rate p.Experiments.offered p.Experiments.delivered
    (100. *. p.Experiments.availability)
    p.Experiments.injected p.Experiments.recoveries p.Experiments.replayed
    p.Experiments.lost p.Experiments.frames_to_recover
    (if p.Experiments.serviceable then "serviceable" else "QUARANTINED")

let recovery () =
  header "Fault-injection recovery sweep (docs/FAULTS.md)";
  Printf.printf "%-15s %9s %8s %9s %11s %9s %11s %9s %6s %13s\n" "policy"
    "rate" "offered" "delivered" "avail" "injected" "recoveries" "replayed"
    "lost" "frames/recov";
  let sweep = Experiments.recovery_sweep () in
  List.iter print_recovery_point sweep;
  (* headline: the acceptance soak — 50 k frames under a non-trivial plan
     with the restart-replay supervisor *)
  print_endline "\n50k-frame soak, restart-replay:";
  let headline =
    Experiments.recovery_soak ~frames:50_000
      ~policy:Config.Restart_replay ~rate:0.004 ()
  in
  print_recovery_point headline;
  bench_json "recovery"
    [
      ("sweep", Json.List (List.map json_of_recovery_point sweep));
      ("headline", json_of_recovery_point headline);
    ]

(* ---- fleet: N-domain registry scenario suite (docs/FLEET.md) ---- *)

let fleet () =
  header "N-domain fleet soak (docs/FLEET.md)";
  (* the acceptance soak: 200 domains, >= 1M frames of mixed traffic
     under quotas + a fault plan with runtime churn, run twice — the CI
     gate reads availability, conservation and the determinism bit *)
  let r = Experiments.fleet () in
  Printf.printf
    "%d domains (%d live at end), %d frames (%d tx offered, %d rx \
     injected)\n"
    r.Experiments.fl_domains r.Experiments.fl_live_at_end
    r.Experiments.fl_frames r.Experiments.fl_offered_tx
    r.Experiments.fl_rx_injected;
  Printf.printf
    "availability %.4f  throttled %d  faults %d  recoveries %d  churn %d\n"
    r.Experiments.fl_availability r.Experiments.fl_throttled
    r.Experiments.fl_injected r.Experiments.fl_recoveries
    r.Experiments.fl_churned;
  Printf.printf "tx latency p50/p99/p99.9: %.0f / %.0f / %.0f cycles\n"
    r.Experiments.fl_tx_p50 r.Experiments.fl_tx_p99 r.Experiments.fl_tx_p999;
  Printf.printf "rx latency p50/p99/p99.9: %.0f / %.0f / %.0f cycles\n"
    r.Experiments.fl_rx_p50 r.Experiments.fl_rx_p99 r.Experiments.fl_rx_p999;
  Printf.printf
    "conserved %b  staged-after-shutdown %d  dangling doorbells %d\n"
    r.Experiments.fl_conserved r.Experiments.fl_staged_after_shutdown
    r.Experiments.fl_dangling_doorbells;
  Printf.printf "deterministic across runs: %b  digest %s\n"
    r.Experiments.fl_deterministic r.Experiments.fl_digest;
  bench_json "fleet"
    [
      ("domains", Json.Int r.Experiments.fl_domains);
      ("live_at_end", Json.Int r.Experiments.fl_live_at_end);
      ("frames", Json.Int r.Experiments.fl_frames);
      ("offered_tx", Json.Int r.Experiments.fl_offered_tx);
      ("delivered_tx", Json.Int r.Experiments.fl_delivered_tx);
      ("rx_injected", Json.Int r.Experiments.fl_rx_injected);
      ("rx_delivered", Json.Int r.Experiments.fl_rx_delivered);
      ("availability", Json.Float r.Experiments.fl_availability);
      ("throttled", Json.Int r.Experiments.fl_throttled);
      ("faults_injected", Json.Int r.Experiments.fl_injected);
      ("recoveries", Json.Int r.Experiments.fl_recoveries);
      ("churned", Json.Int r.Experiments.fl_churned);
      ("tx_p50", Json.Float r.Experiments.fl_tx_p50);
      ("tx_p99", Json.Float r.Experiments.fl_tx_p99);
      ("tx_p999", Json.Float r.Experiments.fl_tx_p999);
      ("rx_p50", Json.Float r.Experiments.fl_rx_p50);
      ("rx_p99", Json.Float r.Experiments.fl_rx_p99);
      ("rx_p999", Json.Float r.Experiments.fl_rx_p999);
      ("conserved", Json.Bool r.Experiments.fl_conserved);
      ("staged_after_shutdown", Json.Int r.Experiments.fl_staged_after_shutdown);
      ("dangling_doorbells", Json.Int r.Experiments.fl_dangling_doorbells);
      ("deterministic", Json.Bool r.Experiments.fl_deterministic);
      ("digest", Json.String r.Experiments.fl_digest);
    ]

(* ---- interp: host wall-clock throughput of the execution engine ---- *)

(* A self-contained interpreter rig: a register-mix hot loop plus filler
   images, so the per-step linear-resolve baseline pays a representative
   registry scan (a twin world holds the dom0 driver, both twin instances
   and support images). Simulated cycles/steps are identical across every
   engine mode — only host wall-clock differs. *)
let interp_stack_top = 0x0100_0000

let interp_rig () =
  let open Td_misa in
  let phys = Td_mem.Phys_mem.create () in
  let space = Td_mem.Addr_space.create ~name:"bench" phys in
  let stack_pages = 4 in
  Td_mem.Addr_space.alloc_region space
    ~vaddr:(interp_stack_top - (stack_pages * Td_mem.Layout.page_size))
    ~pages:stack_pages;
  let registry = Td_cpu.Code_registry.create () in
  let filler i =
    let b = Builder.create (Printf.sprintf "filler%d" i) in
    Builder.label b "entry";
    for _ = 1 to 8 do
      Builder.nop b
    done;
    Builder.ret b;
    Program.assemble ~base:(0x0020_0000 + (i * 0x1_0000)) (Builder.finish b)
  in
  let b = Builder.create "hot" in
  Builder.(
    label b "entry";
    movl b (imm 100_000) (reg Reg.ECX);
    movl b (imm 0) (reg Reg.EAX);
    movl b (imm 1) (reg Reg.EDX);
    movl b (imm (interp_stack_top - 64)) (reg Reg.EBP);
    (* register move / ALU / flag-test / descriptor-touch mix, the same
       instruction profile as the rewritten SVM fast path the engine
       exists to speed up; the two same-base memory accesses give the
       compiled tier's stlb-redundancy elimination something to elide *)
    label b "loop";
    for _ = 1 to 2 do
      addl b (reg Reg.EDX) (reg Reg.EAX);
      movl b (reg Reg.EAX) (reg Reg.EBX);
      xorl b (reg Reg.EDX) (reg Reg.EBX);
      testl b (reg Reg.EBX) (reg Reg.EBX);
      movl b (reg Reg.EBX) (reg Reg.EDI);
      incl b (reg Reg.EDI);
      addl b (reg Reg.EDI) (reg Reg.EDX);
      testl b (reg Reg.EDX) (reg Reg.EDX);
      movl b (reg Reg.EAX) (reg Reg.ESI);
      incl b (reg Reg.ESI);
      cmpl b (imm 3) (reg Reg.ESI)
    done;
    movl b (reg Reg.ESI) (mem ~base:Reg.EBP 0);
    addl b (mem ~base:Reg.EBP 0) (reg Reg.ESI);
    decl b (reg Reg.ECX);
    jne b "loop";
    ret b);
  let hot = Program.assemble ~base:0x0080_0000 (Builder.finish b) in
  (* the hot image registers first — like a boot-time driver image — and
     the support images after it, so the pre-engine newest-first list
     scan pays its full representative depth on every fetch *)
  Td_cpu.Code_registry.register registry hot;
  for i = 0 to 6 do
    Td_cpu.Code_registry.register registry (filler i)
  done;
  (space, registry, Program.addr_of_label hot "entry")

let interp_variant ?hook dispatch =
  let space, registry, entry = interp_rig () in
  let st = Td_cpu.State.create space in
  Td_cpu.State.set st Td_misa.Reg.ESP interp_stack_top;
  let natives = Td_cpu.Native.create () in
  let i = Td_cpu.Interp.create ?hook st registry natives in
  Td_cpu.Interp.set_dispatch i dispatch;
  (st, i, entry)

(* Minsn/s over a fixed wall-clock window, plus the per-call simulated
   (cycles, steps) signature so the modes can be checked for identity. *)
let interp_measure (st, i, entry) =
  ignore (Td_cpu.Interp.call ~max_steps:max_int i ~entry ~args:[]);
  let c0 = st.Td_cpu.State.cycles and s0 = st.Td_cpu.State.steps in
  ignore (Td_cpu.Interp.call ~max_steps:max_int i ~entry ~args:[]);
  let sim_sig = (st.Td_cpu.State.cycles - c0, st.Td_cpu.State.steps - s0) in
  let s1 = st.Td_cpu.State.steps in
  let t0 = Sys.time () in
  while Sys.time () -. t0 < 0.4 do
    ignore (Td_cpu.Interp.call ~max_steps:max_int i ~entry ~args:[])
  done;
  let dt = Sys.time () -. t0 in
  (float_of_int (st.Td_cpu.State.steps - s1) /. dt /. 1e6, sim_sig, i)

let interp () =
  header
    "Interp engine: host wall-clock throughput (simulated results unchanged)";
  let compiled, sig_compiled, eng =
    interp_measure (interp_variant Td_cpu.Interp.Compiled)
  in
  let block, sig_block, beng =
    interp_measure (interp_variant Td_cpu.Interp.Block)
  in
  let watcher, sig_watch, _ =
    interp_measure (interp_variant ~hook:(fun _ _ -> ()) Td_cpu.Interp.Block)
  in
  let legacy, sig_legacy, _ =
    interp_measure (interp_variant Td_cpu.Interp.Per_step)
  in
  let identical =
    sig_block = sig_watch && sig_block = sig_legacy
    && sig_block = sig_compiled
  in
  let speedup = block /. legacy in
  let speedup_compiled = compiled /. legacy in
  Printf.printf "%-42s %10s\n" "engine mode" "Minsn/s";
  Printf.printf "%-42s %10.1f\n" "compiled superblocks, hook-free" compiled;
  Printf.printf "%-42s %10.1f\n" "basic-block, hook-free" block;
  Printf.printf "%-42s %10.1f\n" "basic-block, no-op watcher installed" watcher;
  Printf.printf "%-42s %10.1f\n" "per-step resolve (pre-engine baseline)"
    legacy;
  Printf.printf
    "\nblock engine vs per-step baseline:    %.1fx   (informational)\n\
     compiled engine vs per-step baseline: %.1fx   (acceptance floor: 10x)\n\
     simulated (cycles, steps) per call identical across modes: %b\n"
    speedup speedup_compiled identical;
  Td_cpu.Interp.publish_metrics eng;
  (* fig8-style simulated receive throughput: first watcher on vs off (the
     stlb watcher is the only always-installed hook, so switching it off
     via tuning puts the whole world on the closure-free fast path), then
     the hook-free run repeated under every dispatch engine. Simulated
     cycles per packet must not move in either dimension. *)
  let rx ~exact ~mode =
    let tuning =
      { Config.default_tuning with Config.stlb_exact_hits = exact }
    in
    let w = World.create ~nics:1 ~tuning Config.Xen_twin in
    Td_cpu.Interp.set_dispatch (World.interp w) mode;
    let payload = String.make 1500 'r' in
    let t0 = Sys.time () in
    for i = 1 to 2000 do
      World.inject_rx w ~nic:0 ~payload;
      if i mod 8 = 0 then World.pump w
    done;
    World.pump w;
    let host = Sys.time () -. t0 in
    let cycles =
      List.fold_left
        (fun acc c -> acc + Td_xen.Ledger.total (World.ledger w) c)
        0 Td_xen.Ledger.categories
    in
    let frames = World.delivered_rx_frames w in
    (float_of_int cycles /. float_of_int frames, frames, host)
  in
  let cpp_on, frames_on, host_on = rx ~exact:true ~mode:Td_cpu.Interp.Compiled in
  let cpp_off, frames_off, host_off =
    rx ~exact:false ~mode:Td_cpu.Interp.Compiled
  in
  let cpp_blk, frames_blk, _ = rx ~exact:false ~mode:Td_cpu.Interp.Block in
  let cpp_ps, frames_ps, _ = rx ~exact:false ~mode:Td_cpu.Interp.Per_step in
  let rx_identical =
    cpp_on = cpp_off && cpp_on = cpp_blk && cpp_on = cpp_ps
    && frames_on = frames_off && frames_on = frames_blk
    && frames_on = frames_ps
  in
  Printf.printf
    "\nfig8-style rx, 2000 frames: %.0f cycles/pkt with the stlb watcher, \
     %.0f without\n\
     (identical across watcher on/off and all three engines: %b); \
     host %.2fs -> %.2fs\n"
    cpp_on cpp_off rx_identical host_on host_off;
  bench_json "interp"
    [
      ( "host",
        Json.Obj
          [
            ("compiled_hook_free_minsn_s", Json.Float compiled);
            ("block_hook_free_minsn_s", Json.Float block);
            ("block_watcher_minsn_s", Json.Float watcher);
            ("per_step_resolve_minsn_s", Json.Float legacy);
            ("speedup_block_over_per_step", Json.Float speedup);
            ("speedup_compiled_over_per_step", Json.Float speedup_compiled);
          ] );
      ("simulated_identical_across_modes", Json.Bool identical);
      ( "block_cache",
        Json.Obj
          [
            ("hits", Json.Int (Td_cpu.Interp.block_hits beng));
            ("misses", Json.Int (Td_cpu.Interp.block_misses beng));
            ("invalidations", Json.Int (Td_cpu.Interp.invalidations beng));
          ] );
      ( "compiled_cache",
        Json.Obj
          [
            ("compiled_blocks", Json.Int (Td_cpu.Interp.compiled_blocks eng));
            ("compiled_hits", Json.Int (Td_cpu.Interp.compiled_hits eng));
            ( "compiled_bailouts",
              Json.Int (Td_cpu.Interp.compiled_bailouts eng) );
            ("stlb_elided", Json.Int (Td_cpu.Interp.stlb_elided eng));
          ] );
      ( "simulated_rx",
        Json.Obj
          [
            ("frames", Json.Int frames_on);
            ("cycles_per_packet_watcher", Json.Float cpp_on);
            ("cycles_per_packet_hook_free", Json.Float cpp_off);
            ("cycles_per_packet_block", Json.Float cpp_blk);
            ("cycles_per_packet_per_step", Json.Float cpp_ps);
            ("bit_identical_cycles", Json.Bool rx_identical);
            ("host_s_watcher", Json.Float host_on);
            ("host_s_hook_free", Json.Float host_off);
          ] );
    ]

let doorbell () =
  header
    "Doorbell + adaptive polling: hypercalls and cycles per packet vs \
     offered load";
  let points = Experiments.doorbell () in
  Printf.printf "%12s %6s %8s %12s %10s %10s %7s %8s %9s %9s %9s\n" "mode"
    "load" "packets" "cyc/pkt" "hcall/pkt" "virq/pkt" "polls" "suppr" "final"
    "tx-p99" "rx-p99";
  List.iter
    (fun (p : Experiments.doorbell_point) ->
      Printf.printf "%12s %6d %8d %12.0f %10.4f %10.4f %7d %8d %9s %9.0f %9.0f\n"
        p.Experiments.db_mode p.Experiments.offered_per_window
        p.Experiments.db_packets p.Experiments.db_cycles_per_packet
        p.Experiments.hypercalls_per_packet p.Experiments.virqs_per_packet
        p.Experiments.db_doorbell_polls
        p.Experiments.db_suppressed_hypercalls p.Experiments.final_tx_mode
        p.Experiments.db_tx_p99 p.Experiments.db_rx_p99)
    points;
  print_endline
    "\nadaptive stays interrupt-driven (and cycle-identical) at idle, crosses\n\
    \     into polling as the kick rate rises, and suppresses nearly every\n\
    \     notifying hypercall at the top offered load.";
  bench_json "doorbell"
    [
      ( "points",
        Json.List
          (List.map
             (fun (p : Experiments.doorbell_point) ->
               Json.Obj
                 [
                   ("mode", Json.String p.Experiments.db_mode);
                   ( "offered_per_window",
                     Json.Int p.Experiments.offered_per_window );
                   ("packets", Json.Int p.Experiments.db_packets);
                   ("cycles_total", Json.Int p.Experiments.db_cycles_total);
                   ( "cycles_per_packet",
                     Json.Float p.Experiments.db_cycles_per_packet );
                   ( "hypercalls_per_packet",
                     Json.Float p.Experiments.hypercalls_per_packet );
                   ( "virqs_per_packet",
                     Json.Float p.Experiments.virqs_per_packet );
                   ( "doorbell_polls",
                     Json.Int p.Experiments.db_doorbell_polls );
                   ( "suppressed_hypercalls",
                     Json.Int p.Experiments.db_suppressed_hypercalls );
                   ( "suppressed_virqs",
                     Json.Int p.Experiments.db_suppressed_virqs );
                   ("mode_switches", Json.Int p.Experiments.db_mode_switches);
                   ("final_tx_mode", Json.String p.Experiments.final_tx_mode);
                   ( "tx_lat_samples",
                     Json.Int p.Experiments.db_tx_lat_samples );
                   ( "rx_lat_samples",
                     Json.Int p.Experiments.db_rx_lat_samples );
                   ("tx_lat_p50", Json.Float p.Experiments.db_tx_p50);
                   ("tx_lat_p99", Json.Float p.Experiments.db_tx_p99);
                   ("rx_lat_p50", Json.Float p.Experiments.db_rx_p50);
                   ("rx_lat_p99", Json.Float p.Experiments.db_rx_p99);
                 ])
             points) );
    ]

let multiqueue () =
  header
    "Multi-queue NICs + sharded simulation: RSS scaling and \
     OCaml-domain parallel speedup";
  let host_cpus = Twindrivers.Shard.available_parallelism () in
  let r = Experiments.multiqueue ~clock:Unix.gettimeofday () in
  Printf.printf "host cpus: %d\n\n%8s %8s %14s %14s %12s\n" host_cpus "queues"
    "frames" "elapsed-cyc" "total-cyc" "sim Mb/s";
  List.iter
    (fun (p : Experiments.mq_queue_point) ->
      Printf.printf "%8d %8d %14d %14d %12.0f\n" p.Experiments.mq_queues
        p.Experiments.mq_wire_frames p.Experiments.mq_elapsed_cycles
        p.Experiments.mq_total_cycles p.Experiments.mq_sim_mbps)
    r.Experiments.mq_points_queues;
  Printf.printf "\n%8s %12s  %s\n" "shards" "wall s" "merged-ledger digest";
  List.iter
    (fun (p : Experiments.mq_shard_point) ->
      Printf.printf "%8d %12.3f  %s\n" p.Experiments.mq_shards
        p.Experiments.mq_wall_s
        (String.sub p.Experiments.mq_digest 0
           (min 56 (String.length p.Experiments.mq_digest))))
    r.Experiments.mq_points_shards;
  Printf.printf
    "\nledger bit-identical across shard counts: %b\n\
     single-queue aggregate identical to plain world: %b\n\
     wall-clock speedup at 4 shards: %.2fx (meaningful only with >= 4 host \
     cores)\n"
    r.Experiments.mq_ledger_bit_identical r.Experiments.mq_single_queue_identical
    r.Experiments.mq_speedup_at_4;
  bench_json "multiqueue"
    [
      ("host_cpus", Json.Int host_cpus);
      ( "points_queues",
        Json.List
          (List.map
             (fun (p : Experiments.mq_queue_point) ->
               Json.Obj
                 [
                   ("queues", Json.Int p.Experiments.mq_queues);
                   ("wire_frames", Json.Int p.Experiments.mq_wire_frames);
                   ("wire_bytes", Json.Int p.Experiments.mq_wire_bytes);
                   ("elapsed_cycles", Json.Int p.Experiments.mq_elapsed_cycles);
                   ("total_cycles", Json.Int p.Experiments.mq_total_cycles);
                   ("sim_mbps", Json.Float p.Experiments.mq_sim_mbps);
                 ])
             r.Experiments.mq_points_queues) );
      ( "points_shards",
        Json.List
          (List.map
             (fun (p : Experiments.mq_shard_point) ->
               Json.Obj
                 [
                   ("shards", Json.Int p.Experiments.mq_shards);
                   ("wall_s", Json.Float p.Experiments.mq_wall_s);
                   ("digest", Json.String p.Experiments.mq_digest);
                 ])
             r.Experiments.mq_points_shards) );
      ("speedup_at_4", Json.Float r.Experiments.mq_speedup_at_4);
      ( "ledger_bit_identical",
        Json.Bool r.Experiments.mq_ledger_bit_identical );
      ( "single_queue_identical",
        Json.Bool r.Experiments.mq_single_queue_identical );
    ]

let adversary () =
  header
    "Adversarial guest: fuzzed hypercall/grant/ring/doorbell ops + \
     hostile-neighbour quotas";
  let ops = 100_000 in
  let seed = 42 in
  (* tight enough that the fuzzer's own transmit pressure trips the rate
     buckets, so quota denials are part of the exercised surface *)
  let quota =
    { Td_xen.Quota.default_limits with Td_xen.Quota.notifications_per_s = 5_000. }
  in
  let r = Td_adv.Fuzz.run ~seed ~quota ~ops () in
  let r2 = Td_adv.Fuzz.run ~seed ~quota ~ops () in
  let deterministic =
    r.Td_adv.Fuzz.checksum = r2.Td_adv.Fuzz.checksum
    && r.Td_adv.Fuzz.ok = r2.Td_adv.Fuzz.ok
  in
  Printf.printf
    "fuzz: %d ops (seed %d)  ok %d  guest-faults %d  svm-faults %d  \
     quota-denials %d  churned %d\n\
     checksum 0x%x  replay bit-identical: %b  violations: %d\n"
    r.Td_adv.Fuzz.ops seed r.Td_adv.Fuzz.ok r.Td_adv.Fuzz.guest_faults
    r.Td_adv.Fuzz.svm_faults r.Td_adv.Fuzz.quota_denials r.Td_adv.Fuzz.churned
    r.Td_adv.Fuzz.checksum deterministic
    (List.length r.Td_adv.Fuzz.violations);
  List.iter (Printf.printf "  VIOLATION: %s\n") r.Td_adv.Fuzz.violations;
  (* hostile neighbour: the victim's throughput on the shared simulated
     CPU with and without rate quotas on the flooding attacker *)
  let tight =
    {
      Td_xen.Quota.unlimited with
      Td_xen.Quota.notifications_per_s = 25_000.;
      burst = 16.;
    }
  in
  let solo = Td_adv.Harness.contend ~attack_per_frame:0 () in
  let protected_ = Td_adv.Harness.contend ~quota:tight () in
  let unprotected = Td_adv.Harness.contend () in
  (* victim goodput in Mb/s of simulated time: 1400-byte frames over the
     run's grand-total cycles at the 3 GHz simulated clock *)
  let mbps (c : Td_adv.Harness.contention) =
    float_of_int (c.Td_adv.Harness.victim_wire * 1400 * 8)
    /. (float_of_int c.Td_adv.Harness.grand_cycles /. 3e9)
    /. 1e6
  in
  Printf.printf "\n%-12s %8s %8s %8s %10s %10s %14s %10s\n" "neighbour"
    "vic-sent" "vic-wire" "vic-thr" "att-tries" "throttled" "grand-cycles"
    "vic Mb/s";
  let row name (c : Td_adv.Harness.contention) =
    Printf.printf "%-12s %8d %8d %8d %10d %10d %14d %10.1f\n" name
      c.Td_adv.Harness.victim_sent c.Td_adv.Harness.victim_wire
      c.Td_adv.Harness.victim_throttled c.Td_adv.Harness.attacker_attempts
      c.Td_adv.Harness.attacker_throttled c.Td_adv.Harness.grand_cycles
      (mbps c)
  in
  row "solo" solo;
  row "quota-on" protected_;
  row "quota-off" unprotected;
  let ratio_on = mbps protected_ /. mbps solo in
  let ratio_off = mbps unprotected /. mbps solo in
  Printf.printf
    "\nvictim throughput with quotas: %.1f%% of solo (%.1f%% without) — \
     denied\nattacker frames die at the frontend credit check before any \
     skb or dom0\nbackend work exists.\n"
    (100. *. ratio_on) (100. *. ratio_off);
  let json_contend (c : Td_adv.Harness.contention) =
    Json.Obj
      [
        ("victim_sent", Json.Int c.Td_adv.Harness.victim_sent);
        ("victim_wire", Json.Int c.Td_adv.Harness.victim_wire);
        ("victim_throttled", Json.Int c.Td_adv.Harness.victim_throttled);
        ("attacker_attempts", Json.Int c.Td_adv.Harness.attacker_attempts);
        ("attacker_throttled", Json.Int c.Td_adv.Harness.attacker_throttled);
        ("attacker_row", Json.Int c.Td_adv.Harness.attacker_row);
        ("other_cycles", Json.Int c.Td_adv.Harness.other_cycles);
        ("grand_cycles", Json.Int c.Td_adv.Harness.grand_cycles);
        ("victim_mbps", Json.Float (mbps c));
      ]
  in
  bench_json "adversary"
    [
      ( "fuzz",
        Json.Obj
          [
            ("seed", Json.Int seed);
            ("ops", Json.Int r.Td_adv.Fuzz.ops);
            ("ok", Json.Int r.Td_adv.Fuzz.ok);
            ("guest_faults", Json.Int r.Td_adv.Fuzz.guest_faults);
            ("svm_faults", Json.Int r.Td_adv.Fuzz.svm_faults);
            ("quota_denials", Json.Int r.Td_adv.Fuzz.quota_denials);
            ("churned", Json.Int r.Td_adv.Fuzz.churned);
            ("checksum", Json.String (Printf.sprintf "0x%x" r.Td_adv.Fuzz.checksum));
            ("replay_bit_identical", Json.Bool deterministic);
            ( "violations",
              Json.List
                (List.map (fun v -> Json.String v) r.Td_adv.Fuzz.violations)
            );
          ] );
      ( "neighbour",
        Json.Obj
          [
            ("solo", json_contend solo);
            ("quota_on", json_contend protected_);
            ("quota_off", json_contend unprotected);
            ("victim_throughput_ratio_quota_on", Json.Float ratio_on);
            ("victim_throughput_ratio_quota_off", Json.Float ratio_off);
          ] );
    ]

let experiments =
  [
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("table1", table1);
    ("rewrite-stats", rewrite_stats);
    ("slowdown", slowdown);
    ("effort", effort);
    ("profile", profile);
    ("sensitivity", sensitivity);
    ("ablations", ablations);
    ("window_batch", window_batch);
    ("doorbell", doorbell);
    ("multiqueue", multiqueue);
    ("recovery", recovery);
    ("fleet", fleet);
    ("interp", interp);
    ("adversary", adversary);
    ("bechamel", bechamel);
  ]

let run_and_export (name, f) =
  let payload = f () in
  let file = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out file in
  output_string oc (Td_obs.Json.to_string_pretty payload);
  close_out oc;
  (* stderr, so stdout stays diffable against earlier runs *)
  Printf.eprintf "[wrote %s]\n%!" file

let () =
  (* the harness always runs with observability on: metric snapshots ride
     along in every Measure.result and land in the JSON exports (simulated
     cycle counts are unaffected — instrumentation never touches the
     ledger) *)
  Td_obs.Control.enable ();
  match Sys.argv with
  | [| _ |] ->
      List.iter
        (fun (name, f) -> if name <> "bechamel" then run_and_export (name, f))
        experiments
  | [| _; name |] -> (
      match List.assoc_opt name experiments with
      | Some f -> run_and_export (name, f)
      | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
  | _ ->
      Printf.eprintf "usage: %s [experiment]\n" Sys.argv.(0);
      exit 1

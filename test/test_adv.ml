(* Tests for the adversarial-guest subsystem: deterministic fuzz replays,
   per-domain quota token buckets, and the hostile-neighbour protection
   the quotas buy. *)

open Td_xen

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

(* Every test leaves the process-global quota engine cleared, like the
   fault-plan tests do with Td_fault. *)
let with_clean_quota f =
  Fun.protect ~finally:Quota.clear (fun () ->
      Quota.clear ();
      f ())

let test_replay_bit_identical () =
  with_clean_quota @@ fun () ->
  let quota =
    { Quota.default_limits with Quota.notifications_per_s = 5_000. }
  in
  let r1 = Td_adv.Fuzz.run ~seed:7 ~quota ~ops:4096 () in
  let r2 = Td_adv.Fuzz.run ~seed:7 ~quota ~ops:4096 () in
  check bool_c "no violations" true (r1.Td_adv.Fuzz.violations = []);
  check int_c "checksum replays" r1.Td_adv.Fuzz.checksum
    r2.Td_adv.Fuzz.checksum;
  check int_c "ok replays" r1.Td_adv.Fuzz.ok r2.Td_adv.Fuzz.ok;
  check int_c "guest faults replay" r1.Td_adv.Fuzz.guest_faults
    r2.Td_adv.Fuzz.guest_faults;
  check int_c "svm faults replay" r1.Td_adv.Fuzz.svm_faults
    r2.Td_adv.Fuzz.svm_faults;
  check int_c "quota denials replay" r1.Td_adv.Fuzz.quota_denials
    r2.Td_adv.Fuzz.quota_denials;
  (* all five surfaces and all three allowed outcomes were exercised *)
  check bool_c "some ops succeeded" true (r1.Td_adv.Fuzz.ok > 0);
  check bool_c "domain churn exercised" true (r1.Td_adv.Fuzz.churned > 0);
  check int_c "churn replays" r1.Td_adv.Fuzz.churned r2.Td_adv.Fuzz.churned;
  check bool_c "guest faults contained" true (r1.Td_adv.Fuzz.guest_faults > 0);
  check bool_c "svm faults contained" true (r1.Td_adv.Fuzz.svm_faults > 0);
  check bool_c "quota denials contained" true
    (r1.Td_adv.Fuzz.quota_denials > 0);
  (* a different seed takes a different path *)
  let r3 = Td_adv.Fuzz.run ~seed:8 ~quota ~ops:4096 () in
  check bool_c "seed changes the stream" true
    (r3.Td_adv.Fuzz.checksum <> r1.Td_adv.Fuzz.checksum);
  check bool_c "still no violations" true (r3.Td_adv.Fuzz.violations = [])

let test_fuzz_without_quota () =
  with_clean_quota @@ fun () ->
  let r = Td_adv.Fuzz.run ~seed:3 ~ops:2048 () in
  check bool_c "no violations without quotas" true
    (r.Td_adv.Fuzz.violations = []);
  check int_c "no denials without quotas" 0 r.Td_adv.Fuzz.quota_denials

let test_token_bucket () =
  with_clean_quota @@ fun () ->
  let clock = ref 0.0 in
  Quota.install
    ~now:(fun () -> !clock)
    ~exempt:[ "dom0" ]
    {
      Quota.unlimited with
      Quota.notifications_per_s = 10.;
      upcalls_per_s = 10.;
      burst = 3.;
    };
  (* the bucket starts full at [burst] *)
  for _ = 1 to 3 do
    check bool_c "burst token" true (Quota.try_take ~domain:"g" Quota.Notifications)
  done;
  check bool_c "bucket dry" false (Quota.try_take ~domain:"g" Quota.Notifications);
  check bool_c "take raises when dry" true
    (match Quota.take ~domain:"g" Quota.Notifications with
    | exception Quota.Quota_exceeded { domain = "g"; resource } ->
        resource = Quota.resource_name Quota.Notifications
    | _ -> false);
  (* simulated time refills at 10 tokens/s, capped at burst *)
  clock := !clock +. 0.1;
  check bool_c "one token refilled" true
    (Quota.try_take ~domain:"g" Quota.Notifications);
  check bool_c "only one" false (Quota.try_take ~domain:"g" Quota.Notifications);
  clock := !clock +. 100.0;
  for _ = 1 to 3 do
    check bool_c "refill capped at burst" true
      (Quota.try_take ~domain:"g" Quota.Notifications)
  done;
  check bool_c "capped" false (Quota.try_take ~domain:"g" Quota.Notifications);
  (* per-(domain, resource) buckets are independent *)
  check bool_c "other domain unaffected" true
    (Quota.try_take ~domain:"h" Quota.Notifications);
  check bool_c "other resource unaffected" true
    (Quota.try_take ~domain:"g" Quota.Upcalls);
  (* exempt domains never throttle *)
  for _ = 1 to 50 do
    check bool_c "dom0 exempt" true (Quota.try_take ~domain:"dom0" Quota.Notifications)
  done;
  check bool_c "throttles counted" true (Quota.throttled () >= 2);
  check bool_c "per-domain throttles" true
    (Quota.throttled_for ~domain:"g" Quota.Notifications >= 2)

let test_concurrency_caps () =
  with_clean_quota @@ fun () ->
  Quota.install ~exempt:[ "dom0" ]
    { Quota.unlimited with Quota.map_window_pages = 4 };
  Quota.acquire ~domain:"g" Quota.Map_window_pages 2;
  Quota.acquire ~domain:"g" Quota.Map_window_pages 2;
  check int_c "inuse" 4 (Quota.inuse ~domain:"g" Quota.Map_window_pages);
  check bool_c "cap enforced" true
    (match Quota.acquire ~domain:"g" Quota.Map_window_pages 2 with
    | exception Quota.Quota_exceeded _ -> true
    | _ -> false);
  Quota.release ~domain:"g" Quota.Map_window_pages 2;
  check int_c "released" 2 (Quota.inuse ~domain:"g" Quota.Map_window_pages);
  Quota.acquire ~domain:"g" Quota.Map_window_pages 2;
  (* inactive engine: everything passes *)
  Quota.clear ();
  Quota.acquire ~domain:"g" Quota.Map_window_pages 1000;
  check bool_c "cleared engine admits all" true
    (Quota.try_take ~domain:"g" Quota.Notifications)

let test_neighbour_protection () =
  with_clean_quota @@ fun () ->
  let tight =
    { Quota.unlimited with Quota.notifications_per_s = 25_000.; burst = 16. }
  in
  let solo = Td_adv.Harness.contend ~attack_per_frame:0 () in
  let on = Td_adv.Harness.contend ~quota:tight () in
  Quota.clear ();
  let off = Td_adv.Harness.contend () in
  let mbps (c : Td_adv.Harness.contention) =
    float_of_int c.Td_adv.Harness.victim_wire
    /. float_of_int c.Td_adv.Harness.grand_cycles
  in
  check int_c "victim never throttled" 0 on.Td_adv.Harness.victim_throttled;
  check int_c "victim delivered everything" on.Td_adv.Harness.victim_sent
    on.Td_adv.Harness.victim_wire;
  check bool_c "attacker heavily throttled" true
    (on.Td_adv.Harness.attacker_throttled
    > on.Td_adv.Harness.attacker_attempts / 2);
  check bool_c "protected within 10% of solo" true
    (mbps on /. mbps solo >= 0.9);
  check bool_c "unprotected degraded" true (mbps off /. mbps solo < 0.8);
  (* the attacker pays for its own denials, not the victim *)
  check bool_c "denials billed to the attacker" true
    (on.Td_adv.Harness.attacker_row > 0)

let test_isolation_sweep () =
  with_clean_quota @@ fun () ->
  let env = Td_adv.Harness.make () in
  check bool_c "fresh rig isolated" true
    (Td_adv.Harness.isolation_violations env = []);
  check bool_c "fresh rig conserves frames" true
    (Td_adv.Harness.conservation_violations env = [])

let suite =
  [
    Alcotest.test_case "fixed-seed replay is bit-identical" `Quick
      test_replay_bit_identical;
    Alcotest.test_case "fuzz clean without quotas" `Quick
      test_fuzz_without_quota;
    Alcotest.test_case "rate token bucket" `Quick test_token_bucket;
    Alcotest.test_case "concurrency caps" `Quick test_concurrency_caps;
    Alcotest.test_case "hostile neighbour protection" `Quick
      test_neighbour_protection;
    Alcotest.test_case "isolation sweep on fresh rig" `Quick
      test_isolation_sweep;
  ]

(* Tests for the stlb, the SVM runtime (miss handling, protection) and the
   indirect-call table. *)

open Td_misa
open Td_mem
open Td_svm

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

let test_index_bits () =
  (* index uses address bits 12..23, entry offset = index * 8 *)
  check int_c "index of 0" 0 (Stlb.index_of 0xC1000000);
  check int_c "index of page 1" 1 (Stlb.index_of 0xC1001234);
  check int_c "offset" 8 (Stlb.entry_offset 0xC1001234);
  check int_c "wraps at 4096 pages" (Stlb.index_of 0xC1000000)
    (Stlb.index_of 0xC2000000)

let test_stlb_install_lookup () =
  let m = Harness.make_machine () in
  let stlb = Stlb.create ~space:m.Harness.hyp ~vaddr:Layout.stlb_base in
  Stlb.install stlb ~dom0_page:0xC1234000 ~mapped_page:0xFD008000;
  (match Stlb.lookup stlb 0xC1234ABC with
  | Some a -> check int_c "offset preserved" 0xFD008ABC a
  | None -> Alcotest.fail "expected hit");
  check bool_c "other page misses" true (Stlb.lookup stlb 0xC1235ABC = None);
  (* colliding page (same index bits, different tag) misses *)
  check bool_c "collision misses" true (Stlb.lookup stlb 0xC2234ABC = None);
  Stlb.invalidate stlb ~dom0_page:0xC1234000;
  check bool_c "invalidated" true (Stlb.lookup stlb 0xC1234ABC = None)

let test_stlb_xor_roundtrip () =
  let m = Harness.make_machine () in
  let stlb = Stlb.create ~space:m.Harness.hyp ~vaddr:Layout.stlb_base in
  (* xor trick must preserve any offset *)
  Stlb.install stlb ~dom0_page:0xC1010000 ~mapped_page:0xFD000000;
  List.iter
    (fun off ->
      match Stlb.lookup stlb (0xC1010000 + off) with
      | Some a -> check int_c "offset" (0xFD000000 + off) a
      | None -> Alcotest.fail "hit expected")
    [ 0; 1; 0xFFF; 0x7FE ]

let test_runtime_miss_maps_pair () =
  let m = Harness.make_machine () in
  let rt = Harness.hyp_runtime m in
  let va = Addr_space.heap_alloc m.Harness.dom0 (2 * Layout.page_size) in
  Addr_space.write m.Harness.dom0 (va + 8) Width.W32 0xCAFE;
  let translated = Runtime.miss rt (va + 8) in
  check bool_c "translated into window" true
    (translated >= Layout.map_window_base);
  check int_c "same data visible through hyp mapping" 0xCAFE
    (Addr_space.read m.Harness.hyp translated Width.W32);
  (* straddling access works because the successor page is mapped too *)
  let boundary = va + Layout.page_size - 2 in
  Addr_space.write m.Harness.dom0 boundary Width.W32 0x55667788;
  let tb = Runtime.translate rt boundary in
  check int_c "straddle through pair" 0x55667788
    (Addr_space.read m.Harness.hyp tb Width.W32)

let test_runtime_protection () =
  let m = Harness.make_machine () in
  let rt = Harness.hyp_runtime m in
  let faulted addr =
    match Runtime.miss rt addr with
    | exception Runtime.Fault _ -> true
    | _ -> false
  in
  check bool_c "hypervisor address rejected" true (faulted Layout.stlb_base);
  check bool_c "stlb itself rejected" true (faulted (Layout.stlb_base + 8));
  check bool_c "guest address rejected" true (faulted 0xF0100000);
  check bool_c "unmapped dom0 address rejected" true (faulted 0xC7FFF000);
  check int_c "faults counted" 4 (Runtime.faults rt)

let test_runtime_collision_chain () =
  let m = Harness.make_machine () in
  let rt = Harness.hyp_runtime m in
  (* map enough memory that two pages share an stlb bucket: pages 16MB
     apart collide (index bits wrap) *)
  let base1 = Layout.dom0_heap_base in
  let base2 = Layout.dom0_heap_base + (16 * 1024 * 1024) in
  Addr_space.alloc_region m.Harness.dom0 ~vaddr:base1 ~pages:1;
  Addr_space.alloc_region m.Harness.dom0 ~vaddr:base2 ~pages:1;
  let t1 = Runtime.translate rt (base1 + 4) in
  let t2 = Runtime.translate rt (base2 + 4) in
  check bool_c "different mappings" true (t1 <> t2);
  (* t1's entry was evicted; translating again goes through the chain and
     returns the same stable mapping *)
  let t1' = Runtime.translate rt (base1 + 4) in
  check int_c "stable translation" t1 t1';
  check bool_c "collision recorded" true (Runtime.collisions rt >= 1)

let test_runtime_identity () =
  let m = Harness.make_machine () in
  let rt, _ = Harness.vm_runtime m in
  let va = Addr_space.heap_alloc m.Harness.dom0 64 in
  check int_c "identity translation" (va + 12) (Runtime.translate rt (va + 12));
  check bool_c "identity still protects" true
    (match Runtime.miss rt Layout.stlb_base with
    | exception Runtime.Fault _ -> true
    | _ -> false)

let test_persistent_map_and_invalidate () =
  let m = Harness.make_machine () in
  let rt = Harness.hyp_runtime m in
  let va = Addr_space.heap_alloc m.Harness.dom0 64 in
  let t = Runtime.persistent_map rt va in
  check int_c "hit after persist" t (Runtime.translate rt va);
  let misses_before = Runtime.misses rt in
  ignore (Runtime.translate rt (va + 32));
  check int_c "no extra miss" misses_before (Runtime.misses rt);
  Runtime.invalidate_page rt va;
  ignore (Runtime.translate rt va);
  check bool_c "miss after invalidate" true (Runtime.misses rt > misses_before)

let test_call_table () =
  let resolved = ref [] in
  let ct =
    Call_table.create ~vm_code_base:Layout.vm_driver_code_base
      ~vm_code_size:0x1000
      ~resolver:(fun addr ->
        resolved := addr :: !resolved;
        if addr = 0xC0001000 then Some 0xFE000040 else None)
  in
  (* driver-internal target: constant offset *)
  check int_c "internal" (Layout.vm_driver_code_base + 0x10 + Layout.code_offset)
    (Call_table.translate ct (Layout.vm_driver_code_base + 0x10));
  (* kernel routine target: resolver *)
  check int_c "kernel routine" 0xFE000040 (Call_table.translate ct 0xC0001000);
  (* cached: second lookup does not consult the resolver *)
  ignore (Call_table.translate ct 0xC0001000);
  check int_c "resolver called once" 1
    (List.length (List.filter (fun a -> a = 0xC0001000) !resolved));
  check bool_c "wild pointer rejected" true
    (match Call_table.translate ct 0xDEAD0000 with
    | exception Runtime.Fault _ -> true
    | _ -> false);
  check bool_c "hits counted" true (Call_table.hits ct >= 1)

(* Window-guard probe: per-domain accounting of map-window pages is wired
   from above (quotas live in td_xen), so the runtime must call acquire
   before anything is evicted or mapped, release on invalidate/flush, and
   abandon the miss cleanly when acquire raises. *)
let test_window_guard () =
  let m = Harness.make_machine () in
  let rt = Runtime.create_hypervisor ~dom0:m.Harness.dom0 ~hyp:m.Harness.hyp () in
  let held = ref 0 and acquires = ref 0 and deny = ref false in
  Runtime.set_window_guard rt
    {
      Runtime.acquire =
        (fun ~pages ->
          if !deny then failwith "window quota exceeded";
          incr acquires;
          held := !held + pages;
          "guest");
      release = (fun ~owner ~pages ->
          check bool_c "owner tag round-trips" true (owner = "guest");
          held := !held - pages);
    };
  let va = Addr_space.heap_alloc m.Harness.dom0 (2 * Layout.page_size) in
  ignore (Runtime.translate rt va);
  check int_c "miss acquired a pair" 2 !held;
  check int_c "one acquire per pair" 1 !acquires;
  (* an stlb hit must not re-acquire *)
  ignore (Runtime.translate rt (va + 8));
  check int_c "hit does not acquire" 1 !acquires;
  Runtime.invalidate_page rt va;
  Runtime.invalidate_page rt (va + Layout.page_size);
  check int_c "invalidate released" 0 !held;
  (* a denied acquire aborts the miss before any slot is consumed *)
  deny := true;
  let va2 = Addr_space.heap_alloc m.Harness.dom0 (2 * Layout.page_size) in
  let mapped_before = Runtime.pages_mapped rt in
  check bool_c "acquire failure propagates" true
    (match Runtime.translate rt va2 with
    | exception Failure _ -> true
    | _ -> false);
  check int_c "nothing mapped on denial" mapped_before
    (Runtime.pages_mapped rt);
  check int_c "nothing held on denial" 0 !held;
  (* flush releases everything still held *)
  deny := false;
  ignore (Runtime.translate rt va);
  check int_c "re-acquired" 2 !held;
  Runtime.flush rt;
  check int_c "flush released" 0 !held

let suite =
  [
    Alcotest.test_case "stlb index bits" `Quick test_index_bits;
    Alcotest.test_case "stlb install/lookup" `Quick test_stlb_install_lookup;
    Alcotest.test_case "stlb xor roundtrip" `Quick test_stlb_xor_roundtrip;
    Alcotest.test_case "miss maps page pair" `Quick test_runtime_miss_maps_pair;
    Alcotest.test_case "protection" `Quick test_runtime_protection;
    Alcotest.test_case "collision chain" `Quick test_runtime_collision_chain;
    Alcotest.test_case "identity mode" `Quick test_runtime_identity;
    Alcotest.test_case "persistent map/invalidate" `Quick
      test_persistent_map_and_invalidate;
    Alcotest.test_case "call table" `Quick test_call_table;
    Alcotest.test_case "window guard" `Quick test_window_guard;
  ]

(* Model-checking style property tests for the core data structures:
   the stlb against a reference map, the kernel allocator against an
   overlap checker, and decode against byte-level fuzzing. *)

open Td_misa

let check = Alcotest.check
let bool_c = Alcotest.bool

(* --- stlb vs a reference model --- *)

let stlb_model_prop =
  QCheck.Test.make ~name:"stlb behaves like a direct-mapped map" ~count:50
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 120) (int_range 0 2000))
       ~print:(fun l -> String.concat "," (List.map string_of_int l)))
    (fun page_numbers ->
      let m = Harness.make_machine () in
      let stlb =
        Td_svm.Stlb.create ~space:m.Harness.hyp ~vaddr:Td_mem.Layout.stlb_base
      in
      (* reference: index -> installed page *)
      let model = Hashtbl.create 64 in
      List.iter
        (fun n ->
          let dom0_page = Td_mem.Layout.dom0_heap_base + (n * 4096) in
          let mapped = Td_mem.Layout.map_window_base + (n * 4096) in
          Td_svm.Stlb.install stlb ~dom0_page ~mapped_page:mapped;
          Hashtbl.replace model (Td_svm.Stlb.index_of dom0_page) dom0_page)
        page_numbers;
      (* every probe must agree with the model: hit iff the bucket holds
         that page, and then with offset preserved *)
      List.for_all
        (fun n ->
          let dom0_page = Td_mem.Layout.dom0_heap_base + (n * 4096) in
          let addr = dom0_page + (n * 7 mod 4096) in
          let expect_hit =
            Hashtbl.find_opt model (Td_svm.Stlb.index_of dom0_page)
            = Some dom0_page
          in
          match Td_svm.Stlb.lookup stlb addr with
          | Some translated ->
              expect_hit
              && translated
                 = Td_mem.Layout.map_window_base + (n * 4096)
                   + (addr - dom0_page)
          | None -> not expect_hit)
        page_numbers)

(* --- kmem: allocations never overlap, frees recycle --- *)

let kmem_no_overlap_prop =
  QCheck.Test.make ~name:"kmem allocations never overlap" ~count:30
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 60) (int_range 1 6000))
       ~print:(fun l -> String.concat "," (List.map string_of_int l)))
    (fun sizes ->
      let m = Harness.make_machine () in
      let km = Td_kernel.Kmem.create m.Harness.dom0 in
      let live = ref [] in
      List.for_all
        (fun size ->
          let addr = Td_kernel.Kmem.alloc km size in
          let disjoint =
            List.for_all
              (fun (a, s) -> addr + size <= a || a + s <= addr)
              !live
          in
          live := (addr, size) :: !live;
          (* occasionally free the oldest to exercise recycling *)
          (if List.length !live > 20 then
             match List.rev !live with
             | (a, s) :: _ ->
                 Td_kernel.Kmem.free km a s;
                 live := List.filter (fun (x, _) -> x <> a) !live
             | [] -> ());
          disjoint)
        sizes)

(* --- decode: random bytes never crash, only Malformed --- *)

let decode_fuzz_prop =
  QCheck.Test.make ~name:"decode rejects noise gracefully" ~count:200
    (QCheck.make
       QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 200))
       ~print:String.escaped)
    (fun noise ->
      match Decode.decode (Bytes.of_string noise) with
      | _ -> true (* a parse of noise is fine as long as it is well-typed *)
      | exception Decode.Malformed _ -> true)

let decode_valid_prefix_prop =
  (* a real binary with flipped trailing bytes must never crash *)
  QCheck.Test.make ~name:"decode survives corrupted driver binaries" ~count:60
    (QCheck.make
       QCheck.Gen.(pair (int_range 0 5000) (int_range 0 255))
       ~print:(fun (i, b) -> Printf.sprintf "flip[%d]=%d" i b))
    (fun (pos, value) ->
      let prog =
        Program.assemble
          ~symbols:(fun _ -> Some Td_mem.Layout.native_base)
          ~base:Td_mem.Layout.vm_driver_code_base
          (Td_driver.E1000_driver.source ())
      in
      let b = Encode.encode prog in
      if pos >= Bytes.length b then true
      else begin
        Bytes.set b pos (Char.chr value);
        match Decode.decode b with
        | _ -> true
        | exception Decode.Malformed _ -> true
        | exception Invalid_argument _ -> false (* must not leak *)
      end)

(* --- interpreter engines: one semantics, three dispatchers --- *)

(* Random structured programs (forward-only control flow, so every
   program terminates) must produce bit-identical architectural results —
   EAX, every register, cycles, steps, all four flags and data memory —
   under per-step, basic-block and compiled-superblock dispatch. The
   generator emits multi-segment programs whose segments end in
   unconditional jumps to the next segment, so compiled traces stitch
   across block boundaries, and conditional forward jumps give the
   superblocks side exits. *)

let prop_dst = Td_misa.Reg.[| EAX; EBX; EDX; ESI; EDI |]
let prop_conds = Cond.[| NE; E; L; GE; A; BE |]

(* Decode one generator int into one instruction (plus an optional
   forward conditional jump). [nsegs] segments exist; jump targets are
   always in [seg+1 .. nsegs], where [nsegs] is the final ret. *)
let prop_emit b ~nsegs ~seg v =
  let lbl j = if j >= nsegs then "done" else Printf.sprintf "seg%d" j in
  let dst = prop_dst.((v / 7) mod 5) in
  let src =
    match (v / 12) mod 3 with
    | 0 -> Builder.imm ((v / 36) land 0xFFFF)
    | 1 -> Builder.reg prop_dst.((v / 36) mod 5)
    | _ -> Builder.mem ~base:Td_misa.Reg.EBP (4 * ((v / 36) mod 8))
  in
  match v mod 12 with
  | 0 -> Builder.addl b src (Builder.reg dst)
  | 1 -> Builder.subl b src (Builder.reg dst)
  | 2 -> Builder.xorl b src (Builder.reg dst)
  | 3 -> Builder.andl b src (Builder.reg dst)
  | 4 -> Builder.orl b src (Builder.reg dst)
  | 5 -> Builder.movl b src (Builder.reg dst)
  | 6 ->
      let s =
        if (v / 12) mod 2 = 0 then Builder.imm ((v / 36) land 0xFFFF)
        else Builder.reg dst
      in
      Builder.movl b s (Builder.mem ~base:Td_misa.Reg.EBP (4 * ((v / 36) mod 8)))
  | 7 -> Builder.incl b (Builder.reg dst)
  | 8 -> Builder.decl b (Builder.reg dst)
  | 9 ->
      Builder.cmpl b src (Builder.reg dst);
      Builder.jcc b
        prop_conds.((v / 5) mod 6)
        (lbl (seg + 1 + ((v / 36) mod (nsegs - seg))))
  | 10 -> Builder.testl b src (Builder.reg dst)
  | 11 -> (
      let c = Builder.imm ((v / 108) mod 5) in
      match (v / 36) mod 3 with
      | 0 -> Builder.shll b c (Builder.reg dst)
      | 1 -> Builder.shrl b c (Builder.reg dst)
      | _ -> Builder.sarl b c (Builder.reg dst))
  | _ -> Builder.nop b

let prop_run dispatch segs =
  let m = Harness.make_machine () in
  let buf = Td_mem.Addr_space.heap_alloc m.Harness.dom0 64 in
  let nsegs = List.length segs in
  let b = Builder.create "prop" in
  Builder.label b "entry";
  Builder.movl b (Builder.imm buf) (Builder.reg Reg.EBP);
  Array.iteri
    (fun i r -> Builder.movl b (Builder.imm ((i * 77) + 5)) (Builder.reg r))
    prop_dst;
  List.iteri
    (fun i ops ->
      Builder.label b (Printf.sprintf "seg%d" i);
      List.iter (prop_emit b ~nsegs ~seg:i) ops;
      (* segment termination: explicit jump to the next segment (a
         stitch edge for the superblock compiler) or plain fallthrough *)
      if List.fold_left ( + ) i ops mod 2 = 0 then
        Builder.jmp b (if i + 1 >= nsegs then "done" else Printf.sprintf "seg%d" (i + 1)))
    segs;
  Builder.label b "done";
  Builder.ret b;
  let prog =
    Program.assemble ~base:Td_mem.Layout.vm_driver_code_base (Builder.finish b)
  in
  Td_cpu.Code_registry.register m.Harness.registry prog;
  let st = Harness.dom0_cpu m in
  let interp = Harness.interp_of m st in
  Td_cpu.Interp.set_dispatch interp dispatch;
  (* threshold 1 so the second call runs compiled code in Compiled mode *)
  Td_cpu.Interp.set_compile_threshold interp 1;
  let entry = Program.addr_of_label prog "entry" in
  let r = ref 0 in
  for _ = 1 to 3 do
    r := Td_cpu.Interp.call interp ~entry ~args:[]
  done;
  let open Td_cpu in
  let snapshot =
    ( !r,
      Array.to_list (Array.map (Td_cpu.State.get st) prop_dst),
      st.State.cycles,
      st.State.steps,
      (st.State.zf, st.State.sf, st.State.cf, st.State.ovf) )
  in
  (* data memory readback after the architectural snapshot (the loads
     charge cycles, but the snapshot above is already taken) *)
  let mem =
    List.init 8 (fun k ->
        Semantics.load st (buf + (4 * k)) Td_misa.Width.W32)
  in
  (snapshot, mem)

let engine_equivalence_prop =
  QCheck.Test.make
    ~name:"per-step, block and compiled engines are bit-identical" ~count:60
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 2 5)
           (list_size (int_range 1 10) (int_range 0 0xFF_FFFF)))
       ~print:(fun segs ->
         String.concat ";"
           (List.map
              (fun ops -> String.concat "," (List.map string_of_int ops))
              segs)))
    (fun segs ->
      let per_step = prop_run Td_cpu.Interp.Per_step segs in
      let block = prop_run Td_cpu.Interp.Block segs in
      let compiled = prop_run Td_cpu.Interp.Compiled segs in
      per_step = block && per_step = compiled)

(* --- ledger arithmetic --- *)

let ledger_prop =
  QCheck.Test.make ~name:"ledger totals equal the sum of charges" ~count:50
    (QCheck.make
       QCheck.Gen.(list_size (int_range 0 80) (pair (int_range 0 3) (int_range 0 10000)))
       ~print:(fun l -> string_of_int (List.length l)))
    (fun charges ->
      let led = Td_xen.Ledger.create () in
      let cat = function
        | 0 -> Td_xen.Ledger.Dom0
        | 1 -> Td_xen.Ledger.DomU
        | 2 -> Td_xen.Ledger.Xen
        | _ -> Td_xen.Ledger.Driver
      in
      List.iter (fun (c, n) -> Td_xen.Ledger.charge led (cat c) n) charges;
      Td_xen.Ledger.grand_total led
      = List.fold_left (fun acc (_, n) -> acc + n) 0 charges)

let test_stats_percentile_edge () =
  check bool_c "single element" true (Td_sim.Stats.percentile 99. [ 5. ] = 5.);
  check bool_c "p0 -> min" true
    (Td_sim.Stats.percentile 0. [ 3.; 1.; 2. ] = 1.);
  check bool_c "p100 -> max" true
    (Td_sim.Stats.percentile 100. [ 3.; 1.; 2. ] = 3.);
  check bool_c "empty raises" true
    (match Td_sim.Stats.percentile 50. [] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest stlb_model_prop;
    QCheck_alcotest.to_alcotest kmem_no_overlap_prop;
    QCheck_alcotest.to_alcotest decode_fuzz_prop;
    QCheck_alcotest.to_alcotest decode_valid_prefix_prop;
    QCheck_alcotest.to_alcotest engine_equivalence_prop;
    QCheck_alcotest.to_alcotest ledger_prop;
    Alcotest.test_case "stats percentile edges" `Quick
      test_stats_percentile_edge;
  ]

(* Unit tests for the baseline Xen I/O path (netfront / I/O channel /
   netback) in isolation from the full World. *)

open Td_xen
open Td_kernel

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

type rig = {
  hyp : Hypervisor.t;
  dom0 : Domain.t;
  guest : Domain.t;
  km : Kmem.t;
  netio : Xen_netio.t;
  driver_frames : Skb.t list ref;
}

let make_rig () =
  let m = Harness.make_machine () in
  let ledger = Ledger.create () in
  let cpu = Harness.dom0_cpu m in
  let hyp = Hypervisor.create ~ledger ~xen_space:m.Harness.hyp ~cpu () in
  let dom0 =
    Domain.create ~id:0 ~name:"dom0" ~kind:Domain.Driver_domain
      ~space:m.Harness.dom0
  in
  let gspace = Td_mem.Addr_space.create ~name:"guest" m.Harness.phys in
  Td_mem.Addr_space.heap_init gspace ~base:Td_mem.Layout.guest_heap_base
    ~limit:Td_mem.Layout.guest_heap_limit;
  let guest = Domain.create ~id:1 ~name:"guest" ~kind:Domain.Guest ~space:gspace in
  Hypervisor.add_domain hyp dom0;
  Hypervisor.add_domain hyp guest;
  let km = Kmem.create m.Harness.dom0 in
  let driver_frames = ref [] in
  let netio =
    Xen_netio.create ~hyp ~dom0 ~guest ~kmem:km
      ~driver_tx:(fun skb -> driver_frames := skb :: !driver_frames)
      ()
  in
  { hyp; dom0; guest; km; netio; driver_frames }

let test_guest_transmit_reaches_driver () =
  let rig = make_rig () in
  Hypervisor.switch_to rig.hyp rig.guest;
  let frame = "0123456789" ^ String.make 200 't' in
  Xen_netio.guest_transmit rig.netio frame;
  (match !(rig.driver_frames) with
  | [ skb ] ->
      check bool_c "driver got the exact bytes" true
        (Bytes.to_string (Skb.contents skb) = frame)
  | _ -> Alcotest.fail "expected exactly one skb");
  check int_c "tx counted" 1 (Xen_netio.tx_count rig.netio);
  (* the path cost the expected machinery: grant map + unmap happened,
     and the guest->dom0->guest switches are visible *)
  check bool_c "world switches happened" true (Hypervisor.switches rig.hyp >= 2);
  check bool_c "returned to the guest" true
    (Domain.id (Hypervisor.current rig.hyp) = Domain.id rig.guest)

let test_rx_requires_posted_buffers () =
  let rig = make_rig () in
  let skb = Skb.alloc rig.km (Domain.space rig.dom0) ~size:256 in
  Skb.put skb (Bytes.of_string "dropped");
  check int_c "no buffers posted" 0 (Xen_netio.rx_buffers_posted rig.netio);
  Xen_netio.deliver_to_guest rig.netio skb;
  check int_c "dropped" 1 (Xen_netio.rx_dropped rig.netio);
  check int_c "nothing delivered" 0 (Xen_netio.rx_count rig.netio)

let test_rx_delivery_and_buffer_recycling () =
  let rig = make_rig () in
  Xen_netio.post_rx_buffers rig.netio 2;
  let got = ref [] in
  Xen_netio.set_guest_rx rig.netio (fun frame -> got := frame :: !got);
  for i = 1 to 5 do
    let skb = Skb.alloc rig.km (Domain.space rig.dom0) ~size:256 in
    Skb.put skb (Bytes.of_string (Printf.sprintf "packet-%d" i));
    Xen_netio.deliver_to_guest rig.netio skb
  done;
  (* two posted buffers suffice for five packets: netfront re-posts *)
  check int_c "all delivered" 5 (Xen_netio.rx_count rig.netio);
  check int_c "none dropped" 0 (Xen_netio.rx_dropped rig.netio);
  check bool_c "in order and intact" true
    (List.rev !got = List.init 5 (fun i -> Printf.sprintf "packet-%d" (i + 1)));
  check int_c "buffers recycled" 2 (Xen_netio.rx_buffers_posted rig.netio)

let test_costs_charged_per_direction () =
  let rig = make_rig () in
  let led = Hypervisor.ledger rig.hyp in
  Hypervisor.switch_to rig.hyp rig.guest;
  Ledger.reset led;
  Xen_netio.guest_transmit rig.netio (String.make 100 'x');
  check bool_c "tx charges guest work" true (Ledger.total led Ledger.DomU > 0);
  check bool_c "tx charges dom0 work" true (Ledger.total led Ledger.Dom0 > 0);
  check bool_c "tx charges xen work" true (Ledger.total led Ledger.Xen > 0);
  Ledger.reset led;
  Xen_netio.post_rx_buffers rig.netio 1;
  let skb = Skb.alloc rig.km (Domain.space rig.dom0) ~size:2048 in
  Skb.put skb (Bytes.make 1500 'r');
  Xen_netio.deliver_to_guest rig.netio skb;
  (* the grant copy is hypervisor work proportional to the packet *)
  let xen = Ledger.total led Ledger.Xen in
  check bool_c "rx grant copy charged to Xen" true
    (xen
    > int_of_float
        (1500.0 *. (Hypervisor.costs rig.hyp).Sys_costs.grant_copy_per_byte)
      - 1)

let test_oversized_frame_rejected () =
  let rig = make_rig () in
  check bool_c "bigger than a page is refused" true
    (match
       Xen_netio.guest_transmit rig.netio (String.make 5000 'x')
     with
    | exception
        Guest_fault.Fault { op = "Xen_netio.guest_transmit"; _ } ->
        true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "guest transmit reaches driver" `Quick
      test_guest_transmit_reaches_driver;
    Alcotest.test_case "rx requires posted buffers" `Quick
      test_rx_requires_posted_buffers;
    Alcotest.test_case "rx delivery + recycling" `Quick
      test_rx_delivery_and_buffer_recycling;
    Alcotest.test_case "costs charged per direction" `Quick
      test_costs_charged_per_direction;
    Alcotest.test_case "oversized frame rejected" `Quick
      test_oversized_frame_rejected;
  ]

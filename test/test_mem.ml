(* Tests for physical memory, page tables and address spaces. *)

open Td_misa
open Td_mem

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

let test_layout_invariants () =
  check int_c "page size" 4096 Layout.page_size;
  check bool_c "stlb maps 16MB" true
    (Layout.stlb_entries * Layout.page_size = 16 * 1024 * 1024);
  check bool_c "window is 16MB" true
    (Layout.map_window_pages * Layout.page_size = 16 * 1024 * 1024);
  check bool_c "dom0 heap below driver code" true
    (Layout.dom0_heap_limit <= Layout.vm_driver_code_base);
  check bool_c "code offset constant" true
    (Layout.code_offset = Layout.hyp_driver_code_base - Layout.vm_driver_code_base);
  check bool_c "natives above hyp code" true
    (Layout.native_base > Layout.hyp_driver_code_base);
  check bool_c "dom0 range excludes hyp" false (Layout.in_dom0_range Layout.stlb_base);
  check bool_c "hyp range" true (Layout.in_hyp_range Layout.stlb_base)

let test_phys_alloc_free () =
  let m = Phys_mem.create ~frames:8 () in
  let f1 = Phys_mem.alloc_frame m in
  let f2 = Phys_mem.alloc_frame m in
  check bool_c "distinct" true (f1 <> f2);
  check int_c "allocated" 2 (Phys_mem.frames_allocated m);
  Phys_mem.free_frame m f1;
  check int_c "after free" 1 (Phys_mem.frames_allocated m);
  let f3 = Phys_mem.alloc_frame m in
  check int_c "frame reused" f1 f3

let test_phys_exhaustion () =
  let m = Phys_mem.create ~frames:3 () in
  ignore (Phys_mem.alloc_frame m);
  ignore (Phys_mem.alloc_frame m);
  check bool_c "exhausted" true
    (match Phys_mem.alloc_frame m with
    | exception Phys_mem.Out_of_frames { capacity = 3 } -> true
    | _ -> false)

let test_phys_rw_widths () =
  let m = Phys_mem.create () in
  let f = Phys_mem.alloc_frame m in
  Phys_mem.write m f 0 Width.W32 0xDEADBEEF;
  check int_c "w32" 0xDEADBEEF (Phys_mem.read m f 0 Width.W32);
  check int_c "b0 little-endian" 0xEF (Phys_mem.read m f 0 Width.W8);
  check int_c "b3" 0xDE (Phys_mem.read m f 3 Width.W8);
  check int_c "w16" 0xBEEF (Phys_mem.read m f 0 Width.W16);
  Phys_mem.write m f 100 Width.W8 0x7F;
  check int_c "w8" 0x7F (Phys_mem.read m f 100 Width.W8)

let test_phys_bounds () =
  let m = Phys_mem.create () in
  let f = Phys_mem.alloc_frame m in
  check bool_c "cross-frame read rejected" true
    (match Phys_mem.read m f 4094 Width.W32 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let space () =
  let phys = Phys_mem.create () in
  let s = Addr_space.create ~name:"s" phys in
  Addr_space.heap_init s ~base:Layout.dom0_heap_base ~limit:Layout.dom0_heap_limit;
  s

let test_space_map_translate () =
  let s = space () in
  let va = Addr_space.heap_alloc s 100 in
  check int_c "page aligned" 0 (Layout.offset_of va);
  Addr_space.write s (va + 12) Width.W32 42;
  check int_c "read back" 42 (Addr_space.read s (va + 12) Width.W32);
  check bool_c "mapped" true (Addr_space.is_mapped s ~vpage:(Layout.page_of va))

let test_space_page_fault () =
  let s = space () in
  check bool_c "fault on unmapped" true
    (match Addr_space.read s 0xC7000000 Width.W32 with
    | exception Addr_space.Page_fault { addr = 0xC7000000; _ } -> true
    | _ -> false)

let test_space_straddle () =
  let s = space () in
  (* allocate two consecutive pages and write across the boundary *)
  let va = Addr_space.heap_alloc s (2 * Layout.page_size) in
  let boundary = va + Layout.page_size - 2 in
  Addr_space.write s boundary Width.W32 0x11223344;
  check int_c "straddling read" 0x11223344 (Addr_space.read s boundary Width.W32);
  check int_c "low half in page 1" 0x3344 (Addr_space.read s boundary Width.W16);
  check int_c "high half in page 2" 0x1122
    (Addr_space.read s (boundary + 2) Width.W16)

let test_space_blocks () =
  let s = space () in
  let va = Addr_space.heap_alloc s (2 * Layout.page_size) in
  let data = Bytes.init 6000 (fun i -> Char.chr (i mod 256)) in
  Addr_space.write_block s (va + 100) data;
  let back = Addr_space.read_block s (va + 100) 6000 in
  check bool_c "block roundtrip across pages" true (Bytes.equal data back)

let test_space_aliasing () =
  (* two spaces mapping the same frame see each other's writes: the
     single-data-instance property TwinDrivers depends on *)
  let phys = Phys_mem.create () in
  let a = Addr_space.create ~name:"a" phys in
  let b = Addr_space.create ~name:"b" phys in
  let f = Phys_mem.alloc_frame phys in
  Addr_space.map a ~vpage:0x10000 f;
  Addr_space.map b ~vpage:0x20000 f;
  Addr_space.write a 0x10000078 Width.W32 7;
  check int_c "alias visible" 7 (Addr_space.read b 0x20000078 Width.W32)

let test_device_pages () =
  let phys = Phys_mem.create () in
  let s = Addr_space.create ~name:"s" phys in
  let last_write = ref (-1, -1) in
  let dev =
    {
      Addr_space.dev_read = (fun off _ -> off * 2);
      dev_write = (fun off _ v -> last_write := (off, v));
    }
  in
  Addr_space.map_device s ~vpage:0x30000 dev;
  check int_c "device read" 16 (Addr_space.read s 0x30000008 Width.W32);
  Addr_space.write s 0x30000010 Width.W32 99;
  check bool_c "device write seen" true (!last_write = (16, 99))

let test_heap_alloc_distinct () =
  let s = space () in
  let a = Addr_space.heap_alloc s 10 in
  let b = Addr_space.heap_alloc s 10 in
  check bool_c "regions disjoint" true (b >= a + Layout.page_size)

let suite =
  [
    Alcotest.test_case "layout invariants" `Quick test_layout_invariants;
    Alcotest.test_case "phys alloc/free" `Quick test_phys_alloc_free;
    Alcotest.test_case "phys exhaustion" `Quick test_phys_exhaustion;
    Alcotest.test_case "phys rw widths" `Quick test_phys_rw_widths;
    Alcotest.test_case "phys bounds" `Quick test_phys_bounds;
    Alcotest.test_case "space map/translate" `Quick test_space_map_translate;
    Alcotest.test_case "space page fault" `Quick test_space_page_fault;
    Alcotest.test_case "space straddle" `Quick test_space_straddle;
    Alcotest.test_case "space blocks" `Quick test_space_blocks;
    Alcotest.test_case "space aliasing" `Quick test_space_aliasing;
    Alcotest.test_case "device pages" `Quick test_device_pages;
    Alcotest.test_case "heap alloc distinct" `Quick test_heap_alloc_distinct;
  ]
